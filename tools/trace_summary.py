#!/usr/bin/env python3
"""Summarize a Chrome trace-event JSON file produced by the obs/ layer.

Reads the trace written by TraceSink::write_json (and optionally the
telemetry JSONL written by TelemetryLog::write_jsonl) and prints:

  * per-category totals: event count, total/mean/max duration, and the
    share of the trace's busy time, sorted by total time;
  * the top-N slowest complete spans with their args;
  * instant-event counts by name;
  * with --telemetry: the sampled fleet time-series condensed to first/
    peak/last for queue depth, running jobs, utilization, and dead
    letters.

Exits 1 when the trace is unreadable, empty, or not trace-event shaped,
so CI can use it as a smoke check that an instrumented run actually
emitted a loadable trace. Stdlib only.

Usage: tools/trace_summary.py TRACE.json [--telemetry FLEET.jsonl]
                              [--top N]
"""

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


def load_events(path: Path) -> list:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"{path}: unreadable or invalid JSON ({err})")
    if not isinstance(data, dict) or "traceEvents" not in data:
        sys.exit(f"{path}: not a Chrome trace-event file (no traceEvents)")
    events = data["traceEvents"]
    if not isinstance(events, list) or not events:
        sys.exit(f"{path}: traceEvents is empty")
    for event in events:
        for key in ("name", "cat", "ph", "ts"):
            if key not in event:
                sys.exit(f"{path}: event missing required key {key!r}")
    return events


def summarize_trace(events: list, top: int) -> None:
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]

    by_category = defaultdict(lambda: {"count": 0, "total": 0.0, "max": 0.0})
    for span in spans:
        dur = float(span.get("dur", 0.0))
        entry = by_category[span["cat"]]
        entry["count"] += 1
        entry["total"] += dur
        entry["max"] = max(entry["max"], dur)
    busy_us = sum(entry["total"] for entry in by_category.values()) or 1.0

    threads = {e.get("tid", 0) for e in events}
    span_us = [float(s.get("dur", 0.0)) for s in spans]
    wall_us = max((float(e["ts"]) + float(e.get("dur", 0.0)) for e in events),
                  default=0.0)
    print(f"{len(events)} events ({len(spans)} spans, {len(instants)} "
          f"instants) on {len(threads)} threads over "
          f"{wall_us / 1000.0:.1f} ms")

    print("\nby category (span time, not wall time — nested spans overlap):")
    header = f"  {'category':<10} {'count':>7} {'total ms':>10} " \
             f"{'mean us':>9} {'max us':>9} {'share':>7}"
    print(header)
    for cat, entry in sorted(by_category.items(),
                             key=lambda kv: -kv[1]["total"]):
        mean = entry["total"] / entry["count"]
        print(f"  {cat:<10} {entry['count']:>7} "
              f"{entry['total'] / 1000.0:>10.2f} {mean:>9.1f} "
              f"{entry['max']:>9.1f} {entry['total'] / busy_us:>6.1%}")

    if spans:
        print(f"\ntop {min(top, len(spans))} slowest spans:")
        slowest = sorted(spans, key=lambda s: -float(s.get("dur", 0.0)))
        for span in slowest[:top]:
            args = span.get("args", {})
            rendered = " ".join(f"{k}={v}" for k, v in args.items())
            print(f"  {float(span['dur']):>10.1f} us  "
                  f"{span['cat']}/{span['name']}"
                  f"{'  ' + rendered if rendered else ''}")

    if instants:
        counts = defaultdict(int)
        for inst in instants:
            counts[f"{inst['cat']}/{inst['name']}"] += 1
        print("\ninstant events:")
        for name, count in sorted(counts.items(), key=lambda kv: -kv[1]):
            print(f"  {count:>7}  {name}")


def summarize_telemetry(path: Path) -> None:
    samples = []
    try:
        for line_no, line in enumerate(path.read_text().splitlines(), 1):
            if not line.strip():
                continue
            try:
                samples.append(json.loads(line))
            except json.JSONDecodeError as err:
                sys.exit(f"{path}:{line_no}: invalid JSON ({err})")
    except OSError as err:
        sys.exit(f"{path}: unreadable ({err})")
    if not samples:
        sys.exit(f"{path}: no telemetry samples")

    def series(key):
        return [float(s.get(key, 0)) for s in samples]

    print(f"\ntelemetry: {len(samples)} samples over ticks "
          f"{samples[0]['tick']}..{samples[-1]['tick']} "
          f"({samples[-1].get('sim_time_s', 0.0):.0f} s simulated)")
    rows = [
        ("jobs pending", series("jobs_pending")),
        ("jobs running", series("jobs_running")),
        ("free GPUs", series("free_gpus")),
        ("utilization", [1.0 - f / t if t else 0.0
                         for f, t in zip(series("free_gpus"),
                                         series("total_gpus"))]),
        ("retry backlog", series("retry_backlog")),
        ("dead letters", series("dead_letters")),
        ("crashed servers", series("crashed_servers")),
    ]
    print(f"  {'series':<16} {'first':>9} {'peak':>9} {'last':>9}")
    for name, values in rows:
        fmt = "{:>9.2f}" if name == "utilization" else "{:>9.0f}"
        print(f"  {name:<16} " + " ".join(
            fmt.format(v) for v in (values[0], max(values), values[-1])))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=Path, metavar="TRACE.json")
    parser.add_argument("--telemetry", type=Path, metavar="FLEET.jsonl",
                        help="telemetry JSONL from TelemetryLog::write_jsonl")
    parser.add_argument("--top", type=int, default=10,
                        help="slowest spans to list (default 10)")
    args = parser.parse_args()

    summarize_trace(load_events(args.trace), args.top)
    if args.telemetry is not None:
        summarize_telemetry(args.telemetry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
