#!/usr/bin/env python3
"""Dependency-free markdown lint + link check for the repo's docs.

CI runs this over README/ROADMAP/CHANGES/docs so the architecture docs
cannot rot silently. Checks, per file:

  * fenced code blocks are balanced;
  * no trailing whitespace outside code fences (it renders as a forced
    line break on GitHub and is invisible in review);
  * the first heading is an H1 and heading levels never skip (an H3
    directly under an H1 breaks the rendered outline);
  * every relative link target exists on disk, and every fragment
    (`#anchor`, on its own or after a .md path) resolves to a heading in
    the target file using GitHub's slug rules.

External http(s) links are intentionally not fetched: CI stays hermetic
and the job cannot flake on someone else's outage. Exits 1 with
file:line diagnostics when any check fails.

Usage: tools/check_markdown.py FILE.md [FILE.md ...]
"""

import re
import sys
from pathlib import Path

FENCE = re.compile(r"^\s*(```|~~~)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
# Inline [text](target) links; images share the syntax via ![text](target).
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, drop punctuation, dashes."""
    text = re.sub(r"[*_`\[\]()!]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    slugs = set()
    counts = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            slug = slugify(match.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: Path) -> list:
    errors = []
    lines = path.read_text(encoding="utf-8").splitlines()
    in_fence = False
    first_heading_seen = False
    previous_level = 0
    for number, line in enumerate(lines, start=1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        if line != line.rstrip():
            errors.append(f"{path}:{number}: trailing whitespace")
        match = HEADING.match(line)
        if match:
            level = len(match.group(1))
            if not first_heading_seen:
                if level != 1:
                    errors.append(
                        f"{path}:{number}: first heading must be an H1"
                    )
                first_heading_seen = True
            elif previous_level and level > previous_level + 1:
                errors.append(
                    f"{path}:{number}: heading level jumps from "
                    f"H{previous_level} to H{level}"
                )
            previous_level = level
        for link in LINK.finditer(line):
            errors.extend(check_link(path, number, link.group(1)))
    if in_fence:
        errors.append(f"{path}: unbalanced code fence")
    return errors


def check_link(path: Path, number: int, target: str) -> list:
    if target.startswith(("http://", "https://", "mailto:")):
        return []  # external: not fetched, CI stays hermetic
    where = f"{path}:{number}"
    if target.startswith("#"):
        if target[1:] not in heading_slugs(path):
            return [f"{where}: broken anchor {target}"]
        return []
    file_part, _, fragment = target.partition("#")
    resolved = (path.parent / file_part).resolve()
    if not resolved.exists():
        return [f"{where}: broken link {target}"]
    if fragment:
        if resolved.suffix != ".md":
            return [f"{where}: fragment on non-markdown target {target}"]
        if fragment not in heading_slugs(resolved):
            return [f"{where}: broken anchor {target}"]
    return []


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: no such file")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"check_markdown: {len(argv) - 1} files, {len(errors)} problems",
        file=sys.stderr,
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
