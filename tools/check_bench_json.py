#!/usr/bin/env python3
"""Perf-trajectory smoke gate for the committed BENCH_*.json files.

Every bench driver accepts `--json` and writes BENCH_<name>.json through
bench_common.hpp's JsonReport, and each PR commits the measured points.
CI regenerates them on every push; this tool keeps the trajectory
machine-readable by failing the build when a file stops conforming:

  * schema: a JSON object with exactly the keys {"bench", "metrics",
    "wall_s"}; "bench" is a non-empty string matching the file name
    (BENCH_<bench>.json), "metrics" is a non-empty object mapping metric
    names to finite numbers (bools are not numbers), "wall_s" is a
    positive finite number;
  * required metrics: benches listed in REQUIRED_METRICS must expose
    their headline keys (each pattern must match at least one metric
    name) — the perf trajectory loses meaning if, say, bench_cluster
    stops reporting dispatcher microseconds per job;
  * drift (with --baseline-dir DIR): a freshly regenerated file must
    expose exactly the metric keys of the committed file of the same
    name in DIR — a driver that silently drops or renames a headline
    metric breaks the trajectory even when its numbers look fine.

Exits 1 with per-file diagnostics on any violation.

Usage: tools/check_bench_json.py [--baseline-dir DIR] BENCH_*.json
"""

import argparse
import json
import math
import re
import sys
from pathlib import Path

# Headline metrics a bench must always expose, as regexes fully matched
# against metric names; each pattern must match at least one metric.
# Benches not listed here are gated only by the generic schema and the
# drift check.
REQUIRED_METRICS = {
    "bitrows": [
        r"hardware_concurrency",
        r".*_threads\d+_us",
    ],
    "cluster": [
        r"threads",
        r"hardware_concurrency",
        # The fleet-scale sweep: dispatcher cost per job at each point.
        r"scale_n\d+_dispatch_us_per_job",
        # Sharded-vs-unsharded head-to-head at 1k servers.
        r"n1000_sharded_dispatch_us_per_job",
        r"n1000_unsharded_dispatch_us_per_job",
        r"n1000_sharded_speedup_x",
        # Shared-topology memory story.
        r"n1000_bytes_per_server_shared",
        r"n1000_bytes_per_server_copied",
        r"n1000_memory_reduction_x",
    ],
    "incremental": [
        # Steady-state churn dispatch cost with both reuse layers on vs
        # the pre-incremental baseline, plus the delta-filter share that
        # explains the gap (see bench_incremental.cpp).
        r"us_per_job_churn",
        r"us_per_job_churn_baseline",
        r"delta_hit_rate",
        r"churn_n1000_speedup_x",
    ],
    "observability": [
        # A null observer vs an all-off Observer must stay within noise
        # of zero; the acceptance gate for the committed point is <= 1%.
        r"disabled_overhead_pct",
        r"no_observer_wall_ms",
        r"disabled_wall_ms",
        # The cost of actually collecting, as a committed number.
        r"enabled_overhead_pct",
        r"trace_events",
        r"telemetry_samples",
        # Span micro-costs: the live-sink throughput and the per-span
        # price of the disabled (null-sink) path.
        r"spans_per_sec",
        r"disabled_span_ns",
    ],
    "service": [
        # Sustained daemon throughput and the allocate latency tail under
        # open-loop Poisson load, single-server and fleet-fronted.
        r"single_allocs_per_sec",
        r"single_alloc_p50_ms",
        r"single_alloc_p99_ms",
        r"fleet_allocs_per_sec",
        r"fleet_alloc_p50_ms",
        r"fleet_alloc_p99_ms",
    ],
    "resilience": [
        r"threads",
        # The armed-but-idle fault machinery must stay ~free; the
        # acceptance gate for the committed point is <= 1%.
        r"fault_free_overhead_pct",
        # Fault-rate sweep headlines at both fleet sizes: service
        # quality and the kill-to-re-place latency tail.
        r"n32_mtbf\d+_jobs_per_hour",
        r"n32_mtbf\d+_wait_p99_s",
        r"n32_mtbf\d+_replace_p99_s",
        r"n1000_mtbf\d+_jobs_per_hour",
        r"n1000_mtbf\d+_replace_p99_s",
        r"n1000_mtbf\d+_dead_letter_rate",
    ],
}


def is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_schema(path: Path) -> list:
    """Schema errors for one BENCH_*.json file (empty list = conforming)."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        return [f"{path}: unreadable or invalid JSON ({err})"]
    errors = []
    if not isinstance(data, dict):
        return [f"{path}: top level must be a JSON object"]
    expected_keys = {"bench", "metrics", "wall_s"}
    if set(data) != expected_keys:
        errors.append(
            f"{path}: top-level keys {sorted(data)} != {sorted(expected_keys)}"
        )
        return errors
    bench = data["bench"]
    if not isinstance(bench, str) or not bench:
        errors.append(f"{path}: \"bench\" must be a non-empty string")
    elif path.name != f"BENCH_{bench}.json":
        errors.append(
            f"{path}: file name does not match bench name "
            f"(expected BENCH_{bench}.json)"
        )
    metrics = data["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        errors.append(f"{path}: \"metrics\" must be a non-empty object")
    else:
        for key, value in metrics.items():
            if not isinstance(key, str) or not key:
                errors.append(f"{path}: metric names must be non-empty strings")
            if not is_number(value) or not math.isfinite(value):
                errors.append(
                    f"{path}: metric \"{key}\" must be a finite number, "
                    f"got {value!r}"
                )
    wall = data["wall_s"]
    if not is_number(wall) or not math.isfinite(wall) or wall <= 0:
        errors.append(f"{path}: \"wall_s\" must be a positive finite number")
    if isinstance(metrics, dict) and isinstance(bench, str):
        for pattern in REQUIRED_METRICS.get(bench, []):
            if not any(re.fullmatch(pattern, key) for key in metrics):
                errors.append(
                    f"{path}: no metric matches required pattern "
                    f"\"{pattern}\""
                )
    return errors


def metric_keys(path: Path) -> set:
    return set(json.loads(path.read_text())["metrics"])


def check_drift(path: Path, baseline_dir: Path) -> list:
    """Key-set drift of a regenerated file against the committed baseline."""
    baseline = baseline_dir / path.name
    if not baseline.exists():
        return [
            f"{path}: no committed baseline {baseline} — commit the driver's "
            "--json output alongside the driver"
        ]
    fresh = metric_keys(path)
    committed = metric_keys(baseline)
    errors = []
    if missing := sorted(committed - fresh):
        errors.append(f"{path}: metrics dropped vs committed file: {missing}")
    if added := sorted(fresh - committed):
        errors.append(
            f"{path}: metrics added vs committed file: {added} — regenerate "
            "and commit the new point"
        )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", type=Path, metavar="BENCH_*.json")
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        help="directory holding the committed BENCH_*.json files to compare "
        "freshly regenerated metric key sets against",
    )
    args = parser.parse_args()

    errors = []
    for path in args.files:
        file_errors = check_schema(path)
        if not file_errors and args.baseline_dir is not None:
            file_errors = check_drift(path, args.baseline_dir)
        if not file_errors:
            print(f"{path}: ok")
        errors.extend(file_errors)
    for error in errors:
        print(error, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
