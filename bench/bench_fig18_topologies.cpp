// Reproduces paper Fig. 18: simulation results for bandwidth-sensitive
// workloads on the two novel 16-GPU topologies (Torus-2d and Cube-mesh),
// reporting the predicted-EffBW distribution per workload and policy.
// The paper omits insensitive workloads here; we follow suit.

#include <iostream>

#include "bench_common.hpp"

using namespace mapa;

namespace {

void topology_panel(const graph::Graph& hw,
                    const std::vector<workload::Job>& jobs,
                    const std::string& title) {
  std::cout << "--- " << title << " ---\n";
  const auto results = bench::run_paper_policies(hw, jobs);

  util::Table t({"workload", "policy", "min", "q25", "median", "q75", "max",
                 "n"});
  std::vector<std::string> rows;
  for (const auto& w : workload::sensitive_workloads()) rows.push_back(w.name);
  rows.push_back("(all sensitive)");
  for (const std::string& name : rows) {
    for (const auto& r : results) {
      util::BoxPlot bp;
      if (name.front() == '(') {
        bp = sim::pooled_box_plot(r, sim::RecordField::kPredictedEffBw, true);
      } else {
        const auto plots = sim::per_workload_box_plots(
            r, sim::RecordField::kPredictedEffBw, true);
        const auto it = plots.find(name);
        if (it == plots.end()) continue;
        bp = it->second;
      }
      auto cells = bench::box_plot_cells(bp, 2);
      cells.insert(cells.begin(), r.policy);
      cells.insert(cells.begin(), name);
      t.add_row(std::move(cells));
    }
  }
  std::cout << t.render() << '\n';

  // The paper's two headline comparisons.
  const auto q = [&](std::size_t policy_index, double quantile) {
    std::vector<double> values;
    for (const auto& r : results[policy_index].records) {
      if (r.job.num_gpus < 2 || !r.job.bandwidth_sensitive) continue;
      values.push_back(r.predicted_effbw);
    }
    return util::quantile(values, quantile);
  };
  std::cout << "Preserve min vs others' q25: "
            << util::fixed(q(3, 0.0), 2) << " vs baseline "
            << util::fixed(q(0, 0.25), 2) << ", topo-aware "
            << util::fixed(q(1, 0.25), 2) << ", greedy "
            << util::fixed(q(2, 0.25), 2) << '\n'
            << "Preserve median vs baseline max: " << util::fixed(q(3, 0.5), 2)
            << " vs " << util::fixed(q(0, 1.0), 2) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig18_topologies");
  bench::print_header("Fig. 18",
                      "16-GPU Torus-2d and Cube-mesh, sensitive workloads");
  const auto jobs = bench::paper_job_mix(300, 18);
  topology_panel(graph::torus2d_16(), jobs, "Fig. 18a: Torus-2d");
  topology_panel(graph::cubemesh_16(), jobs, "Fig. 18b: Cube-mesh");
  std::cout
      << "Paper shape: Preserve lifts the lower tail (min ~= others' q25) "
         "on both\ntopologies; on the irregular Cube-mesh, Preserve's "
         "median approaches\nGreedy's q75 and baseline's max — more than "
         "half its jobs beat all of\nbaseline's.\n";
  return report.write();
}
