// Reproduces paper Table 1 (peak link bandwidths), Fig. 2a (achievable
// bandwidth vs transfer size per link class on the DGX-V), and Fig. 2b
// (2-GPU CNN training speedup when placed on double NVLink / single NVLink
// / PCIe pairs).

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "graph/patterns.hpp"
#include "interconnect/bandwidth_curve.hpp"
#include "interconnect/microbench.hpp"
#include "workload/exec_model.hpp"

using namespace mapa;

namespace {

void table1() {
  std::cout << "--- Table 1: peak bandwidths per link ---\n";
  util::Table t({"Link", "Bandwidth (GBps)"});
  using interconnect::LinkType;
  for (const auto& [name, type] :
       std::vector<std::pair<std::string, LinkType>>{
           {"Single NVLink-v1", LinkType::kNvLink1},
           {"Single NVLink-v2", LinkType::kNvLink2},
           {"Double NVLink-v2", LinkType::kNvLink2Double},
           {"16-lane PCIe Gen 3", LinkType::kPcie}}) {
    t.add_row({name,
               util::fixed(interconnect::peak_bandwidth_gbps(type), 0)});
  }
  std::cout << t.render() << '\n';
}

void fig2a() {
  std::cout << "--- Fig. 2a: bandwidth vs data size (GB/s) ---\n";
  util::Table t({"bytes", "NV2-Double", "NV2-Single", "PCIe"});
  using interconnect::LinkType;
  for (double exp = 4.0; exp <= 9.0; exp += 0.5) {
    const double bytes = std::pow(10.0, exp);
    t.add_row({"1e" + util::fixed(exp, 1),
               util::fixed(interconnect::achievable_bandwidth_gbps(
                               LinkType::kNvLink2Double, bytes), 2),
               util::fixed(interconnect::achievable_bandwidth_gbps(
                               LinkType::kNvLink2, bytes), 2),
               util::fixed(interconnect::achievable_bandwidth_gbps(
                               LinkType::kPcie, bytes), 2)});
  }
  std::cout << t.render()
            << "\nPaper shape: tiers collapse below ~1e5 bytes and separate "
               "above;\ndouble NVLink saturates near 50, single near 25, "
               "PCIe near 12.\n\n";
}

void fig2b() {
  std::cout << "--- Fig. 2b: network speedup by link type (2 GPUs) ---\n";
  // The paper places the job on GPUs (1,5)=double, (1,2)=single, (1,6)=PCIe
  // (1-based) and reports execution-time speedup relative to PCIe.
  const graph::Graph hw = graph::dgx1_v100();
  const graph::Graph pair = graph::ring(2);
  const auto effbw = [&](graph::VertexId a, graph::VertexId b) {
    match::Match m;
    m.mapping = {a, b};
    return interconnect::measured_effective_bandwidth(pair, hw, m);
  };
  const double bw_double = effbw(0, 4);
  const double bw_single = effbw(0, 1);
  const double bw_pcie = effbw(0, 5);

  util::Table t({"Network", "NV2-Double", "NV2-Single", "PCIe"});
  for (const auto& w : workload::all_workloads()) {
    if (w.name == "cusimann" || w.name == "gmm" || w.name == "jacobi") {
      continue;  // Fig. 2b plots the six CNNs
    }
    const workload::ExecModel model(w);
    const double t_pcie = model.exec_time_s(2, bw_pcie);
    t.add_row({w.name,
               util::fixed(t_pcie / model.exec_time_s(2, bw_double), 2),
               util::fixed(t_pcie / model.exec_time_s(2, bw_single), 2),
               "1.00"});
  }
  std::cout << t.render()
            << "\nPaper shape: VGG-16 ~3x on double NVLink vs PCIe; "
               "GoogleNet/CaffeNet nearly flat.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig02_links");
  bench::print_header("Table 1 + Fig. 2",
                      "Link bandwidths, size ramp, and link-type speedups");
  table1();
  fig2a();
  fig2b();

  const graph::Graph hw = graph::dgx1_v100();
  const graph::Graph pair = graph::ring(2);
  const auto effbw = [&](graph::VertexId a, graph::VertexId b) {
    match::Match m;
    m.mapping = {a, b};
    return interconnect::measured_effective_bandwidth(pair, hw, m);
  };
  report.metric("effbw_pair_double_gbps", effbw(0, 4));
  report.metric("effbw_pair_single_gbps", effbw(0, 1));
  report.metric("effbw_pair_pcie_gbps", effbw(0, 5));
  return report.write();
}
