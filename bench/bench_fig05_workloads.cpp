// Reproduces paper Fig. 5: communication properties of the ML workloads.
// (a) CDF of collective-call transfer sizes per network (sampled from each
//     workload's lognormal size profile);
// (b) the collective-communication calls per GPU per iteration and the
//     bandwidth-sensitivity classification table.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace mapa;

namespace {

void fig5a() {
  std::cout << "--- Fig. 5a: CDF of collective call sizes ---\n";
  // Sample each network's size distribution and report the CDF at decade
  // boundaries (the x-axis of the paper's plot).
  const std::vector<double> decades = {1e2, 1e3, 1e4, 1e5,
                                       1e6, 1e7, 1e8, 1e9};
  std::vector<std::string> columns = {"Network"};
  for (const double d : decades) {
    columns.push_back("<=1e" + util::fixed(std::log10(d), 0));
  }
  util::Table t(columns);

  util::Rng rng(5);
  for (const auto& w : workload::all_workloads()) {
    if (!w.name.starts_with("vgg") && !w.name.starts_with("alex") &&
        !w.name.starts_with("res") && !w.name.starts_with("incep") &&
        !w.name.starts_with("goog") && !w.name.starts_with("caffe")) {
      continue;  // Fig. 5 covers the six CNNs
    }
    constexpr int kSamples = 20000;
    std::vector<double> sizes(kSamples);
    const double mu = std::log(w.comm.median_bytes);
    for (int i = 0; i < kSamples; ++i) {
      sizes[i] = std::exp(rng.normal(mu, w.comm.sigma_log));
    }
    std::sort(sizes.begin(), sizes.end());
    std::vector<std::string> row = {w.name};
    for (const double d : decades) {
      const auto below = std::lower_bound(sizes.begin(), sizes.end(), d) -
                         sizes.begin();
      row.push_back(util::fixed(static_cast<double>(below) / kSamples, 2));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.render()
            << "\nPaper shape: GoogleNet/ResNet mass sits below 1e5 bytes; "
               "AlexNet, VGG,\nInception, CaffeNet average >= 1e5 bytes.\n\n";
}

void fig5b() {
  std::cout << "--- Fig. 5b: communication calls and sensitivity ---\n";
  util::Table t({"Network", "Comm. calls per iter.", "Bandwidth Sensitive"});
  for (const char* name : {"alexnet", "inception-v3", "vgg-16", "resnet-50",
                           "caffenet", "googlenet"}) {
    const auto& w = workload::workload_by_name(name);
    t.add_row({w.name, util::fixed(w.comm.calls_per_iter, 0),
               w.bandwidth_sensitive ? "Yes" : "No"});
  }
  std::cout << t.render()
            << "\nMatches the paper's table exactly (call counts and "
               "sensitivity labels).\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig05_workloads");
  bench::print_header("Fig. 5", "Communication properties of ML workloads");
  fig5a();
  fig5b();
  return report.write();
}
