// Observability bench (obs/): what does the runtime observability layer
// cost when it is off, and what does it cost when it is on?
//
//  1. Disabled overhead — the same 1000-server fleet run with no
//     observer at all (the seed configuration) vs an Observer whose
//     every backend is off (all instrumentation sites branch on a null
//     pointer either way). Twelve interleaved pairs with the order
//     flipped every other pair; the headline disabled_overhead_pct is
//     the median per-pair difference and the acceptance gate is <= 1%.
//  2. Enabled overhead — the same trace with tracing + counters +
//     telemetry all on, reported as enabled_overhead_pct plus the
//     event/sample volumes, so the cost of actually observing is a
//     committed number rather than folklore.
//  3. Span micro-throughput — spans/second against a live sink from a
//     single thread, and the per-span cost of the disabled (null-sink)
//     path, which the <= 1% gate rests on.
//
//   ./bench_observability [jobs_per_server] [--json[=path]]
//                         [--trace=path] [--telemetry=path]
//
// --trace / --telemetry run one small fully-observed fleet and write
// the Chrome trace-event JSON and the telemetry JSONL there (the CI
// smoke feeds both to tools/trace_summary.py).

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cluster/fleet.hpp"
#include "graph/topology.hpp"
#include "obs/obs.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace mapa;

namespace {

std::vector<cluster::ServerSpec> dgx_fleet(std::size_t servers) {
  cluster::FleetArchetype arch;
  arch.name = "dgx1v";
  arch.topology = graph::TopologyHandle(graph::dgx1_v100());
  arch.policy = "topo-aware";
  return cluster::archetype_fleet_specs(servers, {arch});
}

enum class ObserverMode { kNone, kDisabled, kEnabled };

std::shared_ptr<obs::Observer> make_observer(ObserverMode mode) {
  switch (mode) {
    case ObserverMode::kNone:
      return nullptr;
    case ObserverMode::kDisabled:
      return std::make_shared<obs::Observer>(obs::ObsConfig{});
    case ObserverMode::kEnabled: {
      obs::ObsConfig config;
      config.tracing = true;
      config.counters = true;
      config.telemetry_every_ticks = 64;
      return std::make_shared<obs::Observer>(config);
    }
  }
  return nullptr;
}

struct TimedRun {
  double wall_ms = 0.0;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  std::size_t telemetry_samples = 0;
};

/// One timed run of `jobs` on a 1000-server fleet with sequential
/// probing (threads = 1, so thread-pool scheduling jitter stays out of
/// a sub-1% comparison).
TimedRun timed_run(ObserverMode mode, const std::vector<workload::Job>& jobs) {
  auto specs = dgx_fleet(1000);
  cluster::ClusterConfig config;
  config.selection = "least-loaded";
  config.shards = 32;
  config.threads = 1;
  config.seed = 42;
  config.observer = make_observer(mode);

  cluster::FleetSimulator fleet(std::move(specs), config);
  const auto wall_start = std::chrono::steady_clock::now();
  const auto result = fleet.run(jobs);
  const auto wall_end = std::chrono::steady_clock::now();
  if (result.records.size() != jobs.size()) {
    std::cerr << "observability run lost jobs\n";
  }

  TimedRun timed;
  timed.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  if (config.observer != nullptr && config.observer->trace() != nullptr) {
    timed.trace_events = config.observer->trace()->size();
    timed.trace_dropped = config.observer->trace()->dropped();
  }
  if (config.observer != nullptr && config.observer->telemetry() != nullptr) {
    timed.telemetry_samples = config.observer->telemetry()->size();
  }
  return timed;
}

/// Median per-pair overhead of `variant` over `baseline`, interleaved
/// with the order flipped every other pair (bench_resilience's
/// methodology: machine drift hits both sides alike, and the median
/// means one descheduled run cannot fake an overhead either way).
double paired_overhead_pct(ObserverMode baseline, ObserverMode variant,
                           const std::vector<workload::Job>& jobs,
                           double* baseline_ms, double* variant_ms) {
  // Two discarded warmup runs: the first iterations pay for page
  // faults and allocator growth (~40% slower in practice), which would
  // otherwise land entirely on whichever side runs first. Each pair
  // side is then a best-of-two — a deschedule can only inflate a run,
  // so the min is the honest estimate of that side at that moment.
  timed_run(baseline, jobs);
  timed_run(variant, jobs);
  const auto best_of_two = [&](ObserverMode mode) {
    return std::min(timed_run(mode, jobs).wall_ms,
                    timed_run(mode, jobs).wall_ms);
  };
  std::vector<double> pair_pct;
  for (int i = 0; i < 12; ++i) {
    double off;
    double on;
    if (i % 2 == 0) {
      off = best_of_two(baseline);
      on = best_of_two(variant);
    } else {
      on = best_of_two(variant);
      off = best_of_two(baseline);
    }
    if (i == 0 || off < *baseline_ms) *baseline_ms = off;
    if (i == 0 || on < *variant_ms) *variant_ms = on;
    pair_pct.push_back((on - off) / off * 100.0);
  }
  return util::quantile(pair_pct, 0.5);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "observability");
  std::size_t jobs_per_server = 8;
  std::string trace_path;
  std::string telemetry_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) trace_path = arg.substr(8);
    if (arg.rfind("--telemetry=", 0) == 0) telemetry_path = arg.substr(12);
  }
  if (argc > 1 && argv[1][0] != '-') {
    jobs_per_server = static_cast<std::size_t>(std::stoul(argv[1]));
  }

  bench::print_header(
      "obs/ runtime observability",
      "Disabled and enabled overhead of tracing + counters + telemetry "
      "on a 1000-server fleet run, and span micro-throughput");

  const auto jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(1000, jobs_per_server));

  // 1. Disabled overhead: no observer vs an all-off Observer. Both
  // resolve every site to a null-pointer branch; the difference is the
  // shared_ptr plumbing and the per-run backend lookups, and the gate
  // says it must stay within noise of zero.
  double none_ms = 0.0;
  double disabled_ms = 0.0;
  const double disabled_pct = paired_overhead_pct(
      ObserverMode::kNone, ObserverMode::kDisabled, jobs, &none_ms,
      &disabled_ms);
  std::cout << "no observer: " << util::fixed(none_ms, 1)
            << " ms, observer disabled: " << util::fixed(disabled_ms, 1)
            << " ms -> overhead " << util::fixed(disabled_pct, 2) << "%\n";
  report.metric("no_observer_wall_ms", none_ms);
  report.metric("disabled_wall_ms", disabled_ms);
  report.metric("disabled_overhead_pct", disabled_pct);

  // 2. Enabled overhead: the same run with everything collecting.
  double none2_ms = 0.0;
  double enabled_ms = 0.0;
  const double enabled_pct = paired_overhead_pct(
      ObserverMode::kNone, ObserverMode::kEnabled, jobs, &none2_ms,
      &enabled_ms);
  const TimedRun enabled = timed_run(ObserverMode::kEnabled, jobs);
  std::cout << "observer enabled: " << util::fixed(enabled_ms, 1)
            << " ms -> overhead " << util::fixed(enabled_pct, 2) << "% ("
            << enabled.trace_events << " events, " << enabled.trace_dropped
            << " dropped, " << enabled.telemetry_samples
            << " telemetry samples)\n\n";
  report.metric("enabled_wall_ms", enabled_ms);
  report.metric("enabled_overhead_pct", enabled_pct);
  report.metric("trace_events", static_cast<double>(enabled.trace_events));
  report.metric("trace_dropped", static_cast<double>(enabled.trace_dropped));
  report.metric("telemetry_samples",
                static_cast<double>(enabled.telemetry_samples));

  // 3. Span micro-throughput: a tight loop of two-arg spans against a
  // live sink, and the same loop against a null sink (the disabled
  // path's per-span cost — the number the <= 1% gate rests on).
  constexpr std::size_t kSpans = 400000;
  obs::TraceSink sink(kSpans + 16);
  auto micro_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kSpans; ++i) {
    obs::Span span(&sink, "bench", "span");
    span.arg("i", i);
    span.arg("phase", "micro");
  }
  auto micro_end = std::chrono::steady_clock::now();
  const double live_s =
      std::chrono::duration<double>(micro_end - micro_start).count();
  const double spans_per_sec = static_cast<double>(kSpans) / live_s;

  micro_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kSpans; ++i) {
    obs::Span span(nullptr, "bench", "span");
    span.arg("i", i);
    span.arg("phase", "micro");
  }
  micro_end = std::chrono::steady_clock::now();
  const double null_ns =
      std::chrono::duration<double, std::nano>(micro_end - micro_start)
          .count() /
      static_cast<double>(kSpans);

  util::Table table({"path", "per-span", "throughput"});
  table.add_row({"live sink",
                 util::fixed(live_s * 1e9 / static_cast<double>(kSpans), 1) +
                     " ns",
                 util::fixed(spans_per_sec / 1e6, 2) + " M spans/s"});
  table.add_row({"null sink (disabled)", util::fixed(null_ns, 2) + " ns", "-"});
  std::cout << table.render() << '\n';
  report.metric("spans_per_sec", spans_per_sec);
  report.metric("disabled_span_ns", null_ns);

  // Artifact mode: one small fully-observed fleet, written to disk for
  // tools/trace_summary.py and for loading into Perfetto by hand.
  if (!trace_path.empty() || !telemetry_path.empty()) {
    obs::ObsConfig config;
    config.tracing = true;
    config.counters = true;
    config.telemetry_every_ticks = 16;
    auto observer = std::make_shared<obs::Observer>(config);
    cluster::ClusterConfig fleet_config;
    fleet_config.selection = "least-loaded";
    fleet_config.shards = 4;
    fleet_config.threads = 4;
    fleet_config.seed = 42;
    fleet_config.observer = observer;
    // Preserve enumerates through the match cache, so the artifact
    // exercises the whole span taxonomy (cache/ and match/ included),
    // not just the dispatcher categories topo-aware emits.
    cluster::FleetArchetype arch;
    arch.name = "dgx1v";
    arch.topology = graph::TopologyHandle(graph::dgx1_v100());
    arch.policy = "preserve";
    cluster::FleetSimulator fleet(cluster::archetype_fleet_specs(64, {arch}),
                                  fleet_config);
    const auto artifact_jobs = workload::generate_fleet_trace(
        workload::fleet_scale_trace_config(64, 8));
    fleet.run(artifact_jobs);
    if (!trace_path.empty()) {
      observer->trace()->write_json(trace_path);
      std::cout << "wrote " << trace_path << " ("
                << observer->trace()->size() << " events)\n";
    }
    if (!telemetry_path.empty()) {
      observer->telemetry()->write_jsonl(telemetry_path);
      std::cout << "wrote " << telemetry_path << " ("
                << observer->telemetry()->size() << " samples)\n";
    }
    std::cout << "registry: " << observer->registry()->to_json() << "\n";
  }

  return report.write();
}
