// Ablation studies for the design choices DESIGN.md calls out (these go
// beyond the paper's figures but probe its design decisions):
//  1. Preserve scoring sensitive jobs with the Eq. 2 *prediction* (paper)
//     vs the measured-microbenchmark oracle — how much does the
//     regression's error cost?
//  2. FIFO (paper) vs backfill queue reordering.
//  3. MIG-style virtualized hardware graphs: small-job packing on
//     2-instance DGX-V vs the physical machine.
//  4. Random valid placement vs MAPA scoring — how much of the win is
//     pattern awareness alone?

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "graph/patterns.hpp"
#include "mig/mig.hpp"
#include "policy/preserve.hpp"

using namespace mapa;

namespace {

void predicted_vs_measured() {
  std::cout << "--- Ablation 1: Eq. 2 prediction vs microbench oracle ---\n";
  const auto jobs = bench::paper_job_mix(200, 101);
  const graph::Graph hw = graph::dgx1_v100();

  policy::PolicyConfig oracle_config;
  oracle_config.score_sensitive_with_microbench = true;

  const auto predicted = sim::run_simulation(hw, "preserve", jobs);
  sim::Simulator oracle_sim(
      hw, std::make_unique<policy::PreservePolicy>(oracle_config));
  const auto oracle = oracle_sim.run(jobs);

  util::Table t({"scorer", "sens. exec q50", "sens. exec q75",
                 "sens. measured EffBW q50", "makespan (h)"});
  for (const auto* r : {&predicted, &oracle}) {
    const auto exec =
        sim::pooled_box_plot(*r, sim::RecordField::kExecTime, true);
    const auto bw =
        sim::pooled_box_plot(*r, sim::RecordField::kMeasuredEffBw, true);
    t.add_row({r == &predicted ? "Eq.2 prediction (paper)" : "microbench",
               util::fixed(exec.median, 1), util::fixed(exec.q75, 1),
               util::fixed(bw.median, 2),
               util::fixed(r->makespan_s / 3600.0, 2)});
  }
  std::cout << t.render()
            << "\nExpectation: near-identical rows — the regression is a "
               "faithful stand-in\nfor microbenchmarking every candidate "
               "(paper §3.4.3).\n\n";
}

void fifo_vs_backfill() {
  std::cout << "--- Ablation 2: FIFO (paper) vs backfill reordering ---\n";
  const auto jobs = bench::paper_job_mix(200, 103);
  const graph::Graph hw = graph::dgx1_v100();

  util::Table t({"queue", "makespan (h)", "jobs/h", "mean wait (s)"});
  for (const bool backfill : {false, true}) {
    sim::SimConfig config;
    config.backfill = backfill;
    sim::Simulator simulator(hw, policy::make_policy("preserve"), config);
    const auto result = simulator.run(jobs);
    double wait = 0.0;
    for (const auto& r : result.records) wait += r.start_s - r.queued_s;
    wait /= static_cast<double>(result.records.size());
    t.add_row({backfill ? "backfill(16)" : "FIFO",
               util::fixed(result.makespan_s / 3600.0, 2),
               util::fixed(result.throughput_jobs_per_hour(), 1),
               util::fixed(wait, 1)});
  }
  std::cout << t.render()
            << "\nExpectation: backfill cuts mean queue wait by letting "
               "small jobs slip\npast a blocked wide head.\n\n";
}

void mig_packing() {
  std::cout << "--- Ablation 3: MIG virtualization (2 instances/GPU) ---\n";
  const graph::Graph physical = graph::dgx1_v100();
  const auto expansion = mig::expand_mig_uniform(physical, 2);

  // Small-job stream: how many 1-2 GPU jobs fit concurrently?
  const auto count_fit = [](const graph::Graph& hw) {
    core::Mapa mapa(hw, policy::make_policy("preserve"));
    std::size_t placed = 0;
    bool progressing = true;
    while (progressing) {
      progressing = false;
      if (mapa.allocate(graph::ring(2), true)) {
        ++placed;
        progressing = true;
      }
      if (mapa.allocate(graph::single_gpu(), false)) {
        ++placed;
        progressing = true;
      }
    }
    return placed;
  };
  util::Table t({"hardware graph", "devices", "small jobs packed"});
  t.add_row({"physical DGX-V", std::to_string(physical.num_vertices()),
             std::to_string(count_fit(physical))});
  t.add_row({"MIG 2x (virtual)",
             std::to_string(expansion.virtual_graph.num_vertices()),
             std::to_string(count_fit(expansion.virtual_graph))});
  std::cout << t.render()
            << "\nExpectation: the virtual graph packs ~2x the small jobs "
               "— the paper's\n§3.3 many-to-one suggestion realized with "
               "the unmodified core.\n\n";
}

void random_vs_scored() {
  std::cout << "--- Ablation 4: random valid placement vs MAPA scoring ---\n";
  const auto jobs = bench::paper_job_mix(200, 107);
  const graph::Graph hw = graph::dgx1_v100();

  util::Table t({"policy", "sens. EffBW q25", "sens. EffBW q50",
                 "sens. exec q75"});
  for (const std::string name : {"random", "greedy", "preserve"}) {
    const auto result = sim::run_simulation(hw, name, jobs);
    const auto bw =
        sim::pooled_box_plot(result, sim::RecordField::kPredictedEffBw, true);
    const auto exec =
        sim::pooled_box_plot(result, sim::RecordField::kExecTime, true);
    t.add_row({name, util::fixed(bw.q25, 2), util::fixed(bw.median, 2),
               util::fixed(exec.q75, 1)});
  }
  std::cout << t.render()
            << "\nExpectation: random (pattern-aware but unscored) sits "
               "between baseline\nand the scored policies — scoring, not "
               "just matching, drives the win.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "ablations");
  bench::print_header("DESIGN.md ablations",
                      "Scorer fidelity, queue reordering, MIG, random");
  predicted_vs_measured();
  fifo_vs_backfill();
  mig_packing();
  random_vs_scored();
  return report.write();
}
