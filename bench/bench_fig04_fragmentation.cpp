// Reproduces paper Fig. 4: resource fragmentation under the baseline
// (lowest-free-GPU-id) allocator. 100 ML training jobs with uniformly
// random GPU counts run on the DGX-V; for each multi-GPU job we record
// BW_allocated / BW_ideal-allocation (aggregate bandwidth among the
// allocated GPUs over the best possible for that job size) and print the
// distribution per job size.

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "score/scores.hpp"

using namespace mapa;

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig04_fragmentation");
  bench::print_header(
      "Fig. 4", "BW_allocated / BW_ideal under baseline allocation, 100 jobs");

  const graph::Graph hw = graph::dgx1_v100();
  const auto jobs = bench::paper_job_mix(100, 4);
  const auto result = sim::run_simulation(hw, "baseline", jobs);

  // Pre-compute the per-size clique ideals (2..5 GPUs).
  std::map<std::size_t, double> ideal;
  for (std::size_t k = 2; k <= 5; ++k) {
    ideal[k] = score::ideal_clique_bandwidth(hw, k);
  }

  std::map<std::size_t, std::vector<double>> quality;
  for (const auto& r : result.records) {
    if (r.job.num_gpus < 2) continue;
    const double allocated = score::clique_bandwidth(
        hw, std::vector<graph::VertexId>(r.gpus.begin(), r.gpus.end()));
    quality[r.job.num_gpus].push_back(allocated / ideal[r.job.num_gpus]);
  }

  util::Table t({"NumGPUs", "min", "q25", "median", "q75", "max", "n"});
  for (const auto& [gpus, ratios] : quality) {
    const auto bp = util::box_plot(ratios);
    auto cells = bench::box_plot_cells(bp, 3);
    cells.insert(cells.begin(), std::to_string(gpus));
    t.add_row(std::move(cells));
  }
  std::cout << t.render();

  // The paper's headline numbers for 3-GPU jobs: 75% of jobs at >= 20%
  // bandwidth loss, 25% at >= 45% loss.
  if (quality.count(3)) {
    const auto bp3 = util::box_plot(quality[3]);
    std::cout << "\n3-GPU jobs: 75% of jobs have quality <= "
              << util::fixed(bp3.q75, 3) << " (paper: <= 0.80), "
              << "25% have quality <= " << util::fixed(bp3.q25, 3)
              << " (paper: <= 0.55)\n";
  }
  std::cout << "\nPaper shape: a large majority of jobs sit below quality "
               "1.0, and\nsmaller jobs fragment harder (wider, lower "
               "boxes for 2-3 GPUs).\n";
  if (quality.count(3)) {
    const auto bp3 = util::box_plot(quality[3]);
    report.metric("quality_3gpu_q25", bp3.q25);
    report.metric("quality_3gpu_q75", bp3.q75);
  }
  return report.write();
}
