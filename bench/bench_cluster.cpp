// Fleet scaling study (cluster/): sweeps fleet size 1 -> 32 homogeneous
// DGX-1V servers under three server-selection policies, plus a mixed
// heterogeneous fleet, and reports scheduling wall-clock, fleet
// throughput, queue waits, utilization balance, and cache behavior. This
// is the perf-trajectory point for the cluster subsystem: the scaling
// curve shows how dispatch cost grows with fleet size.
//
//   ./bench_cluster [jobs_per_server] [--json[=path]]

#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cluster/fleet.hpp"
#include "cluster/metrics.hpp"
#include "graph/topology.hpp"
#include "util/stats.hpp"

using namespace mapa;

namespace {

struct RunPoint {
  std::string fleet;
  std::size_t servers = 0;
  std::string selection;
  double wall_ms = 0.0;
  double makespan_h = 0.0;
  double jobs_per_hour = 0.0;
  double wait_median_s = 0.0;
  double utilization_mean = 0.0;
  double quality_spread = 0.0;
  double cache_hit_rate = 0.0;
};

RunPoint run_point(const std::string& fleet_name,
                   std::vector<graph::Graph> topologies,
                   const std::string& selection,
                   const std::vector<workload::Job>& jobs) {
  cluster::ClusterConfig config;
  config.selection = selection;
  config.threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  config.seed = 42;

  const std::size_t servers = topologies.size();
  const auto wall_start = std::chrono::steady_clock::now();
  const auto result =
      cluster::run_fleet(std::move(topologies), "preserve", jobs, config);
  const auto wall_end = std::chrono::steady_clock::now();

  RunPoint point;
  point.fleet = fleet_name;
  point.servers = servers;
  point.selection = selection;
  point.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  point.makespan_h = result.makespan_s / 3600.0;
  point.jobs_per_hour = result.throughput_jobs_per_hour();
  point.wait_median_s = cluster::queue_wait_box_plot(result).median;
  point.utilization_mean =
      util::mean(cluster::per_server_utilization(result));
  point.quality_spread = cluster::allocation_quality_spread(result);
  point.cache_hit_rate = cluster::fleet_cache_hit_rate(result);
  return point;
}

std::vector<workload::Job> fleet_trace(std::size_t servers,
                                       std::size_t jobs_per_server,
                                       std::size_t max_gpus) {
  workload::FleetTraceConfig config;
  config.num_jobs = jobs_per_server * servers;
  // Scale offered load with fleet size so per-server pressure is constant
  // across the sweep (one arrival per 20 s per server).
  config.arrival_rate_per_s = 0.05 * static_cast<double>(servers);
  config.max_gpus = max_gpus;
  config.seed = 42;
  return workload::generate_fleet_trace(config);
}

std::string metric_key(const RunPoint& p, const std::string& what) {
  std::string selection = p.selection;
  for (char& c : selection) {
    if (c == '-') c = '_';
  }
  return p.fleet + "_n" + std::to_string(p.servers) + "_" + selection + "_" +
         what;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "cluster");
  std::size_t jobs_per_server = 25;
  if (argc > 1 && argv[1][0] != '-') {
    jobs_per_server = static_cast<std::size_t>(std::stoul(argv[1]));
  }

  bench::print_header(
      "cluster/ fleet scheduler",
      "Fleet-size scaling sweep (1 -> 32 DGX-1V) x server-selection "
      "policies, plus a mixed heterogeneous fleet");

  const std::vector<std::string> selections = {"first-fit", "least-loaded",
                                               "best-score"};
  const std::vector<std::size_t> fleet_sizes = {1, 2, 4, 8, 16, 32};

  util::Table table({"fleet", "servers", "selection", "wall (ms)",
                     "makespan (h)", "jobs/h", "wait p50 (s)", "mean util",
                     "EffBW spread", "cache hit"});
  std::vector<RunPoint> points;

  for (const std::size_t n : fleet_sizes) {
    const auto jobs = fleet_trace(n, jobs_per_server, /*max_gpus=*/5);
    for (const std::string& selection : selections) {
      std::vector<graph::Graph> fleet;
      for (std::size_t i = 0; i < n; ++i) fleet.push_back(graph::dgx1_v100());
      points.push_back(run_point("dgx1v", std::move(fleet), selection, jobs));
    }
  }

  // Mixed heterogeneous fleet: two of each machine class the paper draws
  // (8-GPU cube-mesh, 6-GPU Summit node, 16-GPU torus, 16-GPU NVSwitch).
  {
    const auto jobs = fleet_trace(8, jobs_per_server, /*max_gpus=*/5);
    for (const std::string& selection : selections) {
      std::vector<graph::Graph> fleet;
      for (int i = 0; i < 2; ++i) {
        fleet.push_back(graph::dgx1_v100());
        fleet.push_back(graph::summit_node());
        fleet.push_back(graph::torus2d_16());
        fleet.push_back(graph::nvswitch_16());
      }
      points.push_back(run_point("mixed", std::move(fleet), selection, jobs));
    }
  }

  for (const RunPoint& p : points) {
    table.add_row({p.fleet, std::to_string(p.servers), p.selection,
                   util::fixed(p.wall_ms, 1), util::fixed(p.makespan_h, 2),
                   util::fixed(p.jobs_per_hour, 1),
                   util::fixed(p.wait_median_s, 1),
                   util::fixed(p.utilization_mean, 3),
                   util::fixed(p.quality_spread, 2),
                   util::fixed(p.cache_hit_rate, 3)});
    report.metric(metric_key(p, "wall_ms"), p.wall_ms);
    report.metric(metric_key(p, "jobs_per_hour"), p.jobs_per_hour);
    report.metric(metric_key(p, "wait_median_s"), p.wait_median_s);
    report.metric(metric_key(p, "utilization_mean"), p.utilization_mean);
    report.metric(metric_key(p, "cache_hit_rate"), p.cache_hit_rate);
  }
  std::cout << table.render() << '\n';

  // Headline scaling metric: dispatch wall-clock per job at the sweep's
  // extremes under best-score (every server probed for every placement).
  double wall_n1 = 0.0;
  double wall_n32 = 0.0;
  for (const RunPoint& p : points) {
    if (p.fleet != "dgx1v" || p.selection != "best-score") continue;
    if (p.servers == 1) wall_n1 = p.wall_ms;
    if (p.servers == 32) wall_n32 = p.wall_ms;
  }
  const double jobs_n1 = static_cast<double>(jobs_per_server);
  const double jobs_n32 = static_cast<double>(jobs_per_server) * 32.0;
  if (wall_n1 > 0.0 && wall_n32 > 0.0) {
    const double per_job_n1 = wall_n1 / jobs_n1;
    const double per_job_n32 = wall_n32 / jobs_n32;
    std::cout << "best-score dispatch cost: " << util::fixed(per_job_n1, 3)
              << " ms/job at n=1 vs " << util::fixed(per_job_n32, 3)
              << " ms/job at n=32 ("
              << util::fixed(per_job_n32 / per_job_n1, 2) << "x)\n";
    report.metric("best_score_ms_per_job_n1", per_job_n1);
    report.metric("best_score_ms_per_job_n32", per_job_n32);
    report.metric("best_score_per_job_scaling_n32_over_n1",
                  per_job_n32 / per_job_n1);
  }

  return report.write();
}
