// Fleet scaling study (cluster/): two sweeps plus a memory point.
//
//  1. The original selection-policy sweep — fleet size 1 -> 32 homogeneous
//     DGX-1V servers under three server-selection policies, plus a mixed
//     heterogeneous fleet — reporting scheduling wall-clock, fleet
//     throughput, queue waits, utilization balance, and cache behavior.
//  2. The sharded-dispatcher scaling sweep — 32 -> 1k -> 10k servers
//     stamped from one shared archetype (cluster::archetype_fleet_specs),
//     recording dispatcher microseconds per job as the fleet grows, plus
//     a 64-server / 2-shard smoke point (the CI bench-smoke sharded run)
//     and a head-to-head at 1k servers: sharded dispatcher vs the
//     unsharded probe-all path on the identical trace.
//  3. Resident bytes per server at 1k rack-class servers: shared
//     TopologyHandle archetype vs the retired per-server dense
//     graph::Graph copies (graph::Graph::memory_bytes).
//
// This is the perf-trajectory point for the cluster subsystem: the
// scaling curve shows how dispatch cost grows with fleet size, and the
// sharded/unsharded pair shows what the two-level dispatcher buys.
//
//   ./bench_cluster [jobs_per_server] [--json[=path]]

#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cluster/fleet.hpp"
#include "cluster/metrics.hpp"
#include "graph/topology.hpp"
#include "util/stats.hpp"

using namespace mapa;

namespace {

struct RunPoint {
  std::string fleet;
  std::size_t servers = 0;
  std::string selection;
  double wall_ms = 0.0;
  double makespan_h = 0.0;
  double jobs_per_hour = 0.0;
  double wait_median_s = 0.0;
  double utilization_mean = 0.0;
  double quality_spread = 0.0;
  double cache_hit_rate = 0.0;
};

RunPoint run_point(const std::string& fleet_name,
                   std::vector<graph::Graph> topologies,
                   const std::string& selection,
                   const std::vector<workload::Job>& jobs) {
  cluster::ClusterConfig config;
  config.selection = selection;
  config.threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  config.seed = 42;

  const std::size_t servers = topologies.size();
  const auto wall_start = std::chrono::steady_clock::now();
  const auto result =
      cluster::run_fleet(std::move(topologies), "preserve", jobs, config);
  const auto wall_end = std::chrono::steady_clock::now();

  RunPoint point;
  point.fleet = fleet_name;
  point.servers = servers;
  point.selection = selection;
  point.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  point.makespan_h = result.makespan_s / 3600.0;
  point.jobs_per_hour = result.throughput_jobs_per_hour();
  point.wait_median_s = cluster::queue_wait_box_plot(result).median;
  point.utilization_mean =
      util::mean(cluster::per_server_utilization(result));
  point.quality_spread = cluster::allocation_quality_spread(result);
  point.cache_hit_rate = cluster::fleet_cache_hit_rate(result);
  return point;
}

std::vector<workload::Job> fleet_trace(std::size_t servers,
                                       std::size_t jobs_per_server,
                                       std::size_t max_gpus) {
  workload::FleetTraceConfig config;
  config.num_jobs = jobs_per_server * servers;
  // Scale offered load with fleet size so per-server pressure is constant
  // across the sweep (one arrival per 20 s per server).
  config.arrival_rate_per_s = 0.05 * static_cast<double>(servers);
  config.max_gpus = max_gpus;
  config.seed = 42;
  return workload::generate_fleet_trace(config);
}

std::string metric_key(const RunPoint& p, const std::string& what) {
  std::string selection = p.selection;
  for (char& c : selection) {
    if (c == '-') c = '_';
  }
  return p.fleet + "_n" + std::to_string(p.servers) + "_" + selection + "_" +
         what;
}

/// One sharded-dispatcher scaling point: `servers` DGX-1V servers stamped
/// from ONE shared archetype, least-loaded selection (probe-all within
/// the shard, so dispatch cost is visible), topo-aware per-server policy
/// (the non-enumerating choice sensible at fleet scale), and the
/// fleet-scale trace preset whose arrival pressure tracks the fleet size.
struct ScalePoint {
  std::size_t servers = 0;
  std::size_t shards = 0;
  std::size_t jobs = 0;
  double wall_ms = 0.0;
  double dispatch_us_per_job = 0.0;
  double jobs_per_hour = 0.0;
  double memo_hit_rate = 0.0;
};

ScalePoint run_scale_point(std::size_t servers, std::size_t shards,
                           std::size_t jobs_per_server) {
  workload::FleetTraceConfig trace =
      workload::fleet_scale_trace_config(servers, jobs_per_server);
  const auto jobs = workload::generate_fleet_trace(trace);

  cluster::FleetArchetype arch;
  arch.name = "dgx1v";
  arch.topology = graph::TopologyHandle(graph::dgx1_v100());
  arch.policy = "topo-aware";
  auto specs = cluster::archetype_fleet_specs(servers, {arch});

  cluster::ClusterConfig config;
  config.selection = "least-loaded";
  config.shards = shards;
  config.threads =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  config.seed = 42;

  cluster::FleetSimulator fleet(std::move(specs), config);
  const auto wall_start = std::chrono::steady_clock::now();
  const auto result = fleet.run(jobs);
  const auto wall_end = std::chrono::steady_clock::now();

  ScalePoint point;
  point.servers = servers;
  point.shards = result.shards;
  point.jobs = jobs.size();
  point.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  point.dispatch_us_per_job =
      result.total_scheduling_ms * 1000.0 / static_cast<double>(jobs.size());
  point.jobs_per_hour = result.throughput_jobs_per_hour();
  std::uint64_t probes = 0;
  std::uint64_t memo_hits = 0;
  for (const cluster::ServerResult& sr : result.servers) {
    probes += sr.probes;
    memo_hits += sr.probe_memo_hits;
  }
  if (probes + memo_hits > 0) {
    point.memo_hit_rate = static_cast<double>(memo_hits) /
                          static_cast<double>(probes + memo_hits);
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "cluster");
  std::size_t jobs_per_server = 25;
  if (argc > 1 && argv[1][0] != '-') {
    jobs_per_server = static_cast<std::size_t>(std::stoul(argv[1]));
  }
  const std::size_t threads =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  // So committed points are interpretable across machines (JsonReport
  // records hardware_concurrency itself).
  report.metric("threads", static_cast<double>(threads));

  bench::print_header(
      "cluster/ fleet scheduler",
      "Fleet-size scaling sweep (1 -> 32 DGX-1V) x server-selection "
      "policies, a mixed heterogeneous fleet, and the sharded-dispatcher "
      "32 -> 1k -> 10k sweep");

  const std::vector<std::string> selections = {"first-fit", "least-loaded",
                                               "best-score"};
  const std::vector<std::size_t> fleet_sizes = {1, 2, 4, 8, 16, 32};

  util::Table table({"fleet", "servers", "selection", "wall (ms)",
                     "makespan (h)", "jobs/h", "wait p50 (s)", "mean util",
                     "EffBW spread", "cache hit"});
  std::vector<RunPoint> points;

  for (const std::size_t n : fleet_sizes) {
    const auto jobs = fleet_trace(n, jobs_per_server, /*max_gpus=*/5);
    for (const std::string& selection : selections) {
      std::vector<graph::Graph> fleet;
      for (std::size_t i = 0; i < n; ++i) fleet.push_back(graph::dgx1_v100());
      points.push_back(run_point("dgx1v", std::move(fleet), selection, jobs));
    }
  }

  // Mixed heterogeneous fleet: two of each machine class the paper draws
  // (8-GPU cube-mesh, 6-GPU Summit node, 16-GPU torus, 16-GPU NVSwitch).
  {
    const auto jobs = fleet_trace(8, jobs_per_server, /*max_gpus=*/5);
    for (const std::string& selection : selections) {
      std::vector<graph::Graph> fleet;
      for (int i = 0; i < 2; ++i) {
        fleet.push_back(graph::dgx1_v100());
        fleet.push_back(graph::summit_node());
        fleet.push_back(graph::torus2d_16());
        fleet.push_back(graph::nvswitch_16());
      }
      points.push_back(run_point("mixed", std::move(fleet), selection, jobs));
    }
  }

  for (const RunPoint& p : points) {
    table.add_row({p.fleet, std::to_string(p.servers), p.selection,
                   util::fixed(p.wall_ms, 1), util::fixed(p.makespan_h, 2),
                   util::fixed(p.jobs_per_hour, 1),
                   util::fixed(p.wait_median_s, 1),
                   util::fixed(p.utilization_mean, 3),
                   util::fixed(p.quality_spread, 2),
                   util::fixed(p.cache_hit_rate, 3)});
    report.metric(metric_key(p, "wall_ms"), p.wall_ms);
    report.metric(metric_key(p, "jobs_per_hour"), p.jobs_per_hour);
    report.metric(metric_key(p, "wait_median_s"), p.wait_median_s);
    report.metric(metric_key(p, "utilization_mean"), p.utilization_mean);
    report.metric(metric_key(p, "cache_hit_rate"), p.cache_hit_rate);
  }
  std::cout << table.render() << '\n';

  // Headline scaling metric: dispatch wall-clock per job at the sweep's
  // extremes under best-score (every server probed for every placement).
  double wall_n1 = 0.0;
  double wall_n32 = 0.0;
  for (const RunPoint& p : points) {
    if (p.fleet != "dgx1v" || p.selection != "best-score") continue;
    if (p.servers == 1) wall_n1 = p.wall_ms;
    if (p.servers == 32) wall_n32 = p.wall_ms;
  }
  const double jobs_n1 = static_cast<double>(jobs_per_server);
  const double jobs_n32 = static_cast<double>(jobs_per_server) * 32.0;
  if (wall_n1 > 0.0 && wall_n32 > 0.0) {
    const double per_job_n1 = wall_n1 / jobs_n1;
    const double per_job_n32 = wall_n32 / jobs_n32;
    std::cout << "best-score dispatch cost: " << util::fixed(per_job_n1, 3)
              << " ms/job at n=1 vs " << util::fixed(per_job_n32, 3)
              << " ms/job at n=32 ("
              << util::fixed(per_job_n32 / per_job_n1, 2) << "x)\n";
    report.metric("best_score_ms_per_job_n1", per_job_n1);
    report.metric("best_score_ms_per_job_n32", per_job_n32);
    report.metric("best_score_per_job_scaling_n32_over_n1",
                  per_job_n32 / per_job_n1);
  }

  // ---- Sharded-dispatcher scaling sweep: 32 -> 1k -> 10k servers, one
  // shared DGX-1V archetype, plus the 64-server / 2-shard smoke point the
  // CI bench-smoke job leans on.
  struct SweepEntry {
    std::string key;
    std::size_t servers;
    std::size_t shards;
  };
  const std::vector<SweepEntry> sweep = {
      {"smoke_n64_s2", 64, 2},
      {"scale_n32", 32, 2},
      {"scale_n1000", 1000, 32},
      {"scale_n10000", 10000, 64},
  };
  util::Table scale_table({"servers", "shards", "jobs", "wall (ms)",
                           "dispatch (us/job)", "jobs/h", "memo hit"});
  for (const SweepEntry& entry : sweep) {
    const ScalePoint p =
        run_scale_point(entry.servers, entry.shards, jobs_per_server);
    scale_table.add_row(
        {std::to_string(p.servers), std::to_string(p.shards),
         std::to_string(p.jobs), util::fixed(p.wall_ms, 1),
         util::fixed(p.dispatch_us_per_job, 2),
         util::fixed(p.jobs_per_hour, 1), util::fixed(p.memo_hit_rate, 3)});
    report.metric(entry.key + "_dispatch_us_per_job", p.dispatch_us_per_job);
    report.metric(entry.key + "_wall_ms", p.wall_ms);
    report.metric(entry.key + "_memo_hit_rate", p.memo_hit_rate);
  }
  std::cout << "sharded dispatcher scaling (least-loaded, topo-aware, "
               "shared archetype):\n"
            << scale_table.render() << '\n';

  // ---- Head-to-head at 1k servers: the sharded dispatcher vs the
  // unsharded probe-all path (shards=1 disables the probe memo too, i.e.
  // the pre-sharding dispatcher) on the identical trace.
  {
    const ScalePoint sharded = run_scale_point(1000, 32, jobs_per_server);
    const ScalePoint unsharded = run_scale_point(1000, 1, jobs_per_server);
    const double speedup =
        sharded.dispatch_us_per_job > 0.0
            ? unsharded.dispatch_us_per_job / sharded.dispatch_us_per_job
            : 0.0;
    std::cout << "1k-server dispatch: sharded "
              << util::fixed(sharded.dispatch_us_per_job, 2)
              << " us/job vs unsharded "
              << util::fixed(unsharded.dispatch_us_per_job, 2) << " us/job ("
              << util::fixed(speedup, 2) << "x)\n";
    report.metric("n1000_sharded_dispatch_us_per_job",
                  sharded.dispatch_us_per_job);
    report.metric("n1000_unsharded_dispatch_us_per_job",
                  unsharded.dispatch_us_per_job);
    report.metric("n1000_sharded_speedup_x", speedup);
  }

  // ---- Resident bytes per server at 1k rack-class (64-GPU dgx_rack)
  // servers: one shared TopologyHandle archetype vs the retired design of
  // a dense graph::Graph copy per server. Mutable per-server state is the
  // busy mask + allocation ledger + name — the same either way — so the
  // delta is exactly the dense adjacency/bandwidth matrices.
  {
    const std::size_t n = 1000;
    const graph::TopologyHandle rack(graph::dgx_rack(8));
    const double graph_bytes = static_cast<double>(rack.memory_bytes());
    const double per_server_state =
        static_cast<double>(sizeof(core::Mapa)) +
        static_cast<double>(rack.num_vertices()) / 8.0 +  // busy mask bits
        32.0;                                             // name storage
    const double shared_bps =
        graph_bytes / static_cast<double>(n) + per_server_state;
    const double copied_bps = graph_bytes + per_server_state;
    std::cout << "1k-server rack fleet memory: "
              << util::fixed(shared_bps / 1024.0, 1)
              << " KiB/server shared archetype vs "
              << util::fixed(copied_bps / 1024.0, 1)
              << " KiB/server per-server copies ("
              << util::fixed(copied_bps / shared_bps, 1) << "x)\n";
    report.metric("n1000_bytes_per_server_shared", shared_bps);
    report.metric("n1000_bytes_per_server_copied", copied_bps);
    report.metric("n1000_memory_reduction_x", copied_bps / shared_bps);
  }

  return report.write();
}
