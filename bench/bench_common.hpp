#pragma once
// Shared helpers for the figure/table reproduction benches: a uniform
// header block, box-plot row formatting, and the standard 300-job DGX-V
// experiment (paper §4 "Jobs configuration") reused by several benches.

#include <iostream>
#include <string>
#include <vector>

#include "graph/topology.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace mapa::bench {

inline void print_header(const std::string& artifact,
                         const std::string& what) {
  std::cout << "==================================================\n"
            << "Reproduction of " << artifact << "\n"
            << what << "\n"
            << "==================================================\n\n";
}

inline std::vector<std::string> box_plot_cells(const util::BoxPlot& bp,
                                               int decimals = 1) {
  return {util::fixed(bp.min, decimals), util::fixed(bp.q25, decimals),
          util::fixed(bp.median, decimals), util::fixed(bp.q75, decimals),
          util::fixed(bp.max, decimals), std::to_string(bp.count)};
}

/// The paper's §4 job mix: 300 jobs, uniform workload mix, uniform 1-5
/// GPUs, all queued at time zero.
inline std::vector<workload::Job> paper_job_mix(std::size_t num_jobs = 300,
                                                std::uint64_t seed = 42) {
  workload::GeneratorConfig config;
  config.num_jobs = num_jobs;
  config.seed = seed;
  return workload::generate_jobs(config);
}

/// Run the four paper policies over one job list on one machine.
inline std::vector<sim::SimResult> run_paper_policies(
    const graph::Graph& hardware, const std::vector<workload::Job>& jobs) {
  std::vector<sim::SimResult> results;
  results.reserve(4);
  for (const std::string& policy : policy::paper_policy_names()) {
    results.push_back(sim::run_simulation(hardware, policy, jobs));
  }
  return results;
}

}  // namespace mapa::bench
