#pragma once
// Shared helpers for the figure/table reproduction benches: a uniform
// header block, box-plot row formatting, the standard 300-job DGX-V
// experiment (paper §4 "Jobs configuration") reused by several benches,
// and the `--json` perf-trajectory writer every driver feeds so each PR
// can commit measured BENCH_*.json points.

#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/topology.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace mapa::bench {

/// Machine-readable perf trajectory for a bench driver. Construct at the
/// top of main with argc/argv; when the driver was invoked with `--json`
/// (or `--json=path`), `write()` dumps the recorded metrics plus total
/// wall-clock to BENCH_<name>.json. Without the flag everything is a
/// no-op, so drivers stay pure stdout tools by default.
class JsonReport {
 public:
  JsonReport(int argc, char** argv, std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        enabled_ = true;
      } else if (arg.rfind("--json=", 0) == 0) {
        enabled_ = true;
        path_ = arg.substr(7);
      }
    }
    if (path_.empty()) path_ = "BENCH_" + name_ + ".json";
    // Every report records the host's core count up front: wall-clock
    // metrics are incomparable across machines without it, and hoisting
    // it here keeps the key uniform across all BENCH_*.json files
    // instead of each driver remembering (or forgetting) to emit it.
    metric("hardware_concurrency",
           static_cast<double>(std::thread::hardware_concurrency()));
  }

  bool enabled() const { return enabled_; }
  const std::string& path() const { return path_; }

  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Call at the end of main. Returns 0 on success (the driver's exit
  /// status), 1 when the file could not be written.
  int write() {
    if (!enabled_) return 0;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::ostringstream out;
    out.precision(std::numeric_limits<double>::max_digits10);
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    \"" << metrics_[i].first
          << "\": " << metrics_[i].second;
    }
    out << (metrics_.empty() ? "" : "\n  ") << "},\n  \"wall_s\": " << wall_s
        << "\n}\n";
    std::ofstream file(path_);
    file << out.str();
    file.close();  // flush before checking so buffered failures surface
    if (!file) {
      std::cerr << "failed to write " << path_ << "\n";
      return 1;
    }
    std::cout << "\nwrote " << path_ << "\n";
    return 0;
  }

 private:
  std::string name_;
  std::string path_;
  bool enabled_ = false;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> metrics_;
};

inline void print_header(const std::string& artifact,
                         const std::string& what) {
  std::cout << "==================================================\n"
            << "Reproduction of " << artifact << "\n"
            << what << "\n"
            << "==================================================\n\n";
}

inline std::vector<std::string> box_plot_cells(const util::BoxPlot& bp,
                                               int decimals = 1) {
  return {util::fixed(bp.min, decimals), util::fixed(bp.q25, decimals),
          util::fixed(bp.median, decimals), util::fixed(bp.q75, decimals),
          util::fixed(bp.max, decimals), std::to_string(bp.count)};
}

/// The paper's §4 job mix: 300 jobs, uniform workload mix, uniform 1-5
/// GPUs, all queued at time zero.
inline std::vector<workload::Job> paper_job_mix(std::size_t num_jobs = 300,
                                                std::uint64_t seed = 42) {
  workload::GeneratorConfig config;
  config.num_jobs = num_jobs;
  config.seed = seed;
  return workload::generate_jobs(config);
}

/// Run the four paper policies over one job list on one machine.
inline std::vector<sim::SimResult> run_paper_policies(
    const graph::Graph& hardware, const std::vector<workload::Job>& jobs) {
  std::vector<sim::SimResult> results;
  results.reserve(4);
  for (const std::string& policy : policy::paper_policy_names()) {
    results.push_back(sim::run_simulation(hardware, policy, jobs));
  }
  return results;
}

}  // namespace mapa::bench
