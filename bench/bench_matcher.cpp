// Matcher microbench: the measured perf trajectory for the bitset matching
// core. Times symmetry-broken match enumeration (the count_matches hot path
// every simulated job pays, paper Fig. 19) with
//
//  * the seed matcher — the generic VF2 inner loop with a per-leaf visitor
//    and Match materialization, exactly what the seed's count_matches did;
//  * the bitset core — BitGraph domains + leaf counting;
//  * the Ullmann backend, as the independent cross-check;
//
// across the paper's pattern shapes on the 8-GPU DGX-1V and the 16-GPU
// topologies, plus the allocation-state match cache on a repeat-fleet-state
// Preserve workload. `--json` writes BENCH_matching.json (headline:
// dgx1v_enumeration_speedup, the geometric-mean bitset-vs-seed speedup on
// DGX-1V).

#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/patterns.hpp"
#include "match/enumerator.hpp"
#include "match/ullmann.hpp"
#include "match/vf2.hpp"
#include "policy/match_cache.hpp"
#include "policy/preserve.hpp"

using namespace mapa;

namespace {

/// Best-of-N wall time of `fn`, autoscaled so each sample runs >= ~20 ms.
template <typename Fn>
double time_us(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  // Calibrate the iteration count on one probe run.
  auto probe_start = clock::now();
  fn();
  const double probe_us =
      std::chrono::duration<double, std::micro>(clock::now() - probe_start)
          .count();
  const std::size_t iters =
      probe_us >= 20000.0
          ? 1
          : static_cast<std::size_t>(20000.0 / (probe_us + 0.1)) + 1;
  double best_us = probe_us;
  for (int sample = 0; sample < 3; ++sample) {
    const auto start = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double us =
        std::chrono::duration<double, std::micro>(clock::now() - start)
            .count() /
        static_cast<double>(iters);
    best_us = std::min(best_us, us);
  }
  return best_us;
}

/// The seed count_matches: generic VF2 inner loop, visitor per match.
std::size_t seed_count(const graph::Graph& pattern, const graph::Graph& target,
                       const match::OrderingConstraints& constraints) {
  std::size_t count = 0;
  match::vf2_enumerate_generic(
      pattern, target,
      [&](const match::Match&) {
        ++count;
        return true;
      },
      constraints);
  return count;
}

struct Case {
  std::string name;
  graph::Graph pattern;
};

std::vector<Case> pattern_cases(std::size_t max_size) {
  std::vector<Case> cases;
  const std::vector<std::pair<std::string, graph::PatternKind>> kinds = {
      {"ring", graph::PatternKind::kRing},
      {"chain", graph::PatternKind::kChain},
      {"tree", graph::PatternKind::kTree},
      {"star", graph::PatternKind::kStar},
  };
  for (const auto& [kname, kind] : kinds) {
    for (std::size_t size = 3; size <= max_size; ++size) {
      cases.push_back(
          {kname + std::to_string(size), graph::make_pattern(kind, size)});
    }
  }
  return cases;
}

/// Preserve-policy allocations over a cycling fleet state (the engine's
/// repeat-state workload the cache is built for).
double time_allocations(policy::PreservePolicy& policy,
                        const graph::Graph& hw, int rounds) {
  const graph::Graph pattern = graph::ring(3);
  policy::AllocationRequest request;
  request.pattern = &pattern;
  request.bandwidth_sensitive = false;
  // Fleet cycles through 8 busy states of 2 GPUs each.
  std::vector<std::vector<bool>> states;
  for (std::size_t shift = 0; shift < 8; ++shift) {
    std::vector<bool> busy(hw.num_vertices(), false);
    busy[shift % hw.num_vertices()] = true;
    busy[(shift + 3) % hw.num_vertices()] = true;
    states.push_back(std::move(busy));
  }
  return time_us([&] {
    for (int round = 0; round < rounds; ++round) {
      const auto& busy = states[static_cast<std::size_t>(round) % states.size()];
      auto result = policy.allocate(hw, busy, request);
      if (!result) std::abort();
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "matching");
  bench::print_header("bench_matcher",
                      "Bitset matching core vs. seed matcher, plus the "
                      "allocation-state match cache");

  const std::vector<std::pair<std::string, graph::Graph>> machines = {
      {"dgx1v", graph::dgx1_v100()},
      {"nvswitch16", graph::nvswitch_16()},
      {"torus16", graph::torus2d_16()},
  };

  util::Table table(
      {"machine", "pattern", "matches", "seed_us", "bitset_us", "ullmann_us",
       "speedup"});
  double dgx_log_speedup_sum = 0.0;
  std::size_t dgx_cases = 0;
  for (const auto& [mname, hw] : machines) {
    // 16-GPU machines cap at 6-vertex patterns to keep the smoke run fast.
    const std::size_t max_size = hw.num_vertices() <= 8 ? 8 : 6;
    for (const Case& c : pattern_cases(max_size)) {
      if (c.pattern.num_vertices() > hw.num_vertices()) continue;
      const auto constraints = match::symmetry_constraints(c.pattern);
      const std::size_t expected = seed_count(c.pattern, hw, constraints);
      if (match::vf2_count(c.pattern, hw, constraints) != expected ||
          match::ullmann_count(c.pattern, hw, constraints) != expected) {
        std::cerr << "backend mismatch on " << mname << "/" << c.name << "\n";
        return 1;
      }
      const double seed_us =
          time_us([&] { (void)seed_count(c.pattern, hw, constraints); });
      const double bitset_us =
          time_us([&] { (void)match::vf2_count(c.pattern, hw, constraints); });
      const double ullmann_us = time_us(
          [&] { (void)match::ullmann_count(c.pattern, hw, constraints); });
      const double speedup = seed_us / bitset_us;
      table.add_row({mname, c.name, std::to_string(expected),
                     util::fixed(seed_us, 1), util::fixed(bitset_us, 1),
                     util::fixed(ullmann_us, 1), util::fixed(speedup, 2)});
      if (mname == "dgx1v") {
        dgx_log_speedup_sum += std::log(speedup);
        ++dgx_cases;
        report.metric("dgx1v_" + c.name + "_seed_us", seed_us);
        report.metric("dgx1v_" + c.name + "_bitset_us", bitset_us);
        report.metric("dgx1v_" + c.name + "_ullmann_us", ullmann_us);
      }
    }
  }
  std::cout << table.render();

  const double dgx_speedup =
      std::exp(dgx_log_speedup_sum / static_cast<double>(dgx_cases));
  std::cout << "\n8-GPU DGX-1V enumeration speedup (geomean, bitset core vs "
               "seed matcher): "
            << util::fixed(dgx_speedup, 2) << "x\n";
  report.metric("dgx1v_enumeration_speedup", dgx_speedup);

  // Match cache on a repeat-fleet-state Preserve workload.
  {
    const graph::Graph hw = graph::dgx1_v100();
    policy::PreservePolicy cold;
    const double uncached_us = time_allocations(cold, hw, 64);
    policy::PreservePolicy warm;
    auto cache = std::make_shared<policy::MatchCache>();
    warm.set_match_cache(cache);
    const double cached_us = time_allocations(warm, hw, 64);
    const auto stats = cache->stats();
    std::cout << "\nPreserve allocate, 64 decisions over 8 repeat fleet "
                 "states on DGX-1V:\n  uncached "
              << util::fixed(uncached_us, 1) << " us, cached "
              << util::fixed(cached_us, 1) << " us ("
              << util::fixed(uncached_us / cached_us, 2) << "x, "
              << stats.hits << " hits / " << stats.misses << " misses)\n";
    report.metric("preserve_allocate_uncached_us", uncached_us);
    report.metric("preserve_allocate_cached_us", cached_us);
    report.metric("match_cache_allocate_speedup", uncached_us / cached_us);
  }

  return report.write();
}
