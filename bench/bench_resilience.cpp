// Resilience bench (cluster/ fault injection): what does self-healing
// cost, and what do faults do to fleet service quality?
//
//  1. Fault-free overhead — the same 1000-server run with the fault
//     machinery disarmed (no events) vs armed (one crash scheduled far
//     past the makespan, so the bookkeeping runs but no fault ever
//     fires). Twelve interleaved pairs with the order flipped every
//     other pair; the headline fault_free_overhead_pct is the median
//     per-pair difference and must stay within noise of zero (the
//     acceptance gate is <= 1%).
//  2. Fault-rate sweep at 32 servers — chaos schedules at per-server
//     MTBF 20000 / 5000 / 1000 s against the fault-free baseline,
//     reporting throughput, p99 queue wait, kill/re-place counts, the
//     p50/p99 kill-to-re-place latency, and the dead-letter rate.
//  3. The same sweep shape at 1k archetype-stamped servers (32 shards),
//     where the sharded dispatcher absorbs crashes of whole shards.
//
//   ./bench_resilience [jobs_per_server] [--json[=path]]

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cluster/chaos.hpp"
#include "cluster/fleet.hpp"
#include "cluster/metrics.hpp"
#include "graph/topology.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace mapa;

namespace {

std::vector<cluster::ServerSpec> dgx_fleet(std::size_t servers) {
  cluster::FleetArchetype arch;
  arch.name = "dgx1v";
  arch.topology = graph::TopologyHandle(graph::dgx1_v100());
  arch.policy = "topo-aware";
  return cluster::archetype_fleet_specs(servers, {arch});
}

cluster::ClusterConfig fleet_config(std::size_t shards) {
  cluster::ClusterConfig config;
  config.selection = "least-loaded";
  config.shards = shards;
  config.threads =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  config.seed = 42;
  return config;
}

struct FaultPoint {
  std::size_t servers = 0;
  double mtbf_s = 0.0;  // per-server; 0 = fault-free baseline
  double wall_ms = 0.0;
  double jobs_per_hour = 0.0;
  double wait_p99_s = 0.0;
  std::uint64_t killed = 0;
  std::uint64_t rematched = 0;
  std::uint64_t dead_lettered = 0;
  double replace_p50_s = 0.0;
  double replace_p99_s = 0.0;
  double dead_letter_rate = 0.0;
};

double wait_p99(const cluster::FleetResult& result) {
  std::vector<double> waits;
  waits.reserve(result.records.size());
  for (const cluster::FleetRecord& r : result.records) {
    waits.push_back(r.record.start_s - r.record.queued_s);
  }
  if (waits.empty()) return 0.0;
  return util::quantile(waits, 0.99);
}

FaultPoint run_fault_point(std::size_t servers, std::size_t shards,
                           double per_server_mtbf_s,
                           const std::vector<workload::Job>& jobs) {
  auto specs = dgx_fleet(servers);
  cluster::ClusterConfig config = fleet_config(shards);
  if (per_server_mtbf_s > 0.0) {
    workload::ChaosTraceConfig chaos =
        workload::chaos_trace_config(servers, per_server_mtbf_s, 42);
    // Cover the whole busy period of both sweep traces, so the
    // fault-rate-per-simulated-second comparison is not diluted by a
    // long fault-free drain at the end.
    chaos.horizon_s = 20000.0;
    chaos.mttr_s = 120.0;
    config.events = cluster::generate_fault_schedule(chaos, specs);
  }

  cluster::FleetSimulator fleet(std::move(specs), config);
  const auto wall_start = std::chrono::steady_clock::now();
  const auto result = fleet.run(jobs);
  const auto wall_end = std::chrono::steady_clock::now();

  FaultPoint point;
  point.servers = servers;
  point.mtbf_s = per_server_mtbf_s;
  point.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  point.jobs_per_hour = result.throughput_jobs_per_hour();
  point.wait_p99_s = wait_p99(result);
  point.killed = result.resilience.jobs_killed;
  point.rematched = result.resilience.jobs_rematched;
  point.dead_lettered = result.resilience.jobs_dead_lettered;
  if (!result.resilience.replace_latency_s.empty()) {
    point.replace_p50_s =
        util::quantile(result.resilience.replace_latency_s, 0.50);
    point.replace_p99_s =
        util::quantile(result.resilience.replace_latency_s, 0.99);
  }
  point.dead_letter_rate = cluster::dead_letter_rate(result);
  return point;
}

/// One timed run of `jobs` on a 1000-server fleet with sequential
/// probing (threads = 1, so thread-pool scheduling jitter stays out of
/// a sub-1% comparison); `armed` schedules a single crash far past any
/// makespan, so the fault bookkeeping is live but never fires.
double timed_run_ms(bool armed, const std::vector<workload::Job>& jobs) {
  auto specs = dgx_fleet(1000);
  cluster::ClusterConfig config = fleet_config(/*shards=*/32);
  config.threads = 1;
  if (armed) {
    config.events = {{1e15, 0, cluster::FaultEvent::Kind::kServerCrash}};
  }
  cluster::FleetSimulator fleet(std::move(specs), config);
  const auto wall_start = std::chrono::steady_clock::now();
  const auto result = fleet.run(jobs);
  const auto wall_end = std::chrono::steady_clock::now();
  if (result.resilience.jobs_killed != 0) {
    std::cerr << "overhead run unexpectedly killed jobs\n";
  }
  return std::chrono::duration<double, std::milli>(wall_end - wall_start)
      .count();
}

std::string mtbf_tag(double mtbf_s) {
  if (mtbf_s <= 0.0) return "mtbf_inf";
  return "mtbf" + std::to_string(static_cast<long>(mtbf_s));
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "resilience");
  std::size_t jobs_per_server = 25;
  if (argc > 1 && argv[1][0] != '-') {
    jobs_per_server = static_cast<std::size_t>(std::stoul(argv[1]));
  }
  report.metric("threads",
                static_cast<double>(std::max<std::size_t>(
                    std::thread::hardware_concurrency(), 1)));

  bench::print_header(
      "cluster/ fault injection",
      "Fault-free overhead of the armed fault machinery, and "
      "throughput / p99 queue wait / re-place latency / dead-letter "
      "rate vs per-server MTBF at 32 and 1000 servers");

  // 1. Fault-free overhead: disarmed vs armed-but-idle on a fixed
  // 1000-server trace (independent of the sweep's jobs_per_server knob,
  // so the committed headline is comparable across PRs). Runs are
  // interleaved in pairs with the order flipped every other pair —
  // machine drift over the process lifetime hits both sides alike — and
  // the headline is the MEDIAN per-pair difference, so one descheduled
  // run cannot fake an overhead either way.
  const auto overhead_jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(1000, 8));
  double disarmed_ms = 0.0;
  double armed_ms = 0.0;
  std::vector<double> pair_pct;
  for (int i = 0; i < 12; ++i) {
    double off;
    double on;
    if (i % 2 == 0) {
      off = timed_run_ms(false, overhead_jobs);
      on = timed_run_ms(true, overhead_jobs);
    } else {
      on = timed_run_ms(true, overhead_jobs);
      off = timed_run_ms(false, overhead_jobs);
    }
    if (i == 0 || off < disarmed_ms) disarmed_ms = off;
    if (i == 0 || on < armed_ms) armed_ms = on;
    pair_pct.push_back((on - off) / off * 100.0);
  }
  const double overhead_pct = util::quantile(pair_pct, 0.5);
  std::cout << "fault machinery disarmed: " << util::fixed(disarmed_ms, 1)
            << " ms, armed but idle: " << util::fixed(armed_ms, 1)
            << " ms -> overhead " << util::fixed(overhead_pct, 2) << "%\n\n";
  report.metric("disarmed_wall_ms", disarmed_ms);
  report.metric("armed_idle_wall_ms", armed_ms);
  report.metric("fault_free_overhead_pct", overhead_pct);

  // 2 + 3. Fault-rate sweeps. The 32-server trace runs below
  // saturation (one arrival per ~570 s per server, jobs capped at 5
  // GPUs and the duration tail at 4x base), so the re-place latency
  // reflects backoff plus repair time rather than a standing
  // queue-wait backlog.
  workload::FleetTraceConfig light;
  light.num_jobs = 32 * jobs_per_server;
  light.arrival_rate_per_s = 0.00175 * 32.0;
  light.max_gpus = 5;
  light.duration_tail_cap = 4.0;
  light.seed = 42;
  const auto sweep_jobs = workload::generate_fleet_trace(light);

  util::Table table({"servers", "MTBF/server (s)", "wall (ms)", "jobs/h",
                     "wait p99 (s)", "killed", "re-matched", "dead-lettered",
                     "re-place p50 (s)", "re-place p99 (s)", "dead-letter %"});
  std::vector<FaultPoint> points;
  const std::vector<double> mtbfs = {0.0, 20000.0, 5000.0, 1000.0};
  for (const double mtbf : mtbfs) {
    points.push_back(run_fault_point(32, 4, mtbf, sweep_jobs));
  }
  // Same tail cap as the light trace: an uncapped Pareto straggler
  // owns the makespan, and a fault schedule that happens to kill it
  // past its retry budget would *raise* measured throughput
  // (survivorship), inverting the story the sweep is telling.
  workload::FleetTraceConfig big = workload::fleet_scale_trace_config(1000, 2);
  big.duration_tail_cap = 4.0;
  const auto big_jobs = workload::generate_fleet_trace(big);
  // The 1k sweep stops at MTBF 5000 s: pushing further dead-letters
  // enough jobs that records/makespan throughput *rises* (the
  // survivors finish sooner once the killed stragglers are gone),
  // which reads as a benefit when it is a casualty count. The
  // 32-server sweep above keeps its extreme point — its per-fault
  // blast radius is small enough that the dead-letter rate stays low.
  for (const double mtbf : {0.0, 20000.0, 5000.0}) {
    points.push_back(run_fault_point(1000, 32, mtbf, big_jobs));
  }

  for (const FaultPoint& p : points) {
    table.add_row(
        {std::to_string(p.servers),
         p.mtbf_s > 0.0 ? util::fixed(p.mtbf_s, 0) : "inf",
         util::fixed(p.wall_ms, 1), util::fixed(p.jobs_per_hour, 1),
         util::fixed(p.wait_p99_s, 1), std::to_string(p.killed),
         std::to_string(p.rematched), std::to_string(p.dead_lettered),
         util::fixed(p.replace_p50_s, 1), util::fixed(p.replace_p99_s, 1),
         util::fixed(p.dead_letter_rate * 100.0, 2)});
    const std::string key =
        "n" + std::to_string(p.servers) + "_" + mtbf_tag(p.mtbf_s) + "_";
    report.metric(key + "wall_ms", p.wall_ms);
    report.metric(key + "jobs_per_hour", p.jobs_per_hour);
    report.metric(key + "wait_p99_s", p.wait_p99_s);
    report.metric(key + "jobs_killed", static_cast<double>(p.killed));
    report.metric(key + "replace_p50_s", p.replace_p50_s);
    report.metric(key + "replace_p99_s", p.replace_p99_s);
    report.metric(key + "dead_letter_rate", p.dead_letter_rate);
  }
  std::cout << table.render() << '\n';

  return report.write();
}
