// Reproduces paper Table 3: per-job execution-time speedup quartiles and
// throughput of each policy, normalized to Baseline, on the 300-job DGX-V
// experiment.

#include <iostream>

#include "bench_common.hpp"

using namespace mapa;

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "table3_summary");
  bench::print_header("Table 3",
                      "Normalized speedup and throughput on DGX-1 V100");

  const auto jobs = bench::paper_job_mix();
  const auto results = bench::run_paper_policies(graph::dgx1_v100(), jobs);
  const auto& baseline = results.front();

  // The paper's table normalizes the execution-time distribution quantiles
  // of each policy to Baseline's, over the bandwidth-sensitive jobs.
  util::Table t({"Policy", "MIN", "25th %", "50th %", "75th %", "MAX",
                 "Tput"});
  t.add_row({"Baseline", "1.000", "1.000", "1.000", "1.000", "1.000",
             "1.00"});
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto s = sim::quantile_speedup_summary(baseline, results[i], true);
    t.add_row({s.policy, util::fixed(s.min, 3), util::fixed(s.q25, 3),
               util::fixed(s.median, 3), util::fixed(s.q75, 3),
               util::fixed(s.max, 3), util::fixed(s.throughput, 2)});
    report.metric(s.policy + "_median_speedup", s.median);
    report.metric(s.policy + "_throughput", s.throughput);
  }
  std::cout << t.render() << '\n';

  std::cout << "Per-job speedup quantiles (alternative reading of the "
               "table, all jobs):\n";
  util::Table per_job({"Policy", "MIN", "25th %", "50th %", "75th %", "MAX",
                       "Tput"});
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto s = sim::speedup_summary(baseline, results[i]);
    per_job.add_row({s.policy, util::fixed(s.min, 3), util::fixed(s.q25, 3),
                     util::fixed(s.median, 3), util::fixed(s.q75, 3),
                     util::fixed(s.max, 3), util::fixed(s.throughput, 2)});
  }
  std::cout << per_job.render() << '\n';

  std::cout
      << "Paper values for reference:\n"
         "  Topo-aware  1.002 / 1.029 / 1.385 / 1.014 / 1.075, Tput 1.07\n"
         "  Greedy      0.997 / 1.059 / 1.519 / 1.048 / 1.319, Tput 1.08\n"
         "  Preserve    1.006 / 1.057 / 1.119 / 1.124 / 1.352, Tput 1.12\n\n"
         "Paper shape to check: Greedy wins the median; Preserve wins the "
         "tail\n(75th percentile and MAX) and posts the best throughput.\n";
  return report.write();
}
