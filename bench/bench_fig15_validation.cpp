// Reproduces paper Fig. 15 (simulator validation): the effective bandwidth
// the simulator assigns ("simulated" = Eq. 2 prediction used for scoring)
// against the "real" measured effective bandwidth (our NCCL-model
// microbenchmark standing in for the DGX-V runs). The two must correlate
// strongly for the simulator's EffBW proxy to be sound.

#include <iostream>

#include "bench_common.hpp"

using namespace mapa;

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig15_validation");
  bench::print_header("Fig. 15",
                      "Simulated (Eq. 2) vs real (microbench) EffBW");

  const auto jobs = bench::paper_job_mix(300, 15);
  const auto result =
      sim::run_simulation(graph::dgx1_v100(), "preserve", jobs);

  std::vector<double> real, simulated;
  for (const auto& r : result.records) {
    if (r.job.num_gpus < 2) continue;
    real.push_back(r.measured_effbw);
    simulated.push_back(r.predicted_effbw);
  }
  std::cout << "Multi-GPU allocations compared: " << real.size() << "\n\n";

  // Binned scatter: real EffBW deciles vs mean simulated EffBW.
  util::Table t({"real EffBW bin", "mean simulated EffBW", "n"});
  const double lo = util::min_of(real);
  const double hi = util::max_of(real);
  const int kBins = 8;
  for (int b = 0; b < kBins; ++b) {
    const double from = lo + (hi - lo) * b / kBins;
    const double to = lo + (hi - lo) * (b + 1) / kBins;
    std::vector<double> in_bin;
    for (std::size_t i = 0; i < real.size(); ++i) {
      if (real[i] >= from && (real[i] < to || b == kBins - 1)) {
        in_bin.push_back(simulated[i]);
      }
    }
    if (in_bin.empty()) continue;
    t.add_row({util::fixed(from, 1) + " - " + util::fixed(to, 1),
               util::fixed(util::mean(in_bin), 2),
               std::to_string(in_bin.size())});
  }
  std::cout << t.render() << '\n';

  const double r = util::pearson(real, simulated);
  std::cout << "Pearson correlation (real vs simulated EffBW): "
            << util::fixed(r, 4) << "\n"
            << "Paper shape: points on the diagonal — the simulation "
               "adequately\ncaptures the real machine's allocation "
               "behavior (correlation ~1).\n";
  report.metric("pearson_real_vs_simulated", r);
  const int json_status = report.write();
  return r > 0.9 ? json_status : 1;
}
