// Reproduces paper Fig. 19: scheduling overhead of MAPA with the Preserve
// policy versus requested job size, across the four hardware topologies
// (Summit, DGX-V, Torus-2d, CubeMesh-16). Real wall-clock timing via
// google-benchmark of a full allocate() decision (pattern matching +
// scoring + selection) on an idle machine — the paper's stated upper
// bound for scheduling cost.
//
// Also covers two DESIGN.md ablations the paper discusses:
//  * parallel scoring (§5.4: "can be reduced by parallelizing")
//  * symmetry breaking (without it every allocation is scored |Aut(P)|x)

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "match/enumerator.hpp"
#include "policy/preserve.hpp"

using namespace mapa;

namespace {

graph::Graph topology_by_index(int index) {
  switch (index) {
    case 0:
      return graph::summit_node();
    case 1:
      return graph::dgx1_v100();
    case 2:
      return graph::torus2d_16();
    default:
      return graph::cubemesh_16();
  }
}

/// One full Preserve-policy allocation decision on an idle machine.
void run_allocation(const graph::Graph& hw, std::size_t gpus,
                    std::size_t threads, benchmark::State& state) {
  policy::PolicyConfig config;
  config.threads = threads;
  policy::PreservePolicy policy(config);
  const graph::Graph pattern = graph::ring(gpus);
  const std::vector<bool> busy(hw.num_vertices(), false);
  policy::AllocationRequest request;
  request.pattern = &pattern;
  request.bandwidth_sensitive = true;

  for (auto _ : state) {
    auto result = policy.allocate(hw, busy, request);
    benchmark::DoNotOptimize(result);
  }
  if (gpus <= 7) {  // re-enumerating to count is cheap only for small jobs
    match::EnumerateOptions options;
    options.threads = threads;
    state.counters["matches"] =
        static_cast<double>(match::count_matches(pattern, hw, options));
  }
}

void BM_PreserveAllocate(benchmark::State& state) {
  const graph::Graph hw = topology_by_index(static_cast<int>(state.range(0)));
  const auto gpus = static_cast<std::size_t>(state.range(1));
  if (gpus > hw.num_vertices()) {
    state.SkipWithError("job larger than machine");
    return;
  }
  state.SetLabel(hw.name());
  run_allocation(hw, gpus, 1, state);
}

void BM_PreserveAllocateParallel(benchmark::State& state) {
  const graph::Graph hw = topology_by_index(static_cast<int>(state.range(0)));
  const auto gpus = static_cast<std::size_t>(state.range(1));
  if (gpus > hw.num_vertices()) {
    state.SkipWithError("job larger than machine");
    return;
  }
  state.SetLabel(hw.name() + "/threads");
  run_allocation(hw, gpus, std::thread::hardware_concurrency(), state);
}

void BM_MatchEnumeration(benchmark::State& state) {
  // Raw matcher throughput with and without symmetry breaking (ablation).
  const graph::Graph hw = graph::dgx1_v100();
  const graph::Graph pattern =
      graph::ring(static_cast<std::size_t>(state.range(0)));
  match::EnumerateOptions options;
  options.break_symmetry = state.range(1) != 0;
  std::size_t count = 0;
  for (auto _ : state) {
    count = match::count_matches(pattern, hw, options);
    benchmark::DoNotOptimize(count);
  }
  state.SetLabel(options.break_symmetry ? "sym-broken" : "raw");
  state.counters["matches"] = static_cast<double>(count);
}

void RegisterBenchmarks() {
  // Fig. 19 proper: single-threaded (the paper's configuration). The
  // 8/9-GPU searches on 16-GPU machines enumerate tens of millions of
  // matches and are measured in the parallel variant below — the paper
  // itself reports ~10^4 ms there and recommends parallel scoring.
  for (int topo = 0; topo < 4; ++topo) {
    const std::size_t machine = topo < 1 ? 6 : (topo < 2 ? 8 : 16);
    const std::size_t max_gpus = std::min<std::size_t>(machine, 7);
    for (std::size_t gpus = 2; gpus <= max_gpus; ++gpus) {
      auto* b = benchmark::RegisterBenchmark("Fig19/PreserveAllocate",
                                             BM_PreserveAllocate)
                    ->Args({topo, static_cast<long>(gpus)})
                    ->Unit(benchmark::kMillisecond);
      if (gpus >= 6) b->Iterations(3);
    }
  }
  // 8-GPU jobs on the 8-GPU DGX-V (whole machine; tiny match set).
  benchmark::RegisterBenchmark("Fig19/PreserveAllocate", BM_PreserveAllocate)
      ->Args({1, 8})
      ->Unit(benchmark::kMillisecond);
  // Parallel-scoring ablation at the painful sizes (paper §5.4).
  for (int topo = 2; topo < 4; ++topo) {
    for (long gpus = 7; gpus <= 9; ++gpus) {
      benchmark::RegisterBenchmark("Fig19/PreserveAllocate/parallel",
                                   BM_PreserveAllocateParallel)
          ->Args({topo, gpus})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  // Symmetry-breaking ablation on DGX-V rings.
  for (long gpus = 3; gpus <= 6; ++gpus) {
    for (long sym : {1L, 0L}) {
      benchmark::RegisterBenchmark("Fig19/MatchEnumeration",
                                   BM_MatchEnumeration)
          ->Args({gpus, sym})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterBenchmarks();
  // `--json` is the uniform perf-trajectory flag across all bench drivers;
  // here it maps onto google-benchmark's own JSON reporter.
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      const std::string path = arg == "--json" ? "BENCH_fig19_overhead.json"
                                               : arg.substr(7);
      args.emplace_back("--benchmark_out=" + path);
      args.emplace_back("--benchmark_out_format=json");
    } else {
      args.emplace_back(std::move(arg));
    }
  }
  std::vector<char*> arg_ptrs;
  arg_ptrs.reserve(args.size());
  for (std::string& arg : args) arg_ptrs.push_back(arg.data());
  int adjusted_argc = static_cast<int>(arg_ptrs.size());
  benchmark::Initialize(&adjusted_argc, arg_ptrs.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
