// Wide-matching-core microbench: the measured perf trajectory for the
// >64-vertex word-array path (graph::DynRows). Times symmetry-broken
// match enumeration on multi-node racks —
//
//  * the generic baseline — the seed VF2 inner loop
//    (vf2_enumerate_generic), which was the production path above 64
//    vertices before the wide core existed;
//  * the bitset path — whatever vf2_count dispatches to (single-word
//    BitGraph at 64 vertices, DynRows above);
//  * the Ullmann backend, as the independent cross-check;
//
// across the paper's pattern shapes on a 64-GPU rack (the <= 64
// specialization boundary), a 72-GPU Summit rack row, a 128-GPU DGX rack,
// and a 256-GPU double rack, plus a busy-mask sweep and the match cache
// replaying multi-word rack states. Every case first asserts that all
// backends agree with the generic baseline match-for-match. `--json`
// writes BENCH_widegraph.json (headline: rack128_enumeration_speedup, the
// geometric-mean wide-vs-generic speedup on the 128-GPU rack).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/patterns.hpp"
#include "graph/bitrows.hpp"
#include "match/enumerator.hpp"
#include "match/ullmann.hpp"
#include "match/vf2.hpp"
#include "policy/match_cache.hpp"

using namespace mapa;

namespace {

/// Best-of-N wall time of `fn`, autoscaled so each sample runs >= ~20 ms.
template <typename Fn>
double time_us(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  auto probe_start = clock::now();
  fn();
  const double probe_us =
      std::chrono::duration<double, std::micro>(clock::now() - probe_start)
          .count();
  const std::size_t iters =
      probe_us >= 20000.0
          ? 1
          : static_cast<std::size_t>(20000.0 / (probe_us + 0.1)) + 1;
  double best_us = probe_us;
  for (int sample = 0; sample < 3; ++sample) {
    const auto start = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double us =
        std::chrono::duration<double, std::micro>(clock::now() - start)
            .count() /
        static_cast<double>(iters);
    best_us = std::min(best_us, us);
  }
  return best_us;
}

/// The pre-wide production path above 64 vertices: generic VF2 inner loop
/// with a per-leaf visitor.
std::size_t generic_count(const graph::Graph& pattern,
                          const graph::Graph& target,
                          const match::OrderingConstraints& constraints,
                          const graph::VertexMask* forbidden = nullptr) {
  std::size_t count = 0;
  match::vf2_enumerate_generic(
      pattern, target,
      [&](const match::Match&) {
        ++count;
        return true;
      },
      constraints, forbidden);
  return count;
}

/// Matches of the dispatching path, for the record-identity check.
std::vector<match::Match> collect_dispatched(
    const graph::Graph& pattern, const graph::Graph& target,
    const match::OrderingConstraints& constraints,
    const graph::VertexMask* forbidden = nullptr) {
  std::vector<match::Match> matches;
  match::vf2_enumerate(
      pattern, target,
      [&](const match::Match& m) {
        matches.push_back(m);
        return true;
      },
      constraints, forbidden);
  return matches;
}

struct Case {
  std::string name;
  graph::Graph pattern;
};

std::vector<Case> pattern_cases(std::size_t max_size) {
  std::vector<Case> cases;
  const std::vector<std::pair<std::string, graph::PatternKind>> kinds = {
      {"ring", graph::PatternKind::kRing},
      {"chain", graph::PatternKind::kChain},
      {"tree", graph::PatternKind::kTree},
      {"star", graph::PatternKind::kStar},
  };
  for (const auto& [kname, kind] : kinds) {
    for (std::size_t size = 3; size <= max_size; ++size) {
      cases.push_back(
          {kname + std::to_string(size), graph::make_pattern(kind, size)});
    }
  }
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "widegraph");
  bench::print_header(
      "bench_widegraph",
      "Wide bitset matching core (>64-vertex racks) vs. the generic "
      "baseline, plus multi-word match-cache replay");

  // NVLink-only racks: sparse like the real fabric, so full enumeration
  // is meaningful at every size (under PCIe fallback a rack is a clique
  // and match sets explode combinatorially).
  const std::vector<std::pair<std::string, graph::Graph>> machines = {
      {"rack64", graph::dgx_rack(8, graph::Connectivity::kNvlinkOnly)},
      {"rack72", graph::summit_rack(12, graph::Connectivity::kNvlinkOnly)},
      {"rack128", graph::dgx_rack(16, graph::Connectivity::kNvlinkOnly)},
      {"rack256", graph::dgx_rack(32, graph::Connectivity::kNvlinkOnly)},
  };

  util::Table table({"machine", "pattern", "matches", "generic_us", "bit_us",
                     "ullmann_us", "speedup"});
  double rack128_log_speedup_sum = 0.0;
  std::size_t rack128_cases = 0;
  for (const auto& [mname, hw] : machines) {
    for (const Case& c : pattern_cases(6)) {
      const auto constraints = match::symmetry_constraints(c.pattern);
      const std::size_t expected = generic_count(c.pattern, hw, constraints);
      if (match::vf2_count(c.pattern, hw, constraints) != expected ||
          match::ullmann_count(c.pattern, hw, constraints) != expected) {
        std::cerr << "backend count mismatch on " << mname << "/" << c.name
                  << "\n";
        return 1;
      }
      const double generic_us =
          time_us([&] { (void)generic_count(c.pattern, hw, constraints); });
      const double bit_us =
          time_us([&] { (void)match::vf2_count(c.pattern, hw, constraints); });
      const double ullmann_us = time_us(
          [&] { (void)match::ullmann_count(c.pattern, hw, constraints); });
      const double speedup = generic_us / bit_us;
      table.add_row({mname, c.name, std::to_string(expected),
                     util::fixed(generic_us, 1), util::fixed(bit_us, 1),
                     util::fixed(ullmann_us, 1), util::fixed(speedup, 2)});
      if (mname == "rack128") {
        rack128_log_speedup_sum += std::log(speedup);
        ++rack128_cases;
        report.metric("rack128_" + c.name + "_generic_us", generic_us);
        report.metric("rack128_" + c.name + "_wide_us", bit_us);
        report.metric("rack128_" + c.name + "_ullmann_us", ullmann_us);
      }
    }
  }
  std::cout << table.render();

  const double rack128_speedup =
      std::exp(rack128_log_speedup_sum / static_cast<double>(rack128_cases));
  std::cout << "\n128-GPU rack enumeration speedup (geomean, wide core vs "
               "generic baseline): "
            << util::fixed(rack128_speedup, 2) << "x\n";
  report.metric("rack128_enumeration_speedup", rack128_speedup);

  // Busy-mask sweep on the 128-GPU rack: half the fleet busy, chosen so
  // live candidate bits straddle the 64-bit word boundary, and a
  // record-identity check of the wide stream against the generic one.
  {
    const graph::Graph hw = machines[2].second;
    graph::VertexMask busy(hw.num_vertices());
    for (graph::VertexId v = 32; v < 96; ++v) busy.set(v);
    const graph::Graph pattern = graph::ring(4);
    const auto constraints = match::symmetry_constraints(pattern);
    const auto wide_matches = collect_dispatched(pattern, hw, constraints, &busy);
    std::vector<match::Match> generic_matches;
    match::vf2_enumerate_generic(
        pattern, hw,
        [&](const match::Match& m) {
          generic_matches.push_back(m);
          return true;
        },
        constraints, &busy);
    if (wide_matches != generic_matches) {
      std::cerr << "wide path diverged from the generic baseline under a "
                   "multi-word busy mask\n";
      return 1;
    }
    const double generic_us = time_us(
        [&] { (void)generic_count(pattern, hw, constraints, &busy); });
    const double wide_us = time_us(
        [&] { (void)match::vf2_count(pattern, hw, constraints, &busy); });
    std::cout << "\nring4 on rack128, 64 of 128 GPUs busy (mask straddles "
                 "the word boundary): generic "
              << util::fixed(generic_us, 1) << " us, wide "
              << util::fixed(wide_us, 1) << " us ("
              << util::fixed(generic_us / wide_us, 2) << "x), "
              << wide_matches.size() << " matches, record-identical\n";
    report.metric("rack128_masked_generic_us", generic_us);
    report.metric("rack128_masked_wide_us", wide_us);
    report.metric("rack128_masked_speedup", generic_us / wide_us);
  }

  // Empty-search fast-out (ROADMAP perf candidate): zero-match patterns
  // must reject before wide row construction. Two provably-empty cases on
  // the 128-GPU rack — a busy mask leaving fewer free GPUs than the
  // pattern needs, and a star out-degreeing every NVLink-only vertex —
  // both asserted empty against the generic baseline.
  {
    const graph::Graph hw = machines[2].second;
    graph::VertexMask nearly_full(hw.num_vertices());
    for (graph::VertexId v = 0; v < hw.num_vertices() - 3; ++v) {
      nearly_full.set(v);  // 3 free GPUs, ring4 needs 4
    }
    const graph::Graph masked_pattern = graph::ring(4);
    const graph::Graph star_pattern = graph::star(9);  // center degree 8
    const auto masked_constraints = match::symmetry_constraints(masked_pattern);
    const auto star_constraints = match::symmetry_constraints(star_pattern);
    if (generic_count(masked_pattern, hw, masked_constraints, &nearly_full) !=
            0 ||
        match::vf2_count(masked_pattern, hw, masked_constraints,
                         &nearly_full) != 0 ||
        match::ullmann_count(masked_pattern, hw, masked_constraints,
                             &nearly_full) != 0 ||
        match::vf2_count(star_pattern, hw, star_constraints) != 0) {
      std::cerr << "zero-match fast-out case unexpectedly found matches\n";
      return 1;
    }
    const double generic_us = time_us([&] {
      (void)generic_count(masked_pattern, hw, masked_constraints,
                          &nearly_full);
    });
    const double wide_us = time_us([&] {
      (void)match::vf2_count(masked_pattern, hw, masked_constraints,
                             &nearly_full);
    });
    std::cout << "\nring4 on rack128 with only 3 free GPUs (zero matches, "
                 "degree-census fast-out): generic "
              << util::fixed(generic_us, 2) << " us, wide "
              << util::fixed(wide_us, 2) << " us ("
              << util::fixed(generic_us / wide_us, 2) << "x)\n";
    report.metric("rack128_zeromatch_generic_us", generic_us);
    report.metric("rack128_zeromatch_wide_us", wide_us);
    report.metric("rack128_zeromatch_speedup", generic_us / wide_us);
  }

  // Match-cache replay of repeat rack states: 8 cycling two-word busy
  // masks, enumerated once each and then replayed from cache.
  {
    const graph::Graph hw = machines[2].second;
    const graph::Graph pattern = graph::ring(3);
    std::vector<graph::VertexMask> states;
    for (std::size_t shift = 0; shift < 8; ++shift) {
      // Distinct sliding 64-GPU busy windows; every one spans both words.
      graph::VertexMask busy(hw.num_vertices());
      for (std::size_t i = 0; i < 64; ++i) {
        busy.set(static_cast<graph::VertexId>((shift * 16 + i) %
                                              hw.num_vertices()));
      }
      states.push_back(std::move(busy));
    }
    const auto run_states = [&](policy::MatchCache* cache) {
      std::size_t total = 0;
      for (const auto& busy : states) {
        match::EnumerateOptions options;
        options.forbidden = busy;
        if (cache != nullptr) {
          cache->for_each_match(pattern, hw, options, [&](const match::Match&) {
            ++total;
            return true;
          });
        } else {
          match::for_each_match(
              pattern, hw,
              [&](const match::Match&) {
                ++total;
                return true;
              },
              options);
        }
      }
      return total;
    };
    const double live_us = time_us([&] { (void)run_states(nullptr); });
    policy::MatchCache cache;
    (void)run_states(&cache);  // warm: one miss per state
    const double replay_us = time_us([&] { (void)run_states(&cache); });
    const auto stats = cache.stats();
    std::cout << "\nring3 over 8 repeat two-word fleet states on rack128: "
                 "live "
              << util::fixed(live_us, 1) << " us, cached replay "
              << util::fixed(replay_us, 1) << " us ("
              << util::fixed(live_us / replay_us, 2) << "x, " << stats.hits
              << " hits / " << stats.misses << " misses)\n";
    report.metric("widecache_live_us", live_us);
    report.metric("widecache_replay_us", replay_us);
    report.metric("widecache_replay_speedup", live_us / replay_us);
  }

  return report.write();
}
