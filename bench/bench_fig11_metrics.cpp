// Reproduces paper Fig. 11: evaluating the pattern-scoring metrics.
// (a) Aggregated Bandwidth correlates poorly with execution time;
// (b) Aggregated Bandwidth correlates poorly with effective bandwidth;
// (c) Effective Bandwidth correlates well with execution time.
// We enumerate 4- and 5-GPU ring allocations on the DGX-V (the paper's
// VGG-16 experiment), compute all three quantities per allocation, and
// report the correlations plus a scatter digest.

#include <iostream>

#include "bench_common.hpp"
#include "graph/patterns.hpp"
#include "interconnect/microbench.hpp"
#include "match/enumerator.hpp"
#include "score/scores.hpp"
#include "workload/exec_model.hpp"

using namespace mapa;

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig11_metrics");
  bench::print_header("Fig. 11",
                      "AggBW vs EffBW vs execution time (VGG-16 allocations)");

  const graph::Graph hw = graph::dgx1_v100();
  const workload::ExecModel vgg(workload::workload_by_name("vgg-16"));

  std::vector<double> agg, eff, exec_time;
  for (const std::size_t k : {4u, 5u}) {
    const graph::Graph pattern = graph::ring(k);
    match::for_each_match(pattern, hw, [&](const match::Match& m) {
      const double a = score::aggregated_bandwidth(pattern, hw, m);
      const double e =
          interconnect::measured_effective_bandwidth(pattern, hw, m);
      agg.push_back(a);
      eff.push_back(e);
      exec_time.push_back(vgg.exec_time_s(k, e));
      return true;
    });
  }
  std::cout << "Sampled " << agg.size()
            << " distinct 4/5-GPU ring allocations\n\n";

  util::Table corr({"pair (panel)", "Pearson r", "paper expectation"});
  corr.add_row({"AggBW vs exec time (a)",
                util::fixed(util::pearson(agg, exec_time), 3),
                "weak (poorly correlated)"});
  corr.add_row({"AggBW vs EffBW (b)",
                util::fixed(util::pearson(agg, eff), 3),
                "weak (poorly correlated)"});
  corr.add_row({"EffBW vs exec time (c)",
                util::fixed(util::pearson(eff, exec_time), 3),
                "strong negative"});
  std::cout << corr.render() << '\n';

  // Scatter digest for panel (a)/(c): execution time binned by metric.
  const auto digest = [&](const std::vector<double>& metric,
                          const std::string& name) {
    std::cout << "exec time by " << name << " quartile bins:\n";
    const double q1 = util::quantile(metric, 0.25);
    const double q2 = util::quantile(metric, 0.5);
    const double q3 = util::quantile(metric, 0.75);
    std::vector<std::vector<double>> bins(4);
    for (std::size_t i = 0; i < metric.size(); ++i) {
      const int bin = metric[i] <= q1 ? 0 : metric[i] <= q2 ? 1
                      : metric[i] <= q3 ? 2 : 3;
      bins[static_cast<std::size_t>(bin)].push_back(exec_time[i]);
    }
    util::Table t({"bin", "median exec (s)", "spread (max-min)"});
    const char* labels[] = {"lowest 25%", "25-50%", "50-75%", "top 25%"};
    for (int b = 0; b < 4; ++b) {
      if (bins[static_cast<std::size_t>(b)].empty()) continue;
      const auto bp = util::box_plot(bins[static_cast<std::size_t>(b)]);
      t.add_row({labels[b], util::fixed(bp.median, 1),
                 util::fixed(bp.max - bp.min, 1)});
    }
    std::cout << t.render() << '\n';
  };
  digest(agg, "AggBW");
  digest(eff, "EffBW");

  std::cout << "Paper shape: exec time spreads widely within AggBW bins "
               "(a), while\nEffBW bins order execution time cleanly and "
               "tightly (c).\n";
  report.metric("pearson_aggbw_exec", util::pearson(agg, exec_time));
  report.metric("pearson_aggbw_effbw", util::pearson(agg, eff));
  report.metric("pearson_effbw_exec", util::pearson(eff, exec_time));
  return report.write();
}
