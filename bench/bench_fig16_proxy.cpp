// Reproduces paper Fig. 16 (soundness of the effective-bandwidth proxy):
// execution time of every workload as a function of the allocation's
// effective bandwidth, from real-run records. Sensitive workloads bend
// downward with more bandwidth; insensitive ones stay flat; improvements
// level off past ~50 GBps.

#include <iostream>

#include "bench_common.hpp"
#include "workload/exec_model.hpp"

using namespace mapa;

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig16_proxy");
  bench::print_header("Fig. 16",
                      "Effective bandwidth vs execution time per workload");

  const std::vector<double> effbw_points = {10.0, 20.0, 30.0, 40.0,
                                            50.0, 60.0, 70.0, 80.0};
  std::vector<std::string> columns = {"workload", "sensitive"};
  for (const double bw : effbw_points) {
    columns.push_back(util::fixed(bw, 0) + " GBps");
  }
  util::Table t(columns);
  for (const char* name : {"vgg-16", "alexnet", "inception-v3", "resnet-50",
                           "caffenet", "googlenet"}) {
    const auto& w = workload::workload_by_name(name);
    const workload::ExecModel model(w);
    std::vector<std::string> row = {w.name,
                                    w.bandwidth_sensitive ? "yes" : "no"};
    for (const double bw : effbw_points) {
      row.push_back(util::fixed(model.exec_time_s(4, bw), 0));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.render() << '\n';

  // Diminishing returns check the paper calls out: the gain from 50->80
  // GBps is much smaller than from 10->40 GBps for sensitive workloads.
  const workload::ExecModel vgg(workload::workload_by_name("vgg-16"));
  const double low_gain = vgg.exec_time_s(4, 10.0) - vgg.exec_time_s(4, 40.0);
  const double high_gain = vgg.exec_time_s(4, 50.0) - vgg.exec_time_s(4, 80.0);
  std::cout << "VGG-16 gain 10->40 GBps: " << util::fixed(low_gain, 1)
            << " s;  gain 50->80 GBps: " << util::fixed(high_gain, 1)
            << " s\n"
            << "Paper shape: sensitive curves fall steeply then flatten "
               "past ~50 GBps;\ninsensitive curves are flat — EffBW is a "
               "sound proxy for exec time.\n";
  report.metric("vgg16_gain_10_to_40_s", low_gain);
  report.metric("vgg16_gain_50_to_80_s", high_gain);
  return report.write();
}
