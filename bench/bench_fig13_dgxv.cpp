// Reproduces paper Fig. 13: the full DGX-V evaluation. 300 jobs (uniform
// workload mix, uniform 1-5 GPUs) replayed under Baseline / Topo-aware /
// Greedy / Preserve. Prints the four panels:
//   (a) execution-time distributions of bandwidth-sensitive workloads
//   (b) execution-time distributions of bandwidth-insensitive workloads
//   (c) predicted-EffBW distributions of sensitive workloads
//   (d) predicted-EffBW distributions of insensitive workloads

#include <iostream>

#include "bench_common.hpp"

using namespace mapa;

namespace {

void panel(const std::vector<sim::SimResult>& results,
           sim::RecordField field, bool sensitive, const std::string& title,
           int decimals) {
  std::cout << "--- " << title << " ---\n";
  // Workload rows restricted to the sensitivity class, plus the pooled
  // "BW-Sensitive"/"BW-Insensitive" column the paper appends.
  std::vector<std::string> workloads;
  for (const auto& w : sensitive ? workload::sensitive_workloads()
                                 : workload::insensitive_workloads()) {
    workloads.push_back(w.name);
  }
  workloads.push_back(sensitive ? "(all sensitive)" : "(all insensitive)");

  util::Table t({"workload", "policy", "min", "q25", "median", "q75", "max",
                 "n"});
  for (const std::string& name : workloads) {
    for (const auto& r : results) {
      const bool pooled = name.front() == '(';
      util::BoxPlot bp;
      if (pooled) {
        bp = sim::pooled_box_plot(r, field, sensitive);
      } else {
        const auto plots = sim::per_workload_box_plots(r, field, sensitive);
        const auto it = plots.find(name);
        if (it == plots.end()) continue;
        bp = it->second;
      }
      auto cells = bench::box_plot_cells(bp, decimals);
      cells.insert(cells.begin(), r.policy);
      cells.insert(cells.begin(), name);
      t.add_row(std::move(cells));
    }
  }
  std::cout << t.render() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig13_dgxv");
  bench::print_header("Fig. 13",
                      "DGX-V, 300 jobs, four policies, four panels");

  const auto jobs = bench::paper_job_mix();
  const auto results = bench::run_paper_policies(graph::dgx1_v100(), jobs);

  panel(results, sim::RecordField::kExecTime, true,
        "Fig. 13a: execution time (s), bandwidth-sensitive", 0);
  panel(results, sim::RecordField::kExecTime, false,
        "Fig. 13b: execution time (s), bandwidth-insensitive", 0);
  panel(results, sim::RecordField::kPredictedEffBw, true,
        "Fig. 13c: predicted EffBW (GBps), bandwidth-sensitive", 2);
  panel(results, sim::RecordField::kPredictedEffBw, false,
        "Fig. 13d: predicted EffBW (GBps), bandwidth-insensitive", 2);

  std::cout
      << "Paper shape:\n"
         " - (a) baseline shows long upper tails for sensitive networks; "
         "Topo-aware\n   trims them; Preserve has the lowest q75/max.\n"
         " - (c) Greedy/Preserve medians (~57.85) sit near the max of "
         "baseline and\n   Topo-aware; Greedy's q25 dips (starved jobs), "
         "Preserve's does not.\n"
         " - (b)/(d) insensitive workloads barely move across policies.\n";
  for (const auto& r : results) {
    report.metric(r.policy + "_makespan_s", r.makespan_s);
    report.metric(r.policy + "_scheduling_ms", r.total_scheduling_ms);
    report.metric(r.policy + "_cache_hits",
                  static_cast<double>(r.match_cache_hits));
  }
  return report.write();
}
