// Incremental match reuse study: steady-state allocate/release churn at
// fleet scale, measuring what the reuse layers buy over re-searching
// from scratch on every state change:
//
//   * delta-keyed cache lookups — an exact-fingerprint miss whose shape
//     has a cached superset-state entry is served by a mask-AND filter
//     over the stored match list instead of a matcher run
//     (policy::MatchCacheConfig::enable_delta);
//   * cross-tick probe memoization — probe answers keyed by the server's
//     allocation-state fingerprint survive commits and releases, so a
//     server cycling back through a previously probed state replays the
//     answer with no policy call at all
//     (cluster::ClusterConfig::cross_tick_memo).
//
// The workload is the fleet-scale churn trace (Poisson arrivals whose
// pressure tracks the fleet size), so allocations and releases interleave
// throughout the run and servers keep revisiting a recurring set of busy
// states — the regime the paper's overhead study (Fig. 19) identifies as
// search-dominated. Both reuse layers are record-identical to the
// baseline by construction (tests/cluster pins this), so the comparison
// below is pure dispatch cost on the SAME schedule.
//
// Headline points:
//   1k servers (one shared DGX-1V archetype, 32 shards, least-loaded
//   selection, enumerating "preserve" policy): dispatch us/job with reuse
//   on vs off, plus the delta-hit and memo-hit rates that explain the
//   gap. A 64-server / 2-shard smoke point rides along for CI.
//
//   ./bench_incremental [jobs_per_server] [--json[=path]]

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cluster/fleet.hpp"
#include "graph/topology.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace mapa;

namespace {

struct ChurnPoint {
  std::size_t servers = 0;
  bool reuse = false;
  std::size_t jobs = 0;
  double wall_ms = 0.0;
  double us_per_job = 0.0;
  double memo_hit_rate = 0.0;
  double cache_hit_rate = 0.0;   // exact-fingerprint replays
  double delta_hit_rate = 0.0;   // superset-filter hits among lookups
  double makespan_s = 0.0;       // identical across reuse modes
};

/// One churn run: `servers` DGX-1V servers stamped from ONE shared
/// archetype (one shared match cache), least-loaded selection so every
/// placement probes its whole shard, and the enumerating "preserve"
/// policy so the match cache is on the probe path. `reuse` toggles BOTH
/// incremental layers; off = the legacy clear-on-commit memo and
/// exact-only cache — the pre-incremental dispatcher.
ChurnPoint run_churn(std::size_t servers, std::size_t shards,
                     std::size_t jobs_per_server, bool reuse) {
  const auto jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(servers, jobs_per_server));

  cluster::FleetArchetype arch;
  arch.name = "dgx1v";
  arch.topology = graph::TopologyHandle(graph::dgx1_v100());
  arch.policy = "preserve";
  auto specs = cluster::archetype_fleet_specs(servers, {arch});

  cluster::ClusterConfig config;
  config.selection = "least-loaded";
  config.shards = shards;
  config.threads =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  config.seed = 42;
  config.cross_tick_memo = reuse;
  config.cache.enable_delta = reuse;

  cluster::FleetSimulator fleet(std::move(specs), config);
  const auto wall_start = std::chrono::steady_clock::now();
  const auto result = fleet.run(jobs);
  const auto wall_end = std::chrono::steady_clock::now();

  ChurnPoint point;
  point.servers = servers;
  point.reuse = reuse;
  point.jobs = jobs.size();
  point.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  point.us_per_job =
      result.total_scheduling_ms * 1000.0 / static_cast<double>(jobs.size());
  point.makespan_s = result.makespan_s;
  std::uint64_t probes = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t delta_hits = 0;
  for (const cluster::ServerResult& sr : result.servers) {
    probes += sr.probes;
    memo_hits += sr.probe_memo_hits;
    cache_hits += sr.match_cache_hits;
    cache_misses += sr.match_cache_misses;
    delta_hits += sr.match_cache_delta_hits;
  }
  if (probes + memo_hits > 0) {
    point.memo_hit_rate = static_cast<double>(memo_hits) /
                          static_cast<double>(probes + memo_hits);
  }
  const std::uint64_t lookups = cache_hits + cache_misses + delta_hits;
  if (lookups > 0) {
    point.cache_hit_rate =
        static_cast<double>(cache_hits) / static_cast<double>(lookups);
    point.delta_hit_rate =
        static_cast<double>(delta_hits) / static_cast<double>(lookups);
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "incremental");
  std::size_t jobs_per_server = 25;
  if (argc > 1 && argv[1][0] != '-') {
    jobs_per_server = static_cast<std::size_t>(std::stoul(argv[1]));
  }

  bench::print_header(
      "incremental match reuse",
      "Steady-state churn dispatch cost: delta-keyed cache lookups + "
      "cross-tick probe memo vs from-scratch re-search, 1k-server shared "
      "DGX-1V archetype under least-loaded/preserve");

  struct Entry {
    std::string key;
    std::size_t servers;
    std::size_t shards;
  };
  const std::vector<Entry> entries = {
      {"smoke_n64_s2", 64, 2},
      {"churn_n1000", 1000, 32},
  };

  util::Table table({"servers", "reuse", "jobs", "wall (ms)", "us/job",
                     "memo hit", "cache hit", "delta hit"});
  double headline_on = 0.0;
  double headline_off = 0.0;
  double headline_delta_rate = 0.0;
  for (const Entry& entry : entries) {
    ChurnPoint on;
    ChurnPoint off;
    for (const bool reuse : {false, true}) {
      ChurnPoint p =
          run_churn(entry.servers, entry.shards, jobs_per_server, reuse);
      table.add_row({std::to_string(p.servers), reuse ? "on" : "off",
                     std::to_string(p.jobs), util::fixed(p.wall_ms, 1),
                     util::fixed(p.us_per_job, 2),
                     util::fixed(p.memo_hit_rate, 3),
                     util::fixed(p.cache_hit_rate, 3),
                     util::fixed(p.delta_hit_rate, 3)});
      (reuse ? on : off) = p;
    }
    // Reuse must never change the schedule: a makespan drift here means
    // the record-identity contract broke, which the tests would also
    // catch — surface it in the bench output too.
    if (on.makespan_s != off.makespan_s) {
      std::cerr << "WARNING: makespan drift between reuse modes ("
                << off.makespan_s << " vs " << on.makespan_s << ")\n";
    }
    const double speedup =
        on.us_per_job > 0.0 ? off.us_per_job / on.us_per_job : 0.0;
    report.metric(entry.key + "_us_per_job_reuse", on.us_per_job);
    report.metric(entry.key + "_us_per_job_baseline", off.us_per_job);
    report.metric(entry.key + "_speedup_x", speedup);
    report.metric(entry.key + "_memo_hit_rate", on.memo_hit_rate);
    report.metric(entry.key + "_delta_hit_rate", on.delta_hit_rate);
    if (entry.servers == 1000) {
      headline_on = on.us_per_job;
      headline_off = off.us_per_job;
      headline_delta_rate = on.delta_hit_rate;
      std::cout << "1k-server churn dispatch: reuse "
                << util::fixed(on.us_per_job, 2) << " us/job vs baseline "
                << util::fixed(off.us_per_job, 2) << " us/job ("
                << util::fixed(speedup, 2) << "x), delta-hit rate "
                << util::fixed(on.delta_hit_rate, 3) << "\n";
    }
  }
  std::cout << table.render() << '\n';

  // Headline keys the CI schema gate requires (tools/check_bench_json.py).
  report.metric("us_per_job_churn", headline_on);
  report.metric("us_per_job_churn_baseline", headline_off);
  report.metric("delta_hit_rate", headline_delta_rate);

  return report.write();
}
