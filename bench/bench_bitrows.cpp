// Unified bit-domain core microbench beyond the old 512-vertex ceiling:
// the measured perf trajectory for the DynRows instantiation of the
// templated matcher cores (Vf2Core/UllmannCore over graph::BitRows).
// Times symmetry-broken match enumeration on multi-node racks of 576,
// 768, and 1024 GPUs (72/96/128 DGX nodes — all beyond the old
// WideBitGraph limit, where the slow generic loop used to be the only
// path) —
//
//  * the generic baseline — the seed VF2 inner loop
//    (vf2_enumerate_generic), which was the production path above 512
//    vertices before this core existed;
//  * the bitset path — whatever vf2_count dispatches to (DynRows here);
//  * the Ullmann backend, as the independent cross-check;
//
// plus a record-identity check on the 1024-GPU rack under a busy mask
// straddling the highest words, and Ullmann root-split scaling at
// threads=1/4/8 (the root split now runs the selected backend per root).
// Every case first asserts that all backends agree with the generic
// baseline. `--json` writes BENCH_bitrows.json (headline:
// beyond512_enumeration_speedup, the geometric-mean bitset-vs-generic
// speedup across every 513+-vertex case).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "graph/patterns.hpp"
#include "match/enumerator.hpp"
#include "match/ullmann.hpp"
#include "match/vf2.hpp"

using namespace mapa;

namespace {

/// Best-of-N wall time of `fn`, autoscaled so each sample runs >= ~20 ms.
template <typename Fn>
double time_us(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  auto probe_start = clock::now();
  fn();
  const double probe_us =
      std::chrono::duration<double, std::micro>(clock::now() - probe_start)
          .count();
  const std::size_t iters =
      probe_us >= 20000.0
          ? 1
          : static_cast<std::size_t>(20000.0 / (probe_us + 0.1)) + 1;
  double best_us = probe_us;
  for (int sample = 0; sample < 3; ++sample) {
    const auto start = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double us =
        std::chrono::duration<double, std::micro>(clock::now() - start)
            .count() /
        static_cast<double>(iters);
    best_us = std::min(best_us, us);
  }
  return best_us;
}

/// The pre-BitRows production path above 512 vertices: generic VF2 inner
/// loop with a per-leaf visitor.
std::size_t generic_count(const graph::Graph& pattern,
                          const graph::Graph& target,
                          const match::OrderingConstraints& constraints,
                          const graph::VertexMask* forbidden = nullptr) {
  std::size_t count = 0;
  match::vf2_enumerate_generic(
      pattern, target,
      [&](const match::Match&) {
        ++count;
        return true;
      },
      constraints, forbidden);
  return count;
}

struct Case {
  std::string name;
  graph::Graph pattern;
};

std::vector<Case> pattern_cases(std::size_t max_size) {
  std::vector<Case> cases;
  const std::vector<std::pair<std::string, graph::PatternKind>> kinds = {
      {"ring", graph::PatternKind::kRing},
      {"chain", graph::PatternKind::kChain},
      {"star", graph::PatternKind::kStar},
  };
  for (const auto& [kname, kind] : kinds) {
    for (std::size_t size = 3; size <= max_size; ++size) {
      cases.push_back(
          {kname + std::to_string(size), graph::make_pattern(kind, size)});
    }
  }
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "bitrows");
  bench::print_header(
      "bench_bitrows",
      "DynRows matcher core beyond the old 512-vertex ceiling vs. the "
      "generic baseline, plus Ullmann root-split scaling");

  // NVLink-only racks: sparse like the real fabric, so full enumeration
  // is meaningful at every size (under PCIe fallback a rack is a clique
  // and match sets explode combinatorially).
  const std::vector<std::pair<std::string, graph::Graph>> machines = {
      {"rack576", graph::dgx_rack(72, graph::Connectivity::kNvlinkOnly)},
      {"rack768", graph::dgx_rack(96, graph::Connectivity::kNvlinkOnly)},
      {"rack1024", graph::dgx_rack(128, graph::Connectivity::kNvlinkOnly)},
  };

  util::Table table({"machine", "pattern", "matches", "generic_us", "bit_us",
                     "ullmann_us", "speedup"});
  double log_speedup_sum = 0.0;
  std::size_t speedup_cases = 0;
  for (const auto& [mname, hw] : machines) {
    for (const Case& c : pattern_cases(5)) {
      const auto constraints = match::symmetry_constraints(c.pattern);
      const std::size_t expected = generic_count(c.pattern, hw, constraints);
      if (match::vf2_count(c.pattern, hw, constraints) != expected ||
          match::ullmann_count(c.pattern, hw, constraints) != expected) {
        std::cerr << "backend count mismatch on " << mname << "/" << c.name
                  << "\n";
        return 1;
      }
      const double generic_us =
          time_us([&] { (void)generic_count(c.pattern, hw, constraints); });
      const double bit_us =
          time_us([&] { (void)match::vf2_count(c.pattern, hw, constraints); });
      const double ullmann_us = time_us(
          [&] { (void)match::ullmann_count(c.pattern, hw, constraints); });
      const double speedup = generic_us / bit_us;
      table.add_row({mname, c.name, std::to_string(expected),
                     util::fixed(generic_us, 1), util::fixed(bit_us, 1),
                     util::fixed(ullmann_us, 1), util::fixed(speedup, 2)});
      log_speedup_sum += std::log(speedup);
      ++speedup_cases;
      if (mname == "rack1024") {
        report.metric("rack1024_" + c.name + "_generic_us", generic_us);
        report.metric("rack1024_" + c.name + "_bitrows_us", bit_us);
        report.metric("rack1024_" + c.name + "_ullmann_us", ullmann_us);
      }
    }
  }
  std::cout << table.render();

  const double geomean_speedup =
      std::exp(log_speedup_sum / static_cast<double>(speedup_cases));
  std::cout << "\n513+-vertex enumeration speedup (geomean over all racks, "
               "DynRows core vs generic baseline): "
            << util::fixed(geomean_speedup, 2) << "x\n";
  report.metric("beyond512_enumeration_speedup", geomean_speedup);

  // Record identity on the 1024-GPU rack under a busy mask straddling the
  // highest word boundaries (words 14/15): the DynRows stream must equal
  // the generic stream match-for-match, including order.
  {
    const graph::Graph& hw = machines[2].second;
    graph::VertexMask busy(hw.num_vertices());
    for (graph::VertexId v = 950; v < 1000; ++v) busy.set(v);
    for (graph::VertexId v = 60; v < 70; ++v) busy.set(v);
    const graph::Graph pattern = graph::ring(4);
    const auto constraints = match::symmetry_constraints(pattern);
    std::vector<match::Match> bit_matches;
    match::vf2_enumerate(
        pattern, hw,
        [&](const match::Match& m) {
          bit_matches.push_back(m);
          return true;
        },
        constraints, &busy);
    std::vector<match::Match> generic_matches;
    match::vf2_enumerate_generic(
        pattern, hw,
        [&](const match::Match& m) {
          generic_matches.push_back(m);
          return true;
        },
        constraints, &busy);
    if (bit_matches != generic_matches) {
      std::cerr << "DynRows path diverged from the generic baseline on the "
                   "1024-GPU rack\n";
      return 1;
    }
    const double generic_us = time_us(
        [&] { (void)generic_count(pattern, hw, constraints, &busy); });
    const double bit_us = time_us(
        [&] { (void)match::vf2_count(pattern, hw, constraints, &busy); });
    std::cout << "\nring4 on rack1024, 60 GPUs busy across words 0/1 and "
                 "14/15: generic "
              << util::fixed(generic_us, 1) << " us, bitrows "
              << util::fixed(bit_us, 1) << " us ("
              << util::fixed(generic_us / bit_us, 2) << "x), "
              << bit_matches.size() << " matches, record-identical\n";
    report.metric("rack1024_masked_generic_us", generic_us);
    report.metric("rack1024_masked_bitrows_us", bit_us);
    report.metric("rack1024_masked_speedup", generic_us / bit_us);
  }

  // Ullmann root-split scaling on the 1024-GPU rack: the parallel
  // enumerator runs the selected backend over contiguous root ranges, so
  // Ullmann gets thread-pool enumeration with the same fixed-order-merge
  // determinism contract as VF2. chain6 is the search-heaviest sweep case
  // (tens of thousands of matches), so the split has real work to spread.
  {
    const graph::Graph& hw = machines[2].second;
    const graph::Graph pattern = graph::chain(6);
    // Scaling is bounded by the cores actually available (recorded by
    // JsonReport for every bench); a 1-core runner can only show that
    // the split's overhead is near zero, not a speedup.
    std::cout << "\nhardware_concurrency: "
              << std::thread::hardware_concurrency() << "\n";
    match::EnumerateOptions ullmann_sequential;
    ullmann_sequential.backend = match::Backend::kUllmann;
    const std::size_t sequential =
        match::count_matches(pattern, hw, ullmann_sequential);
    double threads1_us = 0.0;
    for (const std::size_t threads : {1u, 4u, 8u}) {
      match::EnumerateOptions options;
      options.backend = match::Backend::kUllmann;
      options.threads = threads;
      if (match::count_matches(pattern, hw, options) != sequential) {
        std::cerr << "Ullmann root-split count diverged at threads="
                  << threads << "\n";
        return 1;
      }
      const double us =
          time_us([&] { (void)match::count_matches(pattern, hw, options); });
      if (threads == 1) threads1_us = us;
      std::cout << (threads == 1 ? "\n" : "")
                << "chain6 on rack1024, ullmann threads=" << threads << ": "
                << util::fixed(us, 1) << " us ("
                << util::fixed(threads1_us / us, 2) << "x vs threads=1)\n";
      report.metric("ullmann_rack1024_threads" + std::to_string(threads) +
                        "_us",
                    us);
      if (threads > 1) {
        report.metric(
            "ullmann_rootsplit_speedup_" + std::to_string(threads),
            threads1_us / us);
      }
    }
    // VF2 on the same case, for the cross-backend scaling comparison.
    for (const std::size_t threads : {1u, 8u}) {
      match::EnumerateOptions options;
      options.threads = threads;
      const double us =
          time_us([&] { (void)match::count_matches(pattern, hw, options); });
      report.metric("vf2_rack1024_threads" + std::to_string(threads) + "_us",
                    us);
    }
  }

  return report.write();
}
