// Reproduces paper Fig. 6: execution-time trends over training iterations
// for a bandwidth-insensitive network (GoogleNet) and a sensitive one
// (VGG-16), each at 2 and 4 GPUs on NVLink vs PCIe allocations.

#include <iostream>

#include "bench_common.hpp"
#include "graph/patterns.hpp"
#include "interconnect/microbench.hpp"
#include "workload/exec_model.hpp"

using namespace mapa;

namespace {

void series(const std::string& workload_name) {
  const auto& w = workload::workload_by_name(workload_name);
  const workload::ExecModel model(w);
  const graph::Graph hw = graph::dgx1_v100();

  // NVLink allocations: the best 2-GPU / 4-GPU rings Greedy would pick.
  // PCIe allocations: cross-socket non-NVLink sets.
  const auto effbw = [&](std::vector<graph::VertexId> gpus) {
    match::Match m;
    m.mapping = std::move(gpus);
    const graph::Graph pattern = graph::ring(m.mapping.size());
    return interconnect::measured_effective_bandwidth(pattern, hw, m);
  };
  const double nvlink2 = effbw({0, 4});
  const double pcie2 = effbw({0, 5});
  const double nvlink4 = effbw({0, 2, 3, 1});
  const double pcie4 = effbw({0, 5, 2, 7});  // mixes PCIe hops into the ring

  std::cout << "--- Fig. 6 " << w.name << " ("
            << (w.bandwidth_sensitive ? "Sensitive" : "Insensitive")
            << ") ---\n";
  util::Table t({"Iterations", "2GPU NVLink", "2GPU PCIe", "4GPU NVLink",
                 "4GPU PCIe"});
  for (int iters = 1000; iters <= 7000; iters += 1000) {
    const double scale =
        static_cast<double>(iters) / static_cast<double>(w.ref_iterations);
    t.add_row({std::to_string(iters),
               util::fixed(model.exec_time_s(2, nvlink2, scale), 1),
               util::fixed(model.exec_time_s(2, pcie2, scale), 1),
               util::fixed(model.exec_time_s(4, nvlink4, scale), 1),
               util::fixed(model.exec_time_s(4, pcie4, scale), 1)});
  }
  std::cout << t.render() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "fig06_scaling");
  bench::print_header("Fig. 6",
                      "Execution time vs iterations, NVLink vs PCIe");
  series("googlenet");
  series("vgg-16");
  std::cout << "Paper shape: GoogleNet's four curves stay nearly on top of "
               "each other\n(insensitive); VGG-16's PCIe curves diverge "
               "sharply upward and the gap\ngrows with iteration count "
               "and GPU count.\n";
  return report.write();
}
