// Reproduces paper §3.4.3: Table 2 (the Eq. 2 coefficient values) and
// Fig. 12 (predicted vs actual effective bandwidth per job size, with the
// fit-quality metrics the paper quotes: Relative Error 0.0709, RMSE
// 1.5153, MAE 7.0539 — note the paper's MAE/RMSE pair is internally
// inconsistent; we report honest values).

#include <cmath>
#include <iostream>
#include <set>
#include <tuple>

#include "bench_common.hpp"
#include "graph/patterns.hpp"
#include "interconnect/microbench.hpp"
#include "match/enumerator.hpp"
#include "score/regression.hpp"

using namespace mapa;

int main(int argc, char** argv) {
  bench::JsonReport json(argc, argv, "fig12_regression");
  bench::print_header("Table 2 + Fig. 12",
                      "Effective-bandwidth regression on DGX-V samples");

  const graph::Graph hw = graph::dgx1_v100();
  const auto samples = interconnect::generate_training_samples(hw);
  std::cout << "Training set: " << samples.size()
            << " distinct (x,y,z) censuses from 2-5 GPU allocations "
               "(paper: 31)\n\n";

  const auto report = score::fit_and_evaluate(samples);

  std::cout << "--- Table 2: coefficient values ---\n";
  util::Table theta({"Coeff.", "refit value", "paper value"});
  for (std::size_t i = 0; i < score::kNumFeatures; ++i) {
    theta.add_row({"theta_" + std::to_string(i + 1),
                   util::fixed(report.theta[i], 3),
                   util::fixed(score::kPaperTheta[i], 3)});
  }
  std::cout << theta.render() << '\n';

  std::cout << "--- Fig. 12: predicted vs actual EffBW by job size ---\n";
  util::Table scatter({"GPUs", "census (x,y,z)", "actual", "predicted",
                       "rel.err"});
  for (const std::size_t k : {2u, 3u, 4u, 5u}) {
    const graph::Graph pattern = graph::ring(k);
    // One representative allocation per distinct census at this size.
    std::set<std::tuple<int, int, int>> seen;
    match::for_each_match(pattern, hw, [&](const match::Match& m) {
      const auto census = score::used_link_census(pattern, hw, m);
      if (!seen.insert({census.doubles, census.singles, census.pcie})
               .second) {
        return true;
      }
      const double actual =
          interconnect::measured_effective_bandwidth(pattern, hw, m);
      const double predicted =
          score::predict_effective_bandwidth(report.theta, census);
      std::string census_key = "(";
      census_key += std::to_string(census.doubles);
      census_key += ',';
      census_key += std::to_string(census.singles);
      census_key += ',';
      census_key += std::to_string(census.pcie);
      census_key += ')';
      scatter.add_row(
          {std::to_string(k), census_key,
           util::fixed(actual, 2), util::fixed(predicted, 2),
           util::fixed(std::abs(predicted - actual) /
                           std::max(actual, 1e-9), 3)});
      return true;
    });
  }
  std::cout << scatter.render() << '\n';

  util::Table quality({"metric", "ours", "paper"});
  quality.add_row({"Relative Error", util::fixed(report.relative_error, 4),
                   "0.0709"});
  quality.add_row({"RMSE", util::fixed(report.rmse, 4), "1.5153"});
  quality.add_row({"MAE", util::fixed(report.mae, 4), "7.0539 (sic)"});
  quality.add_row({"Pearson (pred, actual)", util::fixed(report.pearson, 4),
                   "strong"});
  std::cout << quality.render()
            << "\nPaper shape: points hug the diagonal across all job "
               "sizes — the link\nmix, not the job size, determines "
               "effective bandwidth.\n";
  json.metric("relative_error", report.relative_error);
  json.metric("rmse", report.rmse);
  json.metric("mae", report.mae);
  json.metric("pearson", report.pearson);
  return json.write();
}
