// Allocation-daemon service bench: sustained allocation throughput and
// request latency through the full svc/ stack — wire encode, framed
// ingest, admission queue, batched fleet ticks, reply encode — with the
// socket swapped for the in-process loopback so the numbers measure the
// service, not kernel socket buffers.
//
// Load model: open-loop Poisson. Request arrival offsets are drawn
// up-front from an exponential inter-arrival distribution (fixed seed)
// at a rate far above the service's capacity; the driver enqueues every
// request whose offset has elapsed on the wall clock WITHOUT waiting
// for earlier replies (never closed-loop), polling the service between
// bursts. Each request's latency is wall-clock enqueue -> reply-frame
// emission, so queueing delay inside the daemon is included — p99 under
// overload is the honest number, not the per-placement cost.
//
// Scenarios:
//   single — 1 DGX-1V server behind the daemon.
//   fleet  — 16 DGX-1V servers behind the sharded dispatcher (4 shards).
//
//   ./bench_service [requests_per_server] [--json[=path]]
//
// requests_per_server defaults to 200 (so fleet = 3200 requests); the CI
// bench smoke passes 5 for a seconds-long sanity run.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <random>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "bench_common.hpp"
#include "cluster/fleet.hpp"
#include "graph/topology.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace mapa;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<cluster::ServerSpec> dgx_fleet(std::size_t servers) {
  cluster::FleetArchetype arch;
  arch.name = "dgx1v";
  arch.topology = graph::TopologyHandle(graph::dgx1_v100());
  arch.policy = "topo-aware";
  return cluster::archetype_fleet_specs(servers, {arch});
}

struct LoadResult {
  double allocs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t requests = 0;
};

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = std::min(
      sorted.size() - 1, static_cast<std::size_t>(
                             q * static_cast<double>(sorted.size())));
  return sorted[i];
}

LoadResult drive(std::size_t servers, std::size_t shards,
                 std::size_t num_requests, std::uint64_t seed) {
  svc::ServiceConfig config;
  config.cluster.shards = shards;
  config.max_pending = num_requests + 1;  // overload p99 is the point
  svc::AllocationService service(dgx_fleet(servers), config);

  workload::FleetTraceConfig trace_config;
  trace_config.num_jobs = num_requests;
  trace_config.seed = seed;
  trace_config.max_gpus = 5;
  trace_config.arrival_rate_per_s =
      0.05 * static_cast<double>(servers);  // simulated-time spread
  const auto jobs = workload::generate_fleet_trace(trace_config);

  // Open-loop schedule: exponential inter-arrival gaps at ~4x the
  // service's rough capacity, so the admission queue stays pressured.
  std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ull);
  std::exponential_distribution<double> gap(20000.0);  // 20k req/s offered
  std::vector<double> offsets_s(jobs.size());
  double t = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    t += gap(rng);
    offsets_s[i] = t;
  }

  std::unordered_map<std::uint64_t, Clock::time_point> sent;
  sent.reserve(jobs.size());
  std::vector<double> latencies_ms;
  latencies_ms.reserve(jobs.size());
  std::vector<svc::Outbound> out;
  const auto harvest = [&]() {
    const auto now = Clock::now();
    for (const svc::Outbound& o : out) {
      const auto decoded =
          svc::decode_reply(o.frame.data() + 4, o.frame.size() - 4);
      const svc::Reply& reply = std::get<svc::Reply>(decoded);
      const auto it = sent.find(reply.id);
      if (it == sent.end()) continue;
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(now - it->second)
              .count());
      sent.erase(it);
    }
    out.clear();
  };

  const auto start = Clock::now();
  std::size_t next = 0;
  while (next < jobs.size()) {
    const double elapsed_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    // Everything the schedule has released by now goes in, answered or
    // not — open-loop never waits on the service.
    bool enqueued = false;
    while (next < jobs.size() && offsets_s[next] <= elapsed_s) {
      const std::uint64_t id = static_cast<std::uint64_t>(next) + 1;
      sent.emplace(id, Clock::now());
      service.enqueue(
          1, svc::Request{id, svc::AllocateRequest::from_job(jobs[next])},
          out);
      ++next;
      enqueued = true;
    }
    if (enqueued) {
      service.poll(out);
      harvest();
    }
    // Ahead of schedule: the offered rate dwarfs service capacity, so
    // this only happens at the very start; no sleeping needed.
  }
  service.poll(out);
  harvest();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  LoadResult result;
  result.requests = latencies_ms.size();
  result.allocs_per_sec =
      wall_s > 0.0 ? static_cast<double>(result.requests) / wall_s : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = percentile(latencies_ms, 0.50);
  result.p99_ms = percentile(latencies_ms, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report(argc, argv, "service");
  std::size_t requests_per_server = 200;
  if (argc > 1 && argv[1][0] != '-') {
    requests_per_server = static_cast<std::size_t>(std::stoul(argv[1]));
  }

  bench::print_header(
      "allocation daemon (svc/)",
      "Sustained allocs/sec and allocate latency under open-loop Poisson "
      "load, single-server and fleet-fronted");

  const LoadResult single = drive(1, 1, requests_per_server, 101);
  const LoadResult fleet = drive(16, 4, 16 * requests_per_server, 202);

  util::Table table({"scenario", "requests", "allocs/s", "p50 ms", "p99 ms"});
  const auto row = [&](const std::string& name, const LoadResult& r) {
    table.add_row({name, std::to_string(r.requests),
                   util::fixed(r.allocs_per_sec, 1),
                   util::fixed(r.p50_ms, 3), util::fixed(r.p99_ms, 3)});
  };
  row("single (1 dgx1v)", single);
  row("fleet (16 dgx1v, 4 shards)", fleet);
  std::cout << table.render() << "\n";

  report.metric("single_allocs_per_sec", single.allocs_per_sec);
  report.metric("single_alloc_p50_ms", single.p50_ms);
  report.metric("single_alloc_p99_ms", single.p99_ms);
  report.metric("fleet_allocs_per_sec", fleet.allocs_per_sec);
  report.metric("fleet_alloc_p50_ms", fleet.p50_ms);
  report.metric("fleet_alloc_p99_ms", fleet.p99_ms);
  return report.write();
}
