// Cost formulas for the NCCL collective variants (§6 of the paper lists
// Reduce / AllReduce / Broadcast / Gather / Scatter as the operations the
// ML workloads use).

#include <gtest/gtest.h>

#include "interconnect/collective.hpp"

namespace mapa::interconnect {
namespace {

constexpr double kBytes = 1e8;
constexpr double kBw = 40.0;

TEST(CollectiveTimes, AllFormulasPositiveAndFiniteForMultiGpu) {
  for (const std::size_t k : {2u, 3u, 4u, 8u, 16u}) {
    for (const double t :
         {ring_allreduce_seconds(k, kBytes, kBw),
          tree_allreduce_seconds(k, kBytes, kBw),
          broadcast_seconds(k, kBytes, kBw),
          allgather_seconds(k, kBytes, kBw),
          reduce_scatter_seconds(k, kBytes, kBw),
          all_to_all_seconds(k, kBytes, kBw)}) {
      EXPECT_GT(t, 0.0) << k;
      EXPECT_LT(t, 1.0) << k;
    }
  }
}

TEST(CollectiveTimes, SingleGpuAndEmptyPayloadsAreFree) {
  EXPECT_DOUBLE_EQ(tree_allreduce_seconds(1, kBytes, kBw), 0.0);
  EXPECT_DOUBLE_EQ(broadcast_seconds(4, 0.0, kBw), 0.0);
  EXPECT_DOUBLE_EQ(allgather_seconds(1, kBytes, kBw), 0.0);
  EXPECT_DOUBLE_EQ(all_to_all_seconds(4, 0.0, kBw), 0.0);
}

TEST(CollectiveTimes, InvalidInputsRejected) {
  EXPECT_THROW(tree_allreduce_seconds(0, kBytes, kBw),
               std::invalid_argument);
  EXPECT_THROW(broadcast_seconds(4, kBytes, 0.0), std::invalid_argument);
  EXPECT_THROW(allgather_seconds(4, kBytes, -1.0), std::invalid_argument);
}

TEST(CollectiveTimes, MoreBandwidthIsFaster) {
  EXPECT_LT(ring_allreduce_seconds(4, kBytes, 50.0),
            ring_allreduce_seconds(4, kBytes, 12.0));
  EXPECT_LT(broadcast_seconds(4, kBytes, 50.0),
            broadcast_seconds(4, kBytes, 12.0));
}

TEST(CollectiveTimes, TreeBeatsRingForSmallMessages) {
  // The size-dependent algorithm choice the paper describes: latency
  // dominates small transfers, where the tree's log-depth wins; wire time
  // dominates large ones, where the ring's 2x payload factor loses to
  // nothing.
  const std::size_t k = 8;
  EXPECT_LT(tree_allreduce_seconds(k, 1e3, kBw),
            ring_allreduce_seconds(k, 1e3, kBw));
  // At very large sizes both are wire-bound; ring moves 2(k-1)/k * S,
  // tree moves 2 S — ring wins.
  EXPECT_LT(ring_allreduce_seconds(k, 1e9, kBw),
            tree_allreduce_seconds(k, 1e9, kBw));
}

TEST(CollectiveTimes, BroadcastCheaperThanAllReduce) {
  EXPECT_LT(broadcast_seconds(8, kBytes, kBw),
            tree_allreduce_seconds(8, kBytes, kBw));
}

TEST(CollectiveTimes, AllGatherMatchesHandFormula) {
  const double t = allgather_seconds(4, 4e8, 40.0, 5e-6);
  const double expected = 3.0 * 5e-6 + (3.0 / 4.0) * 4e8 / (40.0 * 1e9);
  EXPECT_NEAR(t, expected, 1e-12);
  EXPECT_DOUBLE_EQ(reduce_scatter_seconds(4, 4e8, 40.0, 5e-6), t);
}

TEST(CollectiveTimes, BandwidthConversions) {
  const double seconds = ring_allreduce_seconds(4, kBytes, kBw, 0.0);
  const double algbw =
      allreduce_algorithm_bandwidth_gbps(4, kBytes, seconds);
  const double busbw = allreduce_bus_bandwidth_gbps(4, kBytes, seconds);
  // With zero latency, busbw equals the wire bandwidth exactly.
  EXPECT_NEAR(busbw, kBw, 1e-9);
  EXPECT_NEAR(busbw, algbw * 2.0 * 3.0 / 4.0, 1e-12);
  EXPECT_THROW(allreduce_algorithm_bandwidth_gbps(4, kBytes, 0.0),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(allreduce_bus_bandwidth_gbps(1, kBytes, 1.0), 0.0);
}

TEST(CollectiveTimes, LatencyTermScalesWithTopologyDepth) {
  // Wire time fixed at zero bytes ~ pure latency: ring pays 2(k-1) hops,
  // tree pays 2 ceil(log2 k).
  const double ring8 = ring_allreduce_seconds(8, 1.0, 1e9, 1e-3);
  const double tree8 = tree_allreduce_seconds(8, 1.0, 1e9, 1e-3);
  EXPECT_NEAR(ring8, 14.0 * 1e-3, 1e-6);
  EXPECT_NEAR(tree8, 6.0 * 1e-3, 1e-6);
}

}  // namespace
}  // namespace mapa::interconnect
