#include "interconnect/collective.hpp"

#include <gtest/gtest.h>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"

namespace mapa::interconnect {
namespace {

using graph::Graph;
using graph::VertexId;

double cycle_bottleneck(const Graph& g, const std::vector<VertexId>& cycle) {
  double b = 1e18;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    b = std::min(b, g.edge_bandwidth(cycle[i], cycle[(i + 1) % cycle.size()]));
  }
  return b;
}

TEST(BestRing, TrivialSizes) {
  EXPECT_FALSE(best_ring(Graph(0)).has_value());
  const auto one = best_ring(Graph(1));
  ASSERT_TRUE(one.has_value());
  EXPECT_DOUBLE_EQ(one->bottleneck_gbps, 0.0);
}

TEST(BestRing, TwoVerticesUseTheirEdge) {
  Graph g(2);
  g.add_edge(0, 1, LinkType::kNvLink2);
  const auto plan = best_ring(g);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->bottleneck_gbps, 25.0);
}

TEST(BestRing, TwoVerticesNoEdgeFails) {
  EXPECT_FALSE(best_ring(Graph(2)).has_value());
}

TEST(BestRing, PicksTheWidestCycle) {
  // A 4-cycle with one narrow chord pairing: the optimum avoids PCIe.
  Graph g(4);
  g.add_edge(0, 1, LinkType::kNvLink2Double);
  g.add_edge(1, 2, LinkType::kNvLink2Double);
  g.add_edge(2, 3, LinkType::kNvLink2Double);
  g.add_edge(3, 0, LinkType::kNvLink2Double);
  g.add_edge(0, 2, LinkType::kPcie);
  g.add_edge(1, 3, LinkType::kPcie);
  const auto plan = best_ring(g);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->bottleneck_gbps, 50.0);
  EXPECT_DOUBLE_EQ(cycle_bottleneck(g, plan->cycle), 50.0);
}

TEST(BestRing, DisconnectedHasNoRing) {
  Graph g(4);
  g.add_edge(0, 1, LinkType::kNvLink2);
  g.add_edge(2, 3, LinkType::kNvLink2);
  EXPECT_FALSE(best_ring(g).has_value());
}

TEST(BestRing, ReportedBottleneckMatchesCycle) {
  const Graph g = graph::dgx1_v100().induced_subgraph(
      std::vector<VertexId>{0, 1, 2, 4});
  const auto plan = best_ring(g);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->bottleneck_gbps, cycle_bottleneck(g, plan->cycle));
  EXPECT_EQ(plan->cycle.size(), 4u);
}

TEST(BestRing, GreedyPathHandlesLargerGraphs) {
  // 16 vertices exceed the exhaustive limit. The PCIe-fallback torus is
  // complete, so a Hamiltonian cycle always exists and is at least
  // PCIe-wide; the heuristic must return a consistent plan.
  const auto plan = best_ring(graph::torus2d_16());
  ASSERT_TRUE(plan.has_value());
  EXPECT_GE(plan->bottleneck_gbps, 12.0);
  EXPECT_EQ(plan->cycle.size(), 16u);
  EXPECT_DOUBLE_EQ(plan->bottleneck_gbps, cycle_bottleneck(
      graph::torus2d_16(), plan->cycle));
}

TEST(BestTree, MaximumBottleneckSpanningTree) {
  Graph g(4);
  g.add_edge(0, 1, LinkType::kNvLink2Double);
  g.add_edge(1, 2, LinkType::kNvLink2);
  g.add_edge(2, 3, LinkType::kNvLink2Double);
  g.add_edge(0, 3, LinkType::kPcie);
  const auto plan = best_tree(g);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->edges.size(), 3u);
  EXPECT_DOUBLE_EQ(plan->bottleneck_gbps, 25.0);  // avoids the PCIe edge
}

TEST(BestTree, SingleVertexTrivial) {
  const auto plan = best_tree(Graph(1));
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->edges.empty());
}

TEST(BestTree, DisconnectedFails) {
  Graph g(3);
  g.add_edge(0, 1, LinkType::kNvLink2);
  EXPECT_FALSE(best_tree(g).has_value());
}

TEST(BestTree, SummitTripletsNeedPcieToBridge) {
  const auto nvlink_only =
      best_tree(graph::summit_node(graph::Connectivity::kNvlinkOnly));
  EXPECT_FALSE(nvlink_only.has_value());
  const auto with_fallback = best_tree(graph::summit_node());
  ASSERT_TRUE(with_fallback.has_value());
  EXPECT_DOUBLE_EQ(with_fallback->bottleneck_gbps, 12.0);
}

TEST(RingAllreduce, ScalesWithSizeAndBandwidth) {
  const double t1 = ring_allreduce_seconds(4, 1e8, 50.0);
  const double t2 = ring_allreduce_seconds(4, 2e8, 50.0);
  const double t3 = ring_allreduce_seconds(4, 1e8, 25.0);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t1, t3);
}

TEST(RingAllreduce, SingleGpuAndZeroBytesFree) {
  EXPECT_DOUBLE_EQ(ring_allreduce_seconds(1, 1e9, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(ring_allreduce_seconds(4, 0.0, 50.0), 0.0);
}

TEST(RingAllreduce, InvalidInputsRejected) {
  EXPECT_THROW(ring_allreduce_seconds(0, 1e6, 50.0), std::invalid_argument);
  EXPECT_THROW(ring_allreduce_seconds(4, 1e6, 0.0), std::invalid_argument);
}

TEST(RingAllreduce, MatchesAlphaBetaFormula) {
  const double t = ring_allreduce_seconds(4, 4e8, 40.0, 5e-6);
  const double expected = 6.0 * 5e-6 + (2.0 * 3.0 / 4.0) * 4e8 / (40.0 * 1e9);
  EXPECT_NEAR(t, expected, 1e-12);
}

}  // namespace
}  // namespace mapa::interconnect
