#include "interconnect/bandwidth_curve.hpp"

#include <gtest/gtest.h>

namespace mapa::interconnect {
namespace {

TEST(BandwidthCurve, SaturatesTowardPeak) {
  const double at_1gb = achievable_bandwidth_gbps(50.0, 1e9);
  EXPECT_GT(at_1gb, 49.0);
  EXPECT_LT(at_1gb, 50.0);
}

TEST(BandwidthCurve, SmallTransfersAreLatencyBound) {
  // Paper Fig. 2a: below ~1e5 bytes the tiers collapse; achieved bandwidth
  // is a small fraction of peak.
  const double small = achievable_bandwidth_gbps(50.0, 1e4);
  EXPECT_LT(small, 0.05 * 50.0);
}

TEST(BandwidthCurve, MonotoneInSize) {
  double previous = 0.0;
  for (const double bytes : {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}) {
    const double bw = achievable_bandwidth_gbps(25.0, bytes);
    EXPECT_GT(bw, previous);
    previous = bw;
  }
}

TEST(BandwidthCurve, LinkOrderingPreservedAtAllSizes) {
  // Fig. 2a: "the relative performance of each link type to each other
  // remains" across sizes.
  for (const double bytes : {1e4, 1e5, 1e6, 1e7, 1e8}) {
    const double pcie = achievable_bandwidth_gbps(LinkType::kPcie, bytes);
    const double nv2 = achievable_bandwidth_gbps(LinkType::kNvLink2, bytes);
    const double nv2x2 =
        achievable_bandwidth_gbps(LinkType::kNvLink2Double, bytes);
    EXPECT_LT(pcie, nv2);
    EXPECT_LT(nv2, nv2x2);
  }
}

TEST(BandwidthCurve, TiersSeparateOnlyAboveHundredKilobytes) {
  // At 1e4 bytes double NVLink gains little over PCIe; at 1e7 it is large.
  const double gain_small =
      achievable_bandwidth_gbps(LinkType::kNvLink2Double, 1e4) -
      achievable_bandwidth_gbps(LinkType::kPcie, 1e4);
  const double gain_large =
      achievable_bandwidth_gbps(LinkType::kNvLink2Double, 1e7) -
      achievable_bandwidth_gbps(LinkType::kPcie, 1e7);
  EXPECT_LT(gain_small, 0.5);
  EXPECT_GT(gain_large, 20.0);
}

TEST(BandwidthCurve, ZeroInputsYieldZero) {
  EXPECT_DOUBLE_EQ(achievable_bandwidth_gbps(0.0, 1e6), 0.0);
  EXPECT_DOUBLE_EQ(achievable_bandwidth_gbps(50.0, 0.0), 0.0);
}

TEST(BandwidthCurve, NegativeInputsRejected) {
  EXPECT_THROW(achievable_bandwidth_gbps(-1.0, 1e6), std::invalid_argument);
  EXPECT_THROW(achievable_bandwidth_gbps(50.0, -1.0), std::invalid_argument);
  EXPECT_THROW(achievable_bandwidth_gbps(50.0, 1e6, -1e-6),
               std::invalid_argument);
}

TEST(BandwidthCurve, ZeroLatencyReachesPeakExactly) {
  EXPECT_DOUBLE_EQ(achievable_bandwidth_gbps(50.0, 1e6, 0.0), 50.0);
}

TEST(RampFraction, BetweenZeroAndOne) {
  for (const double bytes : {1e3, 1e6, 1e9}) {
    const double f = ramp_fraction(50.0, bytes);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.0);
  }
  EXPECT_DOUBLE_EQ(ramp_fraction(0.0, 1e6), 0.0);
}

}  // namespace
}  // namespace mapa::interconnect
