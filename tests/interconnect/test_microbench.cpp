#include "interconnect/microbench.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "match/enumerator.hpp"
#include "score/effbw_model.hpp"

namespace mapa::interconnect {
namespace {

using graph::Graph;
using graph::VertexId;
using match::Match;

Match match_of(std::vector<VertexId> mapping) {
  Match m;
  m.mapping = std::move(mapping);
  return m;
}

TEST(Microbench, SingleGpuHasZeroBandwidth) {
  EXPECT_DOUBLE_EQ(measured_effective_bandwidth(
                       graph::single_gpu(), graph::dgx1_v100(), match_of({3})),
                   0.0);
}

TEST(Microbench, GoodAllocationBeatsFragmentedAllocation) {
  // Paper §2.2: ideal {0,2,3} vs fragmented {0,1,4} (0-based).
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  const double ideal =
      measured_effective_bandwidth(pattern, hw, match_of({0, 2, 3}));
  const double fragmented =
      measured_effective_bandwidth(pattern, hw, match_of({0, 1, 4}));
  EXPECT_GT(ideal, fragmented);
}

TEST(Microbench, TracksLinkMixOrdering) {
  const Graph hw = graph::dgx1_v100();
  const Graph pair = graph::ring(2);
  const double double_nv =
      measured_effective_bandwidth(pair, hw, match_of({0, 4}));
  const double single_nv =
      measured_effective_bandwidth(pair, hw, match_of({0, 1}));
  const double pcie = measured_effective_bandwidth(pair, hw, match_of({0, 5}));
  EXPECT_GT(double_nv, single_nv);
  EXPECT_GT(single_nv, pcie);
}

TEST(Microbench, CorrelatesWithEq2Base) {
  // The measured value stays within the structural-term band of the Eq. 2
  // base prediction (ring weight + QPI penalty are small corrections).
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(4);
  match::for_each_match(pattern, hw, [&](const Match& m) {
    const double measured = measured_effective_bandwidth(pattern, hw, m);
    const double base = std::max(
        score::predict_effective_bandwidth(
            score::used_link_census(pattern, hw, m)),
        4.0);
    EXPECT_LE(measured, base + 1e-9);
    // Lower band: structural ring term (-8%) and up to 4 QPI-crossing PCIe
    // edges (-6 GB/s) below the base, with a hard floor near 4 GB/s.
    EXPECT_GE(measured, std::max(0.90 * base - 6.5, 3.9));
    return true;
  });
}

TEST(Microbench, QpiPenaltyReducesCrossSocketPcie) {
  MicrobenchConfig with_penalty;
  MicrobenchConfig no_penalty;
  no_penalty.qpi_penalty_gbps = 0.0;
  const Graph hw = graph::dgx1_v100();
  const Graph pair = graph::ring(2);
  // (1,4) is a cross-socket PCIe pair on the DGX-1V.
  const auto m = match_of({1, 4});
  EXPECT_LT(measured_effective_bandwidth(pair, hw, m, with_penalty),
            measured_effective_bandwidth(pair, hw, m, no_penalty));
  // Same-socket PCIe pair is unaffected: (1,4)... use NVLink-only graph
  // where (0,5)? On the fallback DGX-V, (2,5)? socket(2)=0 socket(5)=1 —
  // cross. Same-socket PCIe pairs do not exist on DGX-1V (quads are fully
  // NVLinked), so use the torus where (0,5) is an intra-socket PCIe pair.
  const Graph torus = graph::torus2d_16();
  ASSERT_EQ(torus.edge_type(0, 5), LinkType::kPcie);
  ASSERT_EQ(torus.socket(0), torus.socket(5));
  const auto m2 = match_of({0, 5});
  EXPECT_DOUBLE_EQ(
      measured_effective_bandwidth(pair, torus, m2, with_penalty),
      measured_effective_bandwidth(pair, torus, m2, no_penalty));
}

TEST(Microbench, SizeSweepIsMonotone) {
  const Graph hw = graph::dgx1_v100();
  const Graph pair = graph::ring(2);
  const std::vector<double> sizes = {1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
  const auto sweep = effbw_size_sweep(pair, hw, match_of({0, 4}), sizes);
  ASSERT_EQ(sweep.size(), sizes.size());
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i], sweep[i - 1]);
  }
}

TEST(Microbench, DeterministicAcrossCalls) {
  const Graph hw = graph::cubemesh_16();
  const Graph pattern = graph::ring(4);
  const auto m = match_of({0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(measured_effective_bandwidth(pattern, hw, m),
                   measured_effective_bandwidth(pattern, hw, m));
}

TEST(Microbench, FloorAppliesToDegenerateAllocations) {
  // All-PCIe 5-ring: base Eq. 2 value can dip; result must stay >= floor
  // times the (near-1) ramp.
  const Graph hw = graph::pcie_only(8);
  const Graph pattern = graph::ring(5);
  const double bw = measured_effective_bandwidth(pattern, hw,
                                                 match_of({0, 1, 2, 3, 4}));
  EXPECT_GE(bw, 3.5);
}

TEST(TrainingSamples, UniqueCensusesLabeled) {
  const auto samples = generate_training_samples(graph::dgx1_v100());
  // The paper reports 31 distinct (x, y, z) censuses for 2-5 GPU
  // allocations on the DGX-V; our edge matrix must be in that ballpark.
  EXPECT_GE(samples.size(), 20u);
  EXPECT_LE(samples.size(), 40u);
  std::set<std::tuple<int, int, int>> seen;
  for (const auto& s : samples) {
    EXPECT_TRUE(seen.insert({s.census.doubles, s.census.singles,
                             s.census.pcie}).second);
    EXPECT_GT(s.measured_gbps, 0.0);
    EXPECT_LE(s.census.total(), 5);  // a 5-ring uses 5 edges
  }
}

TEST(TrainingSamples, DeterministicAcrossRuns) {
  const auto a = generate_training_samples(graph::dgx1_v100());
  const auto b = generate_training_samples(graph::dgx1_v100());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].census, b[i].census);
    EXPECT_DOUBLE_EQ(a[i].measured_gbps, b[i].measured_gbps);
  }
}

}  // namespace
}  // namespace mapa::interconnect
