#include "interconnect/link.hpp"

#include <gtest/gtest.h>

namespace mapa::interconnect {
namespace {

TEST(Link, PaperTable1Bandwidths) {
  EXPECT_DOUBLE_EQ(peak_bandwidth_gbps(LinkType::kNvLink1), 20.0);
  EXPECT_DOUBLE_EQ(peak_bandwidth_gbps(LinkType::kNvLink2), 25.0);
  EXPECT_DOUBLE_EQ(peak_bandwidth_gbps(LinkType::kNvLink2Double), 50.0);
  EXPECT_DOUBLE_EQ(peak_bandwidth_gbps(LinkType::kPcie), 12.0);
  EXPECT_DOUBLE_EQ(peak_bandwidth_gbps(LinkType::kNone), 0.0);
}

TEST(Link, DoubleNvlinkIsTwiceSingle) {
  EXPECT_DOUBLE_EQ(peak_bandwidth_gbps(LinkType::kNvLink2Double),
                   2.0 * peak_bandwidth_gbps(LinkType::kNvLink2));
}

TEST(Link, NamesRoundTrip) {
  for (const LinkType t :
       {LinkType::kNone, LinkType::kPcie, LinkType::kNvLink1,
        LinkType::kNvLink2, LinkType::kNvLink2Double, LinkType::kNvSwitch}) {
    const auto parsed = parse_link_type(to_string(t));
    ASSERT_TRUE(parsed.has_value()) << to_string(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(Link, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_link_type("nv2x2"), LinkType::kNvLink2Double);
  EXPECT_EQ(parse_link_type("PCIE"), LinkType::kPcie);
  EXPECT_EQ(parse_link_type("pcie"), LinkType::kPcie);
}

TEST(Link, ParseRejectsUnknown) {
  EXPECT_FALSE(parse_link_type("infiniband").has_value());
  EXPECT_FALSE(parse_link_type("").has_value());
}

TEST(Link, IsNvlinkClassification) {
  EXPECT_TRUE(is_nvlink(LinkType::kNvLink1));
  EXPECT_TRUE(is_nvlink(LinkType::kNvLink2));
  EXPECT_TRUE(is_nvlink(LinkType::kNvLink2Double));
  EXPECT_FALSE(is_nvlink(LinkType::kPcie));
  EXPECT_FALSE(is_nvlink(LinkType::kNone));
  EXPECT_FALSE(is_nvlink(LinkType::kNvSwitch));
}

}  // namespace
}  // namespace mapa::interconnect
