#include "profile/trace.hpp"

#include <gtest/gtest.h>

namespace mapa::profile {
namespace {

TEST(Trace, ParsesP2pAndCollective) {
  const auto events = parse_trace_string(
      "# comment\n"
      "p2p 0 1 1048576 16\n"
      "coll allreduce 4 0 1 2 3 4194304 100\n");
  ASSERT_EQ(events.size(), 2u);

  EXPECT_FALSE(events[0].collective.has_value());
  EXPECT_EQ(events[0].ranks, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_DOUBLE_EQ(events[0].bytes, 1048576.0);
  EXPECT_EQ(events[0].count, 16u);
  EXPECT_DOUBLE_EQ(events[0].total_bytes(), 16.0 * 1048576.0);

  EXPECT_EQ(events[1].collective, CollectiveKind::kAllReduce);
  EXPECT_EQ(events[1].ranks.size(), 4u);
  EXPECT_EQ(events[1].count, 100u);
}

TEST(Trace, CountDefaultsToOne) {
  const auto events = parse_trace_string(
      "p2p 0 1 100\ncoll broadcast 2 0 1 200\n");
  EXPECT_EQ(events[0].count, 1u);
  EXPECT_EQ(events[1].count, 1u);
}

TEST(Trace, BlankAndCommentOnlyLinesSkipped) {
  EXPECT_TRUE(parse_trace_string("\n# nothing\n   \n").empty());
}

TEST(Trace, ErrorsCarryLineNumbers) {
  try {
    parse_trace_string("p2p 0 1 100\np2p 2 2 50\n");
    FAIL() << "expected error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Trace, RejectsMalformedEvents) {
  EXPECT_THROW(parse_trace_string("p2p 0 1\n"), std::runtime_error);
  EXPECT_THROW(parse_trace_string("p2p 3 3 100\n"), std::runtime_error);
  EXPECT_THROW(parse_trace_string("warp 0 1 100\n"), std::runtime_error);
  EXPECT_THROW(parse_trace_string("coll frobnicate 2 0 1 100\n"),
               std::runtime_error);
  EXPECT_THROW(parse_trace_string("coll allreduce 1 0 100\n"),
               std::runtime_error);
  EXPECT_THROW(parse_trace_string("coll allreduce 3 0 1 100\n"),
               std::runtime_error);  // promised 3 ranks, gave 2
  EXPECT_THROW(parse_trace_string("p2p 0 1 100 0\n"), std::runtime_error);
}

TEST(Trace, RoundTripsThroughSerialization) {
  const auto original = parse_trace_string(
      "p2p 0 3 65536 4\n"
      "coll allreduce 3 0 1 2 1000000 7\n"
      "coll gather 4 2 0 1 3 4096\n");
  const auto reparsed = parse_trace_string(serialize_trace(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed[i].ranks, original[i].ranks);
    EXPECT_EQ(reparsed[i].collective, original[i].collective);
    EXPECT_DOUBLE_EQ(reparsed[i].bytes, original[i].bytes);
    EXPECT_EQ(reparsed[i].count, original[i].count);
  }
}

TEST(Trace, CollectiveKindsRoundTripThroughStrings) {
  for (const CollectiveKind kind :
       {CollectiveKind::kAllReduce, CollectiveKind::kReduce,
        CollectiveKind::kBroadcast, CollectiveKind::kGather,
        CollectiveKind::kScatter, CollectiveKind::kAllGather,
        CollectiveKind::kReduceScatter, CollectiveKind::kAllToAll}) {
    const auto parsed = parse_collective_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_collective_kind("sendrecv").has_value());
}

TEST(Trace, RankCount) {
  EXPECT_EQ(rank_count({}), 0u);
  const auto events =
      parse_trace_string("p2p 0 1 10\ncoll allreduce 2 2 5 100\n");
  EXPECT_EQ(rank_count(events), 6u);
}

}  // namespace
}  // namespace mapa::profile
