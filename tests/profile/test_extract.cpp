#include "profile/extract.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"

namespace mapa::profile {
namespace {

TEST(CollectiveStructure, LargeAllReduceIsRing) {
  const auto g = collective_structure(CollectiveKind::kAllReduce,
                                      {0, 1, 2, 3}, 1e6);
  EXPECT_EQ(g.num_edges(), 4u);
  for (graph::VertexId v = 0; v < 4; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(CollectiveStructure, SmallAllReduceIsTree) {
  const auto g = collective_structure(CollectiveKind::kAllReduce,
                                      {0, 1, 2, 3}, 1e3);
  EXPECT_EQ(g.num_edges(), 3u);  // tree over 4 vertices
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(CollectiveStructure, ThresholdIsConfigurable) {
  ExtractOptions options;
  options.ring_threshold_bytes = 10.0;
  const auto g = collective_structure(CollectiveKind::kAllReduce,
                                      {0, 1, 2, 3}, 100.0, options);
  EXPECT_EQ(g.num_edges(), 4u);  // ring even for 100 bytes
}

TEST(CollectiveStructure, BroadcastAndReduceAreTrees) {
  for (const auto kind : {CollectiveKind::kBroadcast,
                          CollectiveKind::kReduce}) {
    const auto g = collective_structure(kind, {0, 1, 2, 3, 4}, 1e6);
    EXPECT_EQ(g.num_edges(), 4u);
    EXPECT_TRUE(graph::is_connected(g));
  }
}

TEST(CollectiveStructure, GatherScatterAreStars) {
  for (const auto kind : {CollectiveKind::kGather, CollectiveKind::kScatter}) {
    const auto g = collective_structure(kind, {2, 0, 1, 3}, 1e6);
    // Root is ranks[0] == vertex 2.
    EXPECT_EQ(g.degree(2), 3u);
    EXPECT_EQ(g.degree(0), 1u);
  }
}

TEST(CollectiveStructure, AllToAllIsClique) {
  const auto g =
      collective_structure(CollectiveKind::kAllToAll, {0, 1, 2, 3}, 1e6);
  EXPECT_EQ(g.num_edges(), 6u);
}

TEST(CollectiveStructure, RanksNeedNotBeContiguous) {
  const auto g = collective_structure(CollectiveKind::kAllReduce,
                                      {1, 4, 6}, 1e6);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_TRUE(g.has_edge(1, 4));
  EXPECT_TRUE(g.has_edge(4, 6));
  EXPECT_TRUE(g.has_edge(1, 6));
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(CollectiveStructure, InvalidInputsRejected) {
  EXPECT_THROW(collective_structure(CollectiveKind::kAllReduce, {0}, 1e6),
               std::invalid_argument);
  EXPECT_THROW(
      collective_structure(CollectiveKind::kAllReduce, {0, 1, 1}, 1e6),
      std::invalid_argument);
}

TEST(ExtractGraph, UnionOfNcclCallsMatchesFig8) {
  // A 5-GPU job issuing large (ring) and small (tree) all-reduces should
  // extract to the ring+tree union of Fig. 8 (right).
  const auto events = parse_trace_string(
      "coll allreduce 5 0 1 2 3 4 4194304 10\n"
      "coll allreduce 5 0 1 2 3 4 4096 10\n");
  const auto g = extract_application_graph(events);
  const auto expected = graph::nccl_mix(5);
  ASSERT_EQ(g.num_vertices(), expected.num_vertices());
  EXPECT_EQ(g.num_edges(), expected.num_edges());
  for (const auto& e : expected.edges()) {
    EXPECT_TRUE(g.has_edge(e.u, e.v)) << e.u << "-" << e.v;
  }
}

TEST(ExtractGraph, NoiseThresholdDropsIncidentalTraffic) {
  const auto events = parse_trace_string(
      "p2p 0 1 1000000 100\n"
      "p2p 0 2 8 1\n");  // 8 bytes of incidental traffic
  ExtractOptions options;
  options.min_total_bytes = 1000.0;
  const auto g = extract_application_graph(events, options);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_vertices(), 3u);  // rank 2 still occupies a GPU
}

TEST(ExtractGraph, EmptyTraceRejected) {
  EXPECT_THROW(extract_application_graph({}), std::invalid_argument);
}

TEST(PairwiseTraffic, SplitsCollectiveVolumeOverEdges) {
  const auto events =
      parse_trace_string("coll allreduce 3 0 1 2 300000 2\n");
  const auto traffic = pairwise_traffic(events);
  ASSERT_EQ(traffic.size(), 3u);  // 3-ring
  for (const auto& [pair, bytes] : traffic) {
    EXPECT_DOUBLE_EQ(bytes, 600000.0 / 3.0);
  }
}

TEST(PairwiseTraffic, AccumulatesAcrossEvents) {
  const auto events = parse_trace_string(
      "p2p 0 1 100 2\n"
      "p2p 1 0 50 1\n");  // both directions accumulate onto one pair
  const auto traffic = pairwise_traffic(events);
  ASSERT_EQ(traffic.size(), 1u);
  EXPECT_DOUBLE_EQ(traffic.begin()->second, 250.0);
}

TEST(Sensitivity, LargeFrequentTransfersAreSensitive) {
  // VGG-like: many large all-reduces.
  const auto sensitive = parse_trace_string(
      "coll allreduce 4 0 1 2 3 1200000 160001\n");
  EXPECT_TRUE(estimate_bandwidth_sensitivity(sensitive));
}

TEST(Sensitivity, SmallTransfersAreInsensitive) {
  // GoogleNet-like: many tiny messages (below the Fig. 2a ramp knee).
  const auto small = parse_trace_string(
      "coll allreduce 4 0 1 2 3 25000 640001\n");
  EXPECT_FALSE(estimate_bandwidth_sensitivity(small));
}

TEST(Sensitivity, LowVolumeIsInsensitive) {
  // CuSimann-like: a few large transfers but negligible total volume.
  const auto rare = parse_trace_string("p2p 0 1 1000000 3\n");
  EXPECT_FALSE(estimate_bandwidth_sensitivity(rare));
  EXPECT_FALSE(estimate_bandwidth_sensitivity({}));
}

}  // namespace
}  // namespace mapa::profile
