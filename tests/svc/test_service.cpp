// AllocationService behavior over the in-process loopback fixture: the
// full request lifecycle (allocate/release/query/stats), typed
// rejections (unknown workload, duplicate id, too many GPUs, malformed
// frames), deterministic queue-full admission control, graceful
// shutdown (drain + typed cancels, exactly one reply per request), and
// the obs-registry cross-check of the service counters. No real sockets
// anywhere — tests/integration/test_daemon.cpp owns the one socket
// smoke test.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "graph/topology.hpp"
#include "obs/obs.hpp"
#include "svc/client.hpp"
#include "svc/service.hpp"

namespace mapa::svc {
namespace {

std::vector<cluster::ServerSpec> dgx_specs(std::size_t n) {
  std::vector<cluster::ServerSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    cluster::ServerSpec spec;
    spec.topology = graph::dgx1_v100();
    spec.policy = "preserve";
    specs.push_back(std::move(spec));
  }
  return specs;
}

workload::Job job_of(int id, std::size_t gpus, double arrival_s = 0.0) {
  workload::Job j;
  j.id = id;
  j.workload = "resnet-50";
  j.num_gpus = gpus;
  j.pattern = gpus <= 1 ? graph::PatternKind::kSingle
                        : graph::PatternKind::kRing;
  j.bandwidth_sensitive = true;
  j.arrival_time_s = arrival_s;
  return j;
}

struct Fixture {
  explicit Fixture(std::size_t servers = 2, ServiceConfig config = {})
      : service(dgx_specs(servers), std::move(config)),
        hub(service),
        channel(hub),
        client(channel) {}

  AllocationService service;
  LoopbackHub hub;
  LoopbackChannel channel;
  Client client;
};

TEST(Service, AllocateRoundtrip) {
  Fixture fx;
  const auto id = fx.client.allocate(job_of(1, 4));
  const Reply reply = fx.client.wait(id);
  const auto ok = std::get<AllocateReply>(reply.payload);
  EXPECT_EQ(ok.job_id, 1);
  EXPECT_LT(ok.server, 2u);
  EXPECT_EQ(ok.gpus.size(), 4u);
  EXPECT_EQ(ok.retries, 0u);
  EXPECT_GT(ok.finish_s, ok.start_s);
}

TEST(Service, QueryLifecycle) {
  Fixture fx;
  // Unknown before anything happens.
  {
    const Reply reply = fx.client.wait(fx.client.query(5));
    EXPECT_EQ(std::get<QueryReply>(reply.payload).state, JobState::kUnknown);
  }
  const auto alloc_id = fx.client.allocate(job_of(5, 2));
  const auto ok = std::get<AllocateReply>(fx.client.wait(alloc_id).payload);
  // poll() ran to idle, so the job is already past its finish time.
  const Reply reply = fx.client.wait(fx.client.query(5));
  const auto q = std::get<QueryReply>(reply.payload);
  EXPECT_EQ(q.state, JobState::kFinished);
  EXPECT_EQ(q.server, ok.server);
  EXPECT_DOUBLE_EQ(q.start_s, ok.start_s);
  EXPECT_DOUBLE_EQ(q.finish_s, ok.finish_s);
}

TEST(Service, ReleaseBeforePlacementCancelsTheAllocate) {
  Fixture fx;
  // Both requests enter the SAME admission batch: the release drops the
  // job from the pending set before any step places it, so the allocate
  // is answered with a typed cancel, not a placement.
  const auto alloc_id = fx.client.allocate(job_of(1, 4, 10.0));
  const auto release_id = fx.client.release(1);
  const auto rel =
      std::get<ReleaseReply>(fx.client.wait(release_id).payload);
  EXPECT_EQ(rel.outcome, 1);  // kQueued
  const auto err = std::get<ErrorReply>(fx.client.wait(alloc_id).payload);
  EXPECT_EQ(err.code, ErrorCode::kCancelled);
  // Exactly once: a later query sees the released state.
  const auto q =
      std::get<QueryReply>(fx.client.wait(fx.client.query(1)).payload);
  EXPECT_EQ(q.state, JobState::kReleased);
}

TEST(Service, ReleaseUnknownJob) {
  Fixture fx;
  const auto rel =
      std::get<ReleaseReply>(fx.client.wait(fx.client.release(404)).payload);
  EXPECT_EQ(rel.outcome, 0);  // kNotFound
}

TEST(Service, TypedAllocateRejections) {
  Fixture fx;
  {
    workload::Job j = job_of(1, 2);
    j.workload = "no-such-model";
    const auto err =
        std::get<ErrorReply>(fx.client.wait(fx.client.allocate(j)).payload);
    EXPECT_EQ(err.code, ErrorCode::kUnknownWorkload);
  }
  {
    const auto err = std::get<ErrorReply>(
        fx.client.wait(fx.client.allocate(job_of(2, 16))).payload);
    EXPECT_EQ(err.code, ErrorCode::kTooManyGpus);
  }
  {
    (void)fx.client.wait(fx.client.allocate(job_of(3, 1)));
    const auto err = std::get<ErrorReply>(
        fx.client.wait(fx.client.allocate(job_of(3, 1))).payload);
    EXPECT_EQ(err.code, ErrorCode::kDuplicateJob);
  }
}

TEST(Service, QueueFullRejectsDeterministically) {
  ServiceConfig config;
  config.max_pending = 2;
  Fixture fx(1, std::move(config));

  std::vector<Outbound> out;
  EXPECT_TRUE(fx.service.enqueue(1, Request{1, AllocateRequest::from_job(
                                                   job_of(1, 1))},
                                 out));
  EXPECT_TRUE(fx.service.enqueue(1, Request{2, AllocateRequest::from_job(
                                                   job_of(2, 1))},
                                 out));
  EXPECT_TRUE(out.empty());
  // Third in the same batch: immediate typed reject, queue untouched.
  EXPECT_FALSE(fx.service.enqueue(1, Request{3, AllocateRequest::from_job(
                                                    job_of(3, 1))},
                                  out));
  ASSERT_EQ(out.size(), 1u);
  const DecodedReply d = decode_reply(out[0].frame.data() + 4,
                                      out[0].frame.size() - 4);
  const Reply reply = std::get<Reply>(d);
  EXPECT_EQ(reply.id, 3u);
  EXPECT_EQ(std::get<ErrorReply>(reply.payload).code, ErrorCode::kQueueFull);
  EXPECT_EQ(fx.service.pending(), 2u);

  // The poll drains the queue; admission reopens.
  out.clear();
  fx.service.poll(out);
  EXPECT_EQ(fx.service.pending(), 0u);
  EXPECT_TRUE(fx.service.enqueue(1, Request{4, StatsRequest{}}, out));

  // The reject is counted in the stats snapshot.
  const std::string stats = fx.service.stats_json();
  EXPECT_NE(stats.find("\"rejected_queue_full\": 1"), std::string::npos);
  EXPECT_NE(stats.find("\"rejected\": 1"), std::string::npos);
}

TEST(Service, StatsEndpointStreamsServiceAndObsState) {
  obs::ObsConfig obs_config;
  obs_config.counters = true;
  obs_config.telemetry_every_ticks = 1;
  ServiceConfig config;
  config.cluster.observer = std::make_shared<obs::Observer>(obs_config);
  Fixture fx(2, std::move(config));

  (void)fx.client.wait(fx.client.allocate(job_of(1, 2)));
  const auto stats =
      std::get<StatsReply>(fx.client.wait(fx.client.stats()).payload);
  EXPECT_NE(stats.json.find("\"service\""), std::string::npos);
  EXPECT_NE(stats.json.find("\"accepted\": 2"), std::string::npos);
  EXPECT_NE(stats.json.find("\"obs\""), std::string::npos);
  EXPECT_NE(stats.json.find("\"registry\""), std::string::npos);
  EXPECT_NE(stats.json.find("svc.accepted"), std::string::npos);
  EXPECT_NE(stats.json.find("\"telemetry\""), std::string::npos);
}

TEST(Service, ObsCounterCrossCheck) {
  // The registry's svc.* counters and the service's own tallies must
  // agree — same pattern as tests/cluster/test_observability.cpp.
  obs::ObsConfig obs_config;
  obs_config.counters = true;
  ServiceConfig config;
  config.max_pending = 1;
  auto observer = std::make_shared<obs::Observer>(obs_config);
  config.cluster.observer = observer;
  Fixture fx(1, std::move(config));

  std::vector<Outbound> out;
  fx.service.enqueue(1, Request{1, AllocateRequest::from_job(job_of(1, 1))},
                     out);
  fx.service.enqueue(1, Request{2, AllocateRequest::from_job(job_of(2, 1))},
                     out);  // queue-full reject
  fx.service.poll(out);
  fx.service.enqueue(1, Request{3, QueryRequest{1}}, out);
  fx.service.poll(out);

  obs::Registry& reg = *observer->registry();
  EXPECT_EQ(reg.counter("svc.accepted").value(), 2u);
  EXPECT_EQ(reg.counter("svc.rejected").value(), 1u);
  EXPECT_EQ(reg.counter("svc.rejected_queue_full").value(), 1u);
  // Replies: queue-full reject + allocate ok + query ok.
  EXPECT_EQ(reg.counter("svc.replies").value(), 3u);
  EXPECT_EQ(reg.counter("svc.decode_errors").value(), 0u);
}

TEST(Service, MalformedFramesGetTypedErrors) {
  Fixture fx;
  std::vector<Outbound> out;
  // A syntactically framed message with bad magic.
  std::vector<std::uint8_t> bad = {16, 0, 0, 0,              // length 16
                                   0x00, 0x00, 1, 0x04,      // magic! ver op
                                   9, 0, 0, 0, 0, 0, 0, 0,   // request id
                                   0, 0, 0, 0};
  fx.service.ingest(7, bad.data(), bad.size(), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].client, 7u);
  const Reply reply = std::get<Reply>(
      decode_reply(out[0].frame.data() + 4, out[0].frame.size() - 4));
  EXPECT_EQ(std::get<ErrorReply>(reply.payload).code, ErrorCode::kBadMagic);

  // A lying length field poisons the connection: exactly one error, and
  // ingest() tells the transport to close by returning false.
  out.clear();
  std::vector<std::uint8_t> evil = {0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3};
  EXPECT_FALSE(fx.service.ingest(8, evil.data(), evil.size(), out));
  EXPECT_FALSE(fx.service.ingest(8, evil.data(), evil.size(), out));
  ASSERT_EQ(out.size(), 1u);
  const Reply poison = std::get<Reply>(
      decode_reply(out[0].frame.data() + 4, out[0].frame.size() - 4));
  EXPECT_EQ(std::get<ErrorReply>(poison.payload).code,
            ErrorCode::kOversizedFrame);
}

TEST(Service, DisconnectResetsStreamAndDropsPendingWork) {
  Fixture fx;
  std::vector<Outbound> out;

  // Poison client 8's stream, then disconnect it. A transport that later
  // reuses id 8 must get a FRESH framing state, not the poisoned one.
  std::vector<std::uint8_t> evil = {0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3};
  EXPECT_FALSE(fx.service.ingest(8, evil.data(), evil.size(), out));
  out.clear();
  fx.service.disconnect(8);
  const std::vector<std::uint8_t> query = encode(Request{1, QueryRequest{1}});
  EXPECT_TRUE(fx.service.ingest(8, query.data(), query.size(), out));
  fx.service.poll(out);
  ASSERT_EQ(out.size(), 1u);  // fresh stream decodes and answers again
  EXPECT_EQ(out[0].client, 8u);

  // A request admitted but not yet served when its client disconnects is
  // dropped: it must not submit work (or build a reply) for a ghost.
  out.clear();
  fx.service.enqueue(9, Request{2, AllocateRequest::from_job(job_of(1, 2))},
                     out);
  EXPECT_EQ(fx.service.pending(), 1u);
  fx.service.disconnect(9);
  EXPECT_EQ(fx.service.pending(), 0u);
  fx.service.poll(out);
  EXPECT_TRUE(out.empty());
}

TEST(Service, StatsJsonObsFallbackStaysBounded) {
  Fixture fx;
  // The obs-free fallback (used when the full snapshot would overflow a
  // kStatsOk frame) must stay valid JSON and under the payload cap.
  const std::string lean = fx.service.stats_json(/*include_obs=*/false);
  EXPECT_NE(lean.find("\"obs\": null, \"obs_truncated\": true"),
            std::string::npos);
  EXPECT_LT(lean.size(), kMaxStatsJsonLen);
}

TEST(Service, GracefulShutdownAnswersEverything) {
  Fixture fx;
  std::vector<Outbound> out;
  // Admit three requests, then shut down WITHOUT polling first: the
  // shutdown drain must still answer all of them exactly once.
  fx.service.enqueue(1, Request{1, AllocateRequest::from_job(job_of(1, 2))},
                     out);
  fx.service.enqueue(2, Request{2, AllocateRequest::from_job(job_of(2, 3))},
                     out);
  fx.service.enqueue(1, Request{3, QueryRequest{1}}, out);
  EXPECT_TRUE(out.empty());

  fx.service.shutdown(out);
  ASSERT_EQ(out.size(), 3u);
  std::size_t allocate_oks = 0;
  for (const Outbound& o : out) {
    const Reply reply = std::get<Reply>(
        decode_reply(o.frame.data() + 4, o.frame.size() - 4));
    if (std::holds_alternative<AllocateReply>(reply.payload)) ++allocate_oks;
  }
  EXPECT_EQ(allocate_oks, 2u);

  // After shutdown: typed kShuttingDown reject, nothing queued.
  out.clear();
  EXPECT_FALSE(
      fx.service.enqueue(1, Request{4, QueryRequest{1}}, out));
  ASSERT_EQ(out.size(), 1u);
  const Reply reply = std::get<Reply>(
      decode_reply(out[0].frame.data() + 4, out[0].frame.size() - 4));
  EXPECT_EQ(std::get<ErrorReply>(reply.payload).code,
            ErrorCode::kShuttingDown);
  EXPECT_TRUE(fx.service.shutting_down());
}

TEST(Service, RepliesRouteToTheirOwnClients) {
  Fixture fx;
  LoopbackChannel channel_b(fx.hub, 2);
  Client client_b(channel_b);

  const auto id_a = fx.client.allocate(job_of(1, 2));
  const auto id_b = client_b.allocate(job_of(2, 2));
  const auto ok_b = std::get<AllocateReply>(client_b.wait(id_b).payload);
  const auto ok_a = std::get<AllocateReply>(fx.client.wait(id_a).payload);
  EXPECT_EQ(ok_a.job_id, 1);
  EXPECT_EQ(ok_b.job_id, 2);
}

TEST(Service, UnplaceableJobGetsTypedError) {
  Fixture fx(1);
  // Drain the only server, then ask for a full-server job: the fleet
  // diverts it to the unplaceable outbox and the service answers with a
  // typed error instead of dying.
  cluster::FaultEvent drain;
  drain.kind = cluster::FaultEvent::Kind::kDrain;
  drain.server = 0;
  drain.time_s = 0.0;
  fx.service.inject_fault(drain);

  const auto id = fx.client.allocate(job_of(1, 8));
  const auto err = std::get<ErrorReply>(fx.client.wait(id).payload);
  EXPECT_EQ(err.code, ErrorCode::kUnplaceable);
  const auto q =
      std::get<QueryReply>(fx.client.wait(fx.client.query(1)).payload);
  EXPECT_EQ(q.state, JobState::kUnplaceable);
}

}  // namespace
}  // namespace mapa::svc
