// Differential replay: feeding a request log through the daemon and
// closing the session must yield FleetRecords byte-identical to batch
// FleetSimulator::run() on the same trace — the service layer extends
// the fleet determinism contract rather than weakening it. Pinned
// across probe thread counts (1 vs 8) and dispatcher shard counts
// (1 vs 8), and through the full wire codec (encode -> decode ->
// admission) rather than handing Job structs to the service directly.

#include <gtest/gtest.h>

#include <set>
#include <variant>
#include <vector>

#include "cluster/fleet.hpp"
#include "graph/topology.hpp"
#include "svc/client.hpp"
#include "svc/service.hpp"
#include "workload/generator.hpp"

namespace mapa::svc {
namespace {

std::vector<cluster::ServerSpec> dgx_specs(std::size_t n) {
  std::vector<cluster::ServerSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    cluster::ServerSpec spec;
    spec.topology = graph::dgx1_v100();
    spec.policy = "preserve";
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<workload::Job> trace(std::size_t num_jobs, std::uint64_t seed) {
  workload::FleetTraceConfig config;
  config.num_jobs = num_jobs;
  config.seed = seed;
  config.max_gpus = 5;
  config.arrival_rate_per_s = 0.2;
  return workload::generate_fleet_trace(config);
}

/// Byte-level record equality: every field that the determinism contract
/// covers (i.e. everything except wall-clock overheads).
void expect_identical(const cluster::FleetResult& batch,
                      const cluster::FleetResult& daemon) {
  ASSERT_EQ(batch.records.size(), daemon.records.size());
  for (std::size_t i = 0; i < batch.records.size(); ++i) {
    const sim::JobRecord& b = batch.records[i].record;
    const sim::JobRecord& d = daemon.records[i].record;
    EXPECT_EQ(batch.records[i].server, daemon.records[i].server) << i;
    EXPECT_EQ(batch.records[i].retries, daemon.records[i].retries) << i;
    EXPECT_EQ(b.job, d.job) << i;
    EXPECT_EQ(b.gpus, d.gpus) << i;
    EXPECT_EQ(b.queued_s, d.queued_s) << i;
    EXPECT_EQ(b.start_s, d.start_s) << i;
    EXPECT_EQ(b.finish_s, d.finish_s) << i;
    EXPECT_EQ(b.exec_s, d.exec_s) << i;
    EXPECT_EQ(b.aggregated_bw, d.aggregated_bw) << i;
    EXPECT_EQ(b.predicted_effbw, d.predicted_effbw) << i;
    EXPECT_EQ(b.measured_effbw, d.measured_effbw) << i;
    EXPECT_EQ(b.preserved_bw, d.preserved_bw) << i;
  }
  EXPECT_EQ(batch.makespan_s, daemon.makespan_s);
  EXPECT_EQ(batch.dead_letters.size(), daemon.dead_letters.size());
  ASSERT_EQ(batch.servers.size(), daemon.servers.size());
  for (std::size_t s = 0; s < batch.servers.size(); ++s) {
    EXPECT_EQ(batch.servers[s].jobs_placed, daemon.servers[s].jobs_placed);
    EXPECT_EQ(batch.servers[s].busy_gpu_seconds,
              daemon.servers[s].busy_gpu_seconds);
  }
}

/// Replay `jobs` through a daemon over the wire codec, then close the
/// session and hand back the FleetResult.
cluster::FleetResult daemon_replay(const std::vector<workload::Job>& jobs,
                                   std::size_t servers,
                                   cluster::ClusterConfig cluster) {
  ServiceConfig config;
  config.cluster = std::move(cluster);
  config.max_pending = jobs.size() + 1;
  AllocationService service(dgx_specs(servers), std::move(config));
  LoopbackHub hub(service);
  LoopbackChannel channel(hub, 1);
  Client client(channel);

  std::vector<std::uint64_t> request_ids;
  request_ids.reserve(jobs.size());
  for (const workload::Job& job : jobs) {
    request_ids.push_back(client.allocate(job));
  }
  // One poll drains the whole admission queue before stepping, so the
  // fleet sees exactly the batch submission order.
  std::set<int> answered;
  for (const std::uint64_t id : request_ids) {
    const Reply reply = client.wait(id);
    const auto ok = std::get<AllocateReply>(reply.payload);
    EXPECT_TRUE(answered.insert(ok.job_id).second);
  }
  EXPECT_EQ(answered.size(), jobs.size());
  return service.finish();
}

void pin_daemon_to_batch(std::size_t servers, std::size_t threads,
                         std::size_t shards, std::uint64_t seed) {
  const auto jobs = trace(120, seed);
  cluster::ClusterConfig config;
  config.threads = threads;
  config.shards = shards;

  cluster::FleetSimulator batch(dgx_specs(servers), config);
  const cluster::FleetResult expected = batch.run(jobs);
  const cluster::FleetResult actual = daemon_replay(jobs, servers, config);
  expect_identical(expected, actual);
}

TEST(SvcEquivalence, DaemonReplayMatchesBatchSingleThread) {
  pin_daemon_to_batch(4, 1, 1, 31);
}

TEST(SvcEquivalence, DaemonReplayMatchesBatchEightProbeThreads) {
  pin_daemon_to_batch(4, 8, 1, 31);
}

TEST(SvcEquivalence, DaemonReplayMatchesBatchEightShards) {
  pin_daemon_to_batch(8, 1, 8, 47);
}

TEST(SvcEquivalence, DaemonReplayMatchesBatchShardedAndThreaded) {
  pin_daemon_to_batch(8, 4, 4, 47);
}

TEST(SvcEquivalence, ThreadAndShardCountsAgreeThroughTheDaemon) {
  // The daemon-side restatement of the fleet's parallelism contract
  // (tests/cluster/test_sharding.cpp): probe-thread count changes are
  // byte-identical on any trace; shard count changes preserve every
  // job's timing and shape on a shape-symmetric workload (full-server
  // jobs) — only which server a job lands on may move.
  {
    const auto jobs = trace(100, 13);
    cluster::ClusterConfig config;
    config.threads = 8;
    cluster::ClusterConfig base;
    expect_identical(daemon_replay(jobs, 8, base),
                     daemon_replay(jobs, 8, config));
  }

  // Same 16 full-server jobs as the fleet-level sharding pin: every
  // placement is a whole DGX, so exec time cannot depend on the server.
  std::vector<workload::Job> jobs;
  for (int i = 1; i <= 16; ++i) {
    workload::Job j;
    j.id = i;
    j.workload = "vgg-16";
    j.num_gpus = 8;
    j.pattern = graph::PatternKind::kRing;
    j.bandwidth_sensitive = true;
    j.iter_scale = 1.0 + 0.1 * i;
    jobs.push_back(j);
  }
  cluster::ClusterConfig base;
  base.selection = "first-fit";
  const cluster::FleetResult reference = daemon_replay(jobs, 8, base);

  for (const std::size_t shards : {std::size_t{8}, std::size_t{4}}) {
    cluster::ClusterConfig config;
    config.selection = "first-fit";
    config.shards = shards;
    const cluster::FleetResult sharded = daemon_replay(jobs, 8, config);
    EXPECT_DOUBLE_EQ(sharded.makespan_s, reference.makespan_s);
    ASSERT_EQ(sharded.records.size(), reference.records.size());
    EXPECT_EQ(sharded.dead_letters.size(), reference.dead_letters.size());
    for (const workload::Job& job : jobs) {
      const cluster::FleetRecord* a = reference.find(job.id);
      const cluster::FleetRecord* b = sharded.find(job.id);
      ASSERT_NE(a, nullptr) << job.id;
      ASSERT_NE(b, nullptr) << job.id;
      EXPECT_DOUBLE_EQ(a->record.start_s, b->record.start_s) << job.id;
      EXPECT_DOUBLE_EQ(a->record.finish_s, b->record.finish_s) << job.id;
      EXPECT_DOUBLE_EQ(a->record.exec_s, b->record.exec_s) << job.id;
      EXPECT_EQ(a->record.gpus.size(), b->record.gpus.size()) << job.id;
    }
  }
}

}  // namespace
}  // namespace mapa::svc
