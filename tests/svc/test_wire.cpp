// Wire-format robustness: roundtrips for every message type, then the
// hostile-input contract — truncated frames, lying length fields,
// bad magic/version/opcode/enum values, trailing garbage, and seeded
// random-byte fuzz must all yield typed DecodeErrors, never UB. CI runs
// this suite under ASan+UBSan (the `sanitize` job), so "never UB" is
// machine-checked, not aspirational.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <variant>
#include <vector>

#include "svc/wire.hpp"

namespace mapa::svc {
namespace {

Request decode_request_ok(const std::vector<std::uint8_t>& frame) {
  // Frames carry the 4-byte length prefix; decoders take the body.
  DecodedRequest d = decode_request(frame.data() + 4, frame.size() - 4);
  EXPECT_TRUE(std::holds_alternative<Request>(d))
      << std::get<DecodeError>(d).message;
  return std::get<Request>(d);
}

Reply decode_reply_ok(const std::vector<std::uint8_t>& frame) {
  DecodedReply d = decode_reply(frame.data() + 4, frame.size() - 4);
  EXPECT_TRUE(std::holds_alternative<Reply>(d))
      << std::get<DecodeError>(d).message;
  return std::get<Reply>(d);
}

DecodeError decode_request_err(std::vector<std::uint8_t> body) {
  DecodedRequest d = decode_request(body.data(), body.size());
  EXPECT_TRUE(std::holds_alternative<DecodeError>(d));
  return std::get<DecodeError>(d);
}

TEST(Wire, AllocateRoundtrip) {
  AllocateRequest a;
  a.job_id = 42;
  a.pattern = graph::PatternKind::kAllToAll;
  a.bandwidth_sensitive = true;
  a.num_gpus = 4;
  a.arrival_time_s = 17.25;
  a.iter_scale = 2.5;
  a.workload = "resnet-50";

  const auto frame = encode(Request{0xDEADBEEFCAFEF00Dull, a});
  const Request back = decode_request_ok(frame);
  EXPECT_EQ(back.id, 0xDEADBEEFCAFEF00Dull);
  const auto& b = std::get<AllocateRequest>(back.payload);
  EXPECT_EQ(b.job_id, 42);
  EXPECT_EQ(b.pattern, graph::PatternKind::kAllToAll);
  EXPECT_TRUE(b.bandwidth_sensitive);
  EXPECT_EQ(b.num_gpus, 4u);
  EXPECT_DOUBLE_EQ(b.arrival_time_s, 17.25);
  EXPECT_DOUBLE_EQ(b.iter_scale, 2.5);
  EXPECT_EQ(b.workload, "resnet-50");
}

TEST(Wire, JobConversionRoundtrip) {
  workload::Job job;
  job.id = 7;
  job.workload = "vgg-16";
  job.num_gpus = 3;
  job.pattern = graph::PatternKind::kChain;
  job.bandwidth_sensitive = true;
  job.arrival_time_s = 5.5;
  job.iter_scale = 1.25;
  EXPECT_EQ(AllocateRequest::from_job(job).to_job(), job);
}

TEST(Wire, SmallRequestRoundtrips) {
  {
    const Request back =
        decode_request_ok(encode(Request{1, ReleaseRequest{-3}}));
    EXPECT_EQ(std::get<ReleaseRequest>(back.payload).job_id, -3);
  }
  {
    const Request back =
        decode_request_ok(encode(Request{2, QueryRequest{99}}));
    EXPECT_EQ(std::get<QueryRequest>(back.payload).job_id, 99);
  }
  {
    const Request back = decode_request_ok(encode(Request{3, StatsRequest{}}));
    EXPECT_TRUE(std::holds_alternative<StatsRequest>(back.payload));
  }
}

TEST(Wire, ReplyRoundtrips) {
  {
    AllocateReply a;
    a.job_id = 5;
    a.server = 3;
    a.retries = 2;
    a.start_s = 1.5;
    a.finish_s = 9.75;
    a.gpus = {0, 3, 5, 7};
    const Reply back = decode_reply_ok(encode(Reply{11, a}));
    EXPECT_EQ(back.id, 11u);
    const auto& b = std::get<AllocateReply>(back.payload);
    EXPECT_EQ(b.job_id, 5);
    EXPECT_EQ(b.server, 3u);
    EXPECT_EQ(b.retries, 2u);
    EXPECT_DOUBLE_EQ(b.start_s, 1.5);
    EXPECT_DOUBLE_EQ(b.finish_s, 9.75);
    EXPECT_EQ(b.gpus, (std::vector<std::uint32_t>{0, 3, 5, 7}));
  }
  {
    const Reply back = decode_reply_ok(encode(Reply{12, ReleaseReply{5, 2}}));
    EXPECT_EQ(std::get<ReleaseReply>(back.payload).outcome, 2);
  }
  {
    QueryReply q;
    q.job_id = 8;
    q.state = JobState::kDeadLettered;
    q.server = 1;
    q.start_s = 3.0;
    q.finish_s = 4.0;
    const Reply back = decode_reply_ok(encode(Reply{13, q}));
    EXPECT_EQ(std::get<QueryReply>(back.payload).state,
              JobState::kDeadLettered);
  }
  {
    const Reply back =
        decode_reply_ok(encode(Reply{14, StatsReply{"{\"a\": 1}"}}));
    EXPECT_EQ(std::get<StatsReply>(back.payload).json, "{\"a\": 1}");
  }
  {
    const Reply back = decode_reply_ok(
        encode(Reply{15, ErrorReply{ErrorCode::kQueueFull, "full"}}));
    const auto& e = std::get<ErrorReply>(back.payload);
    EXPECT_EQ(e.code, ErrorCode::kQueueFull);
    EXPECT_EQ(e.message, "full");
  }
}

TEST(Wire, OversizedStatsReplyIsClampedNotPoisonous) {
  // A stats payload past kMaxStatsJsonLen must be clamped at encode time:
  // an emitted frame over kMaxFrameLen would poison the receiving
  // FrameAssembler and kill the connection.
  StatsReply s;
  s.json.assign(kMaxFrameLen + 1234, 'x');
  const auto frame = encode(Reply{7, s});
  ASSERT_EQ(frame.size(), kMaxFrameLen + 4);  // exactly at the cap

  FrameAssembler assembler;
  assembler.feed(frame.data(), frame.size());
  ASSERT_TRUE(assembler.next().has_value());
  EXPECT_FALSE(assembler.error().has_value());

  const Reply back = decode_reply_ok(frame);
  EXPECT_EQ(std::get<StatsReply>(back.payload).json.size(), kMaxStatsJsonLen);
}

TEST(Wire, RejectsShortHeader) {
  const DecodeError e = decode_request_err({0x41, 0x4D, 0x01});
  EXPECT_EQ(e.code, ErrorCode::kBadPayload);
  EXPECT_EQ(e.request_id, 0u);
}

TEST(Wire, RejectsBadMagic) {
  auto frame = encode(Request{1, StatsRequest{}});
  frame[4] = 0x00;  // first magic byte
  const DecodeError e =
      decode_request_err({frame.begin() + 4, frame.end()});
  EXPECT_EQ(e.code, ErrorCode::kBadMagic);
}

TEST(Wire, RejectsBadVersion) {
  auto frame = encode(Request{77, StatsRequest{}});
  frame[6] = 9;  // version byte
  const DecodeError e =
      decode_request_err({frame.begin() + 4, frame.end()});
  EXPECT_EQ(e.code, ErrorCode::kBadVersion);
  // The id is salvaged so the reject can still be correlated.
  EXPECT_EQ(e.request_id, 77u);
}

TEST(Wire, RejectsBadOpcode) {
  auto frame = encode(Request{78, StatsRequest{}});
  frame[7] = 0x66;  // opcode byte
  const DecodeError e =
      decode_request_err({frame.begin() + 4, frame.end()});
  EXPECT_EQ(e.code, ErrorCode::kBadOpcode);
  EXPECT_EQ(e.request_id, 78u);
}

TEST(Wire, RejectsBadPattern) {
  AllocateRequest a;
  a.workload = "gmm";
  auto frame = encode(Request{79, a});
  frame[4 + kFrameHeaderLen + 4] = 200;  // pattern byte after i32 job id
  const DecodeError e =
      decode_request_err({frame.begin() + 4, frame.end()});
  EXPECT_EQ(e.code, ErrorCode::kBadPattern);
  EXPECT_EQ(e.request_id, 79u);
}

TEST(Wire, RejectsTruncatedPayload) {
  AllocateRequest a;
  a.workload = "jacobi";
  auto frame = encode(Request{80, a});
  // Chop every possible suffix off the body: all must fail cleanly.
  for (std::size_t cut = 5; cut < frame.size() - 4; ++cut) {
    DecodedRequest d = decode_request(frame.data() + 4, frame.size() - 4 - cut);
    if (frame.size() - 4 - cut < kFrameHeaderLen) {
      EXPECT_EQ(std::get<DecodeError>(d).code, ErrorCode::kBadPayload);
    } else {
      EXPECT_TRUE(std::holds_alternative<DecodeError>(d));
      EXPECT_EQ(std::get<DecodeError>(d).request_id, 80u);
    }
  }
}

TEST(Wire, RejectsTrailingGarbage) {
  auto frame = encode(Request{81, QueryRequest{1}});
  std::vector<std::uint8_t> body(frame.begin() + 4, frame.end());
  body.push_back(0xAB);
  const DecodeError e = decode_request_err(body);
  EXPECT_EQ(e.code, ErrorCode::kBadPayload);
  EXPECT_EQ(e.request_id, 81u);
}

TEST(Wire, RejectsLyingStringLength) {
  AllocateRequest a;
  a.workload = "gmm";
  auto frame = encode(Request{82, a});
  // Inflate the workload length prefix past the actual bytes.
  const std::size_t len_at = frame.size() - a.workload.size() - 2;
  frame[len_at] = 0xFF;
  frame[len_at + 1] = 0xFF;
  const DecodeError e =
      decode_request_err({frame.begin() + 4, frame.end()});
  EXPECT_EQ(e.code, ErrorCode::kBadPayload);
}

TEST(Wire, AssemblerReassemblesByteAtATime) {
  const auto f1 = encode(Request{1, QueryRequest{7}});
  const auto f2 = encode(Request{2, StatsRequest{}});
  std::vector<std::uint8_t> stream = f1;
  stream.insert(stream.end(), f2.begin(), f2.end());

  FrameAssembler assembler;
  std::vector<std::vector<std::uint8_t>> frames;
  for (const std::uint8_t byte : stream) {
    assembler.feed(&byte, 1);
    while (auto frame = assembler.next()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_FALSE(assembler.error().has_value());
  EXPECT_EQ(std::get<Request>(
                decode_request(frames[0].data(), frames[0].size()))
                .id,
            1u);
  EXPECT_EQ(std::get<Request>(
                decode_request(frames[1].data(), frames[1].size()))
                .id,
            2u);
}

TEST(Wire, AssemblerPoisonsOnOversizedLength) {
  std::vector<std::uint8_t> evil = {0xFF, 0xFF, 0xFF, 0x7F};  // ~2 GiB
  FrameAssembler assembler;
  assembler.feed(evil.data(), evil.size());
  EXPECT_FALSE(assembler.next().has_value());
  ASSERT_TRUE(assembler.error().has_value());
  EXPECT_EQ(assembler.error()->code, ErrorCode::kOversizedFrame);
  // Poisoned for good: further feeds are ignored.
  const auto good = encode(Request{1, StatsRequest{}});
  assembler.feed(good.data(), good.size());
  EXPECT_FALSE(assembler.next().has_value());
}

TEST(Wire, AssemblerPoisonsOnTinyLength) {
  std::vector<std::uint8_t> evil = {0x03, 0x00, 0x00, 0x00, 1, 2, 3};
  FrameAssembler assembler;
  assembler.feed(evil.data(), evil.size());
  EXPECT_FALSE(assembler.next().has_value());
  ASSERT_TRUE(assembler.error().has_value());
  EXPECT_EQ(assembler.error()->code, ErrorCode::kBadPayload);
}

TEST(Wire, FuzzRandomBytesNeverCrash) {
  std::mt19937_64 rng(0xF00DF00Dull);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> length(0, 96);
  for (int round = 0; round < 5000; ++round) {
    std::vector<std::uint8_t> blob(length(rng));
    for (auto& b : blob) b = static_cast<std::uint8_t>(byte(rng));
    // Must return SOMETHING typed for arbitrary input, both directions.
    (void)decode_request(blob.data(), blob.size());
    (void)decode_reply(blob.data(), blob.size());
  }
}

TEST(Wire, FuzzMutatedValidFramesNeverCrash) {
  AllocateRequest a;
  a.job_id = 1;
  a.num_gpus = 4;
  a.workload = "inception-v3";
  const auto pristine = encode(Request{99, a});

  std::mt19937_64 rng(0xBADC0DEull);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> pos(4, pristine.size() - 1);
  for (int round = 0; round < 5000; ++round) {
    auto frame = pristine;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      frame[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
    }
    DecodedRequest d = decode_request(frame.data() + 4, frame.size() - 4);
    if (const Request* ok = std::get_if<Request>(&d)) {
      // Mutations that survive decoding must still be internally sane.
      EXPECT_TRUE(std::holds_alternative<AllocateRequest>(ok->payload) ||
                  std::holds_alternative<ReleaseRequest>(ok->payload) ||
                  std::holds_alternative<QueryRequest>(ok->payload) ||
                  std::holds_alternative<StatsRequest>(ok->payload));
    }
  }
}

TEST(Wire, FuzzAssemblerOnChoppedStreams) {
  // Random frame sequences with random chunking (and occasional
  // corruption) through the assembler: every emitted frame decodes to
  // something typed; corruption at worst poisons the stream.
  std::mt19937_64 rng(0x5EEDull);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> stream;
    const int frames = 1 + static_cast<int>(rng() % 5);
    for (int f = 0; f < frames; ++f) {
      const auto frame =
          encode(Request{rng(), QueryRequest{static_cast<int>(rng() % 100)}});
      stream.insert(stream.end(), frame.begin(), frame.end());
    }
    if (rng() % 4 == 0 && !stream.empty()) {
      stream[rng() % stream.size()] = static_cast<std::uint8_t>(rng());
    }
    FrameAssembler assembler;
    std::size_t fed = 0;
    while (fed < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 13, stream.size() - fed);
      assembler.feed(stream.data() + fed, chunk);
      fed += chunk;
      while (auto frame = assembler.next()) {
        (void)decode_request(frame->data(), frame->size());
      }
    }
  }
}

}  // namespace
}  // namespace mapa::svc
