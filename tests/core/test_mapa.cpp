#include "core/mapa.hpp"

#include <gtest/gtest.h>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"

namespace mapa::core {
namespace {

Mapa make_mapa(const std::string& policy = "preserve") {
  return Mapa(graph::dgx1_v100(), policy::make_policy(policy));
}

TEST(Mapa, ConstructionValidatesInputs) {
  EXPECT_THROW(Mapa(graph::dgx1_v100(), nullptr), std::invalid_argument);
  EXPECT_THROW(Mapa(graph::Graph(0), policy::make_policy("baseline")),
               std::invalid_argument);
}

TEST(Mapa, AllocateMarksBusy) {
  Mapa mapa = make_mapa();
  EXPECT_EQ(mapa.free_accelerators(), 8u);
  const auto a = mapa.allocate(graph::ring(3), true);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->gpus().size(), 3u);
  EXPECT_EQ(mapa.free_accelerators(), 5u);
  EXPECT_EQ(mapa.live_allocations(), 1u);
  for (const graph::VertexId v : a->gpus()) {
    EXPECT_TRUE(mapa.busy()[v]);
  }
}

TEST(Mapa, ReleaseReturnsAccelerators) {
  Mapa mapa = make_mapa();
  const auto a = mapa.allocate(graph::ring(4), true);
  ASSERT_TRUE(a.has_value());
  mapa.release(*a);
  EXPECT_EQ(mapa.free_accelerators(), 8u);
  EXPECT_EQ(mapa.live_allocations(), 0u);
}

TEST(Mapa, DoubleReleaseThrows) {
  Mapa mapa = make_mapa();
  const auto a = mapa.allocate(graph::ring(2), true);
  mapa.release(*a);
  EXPECT_THROW(mapa.release(*a), std::invalid_argument);
  EXPECT_THROW(mapa.release(12345u), std::invalid_argument);
}

TEST(Mapa, AllocationsNeverOverlap) {
  Mapa mapa = make_mapa("greedy");
  std::vector<Allocation> allocations;
  for (int i = 0; i < 4; ++i) {
    const auto a = mapa.allocate(graph::ring(2), true);
    ASSERT_TRUE(a.has_value());
    allocations.push_back(*a);
  }
  std::set<graph::VertexId> used;
  for (const auto& a : allocations) {
    for (const graph::VertexId v : a.gpus()) {
      EXPECT_TRUE(used.insert(v).second);
    }
  }
  EXPECT_EQ(used.size(), 8u);
  EXPECT_FALSE(mapa.allocate(graph::ring(2), true).has_value());
}

TEST(Mapa, RefusesJobsLargerThanMachine) {
  Mapa mapa = make_mapa("baseline");
  EXPECT_FALSE(mapa.allocate(graph::ring(9), true).has_value());
}

TEST(Mapa, AllocationIdsAreUnique) {
  Mapa mapa = make_mapa();
  const auto a = mapa.allocate(graph::ring(2), true);
  const auto b = mapa.allocate(graph::ring(2), true);
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->id(), b->id());
}

TEST(Mapa, ReuseAfterReleaseReachesFullMachineAgain) {
  Mapa mapa = make_mapa("preserve");
  for (int round = 0; round < 3; ++round) {
    const auto a = mapa.allocate(graph::ring(5), true);
    const auto b = mapa.allocate(graph::ring(3), false);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(mapa.free_accelerators(), 0u);
    mapa.release(*a);
    mapa.release(*b);
    EXPECT_EQ(mapa.free_accelerators(), 8u);
  }
}

TEST(Mapa, ScoresExposedOnAllocation) {
  Mapa mapa = make_mapa("greedy");
  const auto a = mapa.allocate(graph::ring(3), true);
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->aggregated_bw(), 125.0);  // greedy finds the ideal
  EXPECT_GT(a->predicted_effbw(), 0.0);
  EXPECT_GT(a->preserved_bw(), 0.0);
}

TEST(Mapa, PolicyNameExposed) {
  EXPECT_EQ(make_mapa("topo-aware").policy_name(), "topo-aware");
}

}  // namespace
}  // namespace mapa::core
