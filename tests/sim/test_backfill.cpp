// Queue-reordering (backfill) tests — the paper notes MAPA "can employ
// reordering" on top of its FIFO scheduler; SimConfig.backfill enables a
// bounded-window variant.

#include <gtest/gtest.h>

#include <set>

#include "graph/topology.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace mapa::sim {
namespace {

workload::Job job_of(int id, const std::string& workload, std::size_t gpus) {
  workload::Job j;
  j.id = id;
  j.workload = workload;
  j.num_gpus = gpus;
  j.pattern = gpus <= 1 ? graph::PatternKind::kSingle
                        : graph::PatternKind::kRing;
  j.bandwidth_sensitive =
      workload::workload_by_name(workload).bandwidth_sensitive;
  return j;
}

// A 5-GPU job occupies most of the machine; an 8-GPU job blocks the FIFO
// head; a 2-GPU job behind it could run immediately.
std::vector<workload::Job> blocking_scenario() {
  return {job_of(1, "vgg-16", 5), job_of(2, "alexnet", 8),
          job_of(3, "gmm", 2)};
}

SimResult run(bool backfill, const std::vector<workload::Job>& jobs) {
  SimConfig config;
  config.backfill = backfill;
  Simulator simulator(graph::dgx1_v100(),
                      policy::make_policy("preserve"), config);
  return simulator.run(jobs);
}

TEST(Backfill, FifoBlocksBehindBigJob) {
  const auto result = run(false, blocking_scenario());
  // Job 3 cannot start before job 2 under strict FIFO, and job 2 waits
  // for job 1 to release its 5 GPUs.
  const JobRecord* j2 = result.find(2);
  const JobRecord* j3 = result.find(3);
  ASSERT_TRUE(j2 && j3);
  EXPECT_GE(j3->start_s, j2->start_s);
  EXPECT_GT(j3->start_s, 0.0);
}

TEST(Backfill, SmallJobJumpsTheBlockedHead) {
  const auto result = run(true, blocking_scenario());
  const JobRecord* j3 = result.find(3);
  ASSERT_NE(j3, nullptr);
  EXPECT_DOUBLE_EQ(j3->start_s, 0.0);  // started alongside job 1
}

TEST(Backfill, ImprovesMakespanInBlockedScenario) {
  const auto fifo = run(false, blocking_scenario());
  const auto backfill = run(true, blocking_scenario());
  EXPECT_LT(backfill.makespan_s, fifo.makespan_s);
}

TEST(Backfill, CompletesEveryJobExactlyOnce) {
  workload::GeneratorConfig config;
  config.num_jobs = 80;
  config.seed = 31;
  const auto jobs = workload::generate_jobs(config);
  const auto result = run(true, jobs);
  EXPECT_EQ(result.records.size(), jobs.size());
  std::set<int> ids;
  for (const auto& r : result.records) EXPECT_TRUE(ids.insert(r.job.id).second);
}

TEST(Backfill, MakespanStaysInFifoBallparkOnPaperMix) {
  workload::GeneratorConfig config;
  config.num_jobs = 100;
  config.seed = 33;
  const auto jobs = workload::generate_jobs(config);
  const auto fifo = run(false, jobs);
  const auto backfill = run(true, jobs);
  // Backfill reshuffles completion order; on a saturated mix it neither
  // collapses nor blows up the makespan (bounded both ways at 10%).
  EXPECT_LE(backfill.makespan_s, fifo.makespan_s * 1.10);
  EXPECT_GE(backfill.makespan_s, fifo.makespan_s * 0.90);
}

TEST(Backfill, WindowZeroDegeneratesToFifo) {
  SimConfig config;
  config.backfill = true;
  config.backfill_window = 0;
  Simulator simulator(graph::dgx1_v100(),
                      policy::make_policy("preserve"), config);
  const auto with_window0 = simulator.run(blocking_scenario());
  const auto fifo = run(false, blocking_scenario());
  ASSERT_EQ(with_window0.records.size(), fifo.records.size());
  for (std::size_t i = 0; i < fifo.records.size(); ++i) {
    EXPECT_EQ(with_window0.records[i].job.id, fifo.records[i].job.id);
    EXPECT_DOUBLE_EQ(with_window0.records[i].start_s,
                     fifo.records[i].start_s);
  }
}

TEST(Backfill, DeterministicAcrossRuns) {
  workload::GeneratorConfig config;
  config.num_jobs = 50;
  config.seed = 35;
  const auto jobs = workload::generate_jobs(config);
  const auto a = run(true, jobs);
  const auto b = run(true, jobs);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].job.id, b.records[i].job.id);
    EXPECT_DOUBLE_EQ(a.records[i].start_s, b.records[i].start_s);
  }
}

}  // namespace
}  // namespace mapa::sim
