// Queue-reordering (backfill) tests — the paper notes MAPA "can employ
// reordering" on top of its FIFO scheduler; SimConfig.backfill enables a
// bounded-window variant.

#include <gtest/gtest.h>

#include <set>

#include "graph/topology.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace mapa::sim {
namespace {

workload::Job job_of(int id, const std::string& workload, std::size_t gpus) {
  workload::Job j;
  j.id = id;
  j.workload = workload;
  j.num_gpus = gpus;
  j.pattern = gpus <= 1 ? graph::PatternKind::kSingle
                        : graph::PatternKind::kRing;
  j.bandwidth_sensitive =
      workload::workload_by_name(workload).bandwidth_sensitive;
  return j;
}

// A 5-GPU job occupies most of the machine; an 8-GPU job blocks the FIFO
// head; a 2-GPU job behind it could run immediately.
std::vector<workload::Job> blocking_scenario() {
  return {job_of(1, "vgg-16", 5), job_of(2, "alexnet", 8),
          job_of(3, "gmm", 2)};
}

SimResult run(bool backfill, const std::vector<workload::Job>& jobs) {
  SimConfig config;
  config.backfill = backfill;
  Simulator simulator(graph::dgx1_v100(),
                      policy::make_policy("preserve"), config);
  return simulator.run(jobs);
}

TEST(Backfill, FifoBlocksBehindBigJob) {
  const auto result = run(false, blocking_scenario());
  // Job 3 cannot start before job 2 under strict FIFO, and job 2 waits
  // for job 1 to release its 5 GPUs.
  const JobRecord* j2 = result.find(2);
  const JobRecord* j3 = result.find(3);
  ASSERT_TRUE(j2 && j3);
  EXPECT_GE(j3->start_s, j2->start_s);
  EXPECT_GT(j3->start_s, 0.0);
}

TEST(Backfill, SmallJobJumpsTheBlockedHead) {
  const auto result = run(true, blocking_scenario());
  const JobRecord* j3 = result.find(3);
  ASSERT_NE(j3, nullptr);
  EXPECT_DOUBLE_EQ(j3->start_s, 0.0);  // started alongside job 1
}

TEST(Backfill, ImprovesMakespanInBlockedScenario) {
  const auto fifo = run(false, blocking_scenario());
  const auto backfill = run(true, blocking_scenario());
  EXPECT_LT(backfill.makespan_s, fifo.makespan_s);
}

TEST(Backfill, CompletesEveryJobExactlyOnce) {
  workload::GeneratorConfig config;
  config.num_jobs = 80;
  config.seed = 31;
  const auto jobs = workload::generate_jobs(config);
  const auto result = run(true, jobs);
  EXPECT_EQ(result.records.size(), jobs.size());
  std::set<int> ids;
  for (const auto& r : result.records) EXPECT_TRUE(ids.insert(r.job.id).second);
}

TEST(Backfill, MakespanStaysInFifoBallparkOnPaperMix) {
  workload::GeneratorConfig config;
  config.num_jobs = 100;
  config.seed = 33;
  const auto jobs = workload::generate_jobs(config);
  const auto fifo = run(false, jobs);
  const auto backfill = run(true, jobs);
  // Backfill reshuffles completion order; on a saturated mix it neither
  // collapses nor blows up the makespan (bounded both ways at 10%).
  EXPECT_LE(backfill.makespan_s, fifo.makespan_s * 1.10);
  EXPECT_GE(backfill.makespan_s, fifo.makespan_s * 0.90);
}

// Window-exhaustion scenario: after the 5-GPU job occupies the machine,
// the 8-GPU head blocks, two 4-GPU jobs behind it also don't fit in the 3
// free GPUs, and the first job that *would* fit (2 GPUs) sits at queue
// position 3 behind the head — reachable only when backfill_window >= 3.
std::vector<workload::Job> window_scenario() {
  return {job_of(1, "vgg-16", 5), job_of(2, "alexnet", 8),
          job_of(3, "resnet-50", 4), job_of(4, "gmm", 4),
          job_of(5, "jacobi", 2)};
}

SimResult run_windowed(std::size_t window,
                       const std::vector<workload::Job>& jobs) {
  SimConfig config;
  config.backfill = true;
  config.backfill_window = window;
  Simulator simulator(graph::dgx1_v100(),
                      policy::make_policy("preserve"), config);
  return simulator.run(jobs);
}

TEST(Backfill, WindowExhaustedLeavesLaterFitBlocked) {
  // Window 2 scans only the head plus jobs 3 and 4; the fitting job 5 is
  // beyond the window, so head-of-line blocking persists exactly as FIFO.
  const auto result = run_windowed(2, window_scenario());
  const JobRecord* j5 = result.find(5);
  ASSERT_NE(j5, nullptr);
  EXPECT_GT(j5->start_s, 0.0);
}

TEST(Backfill, WindowJustLargeEnoughReachesTheFit) {
  const auto result = run_windowed(3, window_scenario());
  const JobRecord* j5 = result.find(5);
  ASSERT_NE(j5, nullptr);
  EXPECT_DOUBLE_EQ(j5->start_s, 0.0);  // ran alongside job 1
}

TEST(Backfill, ExhaustedWindowMatchesFifoSchedule) {
  // When nothing inside the window fits, the backfilled schedule must be
  // indistinguishable from plain FIFO — the scan may not reorder anything.
  const auto windowed = run_windowed(2, window_scenario());
  const auto fifo = run(false, window_scenario());
  ASSERT_EQ(windowed.records.size(), fifo.records.size());
  for (std::size_t i = 0; i < fifo.records.size(); ++i) {
    EXPECT_EQ(windowed.records[i].job.id, fifo.records[i].job.id);
    EXPECT_DOUBLE_EQ(windowed.records[i].start_s, fifo.records[i].start_s);
    EXPECT_DOUBLE_EQ(windowed.records[i].finish_s, fifo.records[i].finish_s);
  }
}

TEST(Backfill, HeadOfLineRunsFirstWheneverItFits) {
  // Backfill must never punish a head that fits: with the whole machine
  // free the head starts immediately even when later jobs score better.
  const auto result = run(true, {job_of(1, "alexnet", 8), job_of(2, "gmm", 2),
                                 job_of(3, "jacobi", 2)});
  const JobRecord* j1 = result.find(1);
  ASSERT_NE(j1, nullptr);
  EXPECT_DOUBLE_EQ(j1->start_s, 0.0);
  EXPECT_EQ(result.records.front().job.id, 1);
}

TEST(Backfill, WindowZeroDegeneratesToFifo) {
  SimConfig config;
  config.backfill = true;
  config.backfill_window = 0;
  Simulator simulator(graph::dgx1_v100(),
                      policy::make_policy("preserve"), config);
  const auto with_window0 = simulator.run(blocking_scenario());
  const auto fifo = run(false, blocking_scenario());
  ASSERT_EQ(with_window0.records.size(), fifo.records.size());
  for (std::size_t i = 0; i < fifo.records.size(); ++i) {
    EXPECT_EQ(with_window0.records[i].job.id, fifo.records[i].job.id);
    EXPECT_DOUBLE_EQ(with_window0.records[i].start_s,
                     fifo.records[i].start_s);
  }
}

TEST(Backfill, DeterministicAcrossRuns) {
  workload::GeneratorConfig config;
  config.num_jobs = 50;
  config.seed = 35;
  const auto jobs = workload::generate_jobs(config);
  const auto a = run(true, jobs);
  const auto b = run(true, jobs);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].job.id, b.records[i].job.id);
    EXPECT_DOUBLE_EQ(a.records[i].start_s, b.records[i].start_s);
  }
}

}  // namespace
}  // namespace mapa::sim
