#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"
#include "sim/logger.hpp"
#include "workload/generator.hpp"

namespace mapa::sim {
namespace {

SimResult small_run(const std::string& policy, std::size_t jobs = 60,
                    std::uint64_t seed = 42) {
  workload::GeneratorConfig config;
  config.num_jobs = jobs;
  config.seed = seed;
  return run_simulation(graph::dgx1_v100(), policy,
                        workload::generate_jobs(config));
}

TEST(Metrics, PerWorkloadPlotsCoverWorkloads) {
  const auto result = small_run("preserve");
  const auto plots = per_workload_box_plots(result, RecordField::kExecTime);
  EXPECT_GE(plots.size(), 5u);  // 60 uniform draws hit most of 9 workloads
  for (const auto& [name, bp] : plots) {
    EXPECT_GT(bp.count, 0u) << name;
    EXPECT_LE(bp.min, bp.median) << name;
    EXPECT_LE(bp.median, bp.max) << name;
  }
}

TEST(Metrics, SensitiveFilterSplitsRecords) {
  const auto result = small_run("preserve");
  const auto sensitive =
      per_workload_box_plots(result, RecordField::kExecTime, true);
  const auto insensitive =
      per_workload_box_plots(result, RecordField::kExecTime, false);
  for (const auto& [name, bp] : sensitive) {
    EXPECT_TRUE(workload::workload_by_name(name).bandwidth_sensitive);
  }
  for (const auto& [name, bp] : insensitive) {
    EXPECT_FALSE(workload::workload_by_name(name).bandwidth_sensitive);
  }
}

TEST(Metrics, BandwidthFieldsExcludeSingleGpuJobs) {
  const auto result = small_run("preserve");
  std::size_t multi = 0;
  for (const auto& r : result.records) {
    if (r.job.num_gpus >= 2) ++multi;
  }
  std::size_t counted = 0;
  for (const auto& [name, bp] :
       per_workload_box_plots(result, RecordField::kPredictedEffBw)) {
    counted += bp.count;
  }
  EXPECT_EQ(counted, multi);
}

TEST(Metrics, PooledPlotAggregates) {
  const auto result = small_run("greedy");
  const auto pooled = pooled_box_plot(result, RecordField::kExecTime);
  EXPECT_EQ(pooled.count, result.records.size());
}

TEST(Metrics, PooledPlotEmptyFilterThrows) {
  const auto result = run_simulation(
      graph::dgx1_v100(), "baseline",
      {[]{
        workload::Job j;
        j.id = 1;
        j.workload = "gmm";
        j.num_gpus = 1;
        j.pattern = graph::PatternKind::kSingle;
        j.bandwidth_sensitive = false;
        return j;
      }()});
  EXPECT_THROW(pooled_box_plot(result, RecordField::kPredictedEffBw),
               std::invalid_argument);
}

TEST(Metrics, RecordValueDispatch) {
  JobRecord r;
  r.exec_s = 1.0;
  r.predicted_effbw = 2.0;
  r.measured_effbw = 3.0;
  r.aggregated_bw = 4.0;
  EXPECT_DOUBLE_EQ(record_value(r, RecordField::kExecTime), 1.0);
  EXPECT_DOUBLE_EQ(record_value(r, RecordField::kPredictedEffBw), 2.0);
  EXPECT_DOUBLE_EQ(record_value(r, RecordField::kMeasuredEffBw), 3.0);
  EXPECT_DOUBLE_EQ(record_value(r, RecordField::kAggregatedBw), 4.0);
}

TEST(Metrics, SpeedupAgainstSelfIsUnity) {
  const auto result = small_run("preserve");
  const auto summary = speedup_summary(result, result);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.median, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 1.0);
  EXPECT_DOUBLE_EQ(summary.throughput, 1.0);
}

TEST(Metrics, SpeedupSummaryOrdersQuartiles) {
  const auto baseline = small_run("baseline");
  const auto preserve = small_run("preserve");
  const auto summary = speedup_summary(baseline, preserve);
  EXPECT_LE(summary.min, summary.q25);
  EXPECT_LE(summary.q25, summary.median);
  EXPECT_LE(summary.median, summary.q75);
  EXPECT_LE(summary.q75, summary.max);
  EXPECT_EQ(summary.policy, "preserve");
}

TEST(Metrics, SpeedupRequiresMatchingJobs) {
  const auto a = small_run("baseline", 10, 1);
  const auto b = small_run("preserve", 10, 2);  // different job ids/mix
  // Seeds differ but ids 1..10 exist in both, so this should not throw;
  // construct a genuinely mismatched run instead.
  const auto tiny = run_simulation(
      graph::dgx1_v100(), "baseline",
      {[]{
        workload::Job j;
        j.id = 999;
        j.workload = "gmm";
        j.num_gpus = 2;
        j.bandwidth_sensitive = false;
        return j;
      }()});
  EXPECT_THROW(speedup_summary(a, tiny), std::invalid_argument);
  (void)b;
}

TEST(Logger, PaperStyleLogText) {
  const auto result = small_run("preserve", 10);
  const std::string text = to_log_text(result);
  EXPECT_NE(text.find("ID, Allocation, Topology, Effective BW"),
            std::string::npos);
  EXPECT_NE(text.find("("), std::string::npos);
}

TEST(Logger, CsvHasHeaderAndOneRowPerJob) {
  const auto result = small_run("preserve", 12);
  const std::string csv = to_csv(result);
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 13);  // header + 12 rows
  EXPECT_NE(csv.find("predicted_effbw"), std::string::npos);
}

}  // namespace
}  // namespace mapa::sim
