#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/topology.hpp"
#include "workload/generator.hpp"

namespace mapa::sim {
namespace {

workload::Job make_job(int id, const std::string& workload,
                       std::size_t gpus, double arrival = 0.0) {
  workload::Job job;
  job.id = id;
  job.workload = workload;
  job.num_gpus = gpus;
  job.pattern = gpus <= 1 ? graph::PatternKind::kSingle
                          : graph::PatternKind::kRing;
  job.bandwidth_sensitive =
      workload::workload_by_name(workload).bandwidth_sensitive;
  job.arrival_time_s = arrival;
  return job;
}

TEST(Simulator, RunsSingleJob) {
  const auto result = run_simulation(graph::dgx1_v100(), "preserve",
                                     {make_job(1, "vgg-16", 3)});
  ASSERT_EQ(result.records.size(), 1u);
  const JobRecord& r = result.records[0];
  EXPECT_EQ(r.job.id, 1);
  EXPECT_EQ(r.gpus.size(), 3u);
  EXPECT_GT(r.exec_s, 0.0);
  EXPECT_DOUBLE_EQ(r.start_s, 0.0);
  EXPECT_DOUBLE_EQ(r.finish_s, r.exec_s);
  EXPECT_DOUBLE_EQ(result.makespan_s, r.exec_s);
}

TEST(Simulator, AllJobsComplete) {
  workload::GeneratorConfig config;
  config.num_jobs = 60;
  const auto jobs = workload::generate_jobs(config);
  const auto result = run_simulation(graph::dgx1_v100(), "preserve", jobs);
  EXPECT_EQ(result.records.size(), jobs.size());
  std::set<int> ids;
  for (const auto& r : result.records) ids.insert(r.job.id);
  EXPECT_EQ(ids.size(), jobs.size());
}

TEST(Simulator, ConcurrentJobsNeverShareGpus) {
  workload::GeneratorConfig config;
  config.num_jobs = 80;
  config.seed = 9;
  const auto jobs = workload::generate_jobs(config);
  const auto result = run_simulation(graph::dgx1_v100(), "greedy", jobs);
  // Overlap check: for every pair of time-overlapping records, GPU sets
  // must be disjoint.
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    for (std::size_t j = i + 1; j < result.records.size(); ++j) {
      const auto& a = result.records[i];
      const auto& b = result.records[j];
      const bool overlap =
          a.start_s < b.finish_s && b.start_s < a.finish_s;
      if (!overlap) continue;
      for (const auto va : a.gpus) {
        for (const auto vb : b.gpus) {
          EXPECT_NE(va, vb) << "jobs " << a.job.id << " and " << b.job.id;
        }
      }
    }
  }
}

TEST(Simulator, FifoOrderPreservedForStarts) {
  workload::GeneratorConfig config;
  config.num_jobs = 40;
  const auto jobs = workload::generate_jobs(config);
  const auto result = run_simulation(graph::dgx1_v100(), "baseline", jobs);
  // Start times must be non-decreasing in job id (FIFO, all arrive at 0).
  std::map<int, double> starts;
  for (const auto& r : result.records) starts[r.job.id] = r.start_s;
  double previous = -1.0;
  for (const auto& [id, start] : starts) {
    EXPECT_GE(start, previous - 1e-9) << "job " << id;
    previous = start;
  }
}

TEST(Simulator, ArrivalsDelayStart) {
  const auto result = run_simulation(
      graph::dgx1_v100(), "preserve",
      {make_job(1, "gmm", 2, 0.0), make_job(2, "vgg-16", 2, 1000.0)});
  const JobRecord* late = result.find(2);
  ASSERT_NE(late, nullptr);
  EXPECT_GE(late->start_s, 1000.0);
}

TEST(Simulator, ExecTimeTracksAllocationQuality) {
  // Two VGG jobs on a machine with room for only one good allocation:
  // the one with higher measured EffBW must finish no slower per unit.
  const auto result = run_simulation(graph::dgx1_v100(), "baseline",
                                     {make_job(1, "vgg-16", 2),
                                      make_job(2, "vgg-16", 2),
                                      make_job(3, "vgg-16", 2)});
  for (const auto& a : result.records) {
    for (const auto& b : result.records) {
      if (a.measured_effbw > b.measured_effbw) {
        EXPECT_LE(a.exec_s, b.exec_s);
      }
    }
  }
}

TEST(Simulator, SingleGpuJobsHaveZeroBandwidthButRun) {
  const auto result =
      run_simulation(graph::dgx1_v100(), "preserve", {make_job(1, "gmm", 1)});
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_DOUBLE_EQ(result.records[0].measured_effbw, 0.0);
  EXPECT_GT(result.records[0].exec_s, 0.0);
}

TEST(Simulator, OversizedJobRejected) {
  EXPECT_THROW(run_simulation(graph::dgx1_v100(), "preserve",
                              {make_job(1, "vgg-16", 9)}),
               std::invalid_argument);
}

TEST(Simulator, EmptyJobListYieldsEmptyResult) {
  const auto result = run_simulation(graph::dgx1_v100(), "preserve", {});
  EXPECT_TRUE(result.records.empty());
  EXPECT_DOUBLE_EQ(result.makespan_s, 0.0);
  EXPECT_DOUBLE_EQ(result.throughput_jobs_per_hour(), 0.0);
}

TEST(Simulator, DeterministicAcrossRuns) {
  workload::GeneratorConfig config;
  config.num_jobs = 50;
  const auto jobs = workload::generate_jobs(config);
  const auto a = run_simulation(graph::dgx1_v100(), "preserve", jobs);
  const auto b = run_simulation(graph::dgx1_v100(), "preserve", jobs);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].job.id, b.records[i].job.id);
    EXPECT_EQ(a.records[i].gpus, b.records[i].gpus);
    EXPECT_DOUBLE_EQ(a.records[i].exec_s, b.records[i].exec_s);
  }
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(Simulator, PredictedEffBwModeChangesExecTimes) {
  SimConfig measured;
  SimConfig predicted;
  predicted.exec_uses_measured_effbw = false;
  const auto jobs = std::vector<workload::Job>{make_job(1, "vgg-16", 3)};
  const auto a =
      run_simulation(graph::dgx1_v100(), "preserve", jobs, {}, measured);
  const auto b =
      run_simulation(graph::dgx1_v100(), "preserve", jobs, {}, predicted);
  // Both run; the ablation generally shifts execution time slightly.
  EXPECT_GT(a.records[0].exec_s, 0.0);
  EXPECT_GT(b.records[0].exec_s, 0.0);
}

TEST(Simulator, ThroughputPositiveForNonTrivialRuns) {
  workload::GeneratorConfig config;
  config.num_jobs = 30;
  const auto jobs = workload::generate_jobs(config);
  const auto result = run_simulation(graph::dgx1_v100(), "baseline", jobs);
  EXPECT_GT(result.throughput_jobs_per_hour(), 0.0);
  EXPECT_GT(result.makespan_s, 0.0);
}

TEST(Simulator, RecordsCarrySchedulingOverhead) {
  const auto result = run_simulation(graph::dgx1_v100(), "preserve",
                                     {make_job(1, "vgg-16", 4)});
  EXPECT_GE(result.records[0].scheduling_overhead_ms, 0.0);
  EXPECT_GE(result.total_scheduling_ms,
            result.records[0].scheduling_overhead_ms);
}

TEST(Simulator, FindLocatesRecords) {
  const auto result = run_simulation(graph::dgx1_v100(), "preserve",
                                     {make_job(7, "gmm", 2)});
  EXPECT_NE(result.find(7), nullptr);
  EXPECT_EQ(result.find(8), nullptr);
}

TEST(Simulator, TopologyAndPolicyRecorded) {
  const auto result = run_simulation(graph::torus2d_16(), "greedy",
                                     {make_job(1, "vgg-16", 2)});
  EXPECT_EQ(result.policy, "greedy");
  EXPECT_EQ(result.topology, "Torus-2d");
}

}  // namespace
}  // namespace mapa::sim
