#include "mig/mig.hpp"

#include <gtest/gtest.h>

#include "core/mapa.hpp"
#include "graph/patterns.hpp"
#include "graph/topology.hpp"

namespace mapa::mig {
namespace {

using graph::VertexId;

TEST(Mig, UniformExpansionCounts) {
  const auto expansion = expand_mig_uniform(graph::dgx1_v100(), 2);
  EXPECT_EQ(expansion.virtual_graph.num_vertices(), 16u);
  EXPECT_EQ(expansion.physical_of.size(), 16u);
  // Instances 2v and 2v+1 belong to physical GPU v.
  for (VertexId v = 0; v < 16; ++v) {
    EXPECT_EQ(expansion.physical_of[v], v / 2);
    EXPECT_EQ(expansion.instance_of[v], v % 2);
  }
}

TEST(Mig, HeterogeneousExpansion) {
  graph::Graph physical(3);
  physical.add_edge(0, 1, interconnect::LinkType::kNvLink2Double);
  physical.add_edge(1, 2, interconnect::LinkType::kPcie);
  const std::vector<int> counts = {1, 3, 2};
  const auto expansion = expand_mig(physical, counts);
  EXPECT_EQ(expansion.virtual_graph.num_vertices(), 6u);
  EXPECT_EQ(expansion.instances_of(0).size(), 1u);
  EXPECT_EQ(expansion.instances_of(1).size(), 3u);
  EXPECT_EQ(expansion.instances_of(2).size(), 2u);
}

TEST(Mig, IntraGpuFabricIsFastest) {
  const auto expansion = expand_mig_uniform(graph::dgx1_v100(), 2);
  const auto& vg = expansion.virtual_graph;
  // Instances 0 and 1 share physical GPU 0.
  EXPECT_EQ(vg.edge_type(0, 1), interconnect::LinkType::kNvSwitch);
  EXPECT_DOUBLE_EQ(vg.edge_bandwidth(0, 1), 200.0);
  for (const auto& e : vg.edges()) {
    if (expansion.physical_of[e.u] != expansion.physical_of[e.v]) {
      EXPECT_LT(e.bandwidth_gbps, vg.edge_bandwidth(0, 1));
    }
  }
}

TEST(Mig, SharedInterGpuBandwidthSplitsEvenly) {
  graph::Graph physical(2);
  physical.add_edge(0, 1, interconnect::LinkType::kNvLink2Double);  // 50
  const auto shared = expand_mig_uniform(physical, 2);
  // 2x2 instance pairs share the 50 GB/s link: 12.5 each.
  EXPECT_DOUBLE_EQ(shared.virtual_graph.edge_bandwidth(0, 2), 12.5);

  MigOptions options;
  options.share_inter_gpu_bandwidth = false;
  const auto unshared = expand_mig_uniform(physical, 2, options);
  EXPECT_DOUBLE_EQ(unshared.virtual_graph.edge_bandwidth(0, 2), 50.0);
}

TEST(Mig, SocketLabelsInherited) {
  const auto expansion = expand_mig_uniform(graph::dgx1_v100(), 2);
  for (VertexId v = 0; v < 16; ++v) {
    EXPECT_EQ(expansion.virtual_graph.socket(v),
              expansion.physical_of[v] < 4 ? 0 : 1);
  }
}

TEST(Mig, SingleInstancePreservesStructure) {
  const graph::Graph physical = graph::dgx1_v100();
  const auto expansion = expand_mig_uniform(physical, 1);
  EXPECT_EQ(expansion.virtual_graph.num_vertices(), 8u);
  EXPECT_EQ(expansion.virtual_graph.num_edges(), physical.num_edges());
  for (const auto& e : physical.edges()) {
    EXPECT_DOUBLE_EQ(expansion.virtual_graph.edge_bandwidth(e.u, e.v),
                     e.bandwidth_gbps);
  }
}

TEST(Mig, InvalidInstanceCountsRejected) {
  const graph::Graph physical(2);
  EXPECT_THROW(expand_mig(physical, std::vector<int>{1}),
               std::invalid_argument);
  EXPECT_THROW(expand_mig(physical, std::vector<int>{0, 1}),
               std::invalid_argument);
  EXPECT_THROW(expand_mig(physical, std::vector<int>{8, 1}),
               std::invalid_argument);
}

TEST(Mig, PhysicalFootprint) {
  const auto expansion = expand_mig_uniform(graph::dgx1_v100(), 2);
  const std::vector<VertexId> alloc = {0, 1, 5};
  EXPECT_EQ(expansion.physical_footprint(alloc),
            (std::vector<VertexId>{0, 2}));
  const std::vector<VertexId> bad = {99};
  EXPECT_THROW(expansion.physical_footprint(bad), std::out_of_range);
}

TEST(Mig, ManyToOneMappingThroughUnmodifiedMapa) {
  // The paper's suggestion end to end: two 2-GPU jobs share one DGX-V
  // quad's physical GPUs when each GPU is split into two instances.
  const auto expansion = expand_mig_uniform(graph::dgx1_v100(), 2);
  core::Mapa mapa(expansion.virtual_graph,
                  policy::make_policy("preserve"));
  const auto job1 = mapa.allocate(graph::ring(2), true);
  const auto job2 = mapa.allocate(graph::ring(2), true);
  ASSERT_TRUE(job1 && job2);
  // Preserve picks the on-die fabric pair (fastest link class), so each
  // job occupies both instances of a single physical GPU.
  EXPECT_EQ(expansion.physical_footprint(job1->gpus()).size(), 1u);
  EXPECT_EQ(expansion.physical_footprint(job2->gpus()).size(), 1u);
  EXPECT_NE(expansion.physical_footprint(job1->gpus()),
            expansion.physical_footprint(job2->gpus()));
  // 16 virtual devices support many more small jobs than 8 physical ones:
  // the two 2-GPU jobs hold 4 instances, so 12 more 1-GPU jobs fit.
  std::size_t placed = 2;
  while (mapa.allocate(graph::single_gpu(), false)) ++placed;
  EXPECT_EQ(placed, 14u);
  EXPECT_EQ(mapa.free_accelerators(), 0u);
}

}  // namespace
}  // namespace mapa::mig
