#include "workload/exec_model.hpp"

#include <gtest/gtest.h>

#include "score/effbw_model.hpp"

namespace mapa::workload {
namespace {

TEST(ExecModel, CalibrationPointsAreExact) {
  // By construction: T(2, B_double) == ref and T(2, B_pcie) == ref * s.
  for (const auto& w : all_workloads()) {
    const ExecModel model(w);
    EXPECT_NEAR(model.exec_time_s(2, ExecModel::reference_double_nvlink_bw()),
                w.ref_exec_time_s, 1e-9)
        << w.name;
    EXPECT_NEAR(model.exec_time_s(2, ExecModel::reference_pcie_bw()),
                w.ref_exec_time_s * w.pcie_slowdown, 1e-9)
        << w.name;
  }
}

TEST(ExecModel, ReferenceBandwidthsComeFromEq2) {
  EXPECT_DOUBLE_EQ(ExecModel::reference_double_nvlink_bw(),
                   score::predict_effective_bandwidth(
                       score::LinkCensus{.doubles = 1}));
  EXPECT_DOUBLE_EQ(ExecModel::reference_pcie_bw(),
                   score::predict_effective_bandwidth(
                       score::LinkCensus{.pcie = 1}));
  EXPECT_GT(ExecModel::reference_double_nvlink_bw(),
            ExecModel::reference_pcie_bw());
}

TEST(ExecModel, MoreBandwidthNeverSlower) {
  const ExecModel model(workload_by_name("vgg-16"));
  double previous = 1e18;
  for (const double bw : {5.0, 10.0, 20.0, 40.0, 60.0, 80.0}) {
    const double t = model.exec_time_s(3, bw);
    EXPECT_LT(t, previous);
    previous = t;
  }
}

TEST(ExecModel, InsensitiveWorkloadsBarelyMove) {
  const ExecModel model(workload_by_name("googlenet"));
  const double fast = model.exec_time_s(4, 60.0);
  const double slow = model.exec_time_s(4, 10.0);
  EXPECT_LT(slow / fast, 1.25);
}

TEST(ExecModel, SensitiveWorkloadsMoveALot) {
  const ExecModel model(workload_by_name("vgg-16"));
  const double fast = model.exec_time_s(4, 60.0);
  const double slow = model.exec_time_s(4, 10.0);
  EXPECT_GT(slow / fast, 2.0);
}

TEST(ExecModel, SingleGpuIgnoresBandwidth) {
  const ExecModel model(workload_by_name("vgg-16"));
  EXPECT_DOUBLE_EQ(model.exec_time_s(1, 5.0), model.exec_time_s(1, 500.0));
  EXPECT_DOUBLE_EQ(model.exec_time_s(1, 5.0), model.compute_seconds());
}

TEST(ExecModel, FourGpusSlowerThanTwoOnSameLink) {
  // Fig. 6: with the same link class, the 4-GPU curve sits above the
  // 2-GPU curve (1.5x the ring traffic).
  const ExecModel model(workload_by_name("vgg-16"));
  const double bw = 20.0;
  EXPECT_GT(model.exec_time_s(4, bw), model.exec_time_s(2, bw));
}

TEST(ExecModel, IterScaleIsLinear) {
  const ExecModel model(workload_by_name("alexnet"));
  const double t1 = model.exec_time_s(3, 30.0, 1.0);
  const double t2 = model.exec_time_s(3, 30.0, 2.0);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
  EXPECT_DOUBLE_EQ(model.exec_time_s(3, 30.0, 0.0), 0.0);
}

TEST(ExecModel, SpeedupVsPcieMatchesCalibration) {
  const auto& vgg = workload_by_name("vgg-16");
  const ExecModel model(vgg);
  EXPECT_NEAR(
      model.speedup_vs_pcie(2, ExecModel::reference_double_nvlink_bw()),
      vgg.pcie_slowdown, 1e-9);
  EXPECT_NEAR(model.speedup_vs_pcie(2, ExecModel::reference_pcie_bw()), 1.0,
              1e-9);
}

TEST(ExecModel, BandwidthFloorPreventsBlowup) {
  const ExecModel model(workload_by_name("vgg-16"));
  EXPECT_DOUBLE_EQ(model.exec_time_s(4, 0.0), model.exec_time_s(4, 1e-9));
  EXPECT_LT(model.exec_time_s(4, 0.0), 1e6);
}

TEST(ExecModel, InvalidInputsRejected) {
  const ExecModel model(workload_by_name("vgg-16"));
  EXPECT_THROW(model.exec_time_s(0, 10.0), std::invalid_argument);
  EXPECT_THROW(model.exec_time_s(2, 10.0, -1.0), std::invalid_argument);

  WorkloadProfile bad = workload_by_name("vgg-16");
  bad.ref_exec_time_s = -1.0;
  EXPECT_THROW(ExecModel{bad}, std::invalid_argument);
  bad = workload_by_name("vgg-16");
  bad.pcie_slowdown = 0.5;
  EXPECT_THROW(ExecModel{bad}, std::invalid_argument);
}

TEST(ExecModel, CommVolumeScalesWithSlowdown) {
  const ExecModel vgg(workload_by_name("vgg-16"));
  const ExecModel googlenet(workload_by_name("googlenet"));
  EXPECT_GT(vgg.comm_volume_gb(), googlenet.comm_volume_gb());
  EXPECT_GE(googlenet.comm_volume_gb(), 0.0);
}

}  // namespace
}  // namespace mapa::workload
