#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/generator.hpp"
#include "workload/jobfile.hpp"

namespace mapa::workload {
namespace {

TEST(Generator, ProducesRequestedCount) {
  GeneratorConfig config;
  config.num_jobs = 300;
  const auto jobs = generate_jobs(config);
  EXPECT_EQ(jobs.size(), 300u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<int>(i) + 1);
  }
}

TEST(Generator, GpuCountsWithinRangeAndAllPresent) {
  GeneratorConfig config;
  config.num_jobs = 500;
  const auto jobs = generate_jobs(config);
  std::set<std::size_t> sizes;
  for (const auto& j : jobs) {
    EXPECT_GE(j.num_gpus, 1u);
    EXPECT_LE(j.num_gpus, 5u);
    sizes.insert(j.num_gpus);
  }
  EXPECT_EQ(sizes.size(), 5u);  // uniform 1..5 hits every size in 500 draws
}

TEST(Generator, GpuDistributionRoughlyUniform) {
  GeneratorConfig config;
  config.num_jobs = 5000;
  const auto jobs = generate_jobs(config);
  std::map<std::size_t, int> counts;
  for (const auto& j : jobs) ++counts[j.num_gpus];
  for (const auto& [gpus, count] : counts) {
    EXPECT_NEAR(count, 1000, 120) << gpus << " GPUs";
  }
}

TEST(Generator, UniformWorkloadMix) {
  GeneratorConfig config;
  config.num_jobs = 9000;
  const auto jobs = generate_jobs(config);
  std::map<std::string, int> counts;
  for (const auto& j : jobs) ++counts[j.workload];
  EXPECT_EQ(counts.size(), all_workloads().size());
  for (const auto& [name, count] : counts) {
    EXPECT_NEAR(count, 1000, 150) << name;
  }
}

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig config;
  config.num_jobs = 50;
  const auto a = generate_jobs(config);
  const auto b = generate_jobs(config);
  EXPECT_EQ(a, b);
  config.seed = 43;
  const auto c = generate_jobs(config);
  EXPECT_NE(a, c);
}

TEST(Generator, SensitivityInheritedFromProfile) {
  GeneratorConfig config;
  config.num_jobs = 200;
  for (const auto& j : generate_jobs(config)) {
    EXPECT_EQ(j.bandwidth_sensitive,
              workload_by_name(j.workload).bandwidth_sensitive);
  }
}

TEST(Generator, SingleGpuJobsUseSinglePattern) {
  GeneratorConfig config;
  config.num_jobs = 200;
  for (const auto& j : generate_jobs(config)) {
    if (j.num_gpus == 1) {
      EXPECT_EQ(j.pattern, graph::PatternKind::kSingle);
    }
  }
}

TEST(Generator, RestrictedMixHonored) {
  GeneratorConfig config;
  config.num_jobs = 60;
  config.workload_names = {"vgg-16", "googlenet"};
  for (const auto& j : generate_jobs(config)) {
    EXPECT_TRUE(j.workload == "vgg-16" || j.workload == "googlenet");
  }
}

TEST(Generator, PoissonArrivalsAreMonotone) {
  GeneratorConfig config;
  config.num_jobs = 100;
  config.mean_interarrival_s = 10.0;
  const auto jobs = generate_jobs(config);
  double previous = 0.0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.arrival_time_s, previous);
    previous = j.arrival_time_s;
  }
  EXPECT_GT(jobs.back().arrival_time_s, 0.0);
}

TEST(Generator, InvalidConfigRejected) {
  GeneratorConfig config;
  config.num_jobs = 0;
  EXPECT_THROW(generate_jobs(config), std::invalid_argument);
  config.num_jobs = 10;
  config.min_gpus = 5;
  config.max_gpus = 2;
  EXPECT_THROW(generate_jobs(config), std::invalid_argument);
  config.min_gpus = 0;
  config.max_gpus = 2;
  EXPECT_THROW(generate_jobs(config), std::invalid_argument);
}

TEST(Job, ApplicationGraphShapes) {
  Job job;
  job.workload = "vgg-16";
  job.num_gpus = 4;
  job.pattern = graph::PatternKind::kRing;
  EXPECT_EQ(job.application_graph().num_edges(), 4u);
  job.num_gpus = 1;
  EXPECT_EQ(job.application_graph().num_vertices(), 1u);
  EXPECT_EQ(job.application_graph().num_edges(), 0u);
}

TEST(Job, ProfileLookup) {
  Job job;
  job.workload = "gmm";
  EXPECT_EQ(job.profile().name, "gmm");
  job.workload = "unknown";
  EXPECT_THROW(job.profile(), std::invalid_argument);
}

TEST(JobFile, RoundTrip) {
  GeneratorConfig config;
  config.num_jobs = 40;
  config.mean_interarrival_s = 5.0;
  const auto jobs = generate_jobs(config);
  const auto reparsed = parse_job_file_string(serialize_job_file(jobs));
  ASSERT_EQ(reparsed.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(reparsed[i].id, jobs[i].id);
    EXPECT_EQ(reparsed[i].workload, jobs[i].workload);
    EXPECT_EQ(reparsed[i].num_gpus, jobs[i].num_gpus);
    EXPECT_EQ(reparsed[i].pattern, jobs[i].pattern);
    EXPECT_EQ(reparsed[i].bandwidth_sensitive, jobs[i].bandwidth_sensitive);
    EXPECT_NEAR(reparsed[i].arrival_time_s, jobs[i].arrival_time_s, 1e-6);
  }
}

TEST(JobFile, ParsesMinimalRow) {
  const auto jobs = parse_job_file_string("1, vgg-16, 3, Ring, true\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].workload, "vgg-16");
  EXPECT_EQ(jobs[0].num_gpus, 3u);
  EXPECT_TRUE(jobs[0].bandwidth_sensitive);
  EXPECT_DOUBLE_EQ(jobs[0].arrival_time_s, 0.0);
}

TEST(JobFile, SkipsCommentsAndBlanks) {
  const auto jobs = parse_job_file_string(
      "# header\n\n1, gmm, 2, Star, false\n  \n# trailing\n");
  EXPECT_EQ(jobs.size(), 1u);
}

TEST(JobFile, ErrorsCarryLineNumbers) {
  try {
    parse_job_file_string("1, vgg-16, 3, Ring, true\n2, bogus, 1, Ring, no\n");
    FAIL() << "expected error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JobFile, RejectsMalformedRows) {
  EXPECT_THROW(parse_job_file_string("1, vgg-16, 3\n"), std::runtime_error);
  EXPECT_THROW(parse_job_file_string("x, vgg-16, 3, Ring, true\n"),
               std::runtime_error);
  EXPECT_THROW(parse_job_file_string("1, vgg-16, 0, Ring, true\n"),
               std::runtime_error);
  EXPECT_THROW(parse_job_file_string("1, vgg-16, 3, Blob, true\n"),
               std::runtime_error);
  EXPECT_THROW(parse_job_file_string("1, vgg-16, 3, Ring, maybe\n"),
               std::runtime_error);
  EXPECT_THROW(parse_job_file_string("1, vgg-16, 3, Ring, true, -5\n"),
               std::runtime_error);
  EXPECT_THROW(parse_job_file_string("1, vgg-16, 3, Ring, true, 0, 0\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace mapa::workload
