// Fleet-scale trace preset tests (workload/generator.hpp): seeded
// determinism, Poisson arrival statistics, the bounded-Pareto heavy-tailed
// duration mix, and configuration validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/generator.hpp"

namespace mapa::workload {
namespace {

FleetTraceConfig base_config() {
  FleetTraceConfig config;
  config.num_jobs = 400;
  config.arrival_rate_per_s = 0.1;
  config.seed = 99;
  return config;
}

TEST(FleetTrace, SameSeedSameTrace) {
  const auto a = generate_fleet_trace(base_config());
  const auto b = generate_fleet_trace(base_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(FleetTrace, DifferentSeedDifferentTrace) {
  auto config = base_config();
  const auto a = generate_fleet_trace(config);
  config.seed = 100;
  const auto b = generate_fleet_trace(config);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference |= !(a[i] == b[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(FleetTrace, IdsAreSequentialFromOne) {
  const auto jobs = generate_fleet_trace(base_config());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<int>(i) + 1);
  }
}

TEST(FleetTrace, ArrivalsFormAPoissonProcess) {
  const auto config = base_config();
  const auto jobs = generate_fleet_trace(config);
  double previous = 0.0;
  double total_gap = 0.0;
  for (const Job& job : jobs) {
    EXPECT_GE(job.arrival_time_s, previous);
    total_gap += job.arrival_time_s - previous;
    previous = job.arrival_time_s;
  }
  // Mean inter-arrival gap must sit near 1/rate (within 15% at n=400).
  const double mean_gap = total_gap / static_cast<double>(jobs.size());
  const double expected = 1.0 / config.arrival_rate_per_s;
  EXPECT_NEAR(mean_gap, expected, 0.15 * expected);
}

TEST(FleetTrace, DurationMixIsHeavyTailedWithinBounds) {
  const auto config = base_config();
  const auto jobs = generate_fleet_trace(config);
  std::vector<double> scales;
  for (const Job& job : jobs) {
    EXPECT_GE(job.iter_scale, 1.0);
    EXPECT_LE(job.iter_scale, config.duration_tail_cap);
    scales.push_back(job.iter_scale);
  }
  std::sort(scales.begin(), scales.end());
  // Pareto(1.5) on [1, 50]: the median is ~2^(2/3) ≈ 1.6, while the tail
  // reaches far beyond — most jobs short, a fat straggler tail.
  const double median = scales[scales.size() / 2];
  EXPECT_LT(median, 3.0);
  EXPECT_GT(scales.back(), 10.0);
}

TEST(FleetTrace, GpuRangeAndPatternsRespected) {
  auto config = base_config();
  config.min_gpus = 2;
  config.max_gpus = 6;
  const auto jobs = generate_fleet_trace(config);
  for (const Job& job : jobs) {
    EXPECT_GE(job.num_gpus, 2u);
    EXPECT_LE(job.num_gpus, 6u);
    EXPECT_NE(job.pattern, graph::PatternKind::kSingle);
  }

  config.min_gpus = 1;
  config.max_gpus = 1;
  for (const Job& job : generate_fleet_trace(config)) {
    EXPECT_EQ(job.pattern, graph::PatternKind::kSingle);
  }
}

TEST(FleetTrace, WorkloadRestrictionHonored) {
  auto config = base_config();
  config.workload_names = {"vgg-16", "gmm"};
  for (const Job& job : generate_fleet_trace(config)) {
    EXPECT_TRUE(job.workload == "vgg-16" || job.workload == "gmm");
  }
}

TEST(FleetTrace, ValidatesConfiguration) {
  auto config = base_config();
  config.num_jobs = 0;
  EXPECT_THROW(generate_fleet_trace(config), std::invalid_argument);

  config = base_config();
  config.min_gpus = 0;
  EXPECT_THROW(generate_fleet_trace(config), std::invalid_argument);

  config = base_config();
  config.min_gpus = 6;
  config.max_gpus = 2;
  EXPECT_THROW(generate_fleet_trace(config), std::invalid_argument);

  config = base_config();
  config.arrival_rate_per_s = 0.0;
  EXPECT_THROW(generate_fleet_trace(config), std::invalid_argument);

  config = base_config();
  config.duration_alpha = 0.0;
  EXPECT_THROW(generate_fleet_trace(config), std::invalid_argument);

  config = base_config();
  config.duration_tail_cap = 0.5;
  EXPECT_THROW(generate_fleet_trace(config), std::invalid_argument);

  config = base_config();
  config.workload_names = {"no-such-workload"};
  EXPECT_THROW(generate_fleet_trace(config), std::invalid_argument);
}

TEST(RackTraceConfig, PresetSpansNodeBoundaries) {
  const FleetTraceConfig config = rack_trace_config(/*num_jobs=*/400,
                                                    /*seed=*/7);
  EXPECT_EQ(config.num_jobs, 400u);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_GT(config.max_gpus, 8u);  // overflows any single DGX/Summit node
  const auto jobs = generate_fleet_trace(config);
  ASSERT_EQ(jobs.size(), 400u);
  // The mix must actually produce node-overflowing jobs, and the preset is
  // as deterministic as every other generator entry point.
  bool cross_node = false;
  for (const Job& job : jobs) cross_node |= job.num_gpus > 8;
  EXPECT_TRUE(cross_node);
  EXPECT_EQ(generate_fleet_trace(config), jobs);
}

}  // namespace
}  // namespace mapa::workload
