#include "workload/profile.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mapa::workload {
namespace {

TEST(Profiles, NinePaperWorkloads) {
  const auto& all = all_workloads();
  EXPECT_EQ(all.size(), 9u);
  std::set<std::string> names;
  for (const auto& w : all) names.insert(w.name);
  for (const char* expected :
       {"vgg-16", "alexnet", "resnet-50", "inception-v3", "caffenet",
        "googlenet", "cusimann", "gmm", "jacobi"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(Profiles, SensitivityLabelsMatchFig5b) {
  // Paper Fig. 5b: AlexNet / Inception-v3 / VGG-16 / Resnet-50 sensitive,
  // CaffeNet / GoogleNet insensitive; §4 adds Cusimann / GMM / Jacobi as
  // insensitive.
  EXPECT_TRUE(workload_by_name("vgg-16").bandwidth_sensitive);
  EXPECT_TRUE(workload_by_name("alexnet").bandwidth_sensitive);
  EXPECT_TRUE(workload_by_name("resnet-50").bandwidth_sensitive);
  EXPECT_TRUE(workload_by_name("inception-v3").bandwidth_sensitive);
  EXPECT_FALSE(workload_by_name("caffenet").bandwidth_sensitive);
  EXPECT_FALSE(workload_by_name("googlenet").bandwidth_sensitive);
  EXPECT_FALSE(workload_by_name("cusimann").bandwidth_sensitive);
  EXPECT_FALSE(workload_by_name("gmm").bandwidth_sensitive);
  EXPECT_FALSE(workload_by_name("jacobi").bandwidth_sensitive);
}

TEST(Profiles, CommCallsMatchFig5bTable) {
  EXPECT_DOUBLE_EQ(workload_by_name("alexnet").comm.calls_per_iter, 80001.0);
  EXPECT_DOUBLE_EQ(workload_by_name("inception-v3").comm.calls_per_iter,
                   2830001.0);
  EXPECT_DOUBLE_EQ(workload_by_name("vgg-16").comm.calls_per_iter, 160001.0);
  EXPECT_DOUBLE_EQ(workload_by_name("resnet-50").comm.calls_per_iter,
                   1600001.0);
  EXPECT_DOUBLE_EQ(workload_by_name("caffenet").comm.calls_per_iter, 84936.0);
  EXPECT_DOUBLE_EQ(workload_by_name("googlenet").comm.calls_per_iter,
                   640001.0);
}

TEST(Profiles, SensitiveNetworksSlowDownMoreOnPcie) {
  // Fig. 2b ordering: VGG ~3x, GoogleNet barely affected.
  const double vgg = workload_by_name("vgg-16").pcie_slowdown;
  const double googlenet = workload_by_name("googlenet").pcie_slowdown;
  EXPECT_NEAR(vgg, 3.0, 0.01);
  EXPECT_LT(googlenet, 1.1);
  for (const auto& w : sensitive_workloads()) {
    EXPECT_GE(w.pcie_slowdown, 1.3) << w.name;
  }
  for (const auto& w : insensitive_workloads()) {
    EXPECT_LE(w.pcie_slowdown, 1.1) << w.name;
  }
}

TEST(Profiles, JacobiUnderThreePercent) {
  // Paper: "less than 3% execution time improvement with Jacobi".
  EXPECT_LE(workload_by_name("jacobi").pcie_slowdown, 1.03);
}

TEST(Profiles, SubsetsPartitionTheCatalog) {
  EXPECT_EQ(sensitive_workloads().size() + insensitive_workloads().size(),
            all_workloads().size());
  EXPECT_EQ(sensitive_workloads().size(), 4u);
}

TEST(Profiles, LookupBehaviour) {
  EXPECT_EQ(find_workload("vgg-16")->name, "vgg-16");
  EXPECT_EQ(find_workload("nope"), nullptr);
  EXPECT_THROW(workload_by_name("nope"), std::invalid_argument);
}

TEST(Profiles, AllHavePositiveCalibration) {
  for (const auto& w : all_workloads()) {
    EXPECT_GT(w.ref_exec_time_s, 0.0) << w.name;
    EXPECT_GE(w.pcie_slowdown, 1.0) << w.name;
    EXPECT_GT(w.comm.calls_per_iter, 0.0) << w.name;
    EXPECT_GT(w.comm.median_bytes, 0.0) << w.name;
    EXPECT_GT(w.ref_iterations, 0u) << w.name;
  }
}

TEST(Profiles, CommunicationSizeSeparatesSensitiveClasses) {
  // Paper §2.3: transfers must exceed ~1e5 bytes to exploit fast links.
  // GoogleNet's median is below that threshold; VGG's far above.
  EXPECT_LT(workload_by_name("googlenet").comm.median_bytes, 1e5);
  EXPECT_GT(workload_by_name("vgg-16").comm.median_bytes, 1e5);
}

}  // namespace
}  // namespace mapa::workload
