#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace mapa::util {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row(std::vector<std::string>{"1", "2"});
  csv.row(std::vector<double>{3.5, 4.0});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3.5,4\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, QuotesCellsWithSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(std::vector<std::string>{"has,comma", "has\"quote", "plain"});
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(Csv, QuotesNewlines) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(std::vector<std::string>{"line1\nline2"});
  EXPECT_EQ(out.str(), "\"line1\nline2\"\n");
}

TEST(FormatDouble, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(format_double(42.0), "42");
  EXPECT_EQ(format_double(-3.0), "-3");
  EXPECT_EQ(format_double(0.0), "0");
}

TEST(FormatDouble, SpecialValues) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(FormatDouble, FractionsKeepPrecision) {
  EXPECT_EQ(format_double(2.5), "2.5");
  EXPECT_EQ(format_double(0.125), "0.125");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row(std::vector<std::string>{"a", "1"});
  t.add_row(std::vector<std::string>{"longer", "22"});
  const std::string text = t.render();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("------"), std::string::npos);
}

TEST(Table, CellCountMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row(std::vector<std::string>{"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyColumnsThrows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, NumericRows) {
  Table t({"x"});
  t.add_row(std::vector<double>{1.25});
  EXPECT_NE(t.render().find("1.25"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, IndentPrefixesEveryLine) {
  Table t({"x"});
  t.add_row(std::vector<std::string>{"1"});
  const std::string text = t.render(2);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_GE(line.size(), 2u);
    EXPECT_EQ(line.substr(0, 2), "  ");
  }
}

TEST(TableFormat, FixedAndPercent) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(percent(0.124, 1), "12.4%");
}

}  // namespace
}  // namespace mapa::util
