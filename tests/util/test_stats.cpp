#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mapa::util {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, EmptySampleThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
  EXPECT_THROW(quantile(empty, 0.5), std::invalid_argument);
  EXPECT_THROW(box_plot(empty), std::invalid_argument);
}

TEST(Stats, SumIsAccurateForManySmallValues) {
  std::vector<double> xs(1000000, 0.1);
  EXPECT_NEAR(sum(xs), 100000.0, 1e-6);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Stats, QuantileRejectsOutOfRange) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
}

TEST(Stats, BoxPlotFiveNumbers) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(static_cast<double>(i));
  const BoxPlot bp = box_plot(xs);
  EXPECT_DOUBLE_EQ(bp.min, 1.0);
  EXPECT_DOUBLE_EQ(bp.q25, 26.0);
  EXPECT_DOUBLE_EQ(bp.median, 51.0);
  EXPECT_DOUBLE_EQ(bp.q75, 76.0);
  EXPECT_DOUBLE_EQ(bp.max, 101.0);
  EXPECT_EQ(bp.count, 101u);
}

TEST(Stats, BoxPlotSingleValue) {
  const std::vector<double> xs = {42.0};
  const BoxPlot bp = box_plot(xs);
  EXPECT_DOUBLE_EQ(bp.min, 42.0);
  EXPECT_DOUBLE_EQ(bp.median, 42.0);
  EXPECT_DOUBLE_EQ(bp.max, 42.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(pearson(xs, ys), std::invalid_argument);
}

TEST(Stats, RmseAndMae) {
  const std::vector<double> pred = {1.0, 2.0, 3.0};
  const std::vector<double> actual = {1.0, 4.0, 3.0};
  EXPECT_NEAR(rmse(pred, actual), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(mae(pred, actual), 2.0 / 3.0, 1e-12);
}

TEST(Stats, RelativeErrorSkipsZeroActuals) {
  const std::vector<double> pred = {1.1, 5.0};
  const std::vector<double> actual = {1.0, 0.0};
  EXPECT_NEAR(mean_relative_error(pred, actual), 0.1, 1e-12);
}

TEST(Stats, RelativeErrorAllZerosThrows) {
  const std::vector<double> pred = {1.0};
  const std::vector<double> actual = {0.0};
  EXPECT_THROW(mean_relative_error(pred, actual), std::invalid_argument);
}

TEST(Stats, EmpiricalCdfIsMonotoneAndEndsAtOne) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 3.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].fraction, cdf[i].fraction);
  }
}

TEST(Stats, BoxPlotToStringMentionsQuartiles) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::string text = to_string(box_plot(xs));
  EXPECT_NE(text.find("med"), std::string::npos);
  EXPECT_NE(text.find("q25"), std::string::npos);
  EXPECT_NE(text.find("n=3"), std::string::npos);
}

}  // namespace
}  // namespace mapa::util
