#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mapa::util {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(Matrix, InitializerListAndRaggedRejected) {
  const Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1.0}, {2.0, 3.0}}), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  const Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> x = {1.0, 1.0};
  const auto y = a.multiply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, IdentityActsAsNeutral) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::identity(2);
  EXPECT_DOUBLE_EQ(a.multiply(i).max_abs_diff(a), 0.0);
}

TEST(LeastSquares, SolvesExactSquareSystem) {
  const Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> b = {5.0, 10.0};
  const auto x = solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LeastSquares, RecoversPlantedCoefficients) {
  // Overdetermined consistent system: recovery must be exact.
  Rng rng(99);
  const std::vector<double> planted = {3.0, -2.0, 0.5};
  Matrix a(20, 3);
  std::vector<double> b(20);
  for (std::size_t r = 0; r < 20; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      a(r, c) = rng.uniform(-1.0, 1.0);
      acc += a(r, c) * planted[c];
    }
    b[r] = acc;
  }
  const auto x = least_squares(a, b);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(x[c], planted[c], 1e-10);
  }
}

TEST(LeastSquares, MinimizesResidualForNoisyData) {
  // Fit y = 2x + 1 with symmetric noise: coefficients close to truth.
  Matrix a(100, 2);
  std::vector<double> b(100);
  Rng rng(3);
  for (std::size_t i = 0; i < 100; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    a(i, 0) = x;
    a(i, 1) = 1.0;
    b[i] = 2.0 * x + 1.0 + rng.normal(0.0, 0.01);
  }
  const auto coeff = least_squares(a, b);
  EXPECT_NEAR(coeff[0], 2.0, 0.01);
  EXPECT_NEAR(coeff[1], 1.0, 0.05);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  const Matrix a(2, 3);
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(least_squares(a, b), std::invalid_argument);
}

TEST(LeastSquares, RankDeficientThrows) {
  // Second column is a multiple of the first.
  const Matrix a = {{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_THROW(least_squares(a, b), std::exception);
}

TEST(LeastSquares, RhsSizeMismatchThrows) {
  const Matrix a(3, 2);
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(least_squares(a, b), std::invalid_argument);
}

TEST(Solve, NonSquareThrows) {
  const Matrix a(3, 2);
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_THROW(solve(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace mapa::util
