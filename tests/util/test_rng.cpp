#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace mapa::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntHitsAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(1, 5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(4, 3), std::invalid_argument);
}

TEST(Rng, UniformIntRoughlyBalanced) {
  Rng rng(13);
  std::map<std::int64_t, int> counts;
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_int(0, 5)];
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, draws / 6.0, draws / 6.0 * 0.1) << "value " << value;
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRealMeanNearHalf) {
  Rng rng(19);
  double sum = 0.0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / draws, 0.5, 0.01);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(23);
  const int draws = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < draws; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / draws;
  const double var = sq / draws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, PickRejectsEmpty) {
  Rng rng(1);
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, PickCoversAllElements) {
  Rng rng(29);
  const std::vector<int> items = {10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.fork();
  // The child stream should not replay the parent stream.
  Rng parent_copy(37);
  parent_copy.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace mapa::util
