#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mapa::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequested) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultUsesAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(6);
  constexpr std::size_t n = 10000;
  std::vector<long long> partial(n, 0);
  pool.parallel_for(n, [&](std::size_t i) {
    partial[i] = static_cast<long long>(i);
  });
  const long long total =
      std::accumulate(partial.begin(), partial.end(), 0LL);
  EXPECT_EQ(total, static_cast<long long>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace mapa::util
