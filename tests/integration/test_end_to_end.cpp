// End-to-end properties of the full MAPA stack: the qualitative claims of
// the paper's evaluation must hold on reduced-size runs (the full-size
// reproductions live in bench/).

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/topology.hpp"
#include "score/scores.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "workload/generator.hpp"

namespace mapa::sim {
namespace {

std::vector<workload::Job> paper_mix(std::size_t n, std::uint64_t seed = 42) {
  workload::GeneratorConfig config;
  config.num_jobs = n;
  config.seed = seed;
  return workload::generate_jobs(config);
}

struct Runs {
  SimResult baseline;
  SimResult topo;
  SimResult greedy;
  SimResult preserve;
};

Runs run_all(const graph::Graph& hw, const std::vector<workload::Job>& jobs) {
  return Runs{
      run_simulation(hw, "baseline", jobs),
      run_simulation(hw, "topo-aware", jobs),
      run_simulation(hw, "greedy", jobs),
      run_simulation(hw, "preserve", jobs),
  };
}

TEST(EndToEnd, MapaPoliciesBeatBaselineEffectiveBandwidth) {
  // Fig. 13c: Greedy / Preserve lift the median predicted EffBW of
  // bandwidth-sensitive jobs well above baseline.
  const auto jobs = paper_mix(120);
  const auto runs = run_all(graph::dgx1_v100(), jobs);
  const auto median = [](const SimResult& r) {
    return pooled_box_plot(r, RecordField::kPredictedEffBw, true).median;
  };
  EXPECT_GT(median(runs.greedy), median(runs.baseline));
  EXPECT_GT(median(runs.preserve), median(runs.baseline));
}

TEST(EndToEnd, PreserveLiftsTheLowerTailForSensitiveJobs) {
  // The paper's headline: Preserve reins in the lower tail (25th
  // percentile of EffBW) relative to Greedy, which starves some
  // sensitive jobs.
  const auto jobs = paper_mix(150, 7);
  const auto runs = run_all(graph::dgx1_v100(), jobs);
  const auto q25 = [](const SimResult& r) {
    return pooled_box_plot(r, RecordField::kPredictedEffBw, true).q25;
  };
  EXPECT_GE(q25(runs.preserve), q25(runs.greedy) - 1e-9);
  EXPECT_GT(q25(runs.preserve), q25(runs.baseline));
}

TEST(EndToEnd, PreserveImprovesSensitiveTailExecutionTime) {
  // Fig. 13a / Table 3: the 75th percentile execution time of sensitive
  // jobs improves under Preserve vs baseline.
  const auto jobs = paper_mix(150, 11);
  const auto runs = run_all(graph::dgx1_v100(), jobs);
  const auto q75 = [](const SimResult& r) {
    return pooled_box_plot(r, RecordField::kExecTime, true).q75;
  };
  EXPECT_LT(q75(runs.preserve), q75(runs.baseline));
}

TEST(EndToEnd, InsensitiveJobsAreLargelyUnaffected) {
  // Fig. 13b: insensitive execution times barely move across policies.
  const auto jobs = paper_mix(120, 5);
  const auto runs = run_all(graph::dgx1_v100(), jobs);
  const auto med = [](const SimResult& r) {
    return pooled_box_plot(r, RecordField::kExecTime, false).median;
  };
  EXPECT_NEAR(med(runs.preserve) / med(runs.baseline), 1.0, 0.1);
}

TEST(EndToEnd, SpeedupSummaryFavorsPreserveAtTheTail) {
  const auto jobs = paper_mix(150, 13);
  const auto runs = run_all(graph::dgx1_v100(), jobs);
  const auto preserve = speedup_summary(runs.baseline, runs.preserve);
  // Table 3 shape: tail speedup (q75/max) above 1, throughput >= baseline.
  EXPECT_GE(preserve.max, 1.0);
  EXPECT_GE(preserve.q75, 1.0);
  EXPECT_GE(preserve.throughput, 0.98);
}

TEST(EndToEnd, BenefitsGeneralizeToLargerTopologies) {
  // Section 5: the same qualitative win on the 16-GPU topologies.
  for (const graph::Graph& hw : {graph::torus2d_16(), graph::cubemesh_16()}) {
    const auto jobs = paper_mix(80, 17);
    const auto baseline = run_simulation(hw, "baseline", jobs);
    const auto preserve = run_simulation(hw, "preserve", jobs);
    const double base_q25 =
        pooled_box_plot(baseline, RecordField::kPredictedEffBw, true).q25;
    const double pres_q25 =
        pooled_box_plot(preserve, RecordField::kPredictedEffBw, true).q25;
    EXPECT_GT(pres_q25, base_q25) << hw.name();
  }
}

TEST(EndToEnd, FragmentationExistsUnderBaseline) {
  // Fig. 4's premise: under baseline allocation a large share of multi-GPU
  // jobs get less aggregated bandwidth than the ideal for their size.
  const auto jobs = paper_mix(100, 19);
  const auto result = run_simulation(graph::dgx1_v100(), "baseline", jobs);
  std::size_t fragmented = 0, multi = 0;
  for (const auto& r : result.records) {
    // Restrict to 2-3 GPU jobs where ring == clique, so the comparison
    // against the clique ideal is apples to apples.
    if (r.job.num_gpus < 2 || r.job.num_gpus > 3) continue;
    ++multi;
    const double ideal = score::ideal_clique_bandwidth(
        graph::dgx1_v100(), r.job.num_gpus);
    if (r.aggregated_bw < 0.95 * ideal) ++fragmented;
  }
  ASSERT_GT(multi, 0u);
  EXPECT_GT(static_cast<double>(fragmented) / static_cast<double>(multi),
            0.3);
}

TEST(EndToEnd, AllPoliciesCompleteTheSameJobSet) {
  const auto jobs = paper_mix(90, 23);
  const auto runs = run_all(graph::summit_node(), jobs);
  for (const SimResult* r :
       {&runs.baseline, &runs.topo, &runs.greedy, &runs.preserve}) {
    EXPECT_EQ(r->records.size(), jobs.size());
  }
}

}  // namespace
}  // namespace mapa::sim
