// End-to-end properties of the full MAPA stack: the qualitative claims of
// the paper's evaluation must hold on reduced-size runs (the full-size
// reproductions live in bench/).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "cluster/fleet.hpp"
#include "graph/topology.hpp"
#include "obs/obs.hpp"
#include "score/scores.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "svc/service.hpp"
#include "workload/generator.hpp"

namespace mapa::sim {
namespace {

std::vector<workload::Job> paper_mix(std::size_t n, std::uint64_t seed = 42) {
  workload::GeneratorConfig config;
  config.num_jobs = n;
  config.seed = seed;
  return workload::generate_jobs(config);
}

struct Runs {
  SimResult baseline;
  SimResult topo;
  SimResult greedy;
  SimResult preserve;
};

Runs run_all(const graph::Graph& hw, const std::vector<workload::Job>& jobs) {
  return Runs{
      run_simulation(hw, "baseline", jobs),
      run_simulation(hw, "topo-aware", jobs),
      run_simulation(hw, "greedy", jobs),
      run_simulation(hw, "preserve", jobs),
  };
}

TEST(EndToEnd, MapaPoliciesBeatBaselineEffectiveBandwidth) {
  // Fig. 13c: Greedy / Preserve lift the median predicted EffBW of
  // bandwidth-sensitive jobs well above baseline.
  const auto jobs = paper_mix(120);
  const auto runs = run_all(graph::dgx1_v100(), jobs);
  const auto median = [](const SimResult& r) {
    return pooled_box_plot(r, RecordField::kPredictedEffBw, true).median;
  };
  EXPECT_GT(median(runs.greedy), median(runs.baseline));
  EXPECT_GT(median(runs.preserve), median(runs.baseline));
}

TEST(EndToEnd, PreserveLiftsTheLowerTailForSensitiveJobs) {
  // The paper's headline: Preserve reins in the lower tail (25th
  // percentile of EffBW) relative to Greedy, which starves some
  // sensitive jobs.
  const auto jobs = paper_mix(150, 7);
  const auto runs = run_all(graph::dgx1_v100(), jobs);
  const auto q25 = [](const SimResult& r) {
    return pooled_box_plot(r, RecordField::kPredictedEffBw, true).q25;
  };
  EXPECT_GE(q25(runs.preserve), q25(runs.greedy) - 1e-9);
  EXPECT_GT(q25(runs.preserve), q25(runs.baseline));
}

TEST(EndToEnd, PreserveImprovesSensitiveTailExecutionTime) {
  // Fig. 13a / Table 3: the 75th percentile execution time of sensitive
  // jobs improves under Preserve vs baseline.
  const auto jobs = paper_mix(150, 11);
  const auto runs = run_all(graph::dgx1_v100(), jobs);
  const auto q75 = [](const SimResult& r) {
    return pooled_box_plot(r, RecordField::kExecTime, true).q75;
  };
  EXPECT_LT(q75(runs.preserve), q75(runs.baseline));
}

TEST(EndToEnd, InsensitiveJobsAreLargelyUnaffected) {
  // Fig. 13b: insensitive execution times barely move across policies.
  const auto jobs = paper_mix(120, 5);
  const auto runs = run_all(graph::dgx1_v100(), jobs);
  const auto med = [](const SimResult& r) {
    return pooled_box_plot(r, RecordField::kExecTime, false).median;
  };
  EXPECT_NEAR(med(runs.preserve) / med(runs.baseline), 1.0, 0.1);
}

TEST(EndToEnd, SpeedupSummaryFavorsPreserveAtTheTail) {
  const auto jobs = paper_mix(150, 13);
  const auto runs = run_all(graph::dgx1_v100(), jobs);
  const auto preserve = speedup_summary(runs.baseline, runs.preserve);
  // Table 3 shape: tail speedup (q75/max) above 1, throughput >= baseline.
  EXPECT_GE(preserve.max, 1.0);
  EXPECT_GE(preserve.q75, 1.0);
  EXPECT_GE(preserve.throughput, 0.98);
}

TEST(EndToEnd, BenefitsGeneralizeToLargerTopologies) {
  // Section 5: the same qualitative win on the 16-GPU topologies.
  for (const graph::Graph& hw : {graph::torus2d_16(), graph::cubemesh_16()}) {
    const auto jobs = paper_mix(80, 17);
    const auto baseline = run_simulation(hw, "baseline", jobs);
    const auto preserve = run_simulation(hw, "preserve", jobs);
    const double base_q25 =
        pooled_box_plot(baseline, RecordField::kPredictedEffBw, true).q25;
    const double pres_q25 =
        pooled_box_plot(preserve, RecordField::kPredictedEffBw, true).q25;
    EXPECT_GT(pres_q25, base_q25) << hw.name();
  }
}

TEST(EndToEnd, FragmentationExistsUnderBaseline) {
  // Fig. 4's premise: under baseline allocation a large share of multi-GPU
  // jobs get less aggregated bandwidth than the ideal for their size.
  const auto jobs = paper_mix(100, 19);
  const auto result = run_simulation(graph::dgx1_v100(), "baseline", jobs);
  std::size_t fragmented = 0, multi = 0;
  for (const auto& r : result.records) {
    // Restrict to 2-3 GPU jobs where ring == clique, so the comparison
    // against the clique ideal is apples to apples.
    if (r.job.num_gpus < 2 || r.job.num_gpus > 3) continue;
    ++multi;
    const double ideal = score::ideal_clique_bandwidth(
        graph::dgx1_v100(), r.job.num_gpus);
    if (r.aggregated_bw < 0.95 * ideal) ++fragmented;
  }
  ASSERT_GT(multi, 0u);
  EXPECT_GT(static_cast<double>(fragmented) / static_cast<double>(multi),
            0.3);
}

TEST(EndToEnd, AllPoliciesCompleteTheSameJobSet) {
  const auto jobs = paper_mix(90, 23);
  const auto runs = run_all(graph::summit_node(), jobs);
  for (const SimResult* r :
       {&runs.baseline, &runs.topo, &runs.greedy, &runs.preserve}) {
    EXPECT_EQ(r->records.size(), jobs.size());
  }
}

TEST(EndToEnd, DaemonBurstWithMidRunFaultConservesEveryRequest) {
  // The allocation daemon under a mixed allocate/release/query burst
  // with a server crash landing mid-run: every admitted request must be
  // answered exactly once (typed errors included), and the stats
  // snapshot must agree with the observed reply stream.
  namespace svc = mapa::svc;
  obs::ObsConfig obs_config;
  obs_config.counters = true;
  svc::ServiceConfig config;
  config.cluster.observer = std::make_shared<obs::Observer>(obs_config);
  std::vector<cluster::ServerSpec> specs;
  for (int i = 0; i < 3; ++i) {
    cluster::ServerSpec spec;
    spec.topology = graph::dgx1_v100();
    spec.policy = "preserve";
    specs.push_back(std::move(spec));
  }
  svc::AllocationService service(std::move(specs), std::move(config));

  workload::FleetTraceConfig trace_config;
  trace_config.num_jobs = 60;
  trace_config.seed = 19;
  trace_config.max_gpus = 5;
  trace_config.arrival_rate_per_s = 0.2;
  const auto jobs = workload::generate_fleet_trace(trace_config);

  std::vector<svc::Outbound> out;
  std::uint64_t next_request = 1;
  std::set<std::uint64_t> outstanding;
  const auto enqueue = [&](svc::RequestPayload payload) {
    const std::uint64_t id = next_request++;
    ASSERT_TRUE(service.enqueue(1, svc::Request{id, std::move(payload)},
                                out));
    outstanding.insert(id);
  };

  // First wave: half the trace, plus queries sprinkled in.
  for (std::size_t i = 0; i < 30; ++i) {
    enqueue(svc::AllocateRequest::from_job(jobs[i]));
    if (i % 5 == 0) enqueue(svc::QueryRequest{jobs[i].id});
  }
  service.poll(out);

  // Crash a server shortly after the current simulated instant, then
  // throw the rest of the burst (and some releases) at the daemon.
  cluster::FaultEvent crash;
  crash.kind = cluster::FaultEvent::Kind::kServerCrash;
  crash.server = 1;
  crash.time_s = service.sim_now() + 1.0;
  service.inject_fault(crash);

  for (std::size_t i = 30; i < jobs.size(); ++i) {
    enqueue(svc::AllocateRequest::from_job(jobs[i]));
  }
  enqueue(svc::ReleaseRequest{jobs[35].id});
  enqueue(svc::ReleaseRequest{jobs[2].id});  // long finished: kNotFound
  enqueue(svc::QueryRequest{jobs[35].id});
  enqueue(svc::StatsRequest{});
  service.poll(out);
  std::vector<svc::Outbound> shutdown_out;
  service.shutdown(shutdown_out);
  out.insert(out.end(), shutdown_out.begin(), shutdown_out.end());

  // Conservation: exactly one reply per admitted request, none invented.
  std::map<std::uint64_t, std::size_t> reply_counts;
  for (const svc::Outbound& o : out) {
    const auto decoded = svc::decode_reply(o.frame.data() + 4,
                                           o.frame.size() - 4);
    ASSERT_TRUE(std::holds_alternative<svc::Reply>(decoded));
    ++reply_counts[std::get<svc::Reply>(decoded).id];
  }
  EXPECT_EQ(reply_counts.size(), outstanding.size());
  for (const std::uint64_t id : outstanding) {
    EXPECT_EQ(reply_counts[id], 1u) << "request " << id;
  }

  // Stats consistency: the service's own tallies match both the reply
  // stream we observed and the obs registry's svc.* counters.
  const std::string stats = service.stats_json();
  EXPECT_NE(stats.find("\"accepted\": " + std::to_string(outstanding.size())),
            std::string::npos);
  EXPECT_NE(stats.find("\"replies\": " + std::to_string(out.size())),
            std::string::npos);
  EXPECT_NE(stats.find("\"pending\": 0"), std::string::npos);
}

}  // namespace
}  // namespace mapa::sim
