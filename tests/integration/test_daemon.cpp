// The ONE real-socket test: an AF_UNIX SocketServer fronting the
// allocation service, exercised by svc::Client over svc::SocketChannel.
// Protocol behavior is pinned by the loopback suites (tests/svc/); this
// smoke test only proves the socket path itself — connect, framed
// request/reply over a real byte stream, two concurrent connections,
// graceful stop. Kept deliberately small to stay timing-robust.

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <variant>
#include <vector>

#include "graph/topology.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace mapa::svc {
namespace {

std::vector<cluster::ServerSpec> dgx_specs(std::size_t n) {
  std::vector<cluster::ServerSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    cluster::ServerSpec spec;
    spec.topology = graph::dgx1_v100();
    spec.policy = "preserve";
    specs.push_back(std::move(spec));
  }
  return specs;
}

workload::Job job_of(int id, std::size_t gpus) {
  workload::Job j;
  j.id = id;
  j.workload = "resnet-50";
  j.num_gpus = gpus;
  j.pattern = gpus <= 1 ? graph::PatternKind::kSingle
                        : graph::PatternKind::kRing;
  j.bandwidth_sensitive = true;
  return j;
}

std::string temp_socket_path() {
  return "/tmp/mapa_daemon_test_" + std::to_string(::getpid()) + ".sock";
}

TEST(Daemon, SocketSmoke) {
  const std::string path = temp_socket_path();
  SocketServer server(path, dgx_specs(2), ServiceConfig{});
  server.start();
  ASSERT_TRUE(server.running());

  {
    SocketChannel channel(path);
    Client client(channel);

    const auto alloc_id = client.allocate(job_of(1, 4));
    const auto ok =
        std::get<AllocateReply>(client.wait(alloc_id).payload);
    EXPECT_EQ(ok.job_id, 1);
    EXPECT_EQ(ok.gpus.size(), 4u);

    // A second connection sees the same daemon state.
    SocketChannel channel2(path);
    Client client2(channel2);
    const auto q =
        std::get<QueryReply>(client2.wait(client2.query(1)).payload);
    EXPECT_EQ(q.state, JobState::kFinished);
    EXPECT_EQ(q.server, ok.server);

    const auto stats =
        std::get<StatsReply>(client.wait(client.stats()).payload);
    EXPECT_NE(stats.json.find("\"accepted\": 3"), std::string::npos);

    const auto err = std::get<ErrorReply>(
        client.wait(client.allocate(job_of(1, 2))).payload);
    EXPECT_EQ(err.code, ErrorCode::kDuplicateJob);
  }

  server.stop();
  EXPECT_FALSE(server.running());
  // Stop unlinks the socket path; a fresh connect must fail cleanly.
  EXPECT_THROW(SocketChannel reconnect(path), std::runtime_error);
}

}  // namespace
}  // namespace mapa::svc
