// Scoring invariants swept over every match of representative patterns.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "interconnect/microbench.hpp"
#include "match/enumerator.hpp"
#include "score/effbw_model.hpp"
#include "score/scores.hpp"

namespace mapa::score {
namespace {

using graph::Graph;
using graph::VertexId;

struct PropertyCase {
  std::string name;
  Graph pattern;
  Graph hardware;
};

class ScoreSweep : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ScoreSweep, AggBwNeverExceedsCliqueBandwidth) {
  // The pattern uses a subset of the links among its vertices.
  const auto& c = GetParam();
  match::for_each_match(c.pattern, c.hardware, [&](const match::Match& m) {
    const auto vertices = m.sorted_vertices();
    EXPECT_LE(aggregated_bandwidth(c.pattern, c.hardware, m),
              clique_bandwidth(c.hardware, vertices) + 1e-9);
    return true;
  });
}

TEST_P(ScoreSweep, PreservedPlusRemovedEqualsTotal) {
  // Eq. 3 sanity: preserved BW + BW of edges incident to the allocation
  // equals the machine total.
  const auto& c = GetParam();
  const double total = c.hardware.total_bandwidth();
  match::for_each_match(c.pattern, c.hardware, [&](const match::Match& m) {
    std::vector<bool> removed(c.hardware.num_vertices(), false);
    for (const VertexId v : m.mapping) removed[v] = true;
    double incident = 0.0;
    for (const graph::Edge& e : c.hardware.edges()) {
      if (removed[e.u] || removed[e.v]) incident += e.bandwidth_gbps;
    }
    EXPECT_NEAR(preserved_bandwidth(c.hardware, m) + incident, total, 1e-9);
    return true;
  });
}

TEST_P(ScoreSweep, ScoresInvariantUnderPatternAutomorphism) {
  // Automorphic re-mappings are the same allocation: identical census,
  // AggBW, predicted EffBW, preserved BW, and microbench value.
  const auto& c = GetParam();
  const auto autos = graph::automorphisms(c.pattern);
  std::size_t checked = 0;
  match::for_each_match(c.pattern, c.hardware, [&](const match::Match& m) {
    for (const auto& sigma : autos) {
      match::Match remapped;
      remapped.mapping.resize(m.mapping.size());
      for (VertexId p = 0; p < m.mapping.size(); ++p) {
        remapped.mapping[p] = m.mapping[sigma[p]];
      }
      EXPECT_EQ(used_link_census(c.pattern, c.hardware, m),
                used_link_census(c.pattern, c.hardware, remapped));
      EXPECT_DOUBLE_EQ(
          aggregated_bandwidth(c.pattern, c.hardware, m),
          aggregated_bandwidth(c.pattern, c.hardware, remapped));
      EXPECT_DOUBLE_EQ(preserved_bandwidth(c.hardware, m),
                       preserved_bandwidth(c.hardware, remapped));
      EXPECT_DOUBLE_EQ(
          interconnect::measured_effective_bandwidth(c.pattern, c.hardware,
                                                     m),
          interconnect::measured_effective_bandwidth(c.pattern, c.hardware,
                                                     remapped));
    }
    return ++checked < 50;  // bounded: 50 matches x |Aut| remappings
  });
  EXPECT_GT(checked, 0u);
}

TEST_P(ScoreSweep, CensusTotalEqualsPatternEdgesOnCompleteHardware) {
  const auto& c = GetParam();
  if (c.hardware.num_edges() !=
      c.hardware.num_vertices() * (c.hardware.num_vertices() - 1) / 2) {
    GTEST_SKIP() << "hardware graph not complete";
  }
  match::for_each_match(c.pattern, c.hardware, [&](const match::Match& m) {
    EXPECT_EQ(static_cast<std::size_t>(
                  used_link_census(c.pattern, c.hardware, m).total()),
              c.pattern.num_edges());
    return true;
  });
}

TEST_P(ScoreSweep, MicrobenchBoundedByModelPeak) {
  const auto& c = GetParam();
  match::for_each_match(c.pattern, c.hardware, [&](const match::Match& m) {
    const double measured = interconnect::measured_effective_bandwidth(
        c.pattern, c.hardware, m);
    EXPECT_GE(measured, 0.0);
    EXPECT_LT(measured, 150.0);  // far below any physical aggregate
    return true;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScoreSweep,
    ::testing::Values(
        PropertyCase{"ring3_dgxv", graph::ring(3), graph::dgx1_v100()},
        PropertyCase{"ring4_dgxv", graph::ring(4), graph::dgx1_v100()},
        PropertyCase{"ring5_summit", graph::ring(5), graph::summit_node()},
        PropertyCase{"chain4_dgxp", graph::chain(4), graph::dgx1_p100()},
        PropertyCase{"star4_torus", graph::star(4),
                     graph::torus2d_16(graph::Connectivity::kNvlinkOnly)},
        PropertyCase{"tree5_cubemesh", graph::binary_tree(5),
                     graph::cubemesh_16(graph::Connectivity::kNvlinkOnly)}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace mapa::score
