#include "score/scores.hpp"

#include <gtest/gtest.h>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"

namespace mapa::score {
namespace {

using graph::VertexId;
using match::Match;

Match match_of(std::vector<VertexId> mapping) {
  Match m;
  m.mapping = std::move(mapping);
  return m;
}

TEST(AggregatedBandwidth, PaperWorkedExamples) {
  const graph::Graph hw = graph::dgx1_v100();
  const graph::Graph tri = graph::ring(3);
  EXPECT_DOUBLE_EQ(aggregated_bandwidth(tri, hw, match_of({0, 1, 4})), 87.0);
  EXPECT_DOUBLE_EQ(aggregated_bandwidth(tri, hw, match_of({0, 2, 3})), 125.0);
}

TEST(AggregatedBandwidth, CountsOnlyUsedEdges) {
  // Chain 0-1-2 mapped to {0,2,3}: uses (0,2)=25 and (2,3)=50 but not
  // (0,3)=50.
  const graph::Graph hw = graph::dgx1_v100();
  EXPECT_DOUBLE_EQ(
      aggregated_bandwidth(graph::chain(3), hw, match_of({0, 2, 3})), 75.0);
}

TEST(AggregatedBandwidth, MappingOrderMatters) {
  const graph::Graph hw = graph::dgx1_v100();
  const graph::Graph p = graph::chain(3);
  // 1-0-4 chain: (1,0)=25 + (0,4)=50 = 75, vs 0-1-4: (0,1)+(1,4)=25+12=37.
  EXPECT_DOUBLE_EQ(aggregated_bandwidth(p, hw, match_of({1, 0, 4})), 75.0);
  EXPECT_DOUBLE_EQ(aggregated_bandwidth(p, hw, match_of({0, 1, 4})), 37.0);
}

TEST(AggregatedBandwidth, SizeMismatchThrows) {
  EXPECT_THROW(aggregated_bandwidth(graph::ring(3), graph::dgx1_v100(),
                                    match_of({0, 1})),
               std::invalid_argument);
}

TEST(PreservedBandwidth, ComplementInducedSubgraph) {
  const graph::Graph hw = graph::dgx1_v100();
  // Removing {0,1,4}: preserved = total bandwidth among {2,3,5,6,7}.
  const double expected =
      clique_bandwidth(hw, std::vector<VertexId>{2, 3, 5, 6, 7});
  EXPECT_DOUBLE_EQ(preserved_bandwidth(hw, match_of({0, 1, 4})), expected);
}

TEST(PreservedBandwidth, WholeMachineLeavesNothing) {
  const graph::Graph hw = graph::dgx1_v100();
  EXPECT_DOUBLE_EQ(
      preserved_bandwidth(hw, match_of({0, 1, 2, 3, 4, 5, 6, 7})), 0.0);
}

TEST(PreservedBandwidth, EmptyAllocationPreservesEverything) {
  const graph::Graph hw = graph::dgx1_v100();
  EXPECT_DOUBLE_EQ(preserved_bandwidth(hw, Match{}), hw.total_bandwidth());
}

TEST(PreservedBandwidth, BusyMaskExcludesHeldVertices) {
  const graph::Graph hw = graph::dgx1_v100();
  std::vector<bool> busy(8, false);
  busy[6] = busy[7] = true;
  const double expected =
      clique_bandwidth(hw, std::vector<VertexId>{2, 3, 5});
  EXPECT_DOUBLE_EQ(preserved_bandwidth(hw, match_of({0, 1, 4}), busy),
                   expected);
}

TEST(PreservedBandwidth, BadBusyMaskThrows) {
  const std::vector<bool> busy(3, false);
  EXPECT_THROW(preserved_bandwidth(graph::dgx1_v100(), match_of({0}), busy),
               std::invalid_argument);
}

TEST(PreservedBandwidth, OutOfRangeVertexThrows) {
  EXPECT_THROW(preserved_bandwidth(graph::dgx1_v100(), match_of({42})),
               std::invalid_argument);
}

TEST(CliqueBandwidth, PaperExampleValues) {
  const graph::Graph hw = graph::dgx1_v100();
  EXPECT_DOUBLE_EQ(clique_bandwidth(hw, std::vector<VertexId>{0, 1, 4}),
                   87.0);
  EXPECT_DOUBLE_EQ(clique_bandwidth(hw, std::vector<VertexId>{0, 2, 3}),
                   125.0);
}

TEST(IdealAggregatedBandwidth, MatchesExhaustiveBest) {
  const graph::Graph hw = graph::dgx1_v100();
  EXPECT_DOUBLE_EQ(ideal_aggregated_bandwidth(graph::ring(3), hw), 125.0);
}

TEST(IdealAggregatedBandwidth, TwoGpusIsBestLink) {
  EXPECT_DOUBLE_EQ(
      ideal_aggregated_bandwidth(graph::ring(2), graph::dgx1_v100()), 50.0);
}

TEST(IdealCliqueBandwidth, MatchesRingIdealForTriangles) {
  // For 3 vertices clique == ring, so both ideals agree.
  const graph::Graph hw = graph::dgx1_v100();
  EXPECT_DOUBLE_EQ(ideal_clique_bandwidth(hw, 3), 125.0);
}

TEST(IdealCliqueBandwidth, FullMachineIsTotalBandwidth) {
  const graph::Graph hw = graph::dgx1_v100();
  EXPECT_DOUBLE_EQ(ideal_clique_bandwidth(hw, 8), hw.total_bandwidth());
}

TEST(IdealCliqueBandwidth, EdgeCases) {
  const graph::Graph hw = graph::dgx1_v100();
  EXPECT_DOUBLE_EQ(ideal_clique_bandwidth(hw, 0), 0.0);
  EXPECT_DOUBLE_EQ(ideal_clique_bandwidth(hw, 1), 0.0);
  EXPECT_THROW(ideal_clique_bandwidth(hw, 9), std::invalid_argument);
}

TEST(IdealCliqueBandwidth, MonotoneInK) {
  const graph::Graph hw = graph::dgx1_v100();
  double previous = 0.0;
  for (std::size_t k = 2; k <= 8; ++k) {
    const double ideal = ideal_clique_bandwidth(hw, k);
    EXPECT_GT(ideal, previous);
    previous = ideal;
  }
}

}  // namespace
}  // namespace mapa::score
