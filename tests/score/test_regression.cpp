#include "score/regression.hpp"

#include <gtest/gtest.h>

#include "graph/topology.hpp"
#include "interconnect/microbench.hpp"
#include "util/rng.hpp"

namespace mapa::score {
namespace {

/// Synthetic samples generated directly from a planted theta.
std::vector<EffBwSample> planted_samples(std::span<const double> theta,
                                         double noise_sigma,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<EffBwSample> samples;
  for (int x = 0; x <= 3; ++x) {
    for (int y = 0; y <= 3; ++y) {
      for (int z = 0; z <= 2; ++z) {
        EffBwSample s;
        s.census = LinkCensus{.doubles = x, .singles = y, .pcie = z};
        s.measured_gbps = predict_effective_bandwidth(theta, s.census) +
                          (noise_sigma > 0.0 ? rng.normal(0.0, noise_sigma)
                                             : 0.0);
        samples.push_back(s);
      }
    }
  }
  return samples;
}

TEST(Regression, RecoversPlantedThetaExactly) {
  const auto samples = planted_samples(kPaperTheta, 0.0, 1);
  const auto theta = fit_effbw_model(samples);
  ASSERT_EQ(theta.size(), kNumFeatures);
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    EXPECT_NEAR(theta[i], kPaperTheta[i], 1e-6) << "theta_" << (i + 1);
  }
}

TEST(Regression, NoiseKeepsFitClose) {
  const auto samples = planted_samples(kPaperTheta, 0.5, 2);
  const auto report = fit_and_evaluate(samples);
  EXPECT_LT(report.rmse, 1.0);
  EXPECT_GT(report.pearson, 0.99);
}

TEST(Regression, TooFewSamplesThrows) {
  std::vector<EffBwSample> samples(5);
  EXPECT_THROW(fit_effbw_model(samples), std::invalid_argument);
}

TEST(Regression, DegenerateIdenticalCensusesThrow) {
  // 20 copies of the same census: rank-deficient design matrix.
  std::vector<EffBwSample> samples(
      20, EffBwSample{LinkCensus{.doubles = 1, .singles = 1, .pcie = 1}, 30.0});
  EXPECT_THROW(fit_effbw_model(samples), std::exception);
}

TEST(Regression, FitOnDgxVMicrobenchmarkSamples) {
  // The paper's §3.4.3 experiment end to end: generate the (x, y, z)
  // training set from the DGX-V, fit, and check the Fig. 12-quality
  // metrics. The paper reports RelErr 0.0709 / RMSE 1.52 / MAE 7.05 (their
  // MAE is unusually large for their RMSE; we require the standard
  // relationship MAE <= RMSE instead).
  const auto samples =
      interconnect::generate_training_samples(graph::dgx1_v100());
  ASSERT_GE(samples.size(), kNumFeatures);
  const auto report = fit_and_evaluate(samples);
  EXPECT_LT(report.relative_error, 0.15);
  EXPECT_GT(report.pearson, 0.97);
  EXPECT_LE(report.mae, report.rmse + 1e-9);
}

TEST(Regression, RefitBeatsPaperThetaOnOwnSamples) {
  // Least squares minimizes RMSE on its own training set by definition.
  const auto samples =
      interconnect::generate_training_samples(graph::dgx1_v100());
  const auto refit = fit_and_evaluate(samples);
  const auto paper = evaluate_theta(kPaperTheta, samples);
  EXPECT_LE(refit.rmse, paper.rmse + 1e-9);
}

TEST(Regression, EvaluateThetaEmptySamplesThrows) {
  EXPECT_THROW(evaluate_theta(kPaperTheta, {}), std::invalid_argument);
}

TEST(Regression, ReportCarriesTheta) {
  const auto samples = planted_samples(kPaperTheta, 0.0, 3);
  const auto report = fit_and_evaluate(samples);
  EXPECT_EQ(report.theta.size(), kNumFeatures);
  EXPECT_LT(report.relative_error, 1e-6);
}

}  // namespace
}  // namespace mapa::score
