#include "score/census.hpp"

#include <gtest/gtest.h>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"

namespace mapa::score {
namespace {

using graph::VertexId;
using match::Match;

Match match_of(std::vector<VertexId> mapping) {
  Match m;
  m.mapping = std::move(mapping);
  return m;
}

TEST(UsedCensus, PaperFragmentedExample) {
  // {0,1,4} on DGX-1V: 1 double + 1 single + 1 PCIe.
  const auto census = used_link_census(graph::ring(3), graph::dgx1_v100(),
                                       match_of({0, 1, 4}));
  EXPECT_EQ(census, (LinkCensus{.doubles = 1, .singles = 1, .pcie = 1}));
}

TEST(UsedCensus, PaperIdealExample) {
  // {0,2,3} on DGX-1V: 2 doubles + 1 single.
  const auto census = used_link_census(graph::ring(3), graph::dgx1_v100(),
                                       match_of({0, 2, 3}));
  EXPECT_EQ(census, (LinkCensus{.doubles = 2, .singles = 1, .pcie = 0}));
}

TEST(UsedCensus, CountsOnlyPatternEdges) {
  // A chain uses 2 of the 3 links among its vertices.
  const auto census = used_link_census(graph::chain(3), graph::dgx1_v100(),
                                       match_of({0, 2, 3}));
  EXPECT_EQ(census.total(), 2);
}

TEST(UsedCensus, SingleGpuIsEmpty) {
  const auto census = used_link_census(graph::single_gpu(),
                                       graph::dgx1_v100(), match_of({5}));
  EXPECT_EQ(census.total(), 0);
}

TEST(UsedCensus, NvlinkV1CountsAsSingle) {
  const auto census = used_link_census(graph::ring(2), graph::dgx1_p100(),
                                       match_of({0, 1}));
  EXPECT_EQ(census, (LinkCensus{.doubles = 0, .singles = 1, .pcie = 0}));
}

TEST(UsedCensus, NvSwitchCountsAsDouble) {
  const auto census = used_link_census(graph::ring(2), graph::nvswitch_16(),
                                       match_of({0, 9}));
  EXPECT_EQ(census, (LinkCensus{.doubles = 1, .singles = 0, .pcie = 0}));
}

TEST(UsedCensus, MissingEdgeIgnoredOnNvlinkOnlyGraph) {
  // (0,5) has no link on the NVLink-only DGX-1V.
  const auto census = used_link_census(
      graph::ring(2), graph::dgx1_v100(graph::Connectivity::kNvlinkOnly),
      match_of({0, 5}));
  EXPECT_EQ(census.total(), 0);
}

TEST(UsedCensus, MismatchedMappingThrows) {
  EXPECT_THROW(used_link_census(graph::ring(3), graph::dgx1_v100(),
                                match_of({0, 1})),
               std::invalid_argument);
}

TEST(CliqueCensus, CountsAllPairs) {
  // All links among {0,1,2,3} on DGX-1V: quads are fully NVLinked with
  // 3 doubles ((0,3),(1,2),(2,3)... actually (0,3),(0,4)x — within the
  // quad: (0,3),(1,2),(2,3) doubles and (0,1),(0,2),(1,3) singles.
  const std::vector<VertexId> quad = {0, 1, 2, 3};
  const auto census = clique_link_census(graph::dgx1_v100(), quad);
  EXPECT_EQ(census.doubles, 3);
  EXPECT_EQ(census.singles, 3);
  EXPECT_EQ(census.pcie, 0);
}

TEST(CliqueCensus, EmptyAndSingleton) {
  const std::vector<VertexId> none;
  EXPECT_EQ(clique_link_census(graph::dgx1_v100(), none).total(), 0);
  const std::vector<VertexId> one = {4};
  EXPECT_EQ(clique_link_census(graph::dgx1_v100(), one).total(), 0);
}

TEST(LinkCensus, TotalSumsFields) {
  const LinkCensus c{.doubles = 2, .singles = 3, .pcie = 4};
  EXPECT_EQ(c.total(), 9);
}

}  // namespace
}  // namespace mapa::score
