#include "score/effbw_model.hpp"

#include <gtest/gtest.h>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"

namespace mapa::score {
namespace {

TEST(EffBwModel, PaperQuotedMedianValue) {
  // Eq. 2 with Table 2 theta at (x=2, y=1, z=0) gives 57.857 GB/s — the
  // "57.85 GBps" median effective bandwidth of Greedy/Preserve quoted in
  // §4.1. This pins the census convention to the paper's.
  const double v = predict_effective_bandwidth(
      LinkCensus{.doubles = 2, .singles = 1, .pcie = 0});
  EXPECT_NEAR(v, 57.857, 0.01);
}

TEST(EffBwModel, PaperQuotedQuartileValue) {
  // Eq. 2 at (0,0,0) gives 12.337 — the "12.33 GBps" 25th percentile the
  // paper quotes for Greedy.
  const double v = predict_effective_bandwidth(LinkCensus{});
  EXPECT_NEAR(v, 12.337, 0.01);
}

TEST(EffBwModel, SingleLinkTiersAreOrdered) {
  const double dbl = predict_effective_bandwidth(
      LinkCensus{.doubles = 1, .singles = 0, .pcie = 0});
  const double sgl = predict_effective_bandwidth(
      LinkCensus{.doubles = 0, .singles = 1, .pcie = 0});
  const double pcie = predict_effective_bandwidth(
      LinkCensus{.doubles = 0, .singles = 0, .pcie = 1});
  EXPECT_GT(dbl, sgl);
  EXPECT_GT(sgl, pcie);
  // Sanity band: a lone PCIe link lands near its 12 GB/s peak.
  EXPECT_NEAR(pcie, 10.1, 0.5);
  EXPECT_NEAR(dbl, 39.1, 0.5);
}

TEST(EffBwModel, FeatureVectorDefinition) {
  const auto f = effbw_features(LinkCensus{.doubles = 2, .singles = 3,
                                           .pcie = 1});
  ASSERT_EQ(f.size(), kNumFeatures);
  EXPECT_DOUBLE_EQ(f[0], 2.0);             // x
  EXPECT_DOUBLE_EQ(f[1], 3.0);             // y
  EXPECT_DOUBLE_EQ(f[2], 1.0);             // z
  EXPECT_DOUBLE_EQ(f[3], 1.0 / 3.0);       // 1/(x+1)
  EXPECT_DOUBLE_EQ(f[4], 1.0 / 4.0);       // 1/(y+1)
  EXPECT_DOUBLE_EQ(f[5], 1.0 / 2.0);       // 1/(z+1)
  EXPECT_DOUBLE_EQ(f[6], 6.0);             // xy
  EXPECT_DOUBLE_EQ(f[7], 3.0);             // yz
  EXPECT_DOUBLE_EQ(f[8], 2.0);             // zx
  EXPECT_DOUBLE_EQ(f[9], 1.0 / 7.0);       // 1/(xy+1)
  EXPECT_DOUBLE_EQ(f[10], 1.0 / 4.0);      // 1/(yz+1)
  EXPECT_DOUBLE_EQ(f[11], 1.0 / 3.0);      // 1/(zx+1)
  EXPECT_DOUBLE_EQ(f[12], 6.0);            // xyz
  EXPECT_DOUBLE_EQ(f[13], 1.0 / 7.0);      // 1/(xyz+1)
}

TEST(EffBwModel, PredictionIsLinearInTheta) {
  const LinkCensus census{.doubles = 1, .singles = 2, .pcie = 0};
  std::vector<double> theta(kNumFeatures, 0.0);
  theta[0] = 2.0;
  theta[1] = 3.0;
  EXPECT_DOUBLE_EQ(predict_effective_bandwidth(theta, census),
                   2.0 * 1.0 + 3.0 * 2.0);
}

TEST(EffBwModel, WrongThetaSizeThrows) {
  const std::vector<double> bad(3, 1.0);
  EXPECT_THROW(predict_effective_bandwidth(bad, LinkCensus{}),
               std::invalid_argument);
}

TEST(EffBwModel, AllocationOverloadMatchesCensusPath) {
  const graph::Graph hw = graph::dgx1_v100();
  const graph::Graph tri = graph::ring(3);
  match::Match m;
  m.mapping = {0, 2, 3};
  const double via_alloc = predict_effective_bandwidth(tri, hw, m);
  const double via_census = predict_effective_bandwidth(
      used_link_census(tri, hw, m));
  EXPECT_DOUBLE_EQ(via_alloc, via_census);
  EXPECT_NEAR(via_alloc, 57.857, 0.01);  // (2,1,0) again
}

TEST(EffBwModel, UpgradingPcieToDoubleHelpsWhenNvlinksPresent) {
  // Within the trained range, swapping a PCIe link for a double NVLink
  // raises predicted bandwidth whenever the allocation already has some
  // NVLink (y >= 1) or is a single-link allocation.
  for (int y = 1; y <= 3; ++y) {
    for (int z = 1; z <= 3; ++z) {
      if (y + z > 4) continue;
      const double before = predict_effective_bandwidth(
          LinkCensus{.doubles = 0, .singles = y, .pcie = z});
      const double after = predict_effective_bandwidth(
          LinkCensus{.doubles = 1, .singles = y, .pcie = z - 1});
      EXPECT_GT(after, before) << "y=" << y << " z=" << z;
    }
  }
  EXPECT_GT(predict_effective_bandwidth(LinkCensus{.doubles = 1}),
            predict_effective_bandwidth(LinkCensus{.pcie = 1}));
}

TEST(EffBwModel, KnownNonMonotoneQuirkOfPaperFit) {
  // Characterization: the paper's 31-sample fit is NOT globally monotone —
  // at (0,0,3) -> (1,0,2) the prediction *drops* slightly. We pin this
  // behavior so silent changes to the feature set or coefficients surface.
  const double all_pcie = predict_effective_bandwidth(
      LinkCensus{.doubles = 0, .singles = 0, .pcie = 3});
  const double upgraded = predict_effective_bandwidth(
      LinkCensus{.doubles = 1, .singles = 0, .pcie = 2});
  EXPECT_GT(all_pcie, upgraded);
  EXPECT_NEAR(all_pcie, 11.29, 0.1);
  EXPECT_NEAR(upgraded, 10.45, 0.1);
}

TEST(EffBwModel, PaperThetaTable2Values) {
  EXPECT_DOUBLE_EQ(kPaperTheta[0], 16.396);
  EXPECT_DOUBLE_EQ(kPaperTheta[7], 12.733);
  EXPECT_DOUBLE_EQ(kPaperTheta[10], 62.851);
  EXPECT_DOUBLE_EQ(kPaperTheta[13], -46.973);
}

}  // namespace
}  // namespace mapa::score
