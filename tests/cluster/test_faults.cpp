// Fault-injection and self-healing tests (cluster/fleet.hpp): crash
// kill/re-queue with deterministic backoff, retry-budget dead-lettering,
// seed replay and thread/shard record-identity under a fault schedule,
// GPU loss on free vs allocated GPUs, link degrades that never disturb
// running jobs vs link cuts that re-match in place or kill, the private
// fault-cache fork that keeps a degraded server from poisoning its
// siblings' shared match cache, probe-memo invalidation on every fault
// kind, cross-shard rescue out of a crashed shard, and the resilience
// metrics helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cluster/chaos.hpp"
#include "cluster/fleet.hpp"
#include "cluster/metrics.hpp"
#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "interconnect/link.hpp"
#include "policy/match_cache.hpp"
#include "workload/generator.hpp"

namespace mapa::cluster {
namespace {

workload::Job job_of(int id, const std::string& workload, std::size_t gpus,
                     double arrival_s = 0.0, double iter_scale = 1.0,
                     graph::PatternKind pattern = graph::PatternKind::kRing) {
  workload::Job j;
  j.id = id;
  j.workload = workload;
  j.num_gpus = gpus;
  j.pattern = gpus <= 1 ? graph::PatternKind::kSingle : pattern;
  j.bandwidth_sensitive =
      workload::workload_by_name(workload).bandwidth_sensitive;
  j.arrival_time_s = arrival_s;
  j.iter_scale = iter_scale;
  return j;
}

std::vector<ServerSpec> dgx_archetype_fleet(std::size_t n,
                                            const std::string& policy) {
  FleetArchetype arch;
  arch.name = "dgx";
  arch.topology = graph::TopologyHandle(graph::dgx1_v100());
  arch.policy = policy;
  return archetype_fleet_specs(n, {arch});
}

/// A 3-GPU fully connected server: the smallest topology where a star-3
/// job can lose a link and still re-embed within the GPUs it holds.
std::vector<ServerSpec> triangle_fleet() {
  graph::Graph g(3);
  g.add_edge(0, 1, interconnect::LinkType::kNvLink2Double);
  g.add_edge(0, 2, interconnect::LinkType::kNvLink2Double);
  g.add_edge(1, 2, interconnect::LinkType::kNvLink2Double);
  ServerSpec spec;
  spec.name = "tri";
  spec.topology = graph::TopologyHandle(std::move(g));
  spec.policy = "preserve";
  return {spec};
}

/// Full record-identity check: every surviving record, dead letter, and
/// resilience counter must match field for field.
void expect_same_results(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const FleetRecord& ra = a.records[i];
    const FleetRecord& rb = b.records[i];
    EXPECT_EQ(ra.record.job.id, rb.record.job.id) << "record " << i;
    EXPECT_EQ(ra.server, rb.server) << "record " << i;
    EXPECT_EQ(ra.retries, rb.retries) << "record " << i;
    EXPECT_EQ(ra.record.gpus, rb.record.gpus) << "record " << i;
    EXPECT_DOUBLE_EQ(ra.record.start_s, rb.record.start_s);
    EXPECT_DOUBLE_EQ(ra.record.finish_s, rb.record.finish_s);
    EXPECT_DOUBLE_EQ(ra.record.predicted_effbw, rb.record.predicted_effbw);
    EXPECT_DOUBLE_EQ(ra.record.measured_effbw, rb.record.measured_effbw);
  }
  ASSERT_EQ(a.dead_letters.size(), b.dead_letters.size());
  for (std::size_t i = 0; i < a.dead_letters.size(); ++i) {
    EXPECT_EQ(a.dead_letters[i].job.id, b.dead_letters[i].job.id);
    EXPECT_EQ(a.dead_letters[i].retries, b.dead_letters[i].retries);
    EXPECT_DOUBLE_EQ(a.dead_letters[i].time_s, b.dead_letters[i].time_s);
  }
  EXPECT_EQ(a.resilience.jobs_killed, b.resilience.jobs_killed);
  EXPECT_EQ(a.resilience.jobs_requeued, b.resilience.jobs_requeued);
  EXPECT_EQ(a.resilience.jobs_rematched, b.resilience.jobs_rematched);
  EXPECT_EQ(a.resilience.jobs_dead_lettered,
            b.resilience.jobs_dead_lettered);
  EXPECT_EQ(a.resilience.topology_forks, b.resilience.topology_forks);
  EXPECT_EQ(a.resilience.archetype_rejoins, b.resilience.archetype_rejoins);
  ASSERT_EQ(a.resilience.replace_latency_s.size(),
            b.resilience.replace_latency_s.size());
  for (std::size_t i = 0; i < a.resilience.replace_latency_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.resilience.replace_latency_s[i],
                     b.resilience.replace_latency_s[i]);
  }
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(Faults, FaultFreeRunHasZeroResilienceFootprint) {
  // Drain/restore alone must not arm the fault machinery: no kills, no
  // retries, no forks, and every record reports zero retries.
  ClusterConfig config;
  config.events = {{0.0, 1, FaultEvent::Kind::kDrain},
                   {1.0, 1, FaultEvent::Kind::kRestore}};
  FleetSimulator fleet(dgx_archetype_fleet(2, "preserve"), config);
  const auto result = fleet.run(
      {job_of(1, "vgg-16", 3), job_of(2, "gmm", 2, 0.5),
       job_of(3, "jacobi", 1)});
  ASSERT_EQ(result.records.size(), 3u);
  for (const FleetRecord& r : result.records) EXPECT_EQ(r.retries, 0u);
  EXPECT_TRUE(result.dead_letters.empty());
  EXPECT_EQ(result.resilience.jobs_killed, 0u);
  EXPECT_EQ(result.resilience.jobs_requeued, 0u);
  EXPECT_EQ(result.resilience.jobs_rematched, 0u);
  EXPECT_EQ(result.resilience.jobs_dead_lettered, 0u);
  EXPECT_EQ(result.resilience.capacity_degraded_ticks, 0u);
  EXPECT_EQ(result.resilience.topology_forks, 0u);
  EXPECT_EQ(result.resilience.archetype_rejoins, 0u);
  EXPECT_TRUE(result.resilience.replace_latency_s.empty());
  EXPECT_DOUBLE_EQ(dead_letter_rate(result), 0.0);
  EXPECT_DOUBLE_EQ(replace_latency_box_plot(result).count, 0.0);
}

TEST(Faults, CrashKillsRunningJobAndRequeuesWithBackoff) {
  // One long 8-GPU job; the server crashes at t=10 and restores in the
  // same instant. The job is killed, absorbs one backoff delay (jitter
  // off: exactly backoff_base_s = 4), and re-places at t=14. Only the
  // surviving placement appears in the records.
  ClusterConfig config;
  config.backoff_jitter = 0.0;
  config.events = {{10.0, 0, FaultEvent::Kind::kServerCrash},
                   {10.0, 0, FaultEvent::Kind::kRestore}};
  FleetSimulator fleet(dgx_archetype_fleet(1, "preserve"), config);
  const auto result =
      fleet.run({job_of(1, "vgg-16", 8, 0.0, /*iter_scale=*/1000.0)});
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].retries, 1u);
  EXPECT_DOUBLE_EQ(result.records[0].record.start_s, 14.0);
  EXPECT_DOUBLE_EQ(result.makespan_s, result.records[0].record.finish_s);
  EXPECT_EQ(result.resilience.jobs_killed, 1u);
  EXPECT_EQ(result.resilience.jobs_requeued, 1u);
  EXPECT_EQ(result.resilience.jobs_dead_lettered, 0u);
  ASSERT_EQ(result.resilience.replace_latency_s.size(), 1u);
  EXPECT_DOUBLE_EQ(result.resilience.replace_latency_s[0], 4.0);
  EXPECT_DOUBLE_EQ(replace_latency_box_plot(result).median, 4.0);
  EXPECT_TRUE(result.dead_letters.empty());
}

TEST(Faults, ExhaustedRetryBudgetLandsInTheDeadLetterList) {
  // max_retries = 1: the second kill drops the job. Both placements are
  // compacted out of the records, and the dead letter reports the number
  // of kills the job absorbed.
  ClusterConfig config;
  config.max_retries = 1;
  config.backoff_base_s = 1.0;
  config.backoff_jitter = 0.0;
  config.events = {{1.0, 0, FaultEvent::Kind::kServerCrash},
                   {1.0, 0, FaultEvent::Kind::kRestore},
                   {3.0, 0, FaultEvent::Kind::kServerCrash},
                   {3.0, 0, FaultEvent::Kind::kRestore}};
  FleetSimulator fleet(dgx_archetype_fleet(1, "preserve"), config);
  const auto result =
      fleet.run({job_of(7, "vgg-16", 8, 0.0, /*iter_scale=*/1000.0)});
  EXPECT_TRUE(result.records.empty());
  ASSERT_EQ(result.dead_letters.size(), 1u);
  EXPECT_EQ(result.dead_letters[0].job.id, 7);
  EXPECT_EQ(result.dead_letters[0].retries, 2u);
  EXPECT_DOUBLE_EQ(result.dead_letters[0].time_s, 3.0);
  EXPECT_EQ(result.resilience.jobs_killed, 2u);
  EXPECT_EQ(result.resilience.jobs_requeued, 1u);
  EXPECT_EQ(result.resilience.jobs_dead_lettered, 1u);
  EXPECT_EQ(result.servers[0].jobs_placed, 0u);
  EXPECT_DOUBLE_EQ(dead_letter_rate(result), 1.0);
}

TEST(Faults, GpuLossOnAFreeGpuKillsNothingButShrinksCapacity) {
  // Losing an idle GPU disturbs no running job, but the vertex leaves
  // the usable set: placements avoid it, and a full-server job must wait
  // for the recovery. The degraded server forks off its archetype and
  // re-joins on recovery.
  ClusterConfig config;
  config.events = {{0.0, 0, FaultEvent::Kind::kGpuLoss, 0},
                   {100.0, 0, FaultEvent::Kind::kGpuRecover, 0}};
  FleetSimulator fleet(dgx_archetype_fleet(1, "preserve"), config);
  const auto result = fleet.run({job_of(1, "vgg-16", 3, 1.0),
                                 job_of(2, "vgg-16", 8, 2.0)});
  ASSERT_EQ(result.records.size(), 2u);
  const FleetRecord* small = result.find(1);
  const FleetRecord* full = result.find(2);
  ASSERT_NE(small, nullptr);
  ASSERT_NE(full, nullptr);
  EXPECT_DOUBLE_EQ(small->record.start_s, 1.0);
  EXPECT_EQ(std::count(small->record.gpus.begin(), small->record.gpus.end(),
                       graph::VertexId{0}),
            0);
  // The 8-GPU job needs the lost vertex back (and the small job gone).
  EXPECT_DOUBLE_EQ(full->record.start_s,
                   std::max(100.0, small->record.finish_s));
  EXPECT_EQ(result.resilience.jobs_killed, 0u);
  EXPECT_EQ(result.resilience.jobs_requeued, 0u);
  EXPECT_EQ(result.resilience.topology_forks, 1u);
  EXPECT_EQ(result.resilience.archetype_rejoins, 1u);
  EXPECT_GT(result.resilience.capacity_degraded_ticks, 0u);
  EXPECT_TRUE(result.dead_letters.empty());
}

TEST(Faults, GpuLossUnderARunningJobKillsExactlyThatJob) {
  // The lost GPU is part of the running 8-GPU allocation: the job is
  // killed, waits out its backoff, and can only re-place once the GPU
  // recovers at t=300 (7 usable GPUs never fit an 8-GPU pattern).
  ClusterConfig config;
  config.backoff_base_s = 1.0;
  config.backoff_jitter = 0.0;
  config.events = {{5.0, 0, FaultEvent::Kind::kGpuLoss, 0},
                   {300.0, 0, FaultEvent::Kind::kGpuRecover, 0}};
  FleetSimulator fleet(dgx_archetype_fleet(1, "preserve"), config);
  const auto result =
      fleet.run({job_of(1, "vgg-16", 8, 0.0, /*iter_scale=*/1000.0)});
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].retries, 1u);
  EXPECT_DOUBLE_EQ(result.records[0].record.start_s, 300.0);
  EXPECT_EQ(result.resilience.jobs_killed, 1u);
  EXPECT_EQ(result.resilience.jobs_requeued, 1u);
  ASSERT_EQ(result.resilience.replace_latency_s.size(), 1u);
  EXPECT_DOUBLE_EQ(result.resilience.replace_latency_s[0], 295.0);
  EXPECT_EQ(result.resilience.topology_forks, 1u);
  EXPECT_EQ(result.resilience.archetype_rejoins, 1u);
}

TEST(Faults, LinkDegradeKeepsRunningJobsAndForksTheTopology) {
  // A bandwidth cut (factor > 0) leaves every edge in place, so running
  // jobs are neither killed nor re-matched — but the server forks off
  // its archetype: its hardware graph reports the scaled bandwidth and a
  // different topology fingerprint until repaired. Without a repair
  // event the outage persists to run end.
  std::vector<ServerSpec> specs = dgx_archetype_fleet(1, "preserve");
  const graph::Graph& pristine = specs[0].topology.graph();
  const graph::Edge edge = pristine.edges()[0];
  const std::uint64_t healthy_fp = graph::topology_fingerprint(pristine);

  ClusterConfig config;
  config.events = {
      {5.0, 0, FaultEvent::Kind::kLinkDegrade, edge.u, edge.v, 0.5}};
  FleetSimulator fleet(std::move(specs), config);
  const auto result =
      fleet.run({job_of(1, "vgg-16", 8, 0.0, /*iter_scale=*/1000.0)});
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].retries, 0u);
  EXPECT_EQ(result.resilience.jobs_killed, 0u);
  EXPECT_EQ(result.resilience.jobs_rematched, 0u);
  EXPECT_EQ(result.resilience.topology_forks, 1u);
  EXPECT_EQ(result.resilience.archetype_rejoins, 0u);
  EXPECT_DOUBLE_EQ(fleet.hardware(0).edge_bandwidth(edge.u, edge.v),
                   edge.bandwidth_gbps * 0.5);
  EXPECT_NE(graph::topology_fingerprint(fleet.hardware(0)), healthy_fp);
  // Structure is untouched: only bandwidth forked the fingerprint.
  EXPECT_EQ(graph::adjacency_fingerprint(fleet.hardware(0)),
            graph::adjacency_fingerprint(pristine));
}

TEST(Faults, LinkCutRematchesInPlaceWhenThePatternStillEmbeds) {
  // Star-3 on a triangle: cutting one of the two star edges breaks the
  // current embedding, but re-rooting the star on the third GPU uses
  // only the surviving edges. The job keeps its GPUs and its schedule —
  // a re-match, not a kill.
  const auto star_job = [] {
    return job_of(1, "vgg-16", 3, 0.0, /*iter_scale=*/1000.0,
                  graph::PatternKind::kStar);
  };
  FleetSimulator healthy(triangle_fleet(), ClusterConfig{});
  const auto baseline = healthy.run({star_job()});
  ASSERT_EQ(baseline.records.size(), 1u);
  const std::vector<graph::VertexId> mapping = baseline.records[0].record.gpus;
  ASSERT_EQ(mapping.size(), 3u);

  // gpus is in pattern-vertex order, so (gpus[0], gpus[1]) is the
  // hardware edge carrying the star's first spoke.
  ClusterConfig config;
  config.events = {{5.0, 0, FaultEvent::Kind::kLinkDegrade, mapping[0],
                    mapping[1], 0.0}};
  FleetSimulator fleet(triangle_fleet(), config);
  const auto result = fleet.run({star_job()});
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.resilience.jobs_rematched, 1u);
  EXPECT_EQ(result.resilience.jobs_killed, 0u);
  EXPECT_EQ(result.records[0].retries, 0u);
  // Same GPUs, same schedule; only the embedding moved.
  std::vector<graph::VertexId> held = result.records[0].record.gpus;
  std::vector<graph::VertexId> original = mapping;
  std::sort(held.begin(), held.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(held, original);
  EXPECT_DOUBLE_EQ(result.records[0].record.finish_s,
                   baseline.records[0].record.finish_s);
}

TEST(Faults, LinkCutKillsWhenThePatternNoLongerEmbeds) {
  // Cut all three triangle edges: by the last cut no star-3 embedding
  // survives anywhere on the server, the job is killed, and with no
  // repair coming it can never re-place — the stuck retry is
  // dead-lettered instead of spinning or throwing.
  ClusterConfig config;
  config.backoff_base_s = 1.0;
  config.backoff_jitter = 0.0;
  config.events = {{5.0, 0, FaultEvent::Kind::kLinkDegrade, 0, 1, 0.0},
                   {6.0, 0, FaultEvent::Kind::kLinkDegrade, 0, 2, 0.0},
                   {7.0, 0, FaultEvent::Kind::kLinkDegrade, 1, 2, 0.0}};
  FleetSimulator fleet(triangle_fleet(), config);
  const auto result = fleet.run({job_of(1, "vgg-16", 3, 0.0,
                                        /*iter_scale=*/1000.0,
                                        graph::PatternKind::kStar)});
  EXPECT_TRUE(result.records.empty());
  ASSERT_EQ(result.dead_letters.size(), 1u);
  EXPECT_EQ(result.dead_letters[0].job.id, 1);
  EXPECT_EQ(result.dead_letters[0].retries, 1u);
  EXPECT_EQ(result.resilience.jobs_killed, 1u);
  EXPECT_EQ(result.resilience.jobs_dead_lettered, 1u);
}

TEST(Faults, ReplayIsRecordIdenticalFromTheSameSeed) {
  // Same seed, same fault schedule, fresh simulator: every surviving
  // record, dead letter, and resilience counter replays exactly —
  // including the jittered backoff delays (jitter left at its nonzero
  // default here on purpose).
  ClusterConfig config;
  config.selection = "least-loaded";
  config.events = {{3.0, 1, FaultEvent::Kind::kServerCrash},
                   {30.0, 1, FaultEvent::Kind::kRestore},
                   {4.0, 2, FaultEvent::Kind::kGpuLoss, 1},
                   {40.0, 2, FaultEvent::Kind::kGpuRecover, 1},
                   {5.0, 3, FaultEvent::Kind::kLinkDegrade, 0, 1, 0.5},
                   {50.0, 3, FaultEvent::Kind::kLinkRepair, 0, 1}};
  std::vector<workload::Job> jobs;
  for (int i = 1; i <= 10; ++i) {
    jobs.push_back(job_of(i, i % 2 ? "vgg-16" : "gmm", 2 + i % 4,
                          0.5 * i, /*iter_scale=*/40.0 + i));
  }
  FleetSimulator first(dgx_archetype_fleet(4, "preserve"), config);
  FleetSimulator second(dgx_archetype_fleet(4, "preserve"), config);
  const auto a = first.run(jobs);
  const auto b = second.run(jobs);
  EXPECT_GT(a.resilience.jobs_killed, 0u);
  expect_same_results(a, b);
}

TEST(Faults, ShardCountsAreRecordIdenticalUnderAFaultSchedule) {
  // Eight full-server jobs on eight identical servers pin the job ->
  // server mapping for any shard count, so a crash at server 3 and a
  // GPU loss under server 5's allocation kill the same two jobs in the
  // single-queue and in the 8-shard dispatcher. Both faults heal before
  // the retries come off backoff, so each retried job re-places on a
  // recovered server — the lowest-indexed one first under the single
  // queue and under shard routing alike.
  std::vector<workload::Job> jobs;
  for (int i = 1; i <= 8; ++i) {
    jobs.push_back(
        job_of(i, "vgg-16", 8, 0.0, /*iter_scale=*/1000.0 + 10.0 * i));
  }
  ClusterConfig config;
  config.events = {{5.0, 3, FaultEvent::Kind::kServerCrash},
                   {6.0, 5, FaultEvent::Kind::kGpuLoss, 0},
                   {7.0, 5, FaultEvent::Kind::kGpuRecover, 0},
                   {8.0, 3, FaultEvent::Kind::kRestore}};
  config.shards = 1;
  FleetSimulator single(dgx_archetype_fleet(8, "preserve"), config);
  config.shards = 8;
  FleetSimulator sharded(dgx_archetype_fleet(8, "preserve"), config);
  const auto a = single.run(jobs);
  const auto b = sharded.run(jobs);
  EXPECT_EQ(a.resilience.jobs_killed, 2u);
  EXPECT_EQ(a.resilience.jobs_requeued, 2u);
  ASSERT_EQ(a.records.size(), 8u);
  expect_same_results(a, b);
}

TEST(Faults, ThreadCountsAreRecordIdenticalUnderAFaultSchedule) {
  // The unconditional thread-count contract extends to faults: a
  // 64-server fleet under a chaos-generated schedule produces identical
  // records, dead letters, and resilience stats at 1 and 8 probe
  // threads.
  workload::ChaosTraceConfig chaos =
      workload::chaos_trace_config(64, /*per_server_mtbf_s=*/2000.0, 7);
  chaos.horizon_s = 300.0;
  chaos.mttr_s = 60.0;
  const std::vector<ServerSpec> specs =
      dgx_archetype_fleet(64, "topo-aware");
  ClusterConfig config;
  config.selection = "least-loaded";
  config.shards = 8;
  config.events = generate_fault_schedule(chaos, specs);
  ASSERT_FALSE(config.events.empty());
  const auto jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(64, 2, 11));

  config.threads = 1;
  FleetSimulator sequential(specs, config);
  config.threads = 8;
  FleetSimulator parallel(specs, config);
  const auto a = sequential.run(jobs);
  const auto b = parallel.run(jobs);
  EXPECT_GT(a.resilience.jobs_killed, 0u);
  expect_same_results(a, b);
  for (std::size_t s = 0; s < a.servers.size(); ++s) {
    EXPECT_EQ(a.servers[s].jobs_placed, b.servers[s].jobs_placed);
    EXPECT_EQ(a.servers[s].probes, b.servers[s].probes);
    EXPECT_EQ(a.servers[s].probe_memo_hits, b.servers[s].probe_memo_hits);
    EXPECT_EQ(a.servers[s].match_cache_delta_hits,
              b.servers[s].match_cache_delta_hits);
  }
}

TEST(Faults, IncrementalReuseIsRecordIdenticalUnderChaos) {
  // The tentpole contract under the harshest schedule we can generate:
  // cross-tick probe memoization and delta-keyed cache lookups must not
  // move a single record, dead letter, or resilience counter relative
  // to the legacy dispatcher (clear-on-commit memo, exact-only cache)
  // while crashes, GPU losses, and link faults fork topologies out from
  // under both reuse layers. Staleness is by construction — a fault
  // changes the topology fingerprint in the memo key, and a fork swaps
  // the degraded server onto a private cache — so the only visible
  // difference may be the reuse counters themselves.
  workload::ChaosTraceConfig chaos =
      workload::chaos_trace_config(32, /*per_server_mtbf_s=*/1500.0, 13);
  chaos.horizon_s = 400.0;
  chaos.mttr_s = 50.0;
  const std::vector<ServerSpec> specs = dgx_archetype_fleet(32, "preserve");
  ClusterConfig config;
  config.selection = "least-loaded";
  config.shards = 4;
  config.events = generate_fault_schedule(chaos, specs);
  ASSERT_FALSE(config.events.empty());
  const auto jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(32, 6, 17));

  config.cross_tick_memo = false;
  config.cache.enable_delta = false;
  FleetSimulator legacy(specs, config);
  config.cross_tick_memo = true;
  config.cache.enable_delta = true;
  FleetSimulator incremental(specs, config);
  const auto off = legacy.run(jobs);
  const auto on = incremental.run(jobs);
  EXPECT_GT(on.resilience.topology_forks + on.resilience.jobs_killed, 0u);
  expect_same_results(off, on);

  std::uint64_t memo_off = 0;
  std::uint64_t memo_on = 0;
  std::uint64_t delta_off = 0;
  std::uint64_t delta_on = 0;
  for (std::size_t s = 0; s < on.servers.size(); ++s) {
    memo_off += off.servers[s].probe_memo_hits;
    memo_on += on.servers[s].probe_memo_hits;
    delta_off += off.servers[s].match_cache_delta_hits;
    delta_on += on.servers[s].match_cache_delta_hits;
  }
  // Cross-tick keys survive the churn the legacy memo clears on, so the
  // faulted run must still replay strictly more probes; the legacy run
  // must report zero delta activity.
  EXPECT_GT(memo_on, memo_off);
  EXPECT_GT(delta_on, 0u);
  EXPECT_EQ(delta_off, 0u);
}

TEST(Faults, ForkedServersDeltaHitsStayPrivate) {
  // Delta reuse must respect the fault-cache fork: a link-degraded
  // server filters supersets out of its PRIVATE fork (whose entries
  // were enumerated against the degraded bandwidths), never out of the
  // shared archetype cache, and its delta hits are attributed to the
  // degraded server itself — the shared-cache primary only reports the
  // healthy servers' activity. Three servers, server 2 degraded from
  // t=0; four staggered long jobs make every later probe see busier
  // and busier states, so both the shared cache and the fork serve
  // delta hits.
  ClusterConfig config;
  config.selection = "least-loaded";
  config.events = {{0.0, 2, FaultEvent::Kind::kLinkDegrade, 0, 1, 0.5}};
  FleetSimulator fleet(dgx_archetype_fleet(3, "preserve"), config);
  const auto result =
      fleet.run({job_of(1, "vgg-16", 3, 1.0, /*iter_scale=*/1000.0),
                 job_of(2, "vgg-16", 3, 2.0, /*iter_scale=*/1000.0),
                 job_of(3, "vgg-16", 3, 3.0, /*iter_scale=*/1000.0),
                 job_of(4, "vgg-16", 3, 4.0, /*iter_scale=*/1000.0)});
  ASSERT_EQ(result.records.size(), 4u);
  EXPECT_EQ(result.resilience.topology_forks, 1u);

  // The healthy servers' busier-state probes filtered from the shared
  // idle-state entry; those hits are reported by the archetype primary.
  ASSERT_TRUE(result.servers[0].cache_primary);
  EXPECT_GT(result.servers[0].match_cache_delta_hits, 0u);
  // The degraded server is not the shared primary, so every delta hit
  // attributed to it came from its private fork.
  EXPECT_FALSE(result.servers[2].cache_primary);
  EXPECT_GT(result.servers[2].match_cache_delta_hits, 0u);
  EXPECT_GT(result.servers[2].match_cache_misses, 0u);
}

TEST(Faults, DegradedForkInvalidatesARawSharedCache) {
  // Why the fleet must fork a private cache: MatchCache pins the
  // topology fingerprint, and a link-degraded fork — structurally
  // identical, different bandwidths — invalidates the shared entries
  // wholesale, then the healthy graph invalidates them right back.
  graph::Graph healthy = graph::dgx1_v100();
  graph::Graph degraded(healthy.num_vertices());
  for (const graph::Edge& e : healthy.edges()) {
    const double factor = (e.u == 0 && e.v == 1) || (e.u == 1 && e.v == 0)
                              ? 0.5
                              : 1.0;
    degraded.add_edge(e.u, e.v, e.type, e.bandwidth_gbps * factor);
  }
  ASSERT_EQ(graph::adjacency_fingerprint(healthy),
            graph::adjacency_fingerprint(degraded));
  ASSERT_NE(graph::topology_fingerprint(healthy),
            graph::topology_fingerprint(degraded));

  policy::MatchCache cache;
  const graph::Graph pattern = graph::make_pattern(graph::PatternKind::kRing, 3);
  const match::EnumerateOptions options;
  const auto consume = [](const match::Match&) { return true; };
  cache.for_each_match(pattern, healthy, options, consume);   // miss, store
  cache.for_each_match(pattern, healthy, options, consume);   // hit
  cache.for_each_match(pattern, degraded, options, consume);  // invalidates
  cache.for_each_match(pattern, healthy, options, consume);   // invalidates
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.invalidations, 2u);
}

TEST(Faults, SharedCacheSurvivesASiblingsArchetypeFork) {
  // Three servers share one archetype cache; server 2 is link-degraded
  // from t=0 and probes through a private fork instead. Two identical
  // ring-3 jobs at t=1 make every server probe the idle mask: if the
  // degraded server still touched the shared cache, its foreign
  // fingerprint would wipe the idle-mask entry between the healthy
  // probes and server 1's hits would vanish.
  ClusterConfig config;
  config.selection = "least-loaded";
  config.events = {{0.0, 2, FaultEvent::Kind::kLinkDegrade, 0, 1, 0.5}};
  FleetSimulator fleet(dgx_archetype_fleet(3, "preserve"), config);
  const auto result =
      fleet.run({job_of(1, "vgg-16", 3, 1.0, /*iter_scale=*/1000.0),
                 job_of(2, "vgg-16", 3, 1.0, /*iter_scale=*/1000.0)});
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.resilience.topology_forks, 1u);
  // Server 1's idle-mask probes replay the shared entry both times;
  // the shared stats are reported by the archetype primary (server 0).
  ASSERT_TRUE(result.servers[0].cache_primary);
  EXPECT_EQ(result.servers[0].match_cache_hits, 2u);
  // The degraded server's lookups ran against its private fork and are
  // attributed to it directly — it is not the shared-cache primary.
  EXPECT_FALSE(result.servers[2].cache_primary);
  EXPECT_GT(result.servers[2].match_cache_misses, 0u);
}

TEST(Faults, EveryFaultEventInvalidatesTheProbeMemo) {
  // Regression (probe-memo staleness): at t=0 a probe memoizes server
  // 1's idle-mask answer; at t=0.5 that server loses the very GPU the
  // memoized mapping uses, with no commit or release touching it. The
  // t=1 job must not replay the stale mapping (committing a lost vertex
  // throws) — the loss event itself has to drop the memo.
  FleetSimulator probe(dgx_archetype_fleet(1, "preserve"), ClusterConfig{});
  const auto mapping =
      probe.run({job_of(1, "vgg-16", 3)}).records[0].record.gpus;
  const graph::VertexId lost = mapping[0];

  ClusterConfig config;
  config.selection = "least-loaded";
  config.probe_memo = true;
  config.events = {{0.5, 1, FaultEvent::Kind::kGpuLoss, lost}};
  FleetSimulator fleet(dgx_archetype_fleet(2, "preserve"), config);
  FleetResult result;
  ASSERT_NO_THROW(
      result = fleet.run({job_of(1, "vgg-16", 3, 0.0, /*iter_scale=*/1000.0),
                          job_of(2, "vgg-16", 3, 1.0)}));
  const FleetRecord* second = result.find(2);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->server, 1u);  // the freer (degraded) server won
  EXPECT_EQ(std::count(second->record.gpus.begin(),
                       second->record.gpus.end(), lost),
            0);
  EXPECT_EQ(result.resilience.jobs_killed, 0u);
}

TEST(Faults, CrashedShardsQueueIsRescuedNotDeadLettered) {
  // Two single-server shards. Shard 1 holds a running job and a queued
  // one when its only server crashes: the running job is killed and
  // re-queued, the queued job re-routed — and both finish on shard 0,
  // because routing and retries avoid dead shards while capacity exists
  // elsewhere.
  std::vector<workload::Job> jobs = {
      job_of(1, "vgg-16", 8, 0.0, /*iter_scale=*/100.0),
      job_of(2, "vgg-16", 8, 0.0, /*iter_scale=*/100.0),
      job_of(3, "vgg-16", 8, 0.0, /*iter_scale=*/100.0),
      job_of(4, "vgg-16", 8, 1.0, /*iter_scale=*/100.0)};
  ClusterConfig config;
  config.shards = 2;
  config.events = {{2.0, 1, FaultEvent::Kind::kServerCrash}};
  FleetSimulator fleet(dgx_archetype_fleet(2, "preserve"), config);
  const auto result = fleet.run(jobs);
  ASSERT_EQ(result.records.size(), 4u);
  EXPECT_TRUE(result.dead_letters.empty());
  for (const FleetRecord& r : result.records) {
    if (r.record.start_s > 2.0) {
      EXPECT_EQ(r.server, 0u) << "job " << r.record.job.id
                              << " placed on the crashed server";
    }
  }
  const FleetRecord* killed = result.find(2);
  ASSERT_NE(killed, nullptr);
  EXPECT_EQ(killed->retries, 1u);
  EXPECT_EQ(result.resilience.jobs_killed, 1u);
}

TEST(Faults, EventValidationRejectsMalformedSchedules) {
  const auto fleet_with = [](std::vector<FaultEvent> events) {
    ClusterConfig config;
    config.events = std::move(events);
    return FleetSimulator(dgx_archetype_fleet(2, "preserve"), config);
  };
  // In-range events construct fine.
  EXPECT_NO_THROW(fleet_with({{1.0, 0, FaultEvent::Kind::kGpuLoss, 7}}));
  // Server index out of range.
  EXPECT_THROW(fleet_with({{1.0, 9, FaultEvent::Kind::kDrain}}),
               std::invalid_argument);
  // GPU vertex out of range (a DGX-1V has 8 GPUs).
  EXPECT_THROW(fleet_with({{1.0, 0, FaultEvent::Kind::kGpuLoss, 8}}),
               std::invalid_argument);
  // Link endpoints: out of range, and self-loops.
  EXPECT_THROW(
      fleet_with({{1.0, 0, FaultEvent::Kind::kLinkDegrade, 0, 8, 0.5}}),
      std::invalid_argument);
  EXPECT_THROW(
      fleet_with({{1.0, 0, FaultEvent::Kind::kLinkDegrade, 3, 3, 0.5}}),
      std::invalid_argument);
  // Degrade factor must be in [0, 1): 1.0 would be a no-op "repair".
  EXPECT_THROW(
      fleet_with({{1.0, 0, FaultEvent::Kind::kLinkDegrade, 0, 1, 1.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      fleet_with({{1.0, 0, FaultEvent::Kind::kLinkDegrade, 0, 1, -0.5}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace mapa::cluster
