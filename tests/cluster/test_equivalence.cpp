// Cluster/engine equivalence: a 1-server fleet under first-fit selection
// must reproduce sim::Simulator's job records exactly — same placements, same
// simulated times, same scores, same cache behavior — on the same trace.
// This pins the fleet dispatcher's serve loop (including backfill and the
// unplaceable-job throw) to the single-server engine's semantics.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/fleet.hpp"
#include "graph/topology.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace mapa::cluster {
namespace {

/// Field-by-field record equality, excluding only the wall-clock
/// scheduling_overhead_ms (real elapsed time, outside the determinism
/// contract).
void expect_equivalent(const sim::SimResult& engine,
                       const FleetResult& fleet) {
  ASSERT_EQ(engine.records.size(), fleet.records.size());
  for (std::size_t i = 0; i < engine.records.size(); ++i) {
    const sim::JobRecord& e = engine.records[i];
    const sim::JobRecord& f = fleet.records[i].record;
    EXPECT_EQ(fleet.records[i].server, 0u);
    EXPECT_EQ(e.job, f.job);
    EXPECT_EQ(e.gpus, f.gpus);
    EXPECT_DOUBLE_EQ(e.queued_s, f.queued_s);
    EXPECT_DOUBLE_EQ(e.start_s, f.start_s);
    EXPECT_DOUBLE_EQ(e.finish_s, f.finish_s);
    EXPECT_DOUBLE_EQ(e.exec_s, f.exec_s);
    EXPECT_DOUBLE_EQ(e.aggregated_bw, f.aggregated_bw);
    EXPECT_DOUBLE_EQ(e.predicted_effbw, f.predicted_effbw);
    EXPECT_DOUBLE_EQ(e.measured_effbw, f.measured_effbw);
    EXPECT_DOUBLE_EQ(e.preserved_bw, f.preserved_bw);
  }
  EXPECT_DOUBLE_EQ(engine.makespan_s, fleet.makespan_s);
  ASSERT_EQ(fleet.servers.size(), 1u);
  EXPECT_EQ(engine.match_cache_hits, fleet.servers[0].match_cache_hits);
  EXPECT_EQ(engine.match_cache_misses, fleet.servers[0].match_cache_misses);
}

FleetResult run_one_server_fleet(const std::string& policy,
                                 const std::vector<workload::Job>& jobs,
                                 const sim::SimConfig& sim_config = {}) {
  ClusterConfig config;
  config.sim = sim_config;
  config.selection = "first-fit";
  return run_fleet({graph::dgx1_v100()}, policy, jobs, config);
}

TEST(Equivalence, PreserveOnThePaperMix) {
  workload::GeneratorConfig generator;
  generator.num_jobs = 80;
  generator.seed = 5;
  const auto jobs = workload::generate_jobs(generator);

  const auto engine =
      sim::run_simulation(graph::dgx1_v100(), "preserve", jobs);
  const auto fleet = run_one_server_fleet("preserve", jobs);
  expect_equivalent(engine, fleet);
}

TEST(Equivalence, GreedyOnThePaperMix) {
  workload::GeneratorConfig generator;
  generator.num_jobs = 60;
  generator.seed = 9;
  const auto jobs = workload::generate_jobs(generator);

  const auto engine = sim::run_simulation(graph::dgx1_v100(), "greedy", jobs);
  const auto fleet = run_one_server_fleet("greedy", jobs);
  expect_equivalent(engine, fleet);
}

TEST(Equivalence, PoissonArrivalsWithBackfill) {
  workload::FleetTraceConfig generator;
  generator.num_jobs = 80;
  generator.seed = 21;
  generator.max_gpus = 5;
  generator.arrival_rate_per_s = 0.02;
  const auto jobs = workload::generate_fleet_trace(generator);

  sim::SimConfig sim_config;
  sim_config.backfill = true;
  sim_config.backfill_window = 4;
  const auto engine = sim::run_simulation(graph::dgx1_v100(), "preserve",
                                          jobs, {}, sim_config);
  const auto fleet = run_one_server_fleet("preserve", jobs, sim_config);
  expect_equivalent(engine, fleet);
}

TEST(Equivalence, MatchCacheOff) {
  workload::GeneratorConfig generator;
  generator.num_jobs = 50;
  generator.seed = 3;
  const auto jobs = workload::generate_jobs(generator);

  sim::SimConfig sim_config;
  sim_config.use_match_cache = false;
  const auto engine = sim::run_simulation(graph::dgx1_v100(), "preserve",
                                          jobs, {}, sim_config);
  const auto fleet = run_one_server_fleet("preserve", jobs, sim_config);
  expect_equivalent(engine, fleet);
}

TEST(Equivalence, MultiThreadedProbesChangeNothing) {
  workload::GeneratorConfig generator;
  generator.num_jobs = 60;
  generator.seed = 29;
  const auto jobs = workload::generate_jobs(generator);

  const auto engine =
      sim::run_simulation(graph::dgx1_v100(), "preserve", jobs);
  ClusterConfig config;
  config.selection = "first-fit";
  config.threads = 8;
  const auto fleet = run_fleet({graph::dgx1_v100()}, "preserve", jobs, config);
  expect_equivalent(engine, fleet);
}

TEST(Equivalence, BothRejectTheStructurallyUnplaceable) {
  // A job bigger than the machine: the engine and the fleet throw the same
  // way (invalid_argument up front).
  workload::Job big;
  big.id = 1;
  big.workload = "vgg-16";
  big.num_gpus = 9;
  big.pattern = graph::PatternKind::kRing;

  sim::Simulator engine(graph::dgx1_v100(), policy::make_policy("preserve"));
  EXPECT_THROW(engine.run({big}), std::invalid_argument);
  FleetSimulator fleet({ServerSpec{"", graph::dgx1_v100(), "preserve"}});
  EXPECT_THROW(fleet.run({big}), std::invalid_argument);
}

}  // namespace
}  // namespace mapa::cluster
