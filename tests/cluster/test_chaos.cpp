// Chaos-schedule generation tests (cluster/chaos.hpp +
// workload::ChaosTraceConfig): seeded determinism, schedule shape
// (sorted, in-horizon faults, paired repairs, valid victims), kind
// weighting, config validation, and an end-to-end run where every job
// either survives into the records or lands in the dead-letter list.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "cluster/chaos.hpp"
#include "cluster/fleet.hpp"
#include "graph/topology.hpp"
#include "workload/generator.hpp"

namespace mapa::cluster {
namespace {

std::vector<ServerSpec> dgx_fleet(std::size_t n) {
  FleetArchetype arch;
  arch.name = "dgx";
  arch.topology = graph::TopologyHandle(graph::dgx1_v100());
  arch.policy = "topo-aware";
  return archetype_fleet_specs(n, {arch});
}

bool is_repair(FaultEvent::Kind kind) {
  return kind == FaultEvent::Kind::kRestore ||
         kind == FaultEvent::Kind::kGpuRecover ||
         kind == FaultEvent::Kind::kLinkRepair;
}

TEST(Chaos, SameSeedGeneratesTheSameSchedule) {
  workload::ChaosTraceConfig config = workload::chaos_trace_config(8, 800.0, 5);
  config.horizon_s = 2000.0;
  const auto specs = dgx_fleet(8);
  const auto a = generate_fault_schedule(config, specs);
  const auto b = generate_fault_schedule(config, specs);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s);
    EXPECT_EQ(a[i].server, b[i].server);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
    EXPECT_DOUBLE_EQ(a[i].bandwidth_factor, b[i].bandwidth_factor);
  }
  // A different seed moves the schedule.
  config.seed = 6;
  const auto c = generate_fault_schedule(config, specs);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].time_s != c[i].time_s || a[i].kind != c[i].kind ||
              a[i].server != c[i].server;
  }
  EXPECT_TRUE(differs);
}

TEST(Chaos, ScheduleIsSortedPairedAndInBounds) {
  workload::ChaosTraceConfig config = workload::chaos_trace_config(8, 400.0, 9);
  config.horizon_s = 1000.0;
  const auto specs = dgx_fleet(8);
  const auto events = generate_fault_schedule(config, specs);
  ASSERT_FALSE(events.empty());

  std::size_t faults = 0;
  std::size_t repairs = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (i > 0) {
      EXPECT_GE(e.time_s, events[i - 1].time_s);
    }
    EXPECT_LT(e.server, specs.size());
    const graph::Graph& topo = specs[e.server].topology.graph();
    if (is_repair(e.kind)) {
      ++repairs;  // repairs may land past the horizon
    } else {
      ++faults;
      EXPECT_LT(e.time_s, config.horizon_s);
    }
    switch (e.kind) {
      case FaultEvent::Kind::kGpuLoss:
      case FaultEvent::Kind::kGpuRecover:
        EXPECT_LT(static_cast<std::size_t>(e.u), topo.num_vertices());
        break;
      case FaultEvent::Kind::kLinkDegrade:
        EXPECT_NE(topo.edge(e.u, e.v), nullptr);
        EXPECT_TRUE(e.bandwidth_factor == 0.0 ||
                    (e.bandwidth_factor >= 0.25 && e.bandwidth_factor <= 0.75))
            << e.bandwidth_factor;
        break;
      case FaultEvent::Kind::kLinkRepair:
        EXPECT_NE(topo.edge(e.u, e.v), nullptr);
        break;
      default:
        break;
    }
  }
  // Every fault schedules exactly one repair.
  EXPECT_EQ(faults, repairs);
  EXPECT_EQ(faults + repairs, events.size());
}

TEST(Chaos, KindWeightsGateWhichFaultsAppear) {
  workload::ChaosTraceConfig config = workload::chaos_trace_config(4, 100.0, 3);
  config.horizon_s = 2000.0;
  config.server_crash_weight = 0.0;
  config.link_degrade_weight = 0.0;
  const auto events = generate_fault_schedule(config, dgx_fleet(4));
  ASSERT_FALSE(events.empty());
  for (const FaultEvent& e : events) {
    EXPECT_TRUE(e.kind == FaultEvent::Kind::kGpuLoss ||
                e.kind == FaultEvent::Kind::kGpuRecover);
  }
}

TEST(Chaos, ValidationRejectsBadConfigs) {
  const auto specs = dgx_fleet(2);
  workload::ChaosTraceConfig good = workload::chaos_trace_config(2, 100.0, 1);
  EXPECT_NO_THROW(generate_fault_schedule(good, specs));
  EXPECT_THROW(generate_fault_schedule(good, {}), std::invalid_argument);

  workload::ChaosTraceConfig bad = good;
  bad.mtbf_s = 0.0;
  EXPECT_THROW(generate_fault_schedule(bad, specs), std::invalid_argument);
  bad = good;
  bad.mttr_s = -1.0;
  EXPECT_THROW(generate_fault_schedule(bad, specs), std::invalid_argument);
  bad = good;
  bad.horizon_s = -1.0;
  EXPECT_THROW(generate_fault_schedule(bad, specs), std::invalid_argument);
  bad = good;
  bad.server_crash_weight = 0.0;
  bad.gpu_loss_weight = 0.0;
  bad.link_degrade_weight = 0.0;
  EXPECT_THROW(generate_fault_schedule(bad, specs), std::invalid_argument);
  bad = good;
  bad.link_down_chance = 1.5;
  EXPECT_THROW(generate_fault_schedule(bad, specs), std::invalid_argument);

  // The workload-side helper validates its own inputs and superposes
  // per-server fault clocks into a fleet-level MTBF.
  EXPECT_THROW(workload::chaos_trace_config(0, 100.0), std::invalid_argument);
  EXPECT_THROW(workload::chaos_trace_config(4, 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(workload::chaos_trace_config(10, 500.0).mtbf_s, 50.0);
}

TEST(Chaos, EveryJobSurvivesOrIsDeadLetteredUnderChaos) {
  // End-to-end conservation: under a dense chaos schedule no job is
  // silently dropped — each appears exactly once across the surviving
  // records and the dead-letter list.
  workload::ChaosTraceConfig chaos = workload::chaos_trace_config(16, 160.0, 3);
  chaos.horizon_s = 100.0;
  chaos.mttr_s = 20.0;
  const auto specs = dgx_fleet(16);
  ClusterConfig config;
  config.selection = "least-loaded";
  config.shards = 4;
  config.events = generate_fault_schedule(chaos, specs);
  ASSERT_FALSE(config.events.empty());
  const auto jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(16, 2, 5));

  FleetSimulator fleet(specs, config);
  const auto result = fleet.run(jobs);
  std::set<int> seen;
  for (const FleetRecord& r : result.records) {
    EXPECT_TRUE(seen.insert(r.record.job.id).second)
        << "job " << r.record.job.id << " appears twice";
  }
  for (const DeadLetter& d : result.dead_letters) {
    EXPECT_TRUE(seen.insert(d.job.id).second)
        << "job " << d.job.id << " appears twice";
    EXPECT_GE(d.retries, 1u);
  }
  EXPECT_EQ(seen.size(), jobs.size());
  // Kills split into re-queues and budget dead-letters; stuck-queue
  // dead-letters (no capacity left anywhere) add no kill of their own.
  EXPECT_GE(result.resilience.jobs_killed,
            result.resilience.jobs_dead_lettered > 0
                ? std::uint64_t{1}
                : std::uint64_t{0});
}

}  // namespace
}  // namespace mapa::cluster
