// The fleet/observability contract (cluster/fleet.hpp + obs/): enabling
// observation must never change what the fleet computes. Pins
//  * obs off vs fully on: byte-identical records, dead letters, and
//    resilience stats under a chaos schedule;
//  * zero_wall_clock: full-struct equality between two runs;
//  * the probe-ticket determinism of the shared archetype caches'
//    hit/miss split at threads=1 vs threads=8 (the old documented
//    exception this layer deleted);
//  * that an enabled observer actually collects: fleet counters that
//    agree with the result's own accounting, a loadable span set, and
//    a telemetry series that drains to zero.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/fleet.hpp"
#include "graph/topology.hpp"
#include "obs/obs.hpp"
#include "workload/generator.hpp"

namespace mapa::cluster {
namespace {

std::vector<ServerSpec> dgx_archetype_fleet(std::size_t n,
                                            const std::string& policy) {
  FleetArchetype arch;
  arch.name = "dgx";
  arch.topology = graph::TopologyHandle(graph::dgx1_v100());
  arch.policy = policy;
  return archetype_fleet_specs(n, {arch});
}

/// A chaos schedule that exercises every fault path the instrumentation
/// touches: a crash+restore (kill, requeue, retry, rescue windows), a
/// GPU loss+recover (topology fork and re-join), and a link degrade.
std::vector<FaultEvent> chaos_schedule() {
  return {{5.0, 1, FaultEvent::Kind::kServerCrash},
          {40.0, 1, FaultEvent::Kind::kRestore},
          {10.0, 2, FaultEvent::Kind::kGpuLoss, 3},
          {60.0, 2, FaultEvent::Kind::kGpuRecover, 3},
          {15.0, 4, FaultEvent::Kind::kLinkDegrade, 0, 1, 0.5},
          {70.0, 4, FaultEvent::Kind::kLinkRepair, 0, 1}};
}

ClusterConfig chaos_config(std::shared_ptr<obs::Observer> observer) {
  ClusterConfig config;
  config.selection = "least-loaded";
  config.shards = 4;
  config.threads = 4;
  config.seed = 7;
  config.events = chaos_schedule();
  config.observer = std::move(observer);
  return config;
}

void expect_identical_results(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].server, b.records[i].server) << i;
    EXPECT_EQ(a.records[i].retries, b.records[i].retries) << i;
    EXPECT_EQ(a.records[i].record.job, b.records[i].record.job) << i;
    EXPECT_EQ(a.records[i].record.gpus, b.records[i].record.gpus) << i;
    EXPECT_DOUBLE_EQ(a.records[i].record.start_s, b.records[i].record.start_s);
    EXPECT_DOUBLE_EQ(a.records[i].record.finish_s,
                     b.records[i].record.finish_s);
    EXPECT_DOUBLE_EQ(a.records[i].record.measured_effbw,
                     b.records[i].record.measured_effbw);
  }
  ASSERT_EQ(a.dead_letters.size(), b.dead_letters.size());
  for (std::size_t i = 0; i < a.dead_letters.size(); ++i) {
    EXPECT_EQ(a.dead_letters[i].job.id, b.dead_letters[i].job.id);
    EXPECT_EQ(a.dead_letters[i].retries, b.dead_letters[i].retries);
    EXPECT_DOUBLE_EQ(a.dead_letters[i].time_s, b.dead_letters[i].time_s);
  }
  EXPECT_EQ(a.resilience.jobs_killed, b.resilience.jobs_killed);
  EXPECT_EQ(a.resilience.jobs_requeued, b.resilience.jobs_requeued);
  EXPECT_EQ(a.resilience.jobs_rematched, b.resilience.jobs_rematched);
  EXPECT_EQ(a.resilience.jobs_dead_lettered, b.resilience.jobs_dead_lettered);
  EXPECT_EQ(a.resilience.topology_forks, b.resilience.topology_forks);
  EXPECT_EQ(a.resilience.archetype_rejoins, b.resilience.archetype_rejoins);
  EXPECT_EQ(a.resilience.replace_latency_s, b.resilience.replace_latency_s);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t s = 0; s < a.servers.size(); ++s) {
    EXPECT_EQ(a.servers[s].jobs_placed, b.servers[s].jobs_placed) << s;
    EXPECT_EQ(a.servers[s].match_cache_hits, b.servers[s].match_cache_hits)
        << s;
    EXPECT_EQ(a.servers[s].match_cache_misses,
              b.servers[s].match_cache_misses)
        << s;
    EXPECT_DOUBLE_EQ(a.servers[s].utilization, b.servers[s].utilization);
  }
}

TEST(Observability, FullyEnabledObserverChangesNothingUnderChaos) {
  const auto jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(8, /*jobs_per_server=*/6,
                                         /*seed=*/7));

  FleetSimulator off_fleet(dgx_archetype_fleet(8, "preserve"),
                           chaos_config(nullptr));
  const FleetResult off = off_fleet.run(jobs);
  // The chaos schedule must actually bite, or this pin proves nothing.
  ASSERT_GT(off.resilience.jobs_killed, 0u);
  ASSERT_GT(off.resilience.topology_forks, 0u);

  obs::ObsConfig obs_config;
  obs_config.tracing = true;
  obs_config.counters = true;
  obs_config.telemetry_every_ticks = 4;
  auto observer = std::make_shared<obs::Observer>(obs_config);
  FleetSimulator on_fleet(dgx_archetype_fleet(8, "preserve"),
                          chaos_config(observer));
  const FleetResult on = on_fleet.run(jobs);

  expect_identical_results(off, on);

  // And the observer did observe: spans from the fault machinery, fleet
  // counters agreeing with the result's own accounting, telemetry that
  // drains to an idle fleet.
  ASSERT_NE(observer->trace(), nullptr);
  EXPECT_GT(observer->trace()->size(), 0u);
  bool saw_fault_span = false;
  for (const obs::TraceEvent& e : observer->trace()->sorted_events()) {
    if (std::string(e.category) == "fault") saw_fault_span = true;
  }
  EXPECT_TRUE(saw_fault_span);

  ASSERT_NE(observer->registry(), nullptr);
  EXPECT_EQ(observer->registry()->counter("fleet.kills").value(),
            on.resilience.jobs_killed);
  EXPECT_EQ(observer->registry()->counter("fleet.dead_letters").value(),
            on.resilience.jobs_dead_lettered);
  EXPECT_EQ(observer->registry()->counter("fleet.topology_forks").value(),
            on.resilience.topology_forks);
  // fleet.placements counts every placement event; ServerResult::
  // jobs_placed only the surviving ones (a kill decrements it). Every
  // kill therefore accounts for exactly one extra placement event.
  std::uint64_t placed = 0;
  for (const ServerResult& sr : on.servers) placed += sr.jobs_placed;
  EXPECT_EQ(observer->registry()->counter("fleet.placements").value(),
            placed + on.resilience.jobs_killed);

  ASSERT_NE(observer->telemetry(), nullptr);
  ASSERT_GT(observer->telemetry()->size(), 1u);
  const obs::TelemetrySample& last = observer->telemetry()->samples().back();
  EXPECT_EQ(last.jobs_running, 0u);
  EXPECT_EQ(last.jobs_pending, 0u);
  EXPECT_EQ(last.jobs_finished, on.records.size());
  EXPECT_EQ(last.free_gpus, last.total_gpus);
  EXPECT_EQ(last.dead_letters, on.resilience.jobs_dead_lettered);
}

TEST(Observability, ZeroWallClockMakesRunsCompareByteForByte) {
  const auto jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(8, /*jobs_per_server=*/4,
                                         /*seed=*/11));

  const auto run_scrubbed = [&] {
    obs::ObsConfig obs_config;
    obs_config.zero_wall_clock = true;  // independent of collection flags
    ClusterConfig config;
    config.selection = "least-loaded";
    config.shards = 2;
    config.threads = 4;
    config.observer = std::make_shared<obs::Observer>(obs_config);
    FleetSimulator fleet(dgx_archetype_fleet(8, "preserve"), config);
    return fleet.run(jobs);
  };

  const FleetResult a = run_scrubbed();
  const FleetResult b = run_scrubbed();

  // With the wall-clock fields scrubbed, EVERY field — including the
  // ones the determinism contract normally has to except — compares
  // exactly across the two runs.
  EXPECT_EQ(a.total_scheduling_ms, 0.0);
  EXPECT_EQ(b.total_scheduling_ms, 0.0);
  expect_identical_results(a, b);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].record.scheduling_overhead_ms, 0.0);
    EXPECT_EQ(a.records[i].record.scheduling_overhead_ms,
              b.records[i].record.scheduling_overhead_ms);
  }
}

TEST(Observability, SharedCacheHitMissSplitIsThreadCountIndependent) {
  // The probe-ticket protocol's whole point: with one cache shared by
  // the archetype's servers and parallel probe workers racing on it,
  // the hit/miss split used to depend on probe completion order. Probes
  // now stage through CacheProbeTickets and the dispatch loop commits
  // them in ascending server order, so threads=1 and threads=8 must
  // agree exactly — records AND cache accounting.
  const auto jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(16, /*jobs_per_server=*/4,
                                         /*seed=*/13));

  std::vector<FleetResult> results;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ClusterConfig config;
    config.selection = "least-loaded";
    config.shards = 2;  // 8 servers per shard -> real probe fan-out
    config.threads = threads;
    FleetSimulator fleet(dgx_archetype_fleet(16, "preserve"), config);
    results.push_back(fleet.run(jobs));
  }

  const FleetResult& a = results[0];
  const FleetResult& b = results[1];
  expect_identical_results(a, b);
  // The comparison must not be vacuous: the shared cache served real
  // traffic through its primary server's accounting.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const ServerResult& sr : a.servers) {
    hits += sr.match_cache_hits;
    misses += sr.match_cache_misses;
  }
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, 0u);
}

}  // namespace
}  // namespace mapa::cluster
