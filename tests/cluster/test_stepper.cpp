// Tick-driven FleetSimulator session API (start/submit/step/finish):
// run() equivalence by construction, incremental submission mid-session,
// early release outcomes, live fault injection, the unplaceable outbox,
// and session lifecycle errors. This is the substrate the svc/ daemon
// builds on.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "cluster/fleet.hpp"
#include "graph/topology.hpp"
#include "workload/generator.hpp"

namespace mapa::cluster {
namespace {

std::vector<graph::Graph> dgx_fleet(std::size_t n) {
  std::vector<graph::Graph> fleet;
  for (std::size_t i = 0; i < n; ++i) fleet.push_back(graph::dgx1_v100());
  return fleet;
}

std::vector<ServerSpec> dgx_specs(std::size_t n,
                                  const std::string& policy = "preserve") {
  std::vector<ServerSpec> specs;
  for (auto& g : dgx_fleet(n)) {
    ServerSpec spec;
    spec.topology = std::move(g);
    spec.policy = policy;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<workload::Job> trace(std::size_t num_jobs, std::uint64_t seed) {
  workload::FleetTraceConfig config;
  config.num_jobs = num_jobs;
  config.seed = seed;
  config.max_gpus = 5;
  config.arrival_rate_per_s = 0.1;
  return workload::generate_fleet_trace(config);
}

void expect_same_records(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const sim::JobRecord& x = a.records[i].record;
    const sim::JobRecord& y = b.records[i].record;
    EXPECT_EQ(a.records[i].server, b.records[i].server);
    EXPECT_EQ(a.records[i].retries, b.records[i].retries);
    EXPECT_EQ(x.job, y.job);
    EXPECT_EQ(x.gpus, y.gpus);
    EXPECT_DOUBLE_EQ(x.queued_s, y.queued_s);
    EXPECT_DOUBLE_EQ(x.start_s, y.start_s);
    EXPECT_DOUBLE_EQ(x.finish_s, y.finish_s);
    EXPECT_DOUBLE_EQ(x.exec_s, y.exec_s);
  }
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(Stepper, ManualSessionMatchesRun) {
  const auto jobs = trace(100, 11);

  FleetSimulator batch(dgx_specs(4));
  const FleetResult expected = batch.run(jobs);

  FleetSimulator ticked(dgx_specs(4));
  FleetSimulator::StepOptions options;
  options.expected_jobs = jobs.size();
  ticked.start(options);
  EXPECT_TRUE(ticked.active());
  for (const auto& job : jobs) ticked.submit(job);
  while (ticked.step()) {
  }
  EXPECT_TRUE(ticked.idle());
  const FleetResult actual = ticked.finish();
  EXPECT_FALSE(ticked.active());

  expect_same_records(expected, actual);
  EXPECT_EQ(expected.dead_letters.size(), actual.dead_letters.size());
}

TEST(Stepper, ArmedSessionMatchesUnarmedRun) {
  // The daemon always arms the fault machinery (release() needs the
  // live-job index); with an empty fault schedule that must not change a
  // single record.
  const auto jobs = trace(80, 23);

  FleetSimulator batch(dgx_specs(3));
  const FleetResult expected = batch.run(jobs);

  FleetSimulator armed(dgx_specs(3));
  FleetSimulator::StepOptions options;
  options.arm_faults = true;
  options.collect_unplaceable = true;
  armed.start(options);
  for (const auto& job : jobs) armed.submit(job);
  while (armed.step()) {
  }
  EXPECT_TRUE(armed.take_unplaceable().empty());
  expect_same_records(expected, armed.finish());
}

TEST(Stepper, IncrementalSubmissionBetweenSteps) {
  // Jobs submitted AFTER the session started (and after time advanced)
  // still place; arrival times in the past are honored as "now".
  FleetSimulator fleet(dgx_specs(2));
  FleetSimulator::StepOptions options;
  options.arm_faults = true;
  fleet.start(options);

  const auto jobs = trace(40, 3);
  for (std::size_t i = 0; i < 20; ++i) fleet.submit(jobs[i]);
  while (fleet.step()) {
  }
  EXPECT_TRUE(fleet.idle());
  const double mid = fleet.sim_now();
  EXPECT_GT(mid, 0.0);

  for (std::size_t i = 20; i < 40; ++i) fleet.submit(jobs[i]);
  EXPECT_FALSE(fleet.idle());
  while (fleet.step()) {
  }

  const FleetResult result = fleet.finish();
  EXPECT_EQ(result.records.size(), jobs.size());
  std::set<int> ids;
  for (const auto& r : result.records) {
    EXPECT_TRUE(ids.insert(r.record.job.id).second);
  }
}

TEST(Stepper, ReleaseOutcomes) {
  FleetSimulator fleet(dgx_specs(1));
  FleetSimulator::StepOptions options;
  options.arm_faults = true;
  fleet.start(options);

  workload::Job big;
  big.id = 1;
  big.workload = "resnet-50";
  big.num_gpus = 8;  // fills the whole server
  big.pattern = graph::PatternKind::kRing;
  fleet.submit(big);

  workload::Job blocked = big;
  blocked.id = 2;            // queues behind job 1...
  blocked.arrival_time_s = 1.0;  // ...arriving before job 1 finishes
  fleet.submit(blocked);

  // Step 1 places job 1 at t=0, then advances only to job 2's arrival
  // (the nearest event), admitting it into a queue job 1 still blocks.
  fleet.step();
  EXPECT_DOUBLE_EQ(fleet.sim_now(), 1.0);
  EXPECT_EQ(fleet.release(3), FleetSimulator::ReleaseOutcome::kNotFound);
  EXPECT_EQ(fleet.release(2), FleetSimulator::ReleaseOutcome::kQueued);
  EXPECT_EQ(fleet.release(1), FleetSimulator::ReleaseOutcome::kRunning);
  // Released mid-run: its record is truncated to the elapsed time.
  while (fleet.step()) {
  }
  const FleetResult result = fleet.finish();
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].record.job.id, 1);
  EXPECT_DOUBLE_EQ(result.records[0].record.finish_s, 1.0);
  EXPECT_DOUBLE_EQ(result.records[0].record.finish_s,
                   result.records[0].record.start_s +
                       result.records[0].record.exec_s);
}

TEST(Stepper, ReleaseRequiresArmedSession) {
  FleetSimulator fleet(dgx_specs(1));
  fleet.start();
  EXPECT_THROW(fleet.release(1), std::logic_error);
  fleet.finish();
}

TEST(Stepper, InjectFaultMidSession) {
  FleetSimulator fleet(dgx_specs(2));
  FleetSimulator::StepOptions options;
  options.arm_faults = true;
  fleet.start(options);

  const auto jobs = trace(30, 7);
  for (const auto& job : jobs) fleet.submit(job);
  for (int i = 0; i < 5; ++i) fleet.step();

  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kServerCrash;
  crash.server = 0;
  crash.time_s = fleet.sim_now() + 1.0;
  fleet.inject_fault(crash);

  while (fleet.step()) {
  }
  const FleetResult result = fleet.finish();
  // Every job resolved: either a surviving record or a dead letter.
  EXPECT_EQ(result.records.size() + result.dead_letters.size(), jobs.size());
}

TEST(Stepper, UnplaceableOutboxInsteadOfThrow) {
  FleetSimulator fleet(dgx_specs(1));
  FleetSimulator::StepOptions options;
  options.collect_unplaceable = true;
  fleet.start(options);

  // submit() validates against the biggest server, so a job can only
  // become unplaceable when the rotation shrinks afterwards: drain the
  // sole server, then submit a full-server job.
  workload::Job job;
  job.id = 1;
  job.workload = "resnet-50";
  job.num_gpus = 8;
  job.pattern = graph::PatternKind::kRing;

  FaultEvent drain;
  drain.kind = FaultEvent::Kind::kDrain;
  drain.server = 0;
  drain.time_s = 0.0;
  fleet.inject_fault(drain);
  fleet.submit(job);

  while (fleet.step()) {
  }
  const auto unplaceable = fleet.take_unplaceable();
  ASSERT_EQ(unplaceable.size(), 1u);
  EXPECT_EQ(fleet.submitted_jobs()[unplaceable[0]].id, 1);
  // The outbox is take-once.
  EXPECT_TRUE(fleet.take_unplaceable().empty());
  const FleetResult result = fleet.finish();
  EXPECT_TRUE(result.records.empty());
}

TEST(Stepper, LifecycleErrors) {
  FleetSimulator fleet(dgx_specs(1));
  EXPECT_THROW(fleet.step(), std::logic_error);
  EXPECT_THROW(fleet.finish(), std::logic_error);
  EXPECT_THROW((void)fleet.sim_now(), std::logic_error);
  fleet.start();
  EXPECT_THROW(fleet.start(), std::logic_error);

  workload::Job too_big;
  too_big.id = 1;
  too_big.workload = "resnet-50";
  too_big.num_gpus = 9;  // dgx1 has 8
  EXPECT_THROW(fleet.submit(too_big), std::invalid_argument);

  (void)fleet.finish();
  EXPECT_FALSE(fleet.active());
  // A finished simulator can host a fresh batch run.
  const auto jobs = trace(10, 2);
  EXPECT_EQ(fleet.run(jobs).records.size(), jobs.size());
}

}  // namespace
}  // namespace mapa::cluster
