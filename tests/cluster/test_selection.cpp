// Unit tests for the fleet server-selection policies (cluster/selection.hpp)
// over hand-built probe sets: winner choice, tie-breaking toward the lowest
// server index, and the probe score's Algorithm-1 objective switch.

#include <gtest/gtest.h>

#include <optional>

#include "cluster/selection.hpp"

namespace mapa::cluster {
namespace {

ServerProbe make_probe(std::size_t server, std::size_t free_gpus,
                       std::size_t total_gpus,
                       std::optional<double> score = std::nullopt,
                       bool sensitive = true) {
  ServerProbe p;
  p.server = server;
  p.free_gpus = free_gpus;
  p.total_gpus = total_gpus;
  p.bandwidth_sensitive = sensitive;
  if (score) {
    policy::AllocationResult result;
    if (sensitive) {
      result.predicted_effbw = *score;
    } else {
      result.preserved_bw = *score;
    }
    p.placement = std::move(result);
  }
  return p;
}

TEST(Selection, ProbeScoreFollowsSensitivity) {
  policy::AllocationResult result;
  result.predicted_effbw = 80.0;
  result.preserved_bw = 120.0;

  ServerProbe sensitive;
  sensitive.bandwidth_sensitive = true;
  sensitive.placement = result;
  EXPECT_DOUBLE_EQ(sensitive.score(), 80.0);

  ServerProbe insensitive;
  insensitive.bandwidth_sensitive = false;
  insensitive.placement = result;
  EXPECT_DOUBLE_EQ(insensitive.score(), 120.0);

  ServerProbe no_fit;
  EXPECT_DOUBLE_EQ(no_fit.score(), 0.0);
}

TEST(Selection, FirstFitPicksFirstFittingProbe) {
  const auto selection = make_selection("first-fit");
  const std::vector<ServerProbe> probes = {
      make_probe(0, 2, 8),             // no placement: does not fit
      make_probe(1, 3, 8, 10.0),
      make_probe(2, 8, 8, 99.0),
  };
  const auto pick = selection->select(probes);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(probes[*pick].server, 1u);
}

TEST(Selection, NoFittingProbeReturnsNullopt) {
  for (const std::string& name : selection_names()) {
    const auto selection = make_selection(name);
    EXPECT_FALSE(selection->select({}).has_value()) << name;
    const std::vector<ServerProbe> blocked = {make_probe(0, 0, 8),
                                              make_probe(1, 1, 8)};
    EXPECT_FALSE(selection->select(blocked).has_value()) << name;
  }
}

TEST(Selection, LeastLoadedPicksHighestFreeFraction) {
  const auto selection = make_selection("least-loaded");
  // 4/8 = 0.5 beats 6/16 = 0.375 even though 6 > 4 absolute.
  const std::vector<ServerProbe> probes = {make_probe(0, 4, 8, 1.0),
                                           make_probe(1, 6, 16, 1.0)};
  const auto pick = selection->select(probes);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(probes[*pick].server, 0u);
}

TEST(Selection, LeastLoadedTieBreaksLowestServerIndex) {
  const auto selection = make_selection("least-loaded");
  const std::vector<ServerProbe> probes = {make_probe(2, 4, 8, 1.0),
                                           make_probe(5, 8, 16, 9.0)};
  const auto pick = selection->select(probes);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(probes[*pick].server, 2u);
}

TEST(Selection, PackPicksLowestFreeFraction) {
  const auto selection = make_selection("pack");
  const std::vector<ServerProbe> probes = {make_probe(0, 8, 8, 1.0),
                                           make_probe(1, 3, 8, 1.0),
                                           make_probe(2, 5, 8, 1.0)};
  const auto pick = selection->select(probes);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(probes[*pick].server, 1u);
}

TEST(Selection, BestScorePicksHighestScore) {
  const auto selection = make_selection("best-score");
  const std::vector<ServerProbe> probes = {make_probe(0, 8, 8, 50.0),
                                           make_probe(1, 8, 8, 125.0),
                                           make_probe(2, 8, 8, 87.0)};
  const auto pick = selection->select(probes);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(probes[*pick].server, 1u);
}

TEST(Selection, BestScoreTieBreaksLowestServerIndex) {
  const auto selection = make_selection("best-score");
  const std::vector<ServerProbe> probes = {make_probe(3, 2, 8, 50.0),
                                           make_probe(4, 8, 8, 50.0)};
  const auto pick = selection->select(probes);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(probes[*pick].server, 3u);
}

TEST(Selection, BestScorePackTieBreaksTowardMostLoaded) {
  const auto selection = make_selection("best-score-pack");
  const std::vector<ServerProbe> probes = {make_probe(0, 8, 8, 50.0),
                                           make_probe(1, 2, 8, 50.0),
                                           make_probe(2, 5, 8, 50.0)};
  const auto pick = selection->select(probes);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(probes[*pick].server, 1u);
}

TEST(Selection, BestScoreSpreadTieBreaksTowardLeastLoaded) {
  const auto selection = make_selection("best-score-spread");
  const std::vector<ServerProbe> probes = {make_probe(0, 2, 8, 50.0),
                                           make_probe(1, 8, 8, 50.0),
                                           make_probe(2, 5, 8, 50.0)};
  const auto pick = selection->select(probes);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(probes[*pick].server, 1u);
}

TEST(Selection, BestScoreVariantsStillPreferHigherScore) {
  for (const std::string& name :
       {std::string("best-score-pack"), std::string("best-score-spread")}) {
    const auto selection = make_selection(name);
    const std::vector<ServerProbe> probes = {make_probe(0, 1, 8, 10.0),
                                             make_probe(1, 8, 8, 90.0)};
    const auto pick = selection->select(probes);
    ASSERT_TRUE(pick.has_value()) << name;
    EXPECT_EQ(probes[*pick].server, 1u) << name;
  }
}

TEST(Selection, FactoryRoundTripsEveryName) {
  ASSERT_EQ(selection_names().size(), 6u);
  for (const std::string& name : selection_names()) {
    const auto selection = make_selection(name);
    ASSERT_NE(selection, nullptr);
    EXPECT_EQ(selection->name(), name);
  }
}

TEST(Selection, FactoryRejectsUnknownName) {
  EXPECT_THROW(make_selection("round-robin"), std::invalid_argument);
  EXPECT_THROW(make_selection(""), std::invalid_argument);
}

}  // namespace
}  // namespace mapa::cluster
