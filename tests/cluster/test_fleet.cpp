// Fleet-scheduler integration tests: completion accounting, the
// thread-count determinism contract, selection-policy placement behavior,
// drain/restore events, heterogeneous fleets, and the fleet metrics
// helpers.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cluster/fleet.hpp"
#include "cluster/metrics.hpp"
#include "graph/topology.hpp"
#include "workload/generator.hpp"

namespace mapa::cluster {
namespace {

workload::Job job_of(int id, const std::string& workload, std::size_t gpus,
                     double arrival_s = 0.0) {
  workload::Job j;
  j.id = id;
  j.workload = workload;
  j.num_gpus = gpus;
  j.pattern = gpus <= 1 ? graph::PatternKind::kSingle
                        : graph::PatternKind::kRing;
  j.bandwidth_sensitive =
      workload::workload_by_name(workload).bandwidth_sensitive;
  j.arrival_time_s = arrival_s;
  return j;
}

std::vector<graph::Graph> dgx_fleet(std::size_t n) {
  std::vector<graph::Graph> fleet;
  for (std::size_t i = 0; i < n; ++i) fleet.push_back(graph::dgx1_v100());
  return fleet;
}

std::vector<workload::Job> trace(std::size_t num_jobs, std::uint64_t seed,
                                 std::size_t max_gpus = 5) {
  workload::FleetTraceConfig config;
  config.num_jobs = num_jobs;
  config.seed = seed;
  config.max_gpus = max_gpus;
  config.arrival_rate_per_s = 0.1;
  return workload::generate_fleet_trace(config);
}

TEST(Fleet, CompletesEveryJobExactlyOnce) {
  const auto jobs = trace(120, 7);
  const auto result = run_fleet(dgx_fleet(4), "preserve", jobs);
  EXPECT_EQ(result.records.size(), jobs.size());
  std::set<int> ids;
  for (const auto& r : result.records) {
    EXPECT_TRUE(ids.insert(r.record.job.id).second);
    EXPECT_LT(r.server, result.servers.size());
  }
  std::size_t placed = 0;
  for (const auto& s : result.servers) placed += s.jobs_placed;
  EXPECT_EQ(placed, jobs.size());
}

TEST(Fleet, DeterministicAcrossThreadCounts) {
  const auto jobs = trace(100, 11);
  ClusterConfig config;
  config.selection = "best-score";

  config.threads = 1;
  FleetSimulator single(
      {ServerSpec{"", graph::dgx1_v100(), "preserve"},
       ServerSpec{"", graph::nvswitch_16(), "preserve"},
       ServerSpec{"", graph::torus2d_16(), "preserve"},
       ServerSpec{"", graph::summit_node(), "preserve"}},
      config);
  const auto a = single.run(jobs);

  config.threads = 8;
  FleetSimulator threaded(
      {ServerSpec{"", graph::dgx1_v100(), "preserve"},
       ServerSpec{"", graph::nvswitch_16(), "preserve"},
       ServerSpec{"", graph::torus2d_16(), "preserve"},
       ServerSpec{"", graph::summit_node(), "preserve"}},
      config);
  const auto b = threaded.run(jobs);

  // Everything but the wall-clock fields must be byte-identical (the
  // cluster/fleet.hpp determinism contract).
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].server, b.records[i].server);
    EXPECT_EQ(a.records[i].record.job, b.records[i].record.job);
    EXPECT_EQ(a.records[i].record.gpus, b.records[i].record.gpus);
    EXPECT_DOUBLE_EQ(a.records[i].record.start_s, b.records[i].record.start_s);
    EXPECT_DOUBLE_EQ(a.records[i].record.finish_s,
                     b.records[i].record.finish_s);
    EXPECT_DOUBLE_EQ(a.records[i].record.predicted_effbw,
                     b.records[i].record.predicted_effbw);
  }
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t s = 0; s < a.servers.size(); ++s) {
    EXPECT_EQ(a.servers[s].jobs_placed, b.servers[s].jobs_placed);
    EXPECT_DOUBLE_EQ(a.servers[s].utilization, b.servers[s].utilization);
    EXPECT_EQ(a.servers[s].match_cache_hits, b.servers[s].match_cache_hits);
    EXPECT_EQ(a.servers[s].match_cache_misses,
              b.servers[s].match_cache_misses);
  }
}

TEST(Fleet, FirstFitKeepsFillingTheLowestServer) {
  ClusterConfig config;
  config.selection = "first-fit";
  const auto result = run_fleet(
      dgx_fleet(2), "preserve",
      {job_of(1, "vgg-16", 1), job_of(2, "vgg-16", 1)}, config);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].server, 0u);
  EXPECT_EQ(result.records[1].server, 0u);
}

TEST(Fleet, LeastLoadedSpreadsAcrossServers) {
  ClusterConfig config;
  config.selection = "least-loaded";
  const auto result = run_fleet(
      dgx_fleet(2), "preserve",
      {job_of(1, "vgg-16", 1), job_of(2, "vgg-16", 1)}, config);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].server, 0u);  // tie on empty fleet -> lowest
  EXPECT_EQ(result.records[1].server, 1u);  // server 0 now has less free
}

TEST(Fleet, PackConsolidatesOnOneServer) {
  ClusterConfig config;
  config.selection = "pack";
  const auto result = run_fleet(
      dgx_fleet(2), "preserve",
      {job_of(1, "vgg-16", 1), job_of(2, "vgg-16", 1)}, config);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].server, 0u);
  EXPECT_EQ(result.records[1].server, 0u);
}

TEST(Fleet, BestScorePrefersTheBetterTopology) {
  // A bandwidth-sensitive ring scores a far higher predicted EffBW on the
  // NVLink cube-mesh than on a PCIe-only box; first-fit would settle for
  // server 0, best-score must not.
  ClusterConfig config;
  config.selection = "best-score";
  const auto result =
      run_fleet({graph::pcie_only(8), graph::dgx1_v100()}, "preserve",
                {job_of(1, "vgg-16", 3)}, config);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].server, 1u);
}

TEST(Fleet, DrainedServerAcceptsNothing) {
  ClusterConfig config;
  config.selection = "least-loaded";  // would otherwise use both servers
  config.events = {{0.0, 1, ServerEvent::Kind::kDrain}};
  const auto result =
      run_fleet(dgx_fleet(2), "preserve", trace(40, 13), config);
  EXPECT_EQ(result.records.size(), 40u);
  for (const auto& r : result.records) EXPECT_EQ(r.server, 0u);
  EXPECT_EQ(result.servers[1].jobs_placed, 0u);
  EXPECT_DOUBLE_EQ(result.servers[1].utilization, 0.0);
}

TEST(Fleet, RestoreBringsAServerBack) {
  // The only server is drained until t=100: jobs queued at t=0 must wait
  // for the restore event even though the machine is idle.
  ClusterConfig config;
  config.events = {{0.0, 0, ServerEvent::Kind::kDrain},
                   {100.0, 0, ServerEvent::Kind::kRestore}};
  const auto result = run_fleet(
      dgx_fleet(1), "preserve",
      {job_of(1, "vgg-16", 2), job_of(2, "gmm", 2)}, config);
  ASSERT_EQ(result.records.size(), 2u);
  for (const auto& r : result.records) EXPECT_GE(r.record.start_s, 100.0);
}

TEST(Fleet, BigJobsLandOnBigServers) {
  // Baseline policy: enumerating a 12-vertex ring on the K16 NVSwitch is
  // combinatorially infeasible, and placement-not-quality is the point.
  const auto result =
      run_fleet({graph::dgx1_v100(), graph::nvswitch_16()}, "baseline",
                {job_of(1, "vgg-16", 12), job_of(2, "vgg-16", 10)});
  ASSERT_EQ(result.records.size(), 2u);
  for (const auto& r : result.records) EXPECT_EQ(r.server, 1u);
}

TEST(Fleet, JobBiggerThanEveryServerThrows) {
  FleetSimulator fleet({ServerSpec{"", graph::dgx1_v100(), "preserve"}});
  EXPECT_THROW(fleet.run({job_of(1, "vgg-16", 9)}), std::invalid_argument);
}

TEST(Fleet, FullyDrainedFleetThrowsForUnplaceableJob) {
  ClusterConfig config;
  config.events = {{0.0, 0, ServerEvent::Kind::kDrain}};
  FleetSimulator fleet({ServerSpec{"", graph::dgx1_v100(), "preserve"}},
                       config);
  EXPECT_THROW(fleet.run({job_of(1, "vgg-16", 2)}), std::runtime_error);
}

TEST(Fleet, ConstructorValidatesConfig) {
  EXPECT_THROW(FleetSimulator({}), std::invalid_argument);

  ClusterConfig bad_selection;
  bad_selection.selection = "no-such-selection";
  EXPECT_THROW(FleetSimulator({ServerSpec{"", graph::dgx1_v100()}},
                              bad_selection),
               std::invalid_argument);

  ClusterConfig bad_event;
  bad_event.events = {{0.0, 5, ServerEvent::Kind::kDrain}};
  EXPECT_THROW(FleetSimulator({ServerSpec{"", graph::dgx1_v100()}},
                              bad_event),
               std::invalid_argument);

  EXPECT_THROW(FleetSimulator({ServerSpec{"", graph::dgx1_v100(),
                                          "no-such-policy"}}),
               std::invalid_argument);
}

TEST(Fleet, TrailingEventsDoNotInflateTheMakespan) {
  // A maintenance window scheduled long after the last job completes is a
  // pure no-op: it must not drag makespan (and thus throughput and
  // utilization) out to the event time.
  const auto jobs = std::vector<workload::Job>{job_of(1, "vgg-16", 2)};
  const auto plain = run_fleet(dgx_fleet(1), "preserve", jobs);

  ClusterConfig config;
  config.events = {{1.0e6, 0, ServerEvent::Kind::kDrain},
                   {2.0e6, 0, ServerEvent::Kind::kRestore}};
  const auto with_trailing = run_fleet(dgx_fleet(1), "preserve", jobs, config);
  EXPECT_DOUBLE_EQ(with_trailing.makespan_s, plain.makespan_s);
  EXPECT_DOUBLE_EQ(with_trailing.servers[0].utilization,
                   plain.servers[0].utilization);
}

TEST(Fleet, DuplicateServerNamesAreRejected) {
  EXPECT_THROW(
      FleetSimulator({ServerSpec{"rack-a", graph::dgx1_v100(), "preserve"},
                      ServerSpec{"rack-a", graph::nvswitch_16(), "preserve"}}),
      std::invalid_argument);
}

TEST(Fleet, FirstFitProbesStopAtTheFirstFit) {
  // Every job fits server 0, so the lazy first-fit probe path must never
  // touch server 1's matcher: zero probes answered, zero memo replays.
  // (The two identical servers share one archetype cache, reported by the
  // primary — server 0 — so server 1's cache counters are zero by
  // attribution; the probe counters are the per-server laziness proof.)
  ClusterConfig config;
  config.selection = "first-fit";
  const auto result = run_fleet(
      dgx_fleet(2), "preserve",
      {job_of(1, "vgg-16", 2), job_of(2, "gmm", 2), job_of(3, "jacobi", 2)},
      config);
  EXPECT_EQ(result.servers[0].jobs_placed, 3u);
  EXPECT_GT(result.servers[0].probes, 0u);
  EXPECT_EQ(result.servers[1].probes, 0u);
  EXPECT_EQ(result.servers[1].probe_memo_hits, 0u);
  EXPECT_TRUE(result.servers[0].cache_primary);
  EXPECT_FALSE(result.servers[1].cache_primary);
  EXPECT_EQ(result.servers[1].match_cache_hits, 0u);
  EXPECT_EQ(result.servers[1].match_cache_misses, 0u);
}

TEST(Fleet, ReusedSimulatorReportsPerRunCacheStats) {
  FleetSimulator fleet({ServerSpec{"", graph::dgx1_v100(), "preserve"}});
  const auto jobs =
      std::vector<workload::Job>{job_of(1, "vgg-16", 2), job_of(2, "gmm", 2)};
  const auto first = fleet.run(jobs);
  const auto second = fleet.run(jobs);
  // The replay hits the warmed cache, but counters must be per-run deltas,
  // not cumulative: total lookups (exact hits + misses + superset-filter
  // hits) stay equal across the two runs.
  EXPECT_EQ(first.servers[0].match_cache_hits +
                first.servers[0].match_cache_misses +
                first.servers[0].match_cache_delta_hits,
            second.servers[0].match_cache_hits +
                second.servers[0].match_cache_misses +
                second.servers[0].match_cache_delta_hits);
  EXPECT_GT(second.servers[0].match_cache_hits,
            first.servers[0].match_cache_hits);
}

TEST(Fleet, ServerNamesDefaultToTopologyAndIndex) {
  FleetSimulator fleet({ServerSpec{"", graph::dgx1_v100(), "preserve"},
                        ServerSpec{"rack-b", graph::dgx1_v100(), "preserve"}});
  const auto result = fleet.run({job_of(1, "vgg-16", 1)});
  EXPECT_EQ(result.servers[0].name,
            graph::dgx1_v100().name() + "-0");
  EXPECT_EQ(result.servers[1].name, "rack-b");
}

TEST(FleetMetrics, UtilizationAndWaitsAreSane) {
  const auto jobs = trace(80, 17);
  ClusterConfig config;
  config.selection = "least-loaded";
  const auto result = run_fleet(dgx_fleet(3), "preserve", jobs, config);

  for (const auto& s : result.servers) {
    EXPECT_GE(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0 + 1e-9);
  }
  const auto waits = queue_wait_box_plot(result);
  EXPECT_EQ(waits.count, jobs.size());
  EXPECT_GE(waits.min, 0.0);
  EXPECT_GT(result.throughput_jobs_per_hour(), 0.0);
  EXPECT_GT(result.makespan_s, 0.0);

  const double hit_rate = fleet_cache_hit_rate(result);
  EXPECT_GE(hit_rate, 0.0);
  EXPECT_LE(hit_rate, 1.0);
  EXPECT_GE(allocation_quality_spread(result), 0.0);

  const auto utilization = per_server_utilization(result);
  ASSERT_EQ(utilization.size(), result.servers.size());
  for (std::size_t s = 0; s < utilization.size(); ++s) {
    EXPECT_DOUBLE_EQ(utilization[s], result.servers[s].utilization);
  }

  const auto plots =
      per_server_box_plots(result, sim::RecordField::kPredictedEffBw);
  std::size_t plotted = 0;
  for (const auto& [name, plot] : plots) {
    bool known = false;
    for (const auto& s : result.servers) known |= (s.name == name);
    EXPECT_TRUE(known) << name;
    plotted += plot.count;
  }
  std::size_t multi_gpu = 0;
  for (const auto& r : result.records) multi_gpu += r.record.job.num_gpus >= 2;
  EXPECT_EQ(plotted, multi_gpu);
}

TEST(Fleet, RackFleetSchedulesOnWideTopologies) {
  // Rack-scale servers (128 GPUs each — matcher on the wide bitset path)
  // behind the fleet dispatcher: every job of the rack trace preset lands,
  // including the 9..12-GPU jobs no single DGX node could hold, and the
  // run is deterministic across probe thread counts like any other fleet.
  auto specs = rack_fleet_specs(/*racks=*/2, /*nodes_per_rack=*/16);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].topology.num_vertices(), 128u);
  EXPECT_EQ(specs[0].policy, "topo-aware");

  workload::FleetTraceConfig trace_config =
      workload::rack_trace_config(/*num_jobs=*/60, /*seed=*/13);
  const auto jobs = workload::generate_fleet_trace(trace_config);

  ClusterConfig sequential;
  FleetSimulator fleet(specs, sequential);
  const auto result = fleet.run(jobs);
  EXPECT_EQ(result.records.size(), jobs.size());
  bool cross_node = false;
  for (const auto& r : result.records) {
    cross_node |= r.record.job.num_gpus > 8;
  }
  EXPECT_TRUE(cross_node);

  ClusterConfig threaded;
  threaded.threads = 4;
  FleetSimulator fleet_threaded(rack_fleet_specs(2, 16), threaded);
  const auto threaded_result = fleet_threaded.run(jobs);
  ASSERT_EQ(threaded_result.records.size(), result.records.size());
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(threaded_result.records[i].record.job.id,
              result.records[i].record.job.id);
    EXPECT_EQ(threaded_result.records[i].record.gpus,
              result.records[i].record.gpus);
    EXPECT_EQ(threaded_result.records[i].server, result.records[i].server);
  }
}

TEST(FleetMetrics, FindLocatesJobs) {
  const auto result = run_fleet(dgx_fleet(2), "preserve",
                                {job_of(1, "vgg-16", 2), job_of(7, "gmm", 3)});
  ASSERT_NE(result.find(7), nullptr);
  EXPECT_EQ(result.find(7)->record.job.id, 7);
  EXPECT_EQ(result.find(99), nullptr);
}

}  // namespace
}  // namespace mapa::cluster
