// Sharded-dispatcher and shared-topology tests (cluster/fleet.hpp): shard
// partitioning and clamping, shard-count record-equivalence, the
// thread-count determinism contract at 1k archetype-weighted servers,
// probe memoization transparency, the cross-shard rescue pass,
// archetype_fleet_specs sharing/interleaving, shared-cache survival
// across sibling drains, and the fleet/policy parallelism exclusivity
// check.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cluster/fleet.hpp"
#include "graph/topology.hpp"
#include "workload/generator.hpp"

namespace mapa::cluster {
namespace {

workload::Job job_of(int id, const std::string& workload, std::size_t gpus,
                     double arrival_s = 0.0, double iter_scale = 1.0) {
  workload::Job j;
  j.id = id;
  j.workload = workload;
  j.num_gpus = gpus;
  j.pattern = gpus <= 1 ? graph::PatternKind::kSingle
                        : graph::PatternKind::kRing;
  j.bandwidth_sensitive =
      workload::workload_by_name(workload).bandwidth_sensitive;
  j.arrival_time_s = arrival_s;
  j.iter_scale = iter_scale;
  return j;
}

std::vector<ServerSpec> dgx_archetype_fleet(std::size_t n,
                                            const std::string& policy) {
  FleetArchetype arch;
  arch.name = "dgx";
  arch.topology = graph::TopologyHandle(graph::dgx1_v100());
  arch.policy = policy;
  return archetype_fleet_specs(n, {arch});
}

/// The 1k-server archetype-weighted fleet the determinism tests run: a
/// 3:1 mix of 8-GPU DGX-1V and 16-GPU NVSwitch servers, every server
/// sharing its archetype's TopologyHandle, under the non-enumerating
/// topo-aware policy (the sensible per-server choice at fleet scale).
std::vector<ServerSpec> thousand_server_fleet() {
  FleetArchetype dgx;
  dgx.name = "dgx";
  dgx.topology = graph::TopologyHandle(graph::dgx1_v100());
  dgx.policy = "topo-aware";
  dgx.weight = 3;
  FleetArchetype nvswitch;
  nvswitch.name = "nvs";
  nvswitch.topology = graph::TopologyHandle(graph::nvswitch_16());
  nvswitch.policy = "topo-aware";
  nvswitch.weight = 1;
  return archetype_fleet_specs(1000, {dgx, nvswitch});
}

TEST(Sharding, PartitionIsContiguousCompleteAndClamped) {
  ClusterConfig config;
  config.shards = 3;
  FleetSimulator fleet(dgx_archetype_fleet(10, "preserve"), config);
  EXPECT_EQ(fleet.num_shards(), 3u);
  // Contiguous, complete, and non-decreasing shard assignment.
  std::size_t previous = 0;
  for (std::size_t s = 0; s < fleet.num_servers(); ++s) {
    const std::size_t shard = fleet.shard_of(s);
    EXPECT_LT(shard, fleet.num_shards());
    EXPECT_GE(shard, previous);
    previous = shard;
  }
  EXPECT_EQ(fleet.shard_of(0), 0u);
  EXPECT_EQ(fleet.shard_of(9), 2u);
  EXPECT_THROW(fleet.shard_of(10), std::out_of_range);

  // More shards than servers clamps to one server per shard.
  ClusterConfig many;
  many.shards = 64;
  FleetSimulator clamped(dgx_archetype_fleet(4, "preserve"), many);
  EXPECT_EQ(clamped.num_shards(), 4u);

  ClusterConfig zero;
  zero.shards = 0;
  EXPECT_THROW(FleetSimulator(dgx_archetype_fleet(2, "preserve"), zero),
               std::invalid_argument);
}

TEST(Sharding, ShardCountsProduceEquivalentRecords) {
  // Full-server jobs on a homogeneous fleet: every placement consumes one
  // idle identical server, so the schedule — who starts when, on what
  // shape, for how long — cannot depend on the shard count; only the
  // server a given job lands on may differ. 16 eight-GPU jobs on 8
  // servers: the second wave must wait for the first wave's completions.
  std::vector<workload::Job> jobs;
  for (int i = 1; i <= 16; ++i) {
    jobs.push_back(job_of(i, "vgg-16", 8, /*arrival_s=*/0.0,
                          /*iter_scale=*/1.0 + 0.1 * i));
  }

  std::vector<FleetResult> results;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{8}}) {
    ClusterConfig config;
    config.selection = "first-fit";
    config.shards = shards;
    FleetSimulator fleet(dgx_archetype_fleet(8, "preserve"), config);
    results.push_back(fleet.run(jobs));
  }

  const FleetResult& baseline = results[0];
  EXPECT_EQ(baseline.shards, 1u);
  for (std::size_t v = 1; v < results.size(); ++v) {
    const FleetResult& sharded = results[v];
    EXPECT_GT(sharded.shards, 1u);
    EXPECT_DOUBLE_EQ(sharded.makespan_s, baseline.makespan_s);
    ASSERT_EQ(sharded.records.size(), baseline.records.size());
    for (const workload::Job& job : jobs) {
      const FleetRecord* a = baseline.find(job.id);
      const FleetRecord* b = sharded.find(job.id);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      EXPECT_DOUBLE_EQ(a->record.start_s, b->record.start_s) << job.id;
      EXPECT_DOUBLE_EQ(a->record.finish_s, b->record.finish_s) << job.id;
      EXPECT_DOUBLE_EQ(a->record.exec_s, b->record.exec_s) << job.id;
      EXPECT_DOUBLE_EQ(a->record.predicted_effbw, b->record.predicted_effbw)
          << job.id;
      EXPECT_EQ(a->record.gpus.size(), b->record.gpus.size()) << job.id;
    }
  }
}

TEST(Sharding, ThreadCountsByteIdenticalAtOneThousandServers) {
  // The cluster/fleet.hpp determinism contract at scale: a 1k-server
  // archetype-weighted fleet under the sharded dispatcher must produce
  // byte-identical records and per-server statistics at threads=1 and
  // threads=8 — including the shared archetype caches' hit/miss split,
  // which probe tickets make thread-count independent (parallel probes
  // stage, the dispatch loop commits in ascending server order).
  const auto jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(1000, /*jobs_per_server=*/1,
                                         /*seed=*/29));

  std::vector<FleetResult> results;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ClusterConfig config;
    config.selection = "least-loaded";
    config.shards = 32;
    config.threads = threads;
    config.seed = 29;
    FleetSimulator fleet(thousand_server_fleet(), config);
    results.push_back(fleet.run(jobs));
  }

  const FleetResult& a = results[0];
  const FleetResult& b = results[1];
  ASSERT_EQ(a.records.size(), jobs.size());
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].server, b.records[i].server);
    EXPECT_EQ(a.records[i].record.job, b.records[i].record.job);
    EXPECT_EQ(a.records[i].record.gpus, b.records[i].record.gpus);
    EXPECT_DOUBLE_EQ(a.records[i].record.start_s, b.records[i].record.start_s);
    EXPECT_DOUBLE_EQ(a.records[i].record.finish_s,
                     b.records[i].record.finish_s);
    EXPECT_DOUBLE_EQ(a.records[i].record.predicted_effbw,
                     b.records[i].record.predicted_effbw);
    EXPECT_DOUBLE_EQ(a.records[i].record.measured_effbw,
                     b.records[i].record.measured_effbw);
  }
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t s = 0; s < a.servers.size(); ++s) {
    EXPECT_EQ(a.servers[s].shard, b.servers[s].shard);
    EXPECT_EQ(a.servers[s].jobs_placed, b.servers[s].jobs_placed);
    EXPECT_EQ(a.servers[s].probes, b.servers[s].probes);
    EXPECT_EQ(a.servers[s].probe_memo_hits, b.servers[s].probe_memo_hits);
    EXPECT_EQ(a.servers[s].match_cache_hits, b.servers[s].match_cache_hits);
    EXPECT_EQ(a.servers[s].match_cache_misses,
              b.servers[s].match_cache_misses);
    EXPECT_EQ(a.servers[s].match_cache_delta_hits,
              b.servers[s].match_cache_delta_hits);
    EXPECT_DOUBLE_EQ(a.servers[s].utilization, b.servers[s].utilization);
  }
}

TEST(Sharding, IncrementalReuseDoesNotChangeRecords) {
  // Cross-tick probe memoization plus delta-keyed cache lookups (both on
  // by default) against the legacy dispatcher (clear-on-commit memo,
  // exact-only cache): the schedule must be identical job for job, and
  // only the reuse counters may move. The churn trace interleaves
  // allocations and releases, so servers revisit earlier busy states —
  // exactly what the legacy memo forgets and the cross-tick memo keeps.
  const auto jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(64, /*jobs_per_server=*/6,
                                         /*seed=*/37));

  std::vector<FleetResult> results;
  for (const bool reuse : {false, true}) {
    ClusterConfig config;
    config.selection = "least-loaded";
    config.shards = 4;
    config.cross_tick_memo = reuse;
    config.cache.enable_delta = reuse;
    FleetSimulator fleet(dgx_archetype_fleet(64, "preserve"), config);
    results.push_back(fleet.run(jobs));
  }

  const FleetResult& off = results[0];
  const FleetResult& on = results[1];
  ASSERT_EQ(off.records.size(), on.records.size());
  EXPECT_DOUBLE_EQ(off.makespan_s, on.makespan_s);
  for (std::size_t i = 0; i < off.records.size(); ++i) {
    EXPECT_EQ(off.records[i].server, on.records[i].server);
    EXPECT_EQ(off.records[i].record.job, on.records[i].record.job);
    EXPECT_EQ(off.records[i].record.gpus, on.records[i].record.gpus);
    EXPECT_DOUBLE_EQ(off.records[i].record.start_s,
                     on.records[i].record.start_s);
    EXPECT_DOUBLE_EQ(off.records[i].record.finish_s,
                     on.records[i].record.finish_s);
    EXPECT_DOUBLE_EQ(off.records[i].record.predicted_effbw,
                     on.records[i].record.predicted_effbw);
    EXPECT_DOUBLE_EQ(off.records[i].record.measured_effbw,
                     on.records[i].record.measured_effbw);
  }
  std::uint64_t memo_off = 0;
  std::uint64_t memo_on = 0;
  std::uint64_t delta_off = 0;
  std::uint64_t delta_on = 0;
  for (std::size_t s = 0; s < on.servers.size(); ++s) {
    memo_off += off.servers[s].probe_memo_hits;
    memo_on += on.servers[s].probe_memo_hits;
    delta_off += off.servers[s].match_cache_delta_hits;
    delta_on += on.servers[s].match_cache_delta_hits;
  }
  EXPECT_GT(memo_on, memo_off);  // survival across busy-state churn
  EXPECT_GT(delta_on, 0u);       // the superset filter actually fired
  EXPECT_EQ(delta_off, 0u);
}

TEST(Sharding, ProbeMemoDoesNotChangeRecords) {
  // Memoized probe replay must be indistinguishable from re-running the
  // policy: identical records with the memo forced off and on, and the
  // enabled run must actually replay something.
  const auto jobs = workload::generate_fleet_trace(
      workload::fleet_scale_trace_config(64, /*jobs_per_server=*/4,
                                         /*seed=*/31));

  std::vector<FleetResult> results;
  for (const bool memo : {false, true}) {
    ClusterConfig config;
    config.selection = "least-loaded";
    config.shards = 4;
    config.probe_memo = memo;
    FleetSimulator fleet(dgx_archetype_fleet(64, "preserve"), config);
    results.push_back(fleet.run(jobs));
  }

  const FleetResult& off = results[0];
  const FleetResult& on = results[1];
  ASSERT_EQ(off.records.size(), on.records.size());
  EXPECT_DOUBLE_EQ(off.makespan_s, on.makespan_s);
  for (std::size_t i = 0; i < off.records.size(); ++i) {
    EXPECT_EQ(off.records[i].server, on.records[i].server);
    EXPECT_EQ(off.records[i].record.job, on.records[i].record.job);
    EXPECT_EQ(off.records[i].record.gpus, on.records[i].record.gpus);
    EXPECT_DOUBLE_EQ(off.records[i].record.start_s,
                     on.records[i].record.start_s);
    EXPECT_DOUBLE_EQ(off.records[i].record.finish_s,
                     on.records[i].record.finish_s);
  }
  std::uint64_t replayed = 0;
  std::uint64_t probes_off = 0;
  std::uint64_t probes_on = 0;
  for (std::size_t s = 0; s < on.servers.size(); ++s) {
    EXPECT_EQ(off.servers[s].probe_memo_hits, 0u);
    replayed += on.servers[s].probe_memo_hits;
    probes_off += off.servers[s].probes;
    probes_on += on.servers[s].probes;
  }
  EXPECT_GT(replayed, 0u);
  EXPECT_LT(probes_on, probes_off);
}

TEST(Sharding, RescuePlacesAJobWhoseRoutedShardDrainedAway) {
  // Shard 1's server is drained from t=0, so both 8-GPU jobs route to
  // shard 0 (job 2 on the zero/zero slack tie toward the lowest index)
  // and job 2 queues behind job 1. Shard 0's server then drains for good
  // while shard 1's is restored: job 2's routed shard can never serve it,
  // and only the cross-shard rescue pass can move it to shard 1's idle
  // identical server instead of throwing.
  ClusterConfig config;
  config.selection = "first-fit";
  config.shards = 2;
  config.events = {{0.0, 1, ServerEvent::Kind::kDrain},
                   {2.0, 0, ServerEvent::Kind::kDrain},
                   {100.0, 1, ServerEvent::Kind::kRestore}};
  FleetSimulator fleet(dgx_archetype_fleet(2, "preserve"), config);
  const auto result = fleet.run(
      {job_of(1, "vgg-16", 8, 0.0, /*iter_scale=*/10.0),
       job_of(2, "gmm", 8, 1.0)});
  ASSERT_EQ(result.records.size(), 2u);
  const FleetRecord* second = result.find(2);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->server, 1u);
  const FleetRecord* first = result.find(1);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->server, 0u);
  // The rescue only fires once the fleet is otherwise idle: after job 1
  // completes and server 1's restore has been applied.
  EXPECT_GE(second->record.start_s, first->record.finish_s);
  EXPECT_GE(second->record.start_s, 100.0);
}

TEST(Sharding, ArchetypeFleetSpecsShareStorageAndInterleave) {
  FleetArchetype a;
  a.name = "a";
  a.topology = graph::TopologyHandle(graph::dgx1_v100());
  a.weight = 3;
  FleetArchetype b;
  b.name = "b";
  b.topology = graph::TopologyHandle(graph::nvswitch_16());
  b.policy = "topo-aware";
  b.weight = 1;
  const auto specs = archetype_fleet_specs(8, {a, b});
  ASSERT_EQ(specs.size(), 8u);

  // 3:1 weighting over 8 servers: 6 of a, 2 of b, interleaved (each half
  // of the fleet gets the same 3:1 mix, so contiguous shards stay
  // representative) — not front-loaded a a a a a a b b.
  std::size_t a_count = 0;
  std::size_t a_in_first_half = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const bool is_a = specs[i].topology.same_storage(a.topology);
    a_count += is_a;
    if (i < 4) a_in_first_half += is_a;
    EXPECT_EQ(specs[i].policy, is_a ? "preserve" : "topo-aware");
  }
  EXPECT_EQ(a_count, 6u);
  EXPECT_EQ(a_in_first_half, 3u);
  EXPECT_EQ(specs[0].name, "a-0");

  // Shared handles: every `a` server references the one archetype graph
  // (refcount: the archetype's own handle plus its six spec copies).
  EXPECT_EQ(a.topology.use_count(), 7);
  EXPECT_EQ(b.topology.use_count(), 3);

  EXPECT_THROW(archetype_fleet_specs(0, {a}), std::invalid_argument);
  EXPECT_THROW(archetype_fleet_specs(4, {}), std::invalid_argument);
  FleetArchetype zero_weight = a;
  zero_weight.weight = 0;
  EXPECT_THROW(archetype_fleet_specs(4, {zero_weight}),
               std::invalid_argument);
}

TEST(Sharding, RackFleetSpecsShareOneArchetype) {
  const auto specs = rack_fleet_specs(/*racks=*/4, /*nodes_per_rack=*/2);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "rack-0");
  EXPECT_EQ(specs[3].name, "rack-3");
  for (std::size_t r = 1; r < specs.size(); ++r) {
    EXPECT_TRUE(specs[0].topology.same_storage(specs[r].topology));
  }
  EXPECT_EQ(specs[0].topology.use_count(), 4);
}

TEST(Sharding, DrainingASiblingKeepsTheSharedCacheWarm) {
  // Two servers stamped from one archetype share one match cache. Server
  // 1 is drained from t=0 and restored at t=1, so the first wave (two
  // long ring-3 jobs at t=0) lands entirely on server 0 and warms the
  // shared cache — including the entry for a ring-3 pattern against an
  // idle busy mask. When an identical shape arrives at t=2, server 0 is
  // too full to take it, but the freshly restored server 1 replays its
  // sibling's idle-mask entry: the drain/restore cycle must not have
  // invalidated the shared archetype cache.
  ClusterConfig config;
  config.selection = "least-loaded";
  config.events = {{0.0, 1, ServerEvent::Kind::kDrain},
                   {1.0, 1, ServerEvent::Kind::kRestore}};
  FleetSimulator fleet(dgx_archetype_fleet(2, "preserve"), config);
  const auto result =
      fleet.run({job_of(1, "vgg-16", 3, 0.0, /*iter_scale=*/100.0),
                 job_of(2, "gmm", 3, 0.0, /*iter_scale=*/100.0),
                 job_of(3, "vgg-16", 3, 2.0)});
  ASSERT_EQ(result.records.size(), 3u);
  const FleetRecord* first = result.find(1);
  const FleetRecord* third = result.find(3);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(first->server, 0u);
  EXPECT_EQ(third->server, 1u);  // the restored sibling took it
  EXPECT_DOUBLE_EQ(third->record.start_s, 2.0);

  // The shared cache's statistics are reported once, by the archetype's
  // lowest-indexed (primary) server.
  ASSERT_TRUE(result.servers[0].cache_primary);
  EXPECT_FALSE(result.servers[1].cache_primary);
  EXPECT_EQ(result.servers[1].match_cache_hits, 0u);
  EXPECT_GT(result.servers[0].match_cache_hits, 0u);
}

TEST(Sharding, FleetAndPolicyParallelismAreExclusive) {
  ClusterConfig both;
  both.threads = 4;
  both.policy.threads = 2;
  EXPECT_THROW(FleetSimulator(dgx_archetype_fleet(2, "preserve"), both),
               std::invalid_argument);

  // Either level alone is fine.
  ClusterConfig fleet_only;
  fleet_only.threads = 4;
  EXPECT_NO_THROW(FleetSimulator(dgx_archetype_fleet(2, "preserve"),
                                 fleet_only));
  ClusterConfig policy_only;
  policy_only.policy.threads = 4;
  EXPECT_NO_THROW(FleetSimulator(dgx_archetype_fleet(2, "preserve"),
                                 policy_only));
}

}  // namespace
}  // namespace mapa::cluster
