#include "match/enumerator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "score/scores.hpp"

namespace mapa::match {
namespace {

using graph::Graph;

EnumerateOptions raw_options() {
  EnumerateOptions o;
  o.break_symmetry = false;
  return o;
}

TEST(SymmetryConstraints, EmptyForAsymmetricPattern) {
  // The smallest asymmetric tree: a spider with legs of lengths 1, 2, 3
  // (7 vertices). Distinct leg lengths forbid any non-trivial
  // automorphism, so no constraints should be produced.
  Graph g(7);
  g.add_edge(0, 1, interconnect::LinkType::kNone, 0.0);  // leg of length 1
  g.add_edge(0, 2, interconnect::LinkType::kNone, 0.0);  // leg of length 2
  g.add_edge(2, 3, interconnect::LinkType::kNone, 0.0);
  g.add_edge(0, 4, interconnect::LinkType::kNone, 0.0);  // leg of length 3
  g.add_edge(4, 5, interconnect::LinkType::kNone, 0.0);
  g.add_edge(5, 6, interconnect::LinkType::kNone, 0.0);
  ASSERT_EQ(graph::automorphism_count(g), 1u);
  EXPECT_TRUE(symmetry_constraints(g).empty());
}

TEST(SymmetryConstraints, NonEmptyForRing) {
  EXPECT_FALSE(symmetry_constraints(graph::ring(4)).empty());
}

struct SymmetryCase {
  std::string name;
  Graph pattern;
  Graph target;
};

class SymmetryBreaking : public ::testing::TestWithParam<SymmetryCase> {};

// The defining property: constrained match count * |Aut(P)| == raw count,
// i.e. exactly one representative per automorphism class survives.
TEST_P(SymmetryBreaking, CountsExactlyOnePerOrbit) {
  const auto& c = GetParam();
  EnumerateOptions broken;
  const std::size_t with = count_matches(c.pattern, c.target, broken);
  const std::size_t raw = count_matches(c.pattern, c.target, raw_options());
  const std::size_t aut = graph::automorphism_count(c.pattern);
  EXPECT_EQ(with * aut, raw);
}

// Every raw match must be an automorphic image of some surviving match.
TEST_P(SymmetryBreaking, RepresentativesCoverAllAllocations) {
  const auto& c = GetParam();
  std::set<std::vector<std::pair<graph::VertexId, graph::VertexId>>>
      surviving_keys;
  for (const Match& m : find_matches(c.pattern, c.target)) {
    surviving_keys.insert(m.used_edges(c.pattern));
  }
  for (const Match& m : find_matches(c.pattern, c.target, raw_options())) {
    EXPECT_TRUE(surviving_keys.count(m.used_edges(c.pattern)))
        << "raw match not represented";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SymmetryBreaking,
    ::testing::Values(
        SymmetryCase{"ring3_k5", graph::ring(3), graph::all_to_all(5)},
        SymmetryCase{"ring4_dgxv", graph::ring(4), graph::dgx1_v100()},
        SymmetryCase{"ring5_dgxv_nvlink", graph::ring(5),
                     graph::dgx1_v100(graph::Connectivity::kNvlinkOnly)},
        SymmetryCase{"chain4_dgxv_nvlink", graph::chain(4),
                     graph::dgx1_v100(graph::Connectivity::kNvlinkOnly)},
        SymmetryCase{"star4_k6", graph::star(4), graph::all_to_all(6)},
        SymmetryCase{"alltoall4_k6", graph::all_to_all(4),
                     graph::all_to_all(6)},
        SymmetryCase{"tree5_summit", graph::binary_tree(5),
                     graph::summit_node()},
        SymmetryCase{"ring4_torus_nvlink", graph::ring(4),
                     graph::torus2d_16(graph::Connectivity::kNvlinkOnly)}),
    [](const ::testing::TestParamInfo<SymmetryCase>& info) {
      return info.param.name;
    });

TEST(CountMatches, KnownClosedForms) {
  // Distinct triangles in K5: C(5,3) = 10.
  EXPECT_EQ(count_matches(graph::ring(3), graph::all_to_all(5)), 10u);
  // Distinct 4-rings in K6: C(6,4) * 3 cyclic orders = 45.
  EXPECT_EQ(count_matches(graph::ring(4), graph::all_to_all(6)), 45u);
  // Distinct 5-rings in K8: C(8,5) * 4!/2 = 56 * 12 = 672.
  EXPECT_EQ(count_matches(graph::ring(5), graph::all_to_all(8)), 672u);
}

TEST(CountMatches, UllmannBackendAgrees) {
  EnumerateOptions vf2;
  EnumerateOptions ull;
  ull.backend = Backend::kUllmann;
  for (const Graph& pattern :
       {graph::ring(4), graph::chain(3), graph::star(4)}) {
    EXPECT_EQ(count_matches(pattern, graph::dgx1_v100(), vf2),
              count_matches(pattern, graph::dgx1_v100(), ull));
  }
}

TEST(CountMatches, ParallelAgreesWithSequential) {
  EnumerateOptions seq;
  EnumerateOptions par;
  par.threads = 8;
  for (const Graph& pattern : {graph::ring(4), graph::ring(5)}) {
    EXPECT_EQ(count_matches(pattern, graph::torus2d_16(), seq),
              count_matches(pattern, graph::torus2d_16(), par));
  }
}

TEST(FindMatches, ParallelReturnsSameSortedSet) {
  EnumerateOptions seq;
  EnumerateOptions par;
  par.threads = 8;
  auto a = find_matches(graph::ring(4), graph::dgx1_v100(), seq);
  auto b = find_matches(graph::ring(4), graph::dgx1_v100(), par);
  std::sort(a.begin(), a.end(), [](const Match& x, const Match& y) {
    return x.mapping < y.mapping;
  });
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mapping, b[i].mapping);
  }
}

TEST(FindMatches, LimitRespected) {
  const auto matches =
      find_matches(graph::ring(3), graph::all_to_all(6), {}, 4);
  EXPECT_EQ(matches.size(), 4u);
}

TEST(FindMatches, ForbiddenMaskRespected) {
  EnumerateOptions options;
  options.forbidden = graph::VertexMask(8);
  options.forbidden.set(1);
  for (const Match& m :
       find_matches(graph::ring(3), graph::dgx1_v100(), options)) {
    for (const auto v : m.mapping) EXPECT_NE(v, 1u);
  }
}

TEST(BestMatch, FindsMaxAggregatedBandwidth) {
  // On DGX-1V the best 3-ring is the paper's ideal allocation {0, 2, 3}
  // at 125 GB/s.
  const Graph pattern = graph::ring(3);
  const Graph hardware = graph::dgx1_v100();
  const auto best = best_match(
      pattern, hardware,
      [&](const Match& m) {
        return score::aggregated_bandwidth(pattern, hardware, m);
      });
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->sorted_vertices(), (std::vector<graph::VertexId>{0, 2, 3}));
  EXPECT_DOUBLE_EQ(score::aggregated_bandwidth(pattern, hardware, *best),
                   125.0);
}

TEST(BestMatch, DeterministicAcrossThreadCounts) {
  const Graph pattern = graph::ring(4);
  const Graph hardware = graph::cubemesh_16();
  const auto scorer = [&](const Match& m) {
    return score::aggregated_bandwidth(pattern, hardware, m);
  };
  EnumerateOptions seq;
  EnumerateOptions par;
  par.threads = 8;
  const auto a = best_match(pattern, hardware, scorer, seq);
  const auto b = best_match(pattern, hardware, scorer, par);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->mapping, b->mapping);
}

TEST(BestMatch, NulloptWhenNoMatchExists) {
  EXPECT_FALSE(best_match(graph::ring(3), graph::ring(4),
                          [](const Match&) { return 1.0; })
                   .has_value());
}

TEST(ForEachMatch, StreamsEveryMatchOnce) {
  std::set<std::vector<graph::VertexId>> seen;
  for_each_match(graph::ring(3), graph::all_to_all(5), [&](const Match& m) {
    EXPECT_TRUE(seen.insert(m.mapping).second);
    return true;
  });
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace mapa::match
