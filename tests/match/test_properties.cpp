// Property sweeps over the (pattern, topology) cross product: invariants
// that must hold for every combination MAPA can encounter, checked with
// parameterized gtest.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "match/enumerator.hpp"
#include "score/scores.hpp"

namespace mapa::match {
namespace {

using graph::Graph;
using graph::VertexId;

struct SweepCase {
  std::string name;
  graph::PatternKind kind;
  std::size_t size;
  Graph target;
};

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  const std::vector<std::pair<std::string, Graph>> targets = {
      {"dgxv", graph::dgx1_v100()},
      {"dgxv_nv", graph::dgx1_v100(graph::Connectivity::kNvlinkOnly)},
      {"summit", graph::summit_node()},
      {"torus_nv", graph::torus2d_16(graph::Connectivity::kNvlinkOnly)},
      {"cubemesh_nv", graph::cubemesh_16(graph::Connectivity::kNvlinkOnly)},
  };
  const std::vector<std::pair<std::string, graph::PatternKind>> kinds = {
      {"ring", graph::PatternKind::kRing},
      {"chain", graph::PatternKind::kChain},
      {"tree", graph::PatternKind::kTree},
      {"star", graph::PatternKind::kStar},
  };
  for (const auto& [tname, target] : targets) {
    for (const auto& [kname, kind] : kinds) {
      for (const std::size_t size : {3u, 4u, 5u}) {
        cases.push_back({kname + std::to_string(size) + "_" + tname, kind,
                         size, target});
      }
    }
  }
  return cases;
}

class MatchSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MatchSweep, EveryMatchIsValidInjectiveAdjacencyPreserving) {
  const auto& c = GetParam();
  const Graph pattern = graph::make_pattern(c.kind, c.size);
  for_each_match(pattern, c.target, [&](const Match& m) {
    EXPECT_TRUE(graph::preserves_adjacency(pattern, c.target, m.mapping));
    return true;
  });
}

TEST_P(MatchSweep, BackendsAgreeOnCount) {
  const auto& c = GetParam();
  const Graph pattern = graph::make_pattern(c.kind, c.size);
  EnumerateOptions vf2;
  EnumerateOptions ull;
  ull.backend = Backend::kUllmann;
  EXPECT_EQ(count_matches(pattern, c.target, vf2),
            count_matches(pattern, c.target, ull));
}

TEST_P(MatchSweep, SymmetryQuotientIsExact) {
  const auto& c = GetParam();
  const Graph pattern = graph::make_pattern(c.kind, c.size);
  EnumerateOptions raw;
  raw.break_symmetry = false;
  EXPECT_EQ(count_matches(pattern, c.target) *
                graph::automorphism_count(pattern),
            count_matches(pattern, c.target, raw));
}

TEST_P(MatchSweep, ForbiddenMaskEqualsInducedSubgraphCount) {
  // Masking vertices out must yield exactly the matches found on the
  // induced subgraph of the remaining vertices.
  const auto& c = GetParam();
  const Graph pattern = graph::make_pattern(c.kind, c.size);

  EnumerateOptions masked;
  masked.forbidden = graph::VertexMask(c.target.num_vertices());
  std::vector<VertexId> keep;
  for (VertexId v = 0; v < c.target.num_vertices(); ++v) {
    if (v % 3 == 0) {
      masked.forbidden.set(v);
    } else {
      keep.push_back(v);
    }
  }
  const Graph induced = c.target.induced_subgraph(keep);
  EXPECT_EQ(count_matches(pattern, c.target, masked),
            count_matches(pattern, induced));
}

TEST_P(MatchSweep, BestMatchScoreIsTheMaximum) {
  const auto& c = GetParam();
  const Graph pattern = graph::make_pattern(c.kind, c.size);
  const auto scorer = [&](const Match& m) {
    return score::aggregated_bandwidth(pattern, c.target, m);
  };
  const auto best = best_match(pattern, c.target, scorer);
  double max_score = -1.0;
  for_each_match(pattern, c.target, [&](const Match& m) {
    max_score = std::max(max_score, scorer(m));
    return true;
  });
  if (max_score < 0.0) {
    EXPECT_FALSE(best.has_value());
  } else {
    ASSERT_TRUE(best.has_value());
    EXPECT_DOUBLE_EQ(scorer(*best), max_score);
  }
}

TEST_P(MatchSweep, ParallelCountMatchesSequential) {
  const auto& c = GetParam();
  const Graph pattern = graph::make_pattern(c.kind, c.size);
  EnumerateOptions par;
  par.threads = 4;
  EXPECT_EQ(count_matches(pattern, c.target),
            count_matches(pattern, c.target, par));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatchSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace mapa::match
