// Differential suite for the bitset matching cores: on DGX-1V / DGX-2-style
// (NVSwitch) / torus / Summit topologies — and, for the wide word-array
// core, 65..128-vertex racks and random graphs — across fixed shapes and
// randomly generated patterns and busy masks, the bitset VF2 cores, the
// generic (seed) VF2 loop, and the Ullmann backend must produce identical
// match sets — and identical symmetry-broken counts.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "match/enumerator.hpp"
#include "match/ullmann.hpp"
#include "match/vf2.hpp"
#include "util/rng.hpp"

namespace mapa::match {
namespace {

using graph::Graph;
using graph::VertexId;
using graph::VertexMask;

std::vector<Match> collect_bitset(const Graph& pattern, const Graph& target,
                                  const OrderingConstraints& constraints,
                                  const VertexMask* forbidden) {
  std::vector<Match> matches;
  vf2_enumerate(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return true;
      },
      constraints, forbidden);
  return matches;
}

std::vector<Match> collect_generic(const Graph& pattern, const Graph& target,
                                   const OrderingConstraints& constraints,
                                   const VertexMask* forbidden) {
  std::vector<Match> matches;
  vf2_enumerate_generic(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return true;
      },
      constraints, forbidden);
  return matches;
}

std::vector<Match> collect_ullmann(const Graph& pattern, const Graph& target,
                                   const OrderingConstraints& constraints,
                                   const VertexMask* forbidden) {
  std::vector<Match> matches;
  ullmann_enumerate(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return true;
      },
      constraints, forbidden);
  return matches;
}

void sort_matches(std::vector<Match>& matches) {
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.mapping < b.mapping; });
}

/// Random connected pattern: a random spanning tree plus a few extra edges.
Graph random_pattern(util::Rng& rng, std::size_t n) {
  Graph g(n);
  for (VertexId v = 1; v < n; ++v) {
    const auto parent = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(v) - 1));
    g.add_edge(parent, v, interconnect::LinkType::kNone, 0.0);
  }
  const auto extra = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n)));
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (u != v) g.add_edge(u, v, interconnect::LinkType::kNone, 0.0);
  }
  return g;
}

VertexMask random_busy(util::Rng& rng, std::size_t n, std::size_t max_busy) {
  VertexMask mask(n);
  const auto busy_count = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_busy)));
  for (std::size_t i = 0; i < busy_count; ++i) {
    mask.set(static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  }
  return mask;
}

std::vector<std::pair<std::string, Graph>> targets() {
  return {
      {"dgxv", graph::dgx1_v100()},
      {"nvswitch16", graph::nvswitch_16()},  // DGX-2-style crossbar
      {"torus_nv", graph::torus2d_16(graph::Connectivity::kNvlinkOnly)},
      {"summit", graph::summit_node()},
  };
}

void expect_backends_agree(const Graph& pattern, const Graph& target,
                           const OrderingConstraints& constraints,
                           const VertexMask* forbidden) {
  auto bitset = collect_bitset(pattern, target, constraints, forbidden);
  auto generic = collect_generic(pattern, target, constraints, forbidden);
  auto ullmann = collect_ullmann(pattern, target, constraints, forbidden);
  // The bitset core and the generic fallback share one search plan and
  // must agree match-for-match including order.
  EXPECT_EQ(bitset, generic);
  // Ullmann explores in its own order; compare as sets.
  sort_matches(bitset);
  sort_matches(ullmann);
  EXPECT_EQ(bitset, ullmann);
  // Leaf-counting paths agree with materialized enumeration.
  EXPECT_EQ(vf2_count(pattern, target, constraints, forbidden), bitset.size());
  EXPECT_EQ(ullmann_count(pattern, target, constraints, forbidden),
            bitset.size());
}

TEST(Differential, FixedShapesAllFree) {
  for (const auto& [tname, target] : targets()) {
    for (const auto kind :
         {graph::PatternKind::kRing, graph::PatternKind::kChain,
          graph::PatternKind::kTree, graph::PatternKind::kStar,
          graph::PatternKind::kNcclMix}) {
      for (const std::size_t size : {2u, 3u, 4u, 5u}) {
        SCOPED_TRACE(tname + "/" + graph::to_string(kind) + "-" +
                     std::to_string(size));
        const Graph pattern = graph::make_pattern(kind, size);
        expect_backends_agree(pattern, target, {}, nullptr);
        expect_backends_agree(pattern, target,
                              symmetry_constraints(pattern), nullptr);
      }
    }
  }
}

TEST(Differential, RandomPatternsAndBusyMasksSymmetryBroken) {
  util::Rng rng(2026);
  for (const auto& [tname, target] : targets()) {
    for (int trial = 0; trial < 12; ++trial) {
      const auto size = static_cast<std::size_t>(rng.uniform_int(2, 5));
      const Graph pattern = random_pattern(rng, size);
      const VertexMask busy =
          random_busy(rng, target.num_vertices(), target.num_vertices() / 2);
      SCOPED_TRACE(tname + "/trial" + std::to_string(trial));
      const OrderingConstraints constraints = symmetry_constraints(pattern);
      expect_backends_agree(pattern, target, constraints, &busy);
    }
  }
}

TEST(Differential, SymmetryBrokenCountsTimesAutGroupEqualsRaw) {
  // The symmetry-broken count must be exactly |raw| / |Aut(P)| on every
  // backend (the bitset core must not change the quotient).
  util::Rng rng(7);
  const Graph target = graph::dgx1_v100();
  for (int trial = 0; trial < 8; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(2, 5));
    const Graph pattern = random_pattern(rng, size);
    SCOPED_TRACE(trial);
    const auto constraints = symmetry_constraints(pattern);
    const std::size_t raw = vf2_count(pattern, target);
    const std::size_t broken = vf2_count(pattern, target, constraints);
    EXPECT_EQ(broken * graph::automorphism_count(pattern), raw);
    EXPECT_EQ(ullmann_count(pattern, target, constraints), broken);
    EXPECT_EQ(collect_generic(pattern, target, constraints, nullptr).size(),
              broken);
  }
}

TEST(Differential, ZeroMatchFastOutAgreesWithGeneric) {
  // The degree-census fast-out must only reject provably-empty searches:
  // a star whose center out-degrees every NVLink-only vertex, and a busy
  // mask leaving fewer free GPUs than the pattern needs, both enumerate
  // to exactly the generic baseline's (empty) match set.
  const Graph hw = graph::dgx1_v100(graph::Connectivity::kNvlinkOnly);
  expect_backends_agree(graph::star(7), hw, {}, nullptr);
  EXPECT_EQ(vf2_count(graph::star(7), hw), 0u);
  VertexMask mostly_busy(8);
  for (VertexId v = 0; v < 6; ++v) mostly_busy.set(v);
  expect_backends_agree(graph::ring(3), hw, {}, &mostly_busy);
  EXPECT_EQ(vf2_count(graph::ring(3), hw, {}, &mostly_busy), 0u);
  EXPECT_EQ(ullmann_count(graph::ring(3), hw, {}, &mostly_busy), 0u);
}

TEST(Differential, WidePathHandlesTargetsBeyond64Vertices) {
  // Above 64 vertices vf2_enumerate transparently switches to the wide
  // word-array core (and still honors the mask, which spans two words
  // here).
  const Graph big = graph::pcie_only(70);
  VertexMask busy(70);
  for (VertexId v = 0; v < 10; ++v) busy.set(v);
  busy.set(65);  // one busy bit in the high word as well
  const Graph pattern = graph::ring(3);
  const std::size_t masked = vf2_count(pattern, big, {}, &busy);
  // 59 fully connected free vertices: 59 * 58 * 57 ordered triangles.
  EXPECT_EQ(masked, 59u * 58u * 57u);
}

TEST(Differential, BitsetCoreHandlesTargetsBeyond512Vertices) {
  // Beyond the old 512-vertex WideBitGraph ceiling the DynRows core keeps
  // going — the generic loop is no longer on any dispatch path.
  const Graph big = graph::pcie_only(520);
  VertexMask busy(520);
  for (VertexId v = 0; v < 500; ++v) busy.set(v);
  const Graph pattern = graph::ring(3);
  EXPECT_EQ(vf2_count(pattern, big, {}, &busy), 20u * 19u * 18u);
  EXPECT_EQ(ullmann_count(pattern, big, {}, &busy), 20u * 19u * 18u);
}

std::vector<std::pair<std::string, Graph>> wide_targets() {
  // NVLink-only racks keep the edge set sparse enough that full
  // enumeration stays cheap while still crossing 64-bit word boundaries.
  return {
      {"summit_rack12", graph::summit_rack(12, graph::Connectivity::kNvlinkOnly)},
      {"dgx_rack16", graph::dgx_rack(16, graph::Connectivity::kNvlinkOnly)},
  };
}

TEST(Differential, WideFixedShapesOnRackTopologies) {
  for (const auto& [tname, target] : wide_targets()) {
    ASSERT_GT(target.num_vertices(), 64u);
    for (const auto kind :
         {graph::PatternKind::kRing, graph::PatternKind::kChain,
          graph::PatternKind::kTree, graph::PatternKind::kStar}) {
      for (const std::size_t size : {3u, 4u}) {
        SCOPED_TRACE(tname + "/" + graph::to_string(kind) + "-" +
                     std::to_string(size));
        const Graph pattern = graph::make_pattern(kind, size);
        expect_backends_agree(pattern, target, {}, nullptr);
        expect_backends_agree(pattern, target, symmetry_constraints(pattern),
                              nullptr);
      }
    }
  }
}

TEST(Differential, WideRandomPatternsAndBusyMasksSymmetryBroken) {
  util::Rng rng(4096);
  for (const auto& [tname, target] : wide_targets()) {
    for (int trial = 0; trial < 8; ++trial) {
      const auto size = static_cast<std::size_t>(rng.uniform_int(2, 4));
      const Graph pattern = random_pattern(rng, size);
      const VertexMask busy =
          random_busy(rng, target.num_vertices(), target.num_vertices() / 2);
      SCOPED_TRACE(tname + "/trial" + std::to_string(trial));
      const OrderingConstraints constraints = symmetry_constraints(pattern);
      expect_backends_agree(pattern, target, constraints, &busy);
    }
  }
}

TEST(Differential, WideRandomSparseGraphs65To128Vertices) {
  // Random sparse targets straddling the one-word/two-word boundary, with
  // busy masks concentrated around vertex 64 so candidate words on both
  // sides of the boundary carry live bits.
  util::Rng rng(128);
  for (const std::size_t n : {65u, 96u, 128u}) {
    for (int trial = 0; trial < 4; ++trial) {
      Graph target = random_pattern(rng, n);  // spanning tree + extras
      for (int extra = 0; extra < 64; ++extra) {
        const auto u = static_cast<VertexId>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        const auto v = static_cast<VertexId>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (u != v) target.add_edge(u, v, interconnect::LinkType::kNone, 0.0);
      }
      VertexMask busy = random_busy(rng, n, n / 3);
      if (n > 64) busy.set(64);
      busy.set(63);
      const Graph pattern = random_pattern(rng, 4);
      SCOPED_TRACE(std::to_string(n) + "/trial" + std::to_string(trial));
      const OrderingConstraints constraints = symmetry_constraints(pattern);
      expect_backends_agree(pattern, target, constraints, &busy);
    }
  }
}

TEST(Differential, RandomSparseGraphs513To1024Vertices) {
  // Targets beyond the old 512-vertex ceiling: random sparse graphs on
  // the DynRows core vs the generic baseline, with busy masks straddling
  // the high words (bits set on both sides of every word boundary the
  // target spans).
  util::Rng rng(513);
  for (const std::size_t n : {513u, 768u, 1024u}) {
    for (int trial = 0; trial < 2; ++trial) {
      Graph target = random_pattern(rng, n);  // spanning tree + extras
      for (int extra = 0; extra < 256; ++extra) {
        const auto u = static_cast<VertexId>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        const auto v = static_cast<VertexId>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (u != v) target.add_edge(u, v, interconnect::LinkType::kNone, 0.0);
      }
      VertexMask busy = random_busy(rng, n, n / 3);
      // Live busy bits hugging both sides of the 512-bit (word 7/8) edge
      // and the last word boundary of this target.
      busy.set(511);
      busy.set(512);
      busy.set(static_cast<VertexId>(((n - 1) / 64) * 64));
      busy.set(static_cast<VertexId>(n - 1));
      const Graph pattern = random_pattern(rng, 4);
      SCOPED_TRACE(std::to_string(n) + "/trial" + std::to_string(trial));
      const OrderingConstraints constraints = symmetry_constraints(pattern);
      expect_backends_agree(pattern, target, constraints, &busy);
    }
  }
}

TEST(Differential, Rack1024GpusRunsTheBitsetCoreRecordIdentically) {
  // A 128-node DGX rack — 1024 GPUs, 16 words per row — enumerates on
  // the DynRows core record-identical to the generic baseline, busy mask
  // straddling the highest word boundary included.
  const Graph rack = graph::dgx_rack(128, graph::Connectivity::kNvlinkOnly);
  ASSERT_EQ(rack.num_vertices(), 1024u);
  VertexMask busy(1024);
  for (VertexId v = 60; v < 70; ++v) busy.set(v);     // word 0/1 boundary
  for (VertexId v = 950; v < 1000; ++v) busy.set(v);  // words 14/15
  const Graph pattern = graph::ring(4);
  const auto constraints = symmetry_constraints(pattern);
  auto bitset = collect_bitset(pattern, rack, constraints, &busy);
  auto generic = collect_generic(pattern, rack, constraints, &busy);
  ASSERT_FALSE(bitset.empty());
  EXPECT_EQ(bitset, generic);  // match-for-match, including order
  auto ullmann = collect_ullmann(pattern, rack, constraints, &busy);
  sort_matches(bitset);
  sort_matches(ullmann);
  EXPECT_EQ(bitset, ullmann);
}

TEST(Differential, RootSplitDeterminismBeyond512ForBothBackends) {
  // threads=1 vs threads=8 must produce the identical (normalized) match
  // list on a 1024-GPU rack for VF2 *and* Ullmann — the root split now
  // runs the selected backend per root instead of always VF2.
  const Graph rack = graph::dgx_rack(128, graph::Connectivity::kNvlinkOnly);
  VertexMask busy(1024);
  for (VertexId v = 500; v < 530; ++v) busy.set(v);
  const Graph pattern = graph::chain(3);
  for (const Backend backend : {Backend::kVf2, Backend::kUllmann}) {
    SCOPED_TRACE(backend == Backend::kVf2 ? "vf2" : "ullmann");
    EnumerateOptions sequential;
    sequential.backend = backend;
    sequential.forbidden = busy;
    EnumerateOptions threaded = sequential;
    threaded.threads = 8;
    auto expected = find_matches(pattern, rack, sequential);
    sort_matches(expected);  // threaded results are sort-normalized
    const auto parallel = find_matches(pattern, rack, threaded);
    ASSERT_FALSE(parallel.empty());
    EXPECT_EQ(parallel, expected);
    EXPECT_EQ(count_matches(pattern, rack, threaded), expected.size());
    EXPECT_EQ(count_matches(pattern, rack, sequential), expected.size());
  }
}

TEST(Differential, WideRootTargetPartitionsMatchSequentialEnumeration) {
  // The parallel enumerator splits the search by root target vertex; on
  // the wide path the per-root union must equal the sequential stream.
  const Graph target = graph::summit_rack(12, graph::Connectivity::kNvlinkOnly);
  const Graph pattern = graph::chain(3);
  const auto constraints = symmetry_constraints(pattern);
  auto expected = collect_bitset(pattern, target, constraints, nullptr);
  std::vector<Match> by_root;
  for (VertexId root = 0; root < target.num_vertices(); ++root) {
    vf2_enumerate(
        pattern, target,
        [&](const Match& m) {
          by_root.push_back(m);
          return true;
        },
        constraints, nullptr, static_cast<std::int64_t>(root));
  }
  sort_matches(expected);
  sort_matches(by_root);
  EXPECT_EQ(by_root, expected);

  EnumerateOptions threaded;
  threaded.threads = 4;
  EXPECT_EQ(find_matches(pattern, target, threaded).size(), expected.size());
}

}  // namespace
}  // namespace mapa::match
