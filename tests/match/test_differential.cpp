// Differential suite for the bitset matching core: on DGX-1V / DGX-2-style
// (NVSwitch) / torus / Summit topologies, across fixed shapes and randomly
// generated patterns and busy masks, the bitset VF2 core, the generic
// (seed) VF2 fallback, and the Ullmann backend must produce identical match
// sets — and identical symmetry-broken counts.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "match/enumerator.hpp"
#include "match/ullmann.hpp"
#include "match/vf2.hpp"
#include "util/rng.hpp"

namespace mapa::match {
namespace {

using graph::Graph;
using graph::VertexId;
using graph::VertexMask;

std::vector<Match> collect_bitset(const Graph& pattern, const Graph& target,
                                  const OrderingConstraints& constraints,
                                  const VertexMask* forbidden) {
  std::vector<Match> matches;
  vf2_enumerate(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return true;
      },
      constraints, forbidden);
  return matches;
}

std::vector<Match> collect_generic(const Graph& pattern, const Graph& target,
                                   const OrderingConstraints& constraints,
                                   const VertexMask* forbidden) {
  std::vector<Match> matches;
  vf2_enumerate_generic(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return true;
      },
      constraints, forbidden);
  return matches;
}

std::vector<Match> collect_ullmann(const Graph& pattern, const Graph& target,
                                   const OrderingConstraints& constraints,
                                   const VertexMask* forbidden) {
  std::vector<Match> matches;
  ullmann_enumerate(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return true;
      },
      constraints, forbidden);
  return matches;
}

void sort_matches(std::vector<Match>& matches) {
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.mapping < b.mapping; });
}

/// Random connected pattern: a random spanning tree plus a few extra edges.
Graph random_pattern(util::Rng& rng, std::size_t n) {
  Graph g(n);
  for (VertexId v = 1; v < n; ++v) {
    const auto parent = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(v) - 1));
    g.add_edge(parent, v, interconnect::LinkType::kNone, 0.0);
  }
  const auto extra = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n)));
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (u != v) g.add_edge(u, v, interconnect::LinkType::kNone, 0.0);
  }
  return g;
}

VertexMask random_busy(util::Rng& rng, std::size_t n, std::size_t max_busy) {
  VertexMask mask(n);
  const auto busy_count = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_busy)));
  for (std::size_t i = 0; i < busy_count; ++i) {
    mask.set(static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  }
  return mask;
}

std::vector<std::pair<std::string, Graph>> targets() {
  return {
      {"dgxv", graph::dgx1_v100()},
      {"nvswitch16", graph::nvswitch_16()},  // DGX-2-style crossbar
      {"torus_nv", graph::torus2d_16(graph::Connectivity::kNvlinkOnly)},
      {"summit", graph::summit_node()},
  };
}

void expect_backends_agree(const Graph& pattern, const Graph& target,
                           const OrderingConstraints& constraints,
                           const VertexMask* forbidden) {
  auto bitset = collect_bitset(pattern, target, constraints, forbidden);
  auto generic = collect_generic(pattern, target, constraints, forbidden);
  auto ullmann = collect_ullmann(pattern, target, constraints, forbidden);
  // The bitset core and the generic fallback share one search plan and
  // must agree match-for-match including order.
  EXPECT_EQ(bitset, generic);
  // Ullmann explores in its own order; compare as sets.
  sort_matches(bitset);
  sort_matches(ullmann);
  EXPECT_EQ(bitset, ullmann);
  // Leaf-counting paths agree with materialized enumeration.
  EXPECT_EQ(vf2_count(pattern, target, constraints, forbidden), bitset.size());
  EXPECT_EQ(ullmann_count(pattern, target, constraints, forbidden),
            bitset.size());
}

TEST(Differential, FixedShapesAllFree) {
  for (const auto& [tname, target] : targets()) {
    for (const auto kind :
         {graph::PatternKind::kRing, graph::PatternKind::kChain,
          graph::PatternKind::kTree, graph::PatternKind::kStar,
          graph::PatternKind::kNcclMix}) {
      for (const std::size_t size : {2u, 3u, 4u, 5u}) {
        SCOPED_TRACE(tname + "/" + graph::to_string(kind) + "-" +
                     std::to_string(size));
        const Graph pattern = graph::make_pattern(kind, size);
        expect_backends_agree(pattern, target, {}, nullptr);
        expect_backends_agree(pattern, target,
                              symmetry_constraints(pattern), nullptr);
      }
    }
  }
}

TEST(Differential, RandomPatternsAndBusyMasksSymmetryBroken) {
  util::Rng rng(2026);
  for (const auto& [tname, target] : targets()) {
    for (int trial = 0; trial < 12; ++trial) {
      const auto size = static_cast<std::size_t>(rng.uniform_int(2, 5));
      const Graph pattern = random_pattern(rng, size);
      const VertexMask busy =
          random_busy(rng, target.num_vertices(), target.num_vertices() / 2);
      SCOPED_TRACE(tname + "/trial" + std::to_string(trial));
      const OrderingConstraints constraints = symmetry_constraints(pattern);
      expect_backends_agree(pattern, target, constraints, &busy);
    }
  }
}

TEST(Differential, SymmetryBrokenCountsTimesAutGroupEqualsRaw) {
  // The symmetry-broken count must be exactly |raw| / |Aut(P)| on every
  // backend (the bitset core must not change the quotient).
  util::Rng rng(7);
  const Graph target = graph::dgx1_v100();
  for (int trial = 0; trial < 8; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(2, 5));
    const Graph pattern = random_pattern(rng, size);
    SCOPED_TRACE(trial);
    const auto constraints = symmetry_constraints(pattern);
    const std::size_t raw = vf2_count(pattern, target);
    const std::size_t broken = vf2_count(pattern, target, constraints);
    EXPECT_EQ(broken * graph::automorphism_count(pattern), raw);
    EXPECT_EQ(ullmann_count(pattern, target, constraints), broken);
    EXPECT_EQ(collect_generic(pattern, target, constraints, nullptr).size(),
              broken);
  }
}

TEST(Differential, GenericFallbackHandlesTargetsBeyond64Vertices) {
  // Above 64 vertices vf2_enumerate must transparently use the generic
  // path (and still honor the mask).
  const Graph big = graph::pcie_only(70);
  VertexMask busy(70);
  for (VertexId v = 0; v < 10; ++v) busy.set(v);
  const Graph pattern = graph::ring(3);
  const std::size_t masked = vf2_count(pattern, big, {}, &busy);
  // 60 fully connected free vertices: 60 * 59 * 58 ordered triangles.
  EXPECT_EQ(masked, 60u * 59u * 58u);
}

}  // namespace
}  // namespace mapa::match
