#include "match/vf2.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/patterns.hpp"
#include "graph/topology.hpp"

namespace mapa::match {
namespace {

using graph::Graph;
using graph::VertexId;

TEST(Vf2, TriangleInCompleteFour) {
  // Raw injective mappings of C3 into K4: 4 * 3 * 2 = 24.
  const auto matches = vf2_all(graph::ring(3), graph::all_to_all(4));
  EXPECT_EQ(matches.size(), 24u);
}

TEST(Vf2, ChainInRingFour) {
  // A path 0-1-2 in C4: middle vertex 4 ways, endpoints ordered 2 ways.
  const auto matches = vf2_all(graph::chain(3), graph::ring(4));
  EXPECT_EQ(matches.size(), 8u);
}

TEST(Vf2, RingFiveInRingFive) {
  // C5 onto itself: the dihedral group, 10 mappings.
  const auto matches = vf2_all(graph::ring(5), graph::ring(5));
  EXPECT_EQ(matches.size(), 10u);
}

TEST(Vf2, NoMatchWhenPatternLarger) {
  EXPECT_TRUE(vf2_all(graph::ring(5), graph::ring(4)).empty());
}

TEST(Vf2, NoTriangleInSquare) {
  EXPECT_TRUE(vf2_all(graph::ring(3), graph::ring(4)).empty());
}

TEST(Vf2, StarNeedsHighDegreeCenter) {
  // Star-4 (center degree 3) cannot embed into C4 (max degree 2).
  EXPECT_TRUE(vf2_all(graph::star(4), graph::ring(4)).empty());
  // But embeds into K4: center 4 ways, leaves 3! orders.
  EXPECT_EQ(vf2_all(graph::star(4), graph::all_to_all(4)).size(), 24u);
}

TEST(Vf2, AllMatchesPreserveAdjacency) {
  const Graph pattern = graph::nccl_mix(4);
  const Graph target = graph::dgx1_v100(graph::Connectivity::kNvlinkOnly);
  for (const Match& m : vf2_all(pattern, target)) {
    EXPECT_TRUE(graph::preserves_adjacency(pattern, target, m.mapping));
  }
}

TEST(Vf2, MatchesAreDistinct) {
  auto matches = vf2_all(graph::ring(4), graph::dgx1_v100());
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.mapping < b.mapping; });
  EXPECT_EQ(std::adjacent_find(matches.begin(), matches.end()),
            matches.end());
}

TEST(Vf2, ForbiddenVerticesNeverUsed) {
  graph::VertexMask forbidden(8);
  forbidden.set(0);
  forbidden.set(3);
  const Graph pattern = graph::ring(3);
  const Graph target = graph::dgx1_v100();
  std::size_t count = 0;
  vf2_enumerate(
      pattern, target,
      [&](const Match& m) {
        for (const VertexId v : m.mapping) {
          EXPECT_NE(v, 0u);
          EXPECT_NE(v, 3u);
        }
        ++count;
        return true;
      },
      {}, &forbidden);
  // Triangle on the remaining 6 fully connected vertices: 6*5*4 = 120.
  EXPECT_EQ(count, 120u);
}

TEST(Vf2, ForbiddenMaskSizeValidated) {
  const graph::VertexMask bad(3);
  EXPECT_THROW(vf2_enumerate(graph::ring(3), graph::dgx1_v100(),
                             [](const Match&) { return true; }, {}, &bad),
               std::invalid_argument);
}

TEST(Vf2, VisitorCanStopEarly) {
  std::size_t seen = 0;
  vf2_enumerate(graph::ring(3), graph::all_to_all(6), [&](const Match&) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(seen, 5u);
}

TEST(Vf2, LimitParameterCapsResults) {
  const auto matches = vf2_all(graph::ring(3), graph::all_to_all(6), {}, 7);
  EXPECT_EQ(matches.size(), 7u);
}

TEST(Vf2, OrderingConstraintsFilterMatches) {
  // Constraint mapping[0] < mapping[1] keeps exactly half the mappings of
  // an edge into K3 (3 * 2 = 6 raw, 3 constrained).
  const OrderingConstraints constraints = {{0, 1}};
  const auto matches =
      vf2_all(graph::chain(2), graph::all_to_all(3), constraints);
  EXPECT_EQ(matches.size(), 3u);
  for (const Match& m : matches) {
    EXPECT_LT(m.mapping[0], m.mapping[1]);
  }
}

TEST(Vf2, RootTargetPartitionsSearchSpace) {
  const Graph pattern = graph::ring(3);
  const Graph target = graph::dgx1_v100();
  const std::size_t total = vf2_all(pattern, target).size();
  std::size_t split_total = 0;
  for (std::int64_t root = 0; root < 8; ++root) {
    vf2_enumerate(
        pattern, target, [&](const Match&) {
          ++split_total;
          return true;
        },
        {}, nullptr, root);
  }
  EXPECT_EQ(split_total, total);
}

TEST(Vf2, RootTargetOutOfRangeThrows) {
  EXPECT_THROW(vf2_enumerate(graph::ring(3), graph::dgx1_v100(),
                             [](const Match&) { return true; }, {}, nullptr,
                             8),
               std::invalid_argument);
}

TEST(Vf2, SingleVertexPatternMatchesEveryVertex) {
  const auto matches = vf2_all(graph::single_gpu(), graph::dgx1_v100());
  EXPECT_EQ(matches.size(), 8u);
}

TEST(MatchHelpers, SortedVerticesAndUsedEdges) {
  const Graph pattern = graph::chain(3);
  Match m;
  m.mapping = {5, 2, 7};
  EXPECT_EQ(m.sorted_vertices(), (std::vector<VertexId>{2, 5, 7}));
  const auto edges = m.used_edges(pattern);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<VertexId, VertexId>{2, 5}));
  EXPECT_EQ(edges[1], (std::pair<VertexId, VertexId>{2, 7}));
}

}  // namespace
}  // namespace mapa::match
