// Cross-checks Ullmann's algorithm against VF2 — two independent
// implementations must agree on the exact match set for every pattern and
// topology combination MAPA uses.

#include "match/ullmann.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "match/vf2.hpp"

namespace mapa::match {
namespace {

using graph::Graph;

std::vector<std::vector<graph::VertexId>> normalized(
    std::vector<Match> matches) {
  std::vector<std::vector<graph::VertexId>> mappings;
  mappings.reserve(matches.size());
  for (Match& m : matches) mappings.push_back(std::move(m.mapping));
  std::sort(mappings.begin(), mappings.end());
  return mappings;
}

TEST(Ullmann, TriangleInCompleteFour) {
  EXPECT_EQ(ullmann_all(graph::ring(3), graph::all_to_all(4)).size(), 24u);
}

TEST(Ullmann, NoTriangleInSquare) {
  EXPECT_TRUE(ullmann_all(graph::ring(3), graph::ring(4)).empty());
}

TEST(Ullmann, NoTargetCeilingOnTheDynRowsCore) {
  // 65 vertices lands on the DynRows word-array instantiation, and so
  // does everything larger — the old 512-vertex ceiling is gone.
  EXPECT_EQ(ullmann_count(graph::ring(3), graph::pcie_only(65)),
            65u * 64u * 63u);
  graph::VertexMask busy(513);
  for (graph::VertexId v = 0; v < 500; ++v) busy.set(v);
  EXPECT_EQ(ullmann_count(graph::ring(3), graph::pcie_only(513), {}, &busy),
            13u * 12u * 11u);
}

TEST(Ullmann, RootTargetPartitionsTheMatchSet) {
  // Pinning pattern vertex 0 to each target vertex in turn must partition
  // the full match set without overlap — the root-split contract the
  // parallel enumerator relies on for every backend.
  const Graph pattern = graph::chain(3);
  const Graph target = graph::dgx1_v100(graph::Connectivity::kNvlinkOnly);
  const std::size_t total = ullmann_count(pattern, target);
  ASSERT_GT(total, 0u);
  std::size_t by_root = 0;
  for (graph::VertexId root = 0; root < target.num_vertices(); ++root) {
    std::size_t rooted = 0;
    ullmann_enumerate(
        pattern, target,
        [&](const Match& m) {
          EXPECT_EQ(m.mapping[0], root);
          ++rooted;
          return true;
        },
        {}, nullptr, static_cast<std::int64_t>(root));
    EXPECT_EQ(rooted, ullmann_count(pattern, target, {}, nullptr,
                                    static_cast<std::int64_t>(root)));
    by_root += rooted;
  }
  EXPECT_EQ(by_root, total);
  EXPECT_THROW(ullmann_count(pattern, target, {}, nullptr, 99),
               std::invalid_argument);
}

TEST(Ullmann, ForbiddenVerticesExcluded) {
  graph::VertexMask forbidden(8);
  forbidden.set(2);
  std::size_t count = 0;
  ullmann_enumerate(
      graph::ring(3), graph::dgx1_v100(),
      [&](const Match& m) {
        for (const auto v : m.mapping) EXPECT_NE(v, 2u);
        ++count;
        return true;
      },
      {}, &forbidden);
  EXPECT_EQ(count, 7u * 6u * 5u);
}

TEST(Ullmann, EarlyStopHonored) {
  std::size_t seen = 0;
  ullmann_enumerate(graph::ring(3), graph::all_to_all(6), [&](const Match&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3u);
}

struct CrossCheckCase {
  std::string name;
  Graph pattern;
  Graph target;
};

class UllmannVsVf2 : public ::testing::TestWithParam<CrossCheckCase> {};

TEST_P(UllmannVsVf2, IdenticalMatchSets) {
  const auto& c = GetParam();
  EXPECT_EQ(normalized(ullmann_all(c.pattern, c.target)),
            normalized(vf2_all(c.pattern, c.target)));
}

TEST_P(UllmannVsVf2, IdenticalUnderConstraints) {
  const auto& c = GetParam();
  const OrderingConstraints constraints = {{0, 1}};
  EXPECT_EQ(normalized(ullmann_all(c.pattern, c.target, constraints)),
            normalized(vf2_all(c.pattern, c.target, constraints)));
}

INSTANTIATE_TEST_SUITE_P(
    Combinations, UllmannVsVf2,
    ::testing::Values(
        CrossCheckCase{"ring3_dgxv", graph::ring(3), graph::dgx1_v100()},
        CrossCheckCase{"ring4_dgxv_nvlink", graph::ring(4),
                       graph::dgx1_v100(graph::Connectivity::kNvlinkOnly)},
        CrossCheckCase{"ring5_dgxv_nvlink", graph::ring(5),
                       graph::dgx1_v100(graph::Connectivity::kNvlinkOnly)},
        CrossCheckCase{"chain4_summit", graph::chain(4),
                       graph::summit_node()},
        CrossCheckCase{"tree5_torus_nvlink", graph::binary_tree(5),
                       graph::torus2d_16(graph::Connectivity::kNvlinkOnly)},
        CrossCheckCase{"star4_cubemesh_nvlink", graph::star(4),
                       graph::cubemesh_16(graph::Connectivity::kNvlinkOnly)},
        CrossCheckCase{"ncclmix4_dgxp100", graph::nccl_mix(4),
                       graph::dgx1_p100(graph::Connectivity::kNvlinkOnly)},
        CrossCheckCase{"alltoall3_summit_nvlink", graph::all_to_all(3),
                       graph::summit_node(graph::Connectivity::kNvlinkOnly)}),
    [](const ::testing::TestParamInfo<CrossCheckCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace mapa::match
