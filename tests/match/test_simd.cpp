// Differential tests for the AVX2 word-span kernels behind the DynRows
// matcher hot loops (match/rows_common.hpp). The dispatch wrappers
// (rows::and_into & co.) must be bit-identical to the scalar reference
// loops on every host: on AVX2 machines that pins the vector kernels,
// elsewhere the wrappers ARE the scalar loops and the tests degenerate
// to self-consistency — either way the contract below holds everywhere.
//
// Contract under test (documented in rows_common.hpp):
//   * mutated spans (and_into, andnot_into) end up word-for-word equal;
//   * the returned "any" value is zero iff the span is all-zero — the
//     exact nonzero value is unspecified (the vector path collapses it
//     to a flag), so it is only compared as a boolean;
//   * popcount_words is an exact count, compared for equality.
//
// Word counts sweep 1..20 so both sides of the dispatch threshold
// (words >= 4) and every tail residue mod 4 are covered, and the
// end-to-end case runs full enumeration on a 320-GPU rack (5-word
// DynRows spans with a ragged tail) against the generic baseline.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "match/enumerator.hpp"
#include "match/rows_common.hpp"
#include "match/ullmann.hpp"
#include "match/vf2.hpp"
#include "util/rng.hpp"

namespace mapa::match {
namespace {

// Random word spans with a mix of dense, sparse, and all-zero words so
// the "any" flag exercises both outcomes and carry-free lanes appear.
std::vector<std::uint64_t> random_span(util::Rng& rng, std::size_t words) {
  std::vector<std::uint64_t> span(words);
  for (std::uint64_t& w : span) {
    switch (rng.next_u64() % 4) {
      case 0: w = 0; break;                                  // empty word
      case 1: w = rng.next_u64(); break;                     // dense word
      case 2: w = rng.next_u64() & rng.next_u64(); break;    // medium
      default: w = rng.next_u64() & rng.next_u64() & rng.next_u64();
    }
  }
  return span;
}

// The "any" contract: zero iff all-zero; nonzero values are unspecified.
void expect_any_equivalent(std::uint64_t got, std::uint64_t ref,
                           const char* what, std::size_t words,
                           std::size_t trial) {
  EXPECT_EQ(got == 0, ref == 0)
      << what << " any-flag diverged at words=" << words
      << " trial=" << trial;
}

TEST(Simd, AndIntoMatchesScalar) {
  util::Rng rng(0x51D0001);
  for (std::size_t words = 1; words <= 20; ++words) {
    for (std::size_t trial = 0; trial < 64; ++trial) {
      const auto row = random_span(rng, words);
      const auto base = random_span(rng, words);
      auto got = base;
      auto ref = base;
      const std::uint64_t got_any =
          rows::and_into(got.data(), row.data(), words);
      const std::uint64_t ref_any =
          rows::detail::and_into_scalar(ref.data(), row.data(), words);
      EXPECT_EQ(got, ref) << "and_into span diverged at words=" << words
                          << " trial=" << trial;
      expect_any_equivalent(got_any, ref_any, "and_into", words, trial);
    }
  }
}

TEST(Simd, AndnotIntoMatchesScalar) {
  util::Rng rng(0x51D0002);
  for (std::size_t words = 1; words <= 20; ++words) {
    for (std::size_t trial = 0; trial < 64; ++trial) {
      const auto dom = random_span(rng, words);
      const auto excl = random_span(rng, words);
      std::vector<std::uint64_t> got(words, 0xfeedfeedfeedfeedULL);
      std::vector<std::uint64_t> ref(words, 0xfeedfeedfeedfeedULL);
      const std::uint64_t got_any =
          rows::andnot_into(got.data(), dom.data(), excl.data(), words);
      const std::uint64_t ref_any = rows::detail::andnot_into_scalar(
          ref.data(), dom.data(), excl.data(), words);
      EXPECT_EQ(got, ref) << "andnot_into span diverged at words=" << words
                          << " trial=" << trial;
      expect_any_equivalent(got_any, ref_any, "andnot_into", words, trial);
    }
  }
}

TEST(Simd, AndAnyMatchesScalar) {
  util::Rng rng(0x51D0003);
  for (std::size_t words = 1; words <= 20; ++words) {
    for (std::size_t trial = 0; trial < 64; ++trial) {
      auto a = random_span(rng, words);
      auto b = random_span(rng, words);
      // Force disjoint spans half the time so the zero branch is common
      // (random dense words almost always intersect).
      if (trial % 2 == 0) {
        for (std::size_t w = 0; w < words; ++w) b[w] &= ~a[w];
      }
      const auto a_copy = a;
      const auto b_copy = b;
      const std::uint64_t got = rows::and_any(a.data(), b.data(), words);
      const std::uint64_t ref =
          rows::detail::and_any_scalar(a.data(), b.data(), words);
      expect_any_equivalent(got, ref, "and_any", words, trial);
      EXPECT_EQ(a, a_copy) << "and_any must not mutate its inputs";
      EXPECT_EQ(b, b_copy) << "and_any must not mutate its inputs";
    }
  }
}

TEST(Simd, AnyBitsMatchesScalar) {
  util::Rng rng(0x51D0004);
  for (std::size_t words = 1; words <= 20; ++words) {
    for (std::size_t trial = 0; trial < 64; ++trial) {
      auto span = random_span(rng, words);
      // All-zero spans a quarter of the time, plus a single-bit-in-last-
      // word case: the vector tail is the likeliest place to drop a bit.
      if (trial % 4 == 0) span.assign(words, 0);
      if (trial % 4 == 1) {
        span.assign(words, 0);
        span[words - 1] = std::uint64_t{1} << (trial % 64);
      }
      const std::uint64_t got = rows::any_bits(span.data(), words);
      const std::uint64_t ref =
          rows::detail::any_bits_scalar(span.data(), words);
      expect_any_equivalent(got, ref, "any_bits", words, trial);
    }
  }
}

TEST(Simd, PopcountWordsMatchesScalar) {
  util::Rng rng(0x51D0005);
  for (std::size_t words = 1; words <= 20; ++words) {
    for (std::size_t trial = 0; trial < 64; ++trial) {
      auto span = random_span(rng, words);
      if (trial == 0) span.assign(words, 0);
      if (trial == 1) span.assign(words, ~std::uint64_t{0});
      EXPECT_EQ(rows::popcount_words(span.data(), words),
                rows::detail::popcount_words_scalar(span.data(), words))
          << "popcount diverged at words=" << words << " trial=" << trial;
    }
  }
}

// Saturation check for the vectorized popcount: 20 all-ones words is
// 1280 bits, enough to overflow any per-byte accumulator that skips the
// widening step (the Mula kernel must fold into 64-bit lanes every
// iteration).
TEST(Simd, PopcountAllOnesLongSpan) {
  for (std::size_t words = 4; words <= 64; words += 4) {
    const std::vector<std::uint64_t> span(words, ~std::uint64_t{0});
    EXPECT_EQ(rows::popcount_words(span.data(), words), words * 64);
  }
}

// End-to-end record identity through the dispatched kernels: full
// enumeration on a 320-GPU NVLink rack (5-word DynRows spans, so the
// AVX2 path covers words 0..3 and the scalar tail word 4) must equal
// the generic baseline match-for-match, including order, with a busy
// mask straddling the vector/tail boundary.
TEST(Simd, DynRowsEnumerationMatchesGenericOn320GpuRack) {
  const graph::Graph hw =
      graph::dgx_rack(40, graph::Connectivity::kNvlinkOnly);
  ASSERT_EQ(hw.num_vertices(), 320u);

  graph::VertexMask busy(hw.num_vertices());
  for (graph::VertexId v = 250; v < 262; ++v) busy.set(v);  // words 3/4
  for (graph::VertexId v = 0; v < 6; ++v) busy.set(v);      // word 0

  for (const auto& pattern :
       {graph::ring(4), graph::chain(5), graph::make_pattern(
                                             graph::PatternKind::kStar, 4)}) {
    const auto constraints = symmetry_constraints(pattern);
    std::vector<Match> bit_matches;
    vf2_enumerate(
        pattern, hw,
        [&](const Match& m) {
          bit_matches.push_back(m);
          return true;
        },
        constraints, &busy);
    std::vector<Match> generic_matches;
    vf2_enumerate_generic(
        pattern, hw,
        [&](const Match& m) {
          generic_matches.push_back(m);
          return true;
        },
        constraints, &busy);
    EXPECT_EQ(bit_matches, generic_matches)
        << "DynRows enumeration diverged from the generic baseline on "
        << pattern.name();
    EXPECT_EQ(ullmann_count(pattern, hw, constraints, &busy),
              generic_matches.size())
        << "Ullmann count diverged on " << pattern.name();
  }
}

#ifdef MAPA_AVX2_DISPATCH
// When the build carries the AVX2 kernels and the host supports them,
// call them directly (not via dispatch) so a future change to the
// words>=4 threshold can't silently stop testing the vector path.
TEST(Simd, Avx2KernelsDirectWhenSupported) {
  if (!rows::detail::have_avx2()) {
    GTEST_SKIP() << "host lacks AVX2";
  }
  util::Rng rng(0x51D0006);
  for (std::size_t words = 4; words <= 19; ++words) {
    for (std::size_t trial = 0; trial < 32; ++trial) {
      const auto row = random_span(rng, words);
      const auto base = random_span(rng, words);
      auto got = base;
      auto ref = base;
      const std::uint64_t got_any =
          rows::detail::and_into_avx2(got.data(), row.data(), words);
      const std::uint64_t ref_any =
          rows::detail::and_into_scalar(ref.data(), row.data(), words);
      EXPECT_EQ(got, ref);
      EXPECT_EQ(got_any == 0, ref_any == 0);
      EXPECT_EQ(rows::detail::popcount_words_avx2(base.data(), words),
                rows::detail::popcount_words_scalar(base.data(), words));
      EXPECT_EQ(
          rows::detail::and_any_avx2(base.data(), row.data(), words) == 0,
          rows::detail::and_any_scalar(base.data(), row.data(), words) == 0);
      EXPECT_EQ(rows::detail::any_bits_avx2(base.data(), words) == 0,
                rows::detail::any_bits_scalar(base.data(), words) == 0);
    }
  }
}
#endif  // MAPA_AVX2_DISPATCH

}  // namespace
}  // namespace mapa::match
