// Match-cache correctness: hit/miss/bypass/eviction accounting,
// invalidation on hardware-graph change, replay fidelity, and — the
// property the engine relies on — exact parity of cached vs. uncached
// simulation job records for every enumerating policy.

#include <gtest/gtest.h>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "match/enumerator.hpp"
#include "policy/match_cache.hpp"
#include "policy/policy.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace mapa::policy {
namespace {

using graph::Graph;
using graph::VertexMask;

match::EnumerateOptions options_with_busy(VertexMask busy) {
  match::EnumerateOptions options;
  options.forbidden = std::move(busy);
  return options;
}

std::vector<match::Match> drain(MatchCache& cache, const Graph& pattern,
                                const Graph& hardware,
                                const match::EnumerateOptions& options) {
  std::vector<match::Match> matches;
  cache.for_each_match(pattern, hardware, options, [&](const match::Match& m) {
    matches.push_back(m);
    return true;
  });
  return matches;
}

TEST(MatchCache, HitAndMissAccounting) {
  MatchCache cache;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  const auto options = options_with_busy(VertexMask(8));

  const auto first = drain(cache, pattern, hw, options);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  ASSERT_FALSE(first.empty());

  const auto second = drain(cache, pattern, hw, options);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(first, second);  // replay is byte-for-byte the live stream

  // A different fleet state is a different key — served by the superset
  // filter (the idle-state entry covers it), not by replay or re-search.
  VertexMask busy(8);
  busy.set(5);
  drain(cache, pattern, hw, options_with_busy(busy));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().delta_hits, 1u);

  // A different pattern shape is a different key with no delta source.
  drain(cache, graph::chain(3), hw, options);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(MatchCache, MultiWordMasksKeyDistinctFleetStates) {
  // On a 128-GPU rack the busy mask spans two words; states that agree in
  // word 0 but differ in word 1 must be distinct keys (the mask enters the
  // key as VertexMask::fingerprint() over every word), and a repeated
  // two-word state must replay byte-identically.
  MatchCache cache;
  const Graph hw = graph::dgx_rack(16, graph::Connectivity::kNvlinkOnly);
  ASSERT_EQ(hw.num_vertices(), 128u);
  const Graph pattern = graph::ring(3);

  VertexMask low_only(128);
  low_only.set(3);
  const auto options_low = options_with_busy(low_only);
  const auto first = drain(cache, pattern, hw, options_low);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(cache.stats().misses, 1u);

  VertexMask both_words = low_only;
  both_words.set(100);
  const auto on_both = drain(cache, pattern, hw, options_with_busy(both_words));
  // The low-word state is a subset across BOTH words, so the superset
  // filter serves this — still a distinct key, stored separately.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().delta_hits, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  // The high-word busy bit really constrained the match set.
  EXPECT_LT(on_both.size(), first.size());
  for (const match::Match& m : on_both) {
    for (const graph::VertexId v : m.mapping) EXPECT_NE(v, 100u);
  }

  const auto replay_low = drain(cache, pattern, hw, options_low);
  const auto replay_both =
      drain(cache, pattern, hw, options_with_busy(both_words));
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(replay_low, first);
  EXPECT_EQ(replay_both, on_both);
}

TEST(MatchCache, WideHardwareChangeInvalidatesWholesale) {
  MatchCache cache;
  const Graph pattern = graph::ring(3);
  VertexMask mostly_busy(128);  // 16 free vertices, spanning both words
  for (graph::VertexId v = 8; v < 120; ++v) mostly_busy.set(v);
  const auto options = options_with_busy(mostly_busy);
  drain(cache, pattern, graph::dgx_rack(16, graph::Connectivity::kNvlinkOnly),
        options);
  EXPECT_EQ(cache.size(), 1u);
  // Same vertex count, different rack wiring: must invalidate.
  const Graph other = graph::pcie_only(128);
  const auto on_other = drain(cache, pattern, other, options);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  match::EnumerateOptions live = options;
  EXPECT_EQ(on_other.size(), match::count_matches(pattern, other, live));
}

TEST(MatchCache, InvalidatesOnHardwareChange) {
  MatchCache cache;
  const Graph pattern = graph::ring(3);
  const auto options = options_with_busy(VertexMask(8));
  drain(cache, pattern, graph::dgx1_v100(), options);
  EXPECT_EQ(cache.size(), 1u);

  // Same vertex count, different adjacency/edge-set: must invalidate.
  const auto on_other =
      drain(cache, pattern, graph::dgx1_v100(graph::Connectivity::kNvlinkOnly),
            options);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.size(), 1u);  // old entries dropped, new one stored
  EXPECT_EQ(cache.stats().hits, 0u);

  // And the post-invalidation result is correct for the new hardware.
  std::size_t live = match::count_matches(
      pattern, graph::dgx1_v100(graph::Connectivity::kNvlinkOnly));
  EXPECT_EQ(on_other.size(), live);
}

TEST(MatchCache, OversizedEntriesBypassStorage) {
  MatchCacheConfig config;
  config.max_matches_per_entry = 2;
  MatchCache cache(config);
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);  // far more than 2 matches
  const auto options = options_with_busy(VertexMask(8));

  const auto first = drain(cache, pattern, hw, options);
  EXPECT_GT(first.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // Bypassed, not stored: the oversized key must not occupy an LRU slot.
  EXPECT_EQ(cache.size(), 0u);

  const auto second = drain(cache, pattern, hw, options);
  EXPECT_EQ(second, first);  // live enumeration, not a truncated replay
  EXPECT_EQ(cache.stats().bypasses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(MatchCache, OversizedKeysDoNotEvictReplayableEntries) {
  // Regression: oversized keys used to be stored as marker entries and
  // could LRU-evict the small replayable entries that earn the cache its
  // keep. Under the unified fingerprint they live in a side set instead.
  MatchCacheConfig config;
  config.max_entries = 1;
  // chain(2) has 28 symmetry-broken matches on the PCIe-fallback DGX-1V
  // clique and fits; ring(3) (56) and star(3) (168) are oversized.
  config.max_matches_per_entry = 30;
  MatchCache cache(config);
  const Graph hw = graph::dgx1_v100();
  const auto options = options_with_busy(VertexMask(8));

  const auto small = drain(cache, graph::chain(2), hw, options);
  ASSERT_LE(small.size(), 30u);
  EXPECT_EQ(cache.size(), 1u);

  // Two different oversized patterns churn through; the single LRU slot
  // must survive untouched.
  drain(cache, graph::ring(3), hw, options);
  drain(cache, graph::star(3), hw, options);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  const auto replay = drain(cache, graph::chain(2), hw, options);
  EXPECT_EQ(replay, small);
  EXPECT_EQ(cache.stats().hits, 1u);

  // And the oversized keys keep bypassing (enumerated live, no storage).
  drain(cache, graph::ring(3), hw, options);
  EXPECT_EQ(cache.stats().bypasses, 1u);
}

TEST(MatchCache, EarlyStoppedEnumerationsAreNotStored) {
  MatchCache cache;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  const auto options = options_with_busy(VertexMask(8));

  std::size_t seen = 0;
  cache.for_each_match(pattern, hw, options, [&](const match::Match&) {
    return ++seen < 2;  // stop after two matches
  });
  EXPECT_EQ(cache.size(), 0u);  // incomplete stream must not be replayable
  drain(cache, pattern, hw, options);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(MatchCache, LruEviction) {
  MatchCacheConfig config;
  config.max_entries = 2;
  MatchCache cache(config);
  const Graph hw = graph::dgx1_v100();
  const auto options = options_with_busy(VertexMask(8));
  drain(cache, graph::ring(3), hw, options);
  drain(cache, graph::chain(3), hw, options);
  drain(cache, graph::star(3), hw, options);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // ring(3) was least recently used and evicted; chain(3) still cached.
  drain(cache, graph::chain(3), hw, options);
  EXPECT_EQ(cache.stats().hits, 1u);
  drain(cache, graph::ring(3), hw, options);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(MatchCache, BestCachedMatchAgreesWithBestMatch) {
  MatchCache cache;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  const auto options = options_with_busy(VertexMask(8));
  const auto scorer = [&](const match::Match& m) {
    double total = 0.0;
    for (const graph::Edge& e : pattern.edges()) {
      total += hw.edge_bandwidth(m.mapping[e.u], m.mapping[e.v]);
    }
    return total;
  };
  const auto uncached = best_cached_match(nullptr, pattern, hw, options, scorer);
  const auto miss = best_cached_match(&cache, pattern, hw, options, scorer);
  const auto hit = best_cached_match(&cache, pattern, hw, options, scorer);
  ASSERT_TRUE(uncached.has_value());
  ASSERT_TRUE(miss.has_value());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(uncached->mapping, miss->mapping);
  EXPECT_EQ(uncached->mapping, hit->mapping);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(MatchCacheDelta, SupersetFilterIsRecordIdenticalToFreshEnumeration) {
  // The core delta contract: an exact-fingerprint miss whose shape has a
  // cached entry under a SUBSET busy mask is served by filtering that
  // entry, and the filtered stream must equal a from-scratch enumeration
  // match-for-match, including order.
  MatchCache cache;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);

  const auto warm = drain(cache, pattern, hw, options_with_busy(VertexMask(8)));
  ASSERT_FALSE(warm.empty());
  EXPECT_EQ(cache.stats().misses, 1u);

  VertexMask busy(8);
  busy.set(2);
  busy.set(5);
  const auto filtered = drain(cache, pattern, hw, options_with_busy(busy));
  EXPECT_EQ(cache.stats().delta_hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);  // served without a matcher run

  MatchCache fresh;
  const auto reference = drain(fresh, pattern, hw, options_with_busy(busy));
  EXPECT_EQ(filtered, reference);
  for (const match::Match& m : filtered) {
    for (const graph::VertexId v : m.mapping) {
      EXPECT_NE(v, 2u);
      EXPECT_NE(v, 5u);
    }
  }

  // The filtered list was stored under its own fingerprint: the same
  // state replays as a plain hit, byte-identical.
  const auto replay = drain(cache, pattern, hw, options_with_busy(busy));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().delta_hits, 1u);
  EXPECT_EQ(replay, filtered);
}

TEST(MatchCacheDelta, NeverFiltersFromAMoreRestrictedState) {
  // Filtering can only remove matches; a cached entry under a BUSIER mask
  // than the query's must not be used (the query needs matches the entry
  // never saw). This direction must be a plain miss.
  MatchCache cache;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  VertexMask busy(8);
  busy.set(3);
  drain(cache, pattern, hw, options_with_busy(busy));
  EXPECT_EQ(cache.stats().misses, 1u);

  const auto unrestricted =
      drain(cache, pattern, hw, options_with_busy(VertexMask(8)));
  EXPECT_EQ(cache.stats().delta_hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  MatchCache fresh;
  EXPECT_EQ(unrestricted,
            drain(fresh, pattern, hw, options_with_busy(VertexMask(8))));
}

TEST(MatchCacheDelta, DisabledConfigFallsBackToPlainMisses) {
  MatchCacheConfig config;
  config.enable_delta = false;
  MatchCache cache(config);
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  drain(cache, pattern, hw, options_with_busy(VertexMask(8)));
  VertexMask busy(8);
  busy.set(1);
  const auto second = drain(cache, pattern, hw, options_with_busy(busy));
  EXPECT_EQ(cache.stats().delta_hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  MatchCache fresh;
  EXPECT_EQ(second, drain(fresh, pattern, hw, options_with_busy(busy)));
}

TEST(MatchCacheDelta, ShapeIndexStaysBoundedAndKeepsServing) {
  // Only the first max_delta_candidates entries per shape are
  // delta-visible; later states keep their LRU slots but never register.
  // With the bound at 1, every new state must still delta-filter from the
  // single registered (unrestricted) entry — and keep being
  // record-identical while doing so.
  MatchCacheConfig config;
  config.max_delta_candidates = 1;
  MatchCache cache(config);
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  drain(cache, pattern, hw, options_with_busy(VertexMask(8)));

  for (graph::VertexId v = 0; v < 4; ++v) {
    VertexMask busy(8);
    busy.set(v);
    busy.set(v + 4);
    const auto filtered = drain(cache, pattern, hw, options_with_busy(busy));
    MatchCache fresh;
    EXPECT_EQ(filtered, drain(fresh, pattern, hw, options_with_busy(busy)));
  }
  EXPECT_EQ(cache.stats().delta_hits, 4u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 5u);  // every filtered state stored normally
}

TEST(MatchCacheDelta, ChainedDerivationsStayExact) {
  // Delta-derived lists are stored and registered like any entry, so a
  // later, busier state may filter from a list that was itself produced
  // by filtering (the scan prefers the smallest eligible source — here
  // the 1-busy derivation over the unrestricted original). However deep
  // the chain, every stream must equal a from-scratch enumeration.
  MatchCache cache;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  drain(cache, pattern, hw, options_with_busy(VertexMask(8)));
  EXPECT_EQ(cache.stats().misses, 1u);

  VertexMask one(8);
  one.set(0);
  const auto small = drain(cache, pattern, hw, options_with_busy(one));
  EXPECT_EQ(cache.stats().delta_hits, 1u);  // filtered from the original
  EXPECT_EQ(cache.stats().misses, 1u);

  VertexMask two = one;
  two.set(6);
  const auto filtered = drain(cache, pattern, hw, options_with_busy(two));
  EXPECT_EQ(cache.stats().delta_hits, 2u);  // filtered from a derivation
  EXPECT_EQ(cache.stats().misses, 1u);
  MatchCache fresh;
  EXPECT_EQ(filtered, drain(fresh, pattern, hw, options_with_busy(two)));
  EXPECT_LT(filtered.size(), small.size());
}

TEST(MatchCacheDelta, HardwareChangeClearsTheShapeIndexToo) {
  // Regression guard for the side structures: after a topology swap the
  // shape index (like the oversized set) must be empty — a same-shape
  // query on the new hardware must re-enumerate, never filter a stale
  // entry computed against the old adjacency.
  MatchCache cache;
  const Graph pattern = graph::ring(3);
  drain(cache, pattern, graph::dgx1_v100(), options_with_busy(VertexMask(8)));
  EXPECT_EQ(cache.size(), 1u);

  const Graph other = graph::dgx1_v100(graph::Connectivity::kNvlinkOnly);
  VertexMask busy(8);
  busy.set(4);
  const auto on_other = drain(cache, pattern, other, options_with_busy(busy));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().delta_hits, 0u);  // no stale superset filtering
  MatchCache fresh;
  EXPECT_EQ(on_other, drain(fresh, pattern, other, options_with_busy(busy)));

  // And the index was rebuilt for the new hardware: a busier state now
  // delta-filters from the fresh entry.
  VertexMask busier = busy;
  busier.set(6);
  const auto filtered =
      drain(cache, pattern, other, options_with_busy(busier));
  EXPECT_EQ(cache.stats().delta_hits, 1u);
  MatchCache fresh2;
  EXPECT_EQ(filtered, drain(fresh2, pattern, other, options_with_busy(busier)));
}

TEST(MatchCacheDelta, OversizedShapesAreNeverDeltaSources) {
  // An oversized key bypasses storage, so its shape never registers; a
  // busier same-shape state must miss (and itself bypass or store by its
  // own size), not filter from a list that was never captured.
  MatchCacheConfig config;
  config.max_matches_per_entry = 2;
  MatchCache cache(config);
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  drain(cache, pattern, hw, options_with_busy(VertexMask(8)));
  EXPECT_EQ(cache.size(), 0u);

  VertexMask busy(8);
  busy.set(1);
  const auto second = drain(cache, pattern, hw, options_with_busy(busy));
  EXPECT_EQ(cache.stats().delta_hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  MatchCache fresh;
  EXPECT_EQ(second, drain(fresh, pattern, hw, options_with_busy(busy)));
}

/// Everything the engine logs except wall-clock scheduling overhead.
void expect_records_identical(const sim::SimResult& a, const sim::SimResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    SCOPED_TRACE(i);
    const sim::JobRecord& ra = a.records[i];
    const sim::JobRecord& rb = b.records[i];
    EXPECT_EQ(ra.job.id, rb.job.id);
    EXPECT_EQ(ra.gpus, rb.gpus);
    EXPECT_DOUBLE_EQ(ra.start_s, rb.start_s);
    EXPECT_DOUBLE_EQ(ra.finish_s, rb.finish_s);
    EXPECT_DOUBLE_EQ(ra.exec_s, rb.exec_s);
    EXPECT_DOUBLE_EQ(ra.aggregated_bw, rb.aggregated_bw);
    EXPECT_DOUBLE_EQ(ra.predicted_effbw, rb.predicted_effbw);
    EXPECT_DOUBLE_EQ(ra.measured_effbw, rb.measured_effbw);
    EXPECT_DOUBLE_EQ(ra.preserved_bw, rb.preserved_bw);
  }
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(MatchCacheParity, CachedAndUncachedSimulationsLogIdenticalRecords) {
  workload::GeneratorConfig gen;
  gen.num_jobs = 80;
  gen.seed = 11;
  const auto jobs = workload::generate_jobs(gen);
  for (const std::string policy : {"greedy", "preserve", "random"}) {
    SCOPED_TRACE(policy);
    sim::SimConfig cached;
    cached.use_match_cache = true;
    sim::SimConfig uncached;
    uncached.use_match_cache = false;
    const auto with_cache =
        sim::run_simulation(graph::dgx1_v100(), policy, jobs, {}, cached);
    const auto without_cache =
        sim::run_simulation(graph::dgx1_v100(), policy, jobs, {}, uncached);
    expect_records_identical(with_cache, without_cache);
    // The fleet cycles through repeat states, so the cache must be earning
    // its keep — and the uncached run must report no cache activity.
    EXPECT_GT(with_cache.match_cache_hits, 0u);
    EXPECT_EQ(without_cache.match_cache_hits, 0u);
    EXPECT_EQ(without_cache.match_cache_misses, 0u);
  }
}

}  // namespace
}  // namespace mapa::policy
