#include "policy/policy.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "policy/baseline.hpp"
#include "policy/greedy.hpp"
#include "policy/preserve.hpp"
#include "policy/random_policy.hpp"
#include "policy/topo_aware.hpp"
#include "score/effbw_model.hpp"
#include "score/scores.hpp"

namespace mapa::policy {
namespace {

using graph::Graph;
using graph::VertexId;

AllocationRequest request_for(const Graph& pattern, bool sensitive) {
  AllocationRequest r;
  r.pattern = &pattern;
  r.bandwidth_sensitive = sensitive;
  return r;
}

std::vector<bool> no_busy(const Graph& hw) {
  return std::vector<bool>(hw.num_vertices(), false);
}

TEST(Baseline, PicksLowestFreeIds) {
  BaselinePolicy policy;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  const auto result = policy.allocate(hw, no_busy(hw),
                                      request_for(pattern, true));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->match.mapping, (std::vector<VertexId>{0, 1, 2}));
}

TEST(Baseline, SkipsBusyIds) {
  BaselinePolicy policy;
  const Graph hw = graph::dgx1_v100();
  std::vector<bool> busy = no_busy(hw);
  busy[0] = busy[2] = true;
  const Graph pattern = graph::ring(3);
  const auto result =
      policy.allocate(hw, busy, request_for(pattern, true));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->match.mapping, (std::vector<VertexId>{1, 3, 4}));
}

TEST(Baseline, NulloptWhenNotEnoughFree) {
  BaselinePolicy policy;
  const Graph hw = graph::dgx1_v100();
  std::vector<bool> busy(8, true);
  busy[3] = false;
  const Graph pattern = graph::ring(2);
  EXPECT_FALSE(policy.allocate(hw, busy, request_for(pattern, true)));
}

TEST(Baseline, FillsScoreFields) {
  BaselinePolicy policy;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  const auto result = policy.allocate(hw, no_busy(hw),
                                      request_for(pattern, true));
  ASSERT_TRUE(result.has_value());
  // {0,1,2}: (0,1)=25 + (1,2)=50 + (0,2)=25 = 100.
  EXPECT_DOUBLE_EQ(result->aggregated_bw, 100.0);
  EXPECT_GT(result->predicted_effbw, 0.0);
  EXPECT_GT(result->preserved_bw, 0.0);
}

TEST(TopoAware, PrefersSingleSocket) {
  TopoAwarePolicy policy;
  const Graph hw = graph::dgx1_v100();
  std::vector<bool> busy = no_busy(hw);
  busy[0] = busy[1] = true;  // socket 0 has only {2,3} free
  const Graph pattern = graph::ring(3);
  const auto result =
      policy.allocate(hw, busy, request_for(pattern, true));
  ASSERT_TRUE(result.has_value());
  // Socket 1 ({4..7}, 4 free) is the only socket that fits 3 GPUs.
  for (const VertexId v : result->match.mapping) {
    EXPECT_EQ(hw.socket(v), 1);
  }
}

TEST(TopoAware, BestFitChoosesTighterSocket) {
  TopoAwarePolicy policy;
  const Graph hw = graph::dgx1_v100();
  std::vector<bool> busy = no_busy(hw);
  busy[0] = true;  // socket 0: 3 free; socket 1: 4 free
  const Graph pattern = graph::ring(3);
  const auto result =
      policy.allocate(hw, busy, request_for(pattern, true));
  ASSERT_TRUE(result.has_value());
  // Best fit: socket 0 (slack 0) over socket 1 (slack 1).
  for (const VertexId v : result->match.mapping) {
    EXPECT_EQ(hw.socket(v), 0);
  }
}

TEST(TopoAware, SpillsAcrossFewestSockets) {
  TopoAwarePolicy policy;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(5);
  const auto result = policy.allocate(hw, no_busy(hw),
                                      request_for(pattern, true));
  ASSERT_TRUE(result.has_value());
  // 5 GPUs cannot fit one socket of 4: expect one full socket + 1 spill.
  int socket0 = 0, socket1 = 0;
  for (const VertexId v : result->match.mapping) {
    (hw.socket(v) == 0 ? socket0 : socket1)++;
  }
  EXPECT_EQ(std::max(socket0, socket1), 4);
  EXPECT_EQ(std::min(socket0, socket1), 1);
}

TEST(Greedy, SelectsMaxAggregatedBandwidth) {
  GreedyPolicy policy;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  const auto result = policy.allocate(hw, no_busy(hw),
                                      request_for(pattern, true));
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->aggregated_bw, 125.0);  // the paper's ideal
}

TEST(Greedy, RespectsBusyMask) {
  GreedyPolicy policy;
  const Graph hw = graph::dgx1_v100();
  std::vector<bool> busy = no_busy(hw);
  // Take the whole first quad: best remaining triangle is in {4..7}.
  busy[0] = busy[1] = busy[2] = busy[3] = true;
  const Graph pattern = graph::ring(3);
  const auto result =
      policy.allocate(hw, busy, request_for(pattern, true));
  ASSERT_TRUE(result.has_value());
  for (const VertexId v : result->match.mapping) EXPECT_GE(v, 4u);
  // Best triangle in the second quad: {4,6,7} = 25+50+50 = 125.
  EXPECT_DOUBLE_EQ(result->aggregated_bw, 125.0);
}

TEST(Preserve, SensitiveJobsMaximizePredictedEffBw) {
  PreservePolicy policy;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  const auto chosen = policy.allocate(hw, no_busy(hw),
                                      request_for(pattern, true));
  ASSERT_TRUE(chosen.has_value());
  // No other match may have higher predicted EffBW.
  double best = 0.0;
  match::for_each_match(pattern, hw, [&](const match::Match& m) {
    best = std::max(best,
                    score::predict_effective_bandwidth(pattern, hw, m));
    return true;
  });
  EXPECT_DOUBLE_EQ(chosen->predicted_effbw, best);
}

TEST(Preserve, InsensitiveJobsMaximizePreservedBw) {
  PreservePolicy policy;
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  const auto chosen = policy.allocate(hw, no_busy(hw),
                                      request_for(pattern, false));
  ASSERT_TRUE(chosen.has_value());
  double best = 0.0;
  match::for_each_match(pattern, hw, [&](const match::Match& m) {
    best = std::max(best, score::preserved_bandwidth(hw, m));
    return true;
  });
  EXPECT_DOUBLE_EQ(chosen->preserved_bw, best);
}

TEST(Preserve, InsensitiveThenSensitiveKeepsFastLinks) {
  // The paper's key scenario: an insensitive job first, then a sensitive
  // one. Preserve must leave the sensitive job at least as well off as
  // Greedy does.
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);

  const auto run = [&](Policy& policy) {
    std::vector<bool> busy = no_busy(hw);
    const auto first =
        policy.allocate(hw, busy, request_for(pattern, false));
    for (const VertexId v : first->match.mapping) busy[v] = true;
    const auto second =
        policy.allocate(hw, busy, request_for(pattern, true));
    return second->predicted_effbw;
  };

  PreservePolicy preserve;
  GreedyPolicy greedy;
  EXPECT_GE(run(preserve), run(greedy));
}

TEST(Preserve, ThetaOverrideChangesScoring) {
  PolicyConfig config;
  config.theta.assign(score::kNumFeatures, 0.0);
  config.theta[2] = 100.0;  // reward PCIe links only (z feature)
  PreservePolicy policy(config);
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(3);
  const auto result = policy.allocate(hw, no_busy(hw),
                                      request_for(pattern, true));
  ASSERT_TRUE(result.has_value());
  // With the perverse theta the chosen allocation maximizes PCIe count.
  const auto census = score::used_link_census(pattern, hw, result->match);
  EXPECT_GT(census.pcie, 0);
}

TEST(Random, ValidAndSeedDeterministic) {
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(4);
  RandomPolicy a(7);
  RandomPolicy b(7);
  const auto ra = a.allocate(hw, no_busy(hw), request_for(pattern, true));
  const auto rb = b.allocate(hw, no_busy(hw), request_for(pattern, true));
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(ra->match.mapping, rb->match.mapping);
}

TEST(Random, DifferentSeedsExploreDifferentMatches) {
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(4);
  std::set<std::vector<VertexId>> seen;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomPolicy policy(seed);
    const auto r = policy.allocate(hw, no_busy(hw),
                                   request_for(pattern, true));
    seen.insert(r->match.mapping);
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(AllPolicies, NulloptWhenMachineFull) {
  const Graph hw = graph::dgx1_v100();
  const std::vector<bool> busy(8, true);
  const Graph pattern = graph::ring(2);
  for (const std::string name : {"baseline", "topo-aware", "greedy",
                                 "preserve", "random"}) {
    const auto policy = make_policy(name);
    EXPECT_FALSE(policy->allocate(hw, busy, request_for(pattern, true)))
        << name;
  }
}

TEST(AllPolicies, ValidateInputs) {
  const Graph hw = graph::dgx1_v100();
  const Graph pattern = graph::ring(2);
  const auto policy = make_policy("preserve");
  const std::vector<bool> bad_mask(3, false);
  EXPECT_THROW(policy->allocate(hw, bad_mask, request_for(pattern, true)),
               std::invalid_argument);
  AllocationRequest null_pattern;
  EXPECT_THROW(policy->allocate(hw, no_busy(hw), null_pattern),
               std::invalid_argument);
}

TEST(AllPolicies, ReturnedVerticesAreFreeAndDistinct) {
  const Graph hw = graph::torus2d_16();
  const Graph pattern = graph::ring(4);
  std::vector<bool> busy(16, false);
  busy[1] = busy[5] = busy[9] = true;
  for (const std::string name : {"baseline", "topo-aware", "greedy",
                                 "preserve", "random"}) {
    const auto policy = make_policy(name);
    const auto result =
        policy->allocate(hw, busy, request_for(pattern, true));
    ASSERT_TRUE(result.has_value()) << name;
    std::set<VertexId> unique;
    for (const VertexId v : result->match.mapping) {
      EXPECT_FALSE(busy[v]) << name;
      EXPECT_TRUE(unique.insert(v).second) << name;
    }
    EXPECT_EQ(unique.size(), 4u) << name;
  }
}

TEST(MakePolicy, KnownNamesAndUnknownRejected) {
  for (const std::string& name : paper_policy_names()) {
    EXPECT_EQ(make_policy(name)->name(), name);
  }
  EXPECT_THROW(make_policy("mystery"), std::invalid_argument);
}

TEST(MakePolicy, PaperOrderIsStable) {
  EXPECT_EQ(paper_policy_names(),
            (std::vector<std::string>{"baseline", "topo-aware", "greedy",
                                      "preserve"}));
}

}  // namespace
}  // namespace mapa::policy
