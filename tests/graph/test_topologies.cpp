// Verifies every topology factory against the paper's published structure,
// including the worked bandwidth examples of Section 2.2 (the strongest
// cross-check that our DGX-1V edge matrix is the paper's machine).

#include "graph/topology.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace mapa::graph {
namespace {

using interconnect::LinkType;

double pair_bw(const Graph& g, VertexId a, VertexId b) {
  return g.edge_bandwidth(a, b);
}

TEST(Dgx1V100, HasEightGpusAndFullConnectivityWithFallback) {
  const Graph g = dgx1_v100();
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 28u);  // complete graph via PCIe fallback
  EXPECT_TRUE(is_connected(g));
}

TEST(Dgx1V100, PaperFragmentationExample) {
  // Paper §2.2: allocation {GPU1, GPU2, GPU5} (1-based) = 87 GB/s
  // (1 PCIe + 1 single NVLink + 1 double NVLink). 0-based: {0, 1, 4}.
  const Graph g = dgx1_v100();
  EXPECT_DOUBLE_EQ(pair_bw(g, 0, 1) + pair_bw(g, 0, 4) + pair_bw(g, 1, 4),
                   87.0);
  EXPECT_EQ(g.edge_type(0, 1), LinkType::kNvLink2);
  EXPECT_EQ(g.edge_type(0, 4), LinkType::kNvLink2Double);
  EXPECT_EQ(g.edge_type(1, 4), LinkType::kPcie);
}

TEST(Dgx1V100, PaperIdealAllocationExample) {
  // Paper §2.2: ideal 3-GPU allocation {GPU1, GPU3, GPU4} = 125 GB/s
  // (1 single + 2 double NVLinks). 0-based: {0, 2, 3}.
  const Graph g = dgx1_v100();
  EXPECT_DOUBLE_EQ(pair_bw(g, 0, 2) + pair_bw(g, 0, 3) + pair_bw(g, 2, 3),
                   125.0);
}

TEST(Dgx1V100, PaperFig2LinkChoices) {
  // Paper §2.1 (Fig. 2b setup): GPUs 1&5 double NVLink, 1&2 single,
  // 1&6 PCIe (1-based). 0-based: (0,4), (0,1), (0,5).
  const Graph g = dgx1_v100();
  EXPECT_EQ(g.edge_type(0, 4), LinkType::kNvLink2Double);
  EXPECT_EQ(g.edge_type(0, 1), LinkType::kNvLink2);
  EXPECT_EQ(g.edge_type(0, 5), LinkType::kPcie);
}

TEST(Dgx1V100, EveryGpuSpendsSixNvlinkBricks) {
  const Graph g = dgx1_v100(Connectivity::kNvlinkOnly);
  for (VertexId v = 0; v < 8; ++v) {
    int bricks = 0;
    for (const VertexId nb : g.neighbors(v)) {
      bricks += g.edge_type(v, nb) == LinkType::kNvLink2Double ? 2 : 1;
    }
    EXPECT_EQ(bricks, 6) << "GPU " << v;
  }
}

TEST(Dgx1V100, SocketsSplitFourFour) {
  const Graph g = dgx1_v100();
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(g.socket(v), v < 4 ? 0 : 1);
  }
}

TEST(Dgx1V100, NvlinkOnlyHasSixteenLinks) {
  const Graph g = dgx1_v100(Connectivity::kNvlinkOnly);
  EXPECT_EQ(g.num_edges(), 16u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Dgx1P100, SameWiringAllSingleNvlinkV1) {
  const Graph g = dgx1_p100(Connectivity::kNvlinkOnly);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 16u);
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(e.type, LinkType::kNvLink1);
    EXPECT_DOUBLE_EQ(e.bandwidth_gbps, 20.0);
  }
  // P100 has 4 NVLink ports: degree 4 everywhere.
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(SummitNode, TwoTripletsOfDoubleNvlink) {
  const Graph g = summit_node(Connectivity::kNvlinkOnly);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 6u);  // two triangles
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(e.type, LinkType::kNvLink2Double);
    EXPECT_EQ(g.socket(e.u), g.socket(e.v));  // NVLink never crosses sockets
  }
  const Graph full = summit_node();
  EXPECT_EQ(full.num_edges(), 15u);  // complete with PCIe fallback
}

TEST(Torus2d, FourByFourRegularStructure) {
  const Graph g = torus2d_16(Connectivity::kNvlinkOnly);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);  // 16 row + 16 column torus links
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  // Row rings double, column rings single.
  int doubles = 0, singles = 0;
  for (const Edge& e : g.edges()) {
    if (e.type == LinkType::kNvLink2Double) ++doubles;
    if (e.type == LinkType::kNvLink2) ++singles;
  }
  EXPECT_EQ(doubles, 16);
  EXPECT_EQ(singles, 16);
  EXPECT_TRUE(is_connected(g));
}

TEST(Torus2d, QuadrantSockets) {
  const Graph g = torus2d_16();
  // GPUs 0,1,4,5 form quadrant (0,0) -> socket 0.
  EXPECT_EQ(g.socket(0), g.socket(1));
  EXPECT_EQ(g.socket(0), g.socket(4));
  EXPECT_EQ(g.socket(0), g.socket(5));
  EXPECT_NE(g.socket(0), g.socket(2));
  EXPECT_NE(g.socket(0), g.socket(8));
  EXPECT_NE(g.socket(0), g.socket(10));
}

TEST(CubeMesh16, TwoOctetsWithFourBridges) {
  const Graph g = cubemesh_16(Connectivity::kNvlinkOnly);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 16u * 2 + 4u);
  EXPECT_TRUE(is_connected(g));
  // The two octets replicate the DGX-1V matrix.
  const Graph dgx = dgx1_v100(Connectivity::kNvlinkOnly);
  for (const Edge& e : dgx.edges()) {
    EXPECT_EQ(g.edge_type(e.u, e.v), e.type);
    EXPECT_EQ(g.edge_type(e.u + 8, e.v + 8), e.type);
  }
}

TEST(CubeMesh16, IsMoreIrregularThanTorus) {
  // The paper contrasts the uniform torus with the irregular cube-mesh:
  // the torus is vertex-transitive (every vertex sees the same degree
  // profile), the cube-mesh is not.
  const Graph torus = torus2d_16(Connectivity::kNvlinkOnly);
  const Graph mesh = cubemesh_16(Connectivity::kNvlinkOnly);
  const auto torus_degrees = degree_sequence(torus);
  EXPECT_EQ(torus_degrees.front(), torus_degrees.back());
  const auto mesh_degrees = degree_sequence(mesh);
  EXPECT_NE(mesh_degrees.front(), mesh_degrees.back());
}

TEST(NvSwitch16, UniformCrossbar) {
  const Graph g = nvswitch_16();
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 120u);
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(e.type, LinkType::kNvSwitch);
  }
}

TEST(PcieOnly, CompleteAtPcieBandwidth) {
  const Graph g = pcie_only(4);
  EXPECT_EQ(g.num_edges(), 6u);
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(e.type, LinkType::kPcie);
    EXPECT_DOUBLE_EQ(e.bandwidth_gbps, 12.0);
  }
}

TEST(PcieFallback, OnlyFillsMissingPairs) {
  Graph g(3);
  g.add_edge(0, 1, LinkType::kNvLink2Double);
  add_pcie_fallback(g);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.edge_type(0, 1), LinkType::kNvLink2Double);  // not downgraded
  EXPECT_EQ(g.edge_type(0, 2), LinkType::kPcie);
  EXPECT_EQ(g.edge_type(1, 2), LinkType::kPcie);
}

TEST(AllFactories, PcieFallbackYieldsCompleteGraphs) {
  for (const Graph& g :
       {dgx1_v100(), dgx1_p100(), summit_node(), torus2d_16(), cubemesh_16(),
        nvswitch_16()}) {
    const std::size_t n = g.num_vertices();
    EXPECT_EQ(g.num_edges(), n * (n - 1) / 2) << g.name();
  }
}

}  // namespace
}  // namespace mapa::graph
