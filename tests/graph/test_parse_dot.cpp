#include <gtest/gtest.h>

#include "graph/dot.hpp"
#include "graph/parse.hpp"
#include "graph/topology.hpp"

namespace mapa::graph {
namespace {

constexpr const char* kMiniTopology = R"(
# a 4-GPU test box
topology mini
gpus 4
socket 0 0 1
socket 1 2 3
link 0 1 NV2x2
link 2 3 NV2
pcie_fallback
)";

TEST(ParseTopology, ParsesExample) {
  const Graph g = parse_topology_string(kMiniTopology);
  EXPECT_EQ(g.name(), "mini");
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 6u);  // 2 NVLinks + 4 PCIe fallback
  EXPECT_EQ(g.socket(1), 0);
  EXPECT_EQ(g.socket(2), 1);
  EXPECT_EQ(g.edge_type(0, 1), interconnect::LinkType::kNvLink2Double);
  EXPECT_EQ(g.edge_type(2, 3), interconnect::LinkType::kNvLink2);
  EXPECT_EQ(g.edge_type(0, 2), interconnect::LinkType::kPcie);
}

TEST(ParseTopology, WithoutFallbackKeepsOnlyDeclaredLinks) {
  const Graph g = parse_topology_string(
      "gpus 3\nlink 0 1 NV2\n");
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(ParseTopology, ErrorsCarryLineNumbers) {
  try {
    parse_topology_string("gpus 2\nlink 0 5 NV2\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ParseTopology, RejectsUnknownDirective) {
  EXPECT_THROW(parse_topology_string("gpus 2\nfrobnicate\n"),
               std::runtime_error);
}

TEST(ParseTopology, RejectsUnknownLinkType) {
  EXPECT_THROW(parse_topology_string("gpus 2\nlink 0 1 WARP\n"),
               std::runtime_error);
}

TEST(ParseTopology, RejectsSelfLink) {
  EXPECT_THROW(parse_topology_string("gpus 2\nlink 1 1 NV2\n"),
               std::runtime_error);
}

TEST(ParseTopology, RejectsMissingGpus) {
  EXPECT_THROW(parse_topology_string("# nothing\n"), std::runtime_error);
  EXPECT_THROW(parse_topology_string("link 0 1 NV2\n"), std::runtime_error);
}

TEST(ParseTopology, RejectsDuplicateGpusDirective) {
  EXPECT_THROW(parse_topology_string("gpus 2\ngpus 3\n"), std::runtime_error);
}

TEST(SerializeTopology, RoundTripsFactories) {
  for (const Graph& original :
       {dgx1_v100(), summit_node(), torus2d_16(), cubemesh_16()}) {
    const Graph reparsed = parse_topology_string(serialize_topology(original));
    EXPECT_EQ(reparsed, original) << original.name();
    EXPECT_EQ(reparsed.name(), original.name());
  }
}

TEST(Dot, ContainsVerticesEdgesAndSocketClusters) {
  const std::string dot = to_dot(dgx1_v100());
  EXPECT_NE(dot.find("GPU 0"), std::string::npos);
  EXPECT_NE(dot.find("GPU 7"), std::string::npos);
  EXPECT_NE(dot.find("cluster_socket0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_socket1"), std::string::npos);
  EXPECT_NE(dot.find("g0 -- g1"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);    // double NVLink
  EXPECT_NE(dot.find("style=dashed"), std::string::npos); // PCIe
}

TEST(Dot, SingleSocketSkipsClusters) {
  const std::string dot = to_dot(pcie_only(3));
  EXPECT_EQ(dot.find("cluster_socket"), std::string::npos);
}

}  // namespace
}  // namespace mapa::graph
