#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/patterns.hpp"
#include "graph/topology.hpp"

namespace mapa::graph {
namespace {

using interconnect::LinkType;

Graph two_components() {
  Graph g(5);
  g.add_edge(0, 1, LinkType::kPcie);
  g.add_edge(1, 2, LinkType::kPcie);
  g.add_edge(3, 4, LinkType::kPcie);
  return g;
}

TEST(ConnectedComponents, IdentifiesComponents) {
  const auto comp = connected_components(two_components());
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(ConnectedComponents, IsolatedVerticesAreOwnComponents) {
  const Graph g(3);
  const auto comp = connected_components(g);
  EXPECT_NE(comp[0], comp[1]);
  EXPECT_NE(comp[1], comp[2]);
}

TEST(IsConnected, Basics) {
  EXPECT_FALSE(is_connected(two_components()));
  EXPECT_TRUE(is_connected(ring(5)));
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_FALSE(is_connected(Graph(2)));
}

TEST(DegreeSequence, SortedDescending) {
  const Graph g = star(4);  // center degree 3, leaves degree 1
  const auto seq = degree_sequence(g);
  EXPECT_EQ(seq, (std::vector<std::size_t>{3, 1, 1, 1}));
}

TEST(PreservesAdjacency, AcceptsValidMapping) {
  const Graph p = chain(3);
  const Graph t = ring(4);
  // chain 0-1-2 onto ring vertices 0-1-2 (consecutive): valid.
  EXPECT_TRUE(preserves_adjacency(p, t, {0, 1, 2}));
}

TEST(PreservesAdjacency, RejectsBrokenEdge) {
  const Graph p = chain(3);
  const Graph t = ring(4);
  // 0-2 not adjacent in ring-4: chain edge 1-2 -> (2, 0)? mapping
  // {1, 2, 0}: edges (0,1)->(1,2) ok, (1,2)->(2,0)? not a ring-4 edge... it
  // is (2,3),(3,0) only. (2,0) is a chord: absent.
  EXPECT_FALSE(preserves_adjacency(p, t, {1, 0, 2}));
}

TEST(PreservesAdjacency, RejectsNonInjective) {
  const Graph p = chain(2);
  const Graph t = ring(3);
  EXPECT_FALSE(preserves_adjacency(p, t, {1, 1}));
}

TEST(PreservesAdjacency, RejectsWrongArity) {
  const Graph p = chain(3);
  const Graph t = ring(4);
  EXPECT_FALSE(preserves_adjacency(p, t, {0, 1}));
}

TEST(PreservesAdjacencyExactly, DistinguishesInducedMapping) {
  // Chain 0-1-2 mapped into a triangle preserves adjacency but not
  // non-adjacency (0 and 2 become adjacent).
  const Graph p = chain(3);
  const Graph t = ring(3);
  EXPECT_TRUE(preserves_adjacency(p, t, {0, 1, 2}));
  EXPECT_FALSE(preserves_adjacency_exactly(p, t, {0, 1, 2}));
}

TEST(Automorphisms, RingHasDihedralGroup) {
  // |Aut(C_n)| = 2n.
  EXPECT_EQ(automorphism_count(ring(3)), 6u);
  EXPECT_EQ(automorphism_count(ring(4)), 8u);
  EXPECT_EQ(automorphism_count(ring(5)), 10u);
  EXPECT_EQ(automorphism_count(ring(6)), 12u);
}

TEST(Automorphisms, ChainHasReflectionOnly) {
  EXPECT_EQ(automorphism_count(chain(4)), 2u);
  EXPECT_EQ(automorphism_count(chain(5)), 2u);
}

TEST(Automorphisms, StarFixesCenter) {
  // Leaves permute freely: (n-1)!.
  EXPECT_EQ(automorphism_count(star(4)), 6u);
  EXPECT_EQ(automorphism_count(star(5)), 24u);
}

TEST(Automorphisms, CompleteGraphIsFullSymmetric) {
  EXPECT_EQ(automorphism_count(all_to_all(4)), 24u);
}

TEST(Automorphisms, EdgelessGraphIsFullSymmetric) {
  EXPECT_EQ(automorphism_count(Graph(3)), 6u);
}

TEST(Automorphisms, EveryElementPreservesAdjacencyExactly) {
  const Graph g = nccl_mix(5);
  for (const auto& sigma : automorphisms(g)) {
    EXPECT_TRUE(preserves_adjacency_exactly(g, g, sigma));
  }
}

TEST(Automorphisms, IdentityAlwaysPresent) {
  const Graph g = binary_tree(6);
  const auto group = automorphisms(g);
  std::vector<VertexId> identity(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) identity[v] = v;
  EXPECT_NE(std::find(group.begin(), group.end(), identity), group.end());
}

TEST(Automorphisms, Dgx1VNvlinkGraphSymmetry) {
  // Sanity: the DGX-1V NVLink graph has a small non-trivial automorphism
  // group (the two quads mirror each other); the count must divide into
  // the raw structure and stay stable across refactors.
  const Graph g = dgx1_v100(Connectivity::kNvlinkOnly);
  const std::size_t count = automorphism_count(g);
  EXPECT_GE(count, 1u);
  EXPECT_EQ(automorphism_count(g), count);  // deterministic
}

}  // namespace
}  // namespace mapa::graph
