// WideBitGraph (word-array adjacency for 65..512-vertex targets):
// construction fidelity against the source Graph, the <=64 / <=512 /
// generic dispatch boundaries, the actionable error messages on both
// bitset cores, and the VertexMask multi-word fingerprint the match cache
// keys on.

#include <gtest/gtest.h>

#include <bit>
#include <stdexcept>

#include "graph/bitgraph.hpp"
#include "graph/topology.hpp"
#include "graph/widebitgraph.hpp"

namespace mapa::graph {
namespace {

TEST(WideBitGraph, RowsMatchGraphAdjacencyOnA128GpuRack) {
  const Graph rack = dgx_rack(16, Connectivity::kNvlinkOnly);
  ASSERT_EQ(rack.num_vertices(), 128u);
  const WideBitGraph bits(rack);
  EXPECT_EQ(bits.num_vertices(), 128u);
  EXPECT_EQ(bits.num_words(), 2u);
  for (VertexId u = 0; u < rack.num_vertices(); ++u) {
    EXPECT_EQ(bits.degree(u), rack.degree(u));
    for (VertexId v = 0; v < rack.num_vertices(); ++v) {
      ASSERT_EQ(bits.has_edge(u, v), rack.has_edge(u, v))
          << "edge (" << u << ", " << v << ")";
    }
  }
  // The full candidate domain has every vertex bit set and nothing above.
  std::size_t all_bits = 0;
  for (std::size_t w = 0; w < bits.num_words(); ++w) {
    all_bits += static_cast<std::size_t>(std::popcount(bits.all_vertices()[w]));
  }
  EXPECT_EQ(all_bits, 128u);
}

TEST(WideBitGraph, RowWordsCrossNodeBoundaries) {
  // In a 16-node DGX rack, the inter-node rail links GPU 63 (last of node
  // 7, word 0) to GPU 64 (first of node 8, word 1): both row words of the
  // endpoints must carry the edge.
  const Graph rack = dgx_rack(16, Connectivity::kNvlinkOnly);
  const WideBitGraph bits(rack);
  ASSERT_TRUE(rack.has_edge(63, 64));
  EXPECT_TRUE(bits.has_edge(63, 64));
  EXPECT_TRUE(bits.has_edge(64, 63));
  EXPECT_EQ((bits.row(63)[1] >> 0) & 1, 1u);
  EXPECT_EQ((bits.row(64)[0] >> 63) & 1, 1u);
}

TEST(WideBitGraph, DispatchBoundaries) {
  EXPECT_TRUE(BitGraph::fits(pcie_only(64)));
  EXPECT_FALSE(BitGraph::fits(pcie_only(65)));
  EXPECT_TRUE(WideBitGraph::fits(pcie_only(65)));
  EXPECT_TRUE(WideBitGraph::fits(pcie_only(512)));
  EXPECT_FALSE(WideBitGraph::fits(Graph(513)));
}

TEST(WideBitGraph, ErrorMessagesNameTheNextPath) {
  // BitGraph's >64 rejection must point at the wide alternative, and the
  // wide core's >512 rejection at the generic matcher path.
  try {
    const BitGraph bits(pcie_only(65));
    FAIL() << "BitGraph accepted 65 vertices";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("WideBitGraph"), std::string::npos)
        << e.what();
  }
  try {
    const WideBitGraph bits(Graph(513));
    FAIL() << "WideBitGraph accepted 513 vertices";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("vf2_enumerate_generic"),
              std::string::npos)
        << e.what();
  }
}

TEST(WideBitGraph, EmptyAndSingleVertexGraphs) {
  const WideBitGraph empty((Graph(0)));
  EXPECT_EQ(empty.num_vertices(), 0u);
  EXPECT_EQ(empty.num_words(), 0u);
  const WideBitGraph one((Graph(1)));
  EXPECT_EQ(one.num_words(), 1u);
  EXPECT_EQ(one.all_vertices()[0], 1u);
  EXPECT_EQ(one.degree(0), 0u);
}

TEST(VertexMaskFingerprint, DistinguishesMultiWordStates) {
  // Two 128-vertex fleet states identical in word 0 but different in word
  // 1 must fingerprint differently — this is exactly the wide-fleet case
  // a single-word cache key would alias.
  VertexMask a(128);
  VertexMask b(128);
  a.set(3);
  b.set(3);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.set(100);
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  // Same set bits, different mask width: still distinct states.
  VertexMask narrow(64);
  VertexMask wide(128);
  narrow.set(3);
  wide.set(3);
  EXPECT_NE(narrow.fingerprint(), wide.fingerprint());

  // Empty vs all-clear one-word mask.
  EXPECT_NE(VertexMask().fingerprint(), VertexMask(8).fingerprint());
}

TEST(RackTopologies, StructureAndSockets) {
  const Graph summit = summit_rack(12, Connectivity::kNvlinkOnly);
  EXPECT_EQ(summit.num_vertices(), 72u);
  EXPECT_EQ(summit.name(), "Summit-rack-12");
  // Node 0 keeps the Summit intra-socket triple wiring...
  EXPECT_TRUE(summit.has_edge(0, 1));
  EXPECT_TRUE(summit.has_edge(3, 5));
  EXPECT_FALSE(summit.has_edge(0, 4));  // cross-socket is host-routed
  // ...node 1 is the same graph shifted by 6...
  EXPECT_TRUE(summit.has_edge(6, 7));
  EXPECT_FALSE(summit.has_edge(0, 7));
  // ...and the ring rail bridges consecutive nodes plus the wrap-around.
  EXPECT_TRUE(summit.has_edge(5, 6));
  EXPECT_TRUE(summit.has_edge(71, 0));
  EXPECT_EQ(summit.socket(0), 0);
  EXPECT_EQ(summit.socket(5), 1);
  EXPECT_EQ(summit.socket(6), 2);
  EXPECT_EQ(summit.socket(71), 23);

  const Graph dgx = dgx_rack(2, Connectivity::kNvlinkOnly);
  EXPECT_EQ(dgx.num_vertices(), 16u);
  // Two nodes: exactly one bridge, not a doubled pair of rails.
  EXPECT_TRUE(dgx.has_edge(7, 8));
  EXPECT_EQ(dgx.num_edges(), 2u * 16u + 1u);

  // PCIe fallback fully connects the rack, per the paper's convention.
  const Graph full = summit_rack(2);
  EXPECT_EQ(full.num_edges(), 12u * 11u / 2u);

  EXPECT_THROW(dgx_rack(0), std::invalid_argument);
}

}  // namespace
}  // namespace mapa::graph
