#include "graph/patterns.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace mapa::graph {
namespace {

TEST(Patterns, SingleGpu) {
  const Graph g = single_gpu();
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Patterns, RingStructure) {
  const Graph g = ring(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Patterns, RingOfTwoIsSingleEdge) {
  const Graph g = ring(2);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Patterns, ChainStructure) {
  const Graph g = chain(4);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Patterns, BinaryTreeStructure) {
  const Graph g = binary_tree(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 2u);  // root: children 1, 2
  EXPECT_EQ(g.degree(1), 3u);  // children 3, 4 + parent
  EXPECT_EQ(g.degree(6), 1u);  // leaf
  EXPECT_TRUE(is_connected(g));
}

TEST(Patterns, StarStructure) {
  const Graph g = star(6);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 5u);
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Patterns, AllToAllIsComplete) {
  const Graph g = all_to_all(5);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(Patterns, NcclMixIsRingUnionTree) {
  const Graph g = nccl_mix(5);
  const Graph r = ring(5);
  const Graph t = binary_tree(5);
  for (const Edge& e : r.edges()) EXPECT_TRUE(g.has_edge(e.u, e.v));
  for (const Edge& e : t.edges()) EXPECT_TRUE(g.has_edge(e.u, e.v));
  // No edges beyond the union.
  std::size_t union_count = 0;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      if (r.has_edge(u, v) || t.has_edge(u, v)) ++union_count;
    }
  }
  EXPECT_EQ(g.num_edges(), union_count);
}

TEST(Patterns, PatternEdgesCarryNoBandwidth) {
  for (const Graph& g : {ring(4), chain(4), binary_tree(4), star(4),
                         all_to_all(4), nccl_mix(4)}) {
    for (const Edge& e : g.edges()) {
      EXPECT_DOUBLE_EQ(e.bandwidth_gbps, 0.0) << g.name();
      EXPECT_EQ(e.type, interconnect::LinkType::kNone) << g.name();
    }
  }
}

TEST(Patterns, SizeValidation) {
  EXPECT_THROW(ring(1), std::invalid_argument);
  EXPECT_THROW(chain(0), std::invalid_argument);
  EXPECT_THROW(star(1), std::invalid_argument);
}

TEST(MakePattern, DispatchesAllKinds) {
  EXPECT_EQ(make_pattern(PatternKind::kRing, 4).num_edges(), 4u);
  EXPECT_EQ(make_pattern(PatternKind::kChain, 4).num_edges(), 3u);
  EXPECT_EQ(make_pattern(PatternKind::kTree, 4).num_edges(), 3u);
  EXPECT_EQ(make_pattern(PatternKind::kStar, 4).num_edges(), 3u);
  EXPECT_EQ(make_pattern(PatternKind::kAllToAll, 4).num_edges(), 6u);
}

TEST(MakePattern, SizeOneAlwaysSingle) {
  const Graph g = make_pattern(PatternKind::kRing, 1);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(MakePattern, ZeroRejected) {
  EXPECT_THROW(make_pattern(PatternKind::kRing, 0), std::invalid_argument);
}

TEST(PatternKind, RoundTripsThroughStrings) {
  for (const PatternKind kind :
       {PatternKind::kSingle, PatternKind::kRing, PatternKind::kChain,
        PatternKind::kTree, PatternKind::kStar, PatternKind::kAllToAll,
        PatternKind::kNcclMix}) {
    const auto parsed = parse_pattern_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_pattern_kind("bogus").has_value());
}

TEST(PatternKind, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_pattern_kind("RING"), PatternKind::kRing);
  EXPECT_EQ(parse_pattern_kind("ring"), PatternKind::kRing);
  EXPECT_EQ(parse_pattern_kind("AllToAll"), PatternKind::kAllToAll);
}

}  // namespace
}  // namespace mapa::graph
