#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace mapa::graph {
namespace {

using interconnect::LinkType;

TEST(Graph, EmptyGraph) {
  const Graph g(0);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.total_bandwidth(), 0.0);
}

TEST(Graph, AddEdgeDefaultsToPeakBandwidth) {
  Graph g(2);
  g.add_edge(0, 1, LinkType::kNvLink2Double);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_DOUBLE_EQ(g.edge_bandwidth(0, 1), 50.0);
  EXPECT_EQ(g.edge_type(0, 1), LinkType::kNvLink2Double);
}

TEST(Graph, ExplicitBandwidthOverridesPeak) {
  Graph g(2);
  g.add_edge(0, 1, LinkType::kPcie, 10.0);
  EXPECT_DOUBLE_EQ(g.edge_bandwidth(0, 1), 10.0);
}

TEST(Graph, ReAddKeepsHighestBandwidth) {
  Graph g(2);
  g.add_edge(0, 1, LinkType::kPcie);
  g.add_edge(0, 1, LinkType::kNvLink2Double);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_type(0, 1), LinkType::kNvLink2Double);

  // Downgrade attempt is ignored (paper: edges carry the highest link).
  g.add_edge(0, 1, LinkType::kPcie);
  EXPECT_EQ(g.edge_type(0, 1), LinkType::kNvLink2Double);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1, LinkType::kPcie), std::invalid_argument);
}

TEST(Graph, OutOfRangeVertexRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2, LinkType::kPcie), std::out_of_range);
  EXPECT_THROW(g.socket(5), std::out_of_range);
  EXPECT_THROW(g.neighbors(2), std::out_of_range);
}

TEST(Graph, NeighborsAndDegree) {
  Graph g(4);
  g.add_edge(0, 1, LinkType::kPcie);
  g.add_edge(0, 2, LinkType::kPcie);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 0u);
  const auto& nbs = g.neighbors(0);
  EXPECT_EQ(nbs.size(), 2u);
}

TEST(Graph, SocketLabels) {
  Graph g(3);
  EXPECT_EQ(g.socket(0), 0);
  g.set_socket(2, 1);
  EXPECT_EQ(g.socket(2), 1);
}

TEST(Graph, TotalBandwidthSumsEdges) {
  Graph g(3);
  g.add_edge(0, 1, LinkType::kNvLink2);         // 25
  g.add_edge(1, 2, LinkType::kNvLink2Double);   // 50
  EXPECT_DOUBLE_EQ(g.total_bandwidth(), 75.0);
}

TEST(Graph, EdgeLookupReturnsNullWhenAbsent) {
  Graph g(3);
  g.add_edge(0, 1, LinkType::kPcie);
  EXPECT_EQ(g.edge(0, 2), nullptr);
  EXPECT_EQ(g.edge(1, 1), nullptr);
  EXPECT_DOUBLE_EQ(g.edge_bandwidth(0, 2), 0.0);
  EXPECT_EQ(g.edge_type(0, 2), LinkType::kNone);
}

TEST(Graph, InducedSubgraphRelabelsAndKeepsEdges) {
  Graph g(5);
  g.set_socket(3, 1);
  g.add_edge(1, 3, LinkType::kNvLink2);
  g.add_edge(3, 4, LinkType::kPcie);
  g.add_edge(0, 1, LinkType::kNvLink2Double);

  const std::vector<VertexId> keep = {1, 3, 4};
  const Graph sub = g.induced_subgraph(keep);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);
  // keep[0]=1, keep[1]=3, keep[2]=4.
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(0, 2));
  EXPECT_EQ(sub.socket(1), 1);
  EXPECT_EQ(sub.edge_type(0, 1), LinkType::kNvLink2);
}

TEST(Graph, InducedSubgraphRejectsDuplicates) {
  Graph g(3);
  const std::vector<VertexId> dup = {1, 1};
  EXPECT_THROW(g.induced_subgraph(dup), std::invalid_argument);
}

TEST(Graph, WithoutVerticesComplementsSelection) {
  Graph g(4);
  g.add_edge(0, 1, LinkType::kPcie);
  g.add_edge(2, 3, LinkType::kNvLink2);
  const std::vector<VertexId> removed = {0, 1};
  std::vector<VertexId> surviving;
  const Graph rest = g.without_vertices(removed, &surviving);
  EXPECT_EQ(rest.num_vertices(), 2u);
  EXPECT_EQ(rest.num_edges(), 1u);
  EXPECT_EQ(surviving, (std::vector<VertexId>{2, 3}));
  EXPECT_DOUBLE_EQ(rest.total_bandwidth(), 25.0);
}

TEST(Graph, EqualityComparesStructureAndLabels) {
  Graph a(2), b(2);
  a.add_edge(0, 1, LinkType::kPcie);
  b.add_edge(0, 1, LinkType::kPcie);
  EXPECT_EQ(a, b);
  b.add_edge(0, 1, LinkType::kNvLink2);  // upgrade changes label
  EXPECT_FALSE(a == b);
}

TEST(Graph, VertexIdsAreDense) {
  const Graph g(3);
  EXPECT_EQ(g.vertex_ids(), (std::vector<VertexId>{0, 1, 2}));
}

}  // namespace
}  // namespace mapa::graph
