// BitRows storages (graph/bitrows.hpp): InlineRows<1> (inline single-word
// rows, the <= 64-vertex hot path) and DynRows (heap word-array rows, no
// vertex ceiling) — construction fidelity against the source Graph, the
// dispatch boundary, the actionable InlineRows overflow error, the
// VertexMask multi-word fingerprint the match
// cache keys on.

#include <gtest/gtest.h>

#include <bit>
#include <stdexcept>

#include "graph/bitgraph.hpp"
#include "graph/bitrows.hpp"
#include "graph/topology.hpp"

namespace mapa::graph {
namespace {

TEST(DynRows, RowsMatchGraphAdjacencyOnA128GpuRack) {
  const Graph rack = dgx_rack(16, Connectivity::kNvlinkOnly);
  ASSERT_EQ(rack.num_vertices(), 128u);
  const DynRows bits(rack);
  EXPECT_EQ(bits.num_vertices(), 128u);
  EXPECT_EQ(bits.num_words(), 2u);
  for (VertexId u = 0; u < rack.num_vertices(); ++u) {
    EXPECT_EQ(bits.degree(u), rack.degree(u));
    for (VertexId v = 0; v < rack.num_vertices(); ++v) {
      ASSERT_EQ(bits.has_edge(u, v), rack.has_edge(u, v))
          << "edge (" << u << ", " << v << ")";
    }
  }
  // The full candidate domain has every vertex bit set and nothing above.
  std::size_t all_bits = 0;
  for (std::size_t w = 0; w < bits.num_words(); ++w) {
    all_bits += static_cast<std::size_t>(std::popcount(bits.all_vertices()[w]));
  }
  EXPECT_EQ(all_bits, 128u);
}

TEST(DynRows, RowWordsCrossNodeBoundaries) {
  // In a 16-node DGX rack, the inter-node rail links GPU 63 (last of node
  // 7, word 0) to GPU 64 (first of node 8, word 1): both row words of the
  // endpoints must carry the edge.
  const Graph rack = dgx_rack(16, Connectivity::kNvlinkOnly);
  const DynRows bits(rack);
  ASSERT_TRUE(rack.has_edge(63, 64));
  EXPECT_TRUE(bits.has_edge(63, 64));
  EXPECT_TRUE(bits.has_edge(64, 63));
  EXPECT_EQ((bits.row(63)[1] >> 0) & 1, 1u);
  EXPECT_EQ((bits.row(64)[0] >> 63) & 1, 1u);
}

TEST(InlineRows, AgreesWithGraphAndBitGraphAdapter) {
  const Graph g = dgx1_v100();
  const InlineRows<1> rows(g);
  const BitGraph bits(g);
  EXPECT_EQ(rows.num_vertices(), g.num_vertices());
  EXPECT_EQ(InlineRows<1>::num_words(), 1u);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(rows.degree(u), g.degree(u));
    // The BitGraph adapter's uint64_t row is word 0 of the storage row.
    EXPECT_EQ(rows.row(u)[0], bits.row(u));
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(rows.has_edge(u, v), g.has_edge(u, v));
    }
  }
  EXPECT_EQ(rows.all_vertices()[0], bits.all_vertices());
}

TEST(BitRows, DispatchBoundary) {
  // InlineRows<1> covers every machine the paper evaluates; DynRows has
  // no ceiling — the old 512-vertex WideBitGraph limit is gone.
  EXPECT_TRUE(InlineRows<1>::fits(pcie_only(64)));
  EXPECT_FALSE(InlineRows<1>::fits(pcie_only(65)));
  EXPECT_TRUE(DynRows::fits(pcie_only(65)));
  EXPECT_TRUE(DynRows::fits(Graph(513)));
  EXPECT_TRUE(DynRows::fits(Graph(4096)));
}

TEST(BitRows, InlineOverflowErrorNamesDynRows) {
  // The InlineRows rejection must point at the unbounded storage.
  try {
    const InlineRows<1> rows(pcie_only(65));
    FAIL() << "InlineRows<1> accepted 65 vertices";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("DynRows"), std::string::npos)
        << e.what();
  }
}

TEST(DynRows, ConstructsWellBeyondTheRetiredCeiling) {
  // A 1024-vertex target — beyond the old 512-vertex WideBitGraph ceiling
  // (the alias header itself is retired; DynRows is the one wide storage).
  const DynRows bits(pcie_only(1024));
  EXPECT_EQ(bits.num_vertices(), 1024u);
  EXPECT_EQ(bits.num_words(), 16u);
  EXPECT_EQ(bits.degree(0), 1023u);
}

TEST(DynRows, EmptyAndSingleVertexGraphs) {
  const DynRows empty((Graph(0)));
  EXPECT_EQ(empty.num_vertices(), 0u);
  EXPECT_EQ(empty.num_words(), 0u);
  const DynRows one((Graph(1)));
  EXPECT_EQ(one.num_words(), 1u);
  EXPECT_EQ(one.all_vertices()[0], 1u);
  EXPECT_EQ(one.degree(0), 0u);
}

TEST(VertexMaskFingerprint, DistinguishesMultiWordStates) {
  // Two 128-vertex fleet states identical in word 0 but different in word
  // 1 must fingerprint differently — this is exactly the wide-fleet case
  // a single-word cache key would alias.
  VertexMask a(128);
  VertexMask b(128);
  a.set(3);
  b.set(3);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.set(100);
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  // Same set bits, different mask width: still distinct states.
  VertexMask narrow(64);
  VertexMask wide(128);
  narrow.set(3);
  wide.set(3);
  EXPECT_NE(narrow.fingerprint(), wide.fingerprint());

  // Empty vs all-clear one-word mask.
  EXPECT_NE(VertexMask().fingerprint(), VertexMask(8).fingerprint());
}

TEST(RackTopologies, StructureAndSockets) {
  const Graph summit = summit_rack(12, Connectivity::kNvlinkOnly);
  EXPECT_EQ(summit.num_vertices(), 72u);
  EXPECT_EQ(summit.name(), "Summit-rack-12");
  // Node 0 keeps the Summit intra-socket triple wiring...
  EXPECT_TRUE(summit.has_edge(0, 1));
  EXPECT_TRUE(summit.has_edge(3, 5));
  EXPECT_FALSE(summit.has_edge(0, 4));  // cross-socket is host-routed
  // ...node 1 is the same graph shifted by 6...
  EXPECT_TRUE(summit.has_edge(6, 7));
  EXPECT_FALSE(summit.has_edge(0, 7));
  // ...and the ring rail bridges consecutive nodes plus the wrap-around.
  EXPECT_TRUE(summit.has_edge(5, 6));
  EXPECT_TRUE(summit.has_edge(71, 0));
  EXPECT_EQ(summit.socket(0), 0);
  EXPECT_EQ(summit.socket(5), 1);
  EXPECT_EQ(summit.socket(6), 2);
  EXPECT_EQ(summit.socket(71), 23);

  const Graph dgx = dgx_rack(2, Connectivity::kNvlinkOnly);
  EXPECT_EQ(dgx.num_vertices(), 16u);
  // Two nodes: exactly one bridge, not a doubled pair of rails.
  EXPECT_TRUE(dgx.has_edge(7, 8));
  EXPECT_EQ(dgx.num_edges(), 2u * 16u + 1u);

  // PCIe fallback fully connects the rack, per the paper's convention.
  const Graph full = summit_rack(2);
  EXPECT_EQ(full.num_edges(), 12u * 11u / 2u);

  EXPECT_THROW(dgx_rack(0), std::invalid_argument);
}

}  // namespace
}  // namespace mapa::graph
