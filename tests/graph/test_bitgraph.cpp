// BitGraph / VertexMask: the bitset views must agree exactly with the
// Graph they were built from, and the dense bandwidth matrix must agree
// with the edge list, on every topology the paper uses.

#include <gtest/gtest.h>

#include "graph/bitgraph.hpp"
#include "graph/topology.hpp"

namespace mapa::graph {
namespace {

std::vector<std::pair<std::string, Graph>> all_topologies() {
  return {
      {"dgxv", dgx1_v100()},
      {"dgxp", dgx1_p100()},
      {"summit", summit_node()},
      {"torus", torus2d_16()},
      {"cubemesh", cubemesh_16()},
      {"nvswitch", nvswitch_16()},
      {"dgxv_nv", dgx1_v100(Connectivity::kNvlinkOnly)},
      {"torus_nv", torus2d_16(Connectivity::kNvlinkOnly)},
  };
}

TEST(BitGraph, RowsMatchHasEdgeOnEveryTopology) {
  for (const auto& [name, g] : all_topologies()) {
    SCOPED_TRACE(name);
    const BitGraph bits(g);
    ASSERT_EQ(bits.num_vertices(), g.num_vertices());
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      EXPECT_EQ(bits.degree(u), g.degree(u));
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(bits.has_edge(u, v), g.has_edge(u, v))
            << "edge {" << u << ", " << v << "}";
      }
    }
  }
}

TEST(BitGraph, AllVerticesMaskHasExactlyNBits) {
  const BitGraph bits(dgx1_v100());
  EXPECT_EQ(bits.all_vertices(), 0xFFu);
  const BitGraph big(pcie_only(64));
  EXPECT_EQ(big.all_vertices(), ~std::uint64_t{0});
}

TEST(BitGraph, RejectsGraphsBeyond64Vertices) {
  EXPECT_FALSE(BitGraph::fits(pcie_only(65)));
  EXPECT_THROW(BitGraph{pcie_only(65)}, std::invalid_argument);
}

TEST(BandwidthMatrix, AgreesWithEdgeList) {
  for (const auto& [name, g] : all_topologies()) {
    SCOPED_TRACE(name);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        const Edge* e = g.edge(u, v);
        EXPECT_DOUBLE_EQ(g.edge_bandwidth(u, v),
                         e == nullptr ? 0.0 : e->bandwidth_gbps);
      }
    }
  }
}

TEST(BandwidthMatrix, TracksEdgeUpgrades) {
  Graph g(2);
  g.add_edge(0, 1, interconnect::LinkType::kPcie);
  const double pcie = g.edge_bandwidth(0, 1);
  g.add_edge(0, 1, interconnect::LinkType::kNvLink2Double);
  EXPECT_GT(g.edge_bandwidth(0, 1), pcie);
  EXPECT_DOUBLE_EQ(g.edge_bandwidth(1, 0), g.edge_bandwidth(0, 1));
}

TEST(VertexMask, SetTestCountRoundTrip) {
  VertexMask mask(70);  // forces two words
  EXPECT_TRUE(mask.none());
  mask.set(0);
  mask.set(63);
  mask.set(69);
  EXPECT_EQ(mask.count(), 3u);
  EXPECT_TRUE(mask.test(63));
  EXPECT_FALSE(mask.test(64));
  EXPECT_TRUE(mask.test(69));
  mask.reset(63);
  EXPECT_FALSE(mask.test(63));
  EXPECT_EQ(mask.count(), 2u);
}

TEST(VertexMask, OfBusyMatchesVector) {
  std::vector<bool> busy = {true, false, false, true, true, false};
  const VertexMask mask = VertexMask::of_busy(busy);
  ASSERT_EQ(mask.size(), busy.size());
  for (std::size_t v = 0; v < busy.size(); ++v) {
    EXPECT_EQ(mask.test(static_cast<VertexId>(v)), busy[v]);
  }
  EXPECT_EQ(mask.word(0), 0b011001u);
}

}  // namespace
}  // namespace mapa::graph
