// TopologyHandle tests (graph/topology_handle.hpp): empty-handle
// behavior, the cached topology fingerprint and its bandwidth
// sensitivity (the property that makes a link-degraded fork of an
// archetype a distinct identity, so it can never share the healthy
// siblings' match cache), refcounted sharing semantics, and the
// once-per-archetype memory footprint.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>

#include "graph/algorithms.hpp"
#include "graph/topology.hpp"
#include "graph/topology_handle.hpp"

namespace mapa::graph {
namespace {

TEST(TopologyHandle, EmptyHandleThrowsOnAccess) {
  const TopologyHandle empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.fingerprint(), 0u);
  EXPECT_EQ(empty.use_count(), 0);
  EXPECT_EQ(empty.memory_bytes(), 0u);
  EXPECT_THROW(empty.graph(), std::logic_error);
  EXPECT_THROW(empty.num_vertices(), std::logic_error);

  const TopologyHandle null_shared{std::shared_ptr<const Graph>{}};
  EXPECT_TRUE(null_shared.empty());
}

TEST(TopologyHandle, FingerprintIsTheCachedTopologyFingerprint) {
  const Graph dgx = dgx1_v100();
  const TopologyHandle handle(dgx);
  EXPECT_FALSE(handle.empty());
  EXPECT_EQ(handle.fingerprint(), topology_fingerprint(dgx));
  EXPECT_EQ(handle.num_vertices(), dgx.num_vertices());
  EXPECT_EQ(handle.name(), dgx.name());

  // Bandwidth DOES move the fingerprint: handle identity pins adjacency
  // plus link bandwidths, so a link-degraded fork — same structure, one
  // bandwidth cut — can never pass for the healthy archetype (the fault
  // subsystem's cache-invalidation-by-construction guarantee). Structure
  // alone still hashes equal via adjacency_fingerprint.
  Graph scaled = dgx1_v100();
  for (const Edge& e : dgx.edges()) {
    // Re-adding an edge keeps the higher-bandwidth label in place, so
    // this doubles every weight without touching the structure.
    scaled.add_edge(e.u, e.v, e.type, e.bandwidth_gbps * 2.0);
  }
  EXPECT_EQ(adjacency_fingerprint(scaled), adjacency_fingerprint(dgx));
  EXPECT_NE(TopologyHandle(std::move(scaled)).fingerprint(),
            handle.fingerprint());

  // A structurally different archetype gets a different fingerprint.
  EXPECT_NE(TopologyHandle(nvswitch_16()).fingerprint(),
            handle.fingerprint());
}

TEST(TopologyHandle, CopiesShareOneArchetype) {
  const TopologyHandle original(dgx1_v100());
  EXPECT_EQ(original.use_count(), 1);
  {
    const TopologyHandle copy = original;  // refcount bump, no graph copy
    EXPECT_EQ(original.use_count(), 2);
    EXPECT_TRUE(copy.same_storage(original));
    EXPECT_EQ(&copy.graph(), &original.graph());
    EXPECT_EQ(copy.fingerprint(), original.fingerprint());
  }
  EXPECT_EQ(original.use_count(), 1);

  // Equal graphs adopted separately are distinct archetypes: identity,
  // not structural equality.
  const TopologyHandle separate(dgx1_v100());
  EXPECT_FALSE(separate.same_storage(original));
  EXPECT_EQ(separate.fingerprint(), original.fingerprint());
}

TEST(TopologyHandle, MemoryIsPaidOncePerArchetype) {
  const TopologyHandle handle(dgx1_v100());
  // The dense bandwidth/edge-index matrices dominate: the archetype costs
  // well more than a pointer, and copies add nothing.
  EXPECT_GT(handle.memory_bytes(), 8 * 8 * sizeof(double));
  const TopologyHandle copy = handle;
  EXPECT_EQ(copy.memory_bytes(), handle.memory_bytes());
}

}  // namespace
}  // namespace mapa::graph
