// TopologyHandle tests (graph/topology_handle.hpp): empty-handle
// behavior, the cached adjacency fingerprint and its
// bandwidth-independence (the property that lets equal-fingerprint
// servers share one match cache), refcounted sharing semantics, and the
// once-per-archetype memory footprint.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>

#include "graph/algorithms.hpp"
#include "graph/topology.hpp"
#include "graph/topology_handle.hpp"

namespace mapa::graph {
namespace {

TEST(TopologyHandle, EmptyHandleThrowsOnAccess) {
  const TopologyHandle empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.fingerprint(), 0u);
  EXPECT_EQ(empty.use_count(), 0);
  EXPECT_EQ(empty.memory_bytes(), 0u);
  EXPECT_THROW(empty.graph(), std::logic_error);
  EXPECT_THROW(empty.num_vertices(), std::logic_error);

  const TopologyHandle null_shared{std::shared_ptr<const Graph>{}};
  EXPECT_TRUE(null_shared.empty());
}

TEST(TopologyHandle, FingerprintIsTheCachedAdjacencyFingerprint) {
  const Graph dgx = dgx1_v100();
  const TopologyHandle handle(dgx);
  EXPECT_FALSE(handle.empty());
  EXPECT_EQ(handle.fingerprint(), adjacency_fingerprint(dgx));
  EXPECT_EQ(handle.num_vertices(), dgx.num_vertices());
  EXPECT_EQ(handle.name(), dgx.name());

  // Bandwidth does not move the fingerprint — it is adjacency identity,
  // matching what the match cache keys on.
  Graph scaled = dgx1_v100();
  for (const Edge& e : dgx.edges()) {
    // Re-adding an edge keeps the higher-bandwidth label in place, so
    // this doubles every weight without touching the structure.
    scaled.add_edge(e.u, e.v, e.type, e.bandwidth_gbps * 2.0);
  }
  EXPECT_EQ(TopologyHandle(std::move(scaled)).fingerprint(),
            handle.fingerprint());

  // A structurally different archetype gets a different fingerprint.
  EXPECT_NE(TopologyHandle(nvswitch_16()).fingerprint(),
            handle.fingerprint());
}

TEST(TopologyHandle, CopiesShareOneArchetype) {
  const TopologyHandle original(dgx1_v100());
  EXPECT_EQ(original.use_count(), 1);
  {
    const TopologyHandle copy = original;  // refcount bump, no graph copy
    EXPECT_EQ(original.use_count(), 2);
    EXPECT_TRUE(copy.same_storage(original));
    EXPECT_EQ(&copy.graph(), &original.graph());
    EXPECT_EQ(copy.fingerprint(), original.fingerprint());
  }
  EXPECT_EQ(original.use_count(), 1);

  // Equal graphs adopted separately are distinct archetypes: identity,
  // not structural equality.
  const TopologyHandle separate(dgx1_v100());
  EXPECT_FALSE(separate.same_storage(original));
  EXPECT_EQ(separate.fingerprint(), original.fingerprint());
}

TEST(TopologyHandle, MemoryIsPaidOncePerArchetype) {
  const TopologyHandle handle(dgx1_v100());
  // The dense bandwidth/edge-index matrices dominate: the archetype costs
  // well more than a pointer, and copies add nothing.
  EXPECT_GT(handle.memory_bytes(), 8 * 8 * sizeof(double));
  const TopologyHandle copy = handle;
  EXPECT_EQ(copy.memory_bytes(), handle.memory_bytes());
}

}  // namespace
}  // namespace mapa::graph
