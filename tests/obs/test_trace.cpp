// TraceSink / Span (obs/trace.hpp): RAII span lifecycle, nesting order,
// the null-sink no-op path, the event cap, and the Chrome trace-event
// JSON serialization (brace-balanced, rebased timestamps, args intact).

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace mapa::obs {
namespace {

TEST(Span, NullSinkIsANoOp) {
  // Must not crash, allocate into a sink, or misbehave on arg()/finish().
  Span span(nullptr, "cat", "name");
  span.arg("k", 1);
  span.arg("s", "value");
  span.finish();
  span.finish();  // idempotent
}

TEST(Span, CompletesOnDestruction) {
  TraceSink sink;
  {
    Span span(&sink, "fleet", "tick");
    span.arg("tick", 7);
  }
  ASSERT_EQ(sink.size(), 1u);
  const auto events = sink.sorted_events();
  EXPECT_STREQ(events[0].category, "fleet");
  EXPECT_STREQ(events[0].name, "tick");
  EXPECT_FALSE(events[0].instant);
  ASSERT_EQ(events[0].num_args, 1u);
  EXPECT_STREQ(events[0].arg_keys[0], "tick");
  EXPECT_EQ(events[0].arg_values[0], "7");
}

TEST(Span, FinishIsIdempotent) {
  TraceSink sink;
  Span span(&sink, "cat", "once");
  span.finish();
  span.finish();
  EXPECT_EQ(sink.size(), 1u);
}

TEST(Span, ArgsBeyondCapAreDropped) {
  TraceSink sink;
  {
    Span span(&sink, "cat", "name");
    for (int i = 0; i < 10; ++i) span.arg("k", i);
  }
  EXPECT_EQ(sink.sorted_events()[0].num_args, TraceEvent::kMaxArgs);
}

TEST(TraceSink, NestedSpansSortOuterFirst) {
  TraceSink sink;
  {
    Span outer(&sink, "fleet", "tick");
    // Force the clock forward so the inner span's start is strictly
    // later even on a coarse steady_clock.
    const std::uint64_t mark = TraceSink::now_ns();
    while (TraceSink::now_ns() == mark) {
    }
    {
      Span inner(&sink, "fleet", "serve_shard");
    }
  }
  // Inner finishes (and lands in the sink) first, but sorted_events
  // orders by start time: the outer span started earlier.
  ASSERT_EQ(sink.size(), 2u);
  const auto events = sink.sorted_events();
  EXPECT_STREQ(events[0].name, "tick");
  EXPECT_STREQ(events[1].name, "serve_shard");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  // The outer span's interval contains the inner's.
  EXPECT_GE(events[0].start_ns + events[0].duration_ns,
            events[1].start_ns + events[1].duration_ns);
}

TEST(TraceSink, InstantEvents) {
  TraceSink sink;
  sink.instant("fleet", "fork");
  sink.instant("fleet", "rejoin");
  ASSERT_EQ(sink.size(), 2u);
  for (const TraceEvent& e : sink.sorted_events()) {
    EXPECT_TRUE(e.instant);
    EXPECT_EQ(e.duration_ns, 0u);
  }
}

TEST(TraceSink, CapsAtMaxEventsAndCountsDropped) {
  TraceSink sink(/*max_events=*/4);
  for (int i = 0; i < 10; ++i) sink.instant("cat", "tick");
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
}

TEST(TraceSink, ConcurrentEmittersLoseNothing) {
  TraceSink sink;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] {
      for (int i = 0; i < kPerThread; ++i) {
        Span span(&sink, "cat", "work");
        span.arg("i", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sink.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(sink.dropped(), 0u);
}

// Hand-rolled structural check: balanced braces/brackets outside
// strings, so a serializer regression cannot produce silently broken
// JSON (the Python-side smoke does full parsing in CI).
void expect_balanced_json(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceSink, ToJsonIsWellFormed) {
  TraceSink sink;
  {
    Span span(&sink, "fleet", "tick");
    span.arg("tick", 1);
    span.arg("label", "dgx1v");
    span.arg("ok", true);
  }
  sink.instant("fleet", "fork");
  const std::string json = sink.to_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"dgx1v\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  // Timestamps are rebased to the earliest event: some event is at 0.
  EXPECT_NE(json.find("\"ts\": 0.0"), std::string::npos);
}

TEST(TraceSink, EmptySinkSerializes) {
  TraceSink sink;
  expect_balanced_json(sink.to_json());
  EXPECT_EQ(sink.size(), 0u);
}

}  // namespace
}  // namespace mapa::obs
