// TelemetryLog / TelemetrySample (obs/telemetry.hpp): JSONL shape,
// utilization math, and the nested shard/archetype arrays.

#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace mapa::obs {
namespace {

TelemetrySample make_sample() {
  TelemetrySample s;
  s.tick = 42;
  s.sim_time_s = 12.5;
  s.jobs_pending = 3;
  s.jobs_running = 5;
  s.jobs_finished = 100;
  s.free_gpus = 8;
  s.total_gpus = 32;
  s.shards.push_back(ShardSample{2, 6, 4, 16});
  ArchetypeSample arch;
  arch.name = "dgx1v";
  arch.cache_hits = 90;
  arch.cache_misses = 10;
  arch.servers = 16;
  s.archetypes.push_back(arch);
  return s;
}

TEST(TelemetrySample, Utilization) {
  TelemetrySample s;
  EXPECT_DOUBLE_EQ(s.utilization(), 0.0);  // empty fleet: no div by zero
  s.total_gpus = 32;
  s.free_gpus = 8;
  EXPECT_DOUBLE_EQ(s.utilization(), 0.75);
  s.free_gpus = 32;
  EXPECT_DOUBLE_EQ(s.utilization(), 0.0);
  s.free_gpus = 0;
  EXPECT_DOUBLE_EQ(s.utilization(), 1.0);
}

TEST(TelemetrySample, ToJsonIsSingleLineWithNestedArrays) {
  const std::string json = make_sample().to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"tick\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"jobs_finished\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"shards\": ["), std::string::npos);
  EXPECT_NE(json.find("\"archetypes\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"dgx1v\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\": 90"), std::string::npos);
  // Balanced braces outside strings (archetype names are identifiers).
  int depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TelemetryLog, JsonlOneObjectPerLine) {
  TelemetryLog log;
  EXPECT_TRUE(log.empty());
  log.append(make_sample());
  TelemetrySample second = make_sample();
  second.tick = 43;
  log.append(second);
  EXPECT_EQ(log.size(), 2u);

  const std::string jsonl = log.to_jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(jsonl.find("\"tick\": 43"), std::string::npos);
}

}  // namespace
}  // namespace mapa::obs
