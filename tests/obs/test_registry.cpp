// Registry (obs/registry.hpp): find-or-create semantics, kind safety,
// log2 histogram bucketing, and the determinism contract — merged
// totals are identical for any thread interleaving that produced the
// same events.

#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace mapa::obs {
namespace {

TEST(Registry, CounterFindOrCreateIsStable) {
  Registry registry;
  Counter& a = registry.counter("fleet.ticks");
  Counter& b = registry.counter("fleet.ticks");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);

  a.inc();
  b.add(2);
  EXPECT_EQ(a.value(), 3u);
}

TEST(Registry, NameRegistersExactlyOneKind) {
  Registry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x"), std::logic_error);
  registry.histogram("h");
  EXPECT_THROW(registry.counter("h"), std::logic_error);
}

TEST(Registry, GaugeTracksLatestValue) {
  Registry registry;
  Gauge& g = registry.gauge("depth");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  g.set(-10);
  EXPECT_EQ(g.value(), -10);
}

TEST(Histogram, BucketEdges) {
  // Bucket b holds values of bit width b: 0 -> 0, 1 -> 1, 2..3 -> 2,
  // 4..7 -> 3, ... Every power of two starts a new bucket.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of((1ull << 63) - 1), 63u);
  EXPECT_EQ(Histogram::bucket_of(1ull << 63), 64u);
  EXPECT_EQ(Histogram::bucket_of(~0ull), 64u);

  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper_bound(64), ~0ull);

  // Round trip: every value is <= its bucket's upper bound, and above
  // the previous bucket's.
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 5ull, 100ull, 4096ull}) {
    const std::size_t b = Histogram::bucket_of(v);
    EXPECT_LE(v, Histogram::bucket_upper_bound(b));
    if (b > 0) {
      EXPECT_GT(v, Histogram::bucket_upper_bound(b - 1));
    }
  }
}

TEST(Histogram, CountSumAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);

  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  // Quantiles are bucket-resolution upper bounds: the median of 1..100
  // lands in bucket 6 (32..63), the p99 in bucket 7 (64..127).
  EXPECT_EQ(h.quantile(0.5), 63u);
  EXPECT_EQ(h.quantile(0.99), 127u);

  const auto buckets = h.buckets();
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(buckets[1], 1u);  // value 1
  EXPECT_EQ(buckets[2], 2u);  // 2..3
  EXPECT_EQ(buckets[7], 37u); // 64..100
}

// The determinism contract: the same multiset of events produces the
// same merged totals no matter how many threads recorded them or how
// the scheduler interleaved them.
TEST(Registry, MergedTotalsAreThreadCountIndependent) {
  constexpr std::uint64_t kEventsPerThread = 20000;

  const auto run = [&](std::size_t num_threads) {
    Registry registry;
    Counter& events = registry.counter("events");
    Histogram& values = registry.histogram("values");
    const auto work = [&](std::size_t thread_index) {
      for (std::uint64_t i = 0; i < kEventsPerThread; ++i) {
        events.inc();
        // Same multiset of recorded values regardless of the split.
        values.record((thread_index * kEventsPerThread + i) % 1000);
      }
    };
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back(work, t);
    }
    for (std::thread& t : threads) t.join();
    return registry.snapshot();
  };

  // 8 threads record 1/8th each vs 1 thread recording everything: the
  // value streams cover the same multiset, so every merged number —
  // count, sum, quantiles — must match exactly.
  const auto one = run(1);
  std::vector<MetricSnapshot> eight;
  {
    Registry registry;
    Counter& events = registry.counter("events");
    Histogram& values = registry.histogram("values");
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < kEventsPerThread / 8; ++i) {
          events.inc();
          values.record((t * (kEventsPerThread / 8) + i) % 1000);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    eight = registry.snapshot();
  }

  ASSERT_EQ(one.size(), 2u);
  ASSERT_EQ(eight.size(), 2u);
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].name, eight[i].name);
    EXPECT_EQ(one[i].value, eight[i].value);
    EXPECT_EQ(one[i].count, eight[i].count);
    EXPECT_EQ(one[i].sum, eight[i].sum);
    EXPECT_EQ(one[i].p50, eight[i].p50);
    EXPECT_EQ(one[i].p99, eight[i].p99);
  }
}

TEST(Registry, SnapshotIsSortedByName) {
  Registry registry;
  registry.counter("zebra");
  registry.gauge("alpha");
  registry.histogram("mid");
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zebra");
}

TEST(Registry, ToJsonShape) {
  Registry registry;
  registry.counter("c").add(5);
  registry.gauge("g").set(-2);
  Histogram& h = registry.histogram("h");
  h.record(10);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"c\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"g\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 10"), std::string::npos);
}

}  // namespace
}  // namespace mapa::obs
