// Fleet scheduling walkthrough: a heterogeneous 4-server fleet — a DGX-1V
// cube-mesh, a 6-GPU Summit node, a 16-GPU 2-D torus, and a 16-GPU
// NVSwitch crossbar — behind the cluster/ dispatcher with best-score
// server selection: every arrival probes each server's own MAPA policy and
// lands where the probed allocation scores highest. One master seed drives
// the trace, the stochastic policies, and thus the whole run.
//
//   ./fleet_scheduling [num_jobs] [seed]

#include <iostream>
#include <string>
#include <vector>

#include "cluster/fleet.hpp"
#include "cluster/metrics.hpp"
#include "graph/topology.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  const std::size_t num_jobs =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 160;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 42;

  // 1. A fleet-scale trace: Poisson arrivals, heavy-tailed durations.
  mapa::workload::FleetTraceConfig trace;
  trace.num_jobs = num_jobs;
  trace.arrival_rate_per_s = 0.2;  // one arrival per 5 s across the fleet
  trace.max_gpus = 5;
  trace.seed = seed;
  const auto jobs = mapa::workload::generate_fleet_trace(trace);
  std::cout << "Generated " << jobs.size() << " jobs (seed " << seed
            << ", Poisson arrivals, bounded-Pareto duration mix)\n\n";

  // 2. The heterogeneous fleet. Every server runs its own Preserve policy
  //    and allocation-state match cache over its own topology.
  std::vector<mapa::cluster::ServerSpec> servers;
  servers.push_back({"rack-a", mapa::graph::dgx1_v100(), "preserve"});
  servers.push_back({"rack-b", mapa::graph::summit_node(), "preserve"});
  servers.push_back({"rack-c", mapa::graph::torus2d_16(), "preserve"});
  servers.push_back({"rack-d", mapa::graph::nvswitch_16(), "preserve"});

  // 3. Dispatch with best-score selection, probing servers in parallel.
  //    The same seed + config always reproduces this run exactly,
  //    regardless of the thread count (see cluster/fleet.hpp).
  mapa::cluster::ClusterConfig config;
  config.selection = "best-score";
  config.threads = 4;
  config.seed = seed;
  mapa::cluster::FleetSimulator fleet(std::move(servers), config);
  const auto result = fleet.run(jobs);

  // 4. Where did the jobs go, and how good were the placements?
  mapa::util::Table per_server({"server", "topology", "GPUs", "jobs",
                                "utilization", "EffBW p50", "cache hit %"});
  const auto quality = mapa::cluster::per_server_box_plots(
      result, mapa::sim::RecordField::kPredictedEffBw);
  for (const auto& s : result.servers) {
    const auto plot = quality.find(s.name);
    const double lookups =
        static_cast<double>(s.match_cache_hits + s.match_cache_misses);
    per_server.add_row(
        {s.name, s.topology, std::to_string(s.num_gpus),
         std::to_string(s.jobs_placed), mapa::util::fixed(s.utilization, 3),
         plot == quality.end() ? "-" : mapa::util::fixed(plot->second.median, 1),
         lookups == 0.0 ? "-"
                        : mapa::util::fixed(100.0 *
                                                static_cast<double>(
                                                    s.match_cache_hits) /
                                                lookups,
                                            1)});
  }
  std::cout << "Fleet after " << result.records.size() << " jobs under "
            << result.selection << " selection:\n"
            << per_server.render() << '\n';

  const auto waits = mapa::cluster::queue_wait_box_plot(result);
  std::cout << "Fleet makespan: "
            << mapa::util::fixed(result.makespan_s / 3600.0, 2) << " h, "
            << mapa::util::fixed(result.throughput_jobs_per_hour(), 1)
            << " jobs/h\n"
            << "Queue wait (s): p25 " << mapa::util::fixed(waits.q25, 1)
            << ", median " << mapa::util::fixed(waits.median, 1) << ", p75 "
            << mapa::util::fixed(waits.q75, 1) << ", max "
            << mapa::util::fixed(waits.max, 1) << '\n'
            << "Cross-server EffBW spread: "
            << mapa::util::fixed(
                   mapa::cluster::allocation_quality_spread(result), 2)
            << " GB/s, pooled cache hit rate "
            << mapa::util::fixed(
                   100.0 * mapa::cluster::fleet_cache_hit_rate(result), 1)
            << "%\n";
  return 0;
}
