// Quickstart: the MAPA public API in one page.
//
// Builds the DGX-1 V100 hardware graph, allocates three jobs under the
// Preserve policy (paper Algorithm 1), prints the scores MAPA computed for
// each placement, releases one job, and shows the freed capacity being
// reused. Also writes the hardware topology as Graphviz DOT to
// examples/data/ (created on demand under the working directory).
//
//   ./quickstart [policy]        (default: preserve)

#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/mapa.hpp"
#include "graph/dot.hpp"
#include "graph/patterns.hpp"
#include "graph/topology.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "preserve";

  // 1. Describe the machine. Factories exist for every topology in the
  //    paper; arbitrary machines can be parsed from a text description
  //    (see examples/custom_topology.cpp).
  mapa::graph::Graph hardware = mapa::graph::dgx1_v100();
  std::cout << "Machine: " << hardware.name() << " with "
            << hardware.num_vertices() << " GPUs, "
            << hardware.total_bandwidth() << " GB/s total link bandwidth\n\n";

  // 2. Create the allocator with a pattern-selection policy.
  mapa::core::Mapa mapa(hardware, mapa::policy::make_policy(policy_name));

  // 3. Allocate jobs. Each job is an application pattern graph plus a
  //    bandwidth-sensitivity annotation.
  mapa::util::Table table(
      {"job", "pattern", "sensitive", "GPUs", "AggBW", "PredEffBW",
       "PreservedBW"});
  const auto show = [&](const char* name, const mapa::core::Allocation& a,
                        const mapa::graph::Graph& pattern, bool sensitive) {
    std::string gpus;
    for (const auto v : a.gpus()) {
      if (!gpus.empty()) gpus += ',';
      gpus += std::to_string(v);
    }
    table.add_row({name, pattern.name(), sensitive ? "yes" : "no", gpus,
                   mapa::util::fixed(a.aggregated_bw(), 1),
                   mapa::util::fixed(a.predicted_effbw(), 2),
                   mapa::util::fixed(a.preserved_bw(), 1)});
  };

  const auto training = mapa::graph::ring(3);       // VGG-style NCCL ring
  const auto solver = mapa::graph::chain(2);        // 2-GPU Jacobi solver
  const auto inference = mapa::graph::single_gpu(); // 1-GPU job

  auto job1 = mapa.allocate(training, /*bandwidth_sensitive=*/true);
  auto job2 = mapa.allocate(solver, /*bandwidth_sensitive=*/false);
  auto job3 = mapa.allocate(inference, /*bandwidth_sensitive=*/false);
  if (!job1 || !job2 || !job3) {
    std::cerr << "unexpected: allocation failed on an empty machine\n";
    return 1;
  }
  show("cnn-training", *job1, training, true);
  show("jacobi", *job2, solver, false);
  show("inference", *job3, inference, false);
  std::cout << table.render() << '\n';
  std::cout << "Free GPUs now: " << mapa.free_accelerators() << "/8\n\n";

  // 4. Release and reuse.
  mapa.release(*job1);
  std::cout << "Released cnn-training; free GPUs: "
            << mapa.free_accelerators() << "/8\n";
  const auto job4 = mapa.allocate(mapa::graph::ring(4), true);
  if (job4) {
    std::cout << "New 4-GPU ring allocated with predicted EffBW "
              << mapa::util::fixed(job4->predicted_effbw(), 2) << " GB/s\n";
  }

  // 5. Export the machine for visual inspection.
  std::filesystem::create_directories("examples/data");
  std::ofstream dot("examples/data/dgx1_v100.dot");
  dot << mapa::graph::to_dot(hardware);
  std::cout << "\nWrote examples/data/dgx1_v100.dot "
               "(render with: dot -Tpng ...)\n";
  return 0;
}
