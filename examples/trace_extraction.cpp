// Application-topology extraction (paper §3.1) end to end:
// a communication trace (the stand-in for NVLink counter profiling /
// NCCL call interception) is parsed, distilled into an application
// pattern graph, classified for bandwidth sensitivity, and then allocated
// by MAPA — no manual topology annotation anywhere.
//
//   ./trace_extraction [trace.txt]

#include <fstream>
#include <iostream>

#include "core/mapa.hpp"
#include "graph/dot.hpp"
#include "graph/topology.hpp"
#include "profile/extract.hpp"
#include "util/table.hpp"

namespace {

// What intercepting one data-parallel training job might record: large
// ring all-reduces on every iteration, a small broadcast at start-up, and
// some incidental point-to-point control traffic.
constexpr const char* kTrainingTrace = R"(
# kind participants bytes [count]
coll broadcast 4 0 1 2 3 1024 1
coll allreduce 4 0 1 2 3 1200000 160001
p2p 0 1 64 2000
p2p 0 3 64 2000
)";

}  // namespace

int main(int argc, char** argv) {
  std::vector<mapa::profile::CommEvent> events;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    events = mapa::profile::parse_trace(in);
  } else {
    events = mapa::profile::parse_trace_string(kTrainingTrace);
  }
  std::cout << "Trace: " << events.size() << " event records over "
            << mapa::profile::rank_count(events) << " ranks\n\n";

  // 1. Pairwise traffic totals (what the NVLink counters would show).
  mapa::util::Table traffic({"pair", "total GB"});
  for (const auto& [pair, bytes] : mapa::profile::pairwise_traffic(events)) {
    traffic.add_row({std::to_string(pair.first) + " <-> " +
                         std::to_string(pair.second),
                     mapa::util::fixed(bytes / 1e9, 3)});
  }
  std::cout << traffic.render() << '\n';

  // 2. Extract the application graph; drop sub-megabyte noise.
  mapa::profile::ExtractOptions options;
  options.min_total_bytes = 1e6;
  const mapa::graph::Graph pattern =
      mapa::profile::extract_application_graph(events, options);
  std::cout << "Extracted pattern: " << pattern.num_vertices()
            << " vertices, " << pattern.num_edges() << " edges\n";

  // 3. Classify sensitivity from the trace itself (Fig. 5 reasoning).
  const bool sensitive =
      mapa::profile::estimate_bandwidth_sensitivity(events);
  std::cout << "Estimated bandwidth sensitivity: "
            << (sensitive ? "sensitive" : "insensitive") << "\n\n";

  // 4. Hand the extracted job straight to MAPA.
  mapa::core::Mapa mapa(mapa::graph::dgx1_v100(),
                        mapa::policy::make_policy("preserve"));
  const auto allocation = mapa.allocate(pattern, sensitive);
  if (!allocation) {
    std::cerr << "allocation failed\n";
    return 1;
  }
  std::string gpus;
  for (const auto v : allocation->gpus()) {
    if (!gpus.empty()) gpus += ',';
    gpus += std::to_string(v);
  }
  std::cout << "MAPA placed the job on GPUs {" << gpus
            << "} with predicted EffBW "
            << mapa::util::fixed(allocation->predicted_effbw(), 2)
            << " GB/s\n";

  std::ofstream dot("extracted_pattern.dot");
  dot << mapa::graph::to_dot(pattern);
  std::cout << "Wrote extracted_pattern.dot\n";
  return 0;
}
