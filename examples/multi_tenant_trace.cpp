// Multi-tenant trace replay: the paper's Section 4 experiment as an
// application. Generates (or loads) a job file, replays it through the
// discrete-event simulator under all four policies, and prints the
// per-policy comparison plus Table-3-style speedups. Artifacts (job file
// and per-policy CSV logs) land in examples/data/, created on demand
// under the working directory.
//
//   ./multi_tenant_trace [num_jobs] [seed] [jobfile.txt]
//
// When a job file path is given it is loaded instead of generated.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "graph/topology.hpp"
#include "sim/engine.hpp"
#include "sim/logger.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"
#include "workload/jobfile.hpp"

int main(int argc, char** argv) {
  const std::size_t num_jobs =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 120;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 42;

  std::filesystem::create_directories("examples/data");

  std::vector<mapa::workload::Job> jobs;
  if (argc > 3) {
    std::ifstream in(argv[3]);
    if (!in) {
      std::cerr << "cannot open job file " << argv[3] << '\n';
      return 1;
    }
    jobs = mapa::workload::parse_job_file(in);
    std::cout << "Loaded " << jobs.size() << " jobs from " << argv[3]
              << "\n\n";
  } else {
    mapa::workload::GeneratorConfig config;
    config.num_jobs = num_jobs;
    config.seed = seed;
    jobs = mapa::workload::generate_jobs(config);
    std::ofstream out("examples/data/trace_jobs.txt");
    out << mapa::workload::serialize_job_file(jobs);
    std::cout << "Generated " << jobs.size() << " jobs (seed " << seed
              << "), saved to examples/data/trace_jobs.txt\n\n";
  }

  const mapa::graph::Graph hardware = mapa::graph::dgx1_v100();

  std::vector<mapa::sim::SimResult> results;
  for (const std::string& policy : mapa::policy::paper_policy_names()) {
    results.push_back(mapa::sim::run_simulation(hardware, policy, jobs));
    std::ofstream csv("examples/data/" + policy + "_log.csv");
    mapa::sim::write_csv(results.back(), csv);
  }

  mapa::util::Table overview({"policy", "makespan (h)", "jobs/h",
                              "sens. exec q75 (s)", "sens. EffBW q25",
                              "sched (ms)"});
  for (const auto& r : results) {
    const auto exec =
        mapa::sim::pooled_box_plot(r, mapa::sim::RecordField::kExecTime, true);
    const auto bw = mapa::sim::pooled_box_plot(
        r, mapa::sim::RecordField::kPredictedEffBw, true);
    overview.add_row({r.policy, mapa::util::fixed(r.makespan_s / 3600.0, 2),
                      mapa::util::fixed(r.throughput_jobs_per_hour(), 1),
                      mapa::util::fixed(exec.q75, 1),
                      mapa::util::fixed(bw.q25, 2),
                      mapa::util::fixed(r.total_scheduling_ms, 1)});
  }
  std::cout << "Policy comparison on " << hardware.name() << ":\n"
            << overview.render() << '\n';

  mapa::util::Table speedups(
      {"policy", "MIN", "25th %", "50th %", "75th %", "MAX", "Tput"});
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto s = mapa::sim::speedup_summary(results[0], results[i]);
    speedups.add_row({s.policy, mapa::util::fixed(s.min, 3),
                      mapa::util::fixed(s.q25, 3),
                      mapa::util::fixed(s.median, 3),
                      mapa::util::fixed(s.q75, 3),
                      mapa::util::fixed(s.max, 3),
                      mapa::util::fixed(s.throughput, 2)});
  }
  std::cout << "Per-job speedup vs baseline (Table 3 format):\n"
            << speedups.render();
  std::cout << "\nWrote per-policy CSV logs "
               "(examples/data/<policy>_log.csv).\n";
  return 0;
}
