// Effective-bandwidth model calibration (paper §3.4.3) as an application:
// regenerate the microbenchmark training set for a machine, fit the Eq. 2
// coefficients by least squares, and compare against the paper's Table 2.
//
//   ./effbw_calibration [topology]   (dgx-v | dgx-p | summit | torus |
//                                     cubemesh; default dgx-v)

#include <iostream>

#include "graph/topology.hpp"
#include "interconnect/microbench.hpp"
#include "score/regression.hpp"
#include "util/table.hpp"

namespace {

mapa::graph::Graph pick_topology(const std::string& name) {
  if (name == "dgx-v") return mapa::graph::dgx1_v100();
  if (name == "dgx-p") return mapa::graph::dgx1_p100();
  if (name == "summit") return mapa::graph::summit_node();
  if (name == "torus") return mapa::graph::torus2d_16();
  if (name == "cubemesh") return mapa::graph::cubemesh_16();
  throw std::invalid_argument("unknown topology '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "dgx-v";
  const mapa::graph::Graph hardware = pick_topology(name);

  // 1. Microbenchmark every distinct link mix reachable by 2-5 GPU rings.
  const auto samples =
      mapa::interconnect::generate_training_samples(hardware);
  std::cout << "Training samples on " << hardware.name() << ": "
            << samples.size() << " distinct (x, y, z) censuses\n"
            << "(the paper collects 31 on its DGX-V)\n\n";

  mapa::util::Table sample_table({"x (dbl)", "y (sgl)", "z (pcie)",
                                  "measured EffBW"});
  for (const auto& s : samples) {
    sample_table.add_row({std::to_string(s.census.doubles),
                          std::to_string(s.census.singles),
                          std::to_string(s.census.pcie),
                          mapa::util::fixed(s.measured_gbps, 2)});
  }
  std::cout << sample_table.render() << '\n';

  // 2. Fit theta and report the Fig. 12 quality metrics.
  const auto report = mapa::score::fit_and_evaluate(samples);
  std::cout << "Fit quality: RelErr "
            << mapa::util::fixed(report.relative_error, 4) << ", RMSE "
            << mapa::util::fixed(report.rmse, 4) << ", MAE "
            << mapa::util::fixed(report.mae, 4) << ", Pearson "
            << mapa::util::fixed(report.pearson, 4) << "\n"
            << "(paper Fig. 12: RelErr 0.0709, RMSE 1.5153)\n\n";

  // 3. Compare the refit coefficients with the paper's Table 2.
  mapa::util::Table theta_table({"coeff", "refit", "paper Table 2"});
  for (std::size_t i = 0; i < mapa::score::kNumFeatures; ++i) {
    theta_table.add_row({"theta_" + std::to_string(i + 1),
                         mapa::util::fixed(report.theta[i], 3),
                         mapa::util::fixed(mapa::score::kPaperTheta[i], 3)});
  }
  std::cout << theta_table.render();
  return 0;
}
