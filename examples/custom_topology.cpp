// Custom-topology walkthrough: MAPA on a machine it has never seen.
//
// Demonstrates (1) the topology text format standing in for nvidia-smi
// discovery, (2) the NVLink-only vs PCIe-fallback connectivity ablation
// from DESIGN.md, and (3) how allocation quality differs between policies
// on an asymmetric machine.
//
//   ./custom_topology [topology.txt]

#include <fstream>
#include <iostream>

#include "core/mapa.hpp"
#include "graph/dot.hpp"
#include "graph/parse.hpp"
#include "graph/patterns.hpp"
#include "match/enumerator.hpp"
#include "util/table.hpp"

namespace {

// A deliberately lopsided 10-GPU box: one "fast island" of 4 GPUs wired
// with double NVLink, a ring of 4 with single NVLink, and 2 PCIe-only
// stragglers.
constexpr const char* kLopsidedBox = R"(topology lopsided-10
gpus 10
socket 0 0 1 2 3 8
socket 1 4 5 6 7 9
link 0 1 NV2x2
link 0 2 NV2x2
link 0 3 NV2x2
link 1 2 NV2x2
link 1 3 NV2x2
link 2 3 NV2x2
link 4 5 NV2
link 5 6 NV2
link 6 7 NV2
link 4 7 NV2
pcie_fallback
)";

}  // namespace

int main(int argc, char** argv) {
  mapa::graph::Graph hardware;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    hardware = mapa::graph::parse_topology(in);
  } else {
    hardware = mapa::graph::parse_topology_string(kLopsidedBox);
  }
  std::cout << "Topology '" << hardware.name() << "': "
            << hardware.num_vertices() << " GPUs, " << hardware.num_edges()
            << " edges\n\n";

  // How many distinct placements does a 4-GPU ring have here?
  const auto pattern = mapa::graph::ring(4);
  std::cout << "Distinct 4-ring placements: "
            << mapa::match::count_matches(pattern, hardware) << "\n\n";

  // Compare where each policy puts a sensitive 4-GPU ring job.
  mapa::util::Table table({"policy", "GPUs", "AggBW", "PredEffBW"});
  for (const std::string& name : mapa::policy::paper_policy_names()) {
    mapa::core::Mapa mapa(hardware, mapa::policy::make_policy(name));
    const auto a = mapa.allocate(pattern, /*bandwidth_sensitive=*/true);
    if (!a) continue;
    std::string gpus;
    for (const auto v : a->gpus()) {
      if (!gpus.empty()) gpus += ',';
      gpus += std::to_string(v);
    }
    table.add_row({name, gpus, mapa::util::fixed(a->aggregated_bw(), 1),
                   mapa::util::fixed(a->predicted_effbw(), 2)});
  }
  std::cout << "Placement of a sensitive 4-GPU ring:\n"
            << table.render() << '\n';

  // Ablation: how much does the PCIe-fallback convention matter? Strip
  // the fallback edges and count structural matches again.
  mapa::graph::Graph nvlink_only(hardware.num_vertices(),
                                 hardware.name() + "-nvlink-only");
  for (mapa::graph::VertexId v = 0; v < hardware.num_vertices(); ++v) {
    nvlink_only.set_socket(v, hardware.socket(v));
  }
  for (const auto& e : hardware.edges()) {
    if (mapa::interconnect::is_nvlink(e.type)) {
      nvlink_only.add_edge(e.u, e.v, e.type, e.bandwidth_gbps);
    }
  }
  std::cout << "Connectivity ablation (DESIGN.md #3):\n"
            << "  4-ring matches with PCIe fallback: "
            << mapa::match::count_matches(pattern, hardware) << "\n"
            << "  4-ring matches NVLink-only:        "
            << mapa::match::count_matches(pattern, nvlink_only) << "\n\n";

  std::ofstream dot(hardware.name() + ".dot");
  dot << mapa::graph::to_dot(hardware);
  std::cout << "Wrote " << hardware.name() << ".dot\n";
  return 0;
}
