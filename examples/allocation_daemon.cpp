// Allocation-as-a-service in ~80 lines: start the AF_UNIX daemon over a
// small DGX fleet, drive it with the protocol client — allocate a burst,
// release one job early, query another, pull a stats snapshot — then
// stop it gracefully. Runs argument-free and doubles as the example
// smoke test for the real-socket path (unit tests use the in-process
// loopback instead; see tests/svc/).

#include <unistd.h>

#include <cstdio>
#include <string>
#include <variant>
#include <vector>

#include "graph/topology.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "workload/job.hpp"

int main() {
  using namespace mapa;

  std::vector<cluster::ServerSpec> specs;
  for (int i = 0; i < 4; ++i) {
    cluster::ServerSpec spec;
    spec.name = "dgx-" + std::to_string(i);
    spec.topology = graph::dgx1_v100();
    spec.policy = "preserve";
    specs.push_back(std::move(spec));
  }

  const std::string path =
      "/tmp/mapa_allocation_daemon_" + std::to_string(::getpid()) + ".sock";
  svc::SocketServer server(path, std::move(specs), svc::ServiceConfig{});
  server.start();
  std::printf("daemon listening on %s\n", path.c_str());

  {
    svc::SocketChannel channel(path);
    svc::Client client(channel);

    // A burst of ring jobs; ids double as job handles.
    std::vector<std::uint64_t> requests;
    for (int id = 1; id <= 8; ++id) {
      workload::Job job;
      job.id = id;
      job.workload = id % 2 == 0 ? "resnet-50" : "gmm";
      job.num_gpus = 1 + static_cast<std::size_t>(id % 4);
      job.pattern = job.num_gpus <= 1 ? graph::PatternKind::kSingle
                                      : graph::PatternKind::kRing;
      job.bandwidth_sensitive = id % 2 == 0;
      requests.push_back(client.allocate(job));
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const svc::Reply reply = client.wait(requests[i]);
      const auto ok = std::get<svc::AllocateReply>(reply.payload);
      std::printf("job %d -> server %u, %zu GPUs, t=[%.1f, %.1f]s\n",
                  ok.job_id, ok.server, ok.gpus.size(), ok.start_s,
                  ok.finish_s);
    }

    const auto released =
        std::get<svc::ReleaseReply>(client.wait(client.release(3)).payload);
    std::printf("release job 3 -> outcome %u\n", released.outcome);

    const auto queried =
        std::get<svc::QueryReply>(client.wait(client.query(4)).payload);
    std::printf("query job 4 -> state %u on server %u\n",
                static_cast<unsigned>(queried.state), queried.server);

    const auto stats =
        std::get<svc::StatsReply>(client.wait(client.stats()).payload);
    std::printf("stats: %s\n", stats.json.c_str());
  }

  server.stop();
  std::printf("daemon stopped\n");
  return 0;
}
