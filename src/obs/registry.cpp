#include "obs/registry.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace mapa::obs {

std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

std::size_t Histogram::bucket_of(std::uint64_t v) {
  return static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

void Histogram::record(std::uint64_t v) {
  Shard& shard = shards_[thread_slot() % kMetricShards];
  shard.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::array<std::uint64_t, kBuckets> merged{};
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      merged[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

std::uint64_t Histogram::quantile(double q) const {
  const auto merged = buckets();
  std::uint64_t total = 0;
  for (const std::uint64_t c : merged) total += c;
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += merged[b];
    if (static_cast<double>(cumulative) >= target && merged[b] > 0) {
      return bucket_upper_bound(b);
    }
  }
  return bucket_upper_bound(kBuckets - 1);
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Instrument& inst = instruments_[name];
  if (inst.counter == nullptr) {
    if (inst.gauge != nullptr || inst.histogram != nullptr) {
      throw std::logic_error("Registry: '" + name +
                             "' already registered as a different kind");
    }
    inst.kind = MetricSnapshot::Kind::kCounter;
    inst.counter = std::make_unique<Counter>();
  }
  return *inst.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Instrument& inst = instruments_[name];
  if (inst.gauge == nullptr) {
    if (inst.counter != nullptr || inst.histogram != nullptr) {
      throw std::logic_error("Registry: '" + name +
                             "' already registered as a different kind");
    }
    inst.kind = MetricSnapshot::Kind::kGauge;
    inst.gauge = std::make_unique<Gauge>();
  }
  return *inst.gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Instrument& inst = instruments_[name];
  if (inst.histogram == nullptr) {
    if (inst.counter != nullptr || inst.gauge != nullptr) {
      throw std::logic_error("Registry: '" + name +
                             "' already registered as a different kind");
    }
    inst.kind = MetricSnapshot::Kind::kHistogram;
    inst.histogram = std::make_unique<Histogram>();
  }
  return *inst.histogram;
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return instruments_.size();
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(instruments_.size());
  // std::map iteration is name-sorted, so the merge order — and thus the
  // snapshot — is deterministic regardless of registration order.
  for (const auto& [name, inst] : instruments_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = inst.kind;
    switch (inst.kind) {
      case MetricSnapshot::Kind::kCounter:
        s.value = static_cast<std::int64_t>(inst.counter->value());
        break;
      case MetricSnapshot::Kind::kGauge:
        s.value = inst.gauge->value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        s.count = inst.histogram->count();
        s.sum = inst.histogram->sum();
        s.p50 = inst.histogram->quantile(0.50);
        s.p99 = inst.histogram->quantile(0.99);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string Registry::to_json() const {
  const std::vector<MetricSnapshot> snaps = snapshot();
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const MetricSnapshot& s : snaps) {
    out << (first ? "" : ",") << "\n  \"" << s.name << "\": ";
    first = false;
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        out << s.value;
        break;
      case MetricSnapshot::Kind::kHistogram:
        out << "{\"count\": " << s.count << ", \"sum\": " << s.sum
            << ", \"p50\": " << s.p50 << ", \"p99\": " << s.p99 << "}";
        break;
    }
  }
  out << (first ? "" : "\n") << "}";
  return out.str();
}

}  // namespace mapa::obs
