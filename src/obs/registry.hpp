#pragma once
// Counter/gauge/histogram registry — the metrics half of the runtime
// observability layer (src/obs/). Hot paths hold references to named
// instruments obtained once from a Registry and update them with relaxed
// atomics striped across cache-line-padded thread shards, so concurrent
// probe workers never contend on one line and enabling stats never
// perturbs the fleet's byte-identical records contract: instruments are
// write-only from the schedulers' point of view (nothing ever reads one
// mid-run to make a decision), and shard merging happens only at
// collection points (snapshot()/to_json()), summing shards in fixed
// index order — addition commutes, so the merged totals are identical
// for any thread interleaving that produced the same events.
//
// Instrument kinds:
//   * Counter   — monotonic u64 (events, placements, kills).
//   * Gauge     — latest-value i64, single-writer by convention (queue
//                 depths sampled from the single-threaded dispatch loop).
//   * Histogram — log2-bucketed u64 samples (bucket b holds values whose
//                 bit width is b, i.e. [2^(b-1), 2^b); bucket 0 holds 0),
//                 with merged count/sum and a bucket-resolution quantile.
//
// Everything is allocation-free after registration; Registry hands out
// stable references (instruments are never destroyed before the Registry).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mapa::obs {

/// Number of thread shards an instrument stripes its updates across.
/// Threads hash onto shards by a process-wide thread slot; collisions are
/// safe (shards are atomics) and merely share a line.
inline constexpr std::size_t kMetricShards = 16;

/// Small dense id for the calling thread, assigned on first use. Used to
/// pick a metric shard and to label trace events with a stable tid.
std::size_t thread_slot();

namespace detail {
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[thread_slot() % kMetricShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Merged total across shards (fixed shard order; sum is interleaving
  /// independent).
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const detail::PaddedU64& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::PaddedU64, kMetricShards> shards_;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed histogram: record(v) lands in bucket bit_width(v)
/// (0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...), 65 buckets total.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  /// Bucket index a value lands in (exposed for tests and summaries).
  static std::size_t bucket_of(std::uint64_t v);
  /// Inclusive upper bound of a bucket (2^b - 1; bucket 0 -> 0).
  static std::uint64_t bucket_upper_bound(std::size_t bucket);

  void record(std::uint64_t v);

  std::uint64_t count() const;
  std::uint64_t sum() const;
  /// Merged per-bucket counts, in bucket order.
  std::array<std::uint64_t, kBuckets> buckets() const;
  /// Quantile estimate at bucket resolution: the upper bound of the first
  /// bucket whose cumulative count reaches q * count (q in [0, 1]).
  /// 0 when empty.
  std::uint64_t quantile(double q) const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// One instrument's merged state at snapshot time.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;       // counter total or gauge value
  std::uint64_t count = 0;      // histogram only
  std::uint64_t sum = 0;        // histogram only
  std::uint64_t p50 = 0;        // histogram only (bucket resolution)
  std::uint64_t p99 = 0;        // histogram only (bucket resolution)
};

class Registry {
 public:
  /// Find-or-create by name; the returned reference is stable for the
  /// Registry's lifetime. A name registers exactly one kind — re-using it
  /// for a different kind throws std::logic_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Deterministic merge of every instrument, sorted by name.
  std::vector<MetricSnapshot> snapshot() const;

  /// Snapshot as a JSON object keyed by instrument name (counters and
  /// gauges map to numbers; histograms to {count, sum, p50, p99}).
  std::string to_json() const;

  std::size_t size() const;

 private:
  struct Instrument {
    MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Instrument> instruments_;  // sorted by name
};

}  // namespace mapa::obs
