#pragma once
// Structured tracing — the spans half of the runtime observability layer
// (src/obs/). A TraceSink collects complete ("ph":"X") and instant
// ("ph":"i") events into per-thread-slot buffers (no lock on the hot
// path; each slot is only ever appended to by threads hashing onto it,
// guarded by a per-slot spinlock that is uncontended in practice) and
// serializes them as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing.
//
// The emitting side is the RAII Span: constructed against a
// `TraceSink*` that may be null, it captures a start timestamp, takes
// up to four small key/value args, and emits one complete event on
// destruction. When the sink pointer is null every method is a branch
// and a return — no clock read, no allocation — which is what makes the
// disabled path cheap enough to leave compiled into the hot loops
// (gated <= 1% by bench_observability).
//
// Span taxonomy used by the schedulers (category / name):
//   fleet / tick, serve_shard, probe_fanout, route, commit, rescue, kill
//   fault / drain, restore, server_crash, gpu_loss, gpu_recover,
//           link_degrade, link_repair
//   probe / allocate
//   cache / lookup
//   match / enumerate, count_matches, find_matches, best_match
//   sim   / allocate
// plus instants: fleet / fork, rejoin, rematch, retry.
// Events carry the emitting thread's dense slot id as "tid", so the
// probe fan-out renders as parallel tracks under one process.

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/registry.hpp"

namespace mapa::obs {

/// One trace event in Chrome trace-event terms. Args are stored as
/// up-to-kMaxArgs key/value pairs; values are pre-rendered JSON scalars
/// (numbers or quoted strings).
struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 4;
  const char* name = "";  // static-lifetime strings only
  const char* category = "";
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;  // 0 + instant=true -> "ph":"i"
  std::uint32_t tid = 0;
  bool instant = false;
  std::uint8_t num_args = 0;
  const char* arg_keys[kMaxArgs] = {};
  std::string arg_values[kMaxArgs];
};

/// Collects trace events into per-thread-slot buffers. Bounded: after
/// `max_events` events across all slots, further events are counted as
/// dropped instead of stored, so a pathological run cannot OOM the
/// host. All methods are thread-safe.
class TraceSink {
 public:
  explicit TraceSink(std::size_t max_events = kDefaultMaxEvents);

  static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

  /// Monotonic timestamp for span boundaries.
  static std::uint64_t now_ns();

  /// Record a complete ("ph":"X") event. Called by ~Span.
  void complete(TraceEvent event);
  /// Record an instant ("ph":"i") event at now_ns().
  void instant(const char* category, const char* name);

  std::size_t size() const;
  std::uint64_t dropped() const;

  /// All events merged across slots and sorted by (start_ns, tid, name)
  /// — a deterministic order for any set of identical events.
  std::vector<TraceEvent> sorted_events() const;

  /// Chrome trace-event JSON: {"traceEvents": [...]}. Timestamps are
  /// rebased to the earliest event and expressed in microseconds with
  /// one fractional digit (Perfetto accepts fractional "ts"/"dur").
  std::string to_json() const;
  /// to_json() written to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  struct alignas(64) Slot {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
  };

  std::size_t max_events_;
  std::atomic<std::size_t> total_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::array<Slot, kMetricShards> slots_;
};

/// RAII scoped span. All methods are no-ops when the sink is null.
/// `category` and `name` must be string literals (stored by pointer).
class Span {
 public:
  Span(TraceSink* sink, const char* category, const char* name)
      : sink_(sink) {
    if (sink_ == nullptr) return;
    event_.category = category;
    event_.name = name;
    event_.start_ns = TraceSink::now_ns();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  /// Attach a key/value arg (up to TraceEvent::kMaxArgs; extras are
  /// silently ignored). Keys must be string literals. One template for
  /// every integer type — a fixed overload set would collide where
  /// std::size_t aliases std::uint64_t.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void arg(const char* key, T value) {
    if (sink_ != nullptr) push_arg(key, std::to_string(value));
  }
  void arg(const char* key, bool value) {
    if (sink_ != nullptr) push_arg(key, value ? "true" : "false");
  }
  void arg(const char* key, double value) {
    if (sink_ != nullptr) push_arg(key, std::to_string(value));
  }
  /// String values are quoted (assumed free of characters needing JSON
  /// escapes — span args are identifiers, not user data).
  void arg(const char* key, const std::string& value) {
    if (sink_ == nullptr) return;
    std::string quoted;
    quoted.reserve(value.size() + 2);
    quoted.push_back('"');
    quoted.append(value);
    quoted.push_back('"');
    push_arg(key, std::move(quoted));
  }
  void arg(const char* key, const char* value) {
    if (sink_ != nullptr) arg(key, std::string(value));
  }

  /// End the span early (idempotent; the destructor becomes a no-op).
  void finish() {
    if (sink_ == nullptr) return;
    event_.duration_ns = TraceSink::now_ns() - event_.start_ns;
    event_.tid = static_cast<std::uint32_t>(thread_slot());
    sink_->complete(std::move(event_));
    sink_ = nullptr;
  }

 private:
  void push_arg(const char* key, std::string value) {
    if (event_.num_args >= TraceEvent::kMaxArgs) return;
    event_.arg_keys[event_.num_args] = key;
    event_.arg_values[event_.num_args] = std::move(value);
    ++event_.num_args;
  }

  TraceSink* sink_;
  TraceEvent event_;
};

}  // namespace mapa::obs
