#pragma once
// Front door of the runtime observability layer. An Observer bundles
// the three backends — TraceSink (spans), Registry (counters/gauges/
// histograms), TelemetryLog (fleet time-series) — behind one object a
// scheduler config can carry as a shared_ptr. Each backend exists only
// if its ObsConfig flag asked for it; the accessors return nullptr
// otherwise, and every instrumentation site in the hot paths branches
// on that pointer. No observer (the default) and a fully disabled
// observer both cost one predictable branch per site.

#include <cstddef>
#include <cstdint>
#include <memory>

#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace mapa::obs {

struct ObsConfig {
  /// Collect RAII spans into a TraceSink (Chrome trace-event JSON).
  bool tracing = false;
  /// Collect named counters/gauges/histograms into a Registry.
  bool counters = false;
  /// Sample fleet telemetry every N dispatcher ticks (0 = off). The
  /// final drained state is always sampled too when enabled.
  std::size_t telemetry_every_ticks = 0;
  /// Cap on stored trace events (excess counted as dropped).
  std::size_t trace_max_events = TraceSink::kDefaultMaxEvents;
  /// Zero the wall-clock overhead fields (scheduling_overhead_ms,
  /// total_scheduling_ms) in results so full structs compare
  /// byte-for-byte across runs. Independent of the collection flags —
  /// golden-record suites can set just this.
  bool zero_wall_clock = false;
};

class Observer {
 public:
  explicit Observer(ObsConfig config) : config_(config) {
    if (config_.tracing) {
      trace_ = std::make_unique<TraceSink>(config_.trace_max_events);
    }
    if (config_.counters) {
      registry_ = std::make_unique<Registry>();
    }
    if (config_.telemetry_every_ticks > 0) {
      telemetry_ = std::make_unique<TelemetryLog>();
    }
  }

  const ObsConfig& config() const { return config_; }

  /// Null when the corresponding ObsConfig flag is off.
  TraceSink* trace() const { return trace_.get(); }
  Registry* registry() const { return registry_.get(); }
  TelemetryLog* telemetry() const { return telemetry_.get(); }

 private:
  ObsConfig config_;
  std::unique_ptr<TraceSink> trace_;
  std::unique_ptr<Registry> registry_;
  std::unique_ptr<TelemetryLog> telemetry_;
};

/// Shorthand used at instrumentation sites: the TraceSink of an
/// optional observer, or nullptr.
inline TraceSink* trace_of(const std::shared_ptr<Observer>& observer) {
  return observer ? observer->trace() : nullptr;
}
inline Registry* registry_of(const std::shared_ptr<Observer>& observer) {
  return observer ? observer->registry() : nullptr;
}

}  // namespace mapa::obs
