#pragma once
// Front door of the runtime observability layer. An Observer bundles
// the three backends — TraceSink (spans), Registry (counters/gauges/
// histograms), TelemetryLog (fleet time-series) — behind one object a
// scheduler config can carry as a shared_ptr. Each backend exists only
// if its ObsConfig flag asked for it; the accessors return nullptr
// otherwise, and every instrumentation site in the hot paths branches
// on that pointer. No observer (the default) and a fully disabled
// observer both cost one predictable branch per site.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace mapa::obs {

struct ObsConfig {
  /// Collect RAII spans into a TraceSink (Chrome trace-event JSON).
  bool tracing = false;
  /// Collect named counters/gauges/histograms into a Registry.
  bool counters = false;
  /// Sample fleet telemetry every N dispatcher ticks (0 = off). The
  /// final drained state is always sampled too when enabled.
  std::size_t telemetry_every_ticks = 0;
  /// Cap on stored trace events (excess counted as dropped).
  std::size_t trace_max_events = TraceSink::kDefaultMaxEvents;
  /// Zero the wall-clock overhead fields (scheduling_overhead_ms,
  /// total_scheduling_ms) in results so full structs compare
  /// byte-for-byte across runs. Independent of the collection flags —
  /// golden-record suites can set just this.
  bool zero_wall_clock = false;
};

class Observer {
 public:
  explicit Observer(ObsConfig config) : config_(config) {
    if (config_.tracing) {
      trace_ = std::make_unique<TraceSink>(config_.trace_max_events);
    }
    if (config_.counters) {
      registry_ = std::make_unique<Registry>();
    }
    if (config_.telemetry_every_ticks > 0) {
      telemetry_ = std::make_unique<TelemetryLog>();
    }
  }

  const ObsConfig& config() const { return config_; }

  /// Null when the corresponding ObsConfig flag is off.
  TraceSink* trace() const { return trace_.get(); }
  Registry* registry() const { return registry_.get(); }
  TelemetryLog* telemetry() const { return telemetry_.get(); }

  /// On-demand combined snapshot as one JSON object — what the svc/
  /// daemon's stats endpoint streams mid-run. Disabled backends report
  /// null, so the shape is stable whatever the ObsConfig:
  /// {"registry": {...}|null,
  ///  "telemetry": {"samples": N, "last": {...}|null}|null,
  ///  "trace": {"events": N}|null}.
  /// Safe to call between scheduler ticks (every backend is
  /// thread-safe); the registry merge is deterministic.
  std::string snapshot_json() const {
    std::string out = "{\"registry\": ";
    out += registry_ != nullptr ? registry_->to_json() : "null";
    out += ", \"telemetry\": ";
    if (telemetry_ != nullptr) {
      out += "{\"samples\": " + std::to_string(telemetry_->size()) +
             ", \"last\": ";
      out += telemetry_->empty() ? "null"
                                 : telemetry_->samples().back().to_json();
      out += "}";
    } else {
      out += "null";
    }
    out += ", \"trace\": ";
    if (trace_ != nullptr) {
      out += "{\"events\": " + std::to_string(trace_->size()) + "}";
    } else {
      out += "null";
    }
    out += "}";
    return out;
  }

 private:
  ObsConfig config_;
  std::unique_ptr<TraceSink> trace_;
  std::unique_ptr<Registry> registry_;
  std::unique_ptr<TelemetryLog> telemetry_;
};

/// Shorthand used at instrumentation sites: the TraceSink of an
/// optional observer, or nullptr.
inline TraceSink* trace_of(const std::shared_ptr<Observer>& observer) {
  return observer ? observer->trace() : nullptr;
}
inline Registry* registry_of(const std::shared_ptr<Observer>& observer) {
  return observer ? observer->registry() : nullptr;
}

}  // namespace mapa::obs
