#include "obs/telemetry.hpp"

#include <fstream>
#include <sstream>

namespace mapa::obs {

std::string TelemetrySample::to_json() const {
  std::ostringstream out;
  out << "{\"tick\": " << tick << ", \"sim_time_s\": " << sim_time_s
      << ", \"jobs_pending\": " << jobs_pending
      << ", \"jobs_running\": " << jobs_running
      << ", \"jobs_finished\": " << jobs_finished
      << ", \"dead_letters\": " << dead_letters
      << ", \"retry_backlog\": " << retry_backlog
      << ", \"free_gpus\": " << free_gpus
      << ", \"total_gpus\": " << total_gpus
      << ", \"utilization\": " << utilization()
      << ", \"crashed_servers\": " << crashed_servers
      << ", \"degraded_servers\": " << degraded_servers
      << ", \"forked_servers\": " << forked_servers
      << ", \"memo_hits\": " << memo_hits
      << ", \"memo_probes\": " << memo_probes;
  out << ", \"shards\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardSample& s = shards[i];
    out << (i == 0 ? "" : ", ") << "{\"queue_depth\": " << s.queue_depth
        << ", \"queued_gpus\": " << s.queued_gpus
        << ", \"free_gpus\": " << s.free_gpus
        << ", \"live_servers\": " << s.live_servers << "}";
  }
  out << "], \"archetypes\": [";
  for (std::size_t i = 0; i < archetypes.size(); ++i) {
    const ArchetypeSample& a = archetypes[i];
    out << (i == 0 ? "" : ", ") << "{\"name\": \"" << a.name
        << "\", \"cache_hits\": " << a.cache_hits
        << ", \"cache_misses\": " << a.cache_misses
        << ", \"cache_bypasses\": " << a.cache_bypasses
        << ", \"servers\": " << a.servers << "}";
  }
  out << "]}";
  return out.str();
}

std::string TelemetryLog::to_jsonl() const {
  std::ostringstream out;
  for (const TelemetrySample& sample : samples_) {
    out << sample.to_json() << '\n';
  }
  return out.str();
}

bool TelemetryLog::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_jsonl();
  return static_cast<bool>(out);
}

}  // namespace mapa::obs
