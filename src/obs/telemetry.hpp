#pragma once
// Fleet telemetry time-series — the third leg of the runtime
// observability layer (src/obs/). The FleetSimulator samples one
// TelemetrySample every `telemetry_every_ticks` dispatcher ticks (plus
// a final sample at drain), capturing the queue/cache/fault state that
// post-hoc aggregates cannot show *over time*: where the backlog built
// up after a crash burst, when an archetype fork collapsed the memo hit
// rate, how utilization recovered as servers healed.
//
// Samples append to a TelemetryLog (single-writer: the dispatch loop)
// and serialize as JSONL — one JSON object per line, streamable and
// greppable, summarized by tools/trace_summary.py.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mapa::obs {

/// Per-shard state at a sample point.
struct ShardSample {
  std::uint64_t queue_depth = 0;    // jobs waiting in the shard queue
  std::uint64_t queued_gpus = 0;    // GPUs those jobs ask for
  std::uint64_t free_gpus = 0;      // free GPUs across the shard
  std::uint64_t live_servers = 0;   // servers not crashed
};

/// Per-archetype cache state at a sample point (cumulative counters;
/// deltas between samples give the rate over the window).
struct ArchetypeSample {
  std::string name;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bypasses = 0;
  std::uint64_t servers = 0;  // servers currently on this archetype
};

/// One telemetry sample: fleet-wide state at a simulated-time point.
struct TelemetrySample {
  std::uint64_t tick = 0;
  double sim_time_s = 0.0;
  std::uint64_t jobs_pending = 0;    // arrived, not yet placed
  std::uint64_t jobs_running = 0;
  std::uint64_t jobs_finished = 0;
  std::uint64_t dead_letters = 0;
  std::uint64_t retry_backlog = 0;   // jobs parked in the retry heap
  std::uint64_t free_gpus = 0;
  std::uint64_t total_gpus = 0;
  std::uint64_t crashed_servers = 0;
  std::uint64_t degraded_servers = 0;
  std::uint64_t forked_servers = 0;  // servers on a forked fault cache
  std::uint64_t memo_hits = 0;       // cumulative probe-memo hits
  std::uint64_t memo_probes = 0;     // cumulative memo-eligible probes
  std::vector<ShardSample> shards;
  std::vector<ArchetypeSample> archetypes;

  /// Fraction of total GPUs busy, in [0, 1]. 0 when the fleet is empty.
  double utilization() const {
    if (total_gpus == 0) return 0.0;
    return static_cast<double>(total_gpus - free_gpus) /
           static_cast<double>(total_gpus);
  }

  /// One JSON object (single line, no trailing newline).
  std::string to_json() const;
};

/// Append-only series of samples. Single-writer by design (the
/// dispatcher's tick loop); readers consume after the run.
class TelemetryLog {
 public:
  void append(TelemetrySample sample) {
    samples_.push_back(std::move(sample));
  }

  const std::vector<TelemetrySample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// JSONL: one sample object per line.
  std::string to_jsonl() const;
  /// to_jsonl() written to `path`; returns false on I/O failure.
  bool write_jsonl(const std::string& path) const;

 private:
  std::vector<TelemetrySample> samples_;
};

}  // namespace mapa::obs
