#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

namespace mapa::obs {

TraceSink::TraceSink(std::size_t max_events) : max_events_(max_events) {}

std::uint64_t TraceSink::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TraceSink::complete(TraceEvent event) {
  if (total_.fetch_add(1, std::memory_order_relaxed) >= max_events_) {
    total_.fetch_sub(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = slots_[thread_slot() % kMetricShards];
  const std::lock_guard<std::mutex> lock(slot.mutex);
  slot.events.push_back(std::move(event));
}

void TraceSink::instant(const char* category, const char* name) {
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.start_ns = now_ns();
  event.instant = true;
  event.tid = static_cast<std::uint32_t>(thread_slot());
  complete(std::move(event));
}

std::size_t TraceSink::size() const {
  std::size_t total = 0;
  for (const Slot& slot : slots_) {
    const std::lock_guard<std::mutex> lock(slot.mutex);
    total += slot.events.size();
  }
  return total;
}

std::uint64_t TraceSink::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceSink::sorted_events() const {
  std::vector<TraceEvent> merged;
  merged.reserve(total_.load(std::memory_order_relaxed));
  for (const Slot& slot : slots_) {
    const std::lock_guard<std::mutex> lock(slot.mutex);
    merged.insert(merged.end(), slot.events.begin(), slot.events.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return std::strcmp(a.name, b.name) < 0;
                   });
  return merged;
}

std::string TraceSink::to_json() const {
  const std::vector<TraceEvent> events = sorted_events();
  std::uint64_t base_ns = 0;
  if (!events.empty()) base_ns = events.front().start_ns;

  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out << (first ? "\n" : ",\n");
    first = false;
    const std::uint64_t rel_ns = e.start_ns - base_ns;
    out << "{\"name\": \"" << e.name << "\", \"cat\": \"" << e.category
        << "\", \"ph\": \"" << (e.instant ? "i" : "X") << "\", \"ts\": "
        << rel_ns / 1000 << "." << (rel_ns % 1000) / 100;
    if (!e.instant) {
      out << ", \"dur\": " << e.duration_ns / 1000 << "."
          << (e.duration_ns % 1000) / 100;
    } else {
      out << ", \"s\": \"t\"";
    }
    out << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.num_args > 0) {
      out << ", \"args\": {";
      for (std::uint8_t i = 0; i < e.num_args; ++i) {
        out << (i == 0 ? "" : ", ") << "\"" << e.arg_keys[i]
            << "\": " << e.arg_values[i];
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}";
  return out.str();
}

bool TraceSink::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace mapa::obs
