#include "interconnect/microbench.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "graph/patterns.hpp"
#include "interconnect/bandwidth_curve.hpp"
#include "interconnect/collective.hpp"
#include "match/enumerator.hpp"
#include "score/effbw_model.hpp"

namespace mapa::interconnect {

namespace {

using graph::Graph;
using graph::VertexId;

/// Bottleneck bandwidth of the best NCCL-style ring over the allocated
/// vertices, normalized by the fastest link class (0..1).
double ring_quality(const Graph& hardware, const match::Match& m) {
  const std::vector<VertexId> vertices = m.sorted_vertices();
  if (vertices.size() < 2) return 0.0;
  const Graph sub = hardware.induced_subgraph(vertices);
  const auto plan = best_ring(sub);
  if (!plan) return 0.0;
  return std::clamp(plan->bottleneck_gbps / bw::kNvLink2Double, 0.0, 1.0);
}

/// Number of pattern-used PCIe edges whose endpoints sit on different
/// sockets (these cross QPI in Fig. 1's machines).
int qpi_crossings(const Graph& pattern, const Graph& hardware,
                  const match::Match& m) {
  int crossings = 0;
  for (const graph::Edge& e : pattern.edges()) {
    const VertexId a = m.mapping[e.u];
    const VertexId b = m.mapping[e.v];
    if (hardware.edge_type(a, b) == LinkType::kPcie &&
        hardware.socket(a) != hardware.socket(b)) {
      ++crossings;
    }
  }
  return crossings;
}

}  // namespace

double measured_effective_bandwidth(const Graph& pattern,
                                    const Graph& hardware,
                                    const match::Match& m,
                                    const MicrobenchConfig& config) {
  if (pattern.num_edges() == 0) return 0.0;

  const score::LinkCensus census =
      score::used_link_census(pattern, hardware, m);
  // Primary term: the paper's own measured link-mix dependence, distilled
  // into Eq. 2 with the published Table 2 coefficients.
  const double base = std::max(
      score::predict_effective_bandwidth(score::kPaperTheta, census),
      config.floor_gbps);

  const double quality = ring_quality(hardware, m);
  const double structural = base * (1.0 - config.ring_weight) +
                            base * config.ring_weight * quality;
  const double with_qpi =
      structural -
      config.qpi_penalty_gbps * qpi_crossings(pattern, hardware, m);
  const double peak = std::max(with_qpi, config.floor_gbps);

  // Fig. 2a ramp: small payloads are latency-bound.
  return peak * ramp_fraction(peak, config.bytes);
}

std::vector<double> effbw_size_sweep(const Graph& pattern,
                                     const Graph& hardware,
                                     const match::Match& m,
                                     const std::vector<double>& bytes,
                                     MicrobenchConfig config) {
  std::vector<double> result;
  result.reserve(bytes.size());
  for (const double b : bytes) {
    config.bytes = b;
    result.push_back(
        measured_effective_bandwidth(pattern, hardware, m, config));
  }
  return result;
}

std::vector<score::EffBwSample> generate_training_samples(
    const Graph& hardware, std::size_t max_gpus,
    const MicrobenchConfig& config) {
  std::map<std::tuple<int, int, int>, double> by_census;
  for (std::size_t k = 2; k <= max_gpus; ++k) {
    const Graph pattern = graph::ring(k);
    match::for_each_match(pattern, hardware, [&](const match::Match& m) {
      const score::LinkCensus census =
          score::used_link_census(pattern, hardware, m);
      const auto key =
          std::make_tuple(census.doubles, census.singles, census.pcie);
      if (by_census.find(key) == by_census.end()) {
        by_census[key] =
            measured_effective_bandwidth(pattern, hardware, m, config);
      }
      return true;
    });
  }

  std::vector<score::EffBwSample> samples;
  samples.reserve(by_census.size());
  for (const auto& [key, bw] : by_census) {
    score::EffBwSample sample;
    sample.census.doubles = std::get<0>(key);
    sample.census.singles = std::get<1>(key);
    sample.census.pcie = std::get<2>(key);
    sample.measured_gbps = bw;
    samples.push_back(sample);
  }
  return samples;
}

}  // namespace mapa::interconnect
