#include "interconnect/bandwidth_curve.hpp"

#include <stdexcept>

namespace mapa::interconnect {

double achievable_bandwidth_gbps(double peak_gbps, double bytes,
                                 double latency_s) {
  if (peak_gbps < 0.0 || bytes < 0.0 || latency_s < 0.0) {
    throw std::invalid_argument("achievable_bandwidth_gbps: negative input");
  }
  if (peak_gbps == 0.0 || bytes == 0.0) return 0.0;
  const double seconds = latency_s + bytes / (peak_gbps * 1e9);
  return (bytes / seconds) / 1e9;
}

double achievable_bandwidth_gbps(LinkType type, double bytes,
                                 double latency_s) {
  return achievable_bandwidth_gbps(peak_bandwidth_gbps(type), bytes,
                                   latency_s);
}

double ramp_fraction(double peak_gbps, double bytes, double latency_s) {
  if (peak_gbps <= 0.0) return 0.0;
  return achievable_bandwidth_gbps(peak_gbps, bytes, latency_s) / peak_gbps;
}

}  // namespace mapa::interconnect
