#pragma once
// Synthetic effective-bandwidth microbenchmark.
//
// The paper measures EffBW by running the NCCL All-Reduce microbenchmark
// on each candidate allocation of the real DGX-V (§3.4.1). Without GPU
// hardware, this module provides the "measured" side of that experiment:
// a deterministic model whose primary dependence is on the allocation's
// link mix (x, y, z) — the paper demonstrates that is what effective
// bandwidth is "strongly related to" (§3.4.3) — plus two structural terms
// the census cannot see, so the Eq. 2 regression faces realistic residuals:
//
//   * ring quality — NCCL builds rings; an allocation whose best ring has a
//     high bottleneck sustains slightly more bandwidth than a same-census
//     allocation that forces a narrow hop into every ring.
//   * QPI penalty — PCIe edges that cross CPU sockets traverse the
//     inter-socket link and lose a little extra (the Fig. 1 QPI hops).
//
// A size-dependent ramp (Fig. 2a) applies on top for small transfers.

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "match/match.hpp"
#include "score/census.hpp"
#include "score/regression.hpp"

namespace mapa::interconnect {

struct MicrobenchConfig {
  /// All-reduce payload; the default (256 MiB) is on the saturated part of
  /// the Fig. 2a ramp, matching how the paper benchmarks peak EffBW.
  double bytes = 256.0 * 1024 * 1024;
  /// Weight of the ring-quality structural term (fraction of base EffBW).
  double ring_weight = 0.08;
  /// GB/s lost per socket-crossing PCIe edge used by the pattern.
  double qpi_penalty_gbps = 1.5;
  /// Floor so degenerate allocations never report non-positive bandwidth.
  double floor_gbps = 4.0;
};

/// "Measured" effective bandwidth (GB/s) of allocating `pattern` onto
/// `hardware` at the vertices given by `m`. Returns 0 for patterns with no
/// communication edges (e.g. 1-GPU jobs).
double measured_effective_bandwidth(const graph::Graph& pattern,
                                    const graph::Graph& hardware,
                                    const match::Match& m,
                                    const MicrobenchConfig& config = {});

/// Sweep an allocation across transfer sizes (the Fig. 2a/11b style
/// series): measured EffBW at each payload size in `bytes`.
std::vector<double> effbw_size_sweep(const graph::Graph& pattern,
                                     const graph::Graph& hardware,
                                     const match::Match& m,
                                     const std::vector<double>& bytes,
                                     MicrobenchConfig config = {});

/// Generate the regression training set the paper describes (§3.4.3): run
/// ring allocations of 2..max_gpus GPUs over `hardware`, keep one sample
/// per distinct (x, y, z) census, and label each with the microbenchmark.
/// On the DGX-V this reproduces the paper's "31 samples".
std::vector<score::EffBwSample> generate_training_samples(
    const graph::Graph& hardware, std::size_t max_gpus = 5,
    const MicrobenchConfig& config = {});

}  // namespace mapa::interconnect
