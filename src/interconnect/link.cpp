#include "interconnect/link.hpp"

#include <algorithm>
#include <stdexcept>

namespace mapa::interconnect {

double peak_bandwidth_gbps(LinkType type) {
  switch (type) {
    case LinkType::kNone:
      return 0.0;
    case LinkType::kPcie:
      return bw::kPcieGen3x16;
    case LinkType::kNvLink1:
      return bw::kNvLink1Single;
    case LinkType::kNvLink2:
      return bw::kNvLink2Single;
    case LinkType::kNvLink2Double:
      return bw::kNvLink2Double;
    case LinkType::kNvSwitch:
      return bw::kNvSwitchPort;
  }
  throw std::invalid_argument("peak_bandwidth_gbps: unknown link type");
}

std::string to_string(LinkType type) {
  switch (type) {
    case LinkType::kNone:
      return "none";
    case LinkType::kPcie:
      return "PCIe";
    case LinkType::kNvLink1:
      return "NV1";
    case LinkType::kNvLink2:
      return "NV2";
    case LinkType::kNvLink2Double:
      return "NV2x2";
    case LinkType::kNvSwitch:
      return "NVSwitch";
  }
  throw std::invalid_argument("to_string(LinkType): unknown link type");
}

std::optional<LinkType> parse_link_type(const std::string& text) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "none") return LinkType::kNone;
  if (lower == "pcie") return LinkType::kPcie;
  if (lower == "nv1") return LinkType::kNvLink1;
  if (lower == "nv2") return LinkType::kNvLink2;
  if (lower == "nv2x2") return LinkType::kNvLink2Double;
  if (lower == "nvswitch") return LinkType::kNvSwitch;
  return std::nullopt;
}

bool is_nvlink(LinkType type) {
  return type == LinkType::kNvLink1 || type == LinkType::kNvLink2 ||
         type == LinkType::kNvLink2Double;
}

}  // namespace mapa::interconnect
