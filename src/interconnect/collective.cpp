#include "interconnect/collective.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace mapa::interconnect {

namespace {

using graph::Graph;
using graph::VertexId;

constexpr std::size_t kExhaustiveRingLimit = 9;

std::optional<RingPlan> ring_exhaustive(const Graph& g) {
  const std::size_t n = g.num_vertices();
  // Fix vertex 0 as the cycle start to quotient out rotations; reflections
  // are harmless duplicates.
  std::vector<VertexId> perm(n - 1);
  std::iota(perm.begin(), perm.end(), 1);

  RingPlan best;
  best.bottleneck_gbps = -1.0;
  std::vector<VertexId> cycle(n);
  cycle[0] = 0;

  std::function<void(std::size_t, double)> search = [&](std::size_t depth,
                                                        double bottleneck) {
    if (bottleneck <= best.bottleneck_gbps) return;  // cannot improve
    if (depth == n) {
      const double closing = g.edge_bandwidth(cycle[n - 1], cycle[0]);
      if (closing <= 0.0) return;
      const double total = std::min(bottleneck, closing);
      if (total > best.bottleneck_gbps) {
        best.bottleneck_gbps = total;
        best.cycle = cycle;
      }
      return;
    }
    for (std::size_t i = depth - 1; i < perm.size(); ++i) {
      std::swap(perm[depth - 1], perm[i]);
      const VertexId next = perm[depth - 1];
      const double bw = g.edge_bandwidth(cycle[depth - 1], next);
      if (bw > 0.0) {
        cycle[depth] = next;
        search(depth + 1, std::min(bottleneck, bw));
      }
      std::swap(perm[depth - 1], perm[i]);
    }
  };
  search(1, std::numeric_limits<double>::infinity());

  if (best.bottleneck_gbps < 0.0) return std::nullopt;
  return best;
}

std::optional<RingPlan> ring_greedy(const Graph& g) {
  const std::size_t n = g.num_vertices();
  // Greedy: start at 0, repeatedly hop to the unvisited neighbor over the
  // widest link; then improve the bottleneck with 2-opt passes.
  std::vector<VertexId> cycle;
  cycle.reserve(n);
  std::vector<bool> visited(n, false);
  cycle.push_back(0);
  visited[0] = true;
  while (cycle.size() < n) {
    const VertexId here = cycle.back();
    VertexId next = 0;
    double best_bw = -1.0;
    for (VertexId v = 0; v < n; ++v) {
      if (visited[v]) continue;
      const double bw = g.edge_bandwidth(here, v);
      if (bw > best_bw) {
        best_bw = bw;
        next = v;
      }
    }
    if (best_bw <= 0.0) return std::nullopt;  // stuck: no edge forward
    cycle.push_back(next);
    visited[next] = true;
  }
  if (g.edge_bandwidth(cycle.back(), cycle.front()) <= 0.0) {
    return std::nullopt;
  }

  const auto bottleneck_of = [&](const std::vector<VertexId>& c) {
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < c.size(); ++i) {
      b = std::min(b, g.edge_bandwidth(c[i], c[(i + 1) % c.size()]));
    }
    return b;
  };

  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i + 1 < n && !improved; ++i) {
      for (std::size_t j = i + 1; j < n && !improved; ++j) {
        std::vector<VertexId> candidate = cycle;
        std::reverse(candidate.begin() + static_cast<std::ptrdiff_t>(i),
                     candidate.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        if (bottleneck_of(candidate) > bottleneck_of(cycle)) {
          cycle = std::move(candidate);
          improved = true;
        }
      }
    }
  }

  RingPlan plan;
  plan.cycle = cycle;
  plan.bottleneck_gbps = bottleneck_of(cycle);
  return plan;
}

}  // namespace

std::optional<RingPlan> best_ring(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return std::nullopt;
  if (n == 1) return RingPlan{{0}, 0.0};
  if (n == 2) {
    const double bw = g.edge_bandwidth(0, 1);
    if (bw <= 0.0) return std::nullopt;
    return RingPlan{{0, 1}, bw};
  }
  if (n <= kExhaustiveRingLimit) return ring_exhaustive(g);
  return ring_greedy(g);
}

std::optional<TreePlan> best_tree(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return std::nullopt;
  if (n == 1) return TreePlan{{}, 0.0};

  // Kruskal over descending bandwidth builds the maximum-bottleneck
  // spanning tree.
  std::vector<graph::Edge> edges = g.edges();
  std::sort(edges.begin(), edges.end(),
            [](const graph::Edge& a, const graph::Edge& b) {
              return a.bandwidth_gbps > b.bandwidth_gbps;
            });

  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<VertexId(VertexId)> find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };

  TreePlan plan;
  plan.bottleneck_gbps = std::numeric_limits<double>::infinity();
  for (const graph::Edge& e : edges) {
    const VertexId ru = find(e.u);
    const VertexId rv = find(e.v);
    if (ru == rv) continue;
    parent[ru] = rv;
    plan.edges.push_back(e);
    plan.bottleneck_gbps = std::min(plan.bottleneck_gbps, e.bandwidth_gbps);
    if (plan.edges.size() == n - 1) break;
  }
  if (plan.edges.size() != n - 1) return std::nullopt;  // disconnected
  return plan;
}

namespace {

/// Shared validation for the collective cost formulas. Returns true when
/// the collective is trivially free (1 GPU or nothing to send).
bool collective_is_free(std::size_t gpus, double bytes,
                        double effective_bw_gbps, const char* what) {
  if (gpus == 0) {
    throw std::invalid_argument(std::string(what) + ": 0 gpus");
  }
  if (gpus == 1 || bytes <= 0.0) return true;
  if (effective_bw_gbps <= 0.0) {
    throw std::invalid_argument(std::string(what) +
                                ": non-positive bandwidth");
  }
  return false;
}

double log2_ceil(std::size_t n) {
  double levels = 0.0;
  std::size_t reach = 1;
  while (reach < n) {
    reach *= 2;
    levels += 1.0;
  }
  return levels;
}

}  // namespace

double ring_allreduce_seconds(std::size_t gpus, double bytes,
                              double effective_bw_gbps,
                              double hop_latency_s) {
  if (collective_is_free(gpus, bytes, effective_bw_gbps,
                         "ring_allreduce_seconds")) {
    return 0.0;
  }
  const auto k = static_cast<double>(gpus);
  const double hops = 2.0 * (k - 1.0);
  const double wire = 2.0 * (k - 1.0) / k * bytes / (effective_bw_gbps * 1e9);
  return hops * hop_latency_s + wire;
}

double tree_allreduce_seconds(std::size_t gpus, double bytes,
                              double effective_bw_gbps,
                              double hop_latency_s) {
  if (collective_is_free(gpus, bytes, effective_bw_gbps,
                         "tree_allreduce_seconds")) {
    return 0.0;
  }
  const double levels = log2_ceil(gpus);
  return 2.0 * levels * hop_latency_s +
         2.0 * bytes / (effective_bw_gbps * 1e9);
}

double broadcast_seconds(std::size_t gpus, double bytes,
                         double effective_bw_gbps, double hop_latency_s) {
  if (collective_is_free(gpus, bytes, effective_bw_gbps,
                         "broadcast_seconds")) {
    return 0.0;
  }
  return log2_ceil(gpus) * hop_latency_s + bytes / (effective_bw_gbps * 1e9);
}

double allgather_seconds(std::size_t gpus, double bytes,
                         double effective_bw_gbps, double hop_latency_s) {
  if (collective_is_free(gpus, bytes, effective_bw_gbps,
                         "allgather_seconds")) {
    return 0.0;
  }
  const auto k = static_cast<double>(gpus);
  return (k - 1.0) * hop_latency_s +
         (k - 1.0) / k * bytes / (effective_bw_gbps * 1e9);
}

double reduce_scatter_seconds(std::size_t gpus, double bytes,
                              double effective_bw_gbps,
                              double hop_latency_s) {
  // Same wire pattern as all-gather, data flowing the other way.
  return allgather_seconds(gpus, bytes, effective_bw_gbps, hop_latency_s);
}

double all_to_all_seconds(std::size_t gpus, double bytes,
                          double effective_bw_gbps, double hop_latency_s) {
  if (collective_is_free(gpus, bytes, effective_bw_gbps,
                         "all_to_all_seconds")) {
    return 0.0;
  }
  const auto k = static_cast<double>(gpus);
  return (k - 1.0) * hop_latency_s +
         (k - 1.0) / k * bytes / (effective_bw_gbps * 1e9);
}

double allreduce_algorithm_bandwidth_gbps(std::size_t gpus, double bytes,
                                          double seconds) {
  if (gpus == 0 || seconds <= 0.0) {
    throw std::invalid_argument(
        "allreduce_algorithm_bandwidth_gbps: bad inputs");
  }
  return bytes / seconds / 1e9;
}

double allreduce_bus_bandwidth_gbps(std::size_t gpus, double bytes,
                                    double seconds) {
  const auto k = static_cast<double>(gpus);
  if (k < 2.0) return 0.0;
  return allreduce_algorithm_bandwidth_gbps(gpus, bytes, seconds) * 2.0 *
         (k - 1.0) / k;
}

}  // namespace mapa::interconnect
