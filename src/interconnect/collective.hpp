#pragma once
// NCCL-style collective-communication structure over an allocated
// subgraph. NCCL builds rings or trees over the allocated devices (paper
// §3.1); the quality of the best ring/tree constructible from the
// allocation's links feeds both the microbenchmark model and the
// execution-time model.

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace mapa::graph {
class Graph;
}

namespace mapa::interconnect {

/// Best ring: a Hamiltonian cycle over all vertices of `g` maximizing the
/// minimum edge bandwidth along the cycle (the ring's bottleneck decides
/// its all-reduce bus bandwidth). Exhaustive for <= 9 vertices, greedy
/// (nearest-widest-neighbor + 2-opt on the bottleneck) above.
struct RingPlan {
  std::vector<graph::VertexId> cycle;  // visiting order; size == |V(g)|
  double bottleneck_gbps = 0.0;        // min edge bandwidth along the cycle
};

/// std::nullopt when no Hamiltonian cycle exists (disconnected subgraph
/// without PCIe fallback). A 1-vertex graph yields a trivial plan with
/// bottleneck 0; a 2-vertex graph uses its single edge as the "cycle".
std::optional<RingPlan> best_ring(const graph::Graph& g);

/// Best tree: spanning tree maximizing the minimum edge bandwidth
/// (maximum-bottleneck spanning tree via Kruskal on descending bandwidth).
struct TreePlan {
  std::vector<graph::Edge> edges;  // |V| - 1 edges
  double bottleneck_gbps = 0.0;
};

std::optional<TreePlan> best_tree(const graph::Graph& g);

/// Time (seconds) for one ring all-reduce of `bytes` over `gpus` devices
/// given the allocation's effective bandwidth. Standard cost:
///   t = 2 (k-1) hops of latency + 2 (k-1)/k * S / BW.
double ring_allreduce_seconds(std::size_t gpus, double bytes,
                              double effective_bw_gbps,
                              double hop_latency_s = 5e-6);

/// Tree all-reduce (NCCL's small-message algorithm): a reduce up and a
/// broadcast down a binary tree —
///   t = 2 ceil(log2 k) * latency + 2 * S / BW.
double tree_allreduce_seconds(std::size_t gpus, double bytes,
                              double effective_bw_gbps,
                              double hop_latency_s = 5e-6);

/// Binary-tree broadcast: t = ceil(log2 k) * latency + S / BW.
double broadcast_seconds(std::size_t gpus, double bytes,
                         double effective_bw_gbps,
                         double hop_latency_s = 5e-6);

/// Ring all-gather / reduce-scatter: t = (k-1) hops + (k-1)/k * S / BW.
double allgather_seconds(std::size_t gpus, double bytes,
                         double effective_bw_gbps,
                         double hop_latency_s = 5e-6);
double reduce_scatter_seconds(std::size_t gpus, double bytes,
                              double effective_bw_gbps,
                              double hop_latency_s = 5e-6);

/// Pairwise-exchange all-to-all: t = (k-1) hops + (k-1)/k * S / BW per
/// direction, where S is the total buffer per GPU.
double all_to_all_seconds(std::size_t gpus, double bytes,
                          double effective_bw_gbps,
                          double hop_latency_s = 5e-6);

/// NCCL reporting conventions: algorithm bandwidth S/t and the
/// bus-bandwidth normalization busbw = algbw * 2(k-1)/k for all-reduce.
double allreduce_algorithm_bandwidth_gbps(std::size_t gpus, double bytes,
                                          double seconds);
double allreduce_bus_bandwidth_gbps(std::size_t gpus, double bytes,
                                    double seconds);

}  // namespace mapa::interconnect
