#pragma once
// Inter-accelerator link types and their peak bandwidths (paper Table 1).
//
// This header is dependency-free so both the graph substrate (edge labels)
// and the interconnect performance models can include it.

#include <cstdint>
#include <optional>
#include <string>

namespace mapa::interconnect {

/// Kinds of point-to-point links between accelerators.
///
/// `kNone` means "no direct link" — the paper treats such pairs as reachable
/// through host PCIe (the hardware graph is fully connected), so a kNone
/// edge is materialized as kPcie when building hardware graphs with the
/// PCIe-fallback convention.
enum class LinkType : std::uint8_t {
  kNone = 0,
  kPcie,           // 16-lane PCIe Gen 3 routed through the host
  kNvLink1,        // single NVLink-v1 brick (P100 generation)
  kNvLink2,        // single NVLink-v2 brick (V100 generation)
  kNvLink2Double,  // double NVLink-v2 (two bonded bricks)
  kNvSwitch,       // NVSwitch crossbar port (DGX-2 generation)
};

/// Peak unidirectional bandwidth in GB/s (paper Table 1; NVSwitch from the
/// DGX-2 spec the paper cites).
double peak_bandwidth_gbps(LinkType type);

/// Human-readable short name ("NV2x2", "PCIe", ...).
std::string to_string(LinkType type);

/// Parse the short name produced by to_string (case-insensitive);
/// std::nullopt on unknown names.
std::optional<LinkType> parse_link_type(const std::string& text);

/// True for any NVLink variant (used by NVLink-only graph construction).
bool is_nvlink(LinkType type);

namespace bw {
// Paper Table 1 values, named for use in tests and docs.
inline constexpr double kPcieGen3x16 = 12.0;
inline constexpr double kNvLink1Single = 20.0;
inline constexpr double kNvLink2Single = 25.0;
inline constexpr double kNvLink2Double = 50.0;
inline constexpr double kNvSwitchPort = 50.0;
}  // namespace bw

}  // namespace mapa::interconnect
