#pragma once
// Size-dependent achievable bandwidth (paper Fig. 2a): small transfers are
// latency-bound and reach only a fraction of a link's peak; the ramp
// saturates around 10^7-10^8 bytes. Modeled with the standard alpha-beta
// cost  t(S) = alpha + S / B  =>  BW(S) = S / (alpha + S / B).

#include "interconnect/link.hpp"

namespace mapa::interconnect {

/// Per-transfer fixed overhead (seconds). 20 us reproduces the paper's
/// observation that transfers must exceed ~1e5 bytes before the NVLink
/// tiers separate from PCIe.
inline constexpr double kDefaultLatencySeconds = 20e-6;

/// Achievable bandwidth (GB/s) for a transfer of `bytes` over a link with
/// peak bandwidth `peak_gbps`.
double achievable_bandwidth_gbps(double peak_gbps, double bytes,
                                 double latency_s = kDefaultLatencySeconds);

/// Convenience overload by link type.
double achievable_bandwidth_gbps(LinkType type, double bytes,
                                 double latency_s = kDefaultLatencySeconds);

/// Fraction of peak reached at `bytes` (the ramp itself, in (0, 1)).
double ramp_fraction(double peak_gbps, double bytes,
                     double latency_s = kDefaultLatencySeconds);

}  // namespace mapa::interconnect
