#pragma once
// svc/server — AF_UNIX socket front end for the allocation daemon.
//
// SocketServer owns an AllocationService and a background thread running
// a poll(2) loop: accept connections, read raw bytes into
// AllocationService::ingest, pump AllocationService::poll, and write
// reply frames back out. Each accepted connection gets a monotonically
// increasing client id (NOT the fd — the OS reuses fds, and a reused fd
// must never inherit the old connection's framing state or collect its
// late replies); on any close the service is told via disconnect(). All
// service access happens under one mutex — the service itself stays
// single-threaded; the socket loop is just a byte shuttle.
//
// SocketChannel is the matching client transport (svc::Client over a
// connected AF_UNIX stream socket).
//
// Unit tests do NOT use this layer (they use LoopbackChannel); one
// integration smoke test and examples/allocation_daemon.cpp exercise the
// real socket path.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/service.hpp"

namespace mapa::svc {

class SocketServer {
 public:
  /// Builds the service; the socket is not created until start().
  SocketServer(std::string socket_path,
               std::vector<cluster::ServerSpec> servers,
               ServiceConfig config);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen on the unix socket path and launch the background
  /// loop. Throws std::runtime_error on any socket failure (path too
  /// long, bind refused).
  void start();

  /// Graceful stop: the service stops admitting, drains in-flight work,
  /// flushes every reply (typed cancels included), then the loop exits
  /// and the socket path is unlinked. Idempotent.
  void stop();

  bool running() const { return running_; }
  const std::string& socket_path() const { return socket_path_; }

  /// Schedule a fault into the live fleet session (thread-safe; this is
  /// how the integration test perturbs a daemon mid-run).
  void inject_fault(cluster::FaultEvent event);

  /// Service stats snapshot (thread-safe).
  std::string stats_json();

 private:
  /// One live connection: transport-chosen client id + its fd.
  struct Conn {
    std::uint64_t id = 0;
    int fd = -1;
  };

  void run_loop();
  /// Write every reply whose client is still connected; a failed write
  /// appends that client id to `dead` (closed by the caller).
  void flush(std::vector<Outbound>& out, std::vector<std::uint64_t>& dead);
  /// Close + forget the connections in `dead` and tell the service.
  void reap(std::vector<std::uint64_t>& dead);

  std::string socket_path_;
  AllocationService service_;
  std::mutex mutex_;  // guards service_
  std::thread loop_;
  int listen_fd_ = -1;
  std::vector<Conn> conns_;
  std::uint64_t next_client_id_ = 0;
  bool running_ = false;
  std::atomic<bool> stop_requested_{false};
};

/// Client-side AF_UNIX transport for svc::Client.
class SocketChannel : public Channel {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit SocketChannel(const std::string& socket_path);
  ~SocketChannel() override;

  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

  void send(const std::uint8_t* data, std::size_t size) override;
  /// Blocking read; empty vector on orderly EOF.
  std::vector<std::uint8_t> receive() override;

 private:
  int fd_ = -1;
};

}  // namespace mapa::svc
