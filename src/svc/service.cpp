#include "svc/service.hpp"

#include <stdexcept>
#include <utility>
#include <variant>

#include "obs/obs.hpp"
#include "util/csv.hpp"
#include "workload/profile.hpp"

namespace mapa::svc {

AllocationService::AllocationService(std::vector<cluster::ServerSpec> servers,
                                     ServiceConfig config)
    : config_(std::move(config)),
      fleet_(std::move(servers), config_.cluster) {
  if (obs::Registry* reg = obs::registry_of(config_.cluster.observer)) {
    c_accepted_ = &reg->counter("svc.accepted");
    c_rejected_ = &reg->counter("svc.rejected");
    c_queue_full_ = &reg->counter("svc.rejected_queue_full");
    c_decode_errors_ = &reg->counter("svc.decode_errors");
    c_replies_ = &reg->counter("svc.replies");
  }
  cluster::FleetSimulator::StepOptions options;
  options.arm_faults = true;          // release() needs the live-job index
  options.collect_unplaceable = true; // unplaceable -> typed reply, not throw
  fleet_.start(options);
}

AllocationService::~AllocationService() = default;

void AllocationService::reply(std::uint64_t client, Reply r,
                              std::vector<Outbound>& out) {
  out.push_back(Outbound{client, encode(r)});
  ++replies_;
  if (c_replies_ != nullptr) c_replies_->inc();
}

void AllocationService::reply_error(std::uint64_t client,
                                    std::uint64_t request_id, ErrorCode code,
                                    std::string message,
                                    std::vector<Outbound>& out) {
  reply(client, Reply{request_id, ErrorReply{code, std::move(message)}}, out);
}

bool AllocationService::ingest(std::uint64_t client, const std::uint8_t* data,
                               std::size_t size, std::vector<Outbound>& out) {
  Connection& conn = connections_[client];
  conn.assembler.feed(data, size);
  while (auto frame = conn.assembler.next()) {
    DecodedRequest decoded = decode_request(frame->data(), frame->size());
    if (const DecodeError* e = std::get_if<DecodeError>(&decoded)) {
      ++decode_errors_;
      if (c_decode_errors_ != nullptr) c_decode_errors_->inc();
      reply_error(client, e->request_id, e->code, e->message, out);
      continue;
    }
    enqueue(client, std::move(std::get<Request>(decoded)), out);
  }
  if (conn.assembler.error().has_value() && !conn.poison_reported) {
    // The stream's frame boundary is unrecoverable — answer once so the
    // client learns why; the caller must flush this reply and then close
    // the connection (and disconnect()).
    conn.poison_reported = true;
    const DecodeError& e = *conn.assembler.error();
    ++decode_errors_;
    if (c_decode_errors_ != nullptr) c_decode_errors_->inc();
    reply_error(client, 0, e.code, e.message, out);
  }
  return !conn.assembler.error().has_value();
}

void AllocationService::disconnect(std::uint64_t client) {
  connections_.erase(client);
  // Requests admitted but not yet served have had no effect on the fleet
  // — drop them rather than submit work for a client that is gone.
  std::erase_if(pending_, [client](const PendingRequest& p) {
    return p.client == client;
  });
  // Submitted jobs keep running, but their allocate replies have nowhere
  // to go; tombstone them so a late placement never builds a frame that
  // could be routed to whoever holds this id next.
  for (auto& [job_id, entry] : jobs_) {
    if (entry.client == client) entry.answered = true;
  }
}

bool AllocationService::enqueue(std::uint64_t client, Request request,
                                std::vector<Outbound>& out) {
  if (!fleet_.active() || shutting_down_) {
    ++rejected_;
    if (c_rejected_ != nullptr) c_rejected_->inc();
    reply_error(client, request.id, ErrorCode::kShuttingDown,
                "service is shutting down", out);
    return false;
  }
  if (pending_.size() >= config_.max_pending) {
    ++rejected_;
    ++queue_full_;
    if (c_rejected_ != nullptr) c_rejected_->inc();
    if (c_queue_full_ != nullptr) c_queue_full_->inc();
    reply_error(client, request.id, ErrorCode::kQueueFull,
                "admission queue full (" +
                    std::to_string(config_.max_pending) + " pending)",
                out);
    return false;
  }
  ++accepted_;
  if (c_accepted_ != nullptr) c_accepted_->inc();
  pending_.push_back(PendingRequest{client, std::move(request)});
  return true;
}

void AllocationService::serve_allocate(const PendingRequest& p,
                                       const AllocateRequest& a,
                                       std::vector<Outbound>& out) {
  if (workload::find_workload(a.workload) == nullptr) {
    reply_error(p.client, p.request.id, ErrorCode::kUnknownWorkload,
                "unknown workload '" + a.workload + "'", out);
    return;
  }
  if (a.num_gpus == 0) {
    reply_error(p.client, p.request.id, ErrorCode::kBadPayload,
                "job requests zero GPUs", out);
    return;
  }
  if (jobs_.contains(a.job_id)) {
    reply_error(p.client, p.request.id, ErrorCode::kDuplicateJob,
                "job id " + std::to_string(a.job_id) + " already known",
                out);
    return;
  }
  try {
    fleet_.submit(a.to_job());
  } catch (const std::invalid_argument&) {
    reply_error(p.client, p.request.id, ErrorCode::kTooManyGpus,
                "job requests more GPUs than any server has", out);
    return;
  }
  JobEntry entry;
  entry.client = p.client;
  entry.request_id = p.request.id;
  entry.state = JobState::kQueued;
  jobs_.emplace(a.job_id, entry);
}

void AllocationService::serve_release(const PendingRequest& p,
                                      const ReleaseRequest& r,
                                      std::vector<Outbound>& out) {
  const auto outcome = fleet_.release(r.job_id);
  const auto it = jobs_.find(r.job_id);
  if (it != jobs_.end() &&
      outcome != cluster::FleetSimulator::ReleaseOutcome::kNotFound) {
    JobEntry& entry = it->second;
    if (!entry.answered) {
      // The allocate will never place now — close it out explicitly so
      // every request still gets exactly one reply.
      entry.answered = true;
      reply_error(entry.client, entry.request_id, ErrorCode::kCancelled,
                  "job released before placement", out);
    }
    entry.state = JobState::kReleased;
    if (outcome == cluster::FleetSimulator::ReleaseOutcome::kRunning) {
      entry.finish_s = fleet_.sim_now();
    }
  }
  reply(p.client,
        Reply{p.request.id,
              ReleaseReply{r.job_id, static_cast<std::uint8_t>(outcome)}},
        out);
}

void AllocationService::serve_query(const PendingRequest& p,
                                    const QueryRequest& q,
                                    std::vector<Outbound>& out) {
  QueryReply reply_payload;
  reply_payload.job_id = q.job_id;
  const auto it = jobs_.find(q.job_id);
  if (it == jobs_.end()) {
    reply_payload.state = JobState::kUnknown;
  } else {
    const JobEntry& entry = it->second;
    reply_payload.state = entry.state;
    reply_payload.server = entry.server;
    reply_payload.start_s = entry.start_s;
    reply_payload.finish_s = entry.finish_s;
    if (entry.state == JobState::kRunning &&
        entry.finish_s <= fleet_.sim_now()) {
      reply_payload.state = JobState::kFinished;
    }
  }
  reply(p.client, Reply{p.request.id, reply_payload}, out);
}

void AllocationService::drain_admission(std::vector<Outbound>& out) {
  while (!pending_.empty()) {
    PendingRequest p = std::move(pending_.front());
    pending_.pop_front();
    std::visit(
        [&](const auto& payload) {
          using T = std::decay_t<decltype(payload)>;
          if constexpr (std::is_same_v<T, AllocateRequest>) {
            serve_allocate(p, payload, out);
          } else if constexpr (std::is_same_v<T, ReleaseRequest>) {
            serve_release(p, payload, out);
          } else if constexpr (std::is_same_v<T, QueryRequest>) {
            serve_query(p, payload, out);
          } else {
            static_assert(std::is_same_v<T, StatsRequest>);
            // The obs snapshot is the only unbounded part; if it pushes
            // the JSON past what one kStatsOk frame can carry, fall back
            // to the service tallies alone so the reply stays valid JSON
            // and under kMaxFrameLen.
            std::string json = stats_json();
            if (json.size() > kMaxStatsJsonLen) {
              json = stats_json(/*include_obs=*/false);
            }
            reply(p.client,
                  Reply{p.request.id, StatsReply{std::move(json)}}, out);
          }
        },
        p.request.payload);
  }
}

void AllocationService::harvest_outcomes(std::vector<Outbound>& out) {
  const cluster::FleetResult& result = fleet_.partial_result();
  const double now = fleet_.sim_now();

  for (; records_cursor_ < result.records.size(); ++records_cursor_) {
    const cluster::FleetRecord& rec = result.records[records_cursor_];
    const auto it = jobs_.find(rec.record.job.id);
    if (it == jobs_.end()) continue;  // released entry compacted? keep safe
    JobEntry& entry = it->second;
    entry.server = static_cast<std::uint32_t>(rec.server);
    entry.start_s = rec.record.start_s;
    entry.finish_s = rec.record.finish_s;
    if (entry.state != JobState::kReleased) {
      entry.state = rec.record.finish_s <= now ? JobState::kFinished
                                               : JobState::kRunning;
    }
    if (entry.answered) continue;  // re-placement after a fault kill
    entry.answered = true;
    AllocateReply ok;
    ok.job_id = rec.record.job.id;
    ok.server = static_cast<std::uint32_t>(rec.server);
    ok.retries = rec.retries;
    ok.start_s = rec.record.start_s;
    ok.finish_s = rec.record.finish_s;
    ok.gpus.reserve(rec.record.gpus.size());
    for (const auto g : rec.record.gpus) {
      ok.gpus.push_back(static_cast<std::uint32_t>(g));
    }
    reply(entry.client, Reply{entry.request_id, std::move(ok)}, out);
  }

  for (; dead_letter_cursor_ < result.dead_letters.size();
       ++dead_letter_cursor_) {
    const cluster::DeadLetter& dl = result.dead_letters[dead_letter_cursor_];
    const auto it = jobs_.find(dl.job.id);
    if (it == jobs_.end()) continue;
    JobEntry& entry = it->second;
    entry.state = JobState::kDeadLettered;
    entry.finish_s = dl.time_s;
    if (entry.answered) continue;  // placed (and answered) before the kill
    entry.answered = true;
    reply_error(entry.client, entry.request_id, ErrorCode::kDeadLettered,
                "job " + std::to_string(dl.job.id) +
                    " dropped after exhausting its retry budget",
                out);
  }

  const std::vector<std::size_t> unplaceable = fleet_.take_unplaceable();
  const std::vector<workload::Job>& submitted = fleet_.submitted_jobs();
  for (const std::size_t ji : unplaceable) {
    const auto it = jobs_.find(submitted[ji].id);
    if (it == jobs_.end()) continue;
    JobEntry& entry = it->second;
    entry.state = JobState::kUnplaceable;
    if (entry.answered) continue;
    entry.answered = true;
    reply_error(entry.client, entry.request_id, ErrorCode::kUnplaceable,
                "job " + std::to_string(submitted[ji].id) +
                    " cannot be placed on any server in the fleet",
                out);
  }
}

std::size_t AllocationService::poll(std::vector<Outbound>& out) {
  if (!fleet_.active()) return 0;
  const std::size_t before = out.size();
  ++polls_;
  drain_admission(out);
  while (fleet_.step()) {
  }
  harvest_outcomes(out);
  return out.size() - before;
}

void AllocationService::shutdown(std::vector<Outbound>& out) {
  if (shutting_down_) return;
  // Drain what is already admitted first — graceful shutdown completes
  // in-flight work; only NEW requests are refused.
  if (fleet_.active()) poll(out);
  shutting_down_ = true;
  // Safety net: anything somehow still unanswered gets a typed cancel so
  // no client waits forever.
  for (auto& [job_id, entry] : jobs_) {
    if (entry.answered) continue;
    entry.answered = true;
    entry.state = JobState::kReleased;
    reply_error(entry.client, entry.request_id, ErrorCode::kCancelled,
                "service shut down before job " + std::to_string(job_id) +
                    " resolved",
                out);
  }
}

cluster::FleetResult AllocationService::finish() {
  if (!fleet_.active()) {
    throw std::logic_error("AllocationService::finish: no active session");
  }
  if (!pending_.empty()) {
    throw std::logic_error(
        "AllocationService::finish: admission queue not drained (poll() "
        "first)");
  }
  return fleet_.finish();
}

void AllocationService::inject_fault(cluster::FaultEvent event) {
  fleet_.inject_fault(event);
}

std::string AllocationService::stats_json(bool include_obs) const {
  std::string out = "{\"service\": {";
  out += "\"accepted\": " + std::to_string(accepted_);
  out += ", \"rejected\": " + std::to_string(rejected_);
  out += ", \"rejected_queue_full\": " + std::to_string(queue_full_);
  out += ", \"decode_errors\": " + std::to_string(decode_errors_);
  out += ", \"replies\": " + std::to_string(replies_);
  out += ", \"polls\": " + std::to_string(polls_);
  out += ", \"pending\": " + std::to_string(pending_.size());
  out += ", \"jobs\": " + std::to_string(jobs_.size());
  if (fleet_.active()) {
    out += ", \"ticks\": " + std::to_string(fleet_.ticks());
    out += ", \"sim_now_s\": " + util::format_double(fleet_.sim_now());
  }
  out += "}, \"obs\": ";
  if (!include_obs) {
    out += "null, \"obs_truncated\": true";
  } else {
    out += config_.cluster.observer != nullptr
               ? config_.cluster.observer->snapshot_json()
               : "null";
  }
  out += "}";
  return out;
}

}  // namespace mapa::svc
