#include "svc/wire.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace mapa::svc {

namespace {

// ---- Writer ------------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string16(std::vector<std::uint8_t>& out, const std::string& s) {
  const std::size_t n = std::min<std::size_t>(s.size(), 0xFFFF);
  put_u16(out, static_cast<std::uint16_t>(n));
  out.insert(out.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
}

void put_string32(std::vector<std::uint8_t>& out, const std::string& s) {
  // Clamped so the finished frame stays under kMaxFrameLen — an
  // oversized reply would poison the receiving FrameAssembler.
  const std::size_t n = std::min(s.size(), kMaxStatsJsonLen);
  put_u32(out, static_cast<std::uint32_t>(n));
  out.insert(out.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
}

// ---- Bounds-checked reader ---------------------------------------------

/// Every get_* advances `pos` only after verifying the read fits; on a
/// short buffer it sets `ok` false once and every further read is a
/// no-op, so decode functions can read the whole layout linearly and
/// check `ok` at the end.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }

  std::uint8_t get_u8() {
    if (!need(1)) return 0;
    return data[pos++];
  }

  std::uint16_t get_u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data[pos]) |
                      static_cast<std::uint16_t>(data[pos + 1]) << 8;
    pos += 2;
    return v;
  }

  std::uint32_t get_u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return v;
  }

  std::uint64_t get_u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return v;
  }

  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }

  double get_f64() { return std::bit_cast<double>(get_u64()); }

  std::string get_string16() {
    const std::size_t n = get_u16();
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }

  std::string get_string32() {
    const std::size_t n = get_u32();
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }

  bool done() const { return ok && pos == size; }
};

// ---- Frame scaffolding -------------------------------------------------

std::vector<std::uint8_t> begin_frame(Op op, std::uint64_t request_id) {
  std::vector<std::uint8_t> out;
  out.reserve(32);
  put_u32(out, 0);  // length back-patched by end_frame
  put_u16(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(op));
  put_u64(out, request_id);
  return out;
}

std::vector<std::uint8_t> end_frame(std::vector<std::uint8_t> out) {
  const std::uint32_t len = static_cast<std::uint32_t>(out.size() - 4);
  out[0] = static_cast<std::uint8_t>(len);
  out[1] = static_cast<std::uint8_t>(len >> 8);
  out[2] = static_cast<std::uint8_t>(len >> 16);
  out[3] = static_cast<std::uint8_t>(len >> 24);
  return out;
}

DecodeError err(ErrorCode code, std::string message,
                std::uint64_t request_id = 0) {
  return DecodeError{code, std::move(message), request_id};
}

/// Shared header check for both decode directions. Returns the request
/// id via `request_id` as soon as it is readable, so payload errors can
/// still be correlated.
std::optional<DecodeError> decode_header(Reader& r, std::uint8_t& op,
                                         std::uint64_t& request_id) {
  if (r.size < kFrameHeaderLen) {
    return err(ErrorCode::kBadPayload, "frame shorter than header");
  }
  const std::uint16_t magic = r.get_u16();
  if (magic != kMagic) {
    return err(ErrorCode::kBadMagic, "bad magic");
  }
  const std::uint8_t version = r.get_u8();
  op = r.get_u8();
  request_id = r.get_u64();
  if (version != kVersion) {
    return err(ErrorCode::kBadVersion,
               "unsupported protocol version " + std::to_string(version),
               request_id);
  }
  return std::nullopt;
}

constexpr std::uint8_t kMaxPattern =
    static_cast<std::uint8_t>(graph::PatternKind::kNcclMix);
constexpr std::uint8_t kMaxJobState =
    static_cast<std::uint8_t>(JobState::kReleased);
constexpr std::uint16_t kMaxErrorCode =
    static_cast<std::uint16_t>(ErrorCode::kCancelled);

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadMagic: return "bad_magic";
    case ErrorCode::kBadVersion: return "bad_version";
    case ErrorCode::kBadOpcode: return "bad_opcode";
    case ErrorCode::kBadPayload: return "bad_payload";
    case ErrorCode::kOversizedFrame: return "oversized_frame";
    case ErrorCode::kUnknownWorkload: return "unknown_workload";
    case ErrorCode::kBadPattern: return "bad_pattern";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kTooManyGpus: return "too_many_gpus";
    case ErrorCode::kDuplicateJob: return "duplicate_job";
    case ErrorCode::kUnplaceable: return "unplaceable";
    case ErrorCode::kDeadLettered: return "dead_lettered";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kCancelled: return "cancelled";
  }
  return "unknown";
}

workload::Job AllocateRequest::to_job() const {
  workload::Job job;
  job.id = job_id;
  job.workload = workload;
  job.num_gpus = num_gpus;
  job.pattern = pattern;
  job.bandwidth_sensitive = bandwidth_sensitive;
  job.arrival_time_s = arrival_time_s;
  job.iter_scale = iter_scale;
  return job;
}

AllocateRequest AllocateRequest::from_job(const workload::Job& job) {
  AllocateRequest request;
  request.job_id = job.id;
  request.workload = job.workload;
  request.num_gpus = static_cast<std::uint32_t>(job.num_gpus);
  request.pattern = job.pattern;
  request.bandwidth_sensitive = job.bandwidth_sensitive;
  request.arrival_time_s = job.arrival_time_s;
  request.iter_scale = job.iter_scale;
  return request;
}

std::vector<std::uint8_t> encode(const Request& request) {
  return std::visit(
      [&](const auto& payload) -> std::vector<std::uint8_t> {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, AllocateRequest>) {
          auto out = begin_frame(Op::kAllocate, request.id);
          put_i32(out, payload.job_id);
          put_u8(out, static_cast<std::uint8_t>(payload.pattern));
          put_u8(out, payload.bandwidth_sensitive ? 1 : 0);
          put_u32(out, payload.num_gpus);
          put_f64(out, payload.arrival_time_s);
          put_f64(out, payload.iter_scale);
          put_string16(out, payload.workload);
          return end_frame(std::move(out));
        } else if constexpr (std::is_same_v<T, ReleaseRequest>) {
          auto out = begin_frame(Op::kRelease, request.id);
          put_i32(out, payload.job_id);
          return end_frame(std::move(out));
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          auto out = begin_frame(Op::kQuery, request.id);
          put_i32(out, payload.job_id);
          return end_frame(std::move(out));
        } else {
          static_assert(std::is_same_v<T, StatsRequest>);
          return end_frame(begin_frame(Op::kStats, request.id));
        }
      },
      request.payload);
}

std::vector<std::uint8_t> encode(const Reply& reply) {
  return std::visit(
      [&](const auto& payload) -> std::vector<std::uint8_t> {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, AllocateReply>) {
          auto out = begin_frame(Op::kAllocateOk, reply.id);
          put_i32(out, payload.job_id);
          put_u32(out, payload.server);
          put_u32(out, payload.retries);
          put_f64(out, payload.start_s);
          put_f64(out, payload.finish_s);
          put_u16(out, static_cast<std::uint16_t>(payload.gpus.size()));
          for (const std::uint32_t g : payload.gpus) put_u32(out, g);
          return end_frame(std::move(out));
        } else if constexpr (std::is_same_v<T, ReleaseReply>) {
          auto out = begin_frame(Op::kReleaseOk, reply.id);
          put_i32(out, payload.job_id);
          put_u8(out, payload.outcome);
          return end_frame(std::move(out));
        } else if constexpr (std::is_same_v<T, QueryReply>) {
          auto out = begin_frame(Op::kQueryOk, reply.id);
          put_i32(out, payload.job_id);
          put_u8(out, static_cast<std::uint8_t>(payload.state));
          put_u32(out, payload.server);
          put_f64(out, payload.start_s);
          put_f64(out, payload.finish_s);
          return end_frame(std::move(out));
        } else if constexpr (std::is_same_v<T, StatsReply>) {
          auto out = begin_frame(Op::kStatsOk, reply.id);
          put_string32(out, payload.json);
          return end_frame(std::move(out));
        } else {
          static_assert(std::is_same_v<T, ErrorReply>);
          auto out = begin_frame(Op::kError, reply.id);
          put_u16(out, static_cast<std::uint16_t>(payload.code));
          put_string16(out, payload.message);
          return end_frame(std::move(out));
        }
      },
      reply.payload);
}

DecodedRequest decode_request(const std::uint8_t* data, std::size_t size) {
  Reader r{data, size};
  std::uint8_t op = 0;
  std::uint64_t request_id = 0;
  if (auto header_error = decode_header(r, op, request_id)) {
    return *header_error;
  }
  Request request;
  request.id = request_id;
  switch (static_cast<Op>(op)) {
    case Op::kAllocate: {
      AllocateRequest a;
      a.job_id = r.get_i32();
      const std::uint8_t pattern = r.get_u8();
      a.bandwidth_sensitive = r.get_u8() != 0;
      a.num_gpus = r.get_u32();
      a.arrival_time_s = r.get_f64();
      a.iter_scale = r.get_f64();
      a.workload = r.get_string16();
      if (!r.done()) {
        return err(ErrorCode::kBadPayload, "malformed allocate payload",
                   request_id);
      }
      if (pattern > kMaxPattern) {
        return err(ErrorCode::kBadPattern,
                   "pattern kind " + std::to_string(pattern) + " out of range",
                   request_id);
      }
      a.pattern = static_cast<graph::PatternKind>(pattern);
      request.payload = std::move(a);
      return request;
    }
    case Op::kRelease: {
      ReleaseRequest rel;
      rel.job_id = r.get_i32();
      if (!r.done()) {
        return err(ErrorCode::kBadPayload, "malformed release payload",
                   request_id);
      }
      request.payload = rel;
      return request;
    }
    case Op::kQuery: {
      QueryRequest q;
      q.job_id = r.get_i32();
      if (!r.done()) {
        return err(ErrorCode::kBadPayload, "malformed query payload",
                   request_id);
      }
      request.payload = q;
      return request;
    }
    case Op::kStats: {
      if (!r.done()) {
        return err(ErrorCode::kBadPayload, "stats request carries no payload",
                   request_id);
      }
      request.payload = StatsRequest{};
      return request;
    }
    default:
      return err(ErrorCode::kBadOpcode,
                 "unknown request opcode " + std::to_string(op), request_id);
  }
}

DecodedReply decode_reply(const std::uint8_t* data, std::size_t size) {
  Reader r{data, size};
  std::uint8_t op = 0;
  std::uint64_t request_id = 0;
  if (auto header_error = decode_header(r, op, request_id)) {
    return *header_error;
  }
  Reply reply;
  reply.id = request_id;
  switch (static_cast<Op>(op)) {
    case Op::kAllocateOk: {
      AllocateReply a;
      a.job_id = r.get_i32();
      a.server = r.get_u32();
      a.retries = r.get_u32();
      a.start_s = r.get_f64();
      a.finish_s = r.get_f64();
      const std::uint16_t count = r.get_u16();
      a.gpus.reserve(r.ok ? count : 0);
      for (std::uint16_t i = 0; i < count && r.ok; ++i) {
        a.gpus.push_back(r.get_u32());
      }
      if (!r.done()) {
        return err(ErrorCode::kBadPayload, "malformed allocate reply",
                   request_id);
      }
      reply.payload = std::move(a);
      return reply;
    }
    case Op::kReleaseOk: {
      ReleaseReply rel;
      rel.job_id = r.get_i32();
      rel.outcome = r.get_u8();
      if (!r.done() || rel.outcome > 2) {
        return err(ErrorCode::kBadPayload, "malformed release reply",
                   request_id);
      }
      reply.payload = rel;
      return reply;
    }
    case Op::kQueryOk: {
      QueryReply q;
      q.job_id = r.get_i32();
      const std::uint8_t state = r.get_u8();
      q.server = r.get_u32();
      q.start_s = r.get_f64();
      q.finish_s = r.get_f64();
      if (!r.done() || state > kMaxJobState) {
        return err(ErrorCode::kBadPayload, "malformed query reply",
                   request_id);
      }
      q.state = static_cast<JobState>(state);
      reply.payload = q;
      return reply;
    }
    case Op::kStatsOk: {
      StatsReply s;
      s.json = r.get_string32();
      if (!r.done()) {
        return err(ErrorCode::kBadPayload, "malformed stats reply",
                   request_id);
      }
      reply.payload = std::move(s);
      return reply;
    }
    case Op::kError: {
      ErrorReply e;
      const std::uint16_t code = r.get_u16();
      e.message = r.get_string16();
      if (!r.done() || code > kMaxErrorCode) {
        return err(ErrorCode::kBadPayload, "malformed error reply",
                   request_id);
      }
      e.code = static_cast<ErrorCode>(code);
      reply.payload = std::move(e);
      return reply;
    }
    default:
      return err(ErrorCode::kBadOpcode,
                 "unknown reply opcode " + std::to_string(op), request_id);
  }
}

void FrameAssembler::feed(const std::uint8_t* data, std::size_t size) {
  if (error_.has_value()) return;  // poisoned: boundary is lost
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<std::vector<std::uint8_t>> FrameAssembler::next() {
  if (error_.has_value()) return std::nullopt;
  const std::size_t available = buffer_.size() - read_pos_;
  if (available < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buffer_[read_pos_ +
                                              static_cast<std::size_t>(i)])
           << (8 * i);
  }
  if (len > kMaxFrameLen) {
    error_ = DecodeError{ErrorCode::kOversizedFrame,
                         "declared frame length " + std::to_string(len) +
                             " exceeds cap " + std::to_string(kMaxFrameLen)};
    return std::nullopt;
  }
  if (len < kFrameHeaderLen) {
    error_ = DecodeError{ErrorCode::kBadPayload,
                         "declared frame length " + std::to_string(len) +
                             " below header size"};
    return std::nullopt;
  }
  if (available - 4 < len) return std::nullopt;  // body still in flight
  const auto begin =
      buffer_.begin() + static_cast<std::ptrdiff_t>(read_pos_ + 4);
  std::vector<std::uint8_t> frame(begin,
                                  begin + static_cast<std::ptrdiff_t>(len));
  read_pos_ += 4 + len;
  // Reclaim consumed bytes once they dominate the buffer, so a
  // long-lived connection doesn't grow its buffer forever.
  if (read_pos_ > 4096 && read_pos_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(read_pos_));
    read_pos_ = 0;
  }
  return frame;
}

}  // namespace mapa::svc
