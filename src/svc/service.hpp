#pragma once
// svc/service — the allocation daemon's core: a long-lived
// AllocationService owning a tick-driven cluster::FleetSimulator session
// and serving allocate/release/query/stats requests over the svc/wire
// protocol. Transport-agnostic and single-threaded by design: a socket
// front end (svc/server) feeds raw bytes through ingest() and pumps
// poll(); an in-process harness (svc/client LoopbackChannel) skips the
// socket entirely and calls the same two entry points, so unit tests
// never depend on real socket timing.
//
// Request lifecycle:
//   ingest()/enqueue()  — admission control. Decode errors, queue-full
//                         and shutting-down rejects are answered
//                         IMMEDIATELY with a typed kError reply; accepted
//                         requests join a bounded FIFO.
//   poll()              — one batch tick. Drains the entire admission
//                         queue in arrival order (allocates submit into
//                         the fleet session, releases/queries/stats
//                         answer from live state), then steps the fleet
//                         simulator to idle, then converts every newly
//                         finished placement / dead letter / unplaceable
//                         job into exactly one reply for its originating
//                         allocate.
//   shutdown()          — stop admitting, drain in-flight work to idle,
//                         and answer anything still unanswered with a
//                         typed kCancelled error. Every accepted request
//                         is answered exactly once, shutdown included.
//
// Determinism: because poll() drains the WHOLE queue before stepping,
// feeding a request log through the daemon and calling finish() yields
// FleetRecords byte-identical to cluster::FleetSimulator::run() on the
// same job list (tests/svc/test_equivalence.cpp pins this).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/fleet.hpp"
#include "svc/wire.hpp"

namespace mapa::obs {
class Counter;
}  // namespace mapa::obs

namespace mapa::svc {

struct ServiceConfig {
  /// Fleet configuration, observer included; the service registers its
  /// own svc.* counters into ClusterConfig::observer's registry when one
  /// is attached.
  cluster::ClusterConfig cluster;
  /// Admission queue bound: an enqueue past this depth is rejected with
  /// ErrorCode::kQueueFull. Deterministic — depth only changes in
  /// enqueue()/poll(), never on a background thread.
  std::size_t max_pending = 1024;
};

/// One reply frame addressed to the client connection that sent the
/// request. `client` is an opaque id chosen by the transport (socket fd,
/// loopback channel id).
struct Outbound {
  std::uint64_t client = 0;
  std::vector<std::uint8_t> frame;
};

class AllocationService {
 public:
  /// Builds the fleet and immediately opens a tick-driven session
  /// (arm_faults + collect_unplaceable: releases and unplaceable
  /// outcomes need both).
  AllocationService(std::vector<cluster::ServerSpec> servers,
                    ServiceConfig config);
  ~AllocationService();

  AllocationService(const AllocationService&) = delete;
  AllocationService& operator=(const AllocationService&) = delete;

  /// Feed raw transport bytes from `client`. Complete frames are decoded
  /// and admitted; malformed frames are answered immediately with kError
  /// (request id salvaged from the header when readable). Returns false
  /// when a lying length field has poisoned the connection's stream: one
  /// kError reply is emitted (flush it first!) and the transport must
  /// then close the connection and call disconnect().
  bool ingest(std::uint64_t client, const std::uint8_t* data,
              std::size_t size, std::vector<Outbound>& out);

  /// The transport lost `client` (peer closed, write failed, stream
  /// poisoned). Drops the connection's framing state so a transport
  /// reusing the id later starts clean, discards its not-yet-served
  /// queued requests, and tombstones its unanswered allocates so late
  /// placements don't produce replies that could reach a different
  /// client.
  void disconnect(std::uint64_t client);

  /// Typed admission entry (what ingest() calls per decoded frame; also
  /// the loopback harness' direct door). Returns true when the request
  /// was queued, false when it was rejected with an immediate reply.
  bool enqueue(std::uint64_t client, Request request,
               std::vector<Outbound>& out);

  /// One batch tick: drain admission queue -> step fleet to idle ->
  /// reply to newly resolved allocates. Returns the number of reply
  /// frames appended to `out`.
  std::size_t poll(std::vector<Outbound>& out);

  /// Stop admitting (further enqueues reject with kShuttingDown), drain
  /// everything in flight via one final poll(), then kCancelled-answer
  /// any allocate still unanswered.
  void shutdown(std::vector<Outbound>& out);
  bool shutting_down() const { return shutting_down_; }

  /// Close the fleet session and return its FleetResult (same shape as
  /// cluster::FleetSimulator::run()). The service cannot serve requests
  /// afterwards. Requires the admission queue to be empty.
  cluster::FleetResult finish();

  /// Schedule a fault event into the live session (clamped to the
  /// session's current simulated time). Mirrors
  /// cluster::FleetSimulator::inject_fault.
  void inject_fault(cluster::FaultEvent event);

  /// Service + observability snapshot as one JSON object — the payload
  /// of a kStatsOk reply. With include_obs false the obs snapshot is
  /// replaced by `"obs": null, "obs_truncated": true` — the fallback the
  /// stats endpoint uses when the full snapshot would exceed
  /// kMaxStatsJsonLen (keeping the reply valid JSON instead of letting
  /// the codec clamp cut it mid-token).
  std::string stats_json(bool include_obs = true) const;

  std::size_t pending() const { return pending_.size(); }
  double sim_now() const { return fleet_.sim_now(); }
  bool session_active() const { return fleet_.active(); }

  /// Direct fleet access for white-box tests.
  cluster::FleetSimulator& fleet() { return fleet_; }

 private:
  /// Everything the service remembers about one admitted allocate; the
  /// source of truth for kQuery replies and the exactly-once ledger.
  struct JobEntry {
    std::uint64_t client = 0;
    std::uint64_t request_id = 0;
    JobState state = JobState::kQueued;
    std::uint32_t server = 0;
    double start_s = 0.0;
    double finish_s = 0.0;
    bool answered = false;  // original allocate request replied to
  };

  struct PendingRequest {
    std::uint64_t client = 0;
    Request request;
  };

  struct Connection {
    FrameAssembler assembler;
    bool poison_reported = false;
  };

  void reply(std::uint64_t client, Reply r, std::vector<Outbound>& out);
  void reply_error(std::uint64_t client, std::uint64_t request_id,
                   ErrorCode code, std::string message,
                   std::vector<Outbound>& out);
  void serve_allocate(const PendingRequest& p, const AllocateRequest& a,
                      std::vector<Outbound>& out);
  void serve_release(const PendingRequest& p, const ReleaseRequest& r,
                     std::vector<Outbound>& out);
  void serve_query(const PendingRequest& p, const QueryRequest& q,
                   std::vector<Outbound>& out);
  void drain_admission(std::vector<Outbound>& out);
  void harvest_outcomes(std::vector<Outbound>& out);

  ServiceConfig config_;
  cluster::FleetSimulator fleet_;
  std::deque<PendingRequest> pending_;
  std::map<std::int32_t, JobEntry> jobs_;
  std::unordered_map<std::uint64_t, Connection> connections_;
  /// Cursors into the session's monotonically growing outcome vectors
  /// (records / dead letters); everything past a cursor is news.
  std::size_t records_cursor_ = 0;
  std::size_t dead_letter_cursor_ = 0;
  bool shutting_down_ = false;

  // Plain tallies (authoritative, zero-dependency) mirrored into the
  // observer registry's svc.* counters when one is attached.
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t queue_full_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t replies_ = 0;
  std::uint64_t polls_ = 0;
  obs::Counter* c_accepted_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_queue_full_ = nullptr;
  obs::Counter* c_decode_errors_ = nullptr;
  obs::Counter* c_replies_ = nullptr;
};

}  // namespace mapa::svc
