#include "svc/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace mapa::svc {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Write all bytes to a (blocking or not) fd; false on a dead peer.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    return false;
  }
  return true;
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("svc::SocketServer: socket path too long: " +
                             path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

SocketServer::SocketServer(std::string socket_path,
                           std::vector<cluster::ServerSpec> servers,
                           ServiceConfig config)
    : socket_path_(std::move(socket_path)),
      service_(std::move(servers), std::move(config)) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  if (running_) return;
  const sockaddr_un addr = make_address(socket_path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("svc::SocketServer: socket() failed");
  }
  ::unlink(socket_path_.c_str());  // stale path from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("svc::SocketServer: cannot listen on " +
                             socket_path_);
  }
  set_nonblocking(listen_fd_);
  stop_requested_.store(false, std::memory_order_release);
  running_ = true;
  loop_ = std::thread([this] { run_loop(); });
}

void SocketServer::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_release);
  loop_.join();
  running_ = false;
}

void SocketServer::inject_fault(cluster::FaultEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  service_.inject_fault(event);
}

std::string SocketServer::stats_json() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return service_.stats_json();
}

void SocketServer::flush(std::vector<Outbound>& out,
                         std::vector<std::uint64_t>& dead) {
  for (const Outbound& o : out) {
    const auto it = std::find_if(
        conns_.begin(), conns_.end(),
        [&](const Conn& c) { return c.id == o.client; });
    if (it == conns_.end()) continue;  // connection gone; drop its replies
    if (!write_all(it->fd, o.frame.data(), o.frame.size())) {
      dead.push_back(o.client);
    }
  }
  out.clear();
}

void SocketServer::reap(std::vector<std::uint64_t>& dead) {
  if (dead.empty()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::uint64_t id : dead) {
    const auto it = std::find_if(
        conns_.begin(), conns_.end(),
        [&](const Conn& c) { return c.id == id; });
    if (it == conns_.end()) continue;  // already reaped this round
    ::close(it->fd);
    conns_.erase(it);
    service_.disconnect(id);
  }
  dead.clear();
}

void SocketServer::run_loop() {
  std::vector<Outbound> out;
  std::vector<std::uint64_t> dead;
  std::vector<std::uint8_t> buf(64 * 1024);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Conn& c : conns_) fds.push_back(pollfd{c.fd, POLLIN, 0});
    // 50ms cap so the stop flag is honored promptly even when idle.
    ::poll(fds.data(), fds.size(), 50);

    if ((fds[0].revents & POLLIN) != 0) {
      while (true) {
        const int conn = ::accept(listen_fd_, nullptr, nullptr);
        if (conn < 0) break;
        // Connections stay BLOCKING for writes (replies must not drop on
        // a full pipe); reads are gated by poll() and sized to one buf.
        // Client ids are NEVER fds: the OS reuses fds across connections,
        // a counter is unique for the server's lifetime.
        conns_.push_back(Conn{++next_client_id_, conn});
      }
    }

    // fds[1..] maps to conns_[0..] as of the top of this iteration;
    // accept() only appends, so the alignment holds.
    bool got_bytes = false;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const Conn& c = conns_[i - 1];
      const ssize_t n = ::read(c.fd, buf.data(), buf.size());
      if (n > 0) {
        got_bytes = true;
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!service_.ingest(c.id, buf.data(), static_cast<std::size_t>(n),
                             out)) {
          // Poisoned stream: the one kError reply is in `out`; flush it
          // below, then close so the peer sees EOF instead of hanging.
          dead.push_back(c.id);
        }
      } else if (n == 0 || (errno != EINTR && errno != EAGAIN)) {
        dead.push_back(c.id);
      }
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (got_bytes || service_.pending() > 0) service_.poll(out);
    }
    flush(out, dead);
    reap(dead);
  }

  // Graceful drain: answer everything in flight, flush, then close.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    service_.shutdown(out);
  }
  flush(out, dead);
  for (const Conn& c : conns_) ::close(c.fd);
  conns_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(socket_path_.c_str());
}

SocketChannel::SocketChannel(const std::string& socket_path) {
  const sockaddr_un addr = make_address(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("svc::SocketChannel: socket() failed");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("svc::SocketChannel: cannot connect to " +
                             socket_path);
  }
}

SocketChannel::~SocketChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketChannel::send(const std::uint8_t* data, std::size_t size) {
  if (fd_ < 0 || !write_all(fd_, data, size)) {
    throw std::runtime_error("svc::SocketChannel: send failed");
  }
}

std::vector<std::uint8_t> SocketChannel::receive() {
  std::vector<std::uint8_t> buf(64 * 1024);
  while (true) {
    const ssize_t n = ::read(fd_, buf.data(), buf.size());
    if (n > 0) {
      buf.resize(static_cast<std::size_t>(n));
      return buf;
    }
    if (n == 0) return {};  // orderly EOF
    if (errno == EINTR) continue;
    throw std::runtime_error("svc::SocketChannel: receive failed");
  }
}

}  // namespace mapa::svc
