#include "svc/client.hpp"

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mapa::svc {

void LoopbackHub::dispatch(std::vector<Outbound>& out) {
  for (Outbound& o : out) {
    inboxes_[o.client].push_back(std::move(o.frame));
  }
  out.clear();
}

void LoopbackChannel::send(const std::uint8_t* data, std::size_t size) {
  std::vector<Outbound> out;
  hub_.service_.ingest(client_id_, data, size, out);
  hub_.dispatch(out);
}

std::vector<std::uint8_t> LoopbackChannel::receive() {
  auto& inbox = hub_.inboxes_[client_id_];
  if (inbox.empty()) {
    std::vector<Outbound> out;
    hub_.service_.poll(out);
    hub_.dispatch(out);
  }
  if (inbox.empty()) return {};
  std::vector<std::uint8_t> frame = std::move(inbox.front());
  inbox.pop_front();
  return frame;
}

std::uint64_t Client::send_request(Request request) {
  const std::uint64_t id = request.id;
  const std::vector<std::uint8_t> frame = encode(request);
  channel_.send(frame.data(), frame.size());
  return id;
}

std::uint64_t Client::allocate(const workload::Job& job) {
  return send_request(
      Request{next_id_++, AllocateRequest::from_job(job)});
}

std::uint64_t Client::release(int job_id) {
  return send_request(Request{next_id_++, ReleaseRequest{job_id}});
}

std::uint64_t Client::query(int job_id) {
  return send_request(Request{next_id_++, QueryRequest{job_id}});
}

std::uint64_t Client::stats() {
  return send_request(Request{next_id_++, StatsRequest{}});
}

bool Client::pump() {
  const std::vector<std::uint8_t> bytes = channel_.receive();
  if (bytes.empty()) return false;
  assembler_.feed(bytes.data(), bytes.size());
  while (auto frame = assembler_.next()) {
    DecodedReply decoded = decode_reply(frame->data(), frame->size());
    if (const DecodeError* e = std::get_if<DecodeError>(&decoded)) {
      throw std::runtime_error("svc::Client: undecodable reply frame: " +
                               e->message);
    }
    Reply reply = std::move(std::get<Reply>(decoded));
    ready_.insert_or_assign(reply.id, std::move(reply));
  }
  if (assembler_.error().has_value()) {
    throw std::runtime_error("svc::Client: reply stream corrupt: " +
                             assembler_.error()->message);
  }
  return true;
}

std::optional<Reply> Client::try_take(std::uint64_t request_id) {
  const auto it = ready_.find(request_id);
  if (it == ready_.end()) return std::nullopt;
  Reply reply = std::move(it->second);
  ready_.erase(it);
  return reply;
}

Reply Client::wait(std::uint64_t request_id) {
  // A handful of empty receives in a row means the transport is done and
  // the reply is never coming (idle loopback service / socket EOF) — a
  // protocol bug worth failing loudly on, not spinning.
  int dry = 0;
  while (true) {
    if (auto reply = try_take(request_id)) return *std::move(reply);
    if (pump()) {
      dry = 0;
    } else if (++dry >= 3) {
      throw std::runtime_error(
          "svc::Client: channel went silent with request " +
          std::to_string(request_id) + " unanswered");
    }
  }
}

}  // namespace mapa::svc
