#pragma once
// svc/client — client-side protocol library for the allocation daemon.
//
// Channel is the transport seam: bytes out, bytes in. Two
// implementations exist — LoopbackChannel (in-process, deterministic,
// pumps the AllocationService directly; what unit tests use so nothing
// depends on real socket timing) and SocketChannel (svc/server, AF_UNIX;
// exercised by the integration smoke test and the example daemon).
//
// Client speaks the wire protocol over any Channel: it assigns request
// ids, encodes requests, reassembles and decodes reply frames, and
// parks replies until wait() claims them by id — requests and replies
// need not interleave 1:1 (an allocate's reply arrives only when the
// job places, possibly many requests later).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "svc/service.hpp"
#include "svc/wire.hpp"
#include "workload/job.hpp"

namespace mapa::svc {

class Channel {
 public:
  virtual ~Channel() = default;
  /// Write `size` bytes to the transport (all of them).
  virtual void send(const std::uint8_t* data, std::size_t size) = 0;
  /// Read some bytes. An empty vector means the transport has nothing
  /// and never will without outside progress (loopback: the service is
  /// idle; socket: orderly EOF).
  virtual std::vector<std::uint8_t> receive() = 0;
};

/// Shared state behind every LoopbackChannel on one service: routes each
/// Outbound frame into its client's inbox, so concurrent loopback
/// clients never steal (or drop) each other's replies when one of them
/// pumps the service.
class LoopbackHub {
 public:
  explicit LoopbackHub(AllocationService& service) : service_(service) {}

  AllocationService& service() { return service_; }

 private:
  friend class LoopbackChannel;
  void dispatch(std::vector<Outbound>& out);

  AllocationService& service_;
  std::map<std::uint64_t, std::deque<std::vector<std::uint8_t>>> inboxes_;
};

/// In-process channel: send() feeds the service's ingest() directly and
/// receive() pumps poll() when no reply is buffered. Single-threaded and
/// fully deterministic — the unit-test fixture.
class LoopbackChannel : public Channel {
 public:
  LoopbackChannel(LoopbackHub& hub, std::uint64_t client_id = 1)
      : hub_(hub), client_id_(client_id) {}

  void send(const std::uint8_t* data, std::size_t size) override;
  std::vector<std::uint8_t> receive() override;

 private:
  LoopbackHub& hub_;
  std::uint64_t client_id_;
};

class Client {
 public:
  explicit Client(Channel& channel) : channel_(channel) {}

  /// Each returns the request id to wait() on.
  std::uint64_t allocate(const workload::Job& job);
  std::uint64_t release(int job_id);
  std::uint64_t query(int job_id);
  std::uint64_t stats();

  /// Block until the reply for `request_id` arrives, pumping the
  /// channel. Throws std::runtime_error when the channel goes silent
  /// with the reply still outstanding (closed socket, idle service) or
  /// the peer sends an undecodable frame.
  Reply wait(std::uint64_t request_id);

  /// Non-blocking: claim the reply if it already arrived.
  std::optional<Reply> try_take(std::uint64_t request_id);

 private:
  std::uint64_t send_request(Request request);
  /// One receive+decode round. Returns false when the channel returned
  /// no bytes.
  bool pump();

  Channel& channel_;
  FrameAssembler assembler_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Reply> ready_;
};

}  // namespace mapa::svc
