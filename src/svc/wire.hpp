#pragma once
// svc/wire — the allocation daemon's dependency-free binary wire format.
//
// Every message is one length-prefixed frame, little-endian throughout:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//   0       4     frame length N (bytes that follow this field, u32)
//   4       2     magic 0x4D41 ("MA")
//   6       1     protocol version (kVersion)
//   7       1     opcode (Op)
//   8       8     request id (echoed verbatim in the reply)
//   16      N-12  typed payload (per-opcode layout below)
//
// Integers are fixed-width little-endian; doubles travel as their IEEE
// 754 bit pattern in a u64. Strings and arrays are length-prefixed
// (u16 count) — nothing is null-terminated and nothing is implicit, so a
// decoder can bound-check every read. The decoder NEVER trusts a length
// field: a frame longer than kMaxFrameLen, a truncated payload, an
// unknown version/opcode/enum value, or trailing garbage all yield a
// typed DecodeError (never UB) — tests/svc/test_wire.cpp fuzzes exactly
// this contract under ASan+UBSan.
//
// Payload layouts (request → reply):
//   kAllocate   i32 job_id, u8 pattern, u8 bandwidth_sensitive,
//               u32 num_gpus, f64 arrival_time_s, f64 iter_scale,
//               u16 len + workload name bytes
//   kRelease    i32 job_id
//   kQuery      i32 job_id
//   kStats      (empty)
//   kAllocateOk i32 job_id, u32 server, u32 retries, f64 start_s,
//               f64 finish_s, u16 count + count * u32 gpu ids
//   kReleaseOk  i32 job_id, u8 outcome (ReleaseOutcome)
//   kQueryOk    i32 job_id, u8 state (JobState), u32 server,
//               f64 start_s, f64 finish_s
//   kStatsOk    u32 len + JSON bytes
//   kError      u16 code (ErrorCode), u16 len + message bytes
//
// The codec is transport-agnostic: FrameAssembler turns an arbitrary
// byte stream (socket reads of any granularity) into complete frames.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "graph/patterns.hpp"
#include "workload/job.hpp"

namespace mapa::svc {

inline constexpr std::uint16_t kMagic = 0x4D41;
inline constexpr std::uint8_t kVersion = 1;
/// Bytes of header inside the length-prefixed region (magic..request id).
inline constexpr std::size_t kFrameHeaderLen = 12;
/// Hard cap on the declared frame length — a corrupt or hostile length
/// field must never trigger a giant allocation.
inline constexpr std::size_t kMaxFrameLen = 1u << 20;
/// Largest JSON payload a kStatsOk frame can carry and still fit under
/// kMaxFrameLen (header + u32 length prefix + bytes). encode() clamps to
/// this so a stats reply can never poison the client's reply stream; the
/// service swaps in an obs-free snapshot before the clamp would cut JSON
/// mid-token.
inline constexpr std::size_t kMaxStatsJsonLen =
    kMaxFrameLen - kFrameHeaderLen - 4;

enum class Op : std::uint8_t {
  kAllocate = 0x01,
  kRelease = 0x02,
  kQuery = 0x03,
  kStats = 0x04,
  kAllocateOk = 0x81,
  kReleaseOk = 0x82,
  kQueryOk = 0x83,
  kStatsOk = 0x84,
  kError = 0xFF,
};

/// Typed failure surface: every way a request can be refused without the
/// daemon dying, from transport-level garbage (kBadMagic..kBadPayload)
/// through admission control (kQueueFull) to scheduling outcomes
/// (kUnplaceable, kDeadLettered) and lifecycle (kShuttingDown,
/// kCancelled).
enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kBadMagic = 1,
  kBadVersion = 2,
  kBadOpcode = 3,
  kBadPayload = 4,
  kOversizedFrame = 5,
  kUnknownWorkload = 6,
  kBadPattern = 7,
  kQueueFull = 8,
  kTooManyGpus = 9,
  kDuplicateJob = 10,
  kUnplaceable = 11,
  kDeadLettered = 12,
  kShuttingDown = 13,
  kCancelled = 14,
};

const char* to_string(ErrorCode code);

/// Lifecycle of a job as the daemon's query endpoint reports it.
enum class JobState : std::uint8_t {
  kUnknown = 0,      // id never seen (or long forgotten)
  kQueued = 1,       // admitted, not yet placed
  kRunning = 2,      // placed, finish time still in the simulated future
  kFinished = 3,     // placed and past its finish time
  kDeadLettered = 4, // killed by faults beyond the retry budget
  kUnplaceable = 5,  // no server in the fleet could ever hold it
  kReleased = 6,     // client released it before completion
};

struct AllocateRequest {
  std::int32_t job_id = 0;
  graph::PatternKind pattern = graph::PatternKind::kSingle;
  bool bandwidth_sensitive = false;
  std::uint32_t num_gpus = 0;
  /// Simulated arrival time. The daemon clamps a past time to its
  /// current simulated now at admission.
  double arrival_time_s = 0.0;
  double iter_scale = 1.0;
  /// Workload profile name (workload::find_workload); validated by the
  /// service, not the codec.
  std::string workload;

  workload::Job to_job() const;
  static AllocateRequest from_job(const workload::Job& job);
};

struct ReleaseRequest {
  std::int32_t job_id = 0;
};

struct QueryRequest {
  std::int32_t job_id = 0;
};

struct StatsRequest {};

struct AllocateReply {
  std::int32_t job_id = 0;
  std::uint32_t server = 0;
  std::uint32_t retries = 0;
  double start_s = 0.0;
  double finish_s = 0.0;
  std::vector<std::uint32_t> gpus;  // accelerator ids on `server`
};

struct ReleaseReply {
  std::int32_t job_id = 0;
  /// cluster::FleetSimulator::ReleaseOutcome: 0 not found, 1 dropped
  /// from a queue, 2 freed while running.
  std::uint8_t outcome = 0;
};

struct QueryReply {
  std::int32_t job_id = 0;
  JobState state = JobState::kUnknown;
  std::uint32_t server = 0;
  double start_s = 0.0;
  double finish_s = 0.0;
};

struct StatsReply {
  std::string json;
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

using RequestPayload =
    std::variant<AllocateRequest, ReleaseRequest, QueryRequest, StatsRequest>;
using ReplyPayload = std::variant<AllocateReply, ReleaseReply, QueryReply,
                                  StatsReply, ErrorReply>;

struct Request {
  std::uint64_t id = 0;
  RequestPayload payload;
};

struct Reply {
  std::uint64_t id = 0;
  ReplyPayload payload;
};

/// Typed decode failure. `request_id` is the offending frame's id when
/// the header was readable (so the error reply can still be correlated),
/// 0 otherwise.
struct DecodeError {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
  std::uint64_t request_id = 0;
};

/// Encode one complete frame, length prefix included.
std::vector<std::uint8_t> encode(const Request& request);
std::vector<std::uint8_t> encode(const Reply& reply);

using DecodedRequest = std::variant<Request, DecodeError>;
using DecodedReply = std::variant<Reply, DecodeError>;

/// Decode one frame BODY (everything after the 4-byte length prefix —
/// what FrameAssembler::next() hands out). Bounds-checked everywhere;
/// malformed input yields a DecodeError, never UB.
DecodedRequest decode_request(const std::uint8_t* data, std::size_t size);
DecodedReply decode_reply(const std::uint8_t* data, std::size_t size);

/// Incremental stream framer: feed() raw bytes in any granularity,
/// next() yields complete frame bodies in order. A declared length
/// beyond kMaxFrameLen or below kFrameHeaderLen poisons the stream (the
/// byte boundary is unrecoverable once a length field lies): error() is
/// set and next() returns nothing further.
class FrameAssembler {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  std::optional<std::vector<std::uint8_t>> next();
  const std::optional<DecodeError>& error() const { return error_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t read_pos_ = 0;
  std::optional<DecodeError> error_;
};

}  // namespace mapa::svc
