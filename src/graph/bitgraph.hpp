#pragma once
// Single-word bitset view (Glasgow-solver style) for hardware graphs with
// at most 64 accelerators, which covers every machine the paper evaluates
// (it tops out at 16). `BitGraph` is a thin adapter over
// `graph::InlineRows<1>` (graph/bitrows.hpp, the storage the unified
// matcher cores are instantiated for) that hands rows and the full-domain
// mask out as plain uint64_t values; targets above 64 vertices run on
// `graph::DynRows` with no vertex ceiling.
//
// `VertexMask` is the companion free/busy-set representation used to plumb
// forbidden (busy) accelerators through the matching stack: a word-array
// bitset that degenerates to a single uint64_t for the <= 64 fast path and
// doubles as the allocation-state half of the policy match-cache key.

#include <cstdint>
#include <vector>

#include "graph/bitrows.hpp"
#include "graph/graph.hpp"

namespace mapa::graph {

/// A set of hardware vertices as a word-array bitset. An empty mask
/// (size() == 0) means "no vertices masked" and is the default for the
/// matching APIs.
class VertexMask {
 public:
  VertexMask() = default;

  /// Mask over `n` vertices, all bits clear.
  explicit VertexMask(std::size_t n)
      : size_(n), words_((n + 63) / 64, 0) {}

  /// Busy mask -> vertex mask (bit v set iff busy[v]).
  static VertexMask of_busy(const std::vector<bool>& busy) {
    VertexMask mask(busy.size());
    for (std::size_t v = 0; v < busy.size(); ++v) {
      if (busy[v]) mask.set(static_cast<VertexId>(v));
    }
    return mask;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool test(VertexId v) const {
    return (words_[v >> 6] >> (v & 63)) & 1;
  }
  void set(VertexId v) { words_[v >> 6] |= std::uint64_t{1} << (v & 63); }
  void reset(VertexId v) { words_[v >> 6] &= ~(std::uint64_t{1} << (v & 63)); }

  /// Number of set bits.
  std::size_t count() const;
  bool none() const;

  /// Word `i` of the underlying storage (word 0 covers vertices 0..63 —
  /// the whole mask for <= 64-vertex graphs).
  std::uint64_t word(std::size_t i) const { return words_[i]; }
  const std::vector<std::uint64_t>& words() const { return words_; }
  std::size_t num_words() const { return words_.size(); }

  /// Order-sensitive 64-bit hash of (size, words). The match cache keys
  /// allocation states by this fingerprint instead of copying the word
  /// array into every key, so single-word DGX masks and multi-word rack
  /// masks cost the same per lookup (see policy/match_cache.hpp for the
  /// collision-probability argument).
  std::uint64_t fingerprint() const;

  bool operator==(const VertexMask&) const = default;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Word-per-vertex adjacency view of a `Graph` with <= 64 vertices: an
/// `InlineRows<1>` handing out rows as plain uint64_t masks. Construction
/// is O(n + m) with no heap allocation; intended to be built per
/// enumeration (hardware graphs are tiny) or kept alongside a graph.
class BitGraph {
 public:
  static constexpr std::size_t kMaxVertices = InlineRows<1>::kMaxVertices;

  static bool fits(const Graph& g) { return InlineRows<1>::fits(g); }

  /// Throws std::invalid_argument when the graph has more than 64 vertices.
  explicit BitGraph(const Graph& g) : rows_(g) {}

  std::size_t num_vertices() const { return rows_.num_vertices(); }

  /// Neighbors of `v` as a bitmask.
  std::uint64_t row(VertexId v) const { return rows_.row(v)[0]; }

  /// All vertices of the graph as a bitmask (the full candidate domain).
  std::uint64_t all_vertices() const { return rows_.all_vertices()[0]; }

  bool has_edge(VertexId u, VertexId v) const { return rows_.has_edge(u, v); }

  std::size_t degree(VertexId v) const { return rows_.degree(v); }

  /// The underlying storage, for handing to a matcher core directly.
  const InlineRows<1>& rows() const { return rows_; }

 private:
  InlineRows<1> rows_;
};

}  // namespace mapa::graph
