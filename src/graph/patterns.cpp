#include "graph/patterns.hpp"

#include <algorithm>
#include <stdexcept>

namespace mapa::graph {

namespace {

using interconnect::LinkType;

void require_size(std::size_t n, std::size_t minimum, const char* what) {
  if (n < minimum) {
    throw std::invalid_argument(std::string(what) +
                                ": pattern needs more vertices");
  }
}

void add_ring_edges(Graph& g) {
  const std::size_t n = g.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const auto next = static_cast<VertexId>((v + 1) % n);
    if (v != next) g.add_edge(v, next, LinkType::kNone, 0.0);
  }
}

void add_tree_edges(Graph& g) {
  // Balanced binary tree rooted at 0: children of i are 2i+1 and 2i+2.
  const std::size_t n = g.num_vertices();
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t child : {2 * i + 1, 2 * i + 2}) {
      if (child < n) {
        g.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(child),
                   LinkType::kNone, 0.0);
      }
    }
  }
}

}  // namespace

Graph single_gpu() { return Graph(1, "single"); }

Graph ring(std::size_t n) {
  require_size(n, 2, "ring");
  Graph g(n, "ring-" + std::to_string(n));
  add_ring_edges(g);
  return g;
}

Graph chain(std::size_t n) {
  require_size(n, 2, "chain");
  Graph g(n, "chain-" + std::to_string(n));
  for (VertexId v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1, LinkType::kNone, 0.0);
  }
  return g;
}

Graph binary_tree(std::size_t n) {
  require_size(n, 2, "binary_tree");
  Graph g(n, "tree-" + std::to_string(n));
  add_tree_edges(g);
  return g;
}

Graph star(std::size_t n) {
  require_size(n, 2, "star");
  Graph g(n, "star-" + std::to_string(n));
  for (VertexId v = 1; v < n; ++v) g.add_edge(0, v, LinkType::kNone, 0.0);
  return g;
}

Graph all_to_all(std::size_t n) {
  require_size(n, 2, "all_to_all");
  Graph g(n, "alltoall-" + std::to_string(n));
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      g.add_edge(u, v, LinkType::kNone, 0.0);
    }
  }
  return g;
}

Graph nccl_mix(std::size_t n) {
  require_size(n, 2, "nccl_mix");
  Graph g(n, "ncclmix-" + std::to_string(n));
  add_ring_edges(g);
  add_tree_edges(g);
  return g;
}

Graph make_pattern(PatternKind kind, std::size_t n) {
  if (n == 0) throw std::invalid_argument("make_pattern: n must be >= 1");
  if (n == 1) return single_gpu();
  switch (kind) {
    case PatternKind::kSingle:
      throw std::invalid_argument("make_pattern: kSingle requires n == 1");
    case PatternKind::kRing:
      return ring(n);
    case PatternKind::kChain:
      return chain(n);
    case PatternKind::kTree:
      return binary_tree(n);
    case PatternKind::kStar:
      return star(n);
    case PatternKind::kAllToAll:
      return all_to_all(n);
    case PatternKind::kNcclMix:
      return nccl_mix(n);
  }
  throw std::invalid_argument("make_pattern: unknown kind");
}

std::string to_string(PatternKind kind) {
  switch (kind) {
    case PatternKind::kSingle:
      return "Single";
    case PatternKind::kRing:
      return "Ring";
    case PatternKind::kChain:
      return "Chain";
    case PatternKind::kTree:
      return "Tree";
    case PatternKind::kStar:
      return "Star";
    case PatternKind::kAllToAll:
      return "AllToAll";
    case PatternKind::kNcclMix:
      return "NcclMix";
  }
  throw std::invalid_argument("to_string(PatternKind): unknown kind");
}

std::optional<PatternKind> parse_pattern_kind(const std::string& text) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "single") return PatternKind::kSingle;
  if (lower == "ring") return PatternKind::kRing;
  if (lower == "chain") return PatternKind::kChain;
  if (lower == "tree") return PatternKind::kTree;
  if (lower == "star") return PatternKind::kStar;
  if (lower == "alltoall") return PatternKind::kAllToAll;
  if (lower == "ncclmix") return PatternKind::kNcclMix;
  return std::nullopt;
}

}  // namespace mapa::graph
