#pragma once
// Hardware-graph factories for every machine the paper evaluates or
// sketches (Fig. 1 and Fig. 17), plus reference topologies used in tests
// and ablations.
//
// Each factory can build the graph under two conventions:
//  * kPcieFallback (paper default, §3.2): the hardware graph is fully
//    connected — any pair without a direct NVLink gets a PCIe edge, since
//    a host-routed path always exists.
//  * kNvlinkOnly: only direct NVLink edges are materialized. Used for the
//    connectivity ablation (DESIGN.md #3) and by topology-structure tests.

#include <cstddef>

#include "graph/graph.hpp"

namespace mapa::graph {

enum class Connectivity {
  kPcieFallback,
  kNvlinkOnly,
};

/// NVIDIA DGX-1 with Volta V100s (paper Fig. 1c) — 8 GPUs in a hybrid
/// cube-mesh with single and double NVLink-v2 and two CPU sockets
/// (GPUs 0-3 and 4-7). The edge set reproduces the published
/// `nvidia-smi topo -m` matrix and matches every worked example in the
/// paper (e.g. allocation {0,1,4} = 87 GB/s, ideal {0,2,3} = 125 GB/s,
/// both in 0-based ids).
Graph dgx1_v100(Connectivity connectivity = Connectivity::kPcieFallback);

/// NVIDIA DGX-1 with Pascal P100s (paper Fig. 1b) — same cube-mesh edge
/// set, but all links are single NVLink-v1 (P100 has 4 NVLink ports).
Graph dgx1_p100(Connectivity connectivity = Connectivity::kPcieFallback);

/// One Summit node (paper Fig. 1a) — 6 V100s, two sockets of 3 GPUs;
/// GPUs within a socket are fully connected by double NVLink-v2, and
/// cross-socket traffic goes through the hosts.
Graph summit_node(Connectivity connectivity = Connectivity::kPcieFallback);

/// 16-GPU 4x4 2-D torus (paper Fig. 17a). Row rings use double NVLink-v2,
/// column rings single NVLink-v2; each 2x2 quadrant of GPUs shares a CPU
/// socket. This is the interpretation of the figure recorded in DESIGN.md.
Graph torus2d_16(Connectivity connectivity = Connectivity::kPcieFallback);

/// 16-GPU cube-mesh (paper Fig. 17b): two DGX-1V-style octets bridged by
/// four inter-octet NVLinks, giving the deliberately irregular network the
/// paper uses to stress Greedy. Four sockets of 4 GPUs.
Graph cubemesh_16(Connectivity connectivity = Connectivity::kPcieFallback);

/// 16-GPU NVSwitch crossbar (DGX-2-like): every pair connected at NVSwitch
/// port bandwidth. Used as a uniform-topology reference in ablations.
Graph nvswitch_16(Connectivity connectivity = Connectivity::kPcieFallback);

/// n GPUs with PCIe-only connectivity (no NVLink anywhere); one socket.
Graph pcie_only(std::size_t n);

/// Multi-node rack builders (the ROADMAP's fleet-scale targets; the paper
/// itself tops out at 16 accelerators). Each builds `nodes` copies of the
/// single-node graph — vertex v of node i becomes i * node_size + v, and
/// sockets are renumbered i * 2 + local socket — and bridges consecutive
/// nodes into a ring with one double-NVLink rail (last GPU of node i to
/// first GPU of node i + 1), a sparse stand-in for the inter-node fabric
/// that keeps the kNvlinkOnly rack connected so cross-node allocations
/// are expressible. Under kPcieFallback every remaining pair additionally
/// gets a host-routed PCIe edge, per the paper's §3.2 convention.
///
/// These are the wide-matching-path targets: above 64 GPUs enumeration
/// runs on graph::DynRows word-array domains with no vertex ceiling
/// (docs/ARCHITECTURE.md has the dispatch table). Throws
/// std::invalid_argument when nodes == 0.

/// `nodes` Summit nodes (6 V100s each): 22 nodes = a 132-GPU rack row.
Graph summit_rack(std::size_t nodes,
                  Connectivity connectivity = Connectivity::kPcieFallback);

/// `nodes` DGX-1V nodes (8 V100s each): 16 nodes = a 128-GPU rack.
Graph dgx_rack(std::size_t nodes,
               Connectivity connectivity = Connectivity::kPcieFallback);

/// Add PCIe edges between every unconnected pair (the §3.2 fully-connected
/// convention) to an NVLink-only graph, in place.
void add_pcie_fallback(Graph& g);

}  // namespace mapa::graph
