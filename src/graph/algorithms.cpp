#include "graph/algorithms.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <stdexcept>

namespace mapa::graph {

std::vector<int> connected_components(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<int> comp(n, -1);
  int next = 0;
  std::vector<VertexId> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (comp[root] != -1) continue;
    comp[root] = next;
    stack.push_back(root);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const VertexId w : g.neighbors(v)) {
        if (comp[w] == -1) {
          comp[w] = next;
          stack.push_back(w);
        }
      }
    }
    ++next;
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto comp = connected_components(g);
  return std::all_of(comp.begin(), comp.end(),
                     [](int c) { return c == 0; });
}

std::vector<std::size_t> degree_sequence(const Graph& g) {
  std::vector<std::size_t> degrees;
  degrees.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    degrees.push_back(g.degree(v));
  }
  std::sort(degrees.rbegin(), degrees.rend());
  return degrees;
}

bool preserves_adjacency(const Graph& pattern, const Graph& target,
                         const std::vector<VertexId>& mapping) {
  if (mapping.size() != pattern.num_vertices()) return false;
  std::vector<bool> used(target.num_vertices(), false);
  for (const VertexId t : mapping) {
    if (t >= target.num_vertices() || used[t]) return false;
    used[t] = true;
  }
  for (const Edge& e : pattern.edges()) {
    if (!target.has_edge(mapping[e.u], mapping[e.v])) return false;
  }
  return true;
}

bool preserves_adjacency_exactly(const Graph& pattern, const Graph& target,
                                 const std::vector<VertexId>& mapping) {
  if (pattern.num_vertices() != target.num_vertices()) return false;
  if (!preserves_adjacency(pattern, target, mapping)) return false;
  for (VertexId u = 0; u < pattern.num_vertices(); ++u) {
    for (VertexId v = u + 1; v < pattern.num_vertices(); ++v) {
      if (!pattern.has_edge(u, v) &&
          target.has_edge(mapping[u], mapping[v])) {
        return false;
      }
    }
  }
  return true;
}

std::vector<std::vector<VertexId>> automorphisms(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::vector<VertexId>> result;
  std::vector<VertexId> mapping(n, 0);
  std::vector<bool> used(n, false);

  // Backtracking with degree pruning: an automorphism must map each vertex
  // to one of equal degree, and adjacency with already-placed vertices must
  // match exactly in both directions.
  std::function<void(std::size_t)> place = [&](std::size_t depth) {
    if (depth == n) {
      result.push_back(mapping);
      return;
    }
    const auto u = static_cast<VertexId>(depth);
    for (VertexId candidate = 0; candidate < n; ++candidate) {
      if (used[candidate]) continue;
      if (g.degree(candidate) != g.degree(u)) continue;
      bool ok = true;
      for (VertexId placed = 0; placed < depth; ++placed) {
        if (g.has_edge(u, placed) !=
            g.has_edge(candidate, mapping[placed])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      mapping[u] = candidate;
      used[candidate] = true;
      place(depth + 1);
      used[candidate] = false;
    }
  };
  place(0);
  return result;
}

std::size_t automorphism_count(const Graph& g) {
  return automorphisms(g).size();
}

std::uint64_t adjacency_fingerprint(const Graph& g) {
  // FNV-1a over the vertex count and each undirected edge (u, v), u < v,
  // in insertion order. Stable across runs and platforms.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 0x100000001b3ULL;
  };
  mix(g.num_vertices());
  for (const Edge& e : g.edges()) {
    mix((static_cast<std::uint64_t>(e.u) << 32) | e.v);
  }
  return hash;
}

std::uint64_t topology_fingerprint(const Graph& g) {
  // The adjacency hash continued over each edge's bandwidth bit pattern
  // (bit_cast keeps it exact: any bandwidth change, however small, is a
  // different fingerprint). Same FNV-1a stream, so the two fingerprints
  // stay independent hashes of the same edge order.
  std::uint64_t hash = adjacency_fingerprint(g) ^ 0x9e3779b97f4a7c15ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 0x100000001b3ULL;
  };
  for (const Edge& e : g.edges()) {
    mix(std::bit_cast<std::uint64_t>(e.bandwidth_gbps));
  }
  return hash;
}

}  // namespace mapa::graph
