#pragma once
// Structural graph algorithms used by the matcher and the policies:
// connectivity (sanity checks on topologies), automorphism enumeration
// (symmetry breaking so each allocation is reported once), mapping
// validation shared by tests and both isomorphism backends, and the
// adjacency fingerprint the match cache keys on.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mapa::graph {

/// Component id per vertex, ids dense from 0.
std::vector<int> connected_components(const Graph& g);

/// True when the graph has one component (or is empty).
bool is_connected(const Graph& g);

/// Sorted (descending) vertex degrees.
std::vector<std::size_t> degree_sequence(const Graph& g);

/// True if `mapping` (pattern vertex -> target vertex, injective) maps
/// every pattern edge onto a target edge. Edge labels are ignored, matching
/// the paper's structure-only isomorphism definition (§3.3).
bool preserves_adjacency(const Graph& pattern, const Graph& target,
                         const std::vector<VertexId>& mapping);

/// True if in addition every pattern *non*-edge maps to a target non-edge
/// (full induced isomorphism; used to enumerate automorphisms).
bool preserves_adjacency_exactly(const Graph& pattern, const Graph& target,
                                 const std::vector<VertexId>& mapping);

/// All automorphisms of `g` (adjacency-preserving permutations of its
/// vertices, ignoring edge labels). Includes the identity. Exponential in
/// the worst case — intended for application patterns (<= ~12 vertices).
std::vector<std::vector<VertexId>> automorphisms(const Graph& g);

/// Size of the automorphism group (|Aut(g)|).
std::size_t automorphism_count(const Graph& g);

/// Order-sensitive hash of the graph's vertex count and adjacency
/// structure (edge labels and bandwidths are ignored — matching is
/// structure-only per §3.3). Equal fingerprints on equally-sized graphs
/// mean identical adjacency, up to hash collisions; the match cache uses
/// this as the canonical pattern key (the pattern factories build each
/// shape with one fixed labeling, so repeat jobs of a shape collide onto
/// one entry).
std::uint64_t adjacency_fingerprint(const Graph& g);

/// adjacency_fingerprint extended with every edge's bandwidth bits:
/// hardware identity for cache pinning and archetype grouping. Two graphs
/// with equal topology fingerprints have identical adjacency AND link
/// bandwidths (up to hash collisions), so a link-degraded fork of a
/// topology — same edges, one bandwidth cut — hashes differently even
/// though its structure-only match sets would still agree. The fault
/// subsystem (cluster/fleet.hpp) relies on this: forked degraded handles
/// invalidate shared match caches and probe memos by construction.
std::uint64_t topology_fingerprint(const Graph& g);

}  // namespace mapa::graph
