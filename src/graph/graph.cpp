#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace mapa::graph {

Graph::Graph(std::size_t n, std::string name)
    : num_vertices_(n),
      name_(std::move(name)),
      sockets_(n, 0),
      edge_index_(n * n, -1),
      bandwidth_matrix_(n * n, 0.0),
      adjacency_(n) {}

void Graph::check_vertex(VertexId v, const char* what) const {
  if (v >= num_vertices_) {
    throw std::out_of_range(std::string(what) + ": vertex out of range");
  }
}

void Graph::set_socket(VertexId v, int socket) {
  check_vertex(v, "Graph::set_socket");
  sockets_[v] = socket;
}

int Graph::socket(VertexId v) const {
  check_vertex(v, "Graph::socket");
  return sockets_[v];
}

void Graph::add_edge(VertexId u, VertexId v, interconnect::LinkType type,
                     double bandwidth_gbps) {
  check_vertex(u, "Graph::add_edge");
  check_vertex(v, "Graph::add_edge");
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (bandwidth_gbps < 0.0) {
    bandwidth_gbps = interconnect::peak_bandwidth_gbps(type);
  }

  const std::int32_t existing = edge_index_[matrix_index(u, v)];
  if (existing >= 0) {
    // Keep the highest-bandwidth label (paper §3.2).
    Edge& e = edges_[static_cast<std::size_t>(existing)];
    if (bandwidth_gbps > e.bandwidth_gbps) {
      e.type = type;
      e.bandwidth_gbps = bandwidth_gbps;
      bandwidth_matrix_[matrix_index(u, v)] = bandwidth_gbps;
      bandwidth_matrix_[matrix_index(v, u)] = bandwidth_gbps;
    }
    return;
  }

  const auto index = static_cast<std::int32_t>(edges_.size());
  edges_.push_back(Edge{std::min(u, v), std::max(u, v), type, bandwidth_gbps});
  edge_index_[matrix_index(u, v)] = index;
  edge_index_[matrix_index(v, u)] = index;
  bandwidth_matrix_[matrix_index(u, v)] = bandwidth_gbps;
  bandwidth_matrix_[matrix_index(v, u)] = bandwidth_gbps;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
}

interconnect::LinkType Graph::edge_type(VertexId u, VertexId v) const {
  const Edge* e = edge(u, v);
  return e == nullptr ? interconnect::LinkType::kNone : e->type;
}

const std::vector<VertexId>& Graph::neighbors(VertexId v) const {
  check_vertex(v, "Graph::neighbors");
  return adjacency_[v];
}

double Graph::total_bandwidth() const {
  double total = 0.0;
  for (const Edge& e : edges_) total += e.bandwidth_gbps;
  return total;
}

Graph Graph::induced_subgraph(std::span<const VertexId> vertices) const {
  // Reusable scratch mask instead of a per-call unordered_set: the Preserve
  // scorer calls this per candidate match, so the hash-set allocation was a
  // measurable share of the allocation decision.
  thread_local std::vector<std::uint8_t> seen;
  seen.assign(num_vertices_, 0);
  for (const VertexId v : vertices) {
    check_vertex(v, "Graph::induced_subgraph");
    if (seen[v] != 0) {
      throw std::invalid_argument("Graph::induced_subgraph: duplicate vertex");
    }
    seen[v] = 1;
  }
  Graph sub(vertices.size(), name_.empty() ? "" : name_ + "-sub");
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    sub.set_socket(static_cast<VertexId>(i), sockets_[vertices[i]]);
  }
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      const Edge* e = edge(vertices[i], vertices[j]);
      if (e != nullptr) {
        sub.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(j),
                     e->type, e->bandwidth_gbps);
      }
    }
  }
  return sub;
}

Graph Graph::without_vertices(std::span<const VertexId> removed,
                              std::vector<VertexId>* surviving) const {
  thread_local std::vector<std::uint8_t> gone;
  gone.assign(num_vertices_, 0);
  for (const VertexId v : removed) {
    check_vertex(v, "Graph::without_vertices");
    gone[v] = 1;
  }
  std::vector<VertexId> keep;
  keep.reserve(num_vertices_);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (!gone[v]) keep.push_back(v);
  }
  if (surviving != nullptr) *surviving = keep;
  return induced_subgraph(keep);
}

std::vector<VertexId> Graph::vertex_ids() const {
  std::vector<VertexId> ids(num_vertices_);
  for (VertexId v = 0; v < num_vertices_; ++v) ids[v] = v;
  return ids;
}

std::size_t Graph::memory_bytes() const {
  std::size_t bytes = sizeof(Graph);
  bytes += name_.capacity();
  bytes += sockets_.capacity() * sizeof(int);
  bytes += edges_.capacity() * sizeof(Edge);
  bytes += edge_index_.capacity() * sizeof(std::int32_t);
  bytes += bandwidth_matrix_.capacity() * sizeof(double);
  bytes += adjacency_.capacity() * sizeof(std::vector<VertexId>);
  for (const std::vector<VertexId>& row : adjacency_) {
    bytes += row.capacity() * sizeof(VertexId);
  }
  return bytes;
}

bool Graph::operator==(const Graph& other) const {
  if (num_vertices_ != other.num_vertices_ ||
      edges_.size() != other.edges_.size() || sockets_ != other.sockets_) {
    return false;
  }
  for (const Edge& e : edges_) {
    const Edge* o = other.edge(e.u, e.v);
    if (o == nullptr || o->type != e.type ||
        o->bandwidth_gbps != e.bandwidth_gbps) {
      return false;
    }
  }
  return true;
}

}  // namespace mapa::graph
