#include "graph/topology_handle.hpp"

#include <stdexcept>
#include <utility>

#include "graph/algorithms.hpp"

namespace mapa::graph {

TopologyHandle::TopologyHandle(Graph graph)
    : graph_(std::make_shared<const Graph>(std::move(graph))) {
  fingerprint_ = topology_fingerprint(*graph_);
}

TopologyHandle::TopologyHandle(std::shared_ptr<const Graph> graph)
    : graph_(std::move(graph)) {
  if (graph_ != nullptr) fingerprint_ = topology_fingerprint(*graph_);
}

const Graph& TopologyHandle::graph() const {
  if (graph_ == nullptr) {
    throw std::logic_error("TopologyHandle: empty handle");
  }
  return *graph_;
}

std::size_t TopologyHandle::memory_bytes() const {
  return graph_ == nullptr ? 0 : graph_->memory_bytes();
}

}  // namespace mapa::graph
