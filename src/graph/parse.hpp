#pragma once
// Text format for hardware topologies, standing in for `nvidia-smi topo -m`
// discovery on machines we cannot touch (see DESIGN.md substitutions).
//
// Format (one directive per line; '#' starts a comment):
//
//   topology <name>
//   gpus <count>
//   socket <socket-id> <gpu> [<gpu> ...]
//   link <gpu-a> <gpu-b> <type>        # type: NV1 NV2 NV2x2 NVSwitch PCIe
//   pcie_fallback                      # materialize host-routed PCIe edges
//
// Example:
//   topology mini
//   gpus 4
//   socket 0 0 1
//   socket 1 2 3
//   link 0 1 NV2x2
//   link 2 3 NV2
//   pcie_fallback

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace mapa::graph {

/// Parse a topology description; throws std::runtime_error with a
/// line-numbered message on malformed input.
Graph parse_topology(std::istream& in);
Graph parse_topology_string(const std::string& text);

/// Serialize a graph back into the topology format (round-trips through
/// parse_topology, modulo the pcie_fallback shorthand).
std::string serialize_topology(const Graph& g);

}  // namespace mapa::graph
