#pragma once
// Shared-topology handles for fleet-scale simulation. A datacenter fleet
// is built from a handful of topology archetypes (every DGX rack of the
// same shape is the same graph), yet a 10k-server fleet that gives every
// server a by-value graph::Graph copy pays the dense O(V^2) bandwidth /
// edge-index matrices 10k times over. TopologyHandle makes the archetype
// an immutable, refcounted shared object built once:
//
//   * the wrapped graph::Graph is const — mutation APIs are unreachable
//     through the handle, so any number of servers can read it from any
//     number of probe threads with no synchronization;
//   * the adjacency fingerprint (graph::adjacency_fingerprint, the same
//     hash the match cache pins its hardware state on) is computed once at
//     construction and cached, so archetype grouping — e.g. "these 1000
//     servers may share one allocation-state match cache" — is a 64-bit
//     compare instead of a graph compare;
//   * copying a handle is a refcount bump; per-server mutable state (the
//     busy mask, the allocation ledger) lives outside, in core::Mapa.
//
// The single-argument Graph constructor is deliberately implicit: every
// pre-handle call site that passed a graph::Graph by value (Mapa,
// cluster::ServerSpec) keeps compiling, it just now allocates the one
// shared archetype instead of a private copy. To actually share storage
// across servers, construct the handle once and copy it (see
// cluster::archetype_fleet_specs).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "graph/graph.hpp"

namespace mapa::graph {

/// Immutable, refcounted handle to a topology archetype.
class TopologyHandle {
 public:
  /// Empty handle; graph() throws until a graph is attached.
  TopologyHandle() = default;

  /// Adopt a graph as a new shared archetype (implicit on purpose — see
  /// the file comment).
  TopologyHandle(Graph graph);  // NOLINT(google-explicit-constructor)

  /// Wrap an existing shared graph (null = empty handle).
  explicit TopologyHandle(std::shared_ptr<const Graph> graph);

  bool empty() const { return graph_ == nullptr; }

  /// The shared archetype. Throws std::logic_error on an empty handle.
  const Graph& graph() const;

  /// Conveniences forwarded to the archetype (throw when empty).
  std::size_t num_vertices() const { return graph().num_vertices(); }
  const std::string& name() const { return graph().name(); }

  /// Archetype identity: graph::topology_fingerprint of the wrapped
  /// graph, cached at construction. Two handles with equal fingerprints
  /// have (up to 64-bit collision) identical adjacency AND link
  /// bandwidths — exactly the hardware state the match cache pins — so
  /// equal-fingerprint servers may share one cache, and a degraded fork
  /// (a GPU isolated or a link bandwidth cut; see cluster::FaultEvent)
  /// is guaranteed a fresh fingerprint. 0 for an empty handle.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// How many handles share this archetype (0 when empty).
  long use_count() const { return graph_.use_count(); }

  /// Heap footprint of the shared archetype (Graph::memory_bytes); the
  /// whole fleet pays this once per archetype, not once per server.
  std::size_t memory_bytes() const;

  /// Identity comparison (same shared object, not graph equality).
  bool same_storage(const TopologyHandle& other) const {
    return graph_ == other.graph_;
  }

 private:
  std::shared_ptr<const Graph> graph_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace mapa::graph
