#include "graph/dot.hpp"

#include <map>
#include <sstream>
#include <vector>

namespace mapa::graph {

namespace {

using interconnect::LinkType;

std::string edge_style(LinkType type) {
  switch (type) {
    case LinkType::kNvLink2Double:
      return "color=red penwidth=2";
    case LinkType::kNvLink2:
    case LinkType::kNvLink1:
      return "color=blue";
    case LinkType::kNvSwitch:
      return "color=purple";
    case LinkType::kPcie:
      return "color=gray style=dashed";
    case LinkType::kNone:
      return "color=black";
  }
  return "color=black";
}

}  // namespace

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "graph \"" << (g.name().empty() ? "graph" : g.name()) << "\" {\n";
  os << "  node [shape=box style=rounded];\n";

  std::map<int, std::vector<VertexId>> by_socket;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    by_socket[g.socket(v)].push_back(v);
  }

  if (by_socket.size() > 1) {
    for (const auto& [socket, vertices] : by_socket) {
      os << "  subgraph cluster_socket" << socket << " {\n";
      os << "    label=\"socket " << socket << "\";\n";
      for (const VertexId v : vertices) {
        os << "    g" << v << " [label=\"GPU " << v << "\"];\n";
      }
      os << "  }\n";
    }
  } else {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      os << "  g" << v << " [label=\"GPU " << v << "\"];\n";
    }
  }

  for (const Edge& e : g.edges()) {
    os << "  g" << e.u << " -- g" << e.v << " [" << edge_style(e.type);
    if (e.bandwidth_gbps > 0.0) {
      os << " label=\"" << e.bandwidth_gbps << "\"";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace mapa::graph
