#include "graph/bitrows.hpp"

namespace mapa::graph {

DynRows::DynRows(const Graph& g)
    : n_(g.num_vertices()), words_((n_ + 63) / 64) {
  rows_.assign(n_ * words_, 0);
  all_.assign(words_, 0);
  degrees_.assign(n_, 0);
  for (VertexId v = 0; v < n_; ++v) {
    all_[v >> 6] |= std::uint64_t{1} << (v & 63);
    std::uint64_t* row = rows_.data() + static_cast<std::size_t>(v) * words_;
    for (const VertexId nb : g.neighbors(v)) {
      row[nb >> 6] |= std::uint64_t{1} << (nb & 63);
    }
    degrees_[v] = static_cast<std::uint32_t>(g.degree(v));
  }
}

}  // namespace mapa::graph
