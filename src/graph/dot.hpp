#pragma once
// Graphviz export so hardware and application graphs can be inspected
// visually (the repo's examples write .dot files next to their output).

#include <string>

#include "graph/graph.hpp"

namespace mapa::graph {

/// Render `g` in Graphviz DOT. Edge color encodes the link type (double
/// NVLink bold red, single NVLink blue, PCIe dashed gray) and the label is
/// the bandwidth in GB/s; vertices are clustered by socket when the graph
/// has more than one socket.
std::string to_dot(const Graph& g);

}  // namespace mapa::graph
