#pragma once
// Compatibility alias for the pre-BitRows wide matching core. The
// word-array adjacency view that used to live here (with a 512-vertex
// ceiling) is now `graph::DynRows` (graph/bitrows.hpp), which has no
// vertex ceiling: both matcher backends run a single templated core
// instantiated for `InlineRows<1>` (<= 64 vertices) and `DynRows`
// (everything else). See docs/ARCHITECTURE.md for the dispatch table.

#include "graph/bitrows.hpp"

namespace mapa::graph {

using WideBitGraph = DynRows;

}  // namespace mapa::graph
