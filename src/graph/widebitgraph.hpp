#pragma once
// Wide bitset matching core: word-array row adjacency for hardware graphs
// beyond the 64-accelerator single-word `BitGraph` — multi-node racks
// (Summit-style nodes, DGX racks) and `mig/`-partitioned fleets flattened
// into one target graph. Each vertex row is `num_words()` consecutive
// uint64_t words, so the subgraph matchers intersect candidate domains
// with a short word loop (AND + countr_zero per word, early exit on an
// empty domain) instead of per-candidate indexed matrix lookups.
//
// Dispatch rule (see docs/ARCHITECTURE.md): targets with <= 64 vertices
// stay on the single-word `BitGraph` core (DGX-class hot paths pay zero
// extra indirection), targets with 65..kMaxVertices vertices run on this
// wide core, and anything larger falls back to the generic `Graph`-based
// inner loop (`vf2_enumerate_generic`).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mapa::graph {

/// Word-array adjacency view of a `Graph` with up to kMaxVertices
/// vertices. Construction is O(n * words + m); intended to be built per
/// enumeration (even rack-scale hardware graphs are small) or kept
/// alongside a graph.
class WideBitGraph {
 public:
  /// ~512 vertices covers every multi-node rack the ROADMAP targets (a
  /// 64-node Summit rack is 384 GPUs) while keeping rows short enough
  /// that the word loop stays in cache.
  static constexpr std::size_t kMaxVertices = 512;

  static bool fits(const Graph& g) { return g.num_vertices() <= kMaxVertices; }

  /// Throws std::invalid_argument when the graph exceeds kMaxVertices
  /// (use vf2_enumerate_generic beyond that).
  explicit WideBitGraph(const Graph& g);

  std::size_t num_vertices() const { return n_; }

  /// Words per row (and per VertexMask over this graph): ceil(n / 64).
  std::size_t num_words() const { return words_; }

  /// Neighbors of `v` as a word array of num_words() words.
  const std::uint64_t* row(VertexId v) const {
    return rows_.data() + static_cast<std::size_t>(v) * words_;
  }

  /// All vertices of the graph (the full candidate domain), num_words()
  /// words.
  const std::uint64_t* all_vertices() const { return all_.data(); }

  bool has_edge(VertexId u, VertexId v) const {
    return (row(u)[v >> 6] >> (v & 63)) & 1;
  }

  std::size_t degree(VertexId v) const { return degrees_[v]; }

 private:
  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> rows_;  // n_ * words_, row-major
  std::vector<std::uint64_t> all_;   // words_
  std::vector<std::uint16_t> degrees_;
};

}  // namespace mapa::graph
