#include "graph/topology.hpp"

#include <array>
#include <stdexcept>
#include <string>

namespace mapa::graph {

namespace {

using interconnect::LinkType;

struct NvEdge {
  VertexId u;
  VertexId v;
  LinkType type;
};

// DGX-1V hybrid cube-mesh NVLink matrix (0-based GPU ids). Every V100
// spends its 6 NVLink-v2 bricks as 2 doubles + 2 singles. See the header
// comment for the paper cross-checks this edge set satisfies.
constexpr std::array<NvEdge, 16> kDgx1V100Links = {{
    {0, 1, LinkType::kNvLink2},       {0, 2, LinkType::kNvLink2},
    {0, 3, LinkType::kNvLink2Double}, {0, 4, LinkType::kNvLink2Double},
    {1, 2, LinkType::kNvLink2Double}, {1, 3, LinkType::kNvLink2},
    {1, 5, LinkType::kNvLink2Double}, {2, 3, LinkType::kNvLink2Double},
    {2, 6, LinkType::kNvLink2},       {3, 7, LinkType::kNvLink2},
    {4, 5, LinkType::kNvLink2},       {4, 6, LinkType::kNvLink2},
    {4, 7, LinkType::kNvLink2Double}, {5, 6, LinkType::kNvLink2Double},
    {5, 7, LinkType::kNvLink2},       {6, 7, LinkType::kNvLink2Double},
}};

void finish(Graph& g, Connectivity connectivity) {
  if (connectivity == Connectivity::kPcieFallback) add_pcie_fallback(g);
}

/// `nodes` copies of the NVLink-only `node` graph with renumbered vertices
/// and sockets, ring-bridged by one double-NVLink rail per consecutive
/// node pair (see the rack-builder comment in the header).
Graph make_rack(const Graph& node, std::size_t nodes, const std::string& name,
                Connectivity connectivity) {
  if (nodes == 0) {
    throw std::invalid_argument(name + ": a rack needs at least one node");
  }
  const std::size_t size = node.num_vertices();
  Graph g(nodes * size, name + "-" + std::to_string(nodes));
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto base = static_cast<VertexId>(i * size);
    for (VertexId v = 0; v < size; ++v) {
      g.set_socket(base + v, static_cast<int>(i) * 2 + node.socket(v));
    }
    for (const Edge& e : node.edges()) {
      g.add_edge(base + e.u, base + e.v, e.type, e.bandwidth_gbps);
    }
  }
  for (std::size_t i = 0; nodes > 1 && i < nodes; ++i) {
    if (nodes == 2 && i == 1) break;  // avoid doubling the single bridge
    const std::size_t next = (i + 1) % nodes;
    g.add_edge(static_cast<VertexId>(i * size + size - 1),
               static_cast<VertexId>(next * size), LinkType::kNvLink2Double);
  }
  finish(g, connectivity);
  return g;
}

}  // namespace

void add_pcie_fallback(Graph& g) {
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
      if (!g.has_edge(u, v)) g.add_edge(u, v, LinkType::kPcie);
    }
  }
}

Graph dgx1_v100(Connectivity connectivity) {
  Graph g(8, "DGX-1-V100");
  for (VertexId v = 0; v < 8; ++v) g.set_socket(v, v < 4 ? 0 : 1);
  for (const NvEdge& e : kDgx1V100Links) g.add_edge(e.u, e.v, e.type);
  finish(g, connectivity);
  return g;
}

Graph dgx1_p100(Connectivity connectivity) {
  Graph g(8, "DGX-1-P100");
  for (VertexId v = 0; v < 8; ++v) g.set_socket(v, v < 4 ? 0 : 1);
  // Same cube-mesh wiring, but P100 has 4 NVLink-v1 bricks, all single.
  for (const NvEdge& e : kDgx1V100Links) {
    g.add_edge(e.u, e.v, LinkType::kNvLink1);
  }
  finish(g, connectivity);
  return g;
}

Graph summit_node(Connectivity connectivity) {
  Graph g(6, "Summit");
  for (VertexId v = 0; v < 6; ++v) g.set_socket(v, v < 3 ? 0 : 1);
  for (const int base : {0, 3}) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        g.add_edge(static_cast<VertexId>(base + i),
                   static_cast<VertexId>(base + j),
                   LinkType::kNvLink2Double);
      }
    }
  }
  finish(g, connectivity);
  return g;
}

Graph torus2d_16(Connectivity connectivity) {
  Graph g(16, "Torus-2d");
  const auto id = [](int row, int col) {
    return static_cast<VertexId>(((row + 4) % 4) * 4 + (col + 4) % 4);
  };
  for (int row = 0; row < 4; ++row) {
    for (int col = 0; col < 4; ++col) {
      // Quadrant (2x2 block) sockets: 4 CPUs, 4 GPUs each.
      g.set_socket(id(row, col), (row / 2) * 2 + col / 2);
      // Row rings: double NVLink. Column rings: single NVLink.
      g.add_edge(id(row, col), id(row, col + 1), LinkType::kNvLink2Double);
      g.add_edge(id(row, col), id(row + 1, col), LinkType::kNvLink2);
    }
  }
  finish(g, connectivity);
  return g;
}

Graph cubemesh_16(Connectivity connectivity) {
  Graph g(16, "Cube-mesh-16");
  for (VertexId v = 0; v < 16; ++v) g.set_socket(v, v / 4);
  // Two DGX-1V-style octets ...
  for (const NvEdge& e : kDgx1V100Links) {
    g.add_edge(e.u, e.v, e.type);
    g.add_edge(e.u + 8, e.v + 8, e.type);
  }
  // ... bridged by four irregular inter-octet links (DESIGN.md records this
  // interpretation of Fig. 17b).
  g.add_edge(0, 8, LinkType::kNvLink2Double);
  g.add_edge(3, 11, LinkType::kNvLink2);
  g.add_edge(5, 13, LinkType::kNvLink2);
  g.add_edge(6, 14, LinkType::kNvLink2Double);
  finish(g, connectivity);
  return g;
}

Graph nvswitch_16(Connectivity connectivity) {
  Graph g(16, "NVSwitch-16");
  for (VertexId v = 0; v < 16; ++v) g.set_socket(v, v < 8 ? 0 : 1);
  for (VertexId u = 0; u < 16; ++u) {
    for (VertexId v = u + 1; v < 16; ++v) {
      g.add_edge(u, v, LinkType::kNvSwitch);
    }
  }
  finish(g, connectivity);  // no-op: already fully connected
  return g;
}

Graph summit_rack(std::size_t nodes, Connectivity connectivity) {
  return make_rack(summit_node(Connectivity::kNvlinkOnly), nodes,
                   "Summit-rack", connectivity);
}

Graph dgx_rack(std::size_t nodes, Connectivity connectivity) {
  return make_rack(dgx1_v100(Connectivity::kNvlinkOnly), nodes, "DGX-rack",
                   connectivity);
}

Graph pcie_only(std::size_t n) {
  Graph g(n, "PCIe-box");
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      g.add_edge(u, v, LinkType::kPcie);
    }
  }
  return g;
}

}  // namespace mapa::graph
