#include "graph/parse.hpp"

#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/topology.hpp"

namespace mapa::graph {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  std::ostringstream os;
  os << "topology parse error at line " << line << ": " << message;
  throw std::runtime_error(os.str());
}

}  // namespace

Graph parse_topology(std::istream& in) {
  std::optional<Graph> graph;
  std::string pending_name;
  bool want_fallback = false;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string directive;
    if (!(line >> directive)) continue;  // blank line

    if (directive == "topology") {
      if (!(line >> pending_name)) fail(line_no, "expected: topology <name>");
      if (graph) graph->set_name(pending_name);
    } else if (directive == "gpus") {
      std::size_t count = 0;
      if (!(line >> count) || count == 0) {
        fail(line_no, "expected: gpus <positive count>");
      }
      if (graph) fail(line_no, "duplicate gpus directive");
      graph.emplace(count, pending_name);
    } else if (directive == "socket") {
      if (!graph) fail(line_no, "socket before gpus");
      int socket = 0;
      if (!(line >> socket)) fail(line_no, "expected: socket <id> <gpu>...");
      VertexId v = 0;
      bool any = false;
      while (line >> v) {
        if (v >= graph->num_vertices()) fail(line_no, "gpu id out of range");
        graph->set_socket(v, socket);
        any = true;
      }
      if (!any) fail(line_no, "socket directive lists no gpus");
    } else if (directive == "link") {
      if (!graph) fail(line_no, "link before gpus");
      VertexId a = 0, b = 0;
      std::string type_name;
      if (!(line >> a >> b >> type_name)) {
        fail(line_no, "expected: link <gpu-a> <gpu-b> <type>");
      }
      if (a >= graph->num_vertices() || b >= graph->num_vertices()) {
        fail(line_no, "gpu id out of range");
      }
      const auto type = interconnect::parse_link_type(type_name);
      if (!type) fail(line_no, "unknown link type '" + type_name + "'");
      if (a == b) fail(line_no, "self-link");
      graph->add_edge(a, b, *type);
    } else if (directive == "pcie_fallback") {
      if (!graph) fail(line_no, "pcie_fallback before gpus");
      want_fallback = true;
    } else {
      fail(line_no, "unknown directive '" + directive + "'");
    }
  }

  if (!graph) throw std::runtime_error("topology parse error: no gpus directive");
  if (want_fallback) add_pcie_fallback(*graph);
  return std::move(*graph);
}

Graph parse_topology_string(const std::string& text) {
  std::istringstream in(text);
  return parse_topology(in);
}

std::string serialize_topology(const Graph& g) {
  std::ostringstream os;
  if (!g.name().empty()) os << "topology " << g.name() << '\n';
  os << "gpus " << g.num_vertices() << '\n';

  // Group vertices by socket for compact socket directives.
  int max_socket = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_socket = std::max(max_socket, g.socket(v));
  }
  for (int s = 0; s <= max_socket; ++s) {
    std::vector<VertexId> members;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.socket(v) == s) members.push_back(v);
    }
    if (members.empty()) continue;
    os << "socket " << s;
    for (const VertexId v : members) os << ' ' << v;
    os << '\n';
  }

  for (const Edge& e : g.edges()) {
    os << "link " << e.u << ' ' << e.v << ' '
       << interconnect::to_string(e.type) << '\n';
  }
  return os.str();
}

}  // namespace mapa::graph
