#pragma once
// Application-pattern-graph factories (paper §3.1, Fig. 8).
//
// An application graph's vertices are the accelerators a job needs and its
// edges the pairs that communicate. NCCL builds rings or trees depending on
// transfer size, so jobs are modeled as rings, trees, or their union; other
// communication styles (star / parameter server, all-to-all) are provided
// for the examples and for stress tests.
//
// Pattern edges carry LinkType::kNone with zero bandwidth — only adjacency
// is meaningful on the application side.

#include <cstddef>
#include <optional>
#include <string>

#include "graph/graph.hpp"

namespace mapa::graph {

/// The pattern shapes understood by the job-file format.
enum class PatternKind {
  kSingle,    // 1 GPU, no communication
  kRing,      // NCCL ring
  kChain,     // open ring (tree with fan-out 1)
  kTree,      // balanced binary tree (NCCL tree algorithm)
  kStar,      // parameter-server style: rank 0 talks to everyone
  kAllToAll,  // fully connected
  kNcclMix,   // union of ring and binary tree (paper Fig. 8, right)
};

/// Build a pattern of `kind` over n vertices. n must be >= 1, and >= 2 for
/// every kind except kSingle (a 1-vertex pattern is kSingle regardless).
Graph make_pattern(PatternKind kind, std::size_t n);

Graph single_gpu();
Graph ring(std::size_t n);
Graph chain(std::size_t n);
Graph binary_tree(std::size_t n);
Graph star(std::size_t n);
Graph all_to_all(std::size_t n);
Graph nccl_mix(std::size_t n);

std::string to_string(PatternKind kind);
std::optional<PatternKind> parse_pattern_kind(const std::string& text);

}  // namespace mapa::graph
