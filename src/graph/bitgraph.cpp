#include "graph/bitgraph.hpp"

#include <bit>
#include <stdexcept>

namespace mapa::graph {

std::size_t VertexMask::count() const {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

bool VertexMask::none() const {
  for (const std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::uint64_t VertexMask::fingerprint() const {
  // splitmix64-style mix over (size, words...). Seeded away from zero so
  // an empty mask and a one-word all-clear mask fingerprint differently.
  std::uint64_t hash = 0x243f6a8885a308d3ULL;  // pi fractional bits
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
  };
  mix(size_);
  for (const std::uint64_t w : words_) mix(w);
  return hash;
}

BitGraph::BitGraph(const Graph& g) : n_(g.num_vertices()) {
  if (n_ > kMaxVertices) {
    throw std::invalid_argument(
        "BitGraph: graph exceeds 64 vertices; use graph::WideBitGraph (up "
        "to 512 vertices) or the generic matcher path beyond that");
  }
  all_ = n_ == 64 ? ~std::uint64_t{0}
                  : (std::uint64_t{1} << n_) - 1;
  for (VertexId v = 0; v < n_; ++v) {
    std::uint64_t row = 0;
    for (const VertexId nb : g.neighbors(v)) {
      row |= std::uint64_t{1} << nb;
    }
    rows_[v] = row;
    degrees_[v] = static_cast<std::uint8_t>(g.degree(v));
  }
}

}  // namespace mapa::graph
