#include "graph/bitgraph.hpp"

#include <bit>

namespace mapa::graph {

std::size_t VertexMask::count() const {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

bool VertexMask::none() const {
  for (const std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::uint64_t VertexMask::fingerprint() const {
  // splitmix64-style mix over (size, words...). Seeded away from zero so
  // an empty mask and a one-word all-clear mask fingerprint differently.
  std::uint64_t hash = 0x243f6a8885a308d3ULL;  // pi fractional bits
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
  };
  mix(size_);
  for (const std::uint64_t w : words_) mix(w);
  return hash;
}

}  // namespace mapa::graph
