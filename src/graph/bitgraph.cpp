#include "graph/bitgraph.hpp"

#include <bit>
#include <stdexcept>

namespace mapa::graph {

std::size_t VertexMask::count() const {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

bool VertexMask::none() const {
  for (const std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

BitGraph::BitGraph(const Graph& g) : n_(g.num_vertices()) {
  if (n_ > kMaxVertices) {
    throw std::invalid_argument(
        "BitGraph: graph exceeds 64 vertices; use the generic path");
  }
  all_ = n_ == 64 ? ~std::uint64_t{0}
                  : (std::uint64_t{1} << n_) - 1;
  for (VertexId v = 0; v < n_; ++v) {
    std::uint64_t row = 0;
    for (const VertexId nb : g.neighbors(v)) {
      row |= std::uint64_t{1} << nb;
    }
    rows_[v] = row;
    degrees_[v] = static_cast<std::uint8_t>(g.degree(v));
  }
}

}  // namespace mapa::graph
