#pragma once
// Labeled undirected graph shared by both sides of MAPA (paper §3.1–3.2):
//
//  * Hardware graphs — vertices are accelerators, edges are the highest-
//    bandwidth direct link between a pair (NVLink single/double or PCIe).
//    Vertices carry a socket id so socket-local policies (Topo-aware) work.
//  * Application pattern graphs — vertices are required accelerators, edges
//    mean "these two ranks communicate". Edge labels are ignored on this
//    side; only adjacency matters for pattern matching.
//
// Vertices are dense ids 0..n-1. The paper's figures use 1-based GPU
// numbers; all APIs here are 0-based (figure GPU k == vertex k-1).

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "interconnect/link.hpp"

namespace mapa::graph {

using VertexId = std::uint32_t;

/// One undirected edge with its link label and bandwidth weight.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  interconnect::LinkType type = interconnect::LinkType::kNone;
  double bandwidth_gbps = 0.0;
};

/// Simple undirected graph with labeled, weighted edges.
class Graph {
 public:
  Graph() = default;

  /// Create a graph with `n` isolated vertices, all on socket 0.
  explicit Graph(std::size_t n, std::string name = {});

  std::size_t num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return edges_.size(); }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// CPU-socket (PCIe-root) id of a vertex; used by Topo-aware allocation.
  void set_socket(VertexId v, int socket);
  int socket(VertexId v) const;

  /// Add (or upgrade) the undirected edge {u, v}.
  ///
  /// Per the paper, when multiple physical paths exist between a pair the
  /// edge carries the *highest* available bandwidth, so re-adding an edge
  /// keeps whichever label has more bandwidth. Self-loops are rejected.
  /// If `bandwidth_gbps` is negative the peak bandwidth of `type` is used.
  void add_edge(VertexId u, VertexId v, interconnect::LinkType type,
                double bandwidth_gbps = -1.0);

  /// Hot-path accessors. Vertex ids are asserted in debug builds and
  /// unchecked in release (the matchers and scorers call these millions of
  /// times per allocation decision); the mutation APIs above stay checked.
  bool has_edge(VertexId u, VertexId v) const {
    assert(u < num_vertices_ && v < num_vertices_);
    if (u == v) return false;
    return edge_index_[matrix_index(u, v)] >= 0;
  }

  /// The edge between u and v, or nullptr when not present.
  const Edge* edge(VertexId u, VertexId v) const {
    assert(u < num_vertices_ && v < num_vertices_);
    if (u == v) return nullptr;
    const std::int32_t index = edge_index_[matrix_index(u, v)];
    if (index < 0) return nullptr;
    return &edges_[static_cast<std::size_t>(index)];
  }

  /// Bandwidth of edge {u, v}; 0 when the edge does not exist. One dense
  /// matrix load — the pairwise-bandwidth matrix is maintained by
  /// add_edge so scoring pays no indirection through the edge list.
  double edge_bandwidth(VertexId u, VertexId v) const {
    assert(u < num_vertices_ && v < num_vertices_);
    return bandwidth_matrix_[matrix_index(u, v)];
  }

  interconnect::LinkType edge_type(VertexId u, VertexId v) const;

  const std::vector<VertexId>& neighbors(VertexId v) const;
  std::size_t degree(VertexId v) const { return neighbors(v).size(); }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Sum of all edge bandwidths (GB/s).
  double total_bandwidth() const;

  /// Induced subgraph on `vertices`; result vertex i corresponds to
  /// vertices[i]. Socket labels are carried over. Duplicate or out-of-range
  /// input vertices throw.
  Graph induced_subgraph(std::span<const VertexId> vertices) const;

  /// Induced subgraph on the complement of `removed` (the paper's G \ M
  /// used by Preserved Bandwidth). Also returns, via out parameter when
  /// non-null, the original id of each surviving vertex.
  Graph without_vertices(std::span<const VertexId> removed,
                         std::vector<VertexId>* surviving = nullptr) const;

  /// All vertex ids, 0..n-1 (convenience for range iteration).
  std::vector<VertexId> vertex_ids() const;

  /// Approximate heap footprint in bytes: the dense edge-index and
  /// bandwidth matrices (O(V^2), the dominant term), the edge list, the
  /// per-vertex adjacency lists, and the socket/name storage. Used by the
  /// fleet memory accounting (bench_cluster) to compare per-server graph
  /// copies against shared TopologyHandle archetypes.
  std::size_t memory_bytes() const;

  bool operator==(const Graph& other) const;

 private:
  void check_vertex(VertexId v, const char* what) const;
  std::size_t matrix_index(VertexId u, VertexId v) const {
    return static_cast<std::size_t>(u) * num_vertices_ + v;
  }

  std::size_t num_vertices_ = 0;
  std::string name_;
  std::vector<int> sockets_;
  std::vector<Edge> edges_;
  // edge_index_[u * n + v] is the index into edges_ or -1.
  std::vector<std::int32_t> edge_index_;
  // bandwidth_matrix_[u * n + v] is the edge bandwidth or 0 (dense, kept
  // in lockstep with edge_index_ by add_edge).
  std::vector<double> bandwidth_matrix_;
  std::vector<std::vector<VertexId>> adjacency_;
};

}  // namespace mapa::graph
