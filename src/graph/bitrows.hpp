#pragma once
// Row-adjacency storages for the unified bit-domain matching core.
//
// Both subgraph backends (match/vf2.cpp, match/ullmann.cpp) run one
// templated state machine over a "Rows" storage — any type providing
//
//   num_vertices()            vertex count
//   num_words()               uint64 words per adjacency row / domain
//   row(v)                    pointer to v's num_words()-word neighbor row
//   all_vertices()            pointer to the full-domain word array
//   degree(v)                 degree of v in the source Graph
//   static fits(const Graph&) does a graph fit this storage?
//
// Two instantiations cover every target size:
//
//  * InlineRows<W>: W words per row, storage inline in the object, at most
//    64 * W vertices. num_words() is static constexpr, so when a matcher
//    core is instantiated for InlineRows<1> the compiler unrolls every
//    word loop to the single-uint64 ops the <= 64-vertex hot path has
//    always compiled to — DGX-class machines pay zero indirection.
//  * DynRows: heap word-array rows with no vertex ceiling. Racks, rack
//    rows, and anything larger (the old 512-vertex WideBitGraph limit is
//    gone) run here; the generic Graph-based loop survives only as the
//    differential-test baseline, not as a dispatch target.
//
// `BitGraph` (graph/bitgraph.hpp) remains as a thin single-word adapter
// over InlineRows<1> for code that wants uint64_t masks directly. (The
// old `WideBitGraph` alias header is retired; use DynRows.)

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace mapa::graph {

/// Fixed-width inline row storage: W words per row, <= 64 * W vertices,
/// no heap allocation. Construction is O(n * W + m).
template <std::size_t W>
class InlineRows {
 public:
  static constexpr std::size_t kWords = W;
  static constexpr std::size_t kMaxVertices = 64 * W;

  static bool fits(const Graph& g) { return g.num_vertices() <= kMaxVertices; }

  /// Throws std::invalid_argument when the graph exceeds kMaxVertices
  /// (build a DynRows instead — it has no ceiling).
  explicit InlineRows(const Graph& g) : n_(g.num_vertices()) {
    if (n_ > kMaxVertices) {
      throw std::invalid_argument(
          "InlineRows: graph exceeds " + std::to_string(kMaxVertices) +
          " vertices; use graph::DynRows (heap word-array rows, no ceiling)");
    }
    for (VertexId v = 0; v < n_; ++v) {
      all_[v >> 6] |= std::uint64_t{1} << (v & 63);
      for (const VertexId nb : g.neighbors(v)) {
        rows_[v][nb >> 6] |= std::uint64_t{1} << (nb & 63);
      }
      degrees_[v] = static_cast<std::uint16_t>(g.degree(v));
    }
  }

  std::size_t num_vertices() const { return n_; }
  static constexpr std::size_t num_words() { return W; }

  /// Neighbors of `v` as a W-word array.
  const std::uint64_t* row(VertexId v) const { return rows_[v]; }

  /// All vertices of the graph (the full candidate domain), W words.
  const std::uint64_t* all_vertices() const { return all_; }

  bool has_edge(VertexId u, VertexId v) const {
    return (rows_[u][v >> 6] >> (v & 63)) & 1;
  }

  std::size_t degree(VertexId v) const { return degrees_[v]; }

 private:
  std::size_t n_ = 0;
  std::uint64_t all_[W] = {};
  std::uint64_t rows_[kMaxVertices][W] = {};
  std::uint16_t degrees_[kMaxVertices] = {};
};

/// Heap word-array row storage with no vertex ceiling. Each row is
/// num_words() consecutive uint64_t words; construction is
/// O(n * words + m). Intended to be built per enumeration (even
/// rack-scale hardware graphs are small) or kept alongside a graph.
class DynRows {
 public:
  static bool fits(const Graph&) { return true; }

  explicit DynRows(const Graph& g);

  std::size_t num_vertices() const { return n_; }

  /// Words per row (and per VertexMask over this graph): ceil(n / 64).
  std::size_t num_words() const { return words_; }

  /// Neighbors of `v` as a word array of num_words() words.
  const std::uint64_t* row(VertexId v) const {
    return rows_.data() + static_cast<std::size_t>(v) * words_;
  }

  /// All vertices of the graph (the full candidate domain), num_words()
  /// words.
  const std::uint64_t* all_vertices() const { return all_.data(); }

  bool has_edge(VertexId u, VertexId v) const {
    return (row(u)[v >> 6] >> (v & 63)) & 1;
  }

  std::size_t degree(VertexId v) const { return degrees_[v]; }

 private:
  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> rows_;  // n_ * words_, row-major
  std::vector<std::uint64_t> all_;   // words_
  std::vector<std::uint32_t> degrees_;
};

}  // namespace mapa::graph
