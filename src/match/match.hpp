#pragma once
// Common types for the subgraph-isomorphism backends.
//
// A Match assigns each application-pattern vertex an accelerator of the
// hardware graph (paper §3.3): `mapping[p]` is the hardware vertex that
// pattern vertex p runs on. A match is valid when the mapping is injective
// and every pattern edge lands on a hardware edge.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace mapa::match {

/// Pattern-vertex -> hardware-vertex assignment.
struct Match {
  std::vector<graph::VertexId> mapping;

  /// Hardware vertices used, sorted ascending (the allocation's GPU set).
  std::vector<graph::VertexId> sorted_vertices() const;

  /// Hardware edges actually used by the pattern (E(P) mapped through the
  /// match), as sorted (u, v) pairs with u < v. Two matches are the same
  /// allocation in the paper's sense iff this set and the vertex set agree;
  /// automorphic matches collapse onto the same key.
  std::vector<std::pair<graph::VertexId, graph::VertexId>> used_edges(
      const graph::Graph& pattern) const;

  bool operator==(const Match& other) const = default;
};

/// Callback receiving each discovered match. Return false to stop the
/// enumeration early (used for existence queries and match caps).
using MatchVisitor = std::function<bool(const Match&)>;

}  // namespace mapa::match
