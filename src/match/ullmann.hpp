#pragma once
// Ullmann's subgraph-isomorphism algorithm (1976) with bit-vector candidate
// domains and the classic refinement step. Kept as a second, independent
// backend: the test suite cross-checks VF2 and Ullmann against each other
// on every pattern/topology combination, which guards the matcher MAPA's
// correctness rests on. Pattern and target adjacency are bitset word rows
// (single-word BitGraph up to 64 target vertices, word-array WideBitGraph
// up to 512 — multi-node racks), so refinement and the forward-checking
// loop are pure bitwise ops; targets above 512 vertices are rejected (use
// the VF2 generic path, vf2_enumerate_generic).

#include <cstddef>
#include <vector>

#include "graph/bitgraph.hpp"
#include "match/match.hpp"
#include "match/vf2.hpp"  // OrderingConstraints

namespace mapa::match {

/// Enumerate all matches of `pattern` in `target` (non-induced, labels
/// ignored), honoring the same ordering-constraint semantics as VF2.
void ullmann_enumerate(const graph::Graph& pattern,
                       const graph::Graph& target, const MatchVisitor& visit,
                       const OrderingConstraints& constraints = {},
                       const graph::VertexMask* forbidden = nullptr);

/// Number of matches, counted at the leaves without materializing a Match.
std::size_t ullmann_count(const graph::Graph& pattern,
                          const graph::Graph& target,
                          const OrderingConstraints& constraints = {},
                          const graph::VertexMask* forbidden = nullptr);

std::vector<Match> ullmann_all(const graph::Graph& pattern,
                               const graph::Graph& target,
                               const OrderingConstraints& constraints = {},
                               std::size_t limit = 0);

}  // namespace mapa::match
