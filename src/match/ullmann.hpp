#pragma once
// Ullmann's subgraph-isomorphism algorithm (1976) with bit-vector candidate
// domains and the classic refinement step. Kept as a second, independent
// backend: the test suite cross-checks VF2 and Ullmann against each other
// on every pattern/topology combination, which guards the matcher MAPA's
// correctness rests on. One templated core (UllmannCore<Rows> in
// ullmann.cpp, over the graph::BitRows storages of graph/bitrows.hpp)
// serves every target size: InlineRows<1> up to 64 target vertices — the
// machines the paper evaluates — and DynRows beyond, with no vertex
// ceiling. Refinement and the forward-checking loop are pure bitwise ops
// on both instantiations, and the root-range hook gives Ullmann the same
// root-split parallelism as VF2.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/bitgraph.hpp"
#include "match/match.hpp"
#include "match/vf2.hpp"  // OrderingConstraints

namespace mapa::match {

/// Enumerate all matches of `pattern` in `target` (non-induced, labels
/// ignored), honoring the same ordering-constraint semantics as VF2.
/// `root_begin`, when >= 0, restricts pattern vertex 0 (the first placed)
/// to the target range [root_begin, root_end) — `root_end == -1` means
/// the single root root_begin + 1. Disjoint ranges partition the match
/// set without overlap; this is the root-split hook the parallel
/// enumerator uses, handing each worker a contiguous range so per-search
/// setup is amortized across the range instead of paid per root.
void ullmann_enumerate(const graph::Graph& pattern,
                       const graph::Graph& target, const MatchVisitor& visit,
                       const OrderingConstraints& constraints = {},
                       const graph::VertexMask* forbidden = nullptr,
                       std::int64_t root_begin = -1,
                       std::int64_t root_end = -1);

/// Number of matches, counted at the leaves without materializing a Match.
std::size_t ullmann_count(const graph::Graph& pattern,
                          const graph::Graph& target,
                          const OrderingConstraints& constraints = {},
                          const graph::VertexMask* forbidden = nullptr,
                          std::int64_t root_begin = -1,
                          std::int64_t root_end = -1);

std::vector<Match> ullmann_all(const graph::Graph& pattern,
                               const graph::Graph& target,
                               const OrderingConstraints& constraints = {},
                               std::size_t limit = 0);

}  // namespace mapa::match
