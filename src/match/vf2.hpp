#pragma once
// VF2-style subgraph-isomorphism backend (Cordella et al., the algorithm
// the paper cites for its matching stage).
//
// Finds all injective mappings of the pattern into the target that take
// pattern edges to target edges (non-induced matching — the target may
// have extra edges among matched vertices, which is the common case here
// because hardware graphs are fully connected under the PCIe-fallback
// convention). Edge labels are ignored, per the paper's definition.
//
// Three inner loops share one search plan:
//  * the bitset core (targets <= 64 vertices, every machine in the paper):
//    candidate domains are uint64_t masks intersected against BitGraph
//    adjacency rows, so the per-node cost is a handful of bitwise ops;
//  * the wide bitset core (65..512 vertices — multi-node racks): the same
//    search over word-array domains ANDed against WideBitGraph rows, with
//    early exit on empty domains (see graph/widebitgraph.hpp);
//  * the generic loop (the seed inner loop): Graph::has_edge adjacency
//    tests, kept as the differential-test reference, the perf baseline
//    `bench_matcher`/`bench_widegraph` measure against, and the fallback
//    for targets beyond 512 vertices.

#include <cstddef>
#include <vector>

#include "graph/bitgraph.hpp"
#include "match/match.hpp"

namespace mapa::match {

/// Ordering constraints for symmetry breaking: each pair (a, b) requires
/// mapping[a] < mapping[b]. Produced by `symmetry_constraints()` in the
/// enumerator; an empty list means "emit every raw match".
using OrderingConstraints =
    std::vector<std::pair<graph::VertexId, graph::VertexId>>;

/// Enumerate matches of `pattern` in `target`, invoking `visit` for each.
/// Stops early when `visit` returns false. Dispatches to the bitset core
/// when the target fits in 64 vertices, to the wide (word-array) core up
/// to 512 vertices, and to the generic loop beyond that; all three
/// produce matches in the same order.
///
/// `constraints` prunes matches violating mapping[a] < mapping[b]; this is
/// how automorphic duplicates are suppressed without post-filtering.
/// `forbidden`, when non-null, marks target vertices that must not be used
/// (busy accelerators during incremental scheduling).
/// `root_target`, when >= 0, restricts the first-placed pattern vertex to
/// that single target vertex — the hook the parallel enumerator uses to
/// partition the search space across threads without overlap.
void vf2_enumerate(const graph::Graph& pattern, const graph::Graph& target,
                   const MatchVisitor& visit,
                   const OrderingConstraints& constraints = {},
                   const graph::VertexMask* forbidden = nullptr,
                   std::int64_t root_target = -1);

/// The generic (seed) inner loop, regardless of target size. Reference
/// implementation for the differential test suite and the baseline the
/// `bench_matcher` / `bench_widegraph` drivers measure the bitset cores
/// against; `vf2_enumerate` uses it automatically above 512 vertices.
void vf2_enumerate_generic(const graph::Graph& pattern,
                           const graph::Graph& target,
                           const MatchVisitor& visit,
                           const OrderingConstraints& constraints = {},
                           const graph::VertexMask* forbidden = nullptr,
                           std::int64_t root_target = -1);

/// Number of matches, without materializing a Match per result (the bitset
/// core counts leaves directly; no per-match vector copy or callback).
std::size_t vf2_count(const graph::Graph& pattern, const graph::Graph& target,
                      const OrderingConstraints& constraints = {},
                      const graph::VertexMask* forbidden = nullptr,
                      std::int64_t root_target = -1);

/// Convenience: collect up to `limit` matches (0 = unlimited).
std::vector<Match> vf2_all(const graph::Graph& pattern,
                           const graph::Graph& target,
                           const OrderingConstraints& constraints = {},
                           std::size_t limit = 0);

}  // namespace mapa::match
