#pragma once
// VF2-style subgraph-isomorphism backend (Cordella et al., the algorithm
// the paper cites for its matching stage).
//
// Finds all injective mappings of the pattern into the target that take
// pattern edges to target edges (non-induced matching — the target may
// have extra edges among matched vertices, which is the common case here
// because hardware graphs are fully connected under the PCIe-fallback
// convention). Edge labels are ignored, per the paper's definition.
//
// One templated state machine (Vf2Core<Rows> in vf2.cpp) runs the search
// over any graph::BitRows storage (graph/bitrows.hpp) and is instantiated
// twice:
//  * InlineRows<1> (targets <= 64 vertices, every machine in the paper):
//    the storage's word count is constexpr 1, so candidate-domain loops
//    fold to single-uint64 bitwise ops;
//  * DynRows (any larger target — racks, rack rows, whole pods; there is
//    no vertex ceiling): the same search over heap word-array domains,
//    with early exit on empty domains.
// A degree-census fast-out (match/rows_common.hpp) rejects provably
// zero-match patterns before any row adjacency is built. The generic loop
// (the seed inner loop, Graph::has_edge tests) survives only as the
// differential-test reference and the perf baseline `bench_matcher` /
// `bench_widegraph` / `bench_bitrows` measure against — no dispatch path
// selects it.

#include <cstddef>
#include <vector>

#include "graph/bitgraph.hpp"
#include "match/match.hpp"

namespace mapa::match {

/// Ordering constraints for symmetry breaking: each pair (a, b) requires
/// mapping[a] < mapping[b]. Produced by `symmetry_constraints()` in the
/// enumerator; an empty list means "emit every raw match".
using OrderingConstraints =
    std::vector<std::pair<graph::VertexId, graph::VertexId>>;

/// Enumerate matches of `pattern` in `target`, invoking `visit` for each.
/// Stops early when `visit` returns false. Dispatches to the bit-domain
/// core on InlineRows<1> when the target fits in 64 vertices and on
/// DynRows for anything larger; both instantiations (and the generic
/// baseline) produce matches in the same order.
///
/// `constraints` prunes matches violating mapping[a] < mapping[b]; this is
/// how automorphic duplicates are suppressed without post-filtering.
/// `forbidden`, when non-null, marks target vertices that must not be used
/// (busy accelerators during incremental scheduling).
/// `root_begin`, when >= 0, restricts the first-placed pattern vertex to
/// the target range [root_begin, root_end) — `root_end == -1` means the
/// single root root_begin + 1. Disjoint ranges partition the match set
/// without overlap; this is the root-split hook the parallel enumerator
/// uses, handing each worker a contiguous range so per-search setup is
/// amortized across the range instead of paid per root.
void vf2_enumerate(const graph::Graph& pattern, const graph::Graph& target,
                   const MatchVisitor& visit,
                   const OrderingConstraints& constraints = {},
                   const graph::VertexMask* forbidden = nullptr,
                   std::int64_t root_begin = -1, std::int64_t root_end = -1);

/// The generic (seed) inner loop, regardless of target size. Reference
/// implementation for the differential test suite and the baseline the
/// `bench_matcher` / `bench_widegraph` / `bench_bitrows` drivers measure
/// the bit-domain core against. Never selected by dispatch.
void vf2_enumerate_generic(const graph::Graph& pattern,
                           const graph::Graph& target,
                           const MatchVisitor& visit,
                           const OrderingConstraints& constraints = {},
                           const graph::VertexMask* forbidden = nullptr,
                           std::int64_t root_begin = -1,
                           std::int64_t root_end = -1);

/// Number of matches, without materializing a Match per result (the bitset
/// core counts leaves directly; no per-match vector copy or callback).
std::size_t vf2_count(const graph::Graph& pattern, const graph::Graph& target,
                      const OrderingConstraints& constraints = {},
                      const graph::VertexMask* forbidden = nullptr,
                      std::int64_t root_begin = -1,
                      std::int64_t root_end = -1);

/// Convenience: collect up to `limit` matches (0 = unlimited).
std::vector<Match> vf2_all(const graph::Graph& pattern,
                           const graph::Graph& target,
                           const OrderingConstraints& constraints = {},
                           std::size_t limit = 0);

}  // namespace mapa::match
