#include "match/enumerator.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>

#include "graph/algorithms.hpp"
#include "util/thread_pool.hpp"

namespace mapa::match {

namespace {

using graph::Graph;
using graph::VertexId;

const graph::VertexMask* forbidden_or_null(const EnumerateOptions& options) {
  return options.forbidden.empty() ? nullptr : &options.forbidden;
}

void enumerate_sequential(const Graph& pattern, const Graph& target,
                          const MatchVisitor& visit,
                          const OrderingConstraints& constraints,
                          const EnumerateOptions& options) {
  switch (options.backend) {
    case Backend::kVf2:
      vf2_enumerate(pattern, target, visit, constraints,
                    forbidden_or_null(options));
      return;
    case Backend::kUllmann:
      ullmann_enumerate(pattern, target, visit, constraints,
                        forbidden_or_null(options));
      return;
  }
  throw std::invalid_argument("enumerate: unknown backend");
}

/// Run one VF2 search per target root vertex across a pool, calling
/// `per_root` with (root, visitor-compatible lambda). Each root's search is
/// independent, so no two threads ever produce the same match.
void enumerate_parallel_roots(
    const Graph& pattern, const Graph& target,
    const OrderingConstraints& constraints, const EnumerateOptions& options,
    const std::function<bool(std::size_t root, const Match&)>& emit) {
  util::ThreadPool pool(options.threads);
  std::atomic<bool> stop{false};
  pool.parallel_for(target.num_vertices(), [&](std::size_t root) {
    if (stop.load(std::memory_order_relaxed)) return;
    vf2_enumerate(
        pattern, target,
        [&](const Match& m) {
          if (!emit(root, m)) {
            stop.store(true, std::memory_order_relaxed);
            return false;
          }
          return !stop.load(std::memory_order_relaxed);
        },
        constraints, forbidden_or_null(options),
        static_cast<std::int64_t>(root));
  });
}

}  // namespace

OrderingConstraints symmetry_constraints(const Graph& pattern) {
  OrderingConstraints constraints;
  auto group = graph::automorphisms(pattern);
  if (group.size() <= 1) return constraints;

  // Walk the stabilizer chain: at each vertex v (ascending), make v the
  // least-mapped member of its orbit, then keep only permutations fixing v.
  for (VertexId v = 0; v < pattern.num_vertices() && group.size() > 1; ++v) {
    std::set<VertexId> orbit;
    for (const auto& sigma : group) orbit.insert(sigma[v]);
    if (orbit.size() > 1) {
      for (const VertexId u : orbit) {
        if (u != v) constraints.emplace_back(v, u);  // mapping[v] < mapping[u]
      }
    }
    std::vector<std::vector<VertexId>> stabilizer;
    for (auto& sigma : group) {
      if (sigma[v] == v) stabilizer.push_back(std::move(sigma));
    }
    group = std::move(stabilizer);
  }
  return constraints;
}

std::size_t count_matches(const Graph& pattern, const Graph& target,
                          const EnumerateOptions& options) {
  const OrderingConstraints constraints =
      options.break_symmetry ? symmetry_constraints(pattern)
                             : OrderingConstraints{};
  if (options.threads <= 1) {
    // Leaf-counting paths: no Match materialization, no visitor call.
    switch (options.backend) {
      case Backend::kVf2:
        return vf2_count(pattern, target, constraints,
                         forbidden_or_null(options));
      case Backend::kUllmann:
        return ullmann_count(pattern, target, constraints,
                             forbidden_or_null(options));
    }
    throw std::invalid_argument("count_matches: unknown backend");
  }
  // Parallel: one leaf-counting VF2 search per root vertex.
  if (pattern.num_vertices() == 0 ||
      pattern.num_vertices() > target.num_vertices()) {
    return 0;
  }
  util::ThreadPool pool(options.threads);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(target.num_vertices(), [&](std::size_t root) {
    count.fetch_add(vf2_count(pattern, target, constraints,
                              forbidden_or_null(options),
                              static_cast<std::int64_t>(root)),
                    std::memory_order_relaxed);
  });
  return count.load();
}

std::vector<Match> find_matches(const Graph& pattern, const Graph& target,
                                const EnumerateOptions& options,
                                std::size_t limit) {
  const OrderingConstraints constraints =
      options.break_symmetry ? symmetry_constraints(pattern)
                             : OrderingConstraints{};
  std::vector<Match> matches;
  if (options.threads <= 1) {
    enumerate_sequential(
        pattern, target,
        [&](const Match& m) {
          matches.push_back(m);
          return limit == 0 || matches.size() < limit;
        },
        constraints, options);
    return matches;
  }

  std::mutex mutex;
  enumerate_parallel_roots(pattern, target, constraints, options,
                           [&](std::size_t, const Match& m) {
                             const std::lock_guard<std::mutex> lock(mutex);
                             matches.push_back(m);
                             return limit == 0 || matches.size() < limit;
                           });
  // Parallel arrival order is nondeterministic; normalize. (With a limit
  // the *set* may legitimately differ between runs, but stays valid.)
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.mapping < b.mapping; });
  return matches;
}

void for_each_match(const Graph& pattern, const Graph& target,
                    const MatchVisitor& visit,
                    const EnumerateOptions& options) {
  const OrderingConstraints constraints =
      options.break_symmetry ? symmetry_constraints(pattern)
                             : OrderingConstraints{};
  enumerate_sequential(pattern, target, visit, constraints, options);
}

std::optional<Match> best_match(
    const Graph& pattern, const Graph& target,
    const std::function<double(const Match&)>& scorer,
    const EnumerateOptions& options) {
  const OrderingConstraints constraints =
      options.break_symmetry ? symmetry_constraints(pattern)
                             : OrderingConstraints{};

  struct Best {
    bool valid = false;
    double score = 0.0;
    Match match;
    void consider(double s, const Match& m) {
      if (!valid || s > score ||
          (s == score && m.mapping < match.mapping)) {
        valid = true;
        score = s;
        match = m;
      }
    }
    void merge(const Best& other) {
      if (other.valid) consider(other.score, other.match);
    }
  };

  if (options.threads <= 1) {
    Best best;
    enumerate_sequential(
        pattern, target,
        [&](const Match& m) {
          best.consider(scorer(m), m);
          return true;
        },
        constraints, options);
    if (!best.valid) return std::nullopt;
    return best.match;
  }

  std::vector<Best> per_root(target.num_vertices());
  enumerate_parallel_roots(pattern, target, constraints, options,
                           [&](std::size_t root, const Match& m) {
                             per_root[root].consider(scorer(m), m);
                             return true;
                           });
  Best best;
  for (const Best& b : per_root) best.merge(b);
  if (!best.valid) return std::nullopt;
  return best.match;
}

}  // namespace mapa::match
