#include "match/enumerator.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>

#include "graph/algorithms.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace mapa::match {

namespace {

using graph::Graph;
using graph::VertexId;

const graph::VertexMask* forbidden_or_null(const EnumerateOptions& options) {
  return options.forbidden.empty() ? nullptr : &options.forbidden;
}

void enumerate_sequential(const Graph& pattern, const Graph& target,
                          const MatchVisitor& visit,
                          const OrderingConstraints& constraints,
                          const EnumerateOptions& options) {
  switch (options.backend) {
    case Backend::kVf2:
      vf2_enumerate(pattern, target, visit, constraints,
                    forbidden_or_null(options));
      return;
    case Backend::kUllmann:
      ullmann_enumerate(pattern, target, visit, constraints,
                        forbidden_or_null(options));
      return;
  }
  throw std::invalid_argument("enumerate: unknown backend");
}

/// Contiguous root ranges for a parallel split: several chunks per worker
/// for load balance, but far fewer than one per root — each range pays
/// the per-search setup (degree screen, row construction, domains) once
/// for the whole range, which is what makes the split profitable on
/// rack-scale targets where setup is proportional to target size. Ranges
/// are claimed off a shared counter (ThreadPool::dynamic_for), not
/// pre-assigned, so a worker stuck in one dense range never strands the
/// rest of a static chunk assignment behind it — that is what lets the
/// chunk count run higher than the old static 4-per-worker split without
/// the skew penalty.
std::size_t split_chunks(std::size_t vertices, std::size_t threads) {
  return std::min(vertices, threads * 8);
}

/// One root-range search of the selected backend: the candidate set of
/// the first-placed pattern vertex is restricted to [begin, end), so
/// disjoint ranges partition the match set without overlap on every
/// backend.
void enumerate_root_range(const Graph& pattern, const Graph& target,
                          const MatchVisitor& visit,
                          const OrderingConstraints& constraints,
                          const EnumerateOptions& options, std::size_t begin,
                          std::size_t end) {
  switch (options.backend) {
    case Backend::kVf2:
      vf2_enumerate(pattern, target, visit, constraints,
                    forbidden_or_null(options),
                    static_cast<std::int64_t>(begin),
                    static_cast<std::int64_t>(end));
      return;
    case Backend::kUllmann:
      ullmann_enumerate(pattern, target, visit, constraints,
                        forbidden_or_null(options),
                        static_cast<std::int64_t>(begin),
                        static_cast<std::int64_t>(end));
      return;
  }
  throw std::invalid_argument("enumerate: unknown backend");
}

/// Run one search of the selected backend per contiguous root range
/// across a pool, calling `emit` with (chunk, match). Each range's search
/// is independent, so no two threads ever produce the same match.
void enumerate_parallel_roots(
    const Graph& pattern, const Graph& target,
    const OrderingConstraints& constraints, const EnumerateOptions& options,
    const std::function<bool(std::size_t chunk, const Match&)>& emit) {
  util::ThreadPool pool(options.threads);
  const std::size_t vertices = target.num_vertices();
  const std::size_t chunks = split_chunks(vertices, options.threads);
  std::atomic<bool> stop{false};
  pool.dynamic_for(chunks, [&](std::size_t chunk) {
    if (stop.load(std::memory_order_relaxed)) return;
    enumerate_root_range(
        pattern, target,
        [&](const Match& m) {
          if (!emit(chunk, m)) {
            stop.store(true, std::memory_order_relaxed);
            return false;
          }
          return !stop.load(std::memory_order_relaxed);
        },
        constraints, options, chunk * vertices / chunks,
        (chunk + 1) * vertices / chunks);
  });
}

}  // namespace

OrderingConstraints symmetry_constraints(const Graph& pattern) {
  OrderingConstraints constraints;
  auto group = graph::automorphisms(pattern);
  if (group.size() <= 1) return constraints;

  // Walk the stabilizer chain: at each vertex v (ascending), make v the
  // least-mapped member of its orbit, then keep only permutations fixing v.
  for (VertexId v = 0; v < pattern.num_vertices() && group.size() > 1; ++v) {
    std::set<VertexId> orbit;
    for (const auto& sigma : group) orbit.insert(sigma[v]);
    if (orbit.size() > 1) {
      for (const VertexId u : orbit) {
        if (u != v) constraints.emplace_back(v, u);  // mapping[v] < mapping[u]
      }
    }
    std::vector<std::vector<VertexId>> stabilizer;
    for (auto& sigma : group) {
      if (sigma[v] == v) stabilizer.push_back(std::move(sigma));
    }
    group = std::move(stabilizer);
  }
  return constraints;
}

std::size_t count_matches(const Graph& pattern, const Graph& target,
                          const EnumerateOptions& options) {
  obs::Span span(options.trace, "match", "count_matches");
  span.arg("pattern_vertices", pattern.num_vertices());
  span.arg("target_vertices", target.num_vertices());
  const OrderingConstraints constraints =
      options.break_symmetry ? symmetry_constraints(pattern)
                             : OrderingConstraints{};
  if (options.threads <= 1) {
    // Leaf-counting paths: no Match materialization, no visitor call.
    switch (options.backend) {
      case Backend::kVf2:
        return vf2_count(pattern, target, constraints,
                         forbidden_or_null(options));
      case Backend::kUllmann:
        return ullmann_count(pattern, target, constraints,
                             forbidden_or_null(options));
    }
    throw std::invalid_argument("count_matches: unknown backend");
  }
  // Parallel: one leaf-counting search of the selected backend per
  // contiguous root range.
  if (options.backend != Backend::kVf2 &&
      options.backend != Backend::kUllmann) {
    throw std::invalid_argument("count_matches: unknown backend");
  }
  if (pattern.num_vertices() == 0 ||
      pattern.num_vertices() > target.num_vertices()) {
    return 0;
  }
  util::ThreadPool pool(options.threads);
  const std::size_t vertices = target.num_vertices();
  const std::size_t chunks = split_chunks(vertices, options.threads);
  std::atomic<std::size_t> count{0};
  pool.dynamic_for(chunks, [&](std::size_t chunk) {
    const auto begin = static_cast<std::int64_t>(chunk * vertices / chunks);
    const auto end =
        static_cast<std::int64_t>((chunk + 1) * vertices / chunks);
    std::size_t rooted = 0;
    switch (options.backend) {
      case Backend::kVf2:
        rooted = vf2_count(pattern, target, constraints,
                           forbidden_or_null(options), begin, end);
        break;
      case Backend::kUllmann:
        rooted = ullmann_count(pattern, target, constraints,
                               forbidden_or_null(options), begin, end);
        break;
    }
    count.fetch_add(rooted, std::memory_order_relaxed);
  });
  return count.load();
}

std::vector<Match> find_matches(const Graph& pattern, const Graph& target,
                                const EnumerateOptions& options,
                                std::size_t limit) {
  obs::Span span(options.trace, "match", "find_matches");
  span.arg("pattern_vertices", pattern.num_vertices());
  span.arg("target_vertices", target.num_vertices());
  const OrderingConstraints constraints =
      options.break_symmetry ? symmetry_constraints(pattern)
                             : OrderingConstraints{};
  std::vector<Match> matches;
  if (options.threads <= 1) {
    enumerate_sequential(
        pattern, target,
        [&](const Match& m) {
          matches.push_back(m);
          return limit == 0 || matches.size() < limit;
        },
        constraints, options);
    return matches;
  }

  std::mutex mutex;
  enumerate_parallel_roots(pattern, target, constraints, options,
                           [&](std::size_t, const Match& m) {
                             const std::lock_guard<std::mutex> lock(mutex);
                             matches.push_back(m);
                             return limit == 0 || matches.size() < limit;
                           });
  // Parallel arrival order is nondeterministic; normalize. (With a limit
  // the *set* may legitimately differ between runs, but stays valid.)
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) { return a.mapping < b.mapping; });
  // Workers already mid-emit when another chunk hits the limit can each
  // slip one extra match in; enforce the contract after normalizing.
  if (limit != 0 && matches.size() > limit) matches.resize(limit);
  return matches;
}

void for_each_match(const Graph& pattern, const Graph& target,
                    const MatchVisitor& visit,
                    const EnumerateOptions& options) {
  obs::Span span(options.trace, "match", "enumerate");
  span.arg("pattern_vertices", pattern.num_vertices());
  span.arg("target_vertices", target.num_vertices());
  const OrderingConstraints constraints =
      options.break_symmetry ? symmetry_constraints(pattern)
                             : OrderingConstraints{};
  enumerate_sequential(pattern, target, visit, constraints, options);
}

std::optional<Match> best_match(
    const Graph& pattern, const Graph& target,
    const std::function<double(const Match&)>& scorer,
    const EnumerateOptions& options) {
  obs::Span span(options.trace, "match", "best_match");
  span.arg("pattern_vertices", pattern.num_vertices());
  span.arg("target_vertices", target.num_vertices());
  const OrderingConstraints constraints =
      options.break_symmetry ? symmetry_constraints(pattern)
                             : OrderingConstraints{};

  struct Best {
    bool valid = false;
    double score = 0.0;
    Match match;
    void consider(double s, const Match& m) {
      if (!valid || s > score ||
          (s == score && m.mapping < match.mapping)) {
        valid = true;
        score = s;
        match = m;
      }
    }
    void merge(const Best& other) {
      if (other.valid) consider(other.score, other.match);
    }
  };

  if (options.threads <= 1) {
    Best best;
    enumerate_sequential(
        pattern, target,
        [&](const Match& m) {
          best.consider(scorer(m), m);
          return true;
        },
        constraints, options);
    if (!best.valid) return std::nullopt;
    return best.match;
  }

  std::vector<Best> per_chunk(
      split_chunks(target.num_vertices(), options.threads));
  enumerate_parallel_roots(pattern, target, constraints, options,
                           [&](std::size_t chunk, const Match& m) {
                             per_chunk[chunk].consider(scorer(m), m);
                             return true;
                           });
  Best best;
  for (const Best& b : per_chunk) best.merge(b);
  if (!best.valid) return std::nullopt;
  return best.match;
}

}  // namespace mapa::match
