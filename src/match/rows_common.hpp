#pragma once
// Internal helpers shared by the unified bit-domain matcher cores
// (Vf2Core<Rows> in match/vf2.cpp, UllmannCore<Rows> in match/ullmann.cpp).
// Everything here is generic over a graph::BitRows storage — InlineRows<W>
// or DynRows (graph/bitrows.hpp) — so each backend is written once and
// instantiated per storage.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/bitgraph.hpp"
#include "graph/graph.hpp"

namespace mapa::match::rows {

/// Word count of a Rows storage, a compile-time constant when the storage
/// fixes it (InlineRows): the matcher cores call this in their inner
/// loops, so for InlineRows<1> every word loop folds to the single-uint64
/// ops the <= 64-vertex hot path has always compiled to.
template <typename Rows>
inline std::size_t word_count(const Rows& rows) {
  if constexpr (requires { Rows::kWords; }) {
    return Rows::kWords;
  } else {
    return rows.num_words();
  }
}

/// Initial candidate domains, pattern-vertex-major with one
/// word_count(target)-word span per pattern vertex: unforbidden target
/// vertices of at least the pattern vertex's degree. `PatternLike` only
/// needs num_vertices()/degree() (a Graph or any Rows storage works).
template <typename PatternLike, typename Rows>
std::vector<std::uint64_t> degree_domains(const PatternLike& pattern,
                                          const Rows& target,
                                          const graph::VertexMask* forbidden) {
  const std::size_t words = word_count(target);
  std::vector<std::uint64_t> allowed(target.all_vertices(),
                                     target.all_vertices() + words);
  if (forbidden != nullptr) {
    for (std::size_t w = 0; w < words; ++w) {
      allowed[w] &= ~forbidden->word(w);
    }
  }
  const std::size_t np = pattern.num_vertices();
  std::vector<std::uint64_t> domains(np * words, 0);
  for (graph::VertexId u = 0; u < np; ++u) {
    const std::size_t need = pattern.degree(u);
    std::uint64_t* dom = domains.data() + u * words;
    for (graph::VertexId t = 0; t < target.num_vertices(); ++t) {
      if (target.degree(t) >= need) {
        dom[t >> 6] |= std::uint64_t{1} << (t & 63);
      }
    }
    for (std::size_t w = 0; w < words; ++w) dom[w] &= allowed[w];
  }
  return domains;
}

/// cand &= { bits strictly above v } over a `words`-word span.
inline void and_bits_above(std::uint64_t* cand, graph::VertexId v) {
  const std::size_t wv = v >> 6;
  for (std::size_t w = 0; w < wv; ++w) cand[w] = 0;
  const unsigned bit = v & 63u;
  cand[wv] &= bit == 63 ? 0 : ~std::uint64_t{0} << (bit + 1);
}

/// cand &= { bits strictly below v } over a `words`-word span.
inline void and_bits_below(std::uint64_t* cand, std::size_t words,
                           graph::VertexId v) {
  const std::size_t wv = v >> 6;
  cand[wv] &= (std::uint64_t{1} << (v & 63)) - 1;
  for (std::size_t w = wv + 1; w < words; ++w) cand[w] = 0;
}

/// cand &= { vertices in [begin, end) } over a `words`-word span (the
/// root-split hook: the first-placed pattern vertex is pinned to a
/// contiguous target range, so per-range searches partition the match set
/// without overlap and the parallel driver amortizes per-search setup
/// over the whole range instead of paying it per root).
inline void and_vertex_range(std::uint64_t* cand, std::size_t words,
                             graph::VertexId begin, graph::VertexId end) {
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t lo = w << 6;
    std::uint64_t keep = ~std::uint64_t{0};
    if (begin > lo) {
      keep = begin - lo >= 64 ? 0 : keep << (begin - lo);
    }
    if (end < lo + 64) {
      keep = end <= lo ? 0 : keep & (~std::uint64_t{0} >> (64 - (end - lo)));
    }
    cand[w] &= keep;
  }
}

/// Empty-search fast-out: true when the search is provably empty before
/// any row adjacency is built. Every valid (non-induced) match sends each
/// pattern vertex to a distinct unforbidden target vertex of at least its
/// degree, so sorted degree domination is a necessary condition — and with
/// nested candidate sets (thresholds) it is exactly Hall's condition, so
/// the screen never rejects a satisfiable instance. Zero-match patterns
/// (e.g. a star wider than any free vertex's degree, or more pattern
/// vertices than free GPUs) return without paying domain construction.
/// Patterns are unlabeled per the paper's definition, so degree is the
/// only per-vertex invariant to screen on.
inline bool provably_empty(const graph::Graph& pattern,
                           const graph::Graph& target,
                           const graph::VertexMask* forbidden) {
  std::vector<std::size_t> need;
  need.reserve(pattern.num_vertices());
  for (graph::VertexId u = 0; u < pattern.num_vertices(); ++u) {
    need.push_back(pattern.degree(u));
  }
  std::vector<std::size_t> have;
  have.reserve(target.num_vertices());
  for (graph::VertexId t = 0; t < target.num_vertices(); ++t) {
    if (forbidden != nullptr && forbidden->test(t)) continue;
    have.push_back(target.degree(t));
  }
  if (have.size() < need.size()) return true;
  std::sort(need.begin(), need.end(), std::greater<>());
  std::sort(have.begin(), have.end(), std::greater<>());
  for (std::size_t i = 0; i < need.size(); ++i) {
    if (have[i] < need[i]) return true;
  }
  return false;
}

}  // namespace mapa::match::rows
