#pragma once
// Internal helpers shared by the unified bit-domain matcher cores
// (Vf2Core<Rows> in match/vf2.cpp, UllmannCore<Rows> in match/ullmann.cpp).
// Everything here is generic over a graph::BitRows storage — InlineRows<W>
// or DynRows (graph/bitrows.hpp) — so each backend is written once and
// instantiated per storage.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "graph/bitgraph.hpp"
#include "graph/graph.hpp"

// AVX2 word-span kernels for the DynRows hot loops, compiled behind a
// function-level target attribute (no global -mavx2) and selected once
// per process via cpuid — the binary stays safe on non-AVX2 hosts and
// the build stays portable when the toolchain lacks the attribute
// (MAPA_ENABLE_AVX2 is only defined when CMake proved it compiles).
#if defined(MAPA_ENABLE_AVX2) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define MAPA_AVX2_DISPATCH 1
#include <immintrin.h>
#endif

namespace mapa::match::rows {

/// Word count of a Rows storage, a compile-time constant when the storage
/// fixes it (InlineRows): the matcher cores call this in their inner
/// loops, so for InlineRows<1> every word loop folds to the single-uint64
/// ops the <= 64-vertex hot path has always compiled to.
template <typename Rows>
inline std::size_t word_count(const Rows& rows) {
  if constexpr (requires { Rows::kWords; }) {
    return Rows::kWords;
  } else {
    return rows.num_words();
  }
}

/// Initial candidate domains, pattern-vertex-major with one
/// word_count(target)-word span per pattern vertex: unforbidden target
/// vertices of at least the pattern vertex's degree. `PatternLike` only
/// needs num_vertices()/degree() (a Graph or any Rows storage works).
template <typename PatternLike, typename Rows>
std::vector<std::uint64_t> degree_domains(const PatternLike& pattern,
                                          const Rows& target,
                                          const graph::VertexMask* forbidden) {
  const std::size_t words = word_count(target);
  std::vector<std::uint64_t> allowed(target.all_vertices(),
                                     target.all_vertices() + words);
  if (forbidden != nullptr) {
    for (std::size_t w = 0; w < words; ++w) {
      allowed[w] &= ~forbidden->word(w);
    }
  }
  const std::size_t np = pattern.num_vertices();
  std::vector<std::uint64_t> domains(np * words, 0);
  for (graph::VertexId u = 0; u < np; ++u) {
    const std::size_t need = pattern.degree(u);
    std::uint64_t* dom = domains.data() + u * words;
    for (graph::VertexId t = 0; t < target.num_vertices(); ++t) {
      if (target.degree(t) >= need) {
        dom[t >> 6] |= std::uint64_t{1} << (t & 63);
      }
    }
    for (std::size_t w = 0; w < words; ++w) dom[w] &= allowed[w];
  }
  return domains;
}

// ---------------------------------------------------------------------
// Word-span kernels. The matcher cores spend their inner loops ANDing
// adjacency rows into candidate spans and testing the result for
// emptiness; these helpers are that loop, written once. For InlineRows<1>
// `words` is the compile-time constant 1, the dispatch branch folds away,
// and every helper compiles to the single-uint64 op the <= 64-vertex hot
// path has always been. For DynRows (multi-word rack/pod targets) the
// helpers run 4 words per AVX2 vector when the build and the CPU both
// support it — bit-identical to the scalar loop, pinned by
// tests/match/test_simd.cpp. The "any" results are zero iff the span is
// all-zero; callers must not rely on the exact nonzero value (the vector
// path collapses it to a flag).

namespace detail {

inline std::uint64_t and_into_scalar(std::uint64_t* cand,
                                     const std::uint64_t* row,
                                     std::size_t words) {
  std::uint64_t any = 0;
  for (std::size_t w = 0; w < words; ++w) {
    cand[w] &= row[w];
    any |= cand[w];
  }
  return any;
}

inline std::uint64_t andnot_into_scalar(std::uint64_t* cand,
                                        const std::uint64_t* dom,
                                        const std::uint64_t* excl,
                                        std::size_t words) {
  std::uint64_t any = 0;
  for (std::size_t w = 0; w < words; ++w) {
    cand[w] = dom[w] & ~excl[w];
    any |= cand[w];
  }
  return any;
}

inline std::uint64_t and_any_scalar(const std::uint64_t* a,
                                    const std::uint64_t* b,
                                    std::size_t words) {
  std::uint64_t any = 0;
  for (std::size_t w = 0; w < words; ++w) any |= a[w] & b[w];
  return any;
}

inline std::uint64_t any_bits_scalar(const std::uint64_t* p,
                                     std::size_t words) {
  std::uint64_t any = 0;
  for (std::size_t w = 0; w < words; ++w) any |= p[w];
  return any;
}

inline std::size_t popcount_words_scalar(const std::uint64_t* p,
                                         std::size_t words) {
  std::size_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::size_t>(std::popcount(p[w]));
  }
  return total;
}

#ifdef MAPA_AVX2_DISPATCH

inline bool have_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

__attribute__((target("avx2"))) inline std::uint64_t and_into_avx2(
    std::uint64_t* cand, const std::uint64_t* row, std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cand + w));
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
    const __m256i out = _mm256_and_si256(c, r);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cand + w), out);
    acc = _mm256_or_si256(acc, out);
  }
  std::uint64_t any = _mm256_testz_si256(acc, acc) ? 0 : 1;
  for (; w < words; ++w) {
    cand[w] &= row[w];
    any |= cand[w];
  }
  return any;
}

__attribute__((target("avx2"))) inline std::uint64_t andnot_into_avx2(
    std::uint64_t* cand, const std::uint64_t* dom, const std::uint64_t* excl,
    std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dom + w));
    const __m256i e =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(excl + w));
    // andnot(e, d) = ~e & d
    const __m256i out = _mm256_andnot_si256(e, d);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cand + w), out);
    acc = _mm256_or_si256(acc, out);
  }
  std::uint64_t any = _mm256_testz_si256(acc, acc) ? 0 : 1;
  for (; w < words; ++w) {
    cand[w] = dom[w] & ~excl[w];
    any |= cand[w];
  }
  return any;
}

__attribute__((target("avx2"))) inline std::uint64_t and_any_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    acc = _mm256_or_si256(acc, _mm256_and_si256(va, vb));
  }
  std::uint64_t any = _mm256_testz_si256(acc, acc) ? 0 : 1;
  for (; w < words; ++w) any |= a[w] & b[w];
  return any;
}

__attribute__((target("avx2"))) inline std::uint64_t any_bits_avx2(
    const std::uint64_t* p, std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    acc = _mm256_or_si256(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + w)));
  }
  std::uint64_t any = _mm256_testz_si256(acc, acc) ? 0 : 1;
  for (; w < words; ++w) any |= p[w];
  return any;
}

/// Mula's vpshufb nibble-LUT popcount, 4 words per vector; the per-byte
/// partials are widened through _mm256_sad_epu8 every iteration, so no
/// 8-bit accumulator can saturate whatever `words` is.
__attribute__((target("avx2"))) inline std::size_t popcount_words_avx2(
    const std::uint64_t* p, std::size_t words) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + w));
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t total =
      static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; w < words; ++w) {
    total += static_cast<std::size_t>(std::popcount(p[w]));
  }
  return total;
}

#endif  // MAPA_AVX2_DISPATCH

}  // namespace detail

/// cand &= row over `words` words; zero result iff the span emptied.
inline std::uint64_t and_into(std::uint64_t* cand, const std::uint64_t* row,
                              std::size_t words) {
#ifdef MAPA_AVX2_DISPATCH
  if (words >= 4 && detail::have_avx2()) {
    return detail::and_into_avx2(cand, row, words);
  }
#endif
  return detail::and_into_scalar(cand, row, words);
}

/// cand = dom & ~excl over `words` words; zero result iff all-zero.
inline std::uint64_t andnot_into(std::uint64_t* cand, const std::uint64_t* dom,
                                 const std::uint64_t* excl,
                                 std::size_t words) {
#ifdef MAPA_AVX2_DISPATCH
  if (words >= 4 && detail::have_avx2()) {
    return detail::andnot_into_avx2(cand, dom, excl, words);
  }
#endif
  return detail::andnot_into_scalar(cand, dom, excl, words);
}

/// Zero iff (a & b) has no set bit over `words` words (no stores).
inline std::uint64_t and_any(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t words) {
#ifdef MAPA_AVX2_DISPATCH
  if (words >= 4 && detail::have_avx2()) {
    return detail::and_any_avx2(a, b, words);
  }
#endif
  return detail::and_any_scalar(a, b, words);
}

/// Zero iff the span has no set bit.
inline std::uint64_t any_bits(const std::uint64_t* p, std::size_t words) {
#ifdef MAPA_AVX2_DISPATCH
  if (words >= 4 && detail::have_avx2()) {
    return detail::any_bits_avx2(p, words);
  }
#endif
  return detail::any_bits_scalar(p, words);
}

/// Population count over a word span.
inline std::size_t popcount_words(const std::uint64_t* p, std::size_t words) {
#ifdef MAPA_AVX2_DISPATCH
  if (words >= 4 && detail::have_avx2()) {
    return detail::popcount_words_avx2(p, words);
  }
#endif
  return detail::popcount_words_scalar(p, words);
}

/// cand &= { bits strictly above v } over a `words`-word span.
inline void and_bits_above(std::uint64_t* cand, graph::VertexId v) {
  const std::size_t wv = v >> 6;
  for (std::size_t w = 0; w < wv; ++w) cand[w] = 0;
  const unsigned bit = v & 63u;
  cand[wv] &= bit == 63 ? 0 : ~std::uint64_t{0} << (bit + 1);
}

/// cand &= { bits strictly below v } over a `words`-word span.
inline void and_bits_below(std::uint64_t* cand, std::size_t words,
                           graph::VertexId v) {
  const std::size_t wv = v >> 6;
  cand[wv] &= (std::uint64_t{1} << (v & 63)) - 1;
  for (std::size_t w = wv + 1; w < words; ++w) cand[w] = 0;
}

/// cand &= { vertices in [begin, end) } over a `words`-word span (the
/// root-split hook: the first-placed pattern vertex is pinned to a
/// contiguous target range, so per-range searches partition the match set
/// without overlap and the parallel driver amortizes per-search setup
/// over the whole range instead of paying it per root).
inline void and_vertex_range(std::uint64_t* cand, std::size_t words,
                             graph::VertexId begin, graph::VertexId end) {
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t lo = w << 6;
    std::uint64_t keep = ~std::uint64_t{0};
    if (begin > lo) {
      keep = begin - lo >= 64 ? 0 : keep << (begin - lo);
    }
    if (end < lo + 64) {
      keep = end <= lo ? 0 : keep & (~std::uint64_t{0} >> (64 - (end - lo)));
    }
    cand[w] &= keep;
  }
}

/// Empty-search fast-out: true when the search is provably empty before
/// any row adjacency is built. Every valid (non-induced) match sends each
/// pattern vertex to a distinct unforbidden target vertex of at least its
/// degree, so sorted degree domination is a necessary condition — and with
/// nested candidate sets (thresholds) it is exactly Hall's condition, so
/// the screen never rejects a satisfiable instance. Zero-match patterns
/// (e.g. a star wider than any free vertex's degree, or more pattern
/// vertices than free GPUs) return without paying domain construction.
/// Patterns are unlabeled per the paper's definition, so degree is the
/// only per-vertex invariant to screen on.
inline bool provably_empty(const graph::Graph& pattern,
                           const graph::Graph& target,
                           const graph::VertexMask* forbidden) {
  std::vector<std::size_t> need;
  need.reserve(pattern.num_vertices());
  for (graph::VertexId u = 0; u < pattern.num_vertices(); ++u) {
    need.push_back(pattern.degree(u));
  }
  std::vector<std::size_t> have;
  have.reserve(target.num_vertices());
  for (graph::VertexId t = 0; t < target.num_vertices(); ++t) {
    if (forbidden != nullptr && forbidden->test(t)) continue;
    have.push_back(target.degree(t));
  }
  if (have.size() < need.size()) return true;
  std::sort(need.begin(), need.end(), std::greater<>());
  std::sort(have.begin(), have.end(), std::greater<>());
  for (std::size_t i = 0; i < need.size(); ++i) {
    if (have[i] < need[i]) return true;
  }
  return false;
}

}  // namespace mapa::match::rows
