#include "match/vf2.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "graph/bitrows.hpp"
#include "match/rows_common.hpp"

namespace mapa::match {

namespace {

using graph::DynRows;
using graph::Graph;
using graph::InlineRows;
using graph::VertexId;
using graph::VertexMask;

/// One symmetry-breaking check, indexed by the later-placed endpoint so it
/// fires as soon as both endpoints are mapped.
struct Check {
  VertexId other;        // already-placed pattern vertex
  bool require_greater;  // mapping[current] > mapping[other]?
};

/// The static part of a VF2 search, shared by every storage instantiation
/// and the generic baseline: a match order chosen so each vertex (after
/// the first) is adjacent to an earlier one when the pattern is connected
/// — this keeps the frontier connected and maximizes pruning from
/// adjacency checks — plus, per pattern vertex, its already-placed
/// neighbors and constraint checks.
struct Vf2Plan {
  std::vector<VertexId> order;
  std::vector<std::vector<VertexId>> placed_neighbors;  // by pattern vertex
  std::vector<std::vector<Check>> checks;               // by pattern vertex
};

Vf2Plan make_plan(const Graph& pattern, const OrderingConstraints& constraints) {
  const std::size_t n = pattern.num_vertices();
  Vf2Plan plan;
  std::vector<bool> placed(n, false);
  plan.order.reserve(n);
  // Greedy connected order: repeatedly pick the unplaced vertex with the
  // most placed neighbors (ties by higher degree, then lower id).
  for (std::size_t step = 0; step < n; ++step) {
    VertexId best = 0;
    int best_placed = -1;
    std::size_t best_degree = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (placed[v]) continue;
      int placed_count = 0;
      for (const VertexId nb : pattern.neighbors(v)) {
        if (placed[nb]) ++placed_count;
      }
      const std::size_t degree = pattern.degree(v);
      if (placed_count > best_placed ||
          (placed_count == best_placed && degree > best_degree)) {
        best = v;
        best_placed = placed_count;
        best_degree = degree;
      }
    }
    placed[best] = true;
    plan.order.push_back(best);
  }

  std::vector<std::size_t> position(n);
  for (std::size_t i = 0; i < n; ++i) position[plan.order[i]] = i;

  plan.checks.resize(n);
  for (const auto& [a, b] : constraints) {
    // Constraint: mapping[a] < mapping[b], checked at whichever endpoint
    // is placed later.
    if (position[a] > position[b]) {
      plan.checks[a].push_back({b, /*require_greater=*/false});
    } else {
      plan.checks[b].push_back({a, /*require_greater=*/true});
    }
  }

  plan.placed_neighbors.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const VertexId nb : pattern.neighbors(plan.order[i])) {
      if (position[nb] < i) plan.placed_neighbors[plan.order[i]].push_back(nb);
    }
  }
  return plan;
}

/// The unified bit-domain core, templated over a graph::BitRows storage:
/// candidate domains are word_count(target)-word spans pruned by ANDing
/// the storage's adjacency rows of already-placed neighbors, with an
/// early exit as soon as a domain empties. All per-depth domain scratch
/// is preallocated (depth d owns slice d of `cand_`), so the inner loop
/// performs no heap allocation. Instantiated for InlineRows<1> (<= 64
/// vertices — the word loops fold to single-uint64 ops) and DynRows (any
/// larger target: racks, rack rows, whole pods). `visit == nullptr`
/// switches to pure counting (no Match materialization at the leaves).
template <typename Rows>
class Vf2Core {
 public:
  Vf2Core(const Vf2Plan& plan, const Rows& target, const Graph& pattern,
          const MatchVisitor* visit, const VertexMask* forbidden,
          std::int64_t root_begin, std::int64_t root_end)
      : plan_(plan),
        target_(target),
        visit_(visit),
        rooted_(root_begin >= 0),
        root_begin_(rooted_ ? static_cast<VertexId>(root_begin) : 0),
        root_end_(rooted_ ? static_cast<VertexId>(root_end) : 0) {
    const std::size_t np = pattern.num_vertices();
    scratch_.mapping.assign(np, 0);
    used_.assign(words(), 0);
    // Degree prefilter folded into the initial domain of each pattern
    // vertex: only unforbidden target vertices of sufficient degree.
    deg_ok_ = rows::degree_domains(pattern, target, forbidden);
    cand_.assign(np * words(), 0);
  }

  bool run() { return extend(0); }

  std::size_t count() const { return count_; }

 private:
  std::size_t words() const { return rows::word_count(target_); }

  // Returns false when the visitor requested a stop.
  bool extend(std::size_t depth) {
    std::vector<VertexId>& mapping = scratch_.mapping;
    if (depth == plan_.order.size()) {
      if (visit_ == nullptr) {
        ++count_;
        return true;
      }
      return (*visit_)(scratch_);
    }
    const VertexId u = plan_.order[depth];
    const std::size_t nw = words();

    std::uint64_t* cand = cand_.data() + depth * nw;
    const std::uint64_t* dom = deg_ok_.data() + u * nw;
    if (rows::andnot_into(cand, dom, used_.data(), nw) == 0) return true;
    for (const VertexId nb : plan_.placed_neighbors[u]) {
      const std::uint64_t* row = target_.row(mapping[nb]);
      if (rows::and_into(cand, row, nw) == 0) {
        return true;  // empty domain: prune this subtree
      }
    }
    for (const Check& check : plan_.checks[u]) {
      const VertexId other = mapping[check.other];
      if (check.require_greater) {
        rows::and_bits_above(cand, other);
      } else {
        rows::and_bits_below(cand, nw, other);
      }
    }
    if (depth == 0 && rooted_) {
      rows::and_vertex_range(cand, nw, root_begin_, root_end_);
    }

    for (std::size_t w = 0; w < nw; ++w) {
      std::uint64_t word = cand[w];
      while (word != 0) {
        const std::uint64_t bit = word & (~word + 1);
        const auto t = static_cast<VertexId>(
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
        mapping[u] = t;
        used_[w] |= bit;
        const bool keep_going = extend(depth + 1);
        used_[w] &= ~bit;
        if (!keep_going) return false;
      }
    }
    return true;
  }

  const Vf2Plan& plan_;
  const Rows& target_;
  const MatchVisitor* visit_;
  bool rooted_;
  VertexId root_begin_;  // valid when rooted_
  VertexId root_end_;    // exclusive, valid when rooted_
  std::vector<std::uint64_t> deg_ok_;  // pattern-vertex-major, words() each
  std::vector<std::uint64_t> used_;
  std::vector<std::uint64_t> cand_;  // depth-major domain scratch
  std::size_t count_ = 0;
  Match scratch_;  // mapping updated in place; visitors copy if they keep it
};

/// Generic baseline (the seed inner loop): Graph::has_edge adjacency tests
/// and a vector<bool> used-set. Kept only as the differential-test
/// reference and the perf baseline — no dispatch path selects it.
class Vf2State {
 public:
  Vf2State(const Vf2Plan& plan, const Graph& pattern, const Graph& target,
           const MatchVisitor& visit, const VertexMask* forbidden,
           std::int64_t root_begin, std::int64_t root_end)
      : plan_(plan),
        pattern_(pattern),
        target_(target),
        visit_(visit),
        mapping_(pattern.num_vertices(), 0),
        used_(target.num_vertices(), false),
        forbidden_(forbidden),
        root_begin_(root_begin),
        root_end_(root_end) {}

  bool run() { return extend(0); }

 private:
  // Returns false when the visitor requested a stop.
  bool extend(std::size_t depth) {
    if (depth == plan_.order.size()) {
      return visit_(Match{mapping_});
    }
    const VertexId u = plan_.order[depth];
    const std::size_t u_degree = pattern_.degree(u);

    VertexId first = 0;
    VertexId last = static_cast<VertexId>(target_.num_vertices());
    if (depth == 0 && root_begin_ >= 0) {
      first = static_cast<VertexId>(root_begin_);
      last = static_cast<VertexId>(root_end_);
    }
    for (VertexId candidate = first; candidate < last; ++candidate) {
      if (used_[candidate]) continue;
      if (forbidden_ != nullptr && forbidden_->test(candidate)) continue;
      if (target_.degree(candidate) < u_degree) continue;

      bool ok = true;
      for (const VertexId nb : plan_.placed_neighbors[u]) {
        if (!target_.has_edge(candidate, mapping_[nb])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (const Check& check : plan_.checks[u]) {
        const VertexId other = mapping_[check.other];
        if (check.require_greater ? (candidate <= other)
                                  : (candidate >= other)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      mapping_[u] = candidate;
      used_[candidate] = true;
      const bool keep_going = extend(depth + 1);
      used_[candidate] = false;
      if (!keep_going) return false;
    }
    return true;
  }

  const Vf2Plan& plan_;
  const Graph& pattern_;
  const Graph& target_;
  const MatchVisitor& visit_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  const VertexMask* forbidden_;
  std::int64_t root_begin_;
  std::int64_t root_end_;
};

/// Shared argument validation; returns false when the search is trivially
/// empty (and nothing should run). Resolves `root_end` in place: -1 with
/// an active root_begin means the single root root_begin + 1.
bool validate(const char* what, const Graph& pattern, const Graph& target,
              const VertexMask* forbidden, std::int64_t root_begin,
              std::int64_t* root_end) {
  if (pattern.num_vertices() == 0) return false;
  if (pattern.num_vertices() > target.num_vertices()) return false;
  if (forbidden != nullptr && forbidden->size() != target.num_vertices()) {
    throw std::invalid_argument(std::string(what) +
                                ": forbidden mask size mismatch");
  }
  if (root_begin < 0) return true;
  if (*root_end < 0) *root_end = root_begin + 1;
  if (root_begin >= static_cast<std::int64_t>(target.num_vertices()) ||
      *root_end > static_cast<std::int64_t>(target.num_vertices())) {
    throw std::invalid_argument(std::string(what) +
                                ": root range out of range");
  }
  return *root_end > root_begin;  // an empty range matches nothing
}

/// Run `fn(core)` with a Vf2Core instantiated for the storage the target
/// fits: InlineRows<1> up to 64 vertices, DynRows beyond (no ceiling).
template <typename Fn>
void with_core(const Vf2Plan& plan, const Graph& pattern, const Graph& target,
               const MatchVisitor* visit, const VertexMask* forbidden,
               std::int64_t root_begin, std::int64_t root_end, Fn&& fn) {
  if (InlineRows<1>::fits(target)) {
    const InlineRows<1> rows(target);
    Vf2Core<InlineRows<1>> core(plan, rows, pattern, visit, forbidden,
                                root_begin, root_end);
    fn(core);
    return;
  }
  const DynRows rows(target);
  Vf2Core<DynRows> core(plan, rows, pattern, visit, forbidden, root_begin,
                        root_end);
  fn(core);
}

}  // namespace

void vf2_enumerate(const Graph& pattern, const Graph& target,
                   const MatchVisitor& visit,
                   const OrderingConstraints& constraints,
                   const VertexMask* forbidden, std::int64_t root_begin,
                   std::int64_t root_end) {
  if (!validate("vf2_enumerate", pattern, target, forbidden, root_begin,
                &root_end)) {
    return;
  }
  if (rows::provably_empty(pattern, target, forbidden)) return;
  const Vf2Plan plan = make_plan(pattern, constraints);
  with_core(plan, pattern, target, &visit, forbidden, root_begin, root_end,
            [](auto& core) { core.run(); });
}

void vf2_enumerate_generic(const Graph& pattern, const Graph& target,
                           const MatchVisitor& visit,
                           const OrderingConstraints& constraints,
                           const VertexMask* forbidden,
                           std::int64_t root_begin, std::int64_t root_end) {
  if (!validate("vf2_enumerate_generic", pattern, target, forbidden,
                root_begin, &root_end)) {
    return;
  }
  const Vf2Plan plan = make_plan(pattern, constraints);
  Vf2State state(plan, pattern, target, visit, forbidden, root_begin,
                 root_end);
  state.run();
}

std::size_t vf2_count(const Graph& pattern, const Graph& target,
                      const OrderingConstraints& constraints,
                      const VertexMask* forbidden, std::int64_t root_begin,
                      std::int64_t root_end) {
  if (!validate("vf2_count", pattern, target, forbidden, root_begin,
                &root_end)) {
    return 0;
  }
  if (rows::provably_empty(pattern, target, forbidden)) return 0;
  const Vf2Plan plan = make_plan(pattern, constraints);
  std::size_t count = 0;
  with_core(plan, pattern, target, nullptr, forbidden, root_begin, root_end,
            [&](auto& core) {
              core.run();
              count = core.count();
            });
  return count;
}

std::vector<Match> vf2_all(const Graph& pattern, const Graph& target,
                           const OrderingConstraints& constraints,
                           std::size_t limit) {
  std::vector<Match> matches;
  vf2_enumerate(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return limit == 0 || matches.size() < limit;
      },
      constraints);
  return matches;
}

}  // namespace mapa::match
