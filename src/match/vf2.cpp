#include "match/vf2.hpp"

#include <algorithm>
#include <stdexcept>

namespace mapa::match {

namespace {

using graph::Graph;
using graph::VertexId;

/// Depth-first VF2 state. Pattern vertices are matched in a static order
/// chosen so each vertex (after the first) is adjacent to an earlier one
/// when the pattern is connected — this keeps the frontier connected and
/// maximizes pruning from adjacency checks.
class Vf2State {
 public:
  Vf2State(const Graph& pattern, const Graph& target,
           const MatchVisitor& visit, const OrderingConstraints& constraints,
           const std::vector<bool>* forbidden, std::int64_t root_target)
      : pattern_(pattern),
        target_(target),
        visit_(visit),
        mapping_(pattern.num_vertices(), 0),
        used_(target.num_vertices(), false),
        forbidden_(forbidden),
        root_target_(root_target) {
    build_order();
    // Index constraints by the later-placed endpoint so each is checked as
    // soon as both endpoints are mapped.
    std::vector<std::size_t> position(pattern.num_vertices());
    for (std::size_t i = 0; i < order_.size(); ++i) position[order_[i]] = i;
    checks_.resize(pattern.num_vertices());
    for (const auto& [a, b] : constraints) {
      // Constraint: mapping[a] < mapping[b], checked at whichever endpoint
      // is placed later.
      if (position[a] > position[b]) {
        checks_[a].push_back({b, /*require_greater=*/false});
      } else {
        checks_[b].push_back({a, /*require_greater=*/true});
      }
    }
    // Precompute, for each vertex in match order, its already-placed
    // pattern neighbors.
    placed_neighbors_.resize(pattern.num_vertices());
    for (std::size_t i = 0; i < order_.size(); ++i) {
      for (const VertexId nb : pattern.neighbors(order_[i])) {
        if (position[nb] < i) placed_neighbors_[order_[i]].push_back(nb);
      }
    }
  }

  bool run() { return extend(0); }

 private:
  struct Check {
    VertexId other;           // already-placed pattern vertex
    bool require_greater;     // mapping[current] > mapping[other]?
  };

  void build_order() {
    const std::size_t n = pattern_.num_vertices();
    std::vector<bool> placed(n, false);
    order_.reserve(n);
    // Greedy connected order: repeatedly pick the unplaced vertex with the
    // most placed neighbors (ties by higher degree, then lower id).
    for (std::size_t step = 0; step < n; ++step) {
      VertexId best = 0;
      int best_placed = -1;
      std::size_t best_degree = 0;
      for (VertexId v = 0; v < n; ++v) {
        if (placed[v]) continue;
        int placed_count = 0;
        for (const VertexId nb : pattern_.neighbors(v)) {
          if (placed[nb]) ++placed_count;
        }
        const std::size_t degree = pattern_.degree(v);
        if (placed_count > best_placed ||
            (placed_count == best_placed && degree > best_degree)) {
          best = v;
          best_placed = placed_count;
          best_degree = degree;
        }
      }
      placed[best] = true;
      order_.push_back(best);
    }
  }

  // Returns false when the visitor requested a stop.
  bool extend(std::size_t depth) {
    if (depth == order_.size()) {
      return visit_(Match{mapping_});
    }
    const VertexId u = order_[depth];
    const std::size_t u_degree = pattern_.degree(u);

    VertexId first = 0;
    VertexId last = static_cast<VertexId>(target_.num_vertices());
    if (depth == 0 && root_target_ >= 0) {
      first = static_cast<VertexId>(root_target_);
      last = first + 1;
    }
    for (VertexId candidate = first; candidate < last; ++candidate) {
      if (used_[candidate]) continue;
      if (forbidden_ != nullptr && (*forbidden_)[candidate]) continue;
      if (target_.degree(candidate) < u_degree) continue;

      bool ok = true;
      for (const VertexId nb : placed_neighbors_[u]) {
        if (!target_.has_edge(candidate, mapping_[nb])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (const Check& check : checks_[u]) {
        const VertexId other = mapping_[check.other];
        if (check.require_greater ? (candidate <= other)
                                  : (candidate >= other)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      mapping_[u] = candidate;
      used_[candidate] = true;
      const bool keep_going = extend(depth + 1);
      used_[candidate] = false;
      if (!keep_going) return false;
    }
    return true;
  }

  const Graph& pattern_;
  const Graph& target_;
  const MatchVisitor& visit_;
  std::vector<VertexId> order_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  const std::vector<bool>* forbidden_;
  std::int64_t root_target_;
  std::vector<std::vector<Check>> checks_;
  std::vector<std::vector<VertexId>> placed_neighbors_;
};

}  // namespace

void vf2_enumerate(const Graph& pattern, const Graph& target,
                   const MatchVisitor& visit,
                   const OrderingConstraints& constraints,
                   const std::vector<bool>* forbidden,
                   std::int64_t root_target) {
  if (pattern.num_vertices() == 0) return;
  if (pattern.num_vertices() > target.num_vertices()) return;
  if (forbidden != nullptr && forbidden->size() != target.num_vertices()) {
    throw std::invalid_argument("vf2_enumerate: forbidden mask size mismatch");
  }
  if (root_target >= static_cast<std::int64_t>(target.num_vertices())) {
    throw std::invalid_argument("vf2_enumerate: root_target out of range");
  }
  Vf2State state(pattern, target, visit, constraints, forbidden, root_target);
  state.run();
}

std::vector<Match> vf2_all(const Graph& pattern, const Graph& target,
                           const OrderingConstraints& constraints,
                           std::size_t limit) {
  std::vector<Match> matches;
  vf2_enumerate(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return limit == 0 || matches.size() < limit;
      },
      constraints);
  return matches;
}

}  // namespace mapa::match
