#include "match/vf2.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "graph/widebitgraph.hpp"

namespace mapa::match {

namespace {

using graph::BitGraph;
using graph::Graph;
using graph::VertexId;
using graph::VertexMask;
using graph::WideBitGraph;

/// One symmetry-breaking check, indexed by the later-placed endpoint so it
/// fires as soon as both endpoints are mapped.
struct Check {
  VertexId other;        // already-placed pattern vertex
  bool require_greater;  // mapping[current] > mapping[other]?
};

/// The static part of a VF2 search, shared by the bitset core and the
/// generic fallback: a match order chosen so each vertex (after the first)
/// is adjacent to an earlier one when the pattern is connected — this keeps
/// the frontier connected and maximizes pruning from adjacency checks —
/// plus, per pattern vertex, its already-placed neighbors and constraint
/// checks.
struct Vf2Plan {
  std::vector<VertexId> order;
  std::vector<std::vector<VertexId>> placed_neighbors;  // by pattern vertex
  std::vector<std::vector<Check>> checks;               // by pattern vertex
};

Vf2Plan make_plan(const Graph& pattern, const OrderingConstraints& constraints) {
  const std::size_t n = pattern.num_vertices();
  Vf2Plan plan;
  std::vector<bool> placed(n, false);
  plan.order.reserve(n);
  // Greedy connected order: repeatedly pick the unplaced vertex with the
  // most placed neighbors (ties by higher degree, then lower id).
  for (std::size_t step = 0; step < n; ++step) {
    VertexId best = 0;
    int best_placed = -1;
    std::size_t best_degree = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (placed[v]) continue;
      int placed_count = 0;
      for (const VertexId nb : pattern.neighbors(v)) {
        if (placed[nb]) ++placed_count;
      }
      const std::size_t degree = pattern.degree(v);
      if (placed_count > best_placed ||
          (placed_count == best_placed && degree > best_degree)) {
        best = v;
        best_placed = placed_count;
        best_degree = degree;
      }
    }
    placed[best] = true;
    plan.order.push_back(best);
  }

  std::vector<std::size_t> position(n);
  for (std::size_t i = 0; i < n; ++i) position[plan.order[i]] = i;

  plan.checks.resize(n);
  for (const auto& [a, b] : constraints) {
    // Constraint: mapping[a] < mapping[b], checked at whichever endpoint
    // is placed later.
    if (position[a] > position[b]) {
      plan.checks[a].push_back({b, /*require_greater=*/false});
    } else {
      plan.checks[b].push_back({a, /*require_greater=*/true});
    }
  }

  plan.placed_neighbors.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const VertexId nb : pattern.neighbors(plan.order[i])) {
      if (position[nb] < i) plan.placed_neighbors[plan.order[i]].push_back(nb);
    }
  }
  return plan;
}

/// Bitset core: candidate domains live in one uint64_t, pruned by ANDing
/// BitGraph adjacency rows of already-placed neighbors. `visit == nullptr`
/// switches to pure counting (no Match materialization at the leaves).
class Vf2BitState {
 public:
  Vf2BitState(const Vf2Plan& plan, const BitGraph& target,
              const Graph& pattern, const MatchVisitor* visit,
              const VertexMask* forbidden, std::int64_t root_target)
      : plan_(plan), target_(target), visit_(visit), root_target_(root_target) {
    scratch_.mapping.assign(pattern.num_vertices(), 0);
    const std::uint64_t allowed =
        forbidden == nullptr ? target.all_vertices()
                             : target.all_vertices() & ~forbidden->word(0);
    // Degree prefilter folded into the initial domain of each pattern
    // vertex: only unforbidden target vertices of sufficient degree.
    deg_ok_.assign(pattern.num_vertices(), 0);
    for (VertexId u = 0; u < pattern.num_vertices(); ++u) {
      const std::size_t need = pattern.degree(u);
      std::uint64_t dom = 0;
      for (VertexId t = 0; t < target.num_vertices(); ++t) {
        if (target.degree(t) >= need) dom |= std::uint64_t{1} << t;
      }
      deg_ok_[u] = dom & allowed;
    }
  }

  bool run() { return extend(0); }

  std::size_t count() const { return count_; }

 private:
  static std::uint64_t bits_above(VertexId v) {
    return v >= 63 ? 0 : ~std::uint64_t{0} << (v + 1);
  }
  static std::uint64_t bits_below(VertexId v) {
    return (std::uint64_t{1} << v) - 1;
  }

  // Returns false when the visitor requested a stop.
  bool extend(std::size_t depth) {
    std::vector<VertexId>& mapping = scratch_.mapping;
    if (depth == plan_.order.size()) {
      if (visit_ == nullptr) {
        ++count_;
        return true;
      }
      return (*visit_)(scratch_);
    }
    const VertexId u = plan_.order[depth];

    std::uint64_t cand = deg_ok_[u] & ~used_;
    for (const VertexId nb : plan_.placed_neighbors[u]) {
      cand &= target_.row(mapping[nb]);
    }
    for (const Check& check : plan_.checks[u]) {
      const VertexId other = mapping[check.other];
      cand &= check.require_greater ? bits_above(other) : bits_below(other);
    }
    if (depth == 0 && root_target_ >= 0) {
      cand &= std::uint64_t{1} << root_target_;
    }

    while (cand != 0) {
      const auto t = static_cast<VertexId>(std::countr_zero(cand));
      cand &= cand - 1;
      mapping[u] = t;
      used_ |= std::uint64_t{1} << t;
      const bool keep_going = extend(depth + 1);
      used_ &= ~(std::uint64_t{1} << t);
      if (!keep_going) return false;
    }
    return true;
  }

  const Vf2Plan& plan_;
  const BitGraph& target_;
  const MatchVisitor* visit_;
  std::int64_t root_target_;
  std::vector<std::uint64_t> deg_ok_;
  std::uint64_t used_ = 0;
  std::size_t count_ = 0;
  Match scratch_;  // mapping updated in place; visitors copy if they keep it
};

/// Wide bitset core (targets of 65..WideBitGraph::kMaxVertices vertices —
/// multi-node racks): the same search as Vf2BitState, but candidate
/// domains are spans of `words` uint64_t intersected word-by-word against
/// WideBitGraph adjacency rows, with an early exit as soon as a domain
/// empties. All per-depth domain scratch is preallocated (depth d owns
/// slice d of `cand_`), so the inner loop performs no heap allocation.
class Vf2WideState {
 public:
  Vf2WideState(const Vf2Plan& plan, const WideBitGraph& target,
               const Graph& pattern, const MatchVisitor* visit,
               const VertexMask* forbidden, std::int64_t root_target)
      : plan_(plan),
        target_(target),
        visit_(visit),
        root_target_(root_target),
        words_(target.num_words()) {
    const std::size_t np = pattern.num_vertices();
    scratch_.mapping.assign(np, 0);
    used_.assign(words_, 0);
    std::vector<std::uint64_t> allowed(target.all_vertices(),
                                       target.all_vertices() + words_);
    if (forbidden != nullptr) {
      for (std::size_t w = 0; w < words_; ++w) {
        allowed[w] &= ~forbidden->word(w);
      }
    }
    // Degree prefilter folded into the initial domain of each pattern
    // vertex: only unforbidden target vertices of sufficient degree.
    deg_ok_.assign(np * words_, 0);
    for (VertexId u = 0; u < np; ++u) {
      const std::size_t need = pattern.degree(u);
      std::uint64_t* dom = deg_ok_.data() + u * words_;
      for (VertexId t = 0; t < target.num_vertices(); ++t) {
        if (target.degree(t) >= need) {
          dom[t >> 6] |= std::uint64_t{1} << (t & 63);
        }
      }
      for (std::size_t w = 0; w < words_; ++w) dom[w] &= allowed[w];
    }
    cand_.assign(np * words_, 0);
  }

  bool run() { return extend(0); }

  std::size_t count() const { return count_; }

 private:
  static void and_bits_above(std::uint64_t* cand, VertexId v) {
    const std::size_t wv = v >> 6;
    for (std::size_t w = 0; w < wv; ++w) cand[w] = 0;
    const unsigned bit = v & 63u;
    cand[wv] &= bit == 63 ? 0 : ~std::uint64_t{0} << (bit + 1);
  }
  static void and_bits_below(std::uint64_t* cand, std::size_t words,
                             VertexId v) {
    const std::size_t wv = v >> 6;
    cand[wv] &= (std::uint64_t{1} << (v & 63)) - 1;
    for (std::size_t w = wv + 1; w < words; ++w) cand[w] = 0;
  }

  // Returns false when the visitor requested a stop.
  bool extend(std::size_t depth) {
    std::vector<VertexId>& mapping = scratch_.mapping;
    if (depth == plan_.order.size()) {
      if (visit_ == nullptr) {
        ++count_;
        return true;
      }
      return (*visit_)(scratch_);
    }
    const VertexId u = plan_.order[depth];

    std::uint64_t* cand = cand_.data() + depth * words_;
    const std::uint64_t* dom = deg_ok_.data() + u * words_;
    std::uint64_t any = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      cand[w] = dom[w] & ~used_[w];
      any |= cand[w];
    }
    if (any == 0) return true;
    for (const VertexId nb : plan_.placed_neighbors[u]) {
      const std::uint64_t* row = target_.row(mapping[nb]);
      any = 0;
      for (std::size_t w = 0; w < words_; ++w) {
        cand[w] &= row[w];
        any |= cand[w];
      }
      if (any == 0) return true;  // empty domain: prune this subtree
    }
    for (const Check& check : plan_.checks[u]) {
      const VertexId other = mapping[check.other];
      if (check.require_greater) {
        and_bits_above(cand, other);
      } else {
        and_bits_below(cand, words_, other);
      }
    }
    if (depth == 0 && root_target_ >= 0) {
      const auto root = static_cast<VertexId>(root_target_);
      for (std::size_t w = 0; w < words_; ++w) {
        cand[w] &= w == (root >> 6) ? std::uint64_t{1} << (root & 63) : 0;
      }
    }

    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t word = cand[w];
      while (word != 0) {
        const std::uint64_t bit = word & (~word + 1);
        const auto t = static_cast<VertexId>(
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
        mapping[u] = t;
        used_[w] |= bit;
        const bool keep_going = extend(depth + 1);
        used_[w] &= ~bit;
        if (!keep_going) return false;
      }
    }
    return true;
  }

  const Vf2Plan& plan_;
  const WideBitGraph& target_;
  const MatchVisitor* visit_;
  std::int64_t root_target_;
  std::size_t words_;
  std::vector<std::uint64_t> deg_ok_;  // pattern-vertex-major, words_ each
  std::vector<std::uint64_t> used_;
  std::vector<std::uint64_t> cand_;  // depth-major domain scratch
  std::size_t count_ = 0;
  Match scratch_;  // mapping updated in place; visitors copy if they keep it
};

/// Generic fallback (the seed inner loop): Graph::has_edge adjacency tests
/// and a vector<bool> used-set, for targets that do not fit in 64 bits.
class Vf2State {
 public:
  Vf2State(const Vf2Plan& plan, const Graph& pattern, const Graph& target,
           const MatchVisitor& visit, const VertexMask* forbidden,
           std::int64_t root_target)
      : plan_(plan),
        pattern_(pattern),
        target_(target),
        visit_(visit),
        mapping_(pattern.num_vertices(), 0),
        used_(target.num_vertices(), false),
        forbidden_(forbidden),
        root_target_(root_target) {}

  bool run() { return extend(0); }

 private:
  // Returns false when the visitor requested a stop.
  bool extend(std::size_t depth) {
    if (depth == plan_.order.size()) {
      return visit_(Match{mapping_});
    }
    const VertexId u = plan_.order[depth];
    const std::size_t u_degree = pattern_.degree(u);

    VertexId first = 0;
    VertexId last = static_cast<VertexId>(target_.num_vertices());
    if (depth == 0 && root_target_ >= 0) {
      first = static_cast<VertexId>(root_target_);
      last = first + 1;
    }
    for (VertexId candidate = first; candidate < last; ++candidate) {
      if (used_[candidate]) continue;
      if (forbidden_ != nullptr && forbidden_->test(candidate)) continue;
      if (target_.degree(candidate) < u_degree) continue;

      bool ok = true;
      for (const VertexId nb : plan_.placed_neighbors[u]) {
        if (!target_.has_edge(candidate, mapping_[nb])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (const Check& check : plan_.checks[u]) {
        const VertexId other = mapping_[check.other];
        if (check.require_greater ? (candidate <= other)
                                  : (candidate >= other)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      mapping_[u] = candidate;
      used_[candidate] = true;
      const bool keep_going = extend(depth + 1);
      used_[candidate] = false;
      if (!keep_going) return false;
    }
    return true;
  }

  const Vf2Plan& plan_;
  const Graph& pattern_;
  const Graph& target_;
  const MatchVisitor& visit_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  const VertexMask* forbidden_;
  std::int64_t root_target_;
};

/// Shared argument validation; returns false when the search is trivially
/// empty (and nothing should run).
bool validate(const char* what, const Graph& pattern, const Graph& target,
              const VertexMask* forbidden, std::int64_t root_target) {
  if (pattern.num_vertices() == 0) return false;
  if (pattern.num_vertices() > target.num_vertices()) return false;
  if (forbidden != nullptr && forbidden->size() != target.num_vertices()) {
    throw std::invalid_argument(std::string(what) +
                                ": forbidden mask size mismatch");
  }
  if (root_target >= static_cast<std::int64_t>(target.num_vertices())) {
    throw std::invalid_argument(std::string(what) +
                                ": root_target out of range");
  }
  return true;
}

}  // namespace

void vf2_enumerate(const Graph& pattern, const Graph& target,
                   const MatchVisitor& visit,
                   const OrderingConstraints& constraints,
                   const VertexMask* forbidden, std::int64_t root_target) {
  if (!validate("vf2_enumerate", pattern, target, forbidden, root_target)) {
    return;
  }
  const Vf2Plan plan = make_plan(pattern, constraints);
  if (BitGraph::fits(target)) {
    const BitGraph bits(target);
    Vf2BitState state(plan, bits, pattern, &visit, forbidden, root_target);
    state.run();
    return;
  }
  if (WideBitGraph::fits(target)) {
    const WideBitGraph bits(target);
    Vf2WideState state(plan, bits, pattern, &visit, forbidden, root_target);
    state.run();
    return;
  }
  Vf2State state(plan, pattern, target, visit, forbidden, root_target);
  state.run();
}

void vf2_enumerate_generic(const Graph& pattern, const Graph& target,
                           const MatchVisitor& visit,
                           const OrderingConstraints& constraints,
                           const VertexMask* forbidden,
                           std::int64_t root_target) {
  if (!validate("vf2_enumerate_generic", pattern, target, forbidden,
                root_target)) {
    return;
  }
  const Vf2Plan plan = make_plan(pattern, constraints);
  Vf2State state(plan, pattern, target, visit, forbidden, root_target);
  state.run();
}

std::size_t vf2_count(const Graph& pattern, const Graph& target,
                      const OrderingConstraints& constraints,
                      const VertexMask* forbidden, std::int64_t root_target) {
  if (!validate("vf2_count", pattern, target, forbidden, root_target)) {
    return 0;
  }
  const Vf2Plan plan = make_plan(pattern, constraints);
  if (BitGraph::fits(target)) {
    const BitGraph bits(target);
    Vf2BitState state(plan, bits, pattern, nullptr, forbidden, root_target);
    state.run();
    return state.count();
  }
  if (WideBitGraph::fits(target)) {
    const WideBitGraph bits(target);
    Vf2WideState state(plan, bits, pattern, nullptr, forbidden, root_target);
    state.run();
    return state.count();
  }
  std::size_t count = 0;
  const MatchVisitor counter = [&](const Match&) {
    ++count;
    return true;
  };
  Vf2State state(plan, pattern, target, counter, forbidden, root_target);
  state.run();
  return count;
}

std::vector<Match> vf2_all(const Graph& pattern, const Graph& target,
                           const OrderingConstraints& constraints,
                           std::size_t limit) {
  std::vector<Match> matches;
  vf2_enumerate(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return limit == 0 || matches.size() < limit;
      },
      constraints);
  return matches;
}

}  // namespace mapa::match
