#pragma once
// Pattern-aware match enumeration (the role Peregrine plays in the paper).
//
// Adds two things on top of the raw backends:
//  * Symmetry breaking — ordering constraints derived from the pattern's
//    automorphism group (stabilizer-chain construction) so each distinct
//    allocation is produced exactly once instead of |Aut(P)| times.
//  * A parallel driver — the search space is partitioned into contiguous
//    ranges of the target vertex assigned to the first-placed pattern
//    vertex and explored across a thread pool (paper §5.4 notes this data
//    parallelism), on either backend.

#include <cstddef>
#include <optional>
#include <vector>

#include "match/match.hpp"
#include "match/ullmann.hpp"
#include "match/vf2.hpp"

namespace mapa::obs {
class TraceSink;
}  // namespace mapa::obs

namespace mapa::match {

enum class Backend { kVf2, kUllmann };

struct EnumerateOptions {
  Backend backend = Backend::kVf2;
  /// Suppress automorphic duplicates. On by default; turning it off is the
  /// DESIGN.md ablation (every allocation then appears |Aut(P)| times).
  bool break_symmetry = true;
  /// Worker threads for the parallel driver; 1 = sequential. Parallelism
  /// splits the search into contiguous root-target ranges (~4 per worker)
  /// and runs the selected `backend` per range (VF2 and Ullmann both
  /// support the root split).
  std::size_t threads = 1;
  /// Target vertices that must not be used (busy accelerators) as a
  /// free-GPU bitmask; a default-constructed (empty) mask means none.
  /// Build from a busy vector with graph::VertexMask::of_busy().
  graph::VertexMask forbidden;
  /// Optional observability sink (src/obs/): when non-null the
  /// enumeration entry points emit "match/enumerate" spans. Not part of
  /// any cache key; null (the default) costs one branch.
  obs::TraceSink* trace = nullptr;
};

/// Ordering constraints that eliminate all automorphisms of `pattern`:
/// for each orbit of the group (walked down the stabilizer chain), the
/// orbit's least vertex must take the least target id. Empty when the
/// pattern has no non-trivial symmetry.
OrderingConstraints symmetry_constraints(const graph::Graph& pattern);

/// Number of matches of `pattern` in `target` under `options`.
std::size_t count_matches(const graph::Graph& pattern,
                          const graph::Graph& target,
                          const EnumerateOptions& options = {});

/// Collect up to `limit` matches (0 = all). With threads > 1 the order of
/// results is normalized (sorted) so output stays deterministic.
std::vector<Match> find_matches(const graph::Graph& pattern,
                                const graph::Graph& target,
                                const EnumerateOptions& options = {},
                                std::size_t limit = 0);

/// Stream matches through `visit` sequentially (ignores options.threads).
void for_each_match(const graph::Graph& pattern, const graph::Graph& target,
                    const MatchVisitor& visit,
                    const EnumerateOptions& options = {});

/// Fold over all matches keeping the one with the highest score.
/// Ties break deterministically toward the lexicographically smallest
/// mapping, independent of thread count. Returns nullopt when no match
/// exists. `scorer` must be thread-safe (it is called concurrently).
std::optional<Match> best_match(
    const graph::Graph& pattern, const graph::Graph& target,
    const std::function<double(const Match&)>& scorer,
    const EnumerateOptions& options = {});

}  // namespace mapa::match
