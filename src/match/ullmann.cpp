#include "match/ullmann.hpp"

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace mapa::match {

namespace {

using graph::BitGraph;
using graph::Graph;
using graph::VertexId;
using graph::VertexMask;

/// Candidate domains as 64-bit masks; hardware graphs here are far below
/// 64 vertices (the paper tops out at 16).
using Bits = std::uint64_t;

class UllmannState {
 public:
  UllmannState(const BitGraph& pattern, const BitGraph& target,
               const MatchVisitor* visit,
               const OrderingConstraints& constraints,
               const VertexMask* forbidden)
      : pattern_(pattern),
        target_(target),
        visit_(visit),
        constraints_(constraints),
        n_(pattern.num_vertices()),
        m_(target.num_vertices()) {
    scratch_.mapping.assign(n_, 0);
    const Bits allowed = forbidden == nullptr
                             ? target.all_vertices()
                             : target.all_vertices() & ~forbidden->word(0);
    domains_.resize(n_, 0);
    for (VertexId p = 0; p < n_; ++p) {
      Bits dom = 0;
      for (VertexId t = 0; t < m_; ++t) {
        if (target.degree(t) >= pattern.degree(p)) dom |= Bits{1} << t;
      }
      domains_[p] = dom & allowed;
    }
  }

  bool run() {
    std::vector<Bits> domains = domains_;
    if (!refine(domains)) return true;
    return extend(0, domains);
  }

  std::size_t count() const { return count_; }

 private:
  /// Classic Ullmann refinement: candidate t for pattern vertex p survives
  /// only if every pattern neighbor of p still has a candidate adjacent to
  /// t. Iterates to a fixed point; returns false if a domain empties.
  bool refine(std::vector<Bits>& domains) const {
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId p = 0; p < n_; ++p) {
        Bits dom = domains[p];
        while (dom != 0) {
          const int t = std::countr_zero(dom);
          dom &= dom - 1;
          Bits nbs = pattern_.row(p);
          while (nbs != 0) {
            const auto q = static_cast<VertexId>(std::countr_zero(nbs));
            nbs &= nbs - 1;
            if ((domains[q] & target_.row(static_cast<VertexId>(t))) == 0) {
              domains[p] &= ~(Bits{1} << t);
              changed = true;
              break;
            }
          }
        }
        if (domains[p] == 0) return false;
      }
    }
    return true;
  }

  bool satisfies_constraints(VertexId p, VertexId t) const {
    const std::vector<VertexId>& mapping = scratch_.mapping;
    for (const auto& [a, b] : constraints_) {
      if (a == p && b < p && t >= mapping[b]) return false;
      if (b == p && a < p && t <= mapping[a]) return false;
    }
    return true;
  }

  bool extend(VertexId p, const std::vector<Bits>& domains) {
    std::vector<VertexId>& mapping = scratch_.mapping;
    if (p == n_) {
      if (visit_ == nullptr) {
        ++count_;
        return true;
      }
      return (*visit_)(scratch_);
    }
    // Adjacency to already-placed pattern neighbors, folded into the
    // candidate mask up front instead of per-candidate edge probes.
    Bits dom = domains[p] & ~used_;
    Bits earlier = pattern_.row(p) & ((Bits{1} << p) - 1);
    while (earlier != 0) {
      const auto q = static_cast<VertexId>(std::countr_zero(earlier));
      earlier &= earlier - 1;
      dom &= target_.row(mapping[q]);
    }
    while (dom != 0) {
      const auto t = static_cast<VertexId>(std::countr_zero(dom));
      dom &= dom - 1;
      if (!satisfies_constraints(p, t)) continue;

      // Forward-check: narrow future domains to neighbors of t where the
      // pattern demands adjacency, and drop t everywhere.
      bool viable = true;
      std::vector<Bits> next = domains;
      const Bits t_bit = Bits{1} << t;
      for (VertexId q = p + 1; q < n_; ++q) {
        next[q] &= ~t_bit;
        if (pattern_.has_edge(p, q)) {
          next[q] &= target_.row(t);
        }
        if (next[q] == 0) {
          viable = false;
          break;
        }
      }
      if (!viable) continue;

      mapping[p] = t;
      used_ |= t_bit;
      const bool keep_going = extend(p + 1, next);
      used_ &= ~t_bit;
      if (!keep_going) return false;
    }
    return true;
  }

  const BitGraph& pattern_;
  const BitGraph& target_;
  const MatchVisitor* visit_;
  const OrderingConstraints& constraints_;
  std::size_t n_;
  std::size_t m_;
  std::vector<Bits> domains_;
  Bits used_ = 0;
  std::size_t count_ = 0;
  Match scratch_;  // mapping updated in place; visitors copy if they keep it
};

/// Returns false when the search is trivially empty; throws on misuse.
bool validate(const Graph& pattern, const Graph& target,
              const VertexMask* forbidden) {
  if (pattern.num_vertices() == 0) return false;
  if (pattern.num_vertices() > target.num_vertices()) return false;
  if (target.num_vertices() > BitGraph::kMaxVertices) {
    throw std::invalid_argument(
        "ullmann_enumerate: bit-vector backend supports <= 64 target "
        "vertices");
  }
  if (forbidden != nullptr && forbidden->size() != target.num_vertices()) {
    throw std::invalid_argument(
        "ullmann_enumerate: forbidden mask size mismatch");
  }
  return true;
}

}  // namespace

void ullmann_enumerate(const Graph& pattern, const Graph& target,
                       const MatchVisitor& visit,
                       const OrderingConstraints& constraints,
                       const VertexMask* forbidden) {
  if (!validate(pattern, target, forbidden)) return;
  const BitGraph pattern_bits(pattern);
  const BitGraph target_bits(target);
  UllmannState state(pattern_bits, target_bits, &visit, constraints,
                     forbidden);
  state.run();
}

std::size_t ullmann_count(const Graph& pattern, const Graph& target,
                          const OrderingConstraints& constraints,
                          const VertexMask* forbidden) {
  if (!validate(pattern, target, forbidden)) return 0;
  const BitGraph pattern_bits(pattern);
  const BitGraph target_bits(target);
  UllmannState state(pattern_bits, target_bits, nullptr, constraints,
                     forbidden);
  state.run();
  return state.count();
}

std::vector<Match> ullmann_all(const Graph& pattern, const Graph& target,
                               const OrderingConstraints& constraints,
                               std::size_t limit) {
  std::vector<Match> matches;
  ullmann_enumerate(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return limit == 0 || matches.size() < limit;
      },
      constraints);
  return matches;
}

}  // namespace mapa::match
