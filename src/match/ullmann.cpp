#include "match/ullmann.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/widebitgraph.hpp"

namespace mapa::match {

namespace {

using graph::BitGraph;
using graph::Graph;
using graph::VertexId;
using graph::VertexMask;
using graph::WideBitGraph;

/// Candidate domains as 64-bit masks; hardware graphs here are far below
/// 64 vertices (the paper tops out at 16).
using Bits = std::uint64_t;

class UllmannState {
 public:
  UllmannState(const BitGraph& pattern, const BitGraph& target,
               const MatchVisitor* visit,
               const OrderingConstraints& constraints,
               const VertexMask* forbidden)
      : pattern_(pattern),
        target_(target),
        visit_(visit),
        constraints_(constraints),
        n_(pattern.num_vertices()),
        m_(target.num_vertices()) {
    scratch_.mapping.assign(n_, 0);
    const Bits allowed = forbidden == nullptr
                             ? target.all_vertices()
                             : target.all_vertices() & ~forbidden->word(0);
    domains_.resize(n_, 0);
    for (VertexId p = 0; p < n_; ++p) {
      Bits dom = 0;
      for (VertexId t = 0; t < m_; ++t) {
        if (target.degree(t) >= pattern.degree(p)) dom |= Bits{1} << t;
      }
      domains_[p] = dom & allowed;
    }
  }

  bool run() {
    std::vector<Bits> domains = domains_;
    if (!refine(domains)) return true;
    return extend(0, domains);
  }

  std::size_t count() const { return count_; }

 private:
  /// Classic Ullmann refinement: candidate t for pattern vertex p survives
  /// only if every pattern neighbor of p still has a candidate adjacent to
  /// t. Iterates to a fixed point; returns false if a domain empties.
  bool refine(std::vector<Bits>& domains) const {
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId p = 0; p < n_; ++p) {
        Bits dom = domains[p];
        while (dom != 0) {
          const int t = std::countr_zero(dom);
          dom &= dom - 1;
          Bits nbs = pattern_.row(p);
          while (nbs != 0) {
            const auto q = static_cast<VertexId>(std::countr_zero(nbs));
            nbs &= nbs - 1;
            if ((domains[q] & target_.row(static_cast<VertexId>(t))) == 0) {
              domains[p] &= ~(Bits{1} << t);
              changed = true;
              break;
            }
          }
        }
        if (domains[p] == 0) return false;
      }
    }
    return true;
  }

  bool satisfies_constraints(VertexId p, VertexId t) const {
    const std::vector<VertexId>& mapping = scratch_.mapping;
    for (const auto& [a, b] : constraints_) {
      if (a == p && b < p && t >= mapping[b]) return false;
      if (b == p && a < p && t <= mapping[a]) return false;
    }
    return true;
  }

  bool extend(VertexId p, const std::vector<Bits>& domains) {
    std::vector<VertexId>& mapping = scratch_.mapping;
    if (p == n_) {
      if (visit_ == nullptr) {
        ++count_;
        return true;
      }
      return (*visit_)(scratch_);
    }
    // Adjacency to already-placed pattern neighbors, folded into the
    // candidate mask up front instead of per-candidate edge probes.
    Bits dom = domains[p] & ~used_;
    Bits earlier = pattern_.row(p) & ((Bits{1} << p) - 1);
    while (earlier != 0) {
      const auto q = static_cast<VertexId>(std::countr_zero(earlier));
      earlier &= earlier - 1;
      dom &= target_.row(mapping[q]);
    }
    while (dom != 0) {
      const auto t = static_cast<VertexId>(std::countr_zero(dom));
      dom &= dom - 1;
      if (!satisfies_constraints(p, t)) continue;

      // Forward-check: narrow future domains to neighbors of t where the
      // pattern demands adjacency, and drop t everywhere.
      bool viable = true;
      std::vector<Bits> next = domains;
      const Bits t_bit = Bits{1} << t;
      for (VertexId q = p + 1; q < n_; ++q) {
        next[q] &= ~t_bit;
        if (pattern_.has_edge(p, q)) {
          next[q] &= target_.row(t);
        }
        if (next[q] == 0) {
          viable = false;
          break;
        }
      }
      if (!viable) continue;

      mapping[p] = t;
      used_ |= t_bit;
      const bool keep_going = extend(p + 1, next);
      used_ &= ~t_bit;
      if (!keep_going) return false;
    }
    return true;
  }

  const BitGraph& pattern_;
  const BitGraph& target_;
  const MatchVisitor* visit_;
  const OrderingConstraints& constraints_;
  std::size_t n_;
  std::size_t m_;
  std::vector<Bits> domains_;
  Bits used_ = 0;
  std::size_t count_ = 0;
  Match scratch_;  // mapping updated in place; visitors copy if they keep it
};

/// Wide variant (targets of 65..WideBitGraph::kMaxVertices vertices):
/// identical search to UllmannState — same refinement, same constraint
/// handling, same forward-check — but every candidate domain is a span of
/// `tw_` words ANDed against WideBitGraph rows. Forward-checked domain
/// copies live in a preallocated depth-indexed buffer, so the inner loop
/// performs no heap allocation.
class UllmannWideState {
 public:
  UllmannWideState(const WideBitGraph& pattern, const WideBitGraph& target,
                   const MatchVisitor* visit,
                   const OrderingConstraints& constraints,
                   const VertexMask* forbidden)
      : pattern_(pattern),
        target_(target),
        visit_(visit),
        constraints_(constraints),
        n_(pattern.num_vertices()),
        m_(target.num_vertices()),
        tw_(target.num_words()) {
    scratch_.mapping.assign(n_, 0);
    std::vector<std::uint64_t> allowed(target.all_vertices(),
                                       target.all_vertices() + tw_);
    if (forbidden != nullptr) {
      for (std::size_t w = 0; w < tw_; ++w) allowed[w] &= ~forbidden->word(w);
    }
    domains_.assign(n_ * tw_, 0);
    for (VertexId p = 0; p < n_; ++p) {
      std::uint64_t* dom = domains_.data() + p * tw_;
      for (VertexId t = 0; t < m_; ++t) {
        if (target.degree(t) >= pattern.degree(p)) {
          dom[t >> 6] |= std::uint64_t{1} << (t & 63);
        }
      }
      for (std::size_t w = 0; w < tw_; ++w) dom[w] &= allowed[w];
    }
    used_.assign(tw_, 0);
    buffers_.assign(n_ * n_ * tw_, 0);  // forward-check domains, per depth
  }

  bool run() {
    if (!refine(domains_.data())) return true;
    return extend(0, domains_.data());
  }

  std::size_t count() const { return count_; }

 private:
  bool domain_empty(const std::uint64_t* dom) const {
    std::uint64_t acc = 0;
    for (std::size_t w = 0; w < tw_; ++w) acc |= dom[w];
    return acc == 0;
  }

  /// Classic Ullmann refinement over word spans: candidate t for pattern
  /// vertex p survives only if every pattern neighbor of p still has a
  /// candidate adjacent to t. Iterates to a fixed point; returns false if
  /// a domain empties.
  bool refine(std::uint64_t* domains) const {
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId p = 0; p < n_; ++p) {
        std::uint64_t* dom = domains + p * tw_;
        for (std::size_t w = 0; w < tw_; ++w) {
          std::uint64_t word = dom[w];
          while (word != 0) {
            const auto t = static_cast<VertexId>(
                (w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
            word &= word - 1;
            const std::uint64_t* trow = target_.row(t);
            const std::uint64_t* prow = pattern_.row(p);
            bool dead = false;
            for (std::size_t pw = 0; pw < pattern_.num_words() && !dead;
                 ++pw) {
              std::uint64_t nbs = prow[pw];
              while (nbs != 0) {
                const auto q = static_cast<VertexId>(
                    (pw << 6) +
                    static_cast<std::size_t>(std::countr_zero(nbs)));
                nbs &= nbs - 1;
                const std::uint64_t* qdom = domains + q * tw_;
                std::uint64_t acc = 0;
                for (std::size_t w2 = 0; w2 < tw_; ++w2) {
                  acc |= qdom[w2] & trow[w2];
                }
                if (acc == 0) {
                  dead = true;
                  break;
                }
              }
            }
            if (dead) {
              dom[w] &= ~(std::uint64_t{1} << (t & 63));
              changed = true;
            }
          }
        }
        if (domain_empty(dom)) return false;
      }
    }
    return true;
  }

  bool satisfies_constraints(VertexId p, VertexId t) const {
    const std::vector<VertexId>& mapping = scratch_.mapping;
    for (const auto& [a, b] : constraints_) {
      if (a == p && b < p && t >= mapping[b]) return false;
      if (b == p && a < p && t <= mapping[a]) return false;
    }
    return true;
  }

  bool extend(VertexId p, const std::uint64_t* domains) {
    std::vector<VertexId>& mapping = scratch_.mapping;
    if (p == n_) {
      if (visit_ == nullptr) {
        ++count_;
        return true;
      }
      return (*visit_)(scratch_);
    }
    // Adjacency to already-placed pattern neighbors, folded into the
    // candidate span up front instead of per-candidate edge probes.
    std::uint64_t cand[WideBitGraph::kMaxVertices / 64];
    const std::uint64_t* dom = domains + p * tw_;
    for (std::size_t w = 0; w < tw_; ++w) cand[w] = dom[w] & ~used_[w];
    const std::uint64_t* prow = pattern_.row(p);
    const std::size_t p_word = p >> 6;
    for (std::size_t pw = 0; pw <= p_word; ++pw) {
      std::uint64_t earlier = prow[pw];
      if (pw == p_word) earlier &= (std::uint64_t{1} << (p & 63)) - 1;
      while (earlier != 0) {
        const auto q = static_cast<VertexId>(
            (pw << 6) + static_cast<std::size_t>(std::countr_zero(earlier)));
        earlier &= earlier - 1;
        const std::uint64_t* qrow = target_.row(mapping[q]);
        for (std::size_t w = 0; w < tw_; ++w) cand[w] &= qrow[w];
      }
    }
    for (std::size_t w = 0; w < tw_; ++w) {
      std::uint64_t word = cand[w];
      while (word != 0) {
        const std::uint64_t t_bit = word & (~word + 1);
        const auto t = static_cast<VertexId>(
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
        if (!satisfies_constraints(p, t)) continue;

        // Forward-check: narrow future domains to neighbors of t where
        // the pattern demands adjacency, and drop t everywhere.
        std::uint64_t* next = buffers_.data() + p * n_ * tw_;
        std::copy(domains, domains + n_ * tw_, next);
        const std::uint64_t* trow = target_.row(t);
        bool viable = true;
        for (VertexId q = p + 1; q < n_; ++q) {
          std::uint64_t* qdom = next + q * tw_;
          qdom[w] &= ~t_bit;
          if (pattern_.has_edge(p, q)) {
            for (std::size_t w2 = 0; w2 < tw_; ++w2) qdom[w2] &= trow[w2];
          }
          if (domain_empty(qdom)) {
            viable = false;
            break;
          }
        }
        if (!viable) continue;

        mapping[p] = t;
        used_[w] |= t_bit;
        const bool keep_going = extend(p + 1, next);
        used_[w] &= ~t_bit;
        if (!keep_going) return false;
      }
    }
    return true;
  }

  const WideBitGraph& pattern_;
  const WideBitGraph& target_;
  const MatchVisitor* visit_;
  const OrderingConstraints& constraints_;
  std::size_t n_;
  std::size_t m_;
  std::size_t tw_;  // words per target-domain span
  std::vector<std::uint64_t> domains_;  // pattern-vertex-major, tw_ each
  std::vector<std::uint64_t> used_;
  std::vector<std::uint64_t> buffers_;  // depth-major forward-check copies
  std::size_t count_ = 0;
  Match scratch_;  // mapping updated in place; visitors copy if they keep it
};

/// Returns false when the search is trivially empty; throws on misuse.
bool validate(const Graph& pattern, const Graph& target,
              const VertexMask* forbidden) {
  if (pattern.num_vertices() == 0) return false;
  if (pattern.num_vertices() > target.num_vertices()) return false;
  if (target.num_vertices() > WideBitGraph::kMaxVertices) {
    throw std::invalid_argument(
        "ullmann_enumerate: bit-vector backends support <= " +
        std::to_string(WideBitGraph::kMaxVertices) +
        " target vertices; use the generic VF2 path "
        "(vf2_enumerate_generic) beyond that");
  }
  if (forbidden != nullptr && forbidden->size() != target.num_vertices()) {
    throw std::invalid_argument(
        "ullmann_enumerate: forbidden mask size mismatch");
  }
  return true;
}

}  // namespace

void ullmann_enumerate(const Graph& pattern, const Graph& target,
                       const MatchVisitor& visit,
                       const OrderingConstraints& constraints,
                       const VertexMask* forbidden) {
  if (!validate(pattern, target, forbidden)) return;
  if (BitGraph::fits(target)) {
    const BitGraph pattern_bits(pattern);
    const BitGraph target_bits(target);
    UllmannState state(pattern_bits, target_bits, &visit, constraints,
                       forbidden);
    state.run();
    return;
  }
  const WideBitGraph pattern_bits(pattern);
  const WideBitGraph target_bits(target);
  UllmannWideState state(pattern_bits, target_bits, &visit, constraints,
                         forbidden);
  state.run();
}

std::size_t ullmann_count(const Graph& pattern, const Graph& target,
                          const OrderingConstraints& constraints,
                          const VertexMask* forbidden) {
  if (!validate(pattern, target, forbidden)) return 0;
  if (BitGraph::fits(target)) {
    const BitGraph pattern_bits(pattern);
    const BitGraph target_bits(target);
    UllmannState state(pattern_bits, target_bits, nullptr, constraints,
                       forbidden);
    state.run();
    return state.count();
  }
  const WideBitGraph pattern_bits(pattern);
  const WideBitGraph target_bits(target);
  UllmannWideState state(pattern_bits, target_bits, nullptr, constraints,
                         forbidden);
  state.run();
  return state.count();
}

std::vector<Match> ullmann_all(const Graph& pattern, const Graph& target,
                               const OrderingConstraints& constraints,
                               std::size_t limit) {
  std::vector<Match> matches;
  ullmann_enumerate(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return limit == 0 || matches.size() < limit;
      },
      constraints);
  return matches;
}

}  // namespace mapa::match
