#include "match/ullmann.hpp"

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace mapa::match {

namespace {

using graph::Graph;
using graph::VertexId;

/// Candidate domains as 64-bit masks; hardware graphs here are far below
/// 64 vertices (the paper tops out at 16).
using Bits = std::uint64_t;

class UllmannState {
 public:
  UllmannState(const Graph& pattern, const Graph& target,
               const MatchVisitor& visit,
               const OrderingConstraints& constraints,
               const std::vector<bool>* forbidden)
      : pattern_(pattern),
        target_(target),
        visit_(visit),
        constraints_(constraints),
        n_(pattern.num_vertices()),
        m_(target.num_vertices()),
        mapping_(pattern.num_vertices(), 0) {
    target_adj_.resize(m_, 0);
    for (VertexId t = 0; t < m_; ++t) {
      for (const VertexId nb : target.neighbors(t)) {
        target_adj_[t] |= Bits{1} << nb;
      }
    }
    domains_.resize(n_, 0);
    for (VertexId p = 0; p < n_; ++p) {
      for (VertexId t = 0; t < m_; ++t) {
        if (forbidden != nullptr && (*forbidden)[t]) continue;
        if (target.degree(t) >= pattern.degree(p)) {
          domains_[p] |= Bits{1} << t;
        }
      }
    }
  }

  bool run() {
    std::vector<Bits> domains = domains_;
    if (!refine(domains)) return true;
    return extend(0, domains);
  }

 private:
  /// Classic Ullmann refinement: candidate t for pattern vertex p survives
  /// only if every pattern neighbor of p still has a candidate adjacent to
  /// t. Iterates to a fixed point; returns false if a domain empties.
  bool refine(std::vector<Bits>& domains) const {
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId p = 0; p < n_; ++p) {
        Bits dom = domains[p];
        while (dom != 0) {
          const int t = std::countr_zero(dom);
          dom &= dom - 1;
          for (const VertexId q : pattern_.neighbors(p)) {
            if ((domains[q] & target_adj_[static_cast<std::size_t>(t)]) == 0) {
              domains[p] &= ~(Bits{1} << t);
              changed = true;
              break;
            }
          }
        }
        if (domains[p] == 0) return false;
      }
    }
    return true;
  }

  bool satisfies_constraints(VertexId p, VertexId t) const {
    for (const auto& [a, b] : constraints_) {
      if (a == p && placed_[b] && t >= mapping_[b]) return false;
      if (b == p && placed_[a] && t <= mapping_[a]) return false;
    }
    return true;
  }

  bool extend(VertexId p, const std::vector<Bits>& domains) {
    if (p == n_) return visit_(Match{mapping_});
    Bits dom = domains[p] & ~used_;
    while (dom != 0) {
      const auto t = static_cast<VertexId>(std::countr_zero(dom));
      dom &= dom - 1;
      if (!satisfies_constraints(p, t)) continue;
      bool adjacent_ok = true;
      for (const VertexId q : pattern_.neighbors(p)) {
        if (q < p && !target_.has_edge(t, mapping_[q])) {
          adjacent_ok = false;
          break;
        }
      }
      if (!adjacent_ok) continue;

      // Forward-check: narrow future domains to neighbors of t where the
      // pattern demands adjacency, and drop t everywhere.
      std::vector<Bits> next = domains;
      const Bits t_bit = Bits{1} << t;
      for (VertexId q = p + 1; q < n_; ++q) {
        next[q] &= ~t_bit;
        if (pattern_.has_edge(p, q)) {
          next[q] &= target_adj_[t];
        }
        if (next[q] == 0) {
          adjacent_ok = false;
          break;
        }
      }
      if (!adjacent_ok) continue;

      mapping_[p] = t;
      placed_[p] = true;
      used_ |= t_bit;
      const bool keep_going = extend(p + 1, next);
      used_ &= ~t_bit;
      placed_[p] = false;
      if (!keep_going) return false;
    }
    return true;
  }

  const Graph& pattern_;
  const Graph& target_;
  const MatchVisitor& visit_;
  const OrderingConstraints& constraints_;
  std::size_t n_;
  std::size_t m_;
  std::vector<Bits> target_adj_;
  std::vector<Bits> domains_;
  std::vector<VertexId> mapping_;
  std::vector<bool> placed_ = std::vector<bool>(n_, false);
  Bits used_ = 0;
};

}  // namespace

void ullmann_enumerate(const Graph& pattern, const Graph& target,
                       const MatchVisitor& visit,
                       const OrderingConstraints& constraints,
                       const std::vector<bool>* forbidden) {
  if (pattern.num_vertices() == 0) return;
  if (pattern.num_vertices() > target.num_vertices()) return;
  if (target.num_vertices() > 64) {
    throw std::invalid_argument(
        "ullmann_enumerate: bit-vector backend supports <= 64 target "
        "vertices");
  }
  if (forbidden != nullptr && forbidden->size() != target.num_vertices()) {
    throw std::invalid_argument(
        "ullmann_enumerate: forbidden mask size mismatch");
  }
  UllmannState state(pattern, target, visit, constraints, forbidden);
  state.run();
}

std::vector<Match> ullmann_all(const Graph& pattern, const Graph& target,
                               const OrderingConstraints& constraints,
                               std::size_t limit) {
  std::vector<Match> matches;
  ullmann_enumerate(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return limit == 0 || matches.size() < limit;
      },
      constraints);
  return matches;
}

}  // namespace mapa::match
