#include "match/ullmann.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/bitrows.hpp"
#include "match/rows_common.hpp"

namespace mapa::match {

namespace {

using graph::DynRows;
using graph::Graph;
using graph::InlineRows;
using graph::VertexId;
using graph::VertexMask;

/// The unified Ullmann core, templated over a graph::BitRows storage
/// (graph/bitrows.hpp) for both the pattern and the target: the classic
/// refinement step, constraint handling, and forward-checking are all
/// word-span bitwise ops against the storage's adjacency rows.
/// Instantiated for InlineRows<1> (targets <= 64 vertices — every word
/// loop folds to single-uint64 ops) and DynRows (any larger target, no
/// ceiling). Forward-checked domain copies and per-depth candidate spans
/// live in preallocated depth-indexed buffers, so the inner loop performs
/// no heap allocation. `root_begin >= 0` pins pattern vertex 0 (the
/// first placed) to the target range [root_begin, root_end) — the
/// root-split hook the parallel enumerator uses to partition the search
/// across threads without overlap.
template <typename Rows>
class UllmannCore {
 public:
  UllmannCore(const Rows& pattern, const Rows& target,
              const MatchVisitor* visit, const OrderingConstraints& constraints,
              const VertexMask* forbidden, std::int64_t root_begin,
              std::int64_t root_end)
      : pattern_(pattern),
        target_(target),
        visit_(visit),
        constraints_(constraints),
        n_(pattern.num_vertices()) {
    scratch_.mapping.assign(n_, 0);
    // Degree prefilter folded into the initial domain of each pattern
    // vertex: only unforbidden target vertices of sufficient degree.
    domains_ = rows::degree_domains(pattern, target, forbidden);
    if (root_begin >= 0 && n_ > 0) {
      rooted_ = true;
      rows::and_vertex_range(domains_.data(), twords(),
                             static_cast<VertexId>(root_begin),
                             static_cast<VertexId>(root_end));
    }
    used_.assign(twords(), 0);
    cand_.assign(n_ * twords(), 0);      // per-depth candidate spans
    buffers_.assign(n_ * n_ * twords(), 0);  // forward-check domains
  }

  bool run() {
    if (n_ == 0) return true;
    // Refinement is pure pruning — it never changes the emitted match
    // stream — and its fixpoint walks every candidate of every pattern
    // vertex. A root-split search skips it: the narrowed root domain
    // propagates through extend()'s forward-checking immediately, and
    // re-paying the global fixpoint per root range would dominate the
    // whole root-split.
    if (!rooted_ && !refine(domains_.data())) return true;
    return extend(0, domains_.data());
  }

  std::size_t count() const { return count_; }

 private:
  std::size_t twords() const { return rows::word_count(target_); }
  std::size_t pwords() const { return rows::word_count(pattern_); }

  bool domain_empty(const std::uint64_t* dom) const {
    return rows::any_bits(dom, twords()) == 0;
  }

  /// Classic Ullmann refinement over word spans: candidate t for pattern
  /// vertex p survives only if every pattern neighbor of p still has a
  /// candidate adjacent to t. Iterates to a fixed point; returns false if
  /// a domain empties.
  bool refine(std::uint64_t* domains) const {
    const std::size_t tw = twords();
    const std::size_t pw = pwords();
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId p = 0; p < n_; ++p) {
        std::uint64_t* dom = domains + p * tw;
        for (std::size_t w = 0; w < tw; ++w) {
          std::uint64_t word = dom[w];
          while (word != 0) {
            const auto t = static_cast<VertexId>(
                (w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
            word &= word - 1;
            const std::uint64_t* trow = target_.row(t);
            const std::uint64_t* prow = pattern_.row(p);
            bool dead = false;
            for (std::size_t pwi = 0; pwi < pw && !dead; ++pwi) {
              std::uint64_t nbs = prow[pwi];
              while (nbs != 0) {
                const auto q = static_cast<VertexId>(
                    (pwi << 6) +
                    static_cast<std::size_t>(std::countr_zero(nbs)));
                nbs &= nbs - 1;
                const std::uint64_t* qdom = domains + q * tw;
                if (rows::and_any(qdom, trow, tw) == 0) {
                  dead = true;
                  break;
                }
              }
            }
            if (dead) {
              dom[w] &= ~(std::uint64_t{1} << (t & 63));
              changed = true;
            }
          }
        }
        if (domain_empty(dom)) return false;
      }
    }
    return true;
  }

  bool satisfies_constraints(VertexId p, VertexId t) const {
    const std::vector<VertexId>& mapping = scratch_.mapping;
    for (const auto& [a, b] : constraints_) {
      if (a == p && b < p && t >= mapping[b]) return false;
      if (b == p && a < p && t <= mapping[a]) return false;
    }
    return true;
  }

  bool extend(VertexId p, const std::uint64_t* domains) {
    std::vector<VertexId>& mapping = scratch_.mapping;
    if (p == n_) {
      if (visit_ == nullptr) {
        ++count_;
        return true;
      }
      return (*visit_)(scratch_);
    }
    const std::size_t tw = twords();
    // Adjacency to already-placed pattern neighbors, folded into the
    // candidate span up front instead of per-candidate edge probes.
    std::uint64_t* cand = cand_.data() + p * tw;
    const std::uint64_t* dom = domains + p * tw;
    rows::andnot_into(cand, dom, used_.data(), tw);
    const std::uint64_t* prow = pattern_.row(p);
    const std::size_t p_word = p >> 6;
    for (std::size_t pwi = 0; pwi <= p_word; ++pwi) {
      std::uint64_t earlier = prow[pwi];
      if (pwi == p_word) earlier &= (std::uint64_t{1} << (p & 63)) - 1;
      while (earlier != 0) {
        const auto q = static_cast<VertexId>(
            (pwi << 6) + static_cast<std::size_t>(std::countr_zero(earlier)));
        earlier &= earlier - 1;
        const std::uint64_t* qrow = target_.row(mapping[q]);
        rows::and_into(cand, qrow, tw);
      }
    }
    for (std::size_t w = 0; w < tw; ++w) {
      std::uint64_t word = cand[w];
      while (word != 0) {
        const std::uint64_t t_bit = word & (~word + 1);
        const auto t = static_cast<VertexId>(
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
        if (!satisfies_constraints(p, t)) continue;

        // Forward-check: narrow future domains to neighbors of t where
        // the pattern demands adjacency, and drop t everywhere.
        std::uint64_t* next = buffers_.data() + p * n_ * tw;
        std::copy(domains, domains + n_ * tw, next);
        const std::uint64_t* trow = target_.row(t);
        bool viable = true;
        for (VertexId q = p + 1; q < n_; ++q) {
          std::uint64_t* qdom = next + q * tw;
          qdom[w] &= ~t_bit;
          if (pattern_.has_edge(p, q)) {
            rows::and_into(qdom, trow, tw);
          }
          if (domain_empty(qdom)) {
            viable = false;
            break;
          }
        }
        if (!viable) continue;

        mapping[p] = t;
        used_[w] |= t_bit;
        const bool keep_going = extend(p + 1, next);
        used_[w] &= ~t_bit;
        if (!keep_going) return false;
      }
    }
    return true;
  }

  const Rows& pattern_;
  const Rows& target_;
  const MatchVisitor* visit_;
  const OrderingConstraints& constraints_;
  std::size_t n_;
  bool rooted_ = false;
  std::vector<std::uint64_t> domains_;  // pattern-vertex-major, twords() each
  std::vector<std::uint64_t> used_;
  std::vector<std::uint64_t> cand_;     // depth-major candidate scratch
  std::vector<std::uint64_t> buffers_;  // depth-major forward-check copies
  std::size_t count_ = 0;
  Match scratch_;  // mapping updated in place; visitors copy if they keep it
};

/// Returns false when the search is trivially empty; throws on misuse.
/// Resolves `root_end` in place: -1 with an active root_begin means the
/// single root root_begin + 1.
bool validate(const Graph& pattern, const Graph& target,
              const VertexMask* forbidden, std::int64_t root_begin,
              std::int64_t* root_end) {
  if (pattern.num_vertices() == 0) return false;
  if (pattern.num_vertices() > target.num_vertices()) return false;
  if (forbidden != nullptr && forbidden->size() != target.num_vertices()) {
    throw std::invalid_argument(
        "ullmann_enumerate: forbidden mask size mismatch");
  }
  if (root_begin < 0) return true;
  if (*root_end < 0) *root_end = root_begin + 1;
  if (root_begin >= static_cast<std::int64_t>(target.num_vertices()) ||
      *root_end > static_cast<std::int64_t>(target.num_vertices())) {
    throw std::invalid_argument("ullmann_enumerate: root range out of range");
  }
  return *root_end > root_begin;  // an empty range matches nothing
}

/// Run an UllmannCore instantiated for the storage the target fits:
/// InlineRows<1> up to 64 vertices, DynRows beyond (no ceiling). The
/// pattern always fits the target's storage (validate() guarantees it is
/// no larger).
template <typename Fn>
void with_core(const Graph& pattern, const Graph& target,
               const MatchVisitor* visit, const OrderingConstraints& constraints,
               const VertexMask* forbidden, std::int64_t root_begin,
               std::int64_t root_end, Fn&& fn) {
  if (InlineRows<1>::fits(target)) {
    const InlineRows<1> pattern_rows(pattern);
    const InlineRows<1> target_rows(target);
    UllmannCore<InlineRows<1>> core(pattern_rows, target_rows, visit,
                                    constraints, forbidden, root_begin,
                                    root_end);
    fn(core);
    return;
  }
  const DynRows pattern_rows(pattern);
  const DynRows target_rows(target);
  UllmannCore<DynRows> core(pattern_rows, target_rows, visit, constraints,
                            forbidden, root_begin, root_end);
  fn(core);
}

}  // namespace

void ullmann_enumerate(const Graph& pattern, const Graph& target,
                       const MatchVisitor& visit,
                       const OrderingConstraints& constraints,
                       const VertexMask* forbidden, std::int64_t root_begin,
                       std::int64_t root_end) {
  if (!validate(pattern, target, forbidden, root_begin, &root_end)) return;
  if (rows::provably_empty(pattern, target, forbidden)) return;
  with_core(pattern, target, &visit, constraints, forbidden, root_begin,
            root_end, [](auto& core) { core.run(); });
}

std::size_t ullmann_count(const Graph& pattern, const Graph& target,
                          const OrderingConstraints& constraints,
                          const VertexMask* forbidden,
                          std::int64_t root_begin, std::int64_t root_end) {
  if (!validate(pattern, target, forbidden, root_begin, &root_end)) return 0;
  if (rows::provably_empty(pattern, target, forbidden)) return 0;
  std::size_t count = 0;
  with_core(pattern, target, nullptr, constraints, forbidden, root_begin,
            root_end, [&](auto& core) {
              core.run();
              count = core.count();
            });
  return count;
}

std::vector<Match> ullmann_all(const Graph& pattern, const Graph& target,
                               const OrderingConstraints& constraints,
                               std::size_t limit) {
  std::vector<Match> matches;
  ullmann_enumerate(
      pattern, target,
      [&](const Match& m) {
        matches.push_back(m);
        return limit == 0 || matches.size() < limit;
      },
      constraints);
  return matches;
}

}  // namespace mapa::match
