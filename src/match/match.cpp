#include "match/match.hpp"

#include <algorithm>

namespace mapa::match {

std::vector<graph::VertexId> Match::sorted_vertices() const {
  std::vector<graph::VertexId> vs = mapping;
  std::sort(vs.begin(), vs.end());
  return vs;
}

std::vector<std::pair<graph::VertexId, graph::VertexId>> Match::used_edges(
    const graph::Graph& pattern) const {
  std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
  edges.reserve(pattern.num_edges());
  for (const graph::Edge& e : pattern.edges()) {
    const graph::VertexId a = mapping[e.u];
    const graph::VertexId b = mapping[e.v];
    edges.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

}  // namespace mapa::match
