#pragma once
// Minimal dense linear algebra for the effective-bandwidth regression
// (Eq. 2 of the paper). The model is linear in its 14 coefficients once the
// nonlinear features of (x, y, z) are expanded, so ordinary least squares
// via Householder QR is exact and numerically stable.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace mapa::util {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<const double> row(std::size_t r) const;

  Matrix transpose() const;
  Matrix multiply(const Matrix& rhs) const;
  std::vector<double> multiply(std::span<const double> vec) const;

  static Matrix identity(std::size_t n);

  /// Max-abs-difference comparison for tests.
  double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve min ||A x - b||_2 by Householder QR. Requires rows >= cols and
/// full column rank; throws std::invalid_argument / std::runtime_error
/// otherwise.
std::vector<double> least_squares(const Matrix& a, std::span<const double> b);

/// Solve the square system A x = b by QR (convenience wrapper).
std::vector<double> solve(const Matrix& a, std::span<const double> b);

}  // namespace mapa::util
