#pragma once
// Fixed-size thread pool with a parallel_for helper.
//
// Used by the match enumerator (parallel branch exploration from root
// candidates) and by pattern scoring (paper §5.4 notes scoring is data
// parallel and can be parallelized — we implement that optimization and
// ablate it in the Fig. 19 bench).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mapa::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, count) across the pool and wait for all.
  /// Work is split into contiguous chunks to limit scheduling overhead.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Work-stealing variant: run fn(i) for i in [0, count) and wait for
  /// all, with indices claimed one at a time off a shared atomic counter
  /// instead of pre-split into contiguous chunks. One task per worker is
  /// submitted regardless of count, so per-index dispatch is a single
  /// fetch_add — a skewed index (one root range holding most of the
  /// search tree) no longer strands the rest of its pre-assigned chunk
  /// behind it. Indices complete in arbitrary order; callers needing
  /// determinism must merge by index, exactly as with parallel_for.
  void dynamic_for(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace mapa::util
