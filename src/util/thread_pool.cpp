#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>

namespace mapa::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  auto future = wrapped.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit: pool is shutting down");
    }
    tasks_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, workers_.size() * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(count, begin + chunk_size);
    if (begin >= end) break;
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows any task exception
}

void ThreadPool::dynamic_for(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t tasks = std::min(count, workers_.size());
  if (tasks <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(submit([&fn, next, count] {
      for (std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
           i < count;
           i = next->fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    }));
  }
  for (auto& f : futures) f.get();  // rethrows any task exception
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace mapa::util
