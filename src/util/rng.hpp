#pragma once
// Deterministic random-number utilities.
//
// Every stochastic component in MAPA (job-file generation, random policy,
// synthetic microbenchmark noise) draws from an explicitly seeded Rng so
// that simulations, tests, and benchmark tables are exactly reproducible.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace mapa::util {

/// Deterministic pseudo-random generator with convenience draws.
///
/// Wraps a fixed-algorithm 64-bit engine so results never depend on the
/// standard library's unspecified distribution implementations where we can
/// avoid it (integer draws use Lemire-style rejection-free mapping; real
/// draws use the canonical 53-bit mantissa construction).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {
    // Warm up: splitmix64 a few rounds so nearby seeds diverge immediately.
    for (int i = 0; i < 4; ++i) next_u64();
  }

  /// Raw 64 uniformly random bits (splitmix64).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi], inclusive on both ends.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Multiply-shift mapping (Lemire); bias is < 2^-64 * span, negligible
    // for the small ranges used here, and deterministic either way.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next_u64()) * span;
    return lo + static_cast<std::int64_t>(product >> 64);
  }

  /// Uniform real in [0, 1) with 53 bits of precision.
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double two_pi = 6.283185307179586476925286766559;
    return mean + stddev * r * std::cos(two_pi * u2);
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// Uniformly pick one element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher–Yates shuffle in place.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child generator (for per-thread streams).
  Rng fork() { return Rng(next_u64()); }

 private:
  std::uint64_t state_;
};

}  // namespace mapa::util
