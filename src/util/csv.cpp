#include "util/csv.hpp"

#include <cmath>
#include <sstream>

namespace mapa::util {

void CsvWriter::header(const std::vector<std::string>& columns) {
  write_cells(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_cells(cells);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) formatted.push_back(format_double(v));
  row(formatted);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string format_double(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Integers print exactly; everything else gets shortest round-trip-ish.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(value);
    return os.str();
  }
  std::ostringstream os;
  os.precision(12);
  os << value;
  return os.str();
}

}  // namespace mapa::util
