#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace mapa::util {

namespace {

void require_nonempty(std::span<const double> xs, const char* what) {
  if (xs.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty sample");
  }
}

void require_same_size(std::span<const double> a, std::span<const double> b,
                       const char* what) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(what) + ": size mismatch");
  }
  if (a.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty sample");
  }
}

}  // namespace

double sum(std::span<const double> xs) {
  // Kahan summation: some benches aggregate millions of per-call times.
  double total = 0.0;
  double carry = 0.0;
  for (const double x : xs) {
    const double y = x - carry;
    const double t = total + y;
    carry = (t - total) - y;
    total = t;
  }
  return total;
}

double mean(std::span<const double> xs) {
  require_nonempty(xs, "mean");
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  require_nonempty(xs, "variance");
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  require_nonempty(xs, "min_of");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  require_nonempty(xs, "max_of");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  require_nonempty(xs, "quantile");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q outside [0, 1]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

BoxPlot box_plot(std::span<const double> xs) {
  require_nonempty(xs, "box_plot");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  };
  BoxPlot bp;
  bp.min = sorted.front();
  bp.q25 = at(0.25);
  bp.median = at(0.50);
  bp.q75 = at(0.75);
  bp.max = sorted.back();
  bp.count = sorted.size();
  return bp;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  require_same_size(xs, ys, "pearson");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double rmse(std::span<const double> predicted,
            std::span<const double> actual) {
  require_same_size(predicted, actual, "rmse");
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double mae(std::span<const double> predicted, std::span<const double> actual) {
  require_same_size(predicted, actual, "mae");
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc += std::abs(predicted[i] - actual[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

double mean_relative_error(std::span<const double> predicted,
                           std::span<const double> actual) {
  require_same_size(predicted, actual, "mean_relative_error");
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (actual[i] == 0.0) continue;
    acc += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
    ++n;
  }
  if (n == 0) {
    throw std::invalid_argument("mean_relative_error: all actuals are zero");
  }
  return acc / static_cast<double>(n);
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  require_nonempty(xs, "empirical_cdf");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) /
                                  static_cast<double>(sorted.size())});
  }
  return cdf;
}

std::string to_string(const BoxPlot& bp) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << "[min " << bp.min << " | q25 " << bp.q25 << " | med "
     << bp.median << " | q75 " << bp.q75 << " | max " << bp.max << " | n="
     << bp.count << "]";
  return os.str();
}

}  // namespace mapa::util
