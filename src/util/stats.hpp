#pragma once
// Descriptive statistics used throughout the evaluation harness:
// quantiles and five-number (box-plot) summaries for the figure benches,
// correlation / error metrics for the regression model (Fig. 12),
// and CDF construction for the workload characterization (Fig. 5a).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mapa::util {

/// Five-number summary as drawn in the paper's box plots.
struct BoxPlot {
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// One (x, cumulative fraction) point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double sum(std::span<const double> xs);

/// Quantile with linear interpolation between order statistics
/// (type-7 / NumPy default). `q` must be in [0, 1]; `xs` non-empty.
double quantile(std::span<const double> xs, double q);

/// Five-number summary of a non-empty sample.
BoxPlot box_plot(std::span<const double> xs);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Root-mean-square error between predictions and observations.
double rmse(std::span<const double> predicted, std::span<const double> actual);

/// Mean absolute error.
double mae(std::span<const double> predicted, std::span<const double> actual);

/// Mean relative error |pred - actual| / |actual| over entries with
/// non-zero actual value.
double mean_relative_error(std::span<const double> predicted,
                           std::span<const double> actual);

/// Empirical CDF: sorted sample values with cumulative fractions.
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

/// Render a box plot as a compact single-line summary for console tables.
std::string to_string(const BoxPlot& bp);

}  // namespace mapa::util
