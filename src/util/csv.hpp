#pragma once
// Small CSV writer used by the benchmark harness to dump the raw series
// behind every figure so plots can be regenerated outside this repo.

#include <ostream>
#include <string>
#include <vector>

namespace mapa::util {

/// Streaming CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Writes to an externally owned stream; the stream must outlive this.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write a header row; must be called before any data rows if used.
  void header(const std::vector<std::string>& columns);

  /// Write one data row of string cells.
  void row(const std::vector<std::string>& cells);

  /// Write one data row of numeric cells with full precision.
  void row(const std::vector<double>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  void write_cells(const std::vector<std::string>& cells);
  static std::string escape(const std::string& cell);

  std::ostream* out_;
  std::size_t rows_ = 0;
};

/// Format a double with enough digits to round-trip.
std::string format_double(double value);

}  // namespace mapa::util
