#pragma once
// Aligned console tables. Every bench binary prints the paper's tables and
// figure series through this, so outputs stay uniform and diff-friendly.

#include <string>
#include <vector>

namespace mapa::util {

/// Builds a fixed-column text table and renders it with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  void add_row(const std::vector<double>& cells);

  /// Render with a header rule; `indent` spaces prefix every line.
  std::string render(int indent = 0) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
std::string fixed(double value, int decimals);
std::string percent(double fraction, int decimals = 1);

}  // namespace mapa::util
