#include "util/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace mapa::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> vec) const {
  if (cols_ != vec.size()) {
    throw std::invalid_argument("Matrix::multiply(vec): dimension mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * vec[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

std::vector<double> least_squares(const Matrix& a, std::span<const double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) {
    throw std::invalid_argument("least_squares: rhs size mismatch");
  }
  if (m < n) {
    throw std::invalid_argument("least_squares: underdetermined system");
  }

  // Householder QR applied to a working copy of [A | b].
  Matrix r = a;
  std::vector<double> rhs(b.begin(), b.end());

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector for column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      throw std::runtime_error("least_squares: rank-deficient design matrix");
    }
    const double alpha = (r(k, k) > 0.0) ? -norm : norm;
    std::vector<double> v(m - k, 0.0);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vnorm2 = 0.0;
    for (const double x : v) vnorm2 += x * x;
    if (vnorm2 == 0.0) continue;  // column already reduced

    // Apply the reflector H = I - 2 v v^T / (v^T v) to R and rhs.
    for (std::size_t c = k; c < n; ++c) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r(i, c);
      const double scale = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, c) -= scale * v[i - k];
    }
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * rhs[i];
    const double scale = 2.0 * dot / vnorm2;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= scale * v[i - k];
  }

  // Back substitution on the upper-triangular R.
  std::vector<double> x(n, 0.0);
  for (std::size_t k = n; k-- > 0;) {
    double acc = rhs[k];
    for (std::size_t c = k + 1; c < n; ++c) acc -= r(k, c) * x[c];
    const double diag = r(k, k);
    if (std::abs(diag) < 1e-12) {
      throw std::runtime_error("least_squares: singular R diagonal");
    }
    x[k] = acc / diag;
  }
  return x;
}

std::vector<double> solve(const Matrix& a, std::span<const double> b) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("solve: matrix must be square");
  }
  return least_squares(a, b);
}

}  // namespace mapa::util
