#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace mapa::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) formatted.push_back(format_double(v));
  add_row(std::move(formatted));
}

std::string Table::render(int indent) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << pad;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };

  emit(columns_);
  os << pad;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) os << "  ";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fixed(double value, int decimals) {
  std::ostringstream os;
  os.precision(decimals);
  os << std::fixed << value;
  return os.str();
}

std::string percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

}  // namespace mapa::util
