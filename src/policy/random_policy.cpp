#include "policy/random_policy.hpp"

#include "policy/match_cache.hpp"

namespace mapa::policy {

std::optional<AllocationResult> RandomPolicy::allocate(
    const graph::Graph& hardware, const std::vector<bool>& busy,
    const AllocationRequest& request) {
  check_inputs(hardware, busy, request);
  if (free_count(busy) < request.pattern->num_vertices()) return std::nullopt;

  match::EnumerateOptions options;
  options.backend = config_.backend;
  options.break_symmetry = config_.break_symmetry;
  options.forbidden = graph::VertexMask::of_busy(busy);
  options.trace = request.trace;

  // Reservoir-sample one match uniformly from the stream of matches, so we
  // never materialize the full match set. Replaying a cached enumeration
  // yields the same stream, so sampling stays identical with caching on.
  std::optional<match::Match> sampled;
  std::size_t seen = 0;
  const match::MatchVisitor sample = [&](const match::Match& m) {
    ++seen;
    if (rng_.uniform_int(1, static_cast<std::int64_t>(seen)) == 1) {
      sampled = m;
    }
    return true;
  };
  if (cache() != nullptr) {
    cache()->for_each_match(*request.pattern, hardware, options, sample,
                            request.cache_probe);
  } else {
    match::for_each_match(*request.pattern, hardware, sample, options);
  }
  if (!sampled) return std::nullopt;
  return score_result(hardware, busy, request, std::move(*sampled), config_);
}

}  // namespace mapa::policy
