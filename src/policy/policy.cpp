#include "policy/policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "policy/baseline.hpp"
#include "policy/greedy.hpp"
#include "policy/preserve.hpp"
#include "policy/random_policy.hpp"
#include "policy/topo_aware.hpp"
#include "score/effbw_model.hpp"
#include "score/scores.hpp"

namespace mapa::policy {

AllocationResult Policy::score_result(const graph::Graph& hardware,
                                      const std::vector<bool>& busy,
                                      const AllocationRequest& request,
                                      match::Match m,
                                      const PolicyConfig& config) {
  AllocationResult result;
  result.aggregated_bw =
      score::aggregated_bandwidth(*request.pattern, hardware, m);
  result.predicted_effbw =
      config.theta.empty()
          ? score::predict_effective_bandwidth(*request.pattern, hardware, m)
          : score::predict_effective_bandwidth(*request.pattern, hardware, m,
                                               config.theta);
  result.preserved_bw = score::preserved_bandwidth(hardware, m, busy);
  result.match = std::move(m);
  return result;
}

std::size_t Policy::free_count(const std::vector<bool>& busy) {
  return static_cast<std::size_t>(
      std::count(busy.begin(), busy.end(), false));
}

void Policy::check_inputs(const graph::Graph& hardware,
                          const std::vector<bool>& busy,
                          const AllocationRequest& request) {
  if (request.pattern == nullptr) {
    throw std::invalid_argument("Policy::allocate: null pattern");
  }
  if (busy.size() != hardware.num_vertices()) {
    throw std::invalid_argument("Policy::allocate: busy mask size mismatch");
  }
  if (request.pattern->num_vertices() == 0) {
    throw std::invalid_argument("Policy::allocate: empty pattern");
  }
}

std::unique_ptr<Policy> make_policy(const std::string& name,
                                    const PolicyConfig& config,
                                    std::uint64_t random_seed) {
  if (name == "baseline") return std::make_unique<BaselinePolicy>(config);
  if (name == "topo-aware") return std::make_unique<TopoAwarePolicy>(config);
  if (name == "greedy") return std::make_unique<GreedyPolicy>(config);
  if (name == "preserve") return std::make_unique<PreservePolicy>(config);
  if (name == "random") {
    return std::make_unique<RandomPolicy>(random_seed, config);
  }
  throw std::invalid_argument("make_policy: unknown policy '" + name + "'");
}

const std::vector<std::string>& paper_policy_names() {
  static const std::vector<std::string> names = {"baseline", "topo-aware",
                                                 "greedy", "preserve"};
  return names;
}

}  // namespace mapa::policy
