#pragma once
// Random policy (ablation, not in the paper): place the job on a uniformly
// random valid match. Bounds how much of MAPA's win comes from scoring
// versus merely from being pattern-aware.

#include "policy/policy.hpp"
#include "util/rng.hpp"

namespace mapa::policy {

class RandomPolicy final : public Policy {
 public:
  explicit RandomPolicy(std::uint64_t seed, PolicyConfig config = {})
      : config_(std::move(config)), rng_(seed) {}

  std::string name() const override { return "random"; }

  std::optional<AllocationResult> allocate(
      const graph::Graph& hardware, const std::vector<bool>& busy,
      const AllocationRequest& request) override;

 private:
  PolicyConfig config_;
  util::Rng rng_;
};

}  // namespace mapa::policy
