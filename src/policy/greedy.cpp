#include "policy/greedy.hpp"

#include "policy/match_cache.hpp"
#include "score/scores.hpp"

namespace mapa::policy {

std::optional<AllocationResult> GreedyPolicy::allocate(
    const graph::Graph& hardware, const std::vector<bool>& busy,
    const AllocationRequest& request) {
  check_inputs(hardware, busy, request);
  if (free_count(busy) < request.pattern->num_vertices()) return std::nullopt;

  match::EnumerateOptions options;
  options.backend = config_.backend;
  options.break_symmetry = config_.break_symmetry;
  options.threads = config_.threads;
  options.forbidden = graph::VertexMask::of_busy(busy);
  options.trace = request.trace;

  const auto best = best_cached_match(
      cache(), *request.pattern, hardware, options,
      [&](const match::Match& m) {
        return score::aggregated_bandwidth(*request.pattern, hardware, m);
      },
      request.cache_probe);
  if (!best) return std::nullopt;
  return score_result(hardware, busy, request, *best, config_);
}

}  // namespace mapa::policy
