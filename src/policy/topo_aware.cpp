#include "policy/topo_aware.hpp"

#include <algorithm>
#include <map>

namespace mapa::policy {

std::optional<AllocationResult> TopoAwarePolicy::allocate(
    const graph::Graph& hardware, const std::vector<bool>& busy,
    const AllocationRequest& request) {
  check_inputs(hardware, busy, request);
  const std::size_t wanted = request.pattern->num_vertices();
  if (free_count(busy) < wanted) return std::nullopt;

  // Free devices grouped by socket (the leaves of the PCIe hierarchy the
  // recursive bi-partitioning in Amaral et al. descends).
  std::map<int, std::vector<graph::VertexId>> free_by_socket;
  for (graph::VertexId v = 0; v < hardware.num_vertices(); ++v) {
    if (!busy[v]) free_by_socket[hardware.socket(v)].push_back(v);
  }

  std::vector<graph::VertexId> chosen;
  chosen.reserve(wanted);

  // Best-fit: the socket that fits the job with the least slack, keeping
  // larger contiguous blocks free for later jobs. Ties go to the lower
  // socket id (deterministic).
  int best_socket = -1;
  std::size_t best_slack = 0;
  for (const auto& [socket, devices] : free_by_socket) {
    if (devices.size() < wanted) continue;
    const std::size_t slack = devices.size() - wanted;
    if (best_socket == -1 || slack < best_slack) {
      best_socket = socket;
      best_slack = slack;
    }
  }
  if (best_socket != -1) {
    const auto& devices = free_by_socket[best_socket];
    chosen.assign(devices.begin(),
                  devices.begin() + static_cast<std::ptrdiff_t>(wanted));
  } else {
    // No single socket fits: spill across the fewest sockets, taking from
    // the fullest free sockets first.
    std::vector<std::pair<int, std::vector<graph::VertexId>>> sockets(
        free_by_socket.begin(), free_by_socket.end());
    std::sort(sockets.begin(), sockets.end(),
              [](const auto& a, const auto& b) {
                if (a.second.size() != b.second.size()) {
                  return a.second.size() > b.second.size();
                }
                return a.first < b.first;
              });
    for (const auto& [socket, devices] : sockets) {
      for (const graph::VertexId v : devices) {
        if (chosen.size() == wanted) break;
        chosen.push_back(v);
      }
      if (chosen.size() == wanted) break;
    }
  }

  match::Match m;
  m.mapping = std::move(chosen);
  return score_result(hardware, busy, request, std::move(m), config_);
}

}  // namespace mapa::policy
