#pragma once
// MAPA Greedy policy: enumerate all pattern matches on the free hardware
// and pick the one with the highest Aggregated Bandwidth (Eq. 1).
// Pattern- and topology-aware, but ignores bandwidth sensitivity and may
// starve future sensitive jobs (the behavior Preserve fixes).

#include "policy/policy.hpp"

namespace mapa::policy {

class GreedyPolicy final : public Policy {
 public:
  explicit GreedyPolicy(PolicyConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return "greedy"; }

  std::optional<AllocationResult> allocate(
      const graph::Graph& hardware, const std::vector<bool>& busy,
      const AllocationRequest& request) override;

 private:
  PolicyConfig config_;
};

}  // namespace mapa::policy
