#pragma once
// Baseline policy: allocate the lowest-numbered available GPUs, exactly how
// Nvidia Docker assigns devices (paper §4, "Baseline Scheduling Policies").
// Ignores both the application pattern and the hardware topology.

#include "policy/policy.hpp"

namespace mapa::policy {

class BaselinePolicy final : public Policy {
 public:
  explicit BaselinePolicy(PolicyConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return "baseline"; }

  std::optional<AllocationResult> allocate(
      const graph::Graph& hardware, const std::vector<bool>& busy,
      const AllocationRequest& request) override;

 private:
  PolicyConfig config_;
};

}  // namespace mapa::policy
