#include "policy/match_cache.hpp"

#include "graph/algorithms.hpp"
#include "match/rows_common.hpp"
#include "obs/trace.hpp"

namespace mapa::policy {

namespace {

std::uint64_t mix_hash(std::uint64_t hash, std::uint64_t value) {
  hash ^= value + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
  return hash;
}

/// The pattern-shape half of the key: adjacency fingerprint mixed with
/// the backend + symmetry flags. Two lookups with equal shape enumerate
/// the same pattern under the same contract and differ only in the busy
/// mask — which is exactly the set the superset (delta) index groups by.
std::uint64_t shape_fingerprint(const graph::Graph& pattern,
                                const match::EnumerateOptions& options) {
  const std::uint64_t flags =
      static_cast<std::uint64_t>(options.backend) |
      (options.break_symmetry ? std::uint64_t{1} << 8 : 0);
  return mix_hash(graph::adjacency_fingerprint(pattern), flags);
}

/// The unified cache key: shape fingerprint mixed with the busy-mask
/// fingerprint. Key equality is fingerprint equality — see the
/// collision-probability argument in the header.
std::uint64_t unified_fingerprint(std::uint64_t shape,
                                  const match::EnumerateOptions& options) {
  return mix_hash(shape, options.forbidden.fingerprint());
}

/// True when every vertex forbidden in `a` is also forbidden in `b` — the
/// cached state `a` has at least the free GPUs of the current state `b`,
/// so its stored match list is a superset of `b`'s. The test is on the
/// real mask words, not fingerprints: a delta source is proven, never
/// guessed. An empty (default) mask forbids nothing and is the universal
/// subset.
bool mask_subset(const graph::VertexMask& a, const graph::VertexMask& b) {
  for (std::size_t w = 0; w < a.num_words(); ++w) {
    const std::uint64_t bw = w < b.num_words() ? b.word(w) : 0;
    if ((a.word(w) & ~bw) != 0) return false;
  }
  return true;
}

}  // namespace

MatchCache::MatchCache(MatchCacheConfig config) : config_(config) {}

MatchCacheStats MatchCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t MatchCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MatchCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
  oversized_.clear();
  staging_.clear();
  shape_index_.clear();
}

void MatchCache::refresh_hardware_locked(const graph::Graph& hardware) {
  // Hardware identity pins adjacency AND bandwidths (topology, not
  // adjacency, fingerprint): a link-degraded fork of the pinned graph —
  // same structure, one bandwidth cut — must invalidate wholesale, so a
  // degraded server probing this cache can never replay entries computed
  // for the healthy topology (cluster/fleet.hpp fault model).
  const std::uint64_t fp = graph::topology_fingerprint(hardware);
  if (hardware_seen_ && fp == hardware_fp_ &&
      hardware.num_vertices() == hardware_vertices_) {
    return;
  }
  if (hardware_seen_) {
    // Every side structure goes with the entries: the oversized-bypass
    // fingerprints, any staged probe results, and the superset index
    // all describe match sets of the previous hardware graph.
    ++stats_.invalidations;
    entries_.clear();
    index_.clear();
    oversized_.clear();
    staging_.clear();
    shape_index_.clear();
  }
  hardware_seen_ = true;
  hardware_fp_ = fp;
  hardware_vertices_ = hardware.num_vertices();
}

void MatchCache::touch_locked(std::list<Entry>::iterator it) {
  entries_.splice(entries_.begin(), entries_, it);
}

void MatchCache::store_locked(std::uint64_t key, std::uint64_t shape,
                              graph::VertexMask forbidden,
                              std::vector<match::Match> matches) {
  if (config_.max_entries == 0) return;  // a cache that holds nothing
  while (entries_.size() >= config_.max_entries) {
    unregister_shape_locked(std::prev(entries_.end()));
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.push_front(
      Entry{key, shape, std::move(forbidden), std::move(matches)});
  index_.emplace(key, entries_.begin());
  // Register for superset lookups, bounded per shape: an entry past the
  // bound keeps its LRU slot but stays delta-invisible, so the index can
  // never grow past max_entries * 1 iterators total and eviction order
  // stays exactly the LRU order delta reuse found it in.
  if (config_.enable_delta && config_.max_delta_candidates > 0) {
    std::vector<std::list<Entry>::iterator>& reg = shape_index_[shape];
    if (reg.size() < config_.max_delta_candidates) {
      reg.push_back(entries_.begin());
    }
  }
}

void MatchCache::unregister_shape_locked(std::list<Entry>::iterator it) {
  const auto found = shape_index_.find(it->shape);
  if (found == shape_index_.end()) return;
  std::erase(found->second, it);
  if (found->second.empty()) shape_index_.erase(found);
}

auto MatchCache::delta_source_locked(std::uint64_t shape,
                                     const graph::VertexMask& forbidden)
    -> std::list<Entry>::iterator {
  const auto found = shape_index_.find(shape);
  if (found == shape_index_.end()) return entries_.end();
  auto best = entries_.end();
  for (const std::list<Entry>::iterator it : found->second) {
    if (!mask_subset(it->forbidden, forbidden)) continue;
    if (best == entries_.end() || it->matches.size() < best->matches.size()) {
      best = it;
    }
  }
  return best;
}

std::vector<match::Match> MatchCache::filter_matches_locked(
    const Entry& source, const graph::VertexMask& forbidden) const {
  // Only the DELTA bits — busy now but free in the source state — can
  // block a stored match (every stored match already avoids the source
  // state's busy bits), so the per-match scan tests those alone. For a
  // fixed pattern + flags the DFS with the more-restricted candidate set
  // emits exactly the subsequence of the source run whose mappings avoid
  // the delta bits, so this filter is record-identical to a live search.
  const std::size_t words = forbidden.num_words();
  std::vector<std::uint64_t> delta(words, 0);
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t cached =
        w < source.forbidden.num_words() ? source.forbidden.word(w) : 0;
    delta[w] = forbidden.word(w) & ~cached;
  }
  if (match::rows::popcount_words(delta.data(), words) == 0) {
    // Identical free sets (the states differ only in mask size): the
    // stored list IS the answer.
    return source.matches;
  }
  std::vector<match::Match> filtered;
  for (const match::Match& m : source.matches) {
    bool blocked = false;
    for (const graph::VertexId v : m.mapping) {
      if ((delta[v >> 6] >> (v & 63)) & 1) {
        blocked = true;
        break;
      }
    }
    if (!blocked) filtered.push_back(m);
  }
  return filtered;
}

void MatchCache::note_oversized_locked(std::uint64_t key) {
  // Bypass, don't store: the fingerprint alone is remembered (always
  // safe even for an early-stopped run — bypassed calls enumerate live).
  if (oversized_.size() >= config_.max_oversized_keys) oversized_.clear();
  oversized_.insert(key);
}

void MatchCache::for_each_match(const graph::Graph& pattern,
                                const graph::Graph& hardware,
                                const match::EnumerateOptions& options,
                                const match::MatchVisitor& visit,
                                CacheProbeTicket* ticket) {
  obs::Span span(options.trace, "cache", "lookup");
  const std::lock_guard<std::mutex> lock(mutex_);
  refresh_hardware_locked(hardware);

  const std::uint64_t shape = shape_fingerprint(pattern, options);
  const std::uint64_t key = unified_fingerprint(shape, options);

  if (ticket != nullptr) {
    // Probe mode: classify and stream, mutate nothing observable. The
    // classification is the same whichever probe of a batch gets here
    // first; commit_probe (called in server order) decides who counts
    // the miss.
    ticket->key_ = key;
    if (oversized_.contains(key)) {
      ticket->kind_ = CacheProbeTicket::Kind::kBypass;
      span.arg("outcome", "bypass");
      match::for_each_match(pattern, hardware, visit, options);
      return;
    }
    if (const auto found = index_.find(key); found != index_.end()) {
      ticket->kind_ = CacheProbeTicket::Kind::kHit;
      span.arg("outcome", "hit");
      for (const match::Match& m : found->second->matches) {
        if (!visit(m)) return;
      }
      return;
    }
    if (const auto staged = staging_.find(key); staged != staging_.end()) {
      if (staged->second.oversized) {
        ticket->kind_ = CacheProbeTicket::Kind::kStagedOversized;
        span.arg("outcome", "staged_bypass");
        match::for_each_match(pattern, hardware, visit, options);
      } else {
        // Replays inherit the producer's classification (delta-filtered
        // vs enumerated), so every probe of a key in a batch carries the
        // same kind whichever arrived first — the commit-order stats
        // split cannot depend on thread scheduling.
        ticket->kind_ = staged->second.delta
                            ? CacheProbeTicket::Kind::kStagedDelta
                            : CacheProbeTicket::Kind::kStagedStore;
        span.arg("outcome", "staged_replay");
        for (const match::Match& m : staged->second.matches) {
          if (!visit(m)) return;
        }
      }
      return;
    }
    // Exact miss: before enumerating, try to derive the list from a
    // committed superset-state entry of the same shape. Committed
    // structures are frozen for the whole batch (stores happen at
    // commit time), so the source — and hence the staged list — is the
    // same whichever probe of the key runs first.
    if (config_.enable_delta) {
      const auto source = delta_source_locked(shape, options.forbidden);
      if (source != entries_.end()) {
        ticket->kind_ = CacheProbeTicket::Kind::kStagedDelta;
        span.arg("outcome", "delta");
        const auto [staged_it, inserted] = staging_.emplace(
            key,
            StagedEntry{false, true, shape, options.forbidden,
                        filter_matches_locked(*source, options.forbidden)});
        for (const match::Match& m : staged_it->second.matches) {
          if (!visit(m)) return;
        }
        return;
      }
    }
    // First probe of an absent key: enumerate, teeing into a staged
    // entry for the rest of the batch to replay.
    std::vector<match::Match> collected;
    bool oversized = false;
    bool stopped = false;
    match::for_each_match(
        pattern, hardware,
        [&](const match::Match& m) {
          if (!oversized) {
            if (collected.size() >= config_.max_matches_per_entry) {
              oversized = true;
              collected.clear();
              collected.shrink_to_fit();
            } else {
              collected.push_back(m);
            }
          }
          if (!visit(m)) {
            stopped = true;
            return false;
          }
          return true;
        },
        options);
    if (oversized) {
      staging_.emplace(key, StagedEntry{true, false, shape, {}, {}});
      ticket->kind_ = CacheProbeTicket::Kind::kStagedOversized;
      span.arg("outcome", "staged_enumerate");
    } else if (stopped) {
      // Incomplete enumeration: nothing replayable to stage.
      ticket->kind_ = CacheProbeTicket::Kind::kUnreplayable;
      span.arg("outcome", "unreplayable");
    } else {
      staging_.emplace(key, StagedEntry{false, false, shape, options.forbidden,
                                        std::move(collected)});
      ticket->kind_ = CacheProbeTicket::Kind::kStagedStore;
      span.arg("outcome", "staged_enumerate");
    }
    return;
  }

  // Immediate mode (single-threaded callers): count and mutate in place.
  // Known-oversized: stream live, never collect again and never occupy an
  // LRU slot.
  if (oversized_.contains(key)) {
    ++stats_.bypasses;
    span.arg("outcome", "bypass");
    match::for_each_match(pattern, hardware, visit, options);
    return;
  }

  const auto found = index_.find(key);
  if (found != index_.end()) {
    touch_locked(found->second);
    ++stats_.hits;
    span.arg("outcome", "hit");
    for (const match::Match& m : found->second->matches) {
      if (!visit(m)) return;
    }
    return;
  }

  // Exact miss: a committed superset-state entry of the same shape lets
  // a mask-AND scan stand in for the whole matcher run. The filtered
  // list is complete, so it is stored under the exact key — the next
  // lookup of this state is a plain hit.
  if (config_.enable_delta) {
    const auto source = delta_source_locked(shape, options.forbidden);
    if (source != entries_.end()) {
      ++stats_.delta_hits;
      span.arg("outcome", "delta");
      std::vector<match::Match> filtered =
          filter_matches_locked(*source, options.forbidden);
      touch_locked(source);
      store_locked(key, shape, options.forbidden, filtered);
      for (const match::Match& m : filtered) {
        if (!visit(m)) return;
      }
      return;
    }
  }

  // Miss: enumerate once, teeing matches into a candidate entry.
  ++stats_.misses;
  span.arg("outcome", "miss");
  std::vector<match::Match> collected;
  bool oversized = false;
  bool stopped = false;
  match::for_each_match(
      pattern, hardware,
      [&](const match::Match& m) {
        if (!oversized) {
          if (collected.size() >= config_.max_matches_per_entry) {
            oversized = true;
            collected.clear();
            collected.shrink_to_fit();
          } else {
            collected.push_back(m);
          }
        }
        if (!visit(m)) {
          stopped = true;
          return false;
        }
        return true;
      },
      options);
  if (oversized) {
    note_oversized_locked(key);
    return;
  }
  // An early-stopped enumeration is incomplete; only a full one is
  // replayable.
  if (!stopped) {
    store_locked(key, shape, options.forbidden, std::move(collected));
  }
}

void MatchCache::commit_probe(CacheProbeTicket& ticket) {
  const CacheProbeTicket::Kind kind = ticket.kind_;
  const std::uint64_t key = ticket.key_;
  ticket.kind_ = CacheProbeTicket::Kind::kNone;
  if (kind == CacheProbeTicket::Kind::kNone) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (kind) {
    case CacheProbeTicket::Kind::kNone:
      break;
    case CacheProbeTicket::Kind::kHit: {
      ++stats_.hits;
      if (const auto found = index_.find(key); found != index_.end()) {
        touch_locked(found->second);
      }
      break;
    }
    case CacheProbeTicket::Kind::kBypass:
      ++stats_.bypasses;
      break;
    case CacheProbeTicket::Kind::kStagedStore: {
      if (const auto found = index_.find(key); found != index_.end()) {
        // A prior commit (in server order) already charged the miss and
        // stored the entry; this probe replayed it.
        ++stats_.hits;
        touch_locked(found->second);
      } else if (const auto staged = staging_.find(key);
                 staged != staging_.end()) {
        ++stats_.misses;
        store_locked(key, staged->second.shape,
                     std::move(staged->second.forbidden),
                     std::move(staged->second.matches));
        staging_.erase(staged);
      } else if (config_.max_entries == 0) {
        // The store was a no-op; immediate mode would re-miss too.
        ++stats_.misses;
      } else {
        // Stored by an earlier commit of this batch and evicted again by
        // later ones — the probe still replayed a valid list.
        ++stats_.hits;
      }
      break;
    }
    case CacheProbeTicket::Kind::kStagedDelta: {
      // Same commit choreography as kStagedStore, but the first commit
      // charges a delta hit — the batch paid a mask-AND filter, never a
      // matcher run, and the filtered list is stored under the exact key.
      if (const auto found = index_.find(key); found != index_.end()) {
        ++stats_.hits;
        touch_locked(found->second);
      } else if (const auto staged = staging_.find(key);
                 staged != staging_.end()) {
        ++stats_.delta_hits;
        store_locked(key, staged->second.shape,
                     std::move(staged->second.forbidden),
                     std::move(staged->second.matches));
        staging_.erase(staged);
      } else if (config_.max_entries == 0) {
        ++stats_.delta_hits;
      } else {
        ++stats_.hits;
      }
      break;
    }
    case CacheProbeTicket::Kind::kStagedOversized: {
      if (oversized_.contains(key)) {
        ++stats_.bypasses;
      } else {
        ++stats_.misses;
        note_oversized_locked(key);
        staging_.erase(key);
      }
      break;
    }
    case CacheProbeTicket::Kind::kUnreplayable:
      ++stats_.misses;
      break;
  }
}

std::optional<match::Match> best_cached_match(
    MatchCache* cache, const graph::Graph& pattern,
    const graph::Graph& hardware, const match::EnumerateOptions& options,
    const std::function<double(const match::Match&)>& scorer,
    CacheProbeTicket* ticket) {
  if (cache == nullptr) {
    return match::best_match(pattern, hardware, scorer, options);
  }
  bool valid = false;
  double best_score = 0.0;
  match::Match best;
  cache->for_each_match(
      pattern, hardware, options,
      [&](const match::Match& m) {
        const double score = scorer(m);
        if (!valid || score > best_score ||
            (score == best_score && m.mapping < best.mapping)) {
          valid = true;
          best_score = score;
          best = m;
        }
        return true;
      },
      ticket);
  if (!valid) return std::nullopt;
  return best;
}

}  // namespace mapa::policy
