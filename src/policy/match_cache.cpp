#include "policy/match_cache.hpp"

#include "graph/algorithms.hpp"
#include "obs/trace.hpp"

namespace mapa::policy {

namespace {

std::uint64_t mix_hash(std::uint64_t hash, std::uint64_t value) {
  hash ^= value + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
  return hash;
}

/// The unified cache key: (pattern adjacency fingerprint, backend +
/// symmetry flags, busy-mask fingerprint) mixed into one 64-bit value.
/// Key equality is fingerprint equality — see the collision-probability
/// argument in the header.
std::uint64_t unified_fingerprint(const graph::Graph& pattern,
                                  const match::EnumerateOptions& options) {
  const std::uint64_t flags =
      static_cast<std::uint64_t>(options.backend) |
      (options.break_symmetry ? std::uint64_t{1} << 8 : 0);
  return mix_hash(mix_hash(graph::adjacency_fingerprint(pattern), flags),
                  options.forbidden.fingerprint());
}

}  // namespace

MatchCache::MatchCache(MatchCacheConfig config) : config_(config) {}

MatchCacheStats MatchCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t MatchCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MatchCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
  oversized_.clear();
  staging_.clear();
}

void MatchCache::refresh_hardware_locked(const graph::Graph& hardware) {
  // Hardware identity pins adjacency AND bandwidths (topology, not
  // adjacency, fingerprint): a link-degraded fork of the pinned graph —
  // same structure, one bandwidth cut — must invalidate wholesale, so a
  // degraded server probing this cache can never replay entries computed
  // for the healthy topology (cluster/fleet.hpp fault model).
  const std::uint64_t fp = graph::topology_fingerprint(hardware);
  if (hardware_seen_ && fp == hardware_fp_ &&
      hardware.num_vertices() == hardware_vertices_) {
    return;
  }
  if (hardware_seen_) {
    ++stats_.invalidations;
    entries_.clear();
    index_.clear();
    oversized_.clear();
    staging_.clear();
  }
  hardware_seen_ = true;
  hardware_fp_ = fp;
  hardware_vertices_ = hardware.num_vertices();
}

void MatchCache::touch_locked(std::list<Entry>::iterator it) {
  entries_.splice(entries_.begin(), entries_, it);
}

void MatchCache::store_locked(std::uint64_t key,
                              std::vector<match::Match> matches) {
  if (config_.max_entries == 0) return;  // a cache that holds nothing
  while (entries_.size() >= config_.max_entries) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.push_front(Entry{key, std::move(matches)});
  index_.emplace(key, entries_.begin());
}

void MatchCache::note_oversized_locked(std::uint64_t key) {
  // Bypass, don't store: the fingerprint alone is remembered (always
  // safe even for an early-stopped run — bypassed calls enumerate live).
  if (oversized_.size() >= config_.max_oversized_keys) oversized_.clear();
  oversized_.insert(key);
}

void MatchCache::for_each_match(const graph::Graph& pattern,
                                const graph::Graph& hardware,
                                const match::EnumerateOptions& options,
                                const match::MatchVisitor& visit,
                                CacheProbeTicket* ticket) {
  obs::Span span(options.trace, "cache", "lookup");
  const std::lock_guard<std::mutex> lock(mutex_);
  refresh_hardware_locked(hardware);

  const std::uint64_t key = unified_fingerprint(pattern, options);

  if (ticket != nullptr) {
    // Probe mode: classify and stream, mutate nothing observable. The
    // classification is the same whichever probe of a batch gets here
    // first; commit_probe (called in server order) decides who counts
    // the miss.
    ticket->key_ = key;
    if (oversized_.contains(key)) {
      ticket->kind_ = CacheProbeTicket::Kind::kBypass;
      span.arg("outcome", "bypass");
      match::for_each_match(pattern, hardware, visit, options);
      return;
    }
    if (const auto found = index_.find(key); found != index_.end()) {
      ticket->kind_ = CacheProbeTicket::Kind::kHit;
      span.arg("outcome", "hit");
      for (const match::Match& m : found->second->matches) {
        if (!visit(m)) return;
      }
      return;
    }
    if (const auto staged = staging_.find(key); staged != staging_.end()) {
      if (staged->second.oversized) {
        ticket->kind_ = CacheProbeTicket::Kind::kStagedOversized;
        span.arg("outcome", "staged_bypass");
        match::for_each_match(pattern, hardware, visit, options);
      } else {
        ticket->kind_ = CacheProbeTicket::Kind::kStagedStore;
        span.arg("outcome", "staged_replay");
        for (const match::Match& m : staged->second.matches) {
          if (!visit(m)) return;
        }
      }
      return;
    }
    // First probe of an absent key: enumerate, teeing into a staged
    // entry for the rest of the batch to replay.
    std::vector<match::Match> collected;
    bool oversized = false;
    bool stopped = false;
    match::for_each_match(
        pattern, hardware,
        [&](const match::Match& m) {
          if (!oversized) {
            if (collected.size() >= config_.max_matches_per_entry) {
              oversized = true;
              collected.clear();
              collected.shrink_to_fit();
            } else {
              collected.push_back(m);
            }
          }
          if (!visit(m)) {
            stopped = true;
            return false;
          }
          return true;
        },
        options);
    if (oversized) {
      staging_.emplace(key, StagedEntry{true, {}});
      ticket->kind_ = CacheProbeTicket::Kind::kStagedOversized;
      span.arg("outcome", "staged_enumerate");
    } else if (stopped) {
      // Incomplete enumeration: nothing replayable to stage.
      ticket->kind_ = CacheProbeTicket::Kind::kUnreplayable;
      span.arg("outcome", "unreplayable");
    } else {
      staging_.emplace(key, StagedEntry{false, std::move(collected)});
      ticket->kind_ = CacheProbeTicket::Kind::kStagedStore;
      span.arg("outcome", "staged_enumerate");
    }
    return;
  }

  // Immediate mode (single-threaded callers): count and mutate in place.
  // Known-oversized: stream live, never collect again and never occupy an
  // LRU slot.
  if (oversized_.contains(key)) {
    ++stats_.bypasses;
    span.arg("outcome", "bypass");
    match::for_each_match(pattern, hardware, visit, options);
    return;
  }

  const auto found = index_.find(key);
  if (found != index_.end()) {
    touch_locked(found->second);
    ++stats_.hits;
    span.arg("outcome", "hit");
    for (const match::Match& m : found->second->matches) {
      if (!visit(m)) return;
    }
    return;
  }

  // Miss: enumerate once, teeing matches into a candidate entry.
  ++stats_.misses;
  span.arg("outcome", "miss");
  std::vector<match::Match> collected;
  bool oversized = false;
  bool stopped = false;
  match::for_each_match(
      pattern, hardware,
      [&](const match::Match& m) {
        if (!oversized) {
          if (collected.size() >= config_.max_matches_per_entry) {
            oversized = true;
            collected.clear();
            collected.shrink_to_fit();
          } else {
            collected.push_back(m);
          }
        }
        if (!visit(m)) {
          stopped = true;
          return false;
        }
        return true;
      },
      options);
  if (oversized) {
    note_oversized_locked(key);
    return;
  }
  // An early-stopped enumeration is incomplete; only a full one is
  // replayable.
  if (!stopped) store_locked(key, std::move(collected));
}

void MatchCache::commit_probe(CacheProbeTicket& ticket) {
  const CacheProbeTicket::Kind kind = ticket.kind_;
  const std::uint64_t key = ticket.key_;
  ticket.kind_ = CacheProbeTicket::Kind::kNone;
  if (kind == CacheProbeTicket::Kind::kNone) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (kind) {
    case CacheProbeTicket::Kind::kNone:
      break;
    case CacheProbeTicket::Kind::kHit: {
      ++stats_.hits;
      if (const auto found = index_.find(key); found != index_.end()) {
        touch_locked(found->second);
      }
      break;
    }
    case CacheProbeTicket::Kind::kBypass:
      ++stats_.bypasses;
      break;
    case CacheProbeTicket::Kind::kStagedStore: {
      if (const auto found = index_.find(key); found != index_.end()) {
        // A prior commit (in server order) already charged the miss and
        // stored the entry; this probe replayed it.
        ++stats_.hits;
        touch_locked(found->second);
      } else if (const auto staged = staging_.find(key);
                 staged != staging_.end()) {
        ++stats_.misses;
        store_locked(key, std::move(staged->second.matches));
        staging_.erase(staged);
      } else if (config_.max_entries == 0) {
        // The store was a no-op; immediate mode would re-miss too.
        ++stats_.misses;
      } else {
        // Stored by an earlier commit of this batch and evicted again by
        // later ones — the probe still replayed a valid list.
        ++stats_.hits;
      }
      break;
    }
    case CacheProbeTicket::Kind::kStagedOversized: {
      if (oversized_.contains(key)) {
        ++stats_.bypasses;
      } else {
        ++stats_.misses;
        note_oversized_locked(key);
        staging_.erase(key);
      }
      break;
    }
    case CacheProbeTicket::Kind::kUnreplayable:
      ++stats_.misses;
      break;
  }
}

std::optional<match::Match> best_cached_match(
    MatchCache* cache, const graph::Graph& pattern,
    const graph::Graph& hardware, const match::EnumerateOptions& options,
    const std::function<double(const match::Match&)>& scorer,
    CacheProbeTicket* ticket) {
  if (cache == nullptr) {
    return match::best_match(pattern, hardware, scorer, options);
  }
  bool valid = false;
  double best_score = 0.0;
  match::Match best;
  cache->for_each_match(
      pattern, hardware, options,
      [&](const match::Match& m) {
        const double score = scorer(m);
        if (!valid || score > best_score ||
            (score == best_score && m.mapping < best.mapping)) {
          valid = true;
          best_score = score;
          best = m;
        }
        return true;
      },
      ticket);
  if (!valid) return std::nullopt;
  return best;
}

}  // namespace mapa::policy
