#include "policy/match_cache.hpp"

#include "graph/algorithms.hpp"

namespace mapa::policy {

namespace {

std::uint64_t mix_hash(std::uint64_t hash, std::uint64_t value) {
  hash ^= value + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
  return hash;
}

/// The unified cache key: (pattern adjacency fingerprint, backend +
/// symmetry flags, busy-mask fingerprint) mixed into one 64-bit value.
/// Key equality is fingerprint equality — see the collision-probability
/// argument in the header.
std::uint64_t unified_fingerprint(const graph::Graph& pattern,
                                  const match::EnumerateOptions& options) {
  const std::uint64_t flags =
      static_cast<std::uint64_t>(options.backend) |
      (options.break_symmetry ? std::uint64_t{1} << 8 : 0);
  return mix_hash(mix_hash(graph::adjacency_fingerprint(pattern), flags),
                  options.forbidden.fingerprint());
}

}  // namespace

MatchCache::MatchCache(MatchCacheConfig config) : config_(config) {}

MatchCacheStats MatchCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t MatchCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MatchCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
  oversized_.clear();
}

void MatchCache::refresh_hardware_locked(const graph::Graph& hardware) {
  // Hardware identity pins adjacency AND bandwidths (topology, not
  // adjacency, fingerprint): a link-degraded fork of the pinned graph —
  // same structure, one bandwidth cut — must invalidate wholesale, so a
  // degraded server probing this cache can never replay entries computed
  // for the healthy topology (cluster/fleet.hpp fault model).
  const std::uint64_t fp = graph::topology_fingerprint(hardware);
  if (hardware_seen_ && fp == hardware_fp_ &&
      hardware.num_vertices() == hardware_vertices_) {
    return;
  }
  if (hardware_seen_) {
    ++stats_.invalidations;
    entries_.clear();
    index_.clear();
    oversized_.clear();
  }
  hardware_seen_ = true;
  hardware_fp_ = fp;
  hardware_vertices_ = hardware.num_vertices();
}

void MatchCache::touch_locked(std::list<Entry>::iterator it) {
  entries_.splice(entries_.begin(), entries_, it);
}

void MatchCache::store_locked(std::uint64_t key,
                              std::vector<match::Match> matches) {
  if (config_.max_entries == 0) return;  // a cache that holds nothing
  while (entries_.size() >= config_.max_entries) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.push_front(Entry{key, std::move(matches)});
  index_.emplace(key, entries_.begin());
}

void MatchCache::for_each_match(const graph::Graph& pattern,
                                const graph::Graph& hardware,
                                const match::EnumerateOptions& options,
                                const match::MatchVisitor& visit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  refresh_hardware_locked(hardware);

  const std::uint64_t key = unified_fingerprint(pattern, options);

  // Known-oversized: stream live, never collect again and never occupy an
  // LRU slot.
  if (oversized_.contains(key)) {
    ++stats_.bypasses;
    match::for_each_match(pattern, hardware, visit, options);
    return;
  }

  const auto found = index_.find(key);
  if (found != index_.end()) {
    touch_locked(found->second);
    ++stats_.hits;
    for (const match::Match& m : found->second->matches) {
      if (!visit(m)) return;
    }
    return;
  }

  // Miss: enumerate once, teeing matches into a candidate entry.
  ++stats_.misses;
  std::vector<match::Match> collected;
  bool oversized = false;
  bool stopped = false;
  match::for_each_match(
      pattern, hardware,
      [&](const match::Match& m) {
        if (!oversized) {
          if (collected.size() >= config_.max_matches_per_entry) {
            oversized = true;
            collected.clear();
            collected.shrink_to_fit();
          } else {
            collected.push_back(m);
          }
        }
        if (!visit(m)) {
          stopped = true;
          return false;
        }
        return true;
      },
      options);
  if (oversized) {
    // Bypass, don't store: the fingerprint alone is remembered (always
    // safe even for an early-stopped run — bypassed calls enumerate live).
    if (oversized_.size() >= config_.max_oversized_keys) oversized_.clear();
    oversized_.insert(key);
    return;
  }
  // An early-stopped enumeration is incomplete; only a full one is
  // replayable.
  if (!stopped) store_locked(key, std::move(collected));
}

std::optional<match::Match> best_cached_match(
    MatchCache* cache, const graph::Graph& pattern,
    const graph::Graph& hardware, const match::EnumerateOptions& options,
    const std::function<double(const match::Match&)>& scorer) {
  if (cache == nullptr) {
    return match::best_match(pattern, hardware, scorer, options);
  }
  bool valid = false;
  double best_score = 0.0;
  match::Match best;
  cache->for_each_match(pattern, hardware, options, [&](const match::Match& m) {
    const double score = scorer(m);
    if (!valid || score > best_score ||
        (score == best_score && m.mapping < best.mapping)) {
      valid = true;
      best_score = score;
      best = m;
    }
    return true;
  });
  if (!valid) return std::nullopt;
  return best;
}

}  // namespace mapa::policy
