#pragma once
// Allocation-policy interface and the result record shared by all four
// policies the paper evaluates (Baseline, Topo-aware, Greedy, Preserve)
// plus the Random ablation policy.
//
// A policy receives the full hardware graph, a busy mask (vertices held by
// running jobs), and the job's application pattern + sensitivity label,
// and returns a concrete placement (or nothing if the job cannot be placed
// right now). Scores for the chosen placement are filled in uniformly so
// the simulator can log allocation quality for every policy.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "match/enumerator.hpp"
#include "match/match.hpp"

namespace mapa::obs {
class TraceSink;
}  // namespace mapa::obs

namespace mapa::policy {

class MatchCache;
class CacheProbeTicket;

/// What a job asks for.
struct AllocationRequest {
  const graph::Graph* pattern = nullptr;  // application graph (not owned)
  bool bandwidth_sensitive = false;
  /// Probe-mode cache ticket (see match_cache.hpp). Non-null when the
  /// caller is one of several parallel probes sharing a match cache: the
  /// enumerating policies pass it through to the cache so that stats and
  /// LRU mutation defer to the caller's sequential commit_probe pass.
  /// Null (the default) keeps the immediate-mode cache path.
  CacheProbeTicket* cache_probe = nullptr;
  /// Optional trace sink (src/obs/): forwarded into the enumeration
  /// options so cache lookups and match-core searches emit spans.
  obs::TraceSink* trace = nullptr;
};

/// A placement decision plus its quality scores.
struct AllocationResult {
  match::Match match;             // pattern vertex -> hardware vertex
  double aggregated_bw = 0.0;     // Eq. 1
  double predicted_effbw = 0.0;   // Eq. 2 (Table 2 theta unless overridden)
  double preserved_bw = 0.0;      // Eq. 3 given the current busy mask
};

/// Knobs shared by the pattern-matching policies.
struct PolicyConfig {
  match::Backend backend = match::Backend::kVf2;
  bool break_symmetry = true;
  /// Enumeration/scoring parallelism (§5.4). Only effective while no match
  /// cache is installed: the cache streams replays and miss enumerations
  /// sequentially (cache hits are far cheaper than a parallel re-search).
  std::size_t threads = 1;
  /// Eq. 2 coefficients used for Predicted EffBW; empty = paper Table 2.
  std::vector<double> theta;
  /// Ablation (DESIGN.md #2): when true, Preserve scores sensitive jobs
  /// with the measured-microbenchmark bandwidth instead of the Eq. 2
  /// prediction — the oracle the regression approximates.
  bool score_sensitive_with_microbench = false;
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Place `request` on the free part of `hardware`. `busy[v]` marks
  /// accelerators held by running jobs; the mask size must equal the
  /// hardware vertex count. Returns std::nullopt when the job cannot be
  /// placed (not enough free accelerators, or no structural match).
  virtual std::optional<AllocationResult> allocate(
      const graph::Graph& hardware, const std::vector<bool>& busy,
      const AllocationRequest& request) = 0;

  /// Install an allocation-state match cache (see match_cache.hpp). The
  /// enumerating policies (greedy, preserve, random) reuse cached
  /// enumerations through it; the non-matching policies ignore it. Null
  /// disables caching.
  void set_match_cache(std::shared_ptr<MatchCache> cache) {
    match_cache_ = std::move(cache);
  }
  const MatchCache* match_cache() const { return match_cache_.get(); }

 protected:
  MatchCache* cache() const { return match_cache_.get(); }

  /// Score a chosen match uniformly (used by every implementation).
  static AllocationResult score_result(const graph::Graph& hardware,
                                       const std::vector<bool>& busy,
                                       const AllocationRequest& request,
                                       match::Match m,
                                       const PolicyConfig& config);

  /// Free-GPU count under a mask.
  static std::size_t free_count(const std::vector<bool>& busy);

  /// Validate mask size and pattern pointer; throws on misuse.
  static void check_inputs(const graph::Graph& hardware,
                           const std::vector<bool>& busy,
                           const AllocationRequest& request);

 private:
  std::shared_ptr<MatchCache> match_cache_;
};

/// Factory by paper name: "baseline", "topo-aware", "greedy", "preserve",
/// "random". Throws std::invalid_argument for unknown names.
std::unique_ptr<Policy> make_policy(const std::string& name,
                                    const PolicyConfig& config = {},
                                    std::uint64_t random_seed = 1);

/// All four paper policy names, in the order of the paper's figures.
const std::vector<std::string>& paper_policy_names();

}  // namespace mapa::policy
